module Cycles = Rthv_engine.Cycles

type message = { sent : Cycles.t; sender : string; sequence : int }

type port = {
  name : string;
  capacity : int;
  queue : message Queue.t;
  mutable sent : int;
  mutable dropped : int;
  mutable received : int;
  mutable latencies : Cycles.t list;  (* newest first *)
}

type t = { mutable ports : port list }

let create () = { ports = [] }

let declare t ~name ~capacity =
  if capacity <= 0 then invalid_arg "Ipc.declare: capacity must be positive";
  if List.exists (fun p -> p.name = name) t.ports then
    invalid_arg (Printf.sprintf "Ipc.declare: duplicate port %S" name);
  let port =
    {
      name;
      capacity;
      queue = Queue.create ();
      sent = 0;
      dropped = 0;
      received = 0;
      latencies = [];
    }
  in
  t.ports <- port :: t.ports;
  port

let find t name = List.find (fun p -> p.name = name) t.ports
let port_name port = port.name

let send port ~now ~sender =
  if Queue.length port.queue >= port.capacity then begin
    port.dropped <- port.dropped + 1;
    false
  end
  else begin
    Queue.push { sent = now; sender; sequence = port.sent } port.queue;
    port.sent <- port.sent + 1;
    true
  end

let receive_all port ~now =
  let drained = List.of_seq (Queue.to_seq port.queue) in
  Queue.clear port.queue;
  List.iter
    (fun ({ sent = sent_at; _ } : message) ->
      port.received <- port.received + 1;
      port.latencies <- Cycles.( - ) now sent_at :: port.latencies)
    drained;
  drained

let depth port = Queue.length port.queue
let sent_count port = port.sent
let dropped_count port = port.dropped
let received_count port = port.received

let latencies_us port =
  List.rev_map Cycles.to_us port.latencies
