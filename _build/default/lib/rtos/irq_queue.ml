module Cycles = Rthv_engine.Cycles

type item = {
  irq : int;
  line : int;
  arrival : Cycles.t;
  total : Cycles.t;
  mutable remaining : Cycles.t;
}

type t = { queue : item Queue.t; mutable high_water : int }

let create () = { queue = Queue.create (); high_water = 0 }

let make_item ~irq ~line ~arrival ~work =
  if work <= 0 then invalid_arg "Irq_queue.make_item: work must be positive";
  { irq; line; arrival; total = work; remaining = work }

let push t item =
  Queue.push item t.queue;
  let n = Queue.length t.queue in
  if n > t.high_water then t.high_water <- n

let peek t = Queue.peek_opt t.queue

let drop_head t =
  match Queue.peek_opt t.queue with
  | None -> invalid_arg "Irq_queue.drop_head: empty queue"
  | Some item when item.remaining > 0 ->
      invalid_arg "Irq_queue.drop_head: head still has remaining work"
  | Some _ -> Queue.pop t.queue

let is_empty t = Queue.is_empty t.queue
let length t = Queue.length t.queue

let pending_work t =
  Queue.fold (fun acc item -> Cycles.( + ) acc item.remaining) 0 t.queue

let max_observed_length t = t.high_water
let to_list t = List.of_seq (Queue.to_seq t.queue)
