lib/rtos/task.ml: Format List Rthv_engine
