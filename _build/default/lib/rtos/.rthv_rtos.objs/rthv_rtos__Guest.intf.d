lib/rtos/guest.mli: Ipc Irq_queue Rthv_engine Task
