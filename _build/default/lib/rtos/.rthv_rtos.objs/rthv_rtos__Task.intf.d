lib/rtos/task.mli: Format Rthv_engine
