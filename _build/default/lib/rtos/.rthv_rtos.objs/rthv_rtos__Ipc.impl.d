lib/rtos/ipc.ml: List Printf Queue Rthv_engine
