lib/rtos/ipc.mli: Rthv_engine
