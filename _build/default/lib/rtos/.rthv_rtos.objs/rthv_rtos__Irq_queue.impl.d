lib/rtos/irq_queue.ml: List Queue Rthv_engine
