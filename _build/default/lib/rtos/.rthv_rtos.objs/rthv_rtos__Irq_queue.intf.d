lib/rtos/irq_queue.mli: Rthv_engine
