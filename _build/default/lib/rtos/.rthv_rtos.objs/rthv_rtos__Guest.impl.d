lib/rtos/guest.ml: Array Ipc Irq_queue List Printf Rthv_engine Task
