(** Hypervisor-mediated inter-partition communication (Figure 1's IPC).

    ARINC653-style queuing ports: a sending partition's task enqueues a
    message on job completion; the receiving partition's task drains the
    port when one of its jobs completes.  The hypervisor owns the port
    memory, so a send is visible immediately — but the {e temporal} cost is
    the TDMA wait until the receiver is scheduled and its task runs, which
    is exactly what the recorded end-to-end latencies expose.

    Ports are bounded; a send to a full port is dropped and counted (the
    ARINC653 overflow semantic for queuing ports with [DISCARD]). *)

type message = {
  sent : Rthv_engine.Cycles.t;
  sender : string;  (** Producing task name. *)
  sequence : int;  (** Per-port sequence number of accepted messages. *)
}

type port

type t
(** A registry of named ports, shared by all guests of one system. *)

val create : unit -> t

val declare : t -> name:string -> capacity:int -> port
(** @raise Invalid_argument on a duplicate name or non-positive capacity. *)

val find : t -> string -> port
(** @raise Not_found for undeclared ports. *)

val port_name : port -> string

val send : port -> now:Rthv_engine.Cycles.t -> sender:string -> bool
(** Enqueue a message; [false] if the port was full (message dropped). *)

val receive_all : port -> now:Rthv_engine.Cycles.t -> message list
(** Drain the port, oldest first, recording the end-to-end latency
    [now - sent] of every drained message. *)

val depth : port -> int
(** Messages currently queued. *)

val sent_count : port -> int
(** Accepted sends. *)

val dropped_count : port -> int

val received_count : port -> int

val latencies_us : port -> float list
(** End-to-end latencies of all received messages, in receive order. *)
