module Cycles = Rthv_engine.Cycles

type spec = {
  name : string;
  period : Cycles.t;
  wcet : Cycles.t;
  priority : int;
  offset : Cycles.t;
  produces : string option;
  consumes : string option;
}

let spec ~name ~period_us ~wcet_us ?(priority = 0) ?(offset_us = 0) ?produces
    ?consumes () =
  if period_us <= 0 then invalid_arg "Task.spec: period must be positive";
  if wcet_us <= 0 then invalid_arg "Task.spec: wcet must be positive";
  if offset_us < 0 then invalid_arg "Task.spec: offset must be non-negative";
  {
    name;
    period = Cycles.of_us period_us;
    wcet = Cycles.of_us wcet_us;
    priority;
    offset = Cycles.of_us offset_us;
    produces;
    consumes;
  }

type job = {
  task : spec;
  index : int;
  release : Cycles.t;
  mutable remaining : Cycles.t;
}

type completion = {
  job_task : string;
  job_index : int;
  released : Cycles.t;
  finished : Cycles.t;
}

let response_time completion =
  Cycles.( - ) completion.finished completion.released

let utilisation specs =
  List.fold_left
    (fun acc spec ->
      acc +. (float_of_int spec.wcet /. float_of_int spec.period))
    0. specs

let pp_spec ppf spec =
  Format.fprintf ppf "%s(T=%a, C=%a, prio=%d)" spec.name Cycles.pp spec.period
    Cycles.pp spec.wcet spec.priority
