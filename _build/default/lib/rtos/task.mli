(** Guest-level task model.

    Partitions host a (para-virtualised) guest operating system running
    application tasks.  For the experiments the guests are simple busy loops,
    but the task model lets tests and examples measure guest-level response
    times — the quantity whose independence from other partitions the
    hypervisor must preserve. *)

type spec = {
  name : string;
  period : Rthv_engine.Cycles.t;  (** Release period; must be positive. *)
  wcet : Rthv_engine.Cycles.t;  (** Execution demand per job; positive. *)
  priority : int;  (** Lower value = higher priority. *)
  offset : Rthv_engine.Cycles.t;  (** First release time; non-negative. *)
  produces : string option;
      (** IPC port this task sends one message to on each job completion. *)
  consumes : string option;
      (** IPC port this task drains on each job completion. *)
}

val spec :
  name:string ->
  period_us:int ->
  wcet_us:int ->
  ?priority:int ->
  ?offset_us:int ->
  ?produces:string ->
  ?consumes:string ->
  unit ->
  spec
(** Convenience constructor in microseconds; [priority] defaults to 0,
    [offset] to 0, no IPC by default.
    @raise Invalid_argument on non-positive period/wcet. *)

type job = {
  task : spec;
  index : int;  (** 0-based job count of this task. *)
  release : Rthv_engine.Cycles.t;
  mutable remaining : Rthv_engine.Cycles.t;
}

type completion = {
  job_task : string;
  job_index : int;
  released : Rthv_engine.Cycles.t;
  finished : Rthv_engine.Cycles.t;
}

val response_time : completion -> Rthv_engine.Cycles.t

val utilisation : spec list -> float
(** Sum of wcet/period over the set. *)

val pp_spec : Format.formatter -> spec -> unit
