(** Self-learning minimum-distance function — Algorithm 1 of the paper.

    Maintains a trace buffer of the last [l] activation timestamps and, for
    each new activation, tightens the recorded delta^-_Ip entries to the
    smallest observed distances.  This is the hypervisor-side incremental
    counterpart of {!Rthv_analysis.Distance_fn.of_trace} (the two must agree;
    tests check it). *)

type t

val create : l:int -> t
(** @raise Invalid_argument if [l <= 0]. *)

val l : t -> int

val observe : t -> Rthv_engine.Cycles.t -> unit
(** Feed one activation timestamp (non-decreasing order expected; the
    algorithm itself has no ordering requirement but learned distances from
    an unsorted feed are meaningless). *)

val observed : t -> int
(** Number of activations fed so far. *)

val learned : t -> Rthv_analysis.Distance_fn.t
(** Current delta^-_Ip[l].  Entries never observed remain at the "huge"
    sentinel, i.e. effectively unconstrained from above. *)

val learned_bounded : t -> bound:Rthv_analysis.Distance_fn.t -> Rthv_analysis.Distance_fn.t
(** Algorithm 2: the learned function adjusted so it never admits more load
    than [bound]. *)
