module Cycles = Rthv_engine.Cycles

type t = {
  slots : Cycles.t array;
  starts : Cycles.t array;  (* start offset of each slot within the cycle *)
  cycle : Cycles.t;
}

let make slots =
  let n = Array.length slots in
  if n = 0 then invalid_arg "Tdma.make: no partitions";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Tdma.make: non-positive slot")
    slots;
  let starts = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    starts.(i) <- !total;
    total := Cycles.( + ) !total slots.(i)
  done;
  { slots; starts; cycle = !total }

let of_us slots_us = make (Array.map Cycles.of_us slots_us)
let partitions t = Array.length t.slots
let cycle_length t = t.cycle
let slot_length t i = t.slots.(i)

let position_in_cycle t time =
  if time < 0 then invalid_arg "Tdma: negative time";
  time mod t.cycle

let owner_at t time =
  let pos = position_in_cycle t time in
  let rec find i =
    (* pos < cycle, so the last slot always catches. *)
    if i = Array.length t.slots - 1 then i
    else if pos < Cycles.( + ) t.starts.(i) t.slots.(i) then i
    else find (i + 1)
  in
  find 0

let slot_bounds_at t time =
  let owner = owner_at t time in
  let cycle_base = Cycles.( - ) time (position_in_cycle t time) in
  let slot_start = Cycles.( + ) cycle_base t.starts.(owner) in
  let slot_end = Cycles.( + ) slot_start t.slots.(owner) in
  (owner, slot_start, slot_end)

let next_boundary t time =
  let _, _, slot_end = slot_bounds_at t time in
  slot_end

let next_slot_start t ~partition ~after =
  if partition < 0 || partition >= Array.length t.slots then
    invalid_arg "Tdma.next_slot_start: bad partition";
  let cycle_base = Cycles.( - ) after (position_in_cycle t after) in
  let candidate = Cycles.( + ) cycle_base t.starts.(partition) in
  if candidate >= after then candidate else Cycles.( + ) candidate t.cycle

let interference t ~partition =
  Rthv_analysis.Tdma_interference.make ~cycle:t.cycle
    ~slot:(slot_length t partition)

let pp ppf t =
  Format.fprintf ppf "TDMA[cycle=%a:" Cycles.pp t.cycle;
  Array.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf " p%d=%a" i Cycles.pp s)
    t.slots;
  Format.fprintf ppf "]"
