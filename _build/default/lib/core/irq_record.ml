module Cycles = Rthv_engine.Cycles

type classification = Direct | Interposed | Delayed

type t = {
  irq : int;
  source : string;
  line : int;
  arrival : Cycles.t;
  top_start : Cycles.t;
  top_end : Cycles.t;
  classification : classification;
  completion : Cycles.t;
}

let latency t = Cycles.( - ) t.completion t.arrival
let latency_us t = Cycles.to_us (latency t)

let classification_name = function
  | Direct -> "direct"
  | Interposed -> "interposed"
  | Delayed -> "delayed"

let pp ppf t =
  Format.fprintf ppf "irq#%d %s@%a %s latency=%a" t.irq t.source Cycles.pp
    t.arrival
    (classification_name t.classification)
    Cycles.pp (latency t)
