module Cycles = Rthv_engine.Cycles

type t = {
  bucket_capacity : int;
  refill_period : Cycles.t;
  mutable tokens : int;
  mutable last_refill : Cycles.t;  (* time of the last credited refill *)
  mutable checked : int;
  mutable admitted : int;
}

let create ~capacity ~refill =
  if capacity < 1 then invalid_arg "Throttle.create: capacity must be >= 1";
  if refill < 1 then invalid_arg "Throttle.create: refill must be >= 1";
  {
    bucket_capacity = capacity;
    refill_period = refill;
    tokens = capacity;
    last_refill = 0;
    checked = 0;
    admitted = 0;
  }

let capacity t = t.bucket_capacity
let refill t = t.refill_period

let update t ts =
  if ts < t.last_refill then
    invalid_arg "Throttle: time must be non-decreasing";
  if t.tokens < t.bucket_capacity then begin
    let elapsed = Cycles.( - ) ts t.last_refill in
    let earned = elapsed / t.refill_period in
    let granted = Stdlib.min earned (t.bucket_capacity - t.tokens) in
    t.tokens <- t.tokens + granted;
    if t.tokens = t.bucket_capacity then
      (* A full bucket stops accruing; restart the meter from now. *)
      t.last_refill <- ts
    else
      t.last_refill <-
        Cycles.( + ) t.last_refill (Cycles.( * ) t.refill_period earned)
  end
  else t.last_refill <- ts

let check t ts =
  t.checked <- t.checked + 1;
  update t ts;
  t.tokens >= 1

let admit t ts =
  update t ts;
  if t.tokens < 1 then invalid_arg "Throttle.admit: no token available";
  t.tokens <- t.tokens - 1;
  t.admitted <- t.admitted + 1

let level t = t.tokens
let checked_count t = t.checked
let admitted_count t = t.admitted

let max_admissions t ~window =
  if window < 0 then 0 else t.bucket_capacity + (window / t.refill_period)
