(** Static TDMA partition schedule.

    The hypervisor assigns each partition p_i a time slot of fixed length T_i
    and cycles through the slots in a static order; the cycle length T_TDMA
    is the sum of all slot lengths.  Unused capacity of a slot is left unused
    (Section 3 of the paper) — that property is what makes the schedule a
    temporal-isolation mechanism. *)

type t

val make : Rthv_engine.Cycles.t array -> t
(** [make slots] builds the schedule from per-partition slot lengths, in
    cycle order.  @raise Invalid_argument if empty or any slot is
    non-positive. *)

val of_us : int array -> t
(** Slot lengths in microseconds. *)

val partitions : t -> int

val cycle_length : t -> Rthv_engine.Cycles.t
(** T_TDMA. *)

val slot_length : t -> int -> Rthv_engine.Cycles.t
(** T_i of partition [i]. *)

val owner_at : t -> Rthv_engine.Cycles.t -> int
(** Partition whose slot contains the given instant.  Slots are half-open:
    the owner at a boundary is the {e starting} partition. *)

val slot_bounds_at : t -> Rthv_engine.Cycles.t -> int * Rthv_engine.Cycles.t * Rthv_engine.Cycles.t
(** [(owner, slot_start, slot_end)] of the slot containing the instant. *)

val next_boundary : t -> Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** First slot boundary strictly after the given instant. *)

val next_slot_start : t -> partition:int -> after:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Earliest start of a slot of [partition] at or after [after].  If [after]
    falls inside that partition's slot, this is the {e next} slot start, not
    the current one. *)

val interference : t -> partition:int -> Rthv_analysis.Tdma_interference.t
(** The analysis-side view of this schedule for the given partition
    (equation (8)). *)

val pp : Format.formatter -> t -> unit
