(** Token-bucket interrupt throttle — the related-work baseline.

    Regehr & Duongsaa (LCTES 2005) prevent interrupt overload by throttling
    at the source: admissions are limited to a long-term rate with a bounded
    burst allowance.  Used here as an alternative admission policy for
    interposed bottom handlers, to compare against the paper's delta^-
    monitor:

    - the bucket refills one token every [refill] cycles, up to [capacity];
    - an activation is admitted iff a token is available, consuming it.

    Interference bound: any window dt admits at most
    [capacity + floor(dt/refill)] interpositions — an affine curve, burstier
    than the d_min monitor's at equal long-term rate (capacity > 1 trades
    latency for clustering). *)

type t

val create : capacity:int -> refill:Rthv_engine.Cycles.t -> t
(** The bucket starts full.
    @raise Invalid_argument unless [capacity >= 1] and [refill >= 1]. *)

val capacity : t -> int

val refill : t -> Rthv_engine.Cycles.t

val check : t -> Rthv_engine.Cycles.t -> bool
(** [check t ts]: is a token available at time [ts]?  Updates the fill level
    to [ts] (timestamps must be non-decreasing) but does not consume.
    @raise Invalid_argument if time goes backwards. *)

val admit : t -> Rthv_engine.Cycles.t -> unit
(** Consume a token.  @raise Invalid_argument if none is available. *)

val level : t -> int
(** Tokens currently available (at the last update time). *)

val checked_count : t -> int

val admitted_count : t -> int

val max_admissions : t -> window:Rthv_engine.Cycles.t -> int
(** The affine admission bound for a window: [capacity + window/refill]. *)
