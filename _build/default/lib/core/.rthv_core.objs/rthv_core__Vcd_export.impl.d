lib/core/vcd_export.ml: Buffer Bytes Fun Hyp_trace List Printf Rthv_engine
