lib/core/delta_learner.mli: Rthv_analysis Rthv_engine
