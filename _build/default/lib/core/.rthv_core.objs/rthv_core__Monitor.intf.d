lib/core/monitor.mli: Rthv_analysis Rthv_engine
