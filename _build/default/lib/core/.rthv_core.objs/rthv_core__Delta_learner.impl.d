lib/core/delta_learner.ml: Array Rthv_analysis Rthv_engine
