lib/core/vcd_export.mli: Hyp_trace
