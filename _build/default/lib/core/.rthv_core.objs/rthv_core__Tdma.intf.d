lib/core/tdma.mli: Format Rthv_analysis Rthv_engine
