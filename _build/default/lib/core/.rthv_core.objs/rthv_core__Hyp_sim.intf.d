lib/core/hyp_sim.mli: Config Hyp_trace Irq_record Monitor Rthv_engine Rthv_rtos
