lib/core/irq_record.mli: Format Rthv_engine
