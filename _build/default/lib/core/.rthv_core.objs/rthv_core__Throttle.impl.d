lib/core/throttle.ml: Rthv_engine Stdlib
