lib/core/monitor.ml: Array Delta_learner Rthv_analysis Rthv_engine Stdlib
