lib/core/tdma.ml: Array Format Rthv_analysis Rthv_engine
