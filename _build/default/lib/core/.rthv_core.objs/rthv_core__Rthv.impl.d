lib/core/rthv.ml: Config Delta_learner Hyp_sim Hyp_trace Irq_record Monitor Rthv_analysis Rthv_engine Rthv_hw Rthv_rtos Tdma Throttle Vcd_export
