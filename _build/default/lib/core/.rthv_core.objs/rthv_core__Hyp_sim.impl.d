lib/core/hyp_sim.ml: Array Config Hashtbl Hyp_trace Irq_record List Monitor Option Queue Rthv_engine Rthv_hw Rthv_rtos Stdlib Tdma Throttle
