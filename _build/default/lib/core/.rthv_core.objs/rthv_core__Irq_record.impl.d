lib/core/irq_record.ml: Format Rthv_engine
