lib/core/config.ml: Array Fun List Printf Rthv_analysis Rthv_engine Rthv_hw Rthv_rtos Tdma
