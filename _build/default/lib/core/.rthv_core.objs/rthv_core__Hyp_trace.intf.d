lib/core/hyp_trace.mli: Format Rthv_engine
