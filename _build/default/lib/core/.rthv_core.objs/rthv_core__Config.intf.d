lib/core/config.mli: Rthv_analysis Rthv_engine Rthv_hw Rthv_rtos Tdma
