lib/core/hyp_trace.ml: Array Format List Rthv_engine Stdlib
