lib/core/throttle.mli: Rthv_engine
