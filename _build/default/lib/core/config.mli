(** System configuration for the hypervisor simulation. *)

type shaping =
  | No_shaping
      (** Original top handler (Figure 4a): foreign IRQs are always
          delayed. *)
  | Fixed_monitor of Rthv_analysis.Distance_fn.t
      (** Modified top handler with a predefined monitoring condition. *)
  | Self_learning of {
      l : int;
      learn_events : int;
      bound : Rthv_analysis.Distance_fn.t option;
    }  (** Appendix-A self-learning monitor. *)
  | Token_bucket of { capacity : int; refill : Rthv_engine.Cycles.t }
      (** Related-work baseline (Regehr & Duongsaa): rate-based throttling
          with a burst allowance instead of a distance condition. *)

type arrival_mode =
  | Reprogram
      (** Entry 0 of [interarrivals] is relative to time 0; entry i+1 is
          programmed from within IRQ i's top handler, as the paper's trigger
          timer is.  Arrivals never coalesce in this mode. *)
  | Absolute
      (** The distances are accumulated into absolute raise times scheduled
          up front (trace replay).  Raises hitting a still-pending line
          coalesce, as on real hardware with non-counting IRQ flags. *)

type source = {
  name : string;
  line : int;  (** Interrupt-controller line; unique per source. *)
  subscriber : int;  (** Index of the partition owning the bottom handler. *)
  c_th : Rthv_engine.Cycles.t;  (** Top handler WCET. *)
  c_bh : Rthv_engine.Cycles.t;  (** Bottom handler WCET = interposition budget. *)
  interarrivals : Rthv_engine.Cycles.t array;
      (** Pre-generated distances; interpreted per [arrival_mode]. *)
  arrival_mode : arrival_mode;
  shaping : shaping;
  activates : Rthv_rtos.Task.spec option;
      (** Guest task signalled by the bottom handler: on each bottom-handler
          completion one aperiodic job of this task is released in the
          subscriber partition (the uC/OS pattern of a handler posting to a
          task).  Its completions appear in the subscriber guest's
          record. *)
}

type partition = {
  pname : string;
  slot : Rthv_engine.Cycles.t;
  tasks : Rthv_rtos.Task.spec list;
  busy_loop : bool;
  policy : Rthv_rtos.Guest.policy;
}

type t = {
  platform : Rthv_hw.Platform.t;
  partitions : partition list;  (** In TDMA cycle order. *)
  sources : source list;
  ports : (string * int) list;
      (** Hypervisor-owned IPC queuing ports: (name, capacity).  Tasks refer
          to them through {!Rthv_rtos.Task.spec}'s [produces]/[consumes]. *)
  finish_bh_at_boundary : bool;
      (** When true (default), a bottom handler that is already executing
          when its slot ends is allowed to finish before the partition
          switch — an overrun bounded by C_BH, symmetric to the bounded
          spill of an interposed handler.  When false, the handler is cut
          and resumes in the partition's next slot (strict TDMA). *)
}

val partition :
  name:string ->
  slot_us:int ->
  ?tasks:Rthv_rtos.Task.spec list ->
  ?busy_loop:bool ->
  ?policy:Rthv_rtos.Guest.policy ->
  unit ->
  partition
(** [policy] defaults to fixed-priority scheduling. *)

val source :
  name:string ->
  line:int ->
  subscriber:int ->
  c_th_us:int ->
  c_bh_us:int ->
  interarrivals:Rthv_engine.Cycles.t array ->
  ?arrival_mode:arrival_mode ->
  ?shaping:shaping ->
  ?activates:Rthv_rtos.Task.spec ->
  unit ->
  source
(** [arrival_mode] defaults to [Reprogram]; [shaping] to [No_shaping];
    no task activation by default. *)

val make :
  ?platform:Rthv_hw.Platform.t ->
  ?finish_bh_at_boundary:bool ->
  ?ports:(string * int) list ->
  partitions:partition list ->
  sources:source list ->
  unit ->
  t
(** Defaults to the paper's ARM926ej-s platform,
    [finish_bh_at_boundary:true], and no IPC ports. *)

val validate : t -> (unit, string) result
(** Checks subscriber indices, line uniqueness and ranges, positive WCETs,
    non-negative interarrivals, shaping parameter sanity, and that every
    port referenced by a task is declared (with positive capacity and a
    unique name). *)

val tdma : t -> Tdma.t

val monitoring_enabled : t -> bool
(** True iff any source uses the modified top handler. *)
