(** Measurement record of one IRQ event, as gathered by the evaluation setup
    of Section 6: the top handler and the bottom handler both read the
    timestamp timer; their difference is the measured IRQ latency. *)

type classification =
  | Direct
      (** Arrived during the subscriber partition's own slot. *)
  | Interposed
      (** Arrived in a foreign slot and was admitted by the monitor. *)
  | Delayed
      (** Arrived in a foreign slot and waits for the subscriber's slot
          (monitoring off, learning phase, condition violated, or an
          implementation-level admission guard). *)

type t = {
  irq : int;  (** Global event id, monotone in arrival order. *)
  source : string;
  line : int;
  arrival : Rthv_engine.Cycles.t;  (** Hardware line raise = IRQ occurrence. *)
  top_start : Rthv_engine.Cycles.t;  (** Top handler began executing. *)
  top_end : Rthv_engine.Cycles.t;  (** Top handler finished. *)
  classification : classification;
  completion : Rthv_engine.Cycles.t;  (** Bottom handler finished. *)
}

val latency : t -> Rthv_engine.Cycles.t
(** [completion - arrival]: the paper's IRQ latency. *)

val latency_us : t -> float

val classification_name : classification -> string

val pp : Format.formatter -> t -> unit
