module Cycles = Rthv_engine.Cycles
module Distance_fn = Rthv_analysis.Distance_fn

type phase = Learning of int | Running

type mode =
  | Fixed
  | Self_learning of {
      learner : Delta_learner.t;
      learn_events : int;
      bound : Distance_fn.t option;
    }

type t = {
  mode : mode;
  mutable fn : Distance_fn.t option;  (* None while learning *)
  mutable history : Cycles.t option array;  (* history.(i): (i+1)-th last admitted *)
  mutable admitted : int;
  mutable checked : int;
}

let fixed fn =
  {
    mode = Fixed;
    fn = Some fn;
    history = Array.make (Distance_fn.length fn) None;
    admitted = 0;
    checked = 0;
  }

let d_min d = fixed (Distance_fn.d_min d)

let self_learning ~l ~learn_events ?bound () =
  if l <= 0 then invalid_arg "Monitor.self_learning: l must be positive";
  if learn_events < 0 then
    invalid_arg "Monitor.self_learning: negative learn_events";
  (match bound with
  | Some b when Distance_fn.length b <> l ->
      invalid_arg "Monitor.self_learning: bound length mismatch"
  | Some _ | None -> ());
  {
    mode = Self_learning { learner = Delta_learner.create ~l; learn_events; bound };
    fn = None;
    history = Array.make l None;
    admitted = 0;
    checked = 0;
  }

let phase t =
  match (t.mode, t.fn) with
  | _, Some _ -> Running
  | Self_learning { learner; learn_events; _ }, None ->
      Learning (Stdlib.max 0 (learn_events - Delta_learner.observed learner))
  | Fixed, None -> assert false

let finish_learning t =
  match t.mode with
  | Fixed -> ()
  | Self_learning { learner; bound; _ } ->
      let fn =
        match bound with
        | None -> Delta_learner.learned learner
        | Some bound -> Delta_learner.learned_bounded learner ~bound
      in
      t.fn <- Some fn

let note_arrival t timestamp =
  match (t.mode, t.fn) with
  | Fixed, _ | Self_learning _, Some _ -> ()
  | Self_learning { learner; learn_events; _ }, None ->
      Delta_learner.observe learner timestamp;
      if Delta_learner.observed learner >= learn_events then finish_learning t

let check t timestamp =
  t.checked <- t.checked + 1;
  match t.fn with
  | None -> false
  | Some fn ->
      let entries = Distance_fn.entries fn in
      let ok = ref true in
      Array.iteri
        (fun i entry ->
          match t.history.(i) with
          | None -> ()
          | Some previous ->
              if Cycles.( - ) timestamp previous < entry then ok := false)
        entries;
      !ok

let check_quietly t timestamp =
  let before = t.checked in
  let r = check t timestamp in
  t.checked <- before;
  r

let admit t timestamp =
  if not (check_quietly t timestamp) then
    invalid_arg "Monitor.admit: activation violates the monitoring condition";
  let n = Array.length t.history in
  for i = n - 1 downto 1 do
    t.history.(i) <- t.history.(i - 1)
  done;
  t.history.(0) <- Some timestamp;
  t.admitted <- t.admitted + 1

let condition t = t.fn
let admitted_count t = t.admitted
let checked_count t = t.checked
