module Cycles = Rthv_engine.Cycles
module Distance_fn = Rthv_analysis.Distance_fn

type t = {
  entries : Cycles.t array;
  tracebuffer : Cycles.t option array;
  mutable count : int;
}

let huge = max_int / 4

let create ~l =
  if l <= 0 then invalid_arg "Delta_learner.create: l must be positive";
  { entries = Array.make l huge; tracebuffer = Array.make l None; count = 0 }

let l t = Array.length t.entries
let observed t = t.count

let observe t timestamp =
  let len = Array.length t.entries in
  (* Algorithm 1: tighten each entry against the distance to the (i+1)-th
     most recent activation, then right-shift the trace buffer. *)
  for i = 0 to len - 1 do
    match t.tracebuffer.(i) with
    | None -> ()
    | Some previous ->
        let distance = Cycles.( - ) timestamp previous in
        if distance < t.entries.(i) then t.entries.(i) <- distance
  done;
  for i = len - 1 downto 1 do
    t.tracebuffer.(i) <- t.tracebuffer.(i - 1)
  done;
  t.tracebuffer.(0) <- Some timestamp;
  t.count <- t.count + 1

let learned t = Distance_fn.of_entries (Array.copy t.entries)

let learned_bounded t ~bound =
  Distance_fn.adjust_to_bound ~learned:(learned t) ~bound
