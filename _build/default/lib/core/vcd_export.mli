(** Value Change Dump (IEEE 1364) export of a hypervisor event trace.

    Renders the scheduling timeline as a waveform viewable in GTKWave or any
    EDA wave viewer:

    - [active_partition] (8-bit vector): which partition's slot owns the
      processor (updated at slot switches);
    - [interposition] (8-bit vector): the partition an interposed bottom
      handler is executing in, or [0xff] when none;
    - [irq_top] (wire): pulses for one timestep on every top-handler run;
    - [bh_done] (wire): pulses on every bottom-handler completion;
    - [monitor_admit] / [monitor_deny] (wires): pulses per decision.

    The timescale is 5 ns — one cycle of the 200 MHz clock, so VCD times are
    exactly simulation cycle counts. *)

val to_channel : out_channel -> Hyp_trace.t -> unit
(** Write a complete VCD document for the retained trace entries. *)

val to_string : Hyp_trace.t -> string

val save : path:string -> Hyp_trace.t -> unit
(** @raise Sys_error on I/O failure. *)
