lib/hw/ctx_cost.mli: Cpu Format Rthv_engine
