lib/hw/ctx_cost.ml: Cpu Float Format Rthv_engine
