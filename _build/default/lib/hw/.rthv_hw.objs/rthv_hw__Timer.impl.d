lib/hw/timer.ml: Intc Option Rthv_engine
