lib/hw/intc.mli:
