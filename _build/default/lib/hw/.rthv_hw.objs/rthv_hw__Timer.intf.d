lib/hw/timer.mli: Intc Rthv_engine
