lib/hw/intc.ml: Array Printf
