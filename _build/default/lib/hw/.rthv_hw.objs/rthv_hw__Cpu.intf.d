lib/hw/cpu.mli: Format Rthv_engine
