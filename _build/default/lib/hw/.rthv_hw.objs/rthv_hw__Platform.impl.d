lib/hw/platform.ml: Cpu Ctx_cost Format
