lib/hw/platform.mli: Cpu Ctx_cost Format Rthv_engine
