(** CPU cost model.

    The paper reports all overheads of its ARM926ej-s \@200 MHz platform in
    instructions or cycles (C_Mon = 128 instructions, C_sched = 877
    instructions, context switch ~5000 instructions + ~5000 cycles of cache
    writeback).  This module converts those units into simulated time for a
    scalar in-order core where one instruction retires per cycle. *)

type t = {
  name : string;
  frequency_hz : int;  (** Core clock; 200 MHz for the ARM926ej-s. *)
  cycles_per_instr : int;
      (** Average retired-instruction cost in cycles; 1 for the scalar ARM9
          model used throughout the paper's overhead accounting. *)
}

val arm926ejs : t
(** The paper's evaluation platform: ARM926ej-s at 200 MHz. *)

val instr_cost : t -> int -> Rthv_engine.Cycles.t
(** [instr_cost cpu n] is the execution time of [n] instructions. *)

val us_of_cycles : t -> Rthv_engine.Cycles.t -> float
(** Wall-clock microseconds of a cycle count on this CPU. *)

val pp : Format.formatter -> t -> unit
