(** Context-switch cost model.

    On the ARMv5 platform of the paper a partition context switch costs
    ~5000 instructions for cache and TLB invalidation plus ~5000 cycles of
    cache writebacks caused by the particular memory layout.  The model keeps
    the two components separate so ablations can vary them independently. *)

type t = {
  invalidate_instr : int;  (** Cache/TLB invalidation, in instructions. *)
  writeback_cycles : int;  (** Dirty-line writebacks, in cycles. *)
}

val arm926ejs_default : t
(** The paper's measured values: 5000 instructions + 5000 cycles. *)

val zero : t
(** Free context switches, for idealised ablation runs. *)

val cost : cpu:Cpu.t -> t -> Rthv_engine.Cycles.t
(** Total cost of one partition context switch. *)

val scaled : t -> float -> t
(** [scaled t f] multiplies both components by [f] (rounded), for
    sensitivity sweeps. *)

val pp : Format.formatter -> t -> unit
