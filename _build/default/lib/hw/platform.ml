type t = {
  cpu : Cpu.t;
  ctx : Ctx_cost.t;
  monitor_instr : int;
  sched_manip_instr : int;
  intc_lines : int;
}

let arm926ejs_200mhz =
  {
    cpu = Cpu.arm926ejs;
    ctx = Ctx_cost.arm926ejs_default;
    monitor_instr = 128;
    sched_manip_instr = 877;
    intc_lines = 32;
  }

let ideal =
  {
    cpu = Cpu.arm926ejs;
    ctx = Ctx_cost.zero;
    monitor_instr = 0;
    sched_manip_instr = 0;
    intc_lines = 32;
  }

let monitor_cost t = Cpu.instr_cost t.cpu t.monitor_instr
let sched_manip_cost t = Cpu.instr_cost t.cpu t.sched_manip_instr
let ctx_switch_cost t = Ctx_cost.cost ~cpu:t.cpu t.ctx

let pp ppf t =
  Format.fprintf ppf "%a, %a, C_Mon=%d instr, C_sched=%d instr" Cpu.pp t.cpu
    Ctx_cost.pp t.ctx t.monitor_instr t.sched_manip_instr
