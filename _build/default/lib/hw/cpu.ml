type t = { name : string; frequency_hz : int; cycles_per_instr : int }

let arm926ejs =
  { name = "ARM926ej-s"; frequency_hz = 200_000_000; cycles_per_instr = 1 }

let instr_cost cpu n = n * cpu.cycles_per_instr

let us_of_cycles cpu cycles =
  float_of_int cycles *. 1e6 /. float_of_int cpu.frequency_hz

let pp ppf cpu =
  Format.fprintf ppf "%s@%dMHz" cpu.name (cpu.frequency_hz / 1_000_000)
