type t = { invalidate_instr : int; writeback_cycles : int }

let arm926ejs_default = { invalidate_instr = 5000; writeback_cycles = 5000 }
let zero = { invalidate_instr = 0; writeback_cycles = 0 }

let cost ~cpu t =
  Rthv_engine.Cycles.( + ) (Cpu.instr_cost cpu t.invalidate_instr) t.writeback_cycles

let scaled t f =
  let scale n = int_of_float (Float.round (float_of_int n *. f)) in
  { invalidate_instr = scale t.invalidate_instr;
    writeback_cycles = scale t.writeback_cycles }

let pp ppf t =
  Format.fprintf ppf "ctx{%d instr + %d cyc}" t.invalidate_instr
    t.writeback_cycles
