(** Bundled platform configuration.

    Collects the hardware cost parameters used across the hypervisor and the
    analysis.  [arm926ejs_200mhz] reproduces the paper's evaluation platform
    (Section 6.2): C_Mon = 128 instructions, C_sched = 877 instructions and a
    context switch of ~5000 instructions + ~5000 cycles. *)

type t = {
  cpu : Cpu.t;
  ctx : Ctx_cost.t;
  monitor_instr : int;  (** C_Mon: the monitoring function. *)
  sched_manip_instr : int;
      (** C_sched: scheduler manipulation for an interposed bottom handler. *)
  intc_lines : int;
}

val arm926ejs_200mhz : t
(** The paper's platform. *)

val ideal : t
(** Zero-overhead platform: free context switches and hypervisor operations.
    Used in ablation benchmarks to separate algorithmic from overhead
    effects. *)

val monitor_cost : t -> Rthv_engine.Cycles.t
(** C_Mon in cycles. *)

val sched_manip_cost : t -> Rthv_engine.Cycles.t
(** C_sched in cycles. *)

val ctx_switch_cost : t -> Rthv_engine.Cycles.t
(** C_ctx in cycles. *)

val pp : Format.formatter -> t -> unit
