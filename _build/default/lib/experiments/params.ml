module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config

let platform = Platform.arm926ejs_200mhz
let slot_app_us = 6000
let slot_housekeeping_us = 2000
let c_th_us = 5
let c_bh_us = 50
let subscriber = 1
let loads = [ 0.01; 0.05; 0.10 ]
let irqs_per_load = 5000
let default_seed = 42

let c_bh_eff =
  let costs = Rthv_analysis.Irq_latency.costs_of_platform platform in
  Cycles.( + ) (Cycles.of_us c_bh_us)
    (Cycles.( + ) costs.Rthv_analysis.Irq_latency.c_sched
       (Cycles.( * ) costs.Rthv_analysis.Irq_latency.c_ctx 2))

let c_th_eff =
  let costs = Rthv_analysis.Irq_latency.costs_of_platform platform in
  Cycles.( + ) (Cycles.of_us c_th_us) costs.Rthv_analysis.Irq_latency.c_mon

let mean_for_load load = Rthv_workload.Gen.mean_for_load ~c_bh_eff ~load

let partitions =
  [
    Config.partition ~name:"P1" ~slot_us:slot_app_us ();
    Config.partition ~name:"P2" ~slot_us:slot_app_us ();
    Config.partition ~name:"HK" ~slot_us:slot_housekeeping_us ();
  ]

let tdma =
  Rthv_core.Tdma.of_us
    [| slot_app_us; slot_app_us; slot_housekeeping_us |]

let source ~interarrivals ~shaping =
  Config.source ~name:"irq0" ~line:0 ~subscriber ~c_th_us ~c_bh_us
    ~interarrivals ~shaping ()

let config ~interarrivals ~shaping =
  Config.make ~platform ~partitions ~sources:[ source ~interarrivals ~shaping ] ()
