lib/experiments/analysis_tables.ml: Array Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_workload Stdlib
