lib/experiments/params.mli: Rthv_core Rthv_engine Rthv_hw
