lib/experiments/fig7.mli: Format Rthv_core Rthv_engine Rthv_workload
