lib/experiments/ablation.mli: Format Rthv_core Rthv_engine Rthv_hw
