lib/experiments/fig6.ml: Buffer Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_stats Rthv_workload
