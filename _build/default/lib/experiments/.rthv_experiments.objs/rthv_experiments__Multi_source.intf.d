lib/experiments/multi_source.mli: Format Rthv_engine
