lib/experiments/fig6.mli: Format Rthv_core Rthv_engine Rthv_stats
