lib/experiments/analysis_tables.mli: Format Rthv_analysis Rthv_engine
