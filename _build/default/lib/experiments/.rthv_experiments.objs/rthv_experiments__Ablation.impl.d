lib/experiments/ablation.ml: Array Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_stats Rthv_workload Stdlib
