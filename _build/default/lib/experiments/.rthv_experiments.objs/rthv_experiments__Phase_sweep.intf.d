lib/experiments/phase_sweep.mli: Format Rthv_core Rthv_engine
