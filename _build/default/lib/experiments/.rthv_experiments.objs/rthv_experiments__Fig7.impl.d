lib/experiments/fig7.ml: Array Buffer Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_stats Rthv_workload Stdlib String
