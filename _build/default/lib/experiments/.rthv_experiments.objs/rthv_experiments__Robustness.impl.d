lib/experiments/robustness.ml: Fig6 Format List Rthv_stats
