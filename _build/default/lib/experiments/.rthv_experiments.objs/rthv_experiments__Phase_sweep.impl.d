lib/experiments/phase_sweep.ml: Array Float Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_stats
