lib/experiments/overhead.ml: Format List Params Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_workload
