lib/experiments/params.ml: Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_workload
