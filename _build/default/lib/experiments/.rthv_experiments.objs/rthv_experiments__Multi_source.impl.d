lib/experiments/multi_source.ml: Array Format List Params Printf Rthv_analysis Rthv_core Rthv_engine Rthv_stats Rthv_workload Stdlib
