lib/experiments/robustness.mli: Fig6 Format
