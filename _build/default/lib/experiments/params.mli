(** Constants of the paper's evaluation setup (Section 6).

    Two application partitions with 6000 us TDMA slots plus a 2000 us
    housekeeping partition (T_TDMA = 14000 us); one monitored IRQ source
    subscribed by the second application partition with C_TH = 5 us and
    C_BH = 50 us; the ARM926ej-s \@200 MHz cost model for C_Mon, C_sched and
    C_ctx; bottom-handler loads U_IRQ of 1 %, 5 % and 10 % with the mean
    interarrival time set by equation (17). *)

val platform : Rthv_hw.Platform.t

val slot_app_us : int
(** 6000 us per application partition. *)

val slot_housekeeping_us : int
(** 2000 us. *)

val c_th_us : int
(** 5 us top handler. *)

val c_bh_us : int
(** 50 us bottom handler. *)

val subscriber : int
(** Partition index subscribing the monitored source (1 = second
    application partition, as in Figure 3). *)

val loads : float list
(** [0.01; 0.05; 0.10]. *)

val irqs_per_load : int
(** 5000, for the paper's 15000 total over three loads. *)

val default_seed : int

val c_bh_eff : Rthv_engine.Cycles.t
(** Equation (13) with the platform costs: C'_BH. *)

val c_th_eff : Rthv_engine.Cycles.t
(** Equation (15): C'_TH. *)

val mean_for_load : float -> Rthv_engine.Cycles.t
(** Equation (17): lambda = C'_BH / U_IRQ. *)

val partitions : Rthv_core.Config.partition list
(** The three partitions, in TDMA order: P1, P2, HK. *)

val tdma : Rthv_core.Tdma.t

val source :
  interarrivals:Rthv_engine.Cycles.t array ->
  shaping:Rthv_core.Config.shaping ->
  Rthv_core.Config.source
(** The experiment's single monitored source on line 0. *)

val config :
  interarrivals:Rthv_engine.Cycles.t array ->
  shaping:Rthv_core.Config.shaping ->
  Rthv_core.Config.t
