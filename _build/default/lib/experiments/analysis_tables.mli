(** Worst-case analysis tables (Sections 4 and 5.1) and their validation
    against the simulation.

    For each load the analysed source is modelled as sporadic with
    d_min = lambda (the conforming scenario 2 — the exponential trigger of
    scenarios 1 has no finite arrival curve and admits no worst-case bound).
    Three analytic results are compared:

    - R_baseline: equations (11)-(12), original top handler;
    - R_baseline_monitored: case 2 of Section 5.1 (monitor runs, IRQ still
      delayed): C'_TH replaces C_TH;
    - R_interposed: equation (16) — no TDMA term, C'_BH and C'_TH.

    The analysis accounts for the slot-entry context switch by shortening
    the analysed partition's slot to T_i - C_ctx (the simulation pays that
    switch from inside the slot, as the real system does).

    Validation columns run the simulation on conforming arrivals and report
    the observed maxima; soundness (analysis >= observation for delayed and
    in-slot handling) is asserted in the test suite. *)

type row = {
  load : float;
  d_min : Rthv_engine.Cycles.t;
  r_baseline_us : float;
  r_baseline_monitored_us : float;
  r_interposed_us : float;
  dominant_term_us : float;  (** T_TDMA - T_i, Section 4's dominating term. *)
  interference_bound_slot_us : float;
      (** Equation (14) over one application slot, plus carry-in. *)
  sim_worst_unmonitored_us : float option;
  sim_worst_monitored_us : float option;
  sim_stolen_slot_max_us : float option;
      (** Largest interference measured in any single slot (to compare with
          the equation-(14) column). *)
}

val analysis_tdma : Rthv_analysis.Tdma_interference.t
(** The experiment's TDMA from the subscriber's viewpoint, slot shortened by
    C_ctx. *)

val source_model : d_min:Rthv_engine.Cycles.t -> Rthv_analysis.Irq_latency.source
(** The experiment source as an analysis object, sporadic at [d_min]. *)

val compute : ?with_sim:bool -> ?seed:int -> ?count:int -> load:float -> unit -> row
(** [with_sim] (default true) also runs the simulations for the validation
    columns. *)

val compute_all : ?with_sim:bool -> ?seed:int -> ?count:int -> unit -> row list

val print : Format.formatter -> row list -> unit
