module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Arrival_curve = Rthv_analysis.Arrival_curve
module Busy_window = Rthv_analysis.Busy_window
module Distance_fn = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Irq_latency = Rthv_analysis.Irq_latency
module Tdma_interference = Rthv_analysis.Tdma_interference
module Gen = Rthv_workload.Gen

type row = {
  load : float;
  d_min : Cycles.t;
  r_baseline_us : float;
  r_baseline_monitored_us : float;
  r_interposed_us : float;
  dominant_term_us : float;
  interference_bound_slot_us : float;
  sim_worst_unmonitored_us : float option;
  sim_worst_monitored_us : float option;
  sim_stolen_slot_max_us : float option;
}

let costs = Irq_latency.costs_of_platform Params.platform

let analysis_tdma =
  let cycle = Rthv_core.Tdma.cycle_length Params.tdma in
  let slot =
    Cycles.( - )
      (Rthv_core.Tdma.slot_length Params.tdma Params.subscriber)
      costs.Irq_latency.c_ctx
  in
  Tdma_interference.make ~cycle ~slot

let source_model ~d_min =
  {
    Irq_latency.name = "irq0";
    arrival = Arrival_curve.Sporadic { d_min };
    c_th = Cycles.of_us Params.c_th_us;
    c_bh = Cycles.of_us Params.c_bh_us;
  }

let response_us = function
  | Ok result ->
      Cycles.to_us result.Busy_window.response_time
  | Error msg -> failwith ("analysis failed: " ^ msg)

let simulate ~seed ~count ~d_min ~shaping =
  let interarrivals =
    Gen.exponential_clamped ~seed ~mean:d_min ~d_min ~count
  in
  let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
  Hyp_sim.run sim;
  let records = Hyp_sim.records sim in
  let worst =
    List.fold_left
      (fun acc r -> Stdlib.max acc (Irq_record.latency_us r))
      0. records
  in
  (worst, Hyp_sim.stats sim)

let compute ?(with_sim = true) ?(seed = Params.default_seed) ?(count = 2000)
    ~load () =
  let d_min = Params.mean_for_load load in
  let self = source_model ~d_min in
  let r_baseline =
    response_us
      (Irq_latency.baseline ~tdma:analysis_tdma ~self ~interferers:[] ())
  in
  let r_baseline_monitored =
    response_us
      (Irq_latency.baseline ~tdma:analysis_tdma ~self ~interferers:[]
         ~monitoring:costs ())
  in
  let r_interposed =
    response_us (Irq_latency.interposed ~costs ~self ~interferers:[] ())
  in
  let monitor = Distance_fn.d_min d_min in
  let slot = Rthv_core.Tdma.slot_length Params.tdma 0 in
  let bound_slot =
    Independence.max_slot_loss ~monitor ~c_bh_eff:Params.c_bh_eff ~slot
  in
  let sim_unmonitored, sim_monitored, stolen_max =
    if with_sim then begin
      let worst_u, _ =
        simulate ~seed ~count ~d_min ~shaping:Config.No_shaping
      in
      let worst_m, stats_m =
        simulate ~seed ~count ~d_min
          ~shaping:(Config.Fixed_monitor monitor)
      in
      let stolen =
        Array.fold_left Stdlib.max 0 stats_m.Hyp_sim.stolen_slot_max
      in
      (Some worst_u, Some worst_m, Some (Cycles.to_us stolen))
    end
    else (None, None, None)
  in
  {
    load;
    d_min;
    r_baseline_us = r_baseline;
    r_baseline_monitored_us = r_baseline_monitored;
    r_interposed_us = r_interposed;
    dominant_term_us =
      Cycles.to_us (Irq_latency.baseline_dominant_term ~tdma:analysis_tdma);
    interference_bound_slot_us = Cycles.to_us bound_slot;
    sim_worst_unmonitored_us = sim_unmonitored;
    sim_worst_monitored_us = sim_monitored;
    sim_stolen_slot_max_us = stolen_max;
  }

let compute_all ?with_sim ?seed ?count () =
  List.map
    (fun load -> compute ?with_sim ?seed ?count ~load ())
    Params.loads

let print ppf rows =
  Format.fprintf ppf "== Worst-case analysis (eq. 11-16) vs simulation ==@.";
  Format.fprintf ppf
    "%6s %10s %12s %12s %12s | %12s %12s %14s %12s@." "load" "d_min"
    "R_base" "R_base+mon" "R_interp" "sim_base" "sim_monit" "I_bound(slot)"
    "I_measured";
  List.iter
    (fun r ->
      let opt = function
        | Some v -> Printf.sprintf "%10.0fus" v
        | None -> "         -"
      in
      Format.fprintf ppf
        "%5.1f%% %8.0fus %10.0fus %10.0fus %10.0fus | %12s %12s %12.0fus %12s@."
        (100. *. r.load) (Cycles.to_us r.d_min) r.r_baseline_us
        r.r_baseline_monitored_us r.r_interposed_us
        (opt r.sim_worst_unmonitored_us)
        (opt r.sim_worst_monitored_us)
        r.interference_bound_slot_us
        (opt r.sim_stolen_slot_max_us))
    rows
