lib/engine/simulator.ml: Cycles Event_queue Format
