lib/engine/prng.mli:
