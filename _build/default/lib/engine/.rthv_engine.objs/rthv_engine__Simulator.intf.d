lib/engine/simulator.mli: Cycles
