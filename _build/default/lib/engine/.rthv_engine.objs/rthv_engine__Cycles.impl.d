lib/engine/cycles.ml: Float Format Stdlib
