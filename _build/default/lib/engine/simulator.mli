(** Generic discrete-event simulation loop.

    A simulator owns a clock and a queue of timed callbacks.  Callbacks
    scheduled for the same instant run in scheduling order.  The hypervisor
    model drives its own finer-grained segment loop on top of this for CPU
    work attribution; the plain callback interface here serves the hardware
    models (timers) and the tests. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t
(** A fresh simulator with the clock at [Cycles.zero]. *)

val now : t -> Cycles.t

val schedule : t -> at:Cycles.t -> (t -> unit) -> handle
(** [schedule t ~at f] runs [f t] when the clock reaches [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:Cycles.t -> (t -> unit) -> handle
(** [schedule_after t ~delay f] is [schedule t ~at:(now t + delay) f]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val step : t -> bool
(** Fire the earliest pending event, advancing the clock to it.  Returns
    [false] when the queue is empty (clock unchanged). *)

val run_until : t -> Cycles.t -> unit
(** Fire all events up to and including the given instant, then set the clock
    to it. *)

val run : t -> unit
(** Fire events until the queue drains. *)
