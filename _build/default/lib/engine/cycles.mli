(** Simulated time measured in CPU clock cycles.

    All timing in the simulator is integer arithmetic on cycles of a fixed
    frequency clock (200 MHz for the paper's ARM926ej-s platform, i.e.
    1 us = 200 cycles).  Using integers avoids any floating-point drift in
    event ordering and makes runs bit-reproducible. *)

type t = int
(** A point in time, or a duration, in cycles.  Always non-negative in this
    code base; arithmetic is ordinary [int] arithmetic. *)

val zero : t

val cycles_per_us : int
(** Cycles per microsecond of the simulated 200 MHz clock. *)

val of_us : int -> t
(** [of_us n] is [n] microseconds as cycles. *)

val of_us_f : float -> t
(** [of_us_f x] rounds [x] microseconds to the nearest cycle. *)

val of_ms : int -> t
(** [of_ms n] is [n] milliseconds as cycles. *)

val of_instr : int -> t
(** [of_instr n] is the duration of [n] instructions.  The ARM926ej-s is a
    scalar in-order core; the paper's overheads are given in instructions and
    we model one instruction per cycle. *)

val to_us : t -> float
(** [to_us t] is [t] in microseconds (exact up to float precision). *)

val to_us_int : t -> int
(** [to_us_int t] is [t] in whole microseconds, rounded down. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as microseconds with the raw cycle count, e.g. ["150.5us"]. *)
