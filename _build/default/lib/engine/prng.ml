type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used only to expand the seed into the xoshiro state. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** *)
let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let float t =
  (* Take the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for the small
     bounds used here, but we still mask down to 62 bits to stay positive. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t in
  (* 1 - u is in (0, 1], so log is finite. *)
  -.mean *. log (1. -. u)

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed
