(** Deterministic pseudo-random number generation.

    The paper pre-generates all interarrival times before running the
    experiment "in order not to introduce additional overhead in the top
    handler".  We do the same, from a self-contained xoshiro256** generator
    seeded through splitmix64 so that every experiment is reproducible from a
    single integer seed, independent of the OCaml stdlib's generator. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] expands [seed] with splitmix64 into a full xoshiro256**
    state.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1) with 53 bits of precision. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution with the given
    mean via inverse-CDF.  [mean] must be positive. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t].  Used to give each IRQ source its own stream. *)
