module Cycles = Rthv_engine.Cycles
module Prng = Rthv_engine.Prng

type profile = {
  periodic_streams : (int * int) list;
  burst_count : int;
  burst_len : int;
  burst_inner_us : int;
  duration_us : int;
}

let default_profile =
  {
    periodic_streams = [ (5_000, 400); (10_000, 800); (20_000, 1_500) ];
    burst_count = 250;
    burst_len = 3;
    burst_inner_us = 1_000;
    duration_us = 28_000_000;
  }

let generate ~seed profile =
  let rng = Prng.create ~seed in
  let duration = Cycles.of_us profile.duration_us in
  let events = ref [] in
  let add ts = if ts >= 0 && ts < duration then events := ts :: !events in
  List.iter
    (fun (period_us, jitter_us) ->
      let period = Cycles.of_us period_us in
      let jitter = Cycles.of_us jitter_us in
      let phase = Prng.int rng period in
      let rec emit k =
        let base = Cycles.( + ) phase (Cycles.( * ) period k) in
        if base < duration then begin
          let j = if jitter > 0 then Prng.int rng (jitter + 1) else 0 in
          add (Cycles.( + ) base j);
          emit (k + 1)
        end
      in
      emit 0)
    profile.periodic_streams;
  let inner = Cycles.of_us profile.burst_inner_us in
  for _ = 1 to profile.burst_count do
    let start = Prng.int rng duration in
    for k = 0 to profile.burst_len - 1 do
      add (Cycles.( + ) start (Cycles.( * ) inner k))
    done
  done;
  List.sort Cycles.compare !events

let to_distances timestamps =
  let rec build previous acc = function
    | [] -> List.rev acc
    | ts :: rest ->
        let d = Stdlib.max 1 (Cycles.( - ) ts previous) in
        build ts (d :: acc) rest
  in
  Array.of_list (build 0 [] timestamps)

type trace_stats = {
  activations : int;
  duration : Cycles.t;
  min_distance : Cycles.t;
  mean_distance : float;
  max_distance : Cycles.t;
}

let stats timestamps =
  match timestamps with
  | [] | [ _ ] -> invalid_arg "Ecu_trace.stats: need at least two activations"
  | first :: _ ->
      let arr = Array.of_list timestamps in
      let n = Array.length arr in
      let min_d = ref max_int and max_d = ref 0 and sum = ref 0 in
      for i = 1 to n - 1 do
        let d = Cycles.( - ) arr.(i) arr.(i - 1) in
        if d < !min_d then min_d := d;
        if d > !max_d then max_d := d;
        sum := Cycles.( + ) !sum d
      done;
      {
        activations = n;
        duration = Cycles.( - ) arr.(n - 1) first;
        min_distance = !min_d;
        mean_distance = float_of_int !sum /. float_of_int (n - 1);
        max_distance = !max_d;
      }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d activations over %a (distances: min %a, mean %.1fus, max %a)"
    s.activations Cycles.pp s.duration Cycles.pp s.min_distance
    (s.mean_distance /. float_of_int Cycles.cycles_per_us)
    Cycles.pp s.max_distance
