(** CSV import/export of activation traces.

    Traces are exchanged as one microsecond timestamp per line (comments
    starting with ['#'] and blank lines ignored), the common format of
    task-activation recordings from automotive tracing tools.  Round-trips
    at cycle precision since the 200 MHz clock gives 0.005 us per cycle and
    we print three decimals then round on load. *)

val save : path:string -> Rthv_engine.Cycles.t list -> unit
(** Write timestamps (cycles) as microsecond lines.
    @raise Sys_error on I/O failure. *)

val load : path:string -> Rthv_engine.Cycles.t list
(** Parse timestamps (microseconds, fractional allowed) into cycles,
    sorted ascending.
    @raise Failure on a malformed line, [Sys_error] on I/O failure. *)

val save_distances : path:string -> Rthv_engine.Cycles.t array -> unit
(** Write a distance array (one microsecond distance per line). *)

val load_distances : path:string -> Rthv_engine.Cycles.t array
(** Parse a distance file; entries must be non-negative.
    @raise Failure on malformed or negative entries. *)
