lib/workload/gen.ml: Array Float Rthv_engine Stdlib
