lib/workload/trace_io.ml: Array Fun List Printf Rthv_engine String
