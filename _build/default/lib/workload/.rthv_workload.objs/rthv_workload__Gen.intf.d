lib/workload/gen.mli: Rthv_engine
