lib/workload/trace_io.mli: Rthv_engine
