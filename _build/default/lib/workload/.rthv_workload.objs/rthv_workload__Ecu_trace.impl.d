lib/workload/ecu_trace.ml: Array Format List Rthv_engine Stdlib
