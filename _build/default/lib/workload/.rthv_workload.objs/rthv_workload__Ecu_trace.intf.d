lib/workload/ecu_trace.mli: Format Rthv_engine
