(** Synthetic automotive-ECU activation trace (Appendix A substitute).

    The paper's Appendix A uses a measured task-activation trace from an
    automotive ECU with ~11000 activations: each activation generates an IRQ
    towards a hypervisor partition (e.g. CAN traffic).  The measured trace is
    proprietary, so this module synthesises a trace with the properties the
    experiment depends on:

    - a mixture of periodic engine tasks with release jitter (the classic
      5/10/20 ms AUTOSAR rates) plus sporadic event-triggered bursts;
    - a learnable delta^- envelope (stable minimum distances over the first
      10 % of the trace);
    - enough sub-envelope bursts that capping the admitted load at 25 %,
      12.5 % and 6.25 % of the recorded load forces progressively more
      delayed IRQs (Figure 7's graphs b-d).

    The default profile produces ~11000 activations over ~28 s. *)

type profile = {
  periodic_streams : (int * int) list;
      (** (period_us, jitter_us) per stream; all start at a random phase. *)
  burst_count : int;  (** Number of sporadic bursts to inject. *)
  burst_len : int;  (** Activations per burst. *)
  burst_inner_us : int;  (** Distance inside a burst. *)
  duration_us : int;  (** Trace length. *)
}

val default_profile : profile
(** ~10500 activations: 5 ms, 10 ms and 20 ms streams with jitter plus
    sporadic 3-activation bursts, over 28 s.  Tuned so the recorded delta^-
    envelope implies roughly 4-5x the average load, which makes the 25 % /
    12.5 % / 6.25 % load caps of Figure 7 bite progressively, as the paper's
    measured ECU trace does. *)

val generate : seed:int -> profile -> Rthv_engine.Cycles.t list
(** Sorted absolute activation timestamps. *)

val to_distances : Rthv_engine.Cycles.t list -> Rthv_engine.Cycles.t array
(** Distance array between consecutive activations, as the paper builds from
    its trace (first entry relative to time zero).  Zero distances are
    bumped to one cycle. *)

type trace_stats = {
  activations : int;
  duration : Rthv_engine.Cycles.t;
  min_distance : Rthv_engine.Cycles.t;
  mean_distance : float;
  max_distance : Rthv_engine.Cycles.t;
}

val stats : Rthv_engine.Cycles.t list -> trace_stats
(** @raise Invalid_argument on traces with fewer than two activations. *)

val pp_stats : Format.formatter -> trace_stats -> unit
