module Cycles = Rthv_engine.Cycles

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let write_values oc values =
  output_string oc "# microseconds per line\n";
  List.iter (fun v -> Printf.fprintf oc "%.3f\n" (Cycles.to_us v)) values

let save ~path timestamps = with_out path (fun oc -> write_values oc timestamps)

let parse_lines ic =
  let values = ref [] in
  let line_number = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       incr line_number;
       if line <> "" && line.[0] <> '#' then
         match float_of_string_opt line with
         | Some us -> values := Cycles.of_us_f us :: !values
         | None ->
             failwith
               (Printf.sprintf "Trace_io: malformed line %d: %S" !line_number
                  line)
     done
   with End_of_file -> ());
  List.rev !values

let load ~path =
  let values = with_in path parse_lines in
  List.sort Cycles.compare values

let save_distances ~path distances =
  with_out path (fun oc -> write_values oc (Array.to_list distances))

let load_distances ~path =
  let values = with_in path parse_lines in
  List.iter
    (fun v -> if v < 0 then failwith "Trace_io: negative distance")
    values;
  Array.of_list values
