module Cycles = Rthv_engine.Cycles
module Prng = Rthv_engine.Prng

let check_count count =
  if count < 0 then invalid_arg "Gen: negative count"

let exponential ~seed ~mean ~count =
  check_count count;
  if mean <= 0 then invalid_arg "Gen.exponential: mean must be positive";
  let rng = Prng.create ~seed in
  Array.init count (fun _ ->
      let d = Prng.exponential rng ~mean:(float_of_int mean) in
      Stdlib.max 1 (int_of_float (Float.round d)))

let exponential_clamped ~seed ~mean ~d_min ~count =
  if d_min <= 0 then invalid_arg "Gen.exponential_clamped: d_min must be positive";
  let distances = exponential ~seed ~mean ~count in
  Array.map (fun d -> Stdlib.max d d_min) distances

let uniform ~seed ~lo ~hi ~count =
  check_count count;
  if lo <= 0 || hi < lo then invalid_arg "Gen.uniform: need 0 < lo <= hi";
  let rng = Prng.create ~seed in
  Array.init count (fun _ -> lo + Prng.int rng (hi - lo + 1))

let constant ~period ~count =
  check_count count;
  if period <= 0 then invalid_arg "Gen.constant: period must be positive";
  Array.make count period

let bursty ~seed ~burst_len ~inner ~gap_mean ~count =
  check_count count;
  if burst_len <= 0 then invalid_arg "Gen.bursty: burst_len must be positive";
  if inner <= 0 || gap_mean <= 0 then
    invalid_arg "Gen.bursty: distances must be positive";
  let rng = Prng.create ~seed in
  Array.init count (fun i ->
      if i mod burst_len = 0 then
        let gap = Prng.exponential rng ~mean:(float_of_int gap_mean) in
        Stdlib.max inner (int_of_float (Float.round gap))
      else inner)

let mean_for_load ~c_bh_eff ~load =
  if load <= 0. || load > 1. then
    invalid_arg "Gen.mean_for_load: load must be in (0, 1]";
  int_of_float (Float.round (float_of_int c_bh_eff /. load))

let mean distances =
  if Array.length distances = 0 then 0.
  else
    float_of_int (Array.fold_left Cycles.( + ) 0 distances)
    /. float_of_int (Array.length distances)

let to_timestamps ?(start = 0) distances =
  let acc = ref start in
  Array.to_list
    (Array.map
       (fun d ->
         acc := Cycles.( + ) !acc d;
         !acc)
       distances)
