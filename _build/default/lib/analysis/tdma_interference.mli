(** Interference from TDMA time partitioning (equation (8) of the paper,
    after Tindell & Clark's holistic analysis).

    A task that may only execute inside its partition's slot of length [slot]
    within a TDMA cycle of length [cycle] loses, in any window of size [dt],
    at most [ceil(dt / cycle) * (cycle - slot)] time to the other slots
    (context-switch overhead included in the slot accounting). *)

type t = {
  cycle : Rthv_engine.Cycles.t;  (** T_TDMA: sum of all slot lengths. *)
  slot : Rthv_engine.Cycles.t;  (** T_i: the analysed partition's slot. *)
}

val make : cycle:Rthv_engine.Cycles.t -> slot:Rthv_engine.Cycles.t -> t
(** @raise Invalid_argument unless [0 < slot <= cycle]. *)

val interference : t -> Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** [interference t dt] is equation (8): I_TDMA(dt). *)

val worst_case_gap : t -> Rthv_engine.Cycles.t
(** [cycle - slot]: the longest contiguous foreign-slot stretch, which
    dominates delayed-IRQ latency in the baseline scheme. *)

val service : t -> Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Guaranteed service in a window: [max 0 (dt - interference t dt)].
    A lower bound on execution time available to the partition. *)
