module Cycles = Rthv_engine.Cycles

type outcome = Converged of Cycles.t | Diverged

type result = {
  response_time : Cycles.t;
  q_max : int;
  busy_windows : (int * Cycles.t) list;
  critical_q : int;
}

(* A few simulated hours at 200 MHz; any busy window that long means the
   resource is overloaded for every practical configuration in this repo. *)
let ceiling = 1_000_000 * Cycles.of_ms 1

(* Iteration cap: every genuine schedulability fixed point jumps to the next
   activation boundary per step, so well-formed systems converge in far
   fewer steps; a slow linear crawl towards the ceiling is an overload. *)
let max_iterations = 100_000

let fixed_point ~q ~wcet ~interference =
  if q < 1 then invalid_arg "Busy_window.fixed_point: q < 1";
  if wcet < 0 then invalid_arg "Busy_window.fixed_point: negative wcet";
  let base = q * wcet in
  let rec iterate steps w =
    if w > ceiling || steps > max_iterations then Diverged
    else begin
      let w' = Cycles.( + ) base (interference w) in
      if w' = w then Converged w
      else if w' < w then
        (* A non-monotone interference function shrank the window; the least
           fixed point is still bounded by w, so accept w. *)
        Converged w
      else iterate (steps + 1) w'
    end
  in
  iterate 0 base

let response_time ~wcet ~delta ~interference ?(max_q = 4096) () =
  let rec explore q acc =
    if q > max_q then
      Error
        (Printf.sprintf
           "busy period still open after %d activations (overload?)" max_q)
    else
      match fixed_point ~q ~wcet ~interference with
      | Diverged -> Error "busy window diverged: resource overloaded"
      | Converged w ->
          let acc = (q, w) :: acc in
          (* Equation (4): the (q+1)-th activation belongs to the same busy
             period iff it arrives no later than the q-event busy time. *)
          if delta (q + 1) <= w then explore (q + 1) acc
          else Ok (List.rev acc)
  in
  match explore 1 [] with
  | Error _ as e -> e
  | Ok busy_windows ->
      let response_time, critical_q =
        List.fold_left
          (fun (best, best_q) (q, w) ->
            let r = Cycles.( - ) w (delta q) in
            if r > best then (r, q) else (best, best_q))
          (0, 1) busy_windows
      in
      let q_max = List.length busy_windows in
      Ok { response_time; q_max; busy_windows; critical_q }

let utilisation ~contributions =
  List.fold_left (fun acc (rate, wcet) -> acc +. (rate *. wcet)) 0. contributions
