(** Sensitivity analysis: design-space queries over the worst-case IRQ
    latency analysis.

    System integrators rarely ask "what is R for these parameters" — they
    ask the inverse questions: how slow may the bottom handler get before a
    latency budget breaks, how much load can a source carry, how short must
    the TDMA cycle be for the *baseline* scheme to match interposition.
    Each query is a monotone predicate over one parameter, answered by
    doubling plus binary search on the equations of Sections 4-5. *)

type query = {
  tdma : Tdma_interference.t;
  costs : Irq_latency.costs;
  c_th : Rthv_engine.Cycles.t;
  interferers : Irq_latency.source list;
}

val make :
  ?interferers:Irq_latency.source list ->
  tdma:Tdma_interference.t ->
  costs:Irq_latency.costs ->
  c_th:Rthv_engine.Cycles.t ->
  unit ->
  query

val interposed_latency :
  query -> c_bh:Rthv_engine.Cycles.t -> d_min:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t option
(** Equation (16) worst case, [None] on overload. *)

val max_c_bh_for_latency :
  query ->
  d_min:Rthv_engine.Cycles.t ->
  budget:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t option
(** Largest bottom-handler WCET whose interposed worst-case latency stays at
    or below [budget].  [None] if even C_BH = 1 cycle misses the budget. *)

val min_d_min_for_latency :
  query ->
  c_bh:Rthv_engine.Cycles.t ->
  budget:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t option
(** Smallest monitor distance that keeps the interposed worst case within
    [budget] (shorter distances queue more activations in one busy period).
    [None] if no distance achieves it. *)

val baseline_cycle_for_latency :
  query ->
  c_bh:Rthv_engine.Cycles.t ->
  d_min:Rthv_engine.Cycles.t ->
  slot_fraction:float ->
  budget:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t option
(** The TDMA cycle length at which the {e baseline} (delayed) scheme would
    meet the same latency budget, keeping the subscriber's slot at
    [slot_fraction] of the cycle — i.e. how much faster the hypervisor would
    have to cycle to buy the latency that interposition gives for free.
    [None] if no cycle length suffices.  This quantifies the paper's
    introduction argument that shrinking T_TDMA is not a real alternative
    (the returned cycles are typically tiny, implying pathological
    context-switch rates). *)

val switch_rate_per_second : cycle:Rthv_engine.Cycles.t -> partitions:int -> float
(** Context switches per second a TDMA cycle implies — the overhead price of
    a [baseline_cycle_for_latency] answer. *)
