module Cycles = Rthv_engine.Cycles

type costs = { c_mon : Cycles.t; c_sched : Cycles.t; c_ctx : Cycles.t }

let costs_of_platform platform =
  {
    c_mon = Rthv_hw.Platform.monitor_cost platform;
    c_sched = Rthv_hw.Platform.sched_manip_cost platform;
    c_ctx = Rthv_hw.Platform.ctx_switch_cost platform;
  }

type source = {
  name : string;
  arrival : Arrival_curve.t;
  c_th : Cycles.t;
  c_bh : Cycles.t;
}

let total_wcet source = Cycles.( + ) source.c_th source.c_bh

let effective_bh costs source =
  Cycles.( + ) source.c_bh (Cycles.( + ) costs.c_sched (Cycles.( * ) costs.c_ctx 2))

let effective_th costs source = Cycles.( + ) source.c_th costs.c_mon

(* Sum of interfering top handlers: the third term of equation (11) /
   equation (16). *)
let foreign_top_handlers interferers dt =
  List.fold_left
    (fun acc source ->
      Cycles.( + ) acc
        (Cycles.( * ) source.c_th (Arrival_curve.eta_plus source.arrival dt)))
    0 interferers

(* Self top handlers beyond the q accounted activations fold into
   eta_self(W) * c_th (equations (10) + (6) combined into (11)). *)
let self_top_handlers ~arrival ~c_th dt =
  Cycles.( * ) c_th (Arrival_curve.eta_plus arrival dt)

let baseline ~tdma ~self ~interferers ?monitoring () =
  let c_th_self =
    match monitoring with
    | None -> self.c_th
    | Some costs -> effective_th costs self
  in
  let interference dt =
    let own = self_top_handlers ~arrival:self.arrival ~c_th:c_th_self dt in
    let tdma_term = Tdma_interference.interference tdma dt in
    let foreign = foreign_top_handlers interferers dt in
    Cycles.( + ) own (Cycles.( + ) tdma_term foreign)
  in
  Busy_window.response_time ~wcet:self.c_bh
    ~delta:(Arrival_curve.delta_min self.arrival)
    ~interference ()

let interposed ~costs ~self ~interferers () =
  let c_bh' = effective_bh costs self in
  let c_th' = effective_th costs self in
  let interference dt =
    let own = self_top_handlers ~arrival:self.arrival ~c_th:c_th' dt in
    let foreign = foreign_top_handlers interferers dt in
    Cycles.( + ) own foreign
  in
  Busy_window.response_time ~wcet:c_bh'
    ~delta:(Arrival_curve.delta_min self.arrival)
    ~interference ()

let baseline_dominant_term ~tdma = Tdma_interference.worst_case_gap tdma
