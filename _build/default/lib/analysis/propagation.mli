(** Output event models: what a downstream consumer sees.

    Compositional performance analysis (Richter 2004, Schliecker et al.
    2008) propagates event models through processing elements: a stream with
    input model eta^+ processed with best-case latency R_min and worst-case
    latency R_max produces completions whose arrival model is the input
    shifted by a response-time {e jitter} of [R_max - R_min].

    Here: the completions of an IRQ's bottom handler form the activation
    stream of whatever consumes its results (a guest task, an IPC port, a
    downstream partition).  Interposed handling shrinks R_max dramatically,
    so it shrinks the output jitter too — a second benefit of the paper's
    mechanism beyond the latency itself. *)

type t = {
  input : Arrival_curve.t;
  r_min : Rthv_engine.Cycles.t;  (** Best-case processing latency. *)
  r_max : Rthv_engine.Cycles.t;  (** Worst-case processing latency. *)
}

val output_jitter : t -> Rthv_engine.Cycles.t
(** [r_max - r_min]. *)

val output_model : t -> Arrival_curve.t
(** The completion stream's arrival model.  For a periodic or sporadic input
    with period/distance p this is periodic-with-jitter
    [(p, r_max - r_min)] with a conservative 1-cycle d_min floor; for
    already-jittered inputs the jitters add; explicit distance-function
    inputs are widened entry-wise (each distance shrunk by the jitter, with
    the same floor). *)

val best_case_interposed :
  costs:Irq_latency.costs -> c_th:Rthv_engine.Cycles.t -> c_bh:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Best-case end-to-end latency of an interposed IRQ: every stage at its
    cost with no interference (C'_TH + C_sched + C_ctx + C_BH). *)

val best_case_direct :
  c_th:Rthv_engine.Cycles.t -> c_bh:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Best case for direct handling: C_TH + C_BH. *)
