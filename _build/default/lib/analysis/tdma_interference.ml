module Cycles = Rthv_engine.Cycles

type t = { cycle : Cycles.t; slot : Cycles.t }

let make ~cycle ~slot =
  if slot <= 0 || slot > cycle then
    invalid_arg "Tdma_interference.make: need 0 < slot <= cycle";
  { cycle; slot }

let ceil_div a b = (a + b - 1) / b

let interference t dt =
  if dt <= 0 then 0 else ceil_div dt t.cycle * Cycles.( - ) t.cycle t.slot

let worst_case_gap t = Cycles.( - ) t.cycle t.slot

let service t dt = Stdlib.max 0 (Cycles.( - ) dt (interference t dt))
