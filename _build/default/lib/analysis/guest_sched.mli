(** Guest-task schedulability inside a TDMA partition.

    This closes the loop on equation (2): a partition's own fixed-priority
    task set must remain schedulable given (a) its TDMA service (equation
    (8)), and (b) the bounded interference b_Ip that interposed bottom
    handlers of other partitions may inject (equation (14)).  A system
    integrator grants a d_min to an IRQ source only if every other
    partition's task set passes this analysis with the corresponding
    interference curve.

    Tasks follow the fixed-priority preemptive model of
    {!Rthv_rtos.Guest}: lower [priority] value = higher priority; implicit
    deadlines (deadline = period) unless stated otherwise. *)

type task = {
  name : string;
  period : Rthv_engine.Cycles.t;
  wcet : Rthv_engine.Cycles.t;
  priority : int;
}

val of_spec : Rthv_rtos.Task.spec -> task
(** Forget the offset (critical-instant analysis is offset-free). *)

val utilisation : task list -> float

val response_time :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  task:task ->
  higher_priority:task list ->
  unit ->
  (Busy_window.result, string) result
(** Busy-window response time of [task] within its partition:
    [W(q) = q*C + I_TDMA(W) + interference(W) + blocking
            + sum_hp ceil-eta(W)*C_hp].

    [interference] is the foreign-interposition curve (default
    {!Independence.isolated}); [blocking] is a constant carry-in term
    (default 0) — pass one C'_BH when interpositions may spill across the
    partition's slot start.  The TDMA object should already account for the
    slot-entry context switch (slot := T_i − C_ctx). *)

val analyse :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  task list ->
  (task * (Busy_window.result, string) result) list
(** Response times for the whole set, each against its higher-priority
    subset.  Priority ties interfere with each other (conservative). *)

val schedulable :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  task list ->
  bool
(** All response times converge and meet implicit deadlines. *)

val min_tolerated_d_min :
  tdma:Tdma_interference.t ->
  ?blocking:Rthv_engine.Cycles.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  task list ->
  Rthv_engine.Cycles.t option
(** The smallest monitor [d_min] under which this task set stays
    schedulable when foreign interpositions of effective cost [c_bh_eff]
    are shaped by [Independence.d_min_bound ~d_min ~c_bh_eff] — i.e. the
    tightest grant a system integrator may hand to another partition's IRQ
    source without breaking this partition.  [None] if the set is
    unschedulable even in complete isolation.  Found by doubling plus
    binary search (the schedulability predicate is monotone in d_min). *)
