lib/analysis/guest_sched.mli: Busy_window Independence Rthv_engine Rthv_rtos Tdma_interference
