lib/analysis/certificate.ml: Busy_window Distance_fn Format Guest_sched Independence List Rthv_engine Tdma_interference
