lib/analysis/sensitivity.ml: Arrival_curve Busy_window Float Irq_latency Option Rthv_engine Stdlib Tdma_interference
