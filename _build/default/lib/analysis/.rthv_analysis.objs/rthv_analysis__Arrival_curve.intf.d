lib/analysis/arrival_curve.mli: Distance_fn Format Rthv_engine
