lib/analysis/edf_sched.mli: Guest_sched Independence Rthv_engine Tdma_interference
