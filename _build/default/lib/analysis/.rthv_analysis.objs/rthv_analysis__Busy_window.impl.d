lib/analysis/busy_window.ml: List Printf Rthv_engine
