lib/analysis/arrival_curve.ml: Distance_fn Format Rthv_engine Stdlib
