lib/analysis/sensitivity.mli: Irq_latency Rthv_engine Tdma_interference
