lib/analysis/distance_fn.ml: Array Float Format List Rthv_engine Stdlib
