lib/analysis/independence.mli: Distance_fn Rthv_engine
