lib/analysis/distance_fn.mli: Format Rthv_engine
