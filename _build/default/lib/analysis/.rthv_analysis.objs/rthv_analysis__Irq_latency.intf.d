lib/analysis/irq_latency.mli: Arrival_curve Busy_window Rthv_engine Rthv_hw Tdma_interference
