lib/analysis/guest_sched.ml: Busy_window Independence List Rthv_engine Rthv_rtos Stdlib Tdma_interference
