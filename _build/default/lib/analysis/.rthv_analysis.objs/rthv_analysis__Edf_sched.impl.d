lib/analysis/edf_sched.ml: Busy_window Guest_sched Independence List Rthv_engine Stdlib Tdma_interference
