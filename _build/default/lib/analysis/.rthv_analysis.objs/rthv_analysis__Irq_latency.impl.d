lib/analysis/irq_latency.ml: Arrival_curve Busy_window List Rthv_engine Rthv_hw Tdma_interference
