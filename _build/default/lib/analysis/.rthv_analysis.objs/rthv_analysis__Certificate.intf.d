lib/analysis/certificate.mli: Busy_window Distance_fn Format Guest_sched Rthv_engine
