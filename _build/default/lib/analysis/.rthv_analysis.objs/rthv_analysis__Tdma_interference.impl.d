lib/analysis/tdma_interference.ml: Rthv_engine Stdlib
