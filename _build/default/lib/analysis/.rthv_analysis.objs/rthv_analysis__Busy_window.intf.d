lib/analysis/busy_window.mli: Rthv_engine Stdlib
