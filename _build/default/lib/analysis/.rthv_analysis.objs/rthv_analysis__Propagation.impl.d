lib/analysis/propagation.ml: Array Arrival_curve Distance_fn Irq_latency Rthv_engine Stdlib
