lib/analysis/independence.ml: Distance_fn Float List Rthv_engine
