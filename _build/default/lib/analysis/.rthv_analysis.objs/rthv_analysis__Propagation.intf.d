lib/analysis/propagation.mli: Arrival_curve Irq_latency Rthv_engine
