lib/analysis/tdma_interference.mli: Rthv_engine
