(** Event models: upper arrival functions eta^+ and their minimum-distance
    duals delta^-.

    The busy-window analysis of the paper (Section 4) describes activation
    patterns by arrival functions eta^+(dt) — the maximum number of events in
    any time window of size dt (Le Boudec & Thiran's network calculus) — and
    uses the dual minimum-distance representation delta^-(q) (Richter 2004)
    for the analysed source itself.  This module provides the standard event
    models plus trace-derived models. *)

type t =
  | Periodic of { period : Rthv_engine.Cycles.t }
      (** Strictly periodic activations. *)
  | Periodic_jitter of {
      period : Rthv_engine.Cycles.t;
      jitter : Rthv_engine.Cycles.t;
      d_min : Rthv_engine.Cycles.t;
    }
      (** Periodic with release jitter and a minimum inter-event distance.
          [d_min] must be positive and at most [period]. *)
  | Sporadic of { d_min : Rthv_engine.Cycles.t }
      (** Only a minimum distance between consecutive events is known. *)
  | Distances of Distance_fn.t
      (** Explicit l-entry minimum-distance function (e.g. a monitoring
          condition, or a function learned from a trace). *)

val periodic : period_us:int -> t
val sporadic : d_min_us:int -> t

val periodic_jitter :
  period_us:int -> jitter_us:int -> ?d_min_us:int -> unit -> t
(** [d_min_us] defaults to 1 us (events cannot be simultaneous). *)

val of_distance_fn : Distance_fn.t -> t

val of_trace : l:int -> Rthv_engine.Cycles.t list -> t
(** Distance model learned from a sorted activation trace. *)

val eta_plus : t -> Rthv_engine.Cycles.t -> int
(** [eta_plus t dt]: maximum events in any half-open window of length [dt].
    0 for non-positive [dt].
    @raise Failure on degenerate models admitting unbounded load. *)

val delta_min : t -> int -> Rthv_engine.Cycles.t
(** [delta_min t q]: minimum span of [q] consecutive events; 0 for
    [q <= 1]. *)

val rate : t -> float
(** Long-term event rate, events per cycle. *)

val validate : t -> (unit, string) result
(** Structural sanity of the parameters. *)

val pp : Format.formatter -> t -> unit
