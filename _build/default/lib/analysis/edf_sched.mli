(** EDF schedulability inside a TDMA partition, demand-bound style.

    Guests may schedule their tasks EDF instead of fixed-priority
    ({!Rthv_rtos.Guest.policy}).  Schedulability inside a TDMA slot with
    bounded foreign interference follows the classic supply/demand argument
    (Baruah et al. for the demand side; hierarchical-scheduling supply
    functions for the TDMA side):

    - demand: [dbf(t) = sum_i (floor((t - D_i)/T_i) + 1)^+ * C_i] with
      implicit deadlines D = T;
    - supply: the partition's guaranteed service in any window of length t,
      [sbf(t) = t - I_TDMA(t) - I_interposed(t) - blocking];
    - the set is schedulable iff [dbf(t) <= sbf(t)] for all t up to a
      bounded horizon (checked at the demand step points, which is exact for
      step demand against our superadditively-decreasing supply). *)

type task = Guest_sched.task
(** Reuses the task record; [priority] is ignored under EDF. *)

val demand_bound : task list -> Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** [dbf] for implicit deadlines. *)

val supply_bound :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t
(** Guaranteed service in a window (never negative). *)

val schedulable :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  ?horizon:Rthv_engine.Cycles.t ->
  task list ->
  bool
(** Checks [dbf <= sbf] at every deadline step point up to [horizon]
    (default: 16x the largest period, capped at {!Busy_window.ceiling}).
    Checking only step points is exact — dbf is constant between them and
    sbf is non-decreasing.  The finite horizon is sufficient for the
    configurations in this repository; over-utilised sets diverge linearly
    and are caught well inside it. *)

val margin :
  tdma:Tdma_interference.t ->
  ?interference:Independence.interference_curve ->
  ?blocking:Rthv_engine.Cycles.t ->
  ?horizon:Rthv_engine.Cycles.t ->
  task list ->
  Rthv_engine.Cycles.t option
(** Worst-case slack [min_t (sbf t - dbf t)] over the checked points; [None]
    if the set is unschedulable (negative slack somewhere). *)
