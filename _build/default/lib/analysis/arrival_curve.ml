module Cycles = Rthv_engine.Cycles

type t =
  | Periodic of { period : Cycles.t }
  | Periodic_jitter of {
      period : Cycles.t;
      jitter : Cycles.t;
      d_min : Cycles.t;
    }
  | Sporadic of { d_min : Cycles.t }
  | Distances of Distance_fn.t

let periodic ~period_us = Periodic { period = Cycles.of_us period_us }
let sporadic ~d_min_us = Sporadic { d_min = Cycles.of_us d_min_us }

let periodic_jitter ~period_us ~jitter_us ?(d_min_us = 1) () =
  Periodic_jitter
    {
      period = Cycles.of_us period_us;
      jitter = Cycles.of_us jitter_us;
      d_min = Cycles.of_us d_min_us;
    }

let of_distance_fn fn = Distances fn
let of_trace ~l timestamps = Distances (Distance_fn.of_trace ~l timestamps)

(* ceil(a / b) for positive b. *)
let ceil_div a b = (a + b - 1) / b

let eta_plus t dt =
  if dt <= 0 then 0
  else
    match t with
    | Periodic { period } ->
        if period <= 0 then failwith "Arrival_curve: non-positive period";
        ceil_div dt period
    | Periodic_jitter { period; jitter; d_min } ->
        if period <= 0 || d_min <= 0 then
          failwith "Arrival_curve: non-positive period or d_min";
        Stdlib.min (ceil_div (dt + jitter) period) (ceil_div dt d_min)
    | Sporadic { d_min } ->
        if d_min <= 0 then failwith "Arrival_curve: non-positive d_min";
        ceil_div dt d_min
    | Distances fn -> Distance_fn.eta_plus fn dt

let delta_min t q =
  if q <= 1 then 0
  else
    match t with
    | Periodic { period } -> (q - 1) * period
    | Periodic_jitter { period; jitter; d_min } ->
        Stdlib.max (((q - 1) * period) - jitter) ((q - 1) * d_min)
    | Sporadic { d_min } -> (q - 1) * d_min
    | Distances fn -> Distance_fn.delta fn q

let rate = function
  | Periodic { period } | Periodic_jitter { period; _ } ->
      if period <= 0 then infinity else 1. /. float_of_int period
  | Sporadic { d_min } ->
      if d_min <= 0 then infinity else 1. /. float_of_int d_min
  | Distances fn -> Distance_fn.long_term_rate fn

let validate = function
  | Periodic { period } ->
      if period > 0 then Ok () else Error "period must be positive"
  | Periodic_jitter { period; jitter; d_min } ->
      if period <= 0 then Error "period must be positive"
      else if jitter < 0 then Error "jitter must be non-negative"
      else if d_min <= 0 then Error "d_min must be positive"
      else if d_min > period then Error "d_min must not exceed period"
      else Ok ()
  | Sporadic { d_min } ->
      if d_min > 0 then Ok () else Error "d_min must be positive"
  | Distances fn ->
      if Distance_fn.length fn > 0 then Ok ()
      else Error "distance function must have entries"

let pp ppf = function
  | Periodic { period } -> Format.fprintf ppf "periodic(%a)" Cycles.pp period
  | Periodic_jitter { period; jitter; d_min } ->
      Format.fprintf ppf "periodic(%a) + jitter(%a), d_min=%a" Cycles.pp
        period Cycles.pp jitter Cycles.pp d_min
  | Sporadic { d_min } -> Format.fprintf ppf "sporadic(d_min=%a)" Cycles.pp d_min
  | Distances fn -> Distance_fn.pp ppf fn
