module Cycles = Rthv_engine.Cycles

type query = {
  tdma : Tdma_interference.t;
  costs : Irq_latency.costs;
  c_th : Cycles.t;
  interferers : Irq_latency.source list;
}

let make ?(interferers = []) ~tdma ~costs ~c_th () =
  { tdma; costs; c_th; interferers }

let source query ~c_bh ~d_min =
  {
    Irq_latency.name = "query";
    arrival = Arrival_curve.Sporadic { d_min };
    c_th = query.c_th;
    c_bh;
  }

let interposed_latency query ~c_bh ~d_min =
  let self = source query ~c_bh ~d_min in
  match
    Irq_latency.interposed ~costs:query.costs ~self
      ~interferers:query.interferers ()
  with
  | Ok r -> Some r.Busy_window.response_time
  | Error _ -> None

(* Generic search: largest x in [1, hi_limit] with (ok x), where ok is
   downward-closed (monotone decreasing in x).  None if (ok 1) fails. *)
let largest_satisfying ~hi_limit ok =
  if not (ok 1) then None
  else begin
    let rec grow hi = if hi >= hi_limit || not (ok hi) then hi else grow (hi * 2) in
    let hi = grow 2 in
    if ok hi then Some (Stdlib.min hi hi_limit)
    else begin
      (* Invariant: ok lo, not (ok hi). *)
      let rec bisect lo hi =
        if hi - lo <= 1 then lo
        else begin
          let mid = lo + ((hi - lo) / 2) in
          if ok mid then bisect mid hi else bisect lo mid
        end
      in
      Some (bisect 1 hi)
    end
  end

(* Smallest x in [1, hi_limit] with (ok x), ok upward-closed. *)
let smallest_satisfying ~hi_limit ok =
  let rec grow hi =
    if ok hi then Some hi else if hi >= hi_limit then None else grow (hi * 2)
  in
  match grow 1 with
  | None -> None
  | Some hi ->
      if hi = 1 then Some 1
      else begin
        (* Invariant: not (ok lo), ok hi. *)
        let rec bisect lo hi =
          if hi - lo <= 1 then hi
          else begin
            let mid = lo + ((hi - lo) / 2) in
            if ok mid then bisect lo mid else bisect mid hi
          end
        in
        Some (bisect (hi / 2) hi)
      end

let max_c_bh_for_latency query ~d_min ~budget =
  let ok c_bh =
    match interposed_latency query ~c_bh ~d_min with
    | Some r -> r <= budget
    | None -> false
  in
  largest_satisfying ~hi_limit:Busy_window.ceiling ok

let min_d_min_for_latency query ~c_bh ~budget =
  let ok d_min =
    match interposed_latency query ~c_bh ~d_min with
    | Some r -> r <= budget
    | None -> false
  in
  smallest_satisfying ~hi_limit:Busy_window.ceiling ok

let baseline_cycle_for_latency query ~c_bh ~d_min ~slot_fraction ~budget =
  if slot_fraction <= 0. || slot_fraction >= 1. then
    invalid_arg "Sensitivity.baseline_cycle_for_latency: slot_fraction in (0,1)";
  let self = source query ~c_bh ~d_min in
  (* Parameterise by the foreign-slot gap (T_TDMA - T_i): the latency is
     monotone in the gap, whereas integer slot rounding at tiny cycle
     lengths would break monotonicity in the cycle itself. *)
  let cycle_of_gap gap =
    Stdlib.max (gap + 1)
      (int_of_float (Float.round (float_of_int gap /. (1. -. slot_fraction))))
  in
  let ok gap =
    let cycle = cycle_of_gap gap in
    let tdma = Tdma_interference.make ~cycle ~slot:(cycle - gap) in
    match Irq_latency.baseline ~tdma ~self ~interferers:query.interferers () with
    | Ok r -> r.Busy_window.response_time <= budget
    | Error _ -> false
  in
  Option.map cycle_of_gap (largest_satisfying ~hi_limit:Busy_window.ceiling ok)

let switch_rate_per_second ~cycle ~partitions =
  if cycle <= 0 then invalid_arg "Sensitivity.switch_rate_per_second";
  float_of_int partitions /. (float_of_int cycle /. 200e6)
