(** Worst-case IRQ latency analysis — equations (6)-(16) of the paper.

    An IRQ source is processed as one top handler (hypervisor context) plus
    one bottom handler (partition context).  Three schemes are analysed:

    - {b baseline}: the bottom handler only runs in the subscriber's TDMA
      slot (equation (11)); latency is dominated by [T_TDMA - T_i];
    - {b baseline under monitoring} (case 2 of Section 5.1): the IRQ violates
      the monitoring condition and is delayed, but the monitoring function
      still runs in the top handler, so C'_TH = C_TH + C_Mon applies;
    - {b interposed} (case 1, equation (16)): the IRQ conforms to the
      monitoring condition, the bottom handler runs immediately in a foreign
      slot with C'_BH = C_BH + C_sched + 2*C_ctx, and the TDMA interference
      term disappears entirely. *)

type costs = {
  c_mon : Rthv_engine.Cycles.t;  (** C_Mon: monitoring function WCET. *)
  c_sched : Rthv_engine.Cycles.t;  (** C_sched: scheduler manipulation. *)
  c_ctx : Rthv_engine.Cycles.t;  (** C_ctx: one partition context switch. *)
}

val costs_of_platform : Rthv_hw.Platform.t -> costs

type source = {
  name : string;
  arrival : Arrival_curve.t;
  c_th : Rthv_engine.Cycles.t;  (** C_TH: top handler WCET. *)
  c_bh : Rthv_engine.Cycles.t;  (** C_BH: bottom handler WCET. *)
}

val total_wcet : source -> Rthv_engine.Cycles.t
(** Equation (6): C_i = C_TH + C_BH. *)

val effective_bh : costs -> source -> Rthv_engine.Cycles.t
(** Equation (13): C'_BH = C_BH + C_sched + 2*C_ctx. *)

val effective_th : costs -> source -> Rthv_engine.Cycles.t
(** Equation (15): C'_TH = C_TH + C_Mon. *)

val baseline :
  tdma:Tdma_interference.t ->
  self:source ->
  interferers:source list ->
  ?monitoring:costs ->
  unit ->
  (Busy_window.result, string) result
(** Equations (11)-(12).  With [?monitoring] the source is analysed under the
    modified top handler but assuming its activations are treated as delayed
    (case 2): the self top-handler cost becomes C'_TH.  Interferer top
    handlers keep their declared [c_th] (inflate them in the caller if they
    are monitored too). *)

val interposed :
  costs:costs ->
  self:source ->
  interferers:source list ->
  unit ->
  (Busy_window.result, string) result
(** Equation (16): analysis for a source whose every activation satisfies the
    monitoring condition.  The TDMA term is dropped; C'_BH and C'_TH apply.
    The source's own arrival curve must be the monitored (conforming) one. *)

val baseline_dominant_term :
  tdma:Tdma_interference.t -> Rthv_engine.Cycles.t
(** [T_TDMA - T_i]: the term that dominates baseline latency when
    [C_TH, C_BH << T_TDMA - T_i] (Section 4's observation). *)
