(** Sufficient-temporal-independence certificate.

    Packages the paper's certification argument into one checkable object:
    given the TDMA schedule, each partition's task set, and the set of
    interposition grants (monitored IRQ sources with their effective
    bottom-handler costs), verify for {e every} partition that

    + the interference it can suffer from all granted sources together is
      bounded (equation (14), summed, plus one carry-in), and
    + its task set remains schedulable under that bound (equation (2) with
      b_Ip instantiated, checked through {!Guest_sched}).

    The result is a per-partition verdict with the numbers a reviewer needs;
    [holds] is the conjunction.  This is what an ARINC653-style integrator
    would attach to a change request that enables interposition. *)

type grant = {
  source_name : string;
  monitor : Distance_fn.t;  (** The monitoring condition enforced. *)
  c_bh_eff : Rthv_engine.Cycles.t;  (** Equation (13) for that source. *)
  subscriber : int;  (** Interpositions never steal from the subscriber's
                         own slot budget in this model, but its top handlers
                         still run; the subscriber is reported, not
                         special-cased. *)
}

type partition_input = {
  p_index : int;
  p_name : string;
  slot : Rthv_engine.Cycles.t;
  tasks : Guest_sched.task list;
}

type verdict = {
  v_index : int;
  v_name : string;
  interference_budget : Rthv_engine.Cycles.t;
      (** b_Ip: worst interference in one slot window (sum of grants'
          eq.-(14) curves over the slot, plus one carry-in). *)
  utilisation_loss : float;
      (** Long-term processor share taken by the grants. *)
  task_results : (Guest_sched.task * (Busy_window.result, string) result) list;
  schedulable : bool;
}

type t = {
  cycle : Rthv_engine.Cycles.t;
  c_ctx : Rthv_engine.Cycles.t;
  grants : grant list;
  verdicts : verdict list;
  holds : bool;  (** Every partition schedulable under its budget. *)
}

val check :
  cycle:Rthv_engine.Cycles.t ->
  c_ctx:Rthv_engine.Cycles.t ->
  partitions:partition_input list ->
  grants:grant list ->
  t
(** Analyse every partition against the sum of all grants.  Each partition
    is analysed with its slot shortened by [c_ctx] (the slot-entry switch)
    and a blocking term of one largest [c_bh_eff] (carry-in). *)

val pp : Format.formatter -> t -> unit
(** Human-readable certificate. *)
