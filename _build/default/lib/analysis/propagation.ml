module Cycles = Rthv_engine.Cycles

type t = {
  input : Arrival_curve.t;
  r_min : Cycles.t;
  r_max : Cycles.t;
}

let output_jitter t =
  if t.r_max < t.r_min then
    invalid_arg "Propagation: r_max must be at least r_min";
  Cycles.( - ) t.r_max t.r_min

let output_model t =
  let jitter = output_jitter t in
  match t.input with
  | Arrival_curve.Periodic { period } ->
      Arrival_curve.Periodic_jitter { period; jitter; d_min = 1 }
  | Arrival_curve.Periodic_jitter { period; jitter = j; d_min } ->
      Arrival_curve.Periodic_jitter
        {
          period;
          jitter = Cycles.( + ) j jitter;
          d_min = Stdlib.max 1 (Cycles.( - ) d_min jitter);
        }
  | Arrival_curve.Sporadic { d_min } ->
      (* Sporadic in, sporadic out, with distances compressed by the jitter
         but never below one cycle. *)
      Arrival_curve.Sporadic { d_min = Stdlib.max 1 (Cycles.( - ) d_min jitter) }
  | Arrival_curve.Distances fn ->
      let entries =
        Array.map
          (fun d -> Stdlib.max 1 (Cycles.( - ) d jitter))
          (Distance_fn.entries fn)
      in
      Arrival_curve.Distances (Distance_fn.of_entries entries)

let best_case_interposed ~costs ~c_th ~c_bh =
  Cycles.( + ) c_th
    (Cycles.( + ) costs.Irq_latency.c_mon
       (Cycles.( + ) costs.Irq_latency.c_sched
          (Cycles.( + ) costs.Irq_latency.c_ctx c_bh)))

let best_case_direct ~c_th ~c_bh = Cycles.( + ) c_th c_bh
