module Cycles = Rthv_engine.Cycles

type task = Guest_sched.task

let demand_bound tasks t =
  List.fold_left
    (fun acc (task : task) ->
      if t < task.Guest_sched.period then acc
      else begin
        let jobs = ((t - task.Guest_sched.period) / task.Guest_sched.period) + 1 in
        Cycles.( + ) acc (Cycles.( * ) task.Guest_sched.wcet jobs)
      end)
    0 tasks

let supply_bound ~tdma ?(interference = Independence.isolated) ?(blocking = 0)
    t =
  if t <= 0 then 0
  else
    Stdlib.max 0
      (t - Tdma_interference.interference tdma t - interference t - blocking)

let default_horizon tasks =
  let max_period =
    List.fold_left
      (fun acc (task : task) -> Cycles.max acc task.Guest_sched.period)
      1 tasks
  in
  Stdlib.min Busy_window.ceiling (16 * max_period)

let check_points tasks ~horizon =
  (* dbf only steps at multiples of the periods (implicit deadlines). *)
  let points = ref [] in
  List.iter
    (fun (task : task) ->
      let rec walk k =
        let t = Cycles.( * ) task.Guest_sched.period k in
        if t <= horizon then begin
          points := t :: !points;
          walk (k + 1)
        end
      in
      walk 1)
    tasks;
  List.sort_uniq compare !points

let schedulable ~tdma ?interference ?blocking ?horizon tasks =
  match tasks with
  | [] -> true
  | _ ->
      let horizon =
        match horizon with
        | Some h -> h
        | None -> default_horizon tasks
      in
      List.for_all
        (fun t ->
          demand_bound tasks t <= supply_bound ~tdma ?interference ?blocking t)
        (check_points tasks ~horizon)

let margin ~tdma ?interference ?blocking ?horizon tasks =
  match tasks with
  | [] -> Some Busy_window.ceiling
  | _ ->
      let horizon =
        match horizon with
        | Some h -> h
        | None -> default_horizon tasks
      in
      let slack =
        List.fold_left
          (fun acc t ->
            let s =
              supply_bound ~tdma ?interference ?blocking t
              - demand_bound tasks t
            in
            Cycles.min acc s)
          Busy_window.ceiling
          (check_points tasks ~horizon)
      in
      if slack < 0 then None else Some slack
