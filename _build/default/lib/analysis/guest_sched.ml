module Cycles = Rthv_engine.Cycles

type task = {
  name : string;
  period : Cycles.t;
  wcet : Cycles.t;
  priority : int;
}

let of_spec (spec : Rthv_rtos.Task.spec) =
  {
    name = spec.Rthv_rtos.Task.name;
    period = spec.Rthv_rtos.Task.period;
    wcet = spec.Rthv_rtos.Task.wcet;
    priority = spec.Rthv_rtos.Task.priority;
  }

let utilisation tasks =
  List.fold_left
    (fun acc task ->
      acc +. (float_of_int task.wcet /. float_of_int task.period))
    0. tasks

let ceil_div a b = (a + b - 1) / b

let response_time ~tdma ?(interference = Independence.isolated) ?(blocking = 0)
    ~task ~higher_priority () =
  let hp_demand dt =
    List.fold_left
      (fun acc hp ->
        if dt <= 0 then acc
        else Cycles.( + ) acc (Cycles.( * ) hp.wcet (ceil_div dt hp.period)))
      0 higher_priority
  in
  let total_interference dt =
    Cycles.( + )
      (Tdma_interference.interference tdma dt)
      (Cycles.( + ) (interference dt) (Cycles.( + ) blocking (hp_demand dt)))
  in
  let delta q = if q <= 1 then 0 else (q - 1) * task.period in
  Busy_window.response_time ~wcet:task.wcet ~delta
    ~interference:total_interference ()

let analyse ~tdma ?interference ?blocking tasks =
  List.map
    (fun task ->
      let higher_priority =
        List.filter
          (fun other -> other != task && other.priority <= task.priority)
          tasks
      in
      ( task,
        response_time ~tdma ?interference ?blocking ~task ~higher_priority ()
      ))
    tasks

let schedulable ~tdma ?interference ?blocking tasks =
  List.for_all
    (fun (task, result) ->
      match result with
      | Ok r -> r.Busy_window.response_time <= task.period
      | Error _ -> false)
    (analyse ~tdma ?interference ?blocking tasks)

let min_tolerated_d_min ~tdma ?blocking ~c_bh_eff tasks =
  let ok d_min =
    let interference = Independence.d_min_bound ~d_min ~c_bh_eff in
    schedulable ~tdma ~interference ?blocking tasks
  in
  if not (schedulable ~tdma ?blocking tasks) then None
  else begin
    (* Find an upper bound that works, then bisect for the smallest. *)
    let rec find_hi hi =
      if ok hi then Some hi
      else if hi > Busy_window.ceiling then None
      else find_hi (hi * 2)
    in
    match find_hi (Stdlib.max 1 c_bh_eff) with
    | None -> None
    | Some hi ->
        let rec bisect lo hi =
          (* Invariant: not (ok lo) [or lo = 0], ok hi. *)
          if hi - lo <= 1 then hi
          else begin
            let mid = lo + ((hi - lo) / 2) in
            if ok mid then bisect lo mid else bisect mid hi
          end
        in
        Some (bisect 0 hi)
  end
