type series = { s_label : string; glyph : char; points : (float * float) list }

let series ~label ~glyph points = { s_label = label; glyph; points }

let render ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y") ppf
    all_series =
  let points = List.concat_map (fun s -> s.points) all_series in
  if points = [] then
    Format.fprintf ppf "(no data to plot)@."
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let fold f = function
      | [] -> 0.
      | first :: rest -> List.fold_left f first rest
    in
    let x_min = fold Float.min xs and x_max = fold Float.max xs in
    let y_min = fold Float.min ys and y_max = fold Float.max ys in
    let y_pad = Float.max 1e-9 (0.05 *. (y_max -. y_min)) in
    let y_lo = y_min -. y_pad and y_hi = y_max +. y_pad in
    let x_span = Float.max 1e-9 (x_max -. x_min) in
    let y_span = y_hi -. y_lo in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
            in
            let row =
              (height - 1)
              - int_of_float ((y -. y_lo) /. y_span *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- s.glyph)
          s.points)
      all_series;
    Format.fprintf ppf "%s@." y_label;
    Array.iteri
      (fun row line ->
        let y_value =
          y_hi -. (float_of_int row /. float_of_int (height - 1) *. y_span)
        in
        Format.fprintf ppf "%10.1f |%s@." y_value
          (String.init width (fun col -> line.(col))))
      grid;
    Format.fprintf ppf "%10s +%s@." "" (String.make width '-');
    Format.fprintf ppf "%10s  %-*.1f%*.1f  (%s)@." "" (width - 8) x_min 8
      x_max x_label;
    List.iter
      (fun s -> Format.fprintf ppf "%10s  %c = %s@." "" s.glyph s.s_label)
      all_series
  end
