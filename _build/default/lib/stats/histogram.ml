type t = {
  bin_width : float;
  max_value : float;
  counts : int array;
  mutable overflow : int;
  mutable total : int;
}

let create ~bin_width_us ~max_us =
  if bin_width_us <= 0. || max_us <= 0. then
    invalid_arg "Histogram.create: parameters must be positive";
  let n = int_of_float (Float.ceil (max_us /. bin_width_us)) in
  {
    bin_width = bin_width_us;
    max_value = max_us;
    counts = Array.make n 0;
    overflow = 0;
    total = 0;
  }

let add t value =
  if value < 0. then invalid_arg "Histogram.add: negative value";
  t.total <- t.total + 1;
  if value >= t.max_value then t.overflow <- t.overflow + 1
  else begin
    let bin = int_of_float (value /. t.bin_width) in
    let bin = Stdlib.min bin (Array.length t.counts - 1) in
    t.counts.(bin) <- t.counts.(bin) + 1
  end

let add_all t values = List.iter (add t) values
let count t = t.total

let last_nonempty t =
  let last = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then last := i) t.counts;
  !last

let bins t =
  let last = last_nonempty t in
  let rows = ref [] in
  if t.overflow > 0 then rows := [ (t.max_value, infinity, t.overflow) ];
  for i = last downto 0 do
    let lo = float_of_int i *. t.bin_width in
    rows := (lo, lo +. t.bin_width, t.counts.(i)) :: !rows
  done;
  !rows

let bin_count t = Array.length t.counts

let max_bin t =
  List.fold_left
    (fun acc (lo, hi, c) ->
      match acc with
      | Some (_, _, best) when best >= c -> acc
      | _ when c > 0 -> Some (lo, hi, c)
      | _ -> acc)
    None (bins t)

let quantile t p =
  if p < 0. || p > 1. then invalid_arg "Histogram.quantile: p outside [0,1]";
  if t.total = 0 then invalid_arg "Histogram.quantile: empty histogram";
  let target = int_of_float (Float.ceil (p *. float_of_int t.total)) in
  let target = Stdlib.max 1 target in
  let rec scan i seen =
    if i >= Array.length t.counts then t.max_value
    else begin
      let seen = seen + t.counts.(i) in
      if seen >= target then (float_of_int i +. 0.5) *. t.bin_width
      else scan (i + 1) seen
    end
  in
  scan 0 0

let render ?(width = 50) ?(log_scale = false) ppf t =
  let rows = bins t in
  let scale_of c =
    if log_scale then log1p (float_of_int c) else float_of_int c
  in
  let peak =
    List.fold_left (fun acc (_, _, c) -> Stdlib.max acc (scale_of c)) 1. rows
  in
  Format.fprintf ppf "total=%d@." t.total;
  List.iter
    (fun (lo, hi, c) ->
      let bar_len =
        int_of_float (Float.round (scale_of c /. peak *. float_of_int width))
      in
      let bar = String.make bar_len '#' in
      if hi = infinity then
        Format.fprintf ppf "%8.0f+      %6d %s@." lo c bar
      else Format.fprintf ppf "%8.0f-%-6.0f %6d %s@." lo hi c bar)
    rows
