(** Index-ordered series utilities — the Figure-7 view of an experiment:
    average IRQ latency plotted over the IRQ event index. *)

val running_mean : window:int -> float array -> float array
(** [running_mean ~window values]: element [i] is the mean of the last
    [window] values ending at [i] (fewer at the start).
    @raise Invalid_argument if [window <= 0]. *)

val cumulative_mean : float array -> float array
(** Element [i] is the mean of values [0..i]. *)

val downsample : every:int -> 'a array -> (int * 'a) list
(** Every [every]-th element with its index (plus the last element), for
    compact series printing.  @raise Invalid_argument if [every <= 0]. *)

val segment_mean : float array -> lo:int -> hi:int -> float
(** Mean of [values.(lo) .. values.(hi-1)].
    @raise Invalid_argument on an empty or out-of-range segment. *)
