lib/stats/ascii_plot.ml: Array Float Format List String
