lib/stats/series.mli:
