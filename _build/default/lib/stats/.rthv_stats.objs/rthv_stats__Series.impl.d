lib/stats/series.ml: Array List Stdlib
