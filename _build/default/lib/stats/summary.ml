type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted p =
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p outside [0,100]";
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let of_array values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0. values in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. values
    /. float_of_int n
  in
  {
    n;
    mean;
    stddev = sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 50.;
    p95 = percentile sorted 95.;
    p99 = percentile sorted 99.;
  }

let of_list values = of_array (Array.of_list values)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.1f sd=%.1f min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" t.n
    t.mean t.stddev t.min t.p50 t.p95 t.p99 t.max
