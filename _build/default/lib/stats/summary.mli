(** Descriptive statistics of a sample. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** Population standard deviation. *)
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile sorted p] by nearest-rank on a {e sorted} array,
    [0 <= p <= 100]. *)

val pp : Format.formatter -> t -> unit
