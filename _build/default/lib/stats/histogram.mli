(** Fixed-bin histograms over microsecond-valued measurements, in the style
    of Figure 6 of the paper (latency histograms with 8000 us range). *)

type t

val create : bin_width_us:float -> max_us:float -> t
(** Bins [k*w, (k+1)*w) covering [0, max_us); values at or beyond [max_us]
    land in an overflow bin.  @raise Invalid_argument on non-positive
    parameters. *)

val add : t -> float -> unit
(** Add one measurement (in microseconds; negatives raise). *)

val add_all : t -> float list -> unit

val count : t -> int
(** Total measurements. *)

val bins : t -> (float * float * int) list
(** [(lo_us, hi_us, count)] per bin, ascending, including trailing empty bins
    up to the last non-empty one; the overflow bin appears with
    [hi_us = infinity] when non-empty. *)

val bin_count : t -> int

val max_bin : t -> (float * float * int) option
(** The fullest bin. *)

val quantile : t -> float -> float
(** [quantile t p] approximates the p-quantile (0 <= p <= 1) from bin
    midpoints.  @raise Invalid_argument on empty histogram or p outside
    [0, 1]. *)

val render :
  ?width:int -> ?log_scale:bool -> Format.formatter -> t -> unit
(** ASCII rendering: one row per bin with a bar scaled to the fullest bin.
    [log_scale] compresses tall bins — the paper's "broken y-axis with dual
    scale for better readability" equivalent. *)
