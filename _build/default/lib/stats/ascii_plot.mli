(** Minimal ASCII line plots for terminal reports.

    Renders one or more (x, y) series into a character grid — enough to eyeball
    the Figure-7 curves in `bench/main.exe` output without leaving the
    terminal.  Each series is drawn with its own glyph; overlapping points
    show the glyph of the later series. *)

type series = {
  s_label : string;
  glyph : char;
  points : (float * float) list;
}

val series : label:string -> glyph:char -> (float * float) list -> series

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  Format.formatter ->
  series list ->
  unit
(** Plot all series on shared axes ([width] x [height] interior, defaults
    72x20).  Axis ranges are the unions of the series' ranges; y is padded
    by 5 %.  Empty input renders a note instead of a plot. *)
