let running_mean ~window values =
  if window <= 0 then invalid_arg "Series.running_mean: window must be positive";
  let n = Array.length values in
  let out = Array.make n 0. in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. values.(i);
    if i >= window then sum := !sum -. values.(i - window);
    let len = Stdlib.min (i + 1) window in
    out.(i) <- !sum /. float_of_int len
  done;
  out

let cumulative_mean values =
  let n = Array.length values in
  let out = Array.make n 0. in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. values.(i);
    out.(i) <- !sum /. float_of_int (i + 1)
  done;
  out

let downsample ~every values =
  if every <= 0 then invalid_arg "Series.downsample: every must be positive";
  let n = Array.length values in
  let rec collect i acc =
    if i >= n then List.rev acc else collect (i + every) ((i, values.(i)) :: acc)
  in
  let samples = collect 0 [] in
  if n = 0 then []
  else begin
    let last = (n - 1, values.(n - 1)) in
    match List.rev samples with
    | (i, _) :: _ when i = n - 1 -> samples
    | _ -> samples @ [ last ]
  end

let segment_mean values ~lo ~hi =
  if lo < 0 || hi > Array.length values || lo >= hi then
    invalid_arg "Series.segment_mean: bad segment";
  let sum = ref 0. in
  for i = lo to hi - 1 do
    sum := !sum +. values.(i)
  done;
  !sum /. float_of_int (hi - lo)
