(* Cross-partition dataflow under interrupt load.

   A sensor task in partition P1 publishes a measurement every 10 ms through
   a hypervisor-owned queuing port (Figure 1's IPC); a fusion task in P2
   consumes it.  P2 also subscribes a heavily loaded interrupt source.

   The experiment compares the pipeline's end-to-end latency and the IRQ
   latency with the original top handler vs the monitored one: interposition
   slashes IRQ latency while the pipeline sees only the bounded
   interference — sufficient temporal independence at the dataflow level.

   Run with:  dune exec examples/ipc_pipeline.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Ipc = Rthv_rtos.Ipc
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary

let d_min = Cycles.of_us 1_544

let config shaping =
  let producer =
    Task.spec ~name:"sensor" ~period_us:10_000 ~wcet_us:300 ~produces:"meas" ()
  in
  let consumer =
    Task.spec ~name:"fusion" ~period_us:10_000 ~wcet_us:800 ~consumes:"meas" ()
  in
  Config.make
    ~ports:[ ("meas", 16) ]
    ~partitions:
      [
        Config.partition ~name:"P1" ~slot_us:6_000 ~tasks:[ producer ] ();
        Config.partition ~name:"P2" ~slot_us:6_000 ~tasks:[ consumer ] ();
        Config.partition ~name:"HK" ~slot_us:2_000 ();
      ]
    ~sources:
      [
        Config.source ~name:"radio" ~line:0 ~subscriber:1 ~c_th_us:5
          ~c_bh_us:50
          ~interarrivals:
            (Gen.exponential_clamped ~seed:11 ~mean:d_min ~d_min ~count:4_000)
          ~shaping ();
      ]
    ()

let run label shaping =
  let sim = Hyp_sim.create (config shaping) in
  Hyp_sim.run sim;
  let irq =
    Summary.of_list (List.map Irq_record.latency_us (Hyp_sim.records sim))
  in
  let port = Hyp_sim.port sim "meas" in
  let pipeline = Summary.of_list (Ipc.latencies_us port) in
  Format.printf
    "%-11s irq avg %7.1fus worst %7.1fus | pipeline avg %7.1fus p95 %8.1fus \
     worst %8.1fus (%d msgs, %d dropped)@."
    label irq.Summary.mean irq.Summary.max pipeline.Summary.mean
    pipeline.Summary.p95 pipeline.Summary.max
    (Ipc.received_count port) (Ipc.dropped_count port)

let () =
  Format.printf
    "sensor(P1, 10ms) --meas--> fusion(P2, 10ms); radio IRQs -> P2 at ~10%% \
     load@.";
  run "baseline" Config.No_shaping;
  run "monitored" (Config.Fixed_monitor (DF.d_min d_min));
  Format.printf
    "@.The ~25x IRQ latency win costs the pipeline nothing here — it even \
     improves,@.because P2's bottom handlers no longer pile up at its slot \
     start.  Whatever@.the workload, the interference is bounded by \
     equation (14): at most %.0fus@.per slot.@."
    (Cycles.to_us
       (Rthv_analysis.Independence.max_slot_loss ~monitor:(DF.d_min d_min)
          ~c_bh_eff:(Cycles.of_us 50 + 877 + (2 * Cycles.of_us 50))
          ~slot:(Cycles.of_us 6_000)))
