(* Analysis vs simulation: compute the paper's worst-case IRQ latency bounds
   (equations (11)-(12) for the baseline and (16) for interposed handling)
   and validate them against observed simulation maxima on conforming
   (sporadic) arrivals.

   Run with:  dune exec examples/analysis_vs_sim.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module AC = Rthv_analysis.Arrival_curve
module BW = Rthv_analysis.Busy_window
module DF = Rthv_analysis.Distance_fn
module IL = Rthv_analysis.Irq_latency
module TI = Rthv_analysis.Tdma_interference
module Platform = Rthv_hw.Platform
module Gen = Rthv_workload.Gen

let slot_us = 6_000
let cycle_us = 14_000
let c_th_us = 5
let c_bh_us = 50

let partitions =
  [
    Config.partition ~name:"P1" ~slot_us ();
    Config.partition ~name:"P2" ~slot_us ();
    Config.partition ~name:"HK" ~slot_us:2_000 ();
  ]

let costs = IL.costs_of_platform Platform.arm926ejs_200mhz

let analysis ~d_min =
  let self =
    {
      IL.name = "irq";
      arrival = AC.Sporadic { d_min };
      c_th = Cycles.of_us c_th_us;
      c_bh = Cycles.of_us c_bh_us;
    }
  in
  (* The simulator pays the slot-entry context switch inside the slot, so
     analyse with the effective slot. *)
  let tdma =
    TI.make ~cycle:(Cycles.of_us cycle_us)
      ~slot:(Cycles.of_us slot_us - costs.IL.c_ctx)
  in
  let get = function
    | Ok r -> Cycles.to_us r.BW.response_time
    | Error msg -> failwith msg
  in
  ( get (IL.baseline ~tdma ~self ~interferers:[] ()),
    get (IL.interposed ~costs ~self ~interferers:[] ()) )

let simulate ~d_min ~shaping =
  let interarrivals =
    Gen.exponential_clamped ~seed:3 ~mean:d_min ~d_min ~count:3_000
  in
  let source =
    Config.source ~name:"irq" ~line:0 ~subscriber:1 ~c_th_us ~c_bh_us
      ~interarrivals ~shaping ()
  in
  let sim = Hyp_sim.create (Config.make ~partitions ~sources:[ source ] ()) in
  Hyp_sim.run sim;
  List.fold_left
    (fun acc r -> Float.max acc (Irq_record.latency_us r))
    0.
    (Hyp_sim.records sim)

let () =
  Format.printf
    "worst-case IRQ latency: analysis bound vs observed simulation maximum@.";
  Format.printf "%10s | %12s %12s | %12s %12s@." "d_min" "R_baseline"
    "sim max" "R_interposed" "sim max";
  List.iter
    (fun d_min_us ->
      let d_min = Cycles.of_us d_min_us in
      let r_baseline, r_interposed = analysis ~d_min in
      let sim_baseline = simulate ~d_min ~shaping:Config.No_shaping in
      let sim_interposed =
        simulate ~d_min ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
      in
      Format.printf "%8dus | %10.1fus %10.1fus | %10.1fus %10.1fus  %s@."
        d_min_us r_baseline sim_baseline r_interposed sim_interposed
        (if sim_baseline <= r_baseline && sim_interposed <= r_interposed +. 60.
         then "sound"
         else "VIOLATION");
      ())
    [ 500; 1_000; 2_000; 5_000; 15_000 ];
  Format.printf
    "@.(The interposed column allows +60us slack: direct IRQs queue behind@.\
     a slot-entry context switch, which equation (16) does not model.)@."
