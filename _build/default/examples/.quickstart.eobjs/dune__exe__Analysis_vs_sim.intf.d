examples/analysis_vs_sim.mli:
