examples/quickstart.mli:
