examples/analysis_vs_sim.ml: Float Format List Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_workload
