examples/automotive_ecu.mli:
