examples/avionics_ima.ml: Array Format List Rthv_analysis Rthv_core Rthv_engine Rthv_rtos Rthv_stats Rthv_workload
