examples/design_flow.ml: Array Format List Option Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_rtos Rthv_workload
