examples/ipc_pipeline.mli:
