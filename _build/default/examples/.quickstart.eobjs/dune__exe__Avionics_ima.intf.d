examples/avionics_ima.mli:
