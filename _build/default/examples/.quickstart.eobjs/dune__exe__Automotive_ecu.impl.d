examples/automotive_ecu.ml: Array Format List Rthv_analysis Rthv_core Rthv_engine Rthv_stats Rthv_workload
