(* An ARINC653-style Integrated Modular Avionics scenario: four partitions of
   different criticality share one core under TDMA, each running periodic
   guest tasks.  Two interrupt sources (a sensor bus and a datalink) are
   subscribed by different partitions; the datalink uses monitored interposed
   handling.

   The example demonstrates the certification argument of the paper: grant a
   latency improvement to the datalink while *auditing* that every other
   partition's interference budget (equation (2)) still holds — both
   analytically (equation (14)) and as measured by the hypervisor.

   Run with:  dune exec examples/avionics_ima.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Task = Rthv_rtos.Task
module Guest = Rthv_rtos.Guest
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary

let slot_us = [ ("flight_ctl", 4_000); ("nav", 4_000); ("datalink", 3_000); ("maint", 1_000) ]

let partitions =
  [
    Config.partition ~name:"flight_ctl" ~slot_us:4_000
      ~tasks:
        [
          Task.spec ~name:"attitude" ~period_us:12_000 ~wcet_us:800 ~priority:0 ();
          Task.spec ~name:"actuator" ~period_us:24_000 ~wcet_us:1_200 ~priority:1 ();
        ]
      ();
    Config.partition ~name:"nav" ~slot_us:4_000
      ~tasks:[ Task.spec ~name:"kalman" ~period_us:24_000 ~wcet_us:2_500 () ]
      ();
    Config.partition ~name:"datalink" ~slot_us:3_000 ();
    Config.partition ~name:"maint" ~slot_us:1_000 ();
  ]

(* The datalink's d_min: sized with Independence.required_d_min so the
   long-term interference on other partitions stays below 3 %. *)
let c_bh_eff datalink_bh_us =
  Cycles.of_us datalink_bh_us + 877 + (2 * Cycles.of_us 50)

let () =
  let datalink_bh_us = 60 in
  let d_min =
    Independence.required_d_min ~c_bh_eff:(c_bh_eff datalink_bh_us)
      ~max_utilisation:0.03
  in
  Format.printf "granted d_min for the datalink: %a (interference <= 3%%)@."
    Cycles.pp d_min;

  let sources =
    [
      (* Sensor bus -> flight_ctl, classic delayed handling (certified
         path, no interposition). *)
      Config.source ~name:"sensor_bus" ~line:0 ~subscriber:0 ~c_th_us:4
        ~c_bh_us:30
        ~interarrivals:(Gen.constant ~period:(Cycles.of_us 6_000) ~count:2_000)
        ();
      (* Datalink frames -> datalink partition, monitored interposition. *)
      Config.source ~name:"datalink_rx" ~line:1 ~subscriber:2 ~c_th_us:6
        ~c_bh_us:datalink_bh_us
        ~interarrivals:
          (Gen.exponential_clamped ~seed:7 ~mean:(2 * d_min) ~d_min
             ~count:3_000)
        ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
        ();
    ]
  in
  let sim = Hyp_sim.create (Config.make ~partitions ~sources ()) in
  Hyp_sim.run sim;

  let records = Hyp_sim.records sim in
  let latency_of source =
    Summary.of_list
      (List.filter_map
         (fun r ->
           if r.Irq_record.source = source then
             Some (Irq_record.latency_us r)
           else None)
         records)
  in
  let sensor = latency_of "sensor_bus" and datalink = latency_of "datalink_rx" in
  Format.printf "sensor_bus  (delayed path) : avg %7.1fus  worst %8.1fus@."
    sensor.Summary.mean sensor.Summary.max;
  Format.printf "datalink_rx (interposed)   : avg %7.1fus  worst %8.1fus@."
    datalink.Summary.mean datalink.Summary.max;

  (* Independence audit: per-partition measured interference vs eq. (14). *)
  let stats = Hyp_sim.stats sim in
  Format.printf "@.independence audit (interference per slot, measured vs bound):@.";
  List.iteri
    (fun i (name, slot) ->
      let bound =
        Independence.max_slot_loss ~monitor:(DF.d_min d_min)
          ~c_bh_eff:(c_bh_eff datalink_bh_us) ~slot:(Cycles.of_us slot)
      in
      let measured = stats.Hyp_sim.stolen_slot_max.(i) in
      Format.printf "  %-10s measured %8.1fus  bound %8.1fus  %s@." name
        (Cycles.to_us measured) (Cycles.to_us bound)
        (if measured <= bound then "OK" else "VIOLATION"))
    slot_us;

  (* The integrator-facing artefact: a sufficient-temporal-independence
     certificate (equations (2) + (14) + guest schedulability), the analytic
     counterpart of the measured audit above. *)
  let module Cert = Rthv_analysis.Certificate in
  let module GS = Rthv_analysis.Guest_sched in
  let cert =
    Cert.check
      ~cycle:(Cycles.of_us 12_000)
      ~c_ctx:(Cycles.of_us 50)
      ~partitions:
        (List.mapi
           (fun i (p : Config.partition) ->
             {
               Cert.p_index = i;
               p_name = p.Config.pname;
               slot = p.Config.slot;
               tasks = List.map GS.of_spec p.Config.tasks;
             })
           partitions)
      ~grants:
        [
          {
            Cert.source_name = "datalink_rx";
            monitor = DF.d_min d_min;
            c_bh_eff = c_bh_eff datalink_bh_us;
            subscriber = 2;
          };
        ]
  in
  Format.printf "@.%a" Cert.pp cert;

  (* Guest-level check: the flight-control tasks kept their deadlines. *)
  let guest = Hyp_sim.guest sim 0 in
  let completions = Guest.take_completions guest in
  let worst_by task =
    List.fold_left
      (fun acc c ->
        if c.Task.job_task = task then max acc (Task.response_time c) else acc)
      0 completions
  in
  Format.printf "@.flight_ctl guest tasks (%d jobs completed):@."
    (List.length completions);
  List.iter
    (fun task ->
      Format.printf "  %-9s worst response %a@." task Cycles.pp (worst_by task))
    [ "attitude"; "actuator" ]
