(* Quickstart: build a two-partition hypervisor system, fire IRQs at it, and
   compare interrupt latencies with and without monitoring-based interposed
   handling.

   Run with:  dune exec examples/quickstart.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Distance_fn = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary

let () =
  (* 1. Two application partitions with 5 ms TDMA slots.  Partition "io"
     subscribes an interrupt source (think: a network device). *)
  let partitions =
    [
      Config.partition ~name:"control" ~slot_us:5_000 ();
      Config.partition ~name:"io" ~slot_us:5_000 ();
    ]
  in

  (* 2. Pre-generate exponential interarrival times (mean 2 ms) for 2000
     IRQs, like the paper's timer-driven experiment setup. *)
  let d_min = Cycles.of_us 2_000 in
  let interarrivals =
    Gen.exponential ~seed:1 ~mean:d_min ~count:2_000
  in

  let make_source shaping =
    Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
      ~interarrivals ~shaping ()
  in

  let run shaping =
    let config = Config.make ~partitions ~sources:[ make_source shaping ] () in
    let sim = Hyp_sim.create config in
    Hyp_sim.run sim;
    let latencies =
      List.map Irq_record.latency_us (Hyp_sim.records sim)
    in
    (Summary.of_list latencies, Hyp_sim.stats sim)
  in

  (* 3. Baseline: the original top handler — bottom handlers only run in the
     subscriber's own slot. *)
  let baseline, baseline_stats = run Config.No_shaping in

  (* 4. Monitored: bottom handlers may run in foreign slots, shaped by a
     d_min monitor so other partitions see bounded interference. *)
  let monitored, monitored_stats =
    run (Config.Fixed_monitor (Distance_fn.d_min d_min))
  in

  Format.printf "baseline : avg %7.1fus  p95 %7.1fus  worst %7.1fus@."
    baseline.Summary.mean baseline.Summary.p95 baseline.Summary.max;
  Format.printf "monitored: avg %7.1fus  p95 %7.1fus  worst %7.1fus@."
    monitored.Summary.mean monitored.Summary.p95 monitored.Summary.max;
  Format.printf "IRQ handling: baseline %d direct / %d delayed;@."
    baseline_stats.Hyp_sim.direct baseline_stats.Hyp_sim.delayed;
  Format.printf "              monitored %d direct / %d interposed / %d delayed@."
    monitored_stats.Hyp_sim.direct monitored_stats.Hyp_sim.interposed
    monitored_stats.Hyp_sim.delayed;
  Format.printf "average improvement: %.1fx@."
    (baseline.Summary.mean /. monitored.Summary.mean);

  (* 5. The price: bounded interference on the "control" partition.  The
     hypervisor enforces it; equation (14) predicts it. *)
  let c_bh_eff =
    Cycles.of_us 40 + 877 + (2 * Cycles.of_us 50)
  in
  let bound =
    Rthv_analysis.Independence.max_slot_loss ~monitor:(Distance_fn.d_min d_min)
      ~c_bh_eff ~slot:(Cycles.of_us 5_000)
  in
  Format.printf
    "interference on 'control': measured max %.1fus per slot, bound %.1fus@."
    (Cycles.to_us monitored_stats.Hyp_sim.stolen_slot_max.(0))
    (Cycles.to_us bound)
