(* rthv_analyze: worst-case IRQ latency and interference bounds from the
   paper's analysis (Sections 4-5), without running a simulation.

   Example:
     rthv_analyze --cycle-us 14000 --slot-us 6000 --cbh-us 50 --dmin-us 1544 *)

module Cycles = Rthv_engine.Cycles
module AC = Rthv_analysis.Arrival_curve
module BW = Rthv_analysis.Busy_window
module DF = Rthv_analysis.Distance_fn
module IL = Rthv_analysis.Irq_latency
module TI = Rthv_analysis.Tdma_interference
module Independence = Rthv_analysis.Independence
module Platform = Rthv_hw.Platform

let main cycle_us slot_us c_th_us c_bh_us d_min_us max_util ideal =
  if slot_us <= 0 || cycle_us < slot_us then begin
    Format.eprintf "need 0 < slot <= cycle@.";
    1
  end
  else begin
    let platform = if ideal then Platform.ideal else Platform.arm926ejs_200mhz in
    let costs = IL.costs_of_platform platform in
    let d_min = Cycles.of_us d_min_us in
    let self =
      {
        IL.name = "irq";
        arrival = AC.Sporadic { d_min };
        c_th = Cycles.of_us c_th_us;
        c_bh = Cycles.of_us c_bh_us;
      }
    in
    let tdma =
      TI.make ~cycle:(Cycles.of_us cycle_us)
        ~slot:(Stdlib.max 1 (Cycles.of_us slot_us - costs.IL.c_ctx))
    in
    let c_bh_eff = IL.effective_bh costs self in
    let c_th_eff = IL.effective_th costs self in
    Format.printf "platform: %a@." Platform.pp platform;
    Format.printf
      "effective WCETs (eq. 13/15): C'_BH = %a, C'_TH = %a@." Cycles.pp
      c_bh_eff Cycles.pp c_th_eff;
    Format.printf "TDMA-dominated term (T_TDMA - T_i): %a@." Cycles.pp
      (IL.baseline_dominant_term ~tdma);
    let report label result =
      match result with
      | Ok r ->
          Format.printf "%-38s R = %a  (busy period: %d activations)@." label
            Cycles.pp r.BW.response_time r.BW.q_max
      | Error msg -> Format.printf "%-38s %s@." label msg
    in
    report "baseline (eq. 11-12):"
      (IL.baseline ~tdma ~self ~interferers:[] ());
    report "baseline + monitoring (case 2):"
      (IL.baseline ~tdma ~self ~interferers:[] ~monitoring:costs ());
    report "interposed (eq. 16):"
      (IL.interposed ~costs ~self ~interferers:[] ());
    let monitor = DF.d_min d_min in
    Format.printf
      "interference on others (eq. 14): %.2f%% long-term; max per %dus slot \
       = %a@."
      (100. *. Independence.utilisation_loss ~monitor ~c_bh_eff)
      slot_us Cycles.pp
      (Independence.max_slot_loss ~monitor ~c_bh_eff
         ~slot:(Cycles.of_us slot_us));
    (match max_util with
    | None -> ()
    | Some u ->
        let required = Independence.required_d_min ~c_bh_eff ~max_utilisation:u in
        Format.printf
          "d_min required for <= %.1f%% interference: %a@." (100. *. u)
          Cycles.pp required);
    0
  end

open Cmdliner

let cycle_us =
  Arg.(
    value & opt int 14_000
    & info [ "cycle-us" ] ~docv:"US" ~doc:"TDMA cycle length T_TDMA.")

let slot_us =
  Arg.(
    value & opt int 6_000
    & info [ "slot-us" ] ~docv:"US" ~doc:"Subscriber partition slot T_i.")

let c_th_us =
  Arg.(
    value & opt int 5 & info [ "cth-us" ] ~docv:"US" ~doc:"Top handler WCET.")

let c_bh_us =
  Arg.(
    value & opt int 50
    & info [ "cbh-us" ] ~docv:"US" ~doc:"Bottom handler WCET.")

let d_min_us =
  Arg.(
    value & opt int 1_544
    & info [ "dmin-us" ] ~docv:"US"
        ~doc:"Minimum inter-arrival distance (monitoring condition).")

let max_util =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-util" ] ~docv:"FRACTION"
        ~doc:
          "Also compute the d_min needed to keep long-term interference at \
           or below this fraction.")

let ideal =
  Arg.(
    value & flag
    & info [ "ideal" ]
        ~doc:"Use the zero-overhead platform instead of the ARM926ej-s.")

let cmd =
  let doc =
    "worst-case IRQ latency and interference bounds for a TDMA hypervisor \
     with interposed interrupt handling (Beckert et al., DAC 2014)"
  in
  Cmd.v
    (Cmd.info "rthv_analyze" ~doc)
    Term.(
      const main $ cycle_us $ slot_us $ c_th_us $ c_bh_us $ d_min_us
      $ max_util $ ideal)

let () = exit (Cmd.eval' cmd)
