module MS = Rthv_experiments.Multi_source

let sweep = lazy (MS.sweep ~count_per_source:500 [ 1; 2; 4 ])

let test_sweep_shape () =
  let rows = Lazy.force sweep in
  Alcotest.(check int) "three points" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "d_min scales with source count" true
        (r.MS.d_min_per_source
        = r.MS.n_sources * Rthv_experiments.Params.mean_for_load 0.10))
    rows

let test_interference_within_union_bound () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%d sources: measured %.0f <= bound %.0f"
           r.MS.n_sources r.MS.stolen_slot_max_us r.MS.union_bound_us)
        true
        (r.MS.stolen_slot_max_us <= r.MS.union_bound_us +. 0.01))
    (Lazy.force sweep)

let test_collisions_grow_with_sources () =
  let rows = Lazy.force sweep in
  let denials = List.map (fun r -> r.MS.denial_rate) rows in
  match denials with
  | [ one; _two; four ] ->
      Testutil.close "single source never collides" 0. one;
      Alcotest.(check bool) "more sources, more collisions" true (four >= 0.)
  | _ -> Alcotest.fail "three rows expected"

let test_latency_stays_bounded () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "average stays far below the TDMA gap" true
        (r.MS.avg_latency_us < 2_000.))
    (Lazy.force sweep)

let test_validation () =
  Alcotest.check_raises "source count checked"
    (Invalid_argument "Multi_source.run: need >= 1 source") (fun () ->
      ignore (MS.run ~n_sources:0 () : MS.row))

let suite =
  [
    Alcotest.test_case "sweep shape" `Slow test_sweep_shape;
    Alcotest.test_case "union interference bound" `Slow
      test_interference_within_union_bound;
    Alcotest.test_case "collision trend" `Slow test_collisions_grow_with_sources;
    Alcotest.test_case "latency bounded" `Slow test_latency_stays_bounded;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
