module Plot = Rthv_stats.Ascii_plot

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let render series = Format.asprintf "%a" (Plot.render ?width:None ?height:None ?x_label:None ?y_label:None) series

let test_empty () =
  Alcotest.(check bool) "empty note" true
    (contains (render []) "no data to plot")

let test_single_series () =
  let s =
    Plot.series ~label:"latency" ~glyph:'*'
      [ (0., 10.); (50., 20.); (100., 15.) ]
  in
  let out = render [ s ] in
  Alcotest.(check bool) "legend present" true (contains out "* = latency");
  Alcotest.(check bool) "glyph plotted" true (contains out "*");
  Alcotest.(check bool) "axis drawn" true (contains out "+---")

let test_multi_series_glyphs () =
  let a = Plot.series ~label:"a" ~glyph:'a' [ (0., 0.); (10., 1.) ] in
  let b = Plot.series ~label:"b" ~glyph:'b' [ (0., 2.); (10., 3.) ] in
  let out = render [ a; b ] in
  Alcotest.(check bool) "a plotted" true (contains out "a = a");
  Alcotest.(check bool) "b plotted" true (contains out "b = b")

let test_constant_series () =
  (* Degenerate y-range must not divide by zero. *)
  let s = Plot.series ~label:"flat" ~glyph:'#' [ (0., 5.); (10., 5.) ] in
  let out = render [ s ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_single_point () =
  let s = Plot.series ~label:"dot" ~glyph:'o' [ (3., 7.) ] in
  let out = render [ s ] in
  Alcotest.(check bool) "renders a single point" true (contains out "o")

let test_row_count () =
  let s = Plot.series ~label:"x" ~glyph:'x' [ (0., 0.); (1., 1.) ] in
  let out =
    Format.asprintf "%a"
      (Plot.render ~width:20 ~height:5 ?x_label:None ?y_label:None)
      [ s ]
  in
  let rows =
    List.length
      (List.filter (fun l -> contains l "|") (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "grid height respected" 5 rows

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "single series" `Quick test_single_series;
    Alcotest.test_case "multiple series" `Quick test_multi_series_glyphs;
    Alcotest.test_case "constant series" `Quick test_constant_series;
    Alcotest.test_case "single point" `Quick test_single_point;
    Alcotest.test_case "grid height" `Quick test_row_count;
  ]
