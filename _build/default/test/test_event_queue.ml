module Event_queue = Rthv_engine.Event_queue

let drain q =
  let rec loop acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some entry -> loop (entry :: acc)
  in
  loop []

let test_fifo_at_same_time () =
  let q = Event_queue.create () in
  List.iter (fun p -> Event_queue.push q ~time:5 p) [ "a"; "b"; "c" ];
  let payloads = List.map (fun e -> e.Event_queue.payload) (drain q) in
  Alcotest.(check (list string)) "same-time order is insertion order"
    [ "a"; "b"; "c" ] payloads

let test_time_order () =
  let q = Event_queue.create () in
  List.iter
    (fun (t, p) -> Event_queue.push q ~time:t p)
    [ (30, "z"); (10, "x"); (20, "y") ];
  let payloads = List.map (fun e -> e.Event_queue.payload) (drain q) in
  Alcotest.(check (list string)) "time order" [ "x"; "y"; "z" ] payloads

let test_peek_and_length () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option int)) "peek empty" None (Event_queue.peek_time q);
  Event_queue.push q ~time:42 ();
  Event_queue.push q ~time:7 ();
  Alcotest.(check int) "length" 2 (Event_queue.length q);
  Alcotest.(check (option int)) "peek min" (Some 7) (Event_queue.peek_time q);
  Alcotest.(check int) "peek does not pop" 2 (Event_queue.length q)

let test_clear () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1 ();
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q)

let test_snapshot_matches_drain () =
  let q = Event_queue.create () in
  List.iteri (fun i t -> Event_queue.push q ~time:t i) [ 9; 3; 3; 7; 1 ];
  let snapshot = List.map (fun e -> e.Event_queue.payload) (Event_queue.to_sorted_list q) in
  let drained = List.map (fun e -> e.Event_queue.payload) (drain q) in
  Alcotest.(check (list int)) "snapshot equals drain order" drained snapshot

let sorted_by_key entries =
  let keys =
    List.map (fun e -> (e.Event_queue.time, e.Event_queue.seq)) entries
  in
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a <= b && is_sorted rest
    | [ _ ] | [] -> true
  in
  is_sorted keys

let prop_heap_order times =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.push q ~time:t ()) times;
  sorted_by_key (drain q)

let prop_interleaved ops =
  (* Interleave pushes and pops; popped sequence must be non-decreasing in
     time among the elements present at each pop. *)
  let q = Event_queue.create () in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | `Push t -> Event_queue.push q ~time:t ()
      | `Pop -> (
          match (Event_queue.peek q, Event_queue.pop q) with
          | Some a, Some b -> if a.Event_queue.seq <> b.Event_queue.seq then ok := false
          | None, None -> ()
          | _ -> ok := false))
    ops;
  !ok

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun t -> `Push t) (0 -- 1000);
        return `Pop;
      ])

let suite =
  [
    Alcotest.test_case "fifo at same instant" `Quick test_fifo_at_same_time;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "peek and length" `Quick test_peek_and_length;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "snapshot" `Quick test_snapshot_matches_drain;
    Testutil.qtest "drain is globally sorted"
      QCheck2.Gen.(list_size (0 -- 200) (0 -- 10_000))
      prop_heap_order;
    Testutil.qtest "peek agrees with pop under interleaving"
      QCheck2.Gen.(list_size (0 -- 300) op_gen)
      prop_interleaved;
  ]
