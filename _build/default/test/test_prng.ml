module Prng = Rthv_engine.Prng

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.bits64 a)
      (Prng.bits64 b)
  done

let test_seeds_differ () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.bits64 a) (Prng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy_is_independent () =
  let a = Prng.create ~seed:3 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues from same state" (Prng.bits64 a)
    (Prng.bits64 b);
  (* Advancing [a] must not advance [b]: a's third draw differs from b's
     second (which equals a's already-consumed second). *)
  ignore (Prng.bits64 a : int64);
  let a3 = Prng.bits64 a in
  let b2 = Prng.bits64 b in
  Alcotest.(check bool) "advancing one does not advance the other" false
    (Int64.equal a3 b2)

let test_float_range () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of [0,1): %g" f
  done

let test_int_range () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v
  done

let test_exponential_mean () =
  let rng = Prng.create ~seed:17 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~mean:250.
  done;
  Testutil.close_rel ~rel:0.03 "exponential sample mean" 250.
    (!sum /. float_of_int n)

let test_exponential_positive () =
  let rng = Prng.create ~seed:19 in
  for _ = 1 to 10_000 do
    let v = Prng.exponential rng ~mean:10. in
    if v < 0. then Alcotest.failf "negative exponential sample %g" v
  done

let test_split_independence () =
  let rng = Prng.create ~seed:23 in
  let child = Prng.split rng in
  let overlap = ref 0 in
  for _ = 1 to 100 do
    if Int64.equal (Prng.bits64 rng) (Prng.bits64 child) then incr overlap
  done;
  Alcotest.(check int) "split streams do not track each other" 0 !overlap

let test_uniformity_coarse () =
  (* Chi-square-ish sanity: 10 buckets over 100k draws. *)
  let rng = Prng.create ~seed:29 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = int_of_float (Prng.float rng *. 10.) in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d count %d far from %d" i c (n / 10))
    buckets

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seeds_differ;
    Alcotest.test_case "copy semantics" `Quick test_copy_is_independent;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "exponential positivity" `Quick test_exponential_positive;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "coarse uniformity" `Slow test_uniformity_coarse;
  ]
