module Histogram = Rthv_stats.Histogram
module Summary = Rthv_stats.Summary
module Series = Rthv_stats.Series

let test_histogram_binning () =
  let h = Histogram.create ~bin_width_us:10. ~max_us:100. in
  Histogram.add_all h [ 0.; 5.; 9.9; 10.; 99.9; 150. ];
  Alcotest.(check int) "count includes overflow" 6 (Histogram.count h);
  let bins = Histogram.bins h in
  (match bins with
  | (lo, hi, c) :: _ ->
      Testutil.close "first bin lo" 0. lo;
      Testutil.close "first bin hi" 10. hi;
      Alcotest.(check int) "first bin holds [0,10)" 3 c
  | [] -> Alcotest.fail "bins expected");
  let _, hi, overflow_count = List.nth bins (List.length bins - 1) in
  Alcotest.(check bool) "overflow bin present" true (hi = infinity);
  Alcotest.(check int) "overflow count" 1 overflow_count

let test_histogram_max_bin () =
  let h = Histogram.create ~bin_width_us:10. ~max_us:50. in
  Histogram.add_all h [ 1.; 2.; 3.; 25. ];
  match Histogram.max_bin h with
  | Some (lo, _, c) ->
      Testutil.close "fullest bin" 0. lo;
      Alcotest.(check int) "fullest count" 3 c
  | None -> Alcotest.fail "expected a bin"

let test_histogram_quantile () =
  let h = Histogram.create ~bin_width_us:1. ~max_us:100. in
  for v = 0 to 99 do
    Histogram.add h (float_of_int v)
  done;
  Testutil.close ~eps:1.0 "median near 50" 50. (Histogram.quantile h 0.5);
  Testutil.close ~eps:1.5 "p99" 99. (Histogram.quantile h 0.99)

let test_histogram_validation () =
  Alcotest.check_raises "negative value"
    (Invalid_argument "Histogram.add: negative value") (fun () ->
      Histogram.add (Histogram.create ~bin_width_us:1. ~max_us:10.) (-1.));
  Alcotest.check_raises "bad params"
    (Invalid_argument "Histogram.create: parameters must be positive")
    (fun () -> ignore (Histogram.create ~bin_width_us:0. ~max_us:10. : Histogram.t))

let test_histogram_render () =
  let h = Histogram.create ~bin_width_us:10. ~max_us:30. in
  Histogram.add_all h [ 1.; 2.; 15. ];
  let out = Format.asprintf "%a" (Histogram.render ~width:10 ?log_scale:None) h in
  Alcotest.(check bool) "render mentions total" true
    (String.length out > 0
    && String.sub out 0 7 = "total=3")

let test_summary () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "n" 5 s.Summary.n;
  Testutil.close "mean" 3. s.Summary.mean;
  Testutil.close "min" 1. s.Summary.min;
  Testutil.close "max" 5. s.Summary.max;
  Testutil.close "median" 3. s.Summary.p50;
  Testutil.close "stddev" (sqrt 2.) s.Summary.stddev

let test_summary_validation () =
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Summary.of_array: empty sample") (fun () ->
      ignore (Summary.of_list [] : Summary.t))

let test_percentile_nearest_rank () =
  let sorted = [| 10.; 20.; 30.; 40. |] in
  Testutil.close "p25" 10. (Summary.percentile sorted 25.);
  Testutil.close "p50" 20. (Summary.percentile sorted 50.);
  Testutil.close "p100" 40. (Summary.percentile sorted 100.);
  Testutil.close "p0 clamps to first" 10. (Summary.percentile sorted 0.)

let test_running_mean () =
  let out = Series.running_mean ~window:2 [| 1.; 3.; 5.; 7. |] in
  Alcotest.(check int) "length preserved" 4 (Array.length out);
  Testutil.close "first element" 1. out.(0);
  Testutil.close "pairwise mean" 2. out.(1);
  Testutil.close "sliding" 4. out.(2);
  Testutil.close "last" 6. out.(3)

let test_cumulative_mean () =
  let out = Series.cumulative_mean [| 2.; 4.; 6. |] in
  Testutil.close "c1" 2. out.(0);
  Testutil.close "c2" 3. out.(1);
  Testutil.close "c3" 4. out.(2)

let test_downsample () =
  let values = Array.init 10 float_of_int in
  let samples = Series.downsample ~every:4 values in
  Alcotest.(check (list int)) "indices include last" [ 0; 4; 8; 9 ]
    (List.map fst samples);
  Alcotest.(check (list int)) "exact multiple keeps last once" [ 0; 4; 8 ]
    (List.map fst (Series.downsample ~every:4 (Array.init 9 float_of_int)))

let test_segment_mean () =
  let values = [| 1.; 2.; 3.; 4. |] in
  Testutil.close "middle" 2.5 (Series.segment_mean values ~lo:1 ~hi:3);
  Alcotest.check_raises "bad segment"
    (Invalid_argument "Series.segment_mean: bad segment") (fun () ->
      ignore (Series.segment_mean values ~lo:2 ~hi:2 : float))

let prop_histogram_conserves_count values =
  let h = Histogram.create ~bin_width_us:7. ~max_us:77. in
  List.iter (fun v -> Histogram.add h (Float.abs v)) values;
  let binned =
    List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.bins h)
  in
  (* bins() includes the overflow bin, so total counts must match... except
     bins between the last non-empty and overflow are synthesised; counting
     is still exact. *)
  binned = List.length values

let prop_running_mean_bounded (window, values) =
  let arr = Array.of_list (List.map Float.abs values) in
  if Array.length arr = 0 then true
  else begin
    let out = Series.running_mean ~window:(1 + (window mod 10)) arr in
    let lo = Array.fold_left Float.min arr.(0) arr in
    let hi = Array.fold_left Float.max arr.(0) arr in
    Array.for_all (fun v -> v >= lo -. 1e-9 && v <= hi +. 1e-9) out
  end

let suite =
  [
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram max bin" `Quick test_histogram_max_bin;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "histogram rendering" `Quick test_histogram_render;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary validation" `Quick test_summary_validation;
    Alcotest.test_case "nearest-rank percentile" `Quick
      test_percentile_nearest_rank;
    Alcotest.test_case "running mean" `Quick test_running_mean;
    Alcotest.test_case "cumulative mean" `Quick test_cumulative_mean;
    Alcotest.test_case "downsample" `Quick test_downsample;
    Alcotest.test_case "segment mean" `Quick test_segment_mean;
    Testutil.qtest "histogram conserves counts"
      QCheck2.Gen.(list_size (0 -- 300) (float_bound_inclusive 200.))
      prop_histogram_conserves_count;
    Testutil.qtest "running mean stays within data range"
      QCheck2.Gen.(pair (0 -- 20) (list_size (0 -- 100) (float_bound_inclusive 1000.)))
      prop_running_mean_bounded;
  ]
