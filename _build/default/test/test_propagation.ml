module P = Rthv_analysis.Propagation
module AC = Rthv_analysis.Arrival_curve
module DF = Rthv_analysis.Distance_fn
module IL = Rthv_analysis.Irq_latency
module TI = Rthv_analysis.Tdma_interference
module BW = Rthv_analysis.Busy_window
module Platform = Rthv_hw.Platform

let us = Testutil.us

let costs = IL.costs_of_platform Platform.arm926ejs_200mhz

let test_output_jitter () =
  let t = { P.input = AC.periodic ~period_us:1_000; r_min = us 55; r_max = us 160 } in
  Testutil.check_cycles "jitter = Rmax - Rmin" (us 105) (P.output_jitter t)

let test_periodic_gains_jitter () =
  let t = { P.input = AC.periodic ~period_us:1_000; r_min = us 50; r_max = us 250 } in
  match P.output_model t with
  | AC.Periodic_jitter { period; jitter; d_min } ->
      Testutil.check_cycles "period preserved" (us 1_000) period;
      Testutil.check_cycles "jitter added" (us 200) jitter;
      Testutil.check_cycles "d_min floor" 1 d_min
  | _ -> Alcotest.fail "expected a periodic-with-jitter output"

let test_jitters_accumulate () =
  let input = AC.periodic_jitter ~period_us:1_000 ~jitter_us:100 ~d_min_us:300 () in
  let t = { P.input; r_min = us 10; r_max = us 110 } in
  match P.output_model t with
  | AC.Periodic_jitter { jitter; d_min; _ } ->
      Testutil.check_cycles "jitters add" (us 200) jitter;
      Testutil.check_cycles "d_min compressed" (us 200) d_min
  | _ -> Alcotest.fail "expected periodic-with-jitter"

let test_sporadic_compressed () =
  let t = { P.input = AC.sporadic ~d_min_us:500; r_min = us 0; r_max = us 100 } in
  match P.output_model t with
  | AC.Sporadic { d_min } -> Testutil.check_cycles "compressed" (us 400) d_min
  | _ -> Alcotest.fail "expected sporadic"

let test_distance_fn_widened () =
  let fn = DF.of_entries [| us 100; us 1_000 |] in
  let t = { P.input = AC.of_distance_fn fn; r_min = 0; r_max = us 50 } in
  match P.output_model t with
  | AC.Distances out ->
      let entries = DF.entries out in
      Testutil.check_cycles "entry 0 shrunk" (us 50) entries.(0);
      Testutil.check_cycles "entry 1 shrunk" (us 950) entries.(1)
  | _ -> Alcotest.fail "expected distances"

let test_best_cases () =
  Testutil.check_cycles "direct best case" (us 55)
    (P.best_case_direct ~c_th:(us 5) ~c_bh:(us 50));
  (* 5us + 128 + 877 + 10000 cycles + 50us. *)
  Testutil.check_cycles "interposed best case"
    (us 105 + 128 + 877)
    (P.best_case_interposed ~costs ~c_th:(us 5) ~c_bh:(us 50))

(* The headline propagation result: interposition shrinks the output jitter
   by the TDMA gap. *)
let test_interposition_shrinks_output_jitter () =
  let tdma = TI.make ~cycle:(us 14_000) ~slot:(us 6_000) in
  let self =
    {
      IL.name = "irq";
      arrival = AC.sporadic ~d_min_us:1_544;
      c_th = us 5;
      c_bh = us 50;
    }
  in
  let r_of = function
    | Ok r -> r.BW.response_time
    | Error m -> Alcotest.fail m
  in
  let baseline =
    {
      P.input = self.IL.arrival;
      r_min = P.best_case_direct ~c_th:self.IL.c_th ~c_bh:self.IL.c_bh;
      r_max = r_of (IL.baseline ~tdma ~self ~interferers:[] ());
    }
  in
  let interposed =
    {
      P.input = self.IL.arrival;
      r_min = P.best_case_direct ~c_th:self.IL.c_th ~c_bh:self.IL.c_bh;
      r_max = r_of (IL.interposed ~costs ~self ~interferers:[] ());
    }
  in
  Alcotest.(check bool) "output jitter collapses" true
    (P.output_jitter interposed * 50 < P.output_jitter baseline);
  (* The downstream consumer's event model is dramatically tighter. *)
  match (P.output_model baseline, P.output_model interposed) with
  | AC.Sporadic { d_min = db }, AC.Sporadic { d_min = di } ->
      Alcotest.(check bool) "downstream d_min preserved much better" true
        (di > 10 * db)
  | _ -> Alcotest.fail "sporadic outputs expected"

let test_invalid_jitter () =
  let t = { P.input = AC.periodic ~period_us:10; r_min = us 5; r_max = us 1 } in
  Alcotest.check_raises "r_max >= r_min enforced"
    (Invalid_argument "Propagation: r_max must be at least r_min") (fun () ->
      ignore (P.output_jitter t : Rthv_engine.Cycles.t))

let suite =
  [
    Alcotest.test_case "output jitter" `Quick test_output_jitter;
    Alcotest.test_case "periodic gains jitter" `Quick test_periodic_gains_jitter;
    Alcotest.test_case "jitters accumulate" `Quick test_jitters_accumulate;
    Alcotest.test_case "sporadic compressed" `Quick test_sporadic_compressed;
    Alcotest.test_case "distance function widened" `Quick
      test_distance_fn_widened;
    Alcotest.test_case "best cases" `Quick test_best_cases;
    Alcotest.test_case "interposition shrinks output jitter" `Quick
      test_interposition_shrinks_output_jitter;
    Alcotest.test_case "validation" `Quick test_invalid_jitter;
  ]
