module Gen = Rthv_workload.Gen
module Ecu_trace = Rthv_workload.Ecu_trace

let us = Testutil.us

let test_exponential_statistics () =
  let mean = us 1000 in
  let distances = Gen.exponential ~seed:1 ~mean ~count:20_000 in
  Alcotest.(check int) "count" 20_000 (Array.length distances);
  Array.iter (fun d -> if d < 1 then Alcotest.fail "distance below 1 cycle") distances;
  Testutil.close_rel ~rel:0.05 "empirical mean" (float_of_int mean)
    (Gen.mean distances)

let test_exponential_determinism () =
  let a = Gen.exponential ~seed:9 ~mean:500 ~count:100 in
  let b = Gen.exponential ~seed:9 ~mean:500 ~count:100 in
  Alcotest.(check bool) "same seed, same array" true (a = b)

let test_clamped_respects_d_min () =
  let d_min = us 700 in
  let distances =
    Gen.exponential_clamped ~seed:2 ~mean:(us 700) ~d_min ~count:5_000
  in
  Array.iter
    (fun d -> if d < d_min then Alcotest.fail "clamped distance below d_min")
    distances;
  (* Clamping inflates the mean to roughly mean * (1 + 1/e). *)
  Testutil.close_rel ~rel:0.08 "clamped mean"
    (float_of_int (us 700) *. (1. +. exp (-1.)))
    (Gen.mean distances)

let test_uniform_bounds () =
  let distances = Gen.uniform ~seed:3 ~lo:10 ~hi:20 ~count:2_000 in
  Array.iter
    (fun d -> if d < 10 || d > 20 then Alcotest.failf "out of range: %d" d)
    distances

let test_constant () =
  let distances = Gen.constant ~period:42 ~count:5 in
  Alcotest.(check bool) "all equal" true (Array.for_all (( = ) 42) distances)

let test_bursty_structure () =
  let distances = Gen.bursty ~seed:4 ~burst_len:3 ~inner:10 ~gap_mean:1000 ~count:9 in
  (* Indices 1,2,4,5,7,8 are intra-burst. *)
  List.iter
    (fun i -> Testutil.check_cycles "intra-burst distance" 10 distances.(i))
    [ 1; 2; 4; 5; 7; 8 ];
  List.iter
    (fun i ->
      if distances.(i) < 10 then Alcotest.fail "gap shorter than inner")
    [ 0; 3; 6 ]

let test_mean_for_load () =
  (* Equation (17): lambda = C'_BH / U. *)
  Testutil.check_cycles "10 % load" (us 1000)
    (Gen.mean_for_load ~c_bh_eff:(us 100) ~load:0.1);
  Testutil.check_cycles "full load" (us 100)
    (Gen.mean_for_load ~c_bh_eff:(us 100) ~load:1.0);
  Alcotest.check_raises "load range checked"
    (Invalid_argument "Gen.mean_for_load: load must be in (0, 1]") (fun () ->
      ignore (Gen.mean_for_load ~c_bh_eff:100 ~load:1.5 : int))

let test_to_timestamps () =
  Alcotest.(check (list int)) "cumulative sums" [ 10; 30; 60 ]
    (Gen.to_timestamps [| 10; 20; 30 |]);
  Alcotest.(check (list int)) "with start offset" [ 110; 130 ]
    (Gen.to_timestamps ~start:100 [| 10; 20 |])

let test_ecu_trace_shape () =
  let trace = Ecu_trace.generate ~seed:42 Ecu_trace.default_profile in
  let stats = Ecu_trace.stats trace in
  Alcotest.(check bool) "activation count near 11000" true
    (stats.Ecu_trace.activations > 9_000 && stats.Ecu_trace.activations < 13_000);
  (* Sorted. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps sorted" true (sorted trace);
  (* Bursts exist: some distances well below the mean. *)
  Alcotest.(check bool) "sub-mean bursts present" true
    (float_of_int stats.Ecu_trace.min_distance < stats.Ecu_trace.mean_distance /. 2.)

let test_ecu_trace_learnable_envelope () =
  (* The recorded envelope must imply a load several times the average rate —
     the property the Figure-7 bound sweep depends on. *)
  let trace = Ecu_trace.generate ~seed:42 Ecu_trace.default_profile in
  let n = List.length trace in
  let prefix = List.filteri (fun i _ -> i < n / 10) trace in
  let learned = Rthv_analysis.Distance_fn.of_trace ~l:5 prefix in
  let stats = Ecu_trace.stats trace in
  let ratio =
    Rthv_analysis.Distance_fn.long_term_rate learned *. stats.Ecu_trace.mean_distance
  in
  Alcotest.(check bool)
    (Printf.sprintf "recorded/average load ratio %.1f in [2, 12]" ratio)
    true
    (ratio > 2. && ratio < 12.)

let test_ecu_trace_determinism () =
  let a = Ecu_trace.generate ~seed:5 Ecu_trace.default_profile in
  let b = Ecu_trace.generate ~seed:5 Ecu_trace.default_profile in
  Alcotest.(check bool) "same seed, same trace" true (a = b)

let test_to_distances () =
  let distances = Ecu_trace.to_distances [ 100; 150; 150; 400 ] in
  Alcotest.(check (list int)) "distances with zero-bump"
    [ 100; 50; 1; 250 ]
    (Array.to_list distances)

let test_stats_validation () =
  Alcotest.check_raises "short trace rejected"
    (Invalid_argument "Ecu_trace.stats: need at least two activations")
    (fun () -> ignore (Ecu_trace.stats [ 1 ] : Ecu_trace.trace_stats))

let prop_timestamps_match_distances distances =
  let arr = Array.of_list (List.map (fun d -> 1 + abs d) distances) in
  let ts = Gen.to_timestamps arr in
  let back = Ecu_trace.to_distances ts in
  back = arr

let suite =
  [
    Alcotest.test_case "exponential statistics" `Slow test_exponential_statistics;
    Alcotest.test_case "exponential determinism" `Quick
      test_exponential_determinism;
    Alcotest.test_case "clamping (scenario 2)" `Quick test_clamped_respects_d_min;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "constant" `Quick test_constant;
    Alcotest.test_case "bursty structure" `Quick test_bursty_structure;
    Alcotest.test_case "equation (17)" `Quick test_mean_for_load;
    Alcotest.test_case "timestamp conversion" `Quick test_to_timestamps;
    Alcotest.test_case "ECU trace shape" `Quick test_ecu_trace_shape;
    Alcotest.test_case "ECU trace envelope ratio" `Quick
      test_ecu_trace_learnable_envelope;
    Alcotest.test_case "ECU trace determinism" `Quick test_ecu_trace_determinism;
    Alcotest.test_case "distance extraction" `Quick test_to_distances;
    Alcotest.test_case "stats validation" `Quick test_stats_validation;
    Testutil.qtest "distances -> timestamps roundtrip"
      QCheck2.Gen.(list_size (1 -- 100) (0 -- 100_000))
      prop_timestamps_match_distances;
  ]
