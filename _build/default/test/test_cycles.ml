module Cycles = Rthv_engine.Cycles

let test_conversions () =
  Testutil.check_cycles "1us = 200 cycles" 200 (Cycles.of_us 1);
  Testutil.check_cycles "1ms" 200_000 (Cycles.of_ms 1);
  Testutil.check_cycles "instructions are cycles" 877 (Cycles.of_instr 877);
  Testutil.close "to_us roundtrip" 14000. (Cycles.to_us (Cycles.of_us 14000));
  Alcotest.(check int) "to_us_int floors" 4 (Cycles.to_us_int 999)

let test_of_us_f () =
  Testutil.check_cycles "fractional us rounds" 309 (Cycles.of_us_f 1.543);
  Testutil.check_cycles "exact us" 200 (Cycles.of_us_f 1.0);
  Testutil.check_cycles "zero" 0 (Cycles.of_us_f 0.0)

let test_arithmetic () =
  let open Cycles in
  Testutil.check_cycles "add" 300 (of_us 1 + 100);
  Testutil.check_cycles "sub" 100 (of_us 1 - 100);
  Testutil.check_cycles "scale" 600 (of_us 1 * 3);
  Testutil.check_cycles "min" 5 (min 5 7);
  Testutil.check_cycles "max" 7 (max 5 7)

let test_compare_and_pp () =
  Alcotest.(check bool) "compare orders" true (Cycles.compare 1 2 < 0);
  Alcotest.(check string)
    "pp renders us" "150.50us"
    (Format.asprintf "%a" Cycles.pp (Cycles.of_us_f 150.5))

let suite =
  [
    Alcotest.test_case "unit conversions" `Quick test_conversions;
    Alcotest.test_case "fractional conversion" `Quick test_of_us_f;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "compare and pp" `Quick test_compare_and_pp;
    Testutil.qtest "of_us/to_us_int roundtrip"
      QCheck2.Gen.(0 -- 1_000_000)
      (fun n -> Cycles.to_us_int (Cycles.of_us n) = n);
    Testutil.qtest "addition is commutative on durations"
      QCheck2.Gen.(pair (0 -- 1_000_000) (0 -- 1_000_000))
      (fun (a, b) -> Cycles.( + ) a b = Cycles.( + ) b a);
  ]
