module Throttle = Rthv_core.Throttle
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Independence = Rthv_analysis.Independence
module Gen = Rthv_workload.Gen

let us = Testutil.us

let test_starts_full () =
  let t = Throttle.create ~capacity:3 ~refill:(us 100) in
  Alcotest.(check int) "full at creation" 3 (Throttle.level t);
  Alcotest.(check bool) "token available" true (Throttle.check t 0)

let test_burst_then_block () =
  let t = Throttle.create ~capacity:2 ~refill:(us 100) in
  Throttle.admit t 0;
  Throttle.admit t 0;
  Alcotest.(check bool) "bucket drained" false (Throttle.check t 0);
  Alcotest.(check bool) "still dry just before refill" false
    (Throttle.check t (us 100 - 1));
  Alcotest.(check bool) "one token after a period" true
    (Throttle.check t (us 100))

let test_refill_caps_at_capacity () =
  let t = Throttle.create ~capacity:2 ~refill:(us 100) in
  Throttle.admit t 0;
  Throttle.admit t 0;
  ignore (Throttle.check t (us 10_000) : bool);
  Alcotest.(check int) "level capped" 2 (Throttle.level t)

let test_refill_remainder_preserved () =
  (* Draining at t=0, then checking at 1.5 periods: one token earned, the
     half period of progress must not be lost for the second token. *)
  let t = Throttle.create ~capacity:2 ~refill:(us 100) in
  Throttle.admit t 0;
  Throttle.admit t 0;
  ignore (Throttle.check t (us 150) : bool);
  Alcotest.(check int) "one token at 1.5 periods" 1 (Throttle.level t);
  Alcotest.(check bool) "second lands at 2 periods, not 2.5" true
    (Throttle.check t (us 200) && Throttle.level t = 2)

let test_admit_guard () =
  let t = Throttle.create ~capacity:1 ~refill:(us 100) in
  Throttle.admit t 0;
  Alcotest.check_raises "no token"
    (Invalid_argument "Throttle.admit: no token available") (fun () ->
      Throttle.admit t 1)

let test_time_monotonicity () =
  let t = Throttle.create ~capacity:1 ~refill:(us 100) in
  ignore (Throttle.check t (us 500) : bool);
  Alcotest.check_raises "time cannot rewind"
    (Invalid_argument "Throttle: time must be non-decreasing") (fun () ->
      ignore (Throttle.check t (us 100) : bool))

let test_creation_guards () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Throttle.create: capacity must be >= 1") (fun () ->
      ignore (Throttle.create ~capacity:0 ~refill:1 : Throttle.t));
  Alcotest.check_raises "refill"
    (Invalid_argument "Throttle.create: refill must be >= 1") (fun () ->
      ignore (Throttle.create ~capacity:1 ~refill:0 : Throttle.t))

let test_max_admissions () =
  let t = Throttle.create ~capacity:3 ~refill:(us 100) in
  Alcotest.(check int) "burst only" 3 (Throttle.max_admissions t ~window:0);
  Alcotest.(check int) "burst + rate" 8
    (Throttle.max_admissions t ~window:(us 500))

(* Property: the admitted stream over any simulated window never exceeds the
   affine bound. *)
let prop_admissions_within_affine_bound (capacity, refill_us, gaps) =
  let capacity = 1 + (capacity mod 5) in
  let refill = us (1 + refill_us) in
  let t = Throttle.create ~capacity ~refill in
  let admitted = ref [] in
  let now = ref 0 in
  List.iter
    (fun gap ->
      now := !now + gap;
      if Throttle.check t !now then begin
        Throttle.admit t !now;
        admitted := !now :: !admitted
      end)
    gaps;
  let admitted = List.rev !admitted in
  (* Check every window between two admissions. *)
  let arr = Array.of_list admitted in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let window = arr.(j) - arr.(i) in
      let count = j - i + 1 in
      if count > capacity + (window / refill) + 1 then ok := false
    done
  done;
  !ok

(* Simulation integration: a burst of [capacity] back-to-back IRQs is
   interposed by the bucket but (all except the first) denied by an
   equal-rate d_min monitor. *)
let burst_scenario shaping =
  let partitions =
    [
      Config.partition ~name:"P1" ~slot_us:6_000 ();
      Config.partition ~name:"P2" ~slot_us:6_000 ();
    ]
  in
  (* Three tight bursts of 3 IRQs (400us inner), bursts 8000us apart. *)
  let interarrivals =
    [| us 1_000; us 400; us 400; us 8_000; us 400; us 400; us 8_000; us 400; us 400 |]
  in
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"bursty" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50 ~interarrivals ~shaping ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  Hyp_sim.stats sim

let test_bucket_admits_bursts_monitor_does_not () =
  let refill = us 2_800 in
  (* Same long-term rate: one admission per 2800us on average. *)
  let bucket =
    burst_scenario (Config.Token_bucket { capacity = 3; refill })
  in
  let monitor =
    burst_scenario
      (Config.Fixed_monitor (Rthv_analysis.Distance_fn.d_min refill))
  in
  Alcotest.(check bool) "bucket interposes the whole burst" true
    (bucket.Hyp_sim.interposed > monitor.Hyp_sim.interposed);
  Alcotest.(check int) "every burst IRQ interposed by the bucket" 0
    bucket.Hyp_sim.delayed

let test_sim_interference_within_affine_bound () =
  let capacity = 2 and refill = us 1_000 in
  let interarrivals = Gen.exponential ~seed:5 ~mean:(us 800) ~count:800 in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"P1" ~slot_us:6_000 ();
          Config.partition ~name:"P2" ~slot_us:6_000 ();
          Config.partition ~name:"HK" ~slot_us:2_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50 ~interarrivals
            ~shaping:(Config.Token_bucket { capacity; refill })
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  let stats = Hyp_sim.stats sim in
  let c_bh_eff = us 50 + 877 + (2 * us 50) in
  let bound_curve =
    Independence.token_bucket_bound ~capacity ~refill ~c_bh_eff
  in
  Array.iteri
    (fun i slot_us ->
      (* Affine bound plus one carry-in spill. *)
      let bound = bound_curve (us slot_us) + c_bh_eff in
      if stats.Hyp_sim.stolen_slot_max.(i) > bound then
        Alcotest.failf "partition %d exceeds the affine bound" i)
    [| 6_000; 6_000; 2_000 |]

let suite =
  [
    Alcotest.test_case "starts full" `Quick test_starts_full;
    Alcotest.test_case "burst then block" `Quick test_burst_then_block;
    Alcotest.test_case "refill caps" `Quick test_refill_caps_at_capacity;
    Alcotest.test_case "refill remainder" `Quick test_refill_remainder_preserved;
    Alcotest.test_case "admit guard" `Quick test_admit_guard;
    Alcotest.test_case "time monotonicity" `Quick test_time_monotonicity;
    Alcotest.test_case "creation guards" `Quick test_creation_guards;
    Alcotest.test_case "max admissions" `Quick test_max_admissions;
    Testutil.qtest "admissions within the affine bound"
      QCheck2.Gen.(
        triple (0 -- 10) (0 -- 5_000) (list_size (0 -- 150) (0 -- 500_000)))
      prop_admissions_within_affine_bound;
    Alcotest.test_case "bucket vs monitor on bursts" `Quick
      test_bucket_admits_bursts_monitor_does_not;
    Alcotest.test_case "simulated interference within affine bound" `Quick
      test_sim_interference_within_affine_bound;
  ]
