(* End-to-end checks of the experiment harness: run small versions of the
   paper's experiments and assert the qualitative results it reports. *)

module Fig6 = Rthv_experiments.Fig6
module Fig7 = Rthv_experiments.Fig7
module Overhead = Rthv_experiments.Overhead
module Analysis_tables = Rthv_experiments.Analysis_tables
module Params = Rthv_experiments.Params
module Summary = Rthv_stats.Summary
module Hyp_sim = Rthv_core.Hyp_sim

(* Small but statistically meaningful sample. *)
let count = 800

let fig6a = lazy (Fig6.run ~count_per_load:count Fig6.Unmonitored)
let fig6b = lazy (Fig6.run ~count_per_load:count Fig6.Monitored)
let fig6c = lazy (Fig6.run ~count_per_load:count Fig6.Monitored_conforming)

let test_params_match_paper () =
  Testutil.check_cycles "C'_BH ~ 154.4us"
    (Testutil.us 150 + 877)
    Params.c_bh_eff;
  Testutil.check_cycles "cycle = 14000us" (Testutil.us 14_000)
    (Rthv_core.Tdma.cycle_length Params.tdma);
  Alcotest.(check (list (float 0.0001))) "loads" [ 0.01; 0.05; 0.1 ] Params.loads

let test_fig6a_shape () =
  let r = Lazy.force fig6a in
  Alcotest.(check int) "no interposed without monitoring" 0 r.Fig6.n_interposed;
  let total = r.Fig6.n_direct + r.Fig6.n_delayed in
  Alcotest.(check int) "all classified" (3 * count) total;
  (* Direct share ~ subscriber slot share (6/14 ~ 43 %). *)
  let direct_share = float_of_int r.Fig6.n_direct /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "direct share %.2f in [0.3, 0.55]" direct_share)
    true
    (direct_share > 0.3 && direct_share < 0.55);
  (* Average dominated by delayed IRQs: paper reports ~2500us. *)
  Alcotest.(check bool) "average in the paper's range" true
    (r.Fig6.latency.Summary.mean > 1800. && r.Fig6.latency.Summary.mean < 3200.);
  (* Worst case governed by T_TDMA - T_i = 8000us. *)
  Alcotest.(check bool) "worst close to the TDMA gap" true
    (r.Fig6.latency.Summary.max > 7000. && r.Fig6.latency.Summary.max < 8600.)

let test_fig6b_improves_average () =
  let a = Lazy.force fig6a and b = Lazy.force fig6b in
  Alcotest.(check bool) "monitoring roughly halves the average" true
    (b.Fig6.latency.Summary.mean < 0.65 *. a.Fig6.latency.Summary.mean);
  Alcotest.(check bool) "a significant share interposed" true
    (b.Fig6.n_interposed > (3 * count) / 5);
  (* Violations exist, so the worst case is still TDMA-scale. *)
  Alcotest.(check bool) "worst case unchanged" true
    (b.Fig6.latency.Summary.max > 7000.)

let test_fig6c_conforming () =
  let a = Lazy.force fig6a and c = Lazy.force fig6c in
  Alcotest.(check int) "no delayed IRQs" 0 c.Fig6.n_delayed;
  Alcotest.(check bool) "order-of-magnitude improvement (paper: ~16x)" true
    (c.Fig6.latency.Summary.mean *. 8. < a.Fig6.latency.Summary.mean);
  (* Worst case no longer defined by the TDMA cycle. *)
  Alcotest.(check bool) "worst case TDMA-independent" true
    (c.Fig6.latency.Summary.max < 1000.)

let test_fig6_histogram_totals () =
  let r = Lazy.force fig6b in
  Alcotest.(check int) "histogram covers all IRQs" (3 * count)
    (Rthv_stats.Histogram.count r.Fig6.histogram)

let test_fig7_ordering () =
  let results =
    List.map
      (fun spec -> Fig7.run spec)
      [
        Fig7.Unbounded;
        Fig7.Load_fraction 0.25;
        Fig7.Load_fraction 0.125;
        Fig7.Load_fraction 0.0625;
      ]
  in
  (match results with
  | [ a; b; c; d ] ->
      (* Learning phase: no interposition, so comparable to the unmonitored
         average; run phase improves dramatically when unbounded. *)
      Alcotest.(check bool) "learning phase is slow" true
        (a.Fig7.learn_avg_us > 1500.);
      Alcotest.(check bool) "unbounded run phase is fast" true
        (a.Fig7.run_avg_us < 400.);
      (* Tighter bounds give monotonically worse run-phase averages. *)
      Alcotest.(check bool)
        (Printf.sprintf "monotone: %.0f <= %.0f <= %.0f <= %.0f"
           a.Fig7.run_avg_us b.Fig7.run_avg_us c.Fig7.run_avg_us
           d.Fig7.run_avg_us)
        true
        (a.Fig7.run_avg_us <= b.Fig7.run_avg_us
        && b.Fig7.run_avg_us <= c.Fig7.run_avg_us
        && c.Fig7.run_avg_us <= d.Fig7.run_avg_us);
      (* The tightest bound must bite hard (paper: 1600us vs 120us). *)
      Alcotest.(check bool) "6.25 % bound bites" true
        (d.Fig7.run_avg_us > 2. *. a.Fig7.run_avg_us)
  | _ -> Alcotest.fail "four results expected");
  List.iter
    (fun r ->
      Alcotest.(check bool) "series non-empty" true (List.length r.Fig7.series > 3))
    results

let test_overhead_table () =
  let t = Overhead.run ~count_per_load:count () in
  let s = t.Overhead.static_model in
  Alcotest.(check int) "paper code size" 1120 s.Overhead.code_bytes_total;
  Alcotest.(check int) "component sizes sum" s.Overhead.code_bytes_total
    (s.Overhead.code_bytes_scheduler + s.Overhead.code_bytes_top_handler
   + s.Overhead.code_bytes_monitor);
  List.iter
    (fun m ->
      Alcotest.(check bool) "added switches are twice the admissions" true
        (m.Overhead.interposition_switches <= 2 * m.Overhead.admissions);
      Alcotest.(check bool) "every check is admission or denial" true
        (m.Overhead.monitor_checks >= m.Overhead.admissions + m.Overhead.denials))
    t.Overhead.per_load;
  Alcotest.(check bool) "increase is positive" true
    (t.Overhead.overall_increase_pct > 0.)

let test_analysis_table_soundness () =
  let rows = Analysis_tables.compute_all ~count:count () in
  List.iter
    (fun r ->
      (* Analysis must bound the simulation it models. *)
      (match r.Analysis_tables.sim_worst_unmonitored_us with
      | Some sim ->
          Alcotest.(check bool)
            (Printf.sprintf "baseline sound at load %.2f (R=%.0f >= sim=%.0f)"
               r.Analysis_tables.load r.Analysis_tables.r_baseline_us sim)
            true
            (r.Analysis_tables.r_baseline_us +. 0.01 >= sim)
      | None -> Alcotest.fail "simulation column missing");
      (match r.Analysis_tables.sim_stolen_slot_max_us with
      | Some stolen ->
          Alcotest.(check bool) "equation (14) bounds measured interference"
            true
            (r.Analysis_tables.interference_bound_slot_us +. 0.01 >= stolen)
      | None -> Alcotest.fail "interference column missing");
      Alcotest.(check bool) "interposed beats baseline" true
        (r.Analysis_tables.r_interposed_us < r.Analysis_tables.r_baseline_us);
      Alcotest.(check bool) "monitored baseline slightly above baseline" true
        (r.Analysis_tables.r_baseline_monitored_us
         >= r.Analysis_tables.r_baseline_us))
    rows

let test_fig6c_worst_matches_interposed_analysis () =
  (* The conforming scenario's worst case should be near the eq.-(16) bound,
     far from the TDMA gap. *)
  let c = Lazy.force fig6c in
  let rows = Analysis_tables.compute_all ~with_sim:false () in
  let max_r_interposed =
    List.fold_left
      (fun acc r -> Float.max acc r.Analysis_tables.r_interposed_us)
      0. rows
  in
  Alcotest.(check bool)
    (Printf.sprintf "sim worst %.0f <= analytic interposed %.0f + directs"
       c.Fig6.latency.Summary.max max_r_interposed)
    true
    (* Direct IRQs can also queue behind a slot switch; allow slack of one
       context switch + C_BH. *)
    (c.Fig6.latency.Summary.max <= max_r_interposed +. 100.)

let suite =
  [
    Alcotest.test_case "parameters match the paper" `Quick
      test_params_match_paper;
    Alcotest.test_case "fig6a shape" `Slow test_fig6a_shape;
    Alcotest.test_case "fig6b improves the average" `Slow
      test_fig6b_improves_average;
    Alcotest.test_case "fig6c conforming" `Slow test_fig6c_conforming;
    Alcotest.test_case "fig6 histogram totals" `Slow test_fig6_histogram_totals;
    Alcotest.test_case "fig7 bound ordering" `Slow test_fig7_ordering;
    Alcotest.test_case "overhead table" `Slow test_overhead_table;
    Alcotest.test_case "analysis soundness columns" `Slow
      test_analysis_table_soundness;
    Alcotest.test_case "fig6c worst vs eq. (16)" `Slow
      test_fig6c_worst_matches_interposed_analysis;
  ]

let test_robustness_spread () =
  let module Robustness = Rthv_experiments.Robustness in
  let seeds = [ 1; 2; 3; 4 ] in
  let a = Robustness.run ~seeds ~count_per_load:400 Fig6.Unmonitored in
  let c = Robustness.run ~seeds ~count_per_load:400 Fig6.Monitored_conforming in
  Alcotest.(check int) "one mean per seed" 4 (List.length a.Robustness.means_us);
  (* Run-to-run noise is far smaller than the scenario separation. *)
  Alcotest.(check bool) "scenarios separated beyond noise" true
    (a.Robustness.min_mean_us
     > c.Robustness.max_mean_us +. (10. *. a.Robustness.std_of_means_us));
  Alcotest.(check bool) "spread is tight" true
    (a.Robustness.std_of_means_us < 0.15 *. a.Robustness.mean_of_means_us)

let test_fig6_by_class () =
  let b = Lazy.force fig6b in
  let find classification =
    List.assoc classification b.Fig6.by_class
  in
  let direct = find Rthv_core.Irq_record.Direct in
  let interposed = find Rthv_core.Irq_record.Interposed in
  let delayed = find Rthv_core.Irq_record.Delayed in
  Alcotest.(check bool) "direct is fastest" true
    (direct.Summary.mean < interposed.Summary.mean);
  (* Under violating arrivals an interposed IRQ can queue behind older
     delayed items in the FIFO, so its mean is above the pure eq.-(16)
     cost — but still an order of magnitude under the delayed mean. *)
  Alcotest.(check bool) "interposed well under 1ms" true
    (interposed.Summary.mean < 1_000.);
  Alcotest.(check bool) "delayed dominates the average" true
    (delayed.Summary.mean > 5. *. interposed.Summary.mean)

let suite =
  suite
  @ [
      Alcotest.test_case "seed robustness" `Slow test_robustness_spread;
      Alcotest.test_case "fig6 per-class summaries" `Slow test_fig6_by_class;
    ]

let test_csv_exports () =
  let b = Lazy.force fig6b in
  let csv = Fig6.histogram_csv b in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
      Alcotest.(check string) "header" "bin_lo_us,bin_hi_us,count" header;
      let total =
        List.fold_left
          (fun acc row ->
            match String.split_on_char ',' row with
            | [ _; _; count ] -> acc + int_of_string count
            | _ -> Alcotest.failf "malformed row %S" row)
          0 rows
      in
      Alcotest.(check int) "counts conserve the IRQ total" (3 * count) total
  | [] -> Alcotest.fail "empty csv");
  let f7 = [ Fig7.run ~window:200 Fig7.Unbounded ] in
  let csv7 = Fig7.series_csv f7 in
  let rows7 = String.split_on_char '\n' (String.trim csv7) in
  Alcotest.(check bool) "fig7 csv has header + rows" true
    (List.length rows7 > 10);
  Alcotest.(check string) "fig7 header" "event_index,a) unbounded"
    (List.hd rows7)

let suite =
  suite @ [ Alcotest.test_case "CSV exports" `Slow test_csv_exports ]
