module Trace_io = Rthv_workload.Trace_io
module Ecu_trace = Rthv_workload.Ecu_trace
module Cycles = Rthv_engine.Cycles

let temp_file () = Filename.temp_file "rthv_trace" ".csv"

let test_roundtrip_timestamps () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let timestamps = List.map Testutil.us [ 0; 13; 57; 200; 480 ] in
      Trace_io.save ~path timestamps;
      Alcotest.(check (list int)) "roundtrip" timestamps
        (Trace_io.load ~path))

let test_roundtrip_fractional () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* 0.005 us granularity: every cycle is representable in 3 decimals. *)
      let timestamps = [ 1; 7; 123; 4567 ] in
      Trace_io.save ~path timestamps;
      Alcotest.(check (list int)) "cycle-precise roundtrip" timestamps
        (Trace_io.load ~path))

let test_load_sorts_and_skips_comments () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# a comment\n10.0\n\n5.0\n# another\n20.0\n";
      close_out oc;
      Alcotest.(check (list int)) "sorted, comments skipped"
        (List.map Testutil.us [ 5; 10; 20 ])
        (Trace_io.load ~path))

let test_malformed_rejected () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "10.0\nnot-a-number\n";
      close_out oc;
      match Trace_io.load ~path with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ())

let test_distances_roundtrip () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let distances = [| 200; 4000; 1 |] in
      Trace_io.save_distances ~path distances;
      Alcotest.(check (array int)) "distance roundtrip" distances
        (Trace_io.load_distances ~path))

let test_ecu_trace_roundtrip () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = Ecu_trace.generate ~seed:3 Ecu_trace.default_profile in
      Trace_io.save ~path trace;
      let loaded = Trace_io.load ~path in
      Alcotest.(check int) "same length" (List.length trace)
        (List.length loaded);
      Alcotest.(check bool) "identical at cycle precision" true
        (trace = loaded))

let suite =
  [
    Alcotest.test_case "timestamp roundtrip" `Quick test_roundtrip_timestamps;
    Alcotest.test_case "cycle-precision roundtrip" `Quick
      test_roundtrip_fractional;
    Alcotest.test_case "sorting and comments" `Quick
      test_load_sorts_and_skips_comments;
    Alcotest.test_case "malformed input rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "distance roundtrip" `Quick test_distances_roundtrip;
    Alcotest.test_case "full ECU trace roundtrip" `Quick test_ecu_trace_roundtrip;
  ]
