module PS = Rthv_experiments.Phase_sweep
module Irq_record = Rthv_core.Irq_record
module Cycles = Rthv_engine.Cycles

let us = Testutil.us

let unmonitored = lazy (PS.run ~samples:56 ~monitored:false ())
let monitored = lazy (PS.run ~samples:56 ~monitored:true ())

(* The subscriber is partition 1: its slot spans [6000, 12000) us. *)
let in_subscriber_slot phase = phase >= us 6_000 && phase < us 12_000

let test_unmonitored_sawtooth () =
  let r = Lazy.force unmonitored in
  List.iter
    (fun s ->
      if in_subscriber_slot s.PS.phase then begin
        if s.PS.classification <> Irq_record.Direct then
          Alcotest.failf "phase %a should be direct" Cycles.pp s.PS.phase
      end
      else if s.PS.classification <> Irq_record.Delayed then
        Alcotest.failf "phase %a should be delayed" Cycles.pp s.PS.phase)
    r.PS.samples;
  (* Latency just after the subscriber's slot end is near the full gap;
     just before the next slot start it is near zero + slot entry. *)
  let latency_at phase =
    match List.find_opt (fun s -> s.PS.phase = phase) r.PS.samples with
    | Some s -> s.PS.latency_us
    | None -> Alcotest.failf "no sample at %a" Cycles.pp phase
  in
  Alcotest.(check bool) "just after slot end: ~8000us" true
    (latency_at (us 12_000) > 7_500.);
  Alcotest.(check bool) "late in the foreign stretch: shorter" true
    (latency_at (us 5_750) < 700.);
  Alcotest.(check bool) "worst near the TDMA gap" true (r.PS.worst_us > 7_900.)

let test_monitored_flat () =
  let r = Lazy.force monitored in
  (* Everything outside the subscriber's slot is interposed with a constant
     cost; nothing is delayed. *)
  List.iter
    (fun s ->
      if s.PS.classification = Irq_record.Delayed then
        Alcotest.failf "monitored probe delayed at %a" Cycles.pp s.PS.phase)
    r.PS.samples;
  Alcotest.(check bool) "flat profile: worst ~ interposed cost" true
    (r.PS.worst_us < 200.);
  Alcotest.(check bool) "mean far below the unmonitored mean" true
    (r.PS.mean_us *. 10. < (Lazy.force unmonitored).PS.mean_us)

let test_sample_count_and_order () =
  let r = Lazy.force unmonitored in
  Alcotest.(check int) "sample count" 56 (List.length r.PS.samples);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a.PS.phase < b.PS.phase && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "phases ascending" true (ascending r.PS.samples)

let test_validation () =
  Alcotest.check_raises "sample count checked"
    (Invalid_argument "Phase_sweep.run: need >= 2 samples") (fun () ->
      ignore (PS.run ~samples:1 ~monitored:false () : PS.result))

let suite =
  [
    Alcotest.test_case "unmonitored sawtooth" `Slow test_unmonitored_sawtooth;
    Alcotest.test_case "monitored flat profile" `Slow test_monitored_flat;
    Alcotest.test_case "sampling structure" `Slow test_sample_count_and_order;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
