module IL = Rthv_analysis.Irq_latency
module AC = Rthv_analysis.Arrival_curve
module BW = Rthv_analysis.Busy_window
module TI = Rthv_analysis.Tdma_interference
module Platform = Rthv_hw.Platform

let us = Testutil.us

let costs = IL.costs_of_platform Platform.arm926ejs_200mhz

let paper_tdma = TI.make ~cycle:(us 14_000) ~slot:(us 6_000)

let source ~d_min_us =
  {
    IL.name = "irq";
    arrival = AC.sporadic ~d_min_us;
    c_th = us 5;
    c_bh = us 50;
  }

let test_costs_of_platform () =
  Testutil.check_cycles "C_Mon" 128 costs.IL.c_mon;
  Testutil.check_cycles "C_sched" 877 costs.IL.c_sched;
  Testutil.check_cycles "C_ctx" (us 50) costs.IL.c_ctx

let test_effective_wcets () =
  let src = source ~d_min_us:1000 in
  (* Equation (6). *)
  Testutil.check_cycles "C_i = C_TH + C_BH" (us 55) (IL.total_wcet src);
  (* Equation (13): C'_BH = 50us + 877cyc + 2*50us. *)
  Testutil.check_cycles "C'_BH" ((us 150) + 877) (IL.effective_bh costs src);
  (* Equation (15): C'_TH = 5us + 128cyc. *)
  Testutil.check_cycles "C'_TH" ((us 5) + 128) (IL.effective_th costs src)

let response result =
  match result with
  | Ok r -> r.BW.response_time
  | Error msg -> Alcotest.fail msg

let test_baseline_dominated_by_tdma () =
  let src = source ~d_min_us:15_000 in
  let r = response (IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[] ()) in
  (* One activation: W(1) = C_BH + eta(W)*C_TH + ceil(W/T)(T - Ti).
     W = 50 + 5 + 8000 = 8055us exactly (one TDMA gap, one top handler). *)
  Testutil.check_cycles "baseline R" (us 8_055) r;
  Alcotest.(check bool) "dominated by T - Ti" true
    (r >= IL.baseline_dominant_term ~tdma:paper_tdma)

let test_baseline_monitored_adds_cmon () =
  let src = source ~d_min_us:15_000 in
  let plain =
    response (IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[] ())
  in
  let monitored =
    response
      (IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[]
         ~monitoring:costs ())
  in
  Testutil.check_cycles "case 2 adds exactly C_Mon per top handler"
    (plain + 128) monitored

let test_interposed_drops_tdma () =
  let src = source ~d_min_us:15_000 in
  let r = response (IL.interposed ~costs ~self:src ~interferers:[] ()) in
  (* W(1) = C'_BH + C'_TH: no TDMA term at all. *)
  Testutil.check_cycles "equation (16) single activation"
    (IL.effective_bh costs src + IL.effective_th costs src)
    r;
  Alcotest.(check bool) "well below the TDMA gap" true
    (r < IL.baseline_dominant_term ~tdma:paper_tdma)

let test_interposed_with_interferers () =
  let src = source ~d_min_us:15_000 in
  let noisy =
    {
      IL.name = "noisy";
      arrival = AC.sporadic ~d_min_us:100;
      c_th = us 2;
      c_bh = us 10;
    }
  in
  let alone = response (IL.interposed ~costs ~self:src ~interferers:[] ()) in
  let crowded =
    response (IL.interposed ~costs ~self:src ~interferers:[ noisy ] ())
  in
  Alcotest.(check bool) "interferers only add top handlers" true
    (crowded > alone);
  (* The interferer contributes eta_j(W) * C_TH_j = ceil(W/100us) * 2us;
     solves to a small addition, far below its bottom-handler cost. *)
  Alcotest.(check bool) "interference is top-handler-sized" true
    (crowded - alone < us 50)

let test_tight_dmin_queues_activations () =
  (* d_min barely above C'_BH + C'_TH (~160us of demand per activation):
     heavily loaded but schedulable, and the analysis still converges. *)
  let src = source ~d_min_us:175 in
  match IL.interposed ~costs ~self:src ~interferers:[] () with
  | Ok r ->
      Alcotest.(check bool) "multi-activation busy period" true (r.BW.q_max >= 1);
      Alcotest.(check bool) "R at least single-job cost" true
        (r.BW.response_time >= IL.effective_bh costs src)
  | Error msg -> Alcotest.fail msg

let test_overload_detected () =
  (* d_min below C'_BH: interposed load > 100 %, must be reported. *)
  let src = source ~d_min_us:100 in
  match IL.interposed ~costs ~self:src ~interferers:[] () with
  | Error _ -> ()
  | Ok r ->
      Alcotest.failf "expected overload, got R=%a" Rthv_engine.Cycles.pp
        r.BW.response_time

let prop_interposed_beats_baseline d_min_us =
  (* Whenever both analyses converge, the interposed worst case must beat the
     TDMA-dominated baseline (the paper's headline claim). *)
  let src = source ~d_min_us in
  match
    ( IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[] (),
      IL.interposed ~costs ~self:src ~interferers:[] () )
  with
  | Ok b, Ok i -> i.BW.response_time < b.BW.response_time
  | _ -> true

let prop_monitoring_overhead_bounded d_min_us =
  (* Case 2 exceeds the unmonitored baseline by at most C_Mon per top-handler
     execution in the busy window. *)
  let src = source ~d_min_us in
  match
    ( IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[] (),
      IL.baseline ~tdma:paper_tdma ~self:src ~interferers:[] ~monitoring:costs
        () )
  with
  | Ok plain, Ok monitored ->
      monitored.BW.response_time >= plain.BW.response_time
  | _ -> true

let suite =
  [
    Alcotest.test_case "platform costs" `Quick test_costs_of_platform;
    Alcotest.test_case "equations (6), (13), (15)" `Quick test_effective_wcets;
    Alcotest.test_case "baseline dominated by TDMA (eq. 11-12)" `Quick
      test_baseline_dominated_by_tdma;
    Alcotest.test_case "case 2 adds monitor overhead" `Quick
      test_baseline_monitored_adds_cmon;
    Alcotest.test_case "interposed drops the TDMA term (eq. 16)" `Quick
      test_interposed_drops_tdma;
    Alcotest.test_case "interposed with interferers" `Quick
      test_interposed_with_interferers;
    Alcotest.test_case "tight d_min still converges" `Quick
      test_tight_dmin_queues_activations;
    Alcotest.test_case "interposed overload detected" `Quick
      test_overload_detected;
    Testutil.qtest "interposed < baseline (headline claim)"
      QCheck2.Gen.(200 -- 50_000)
      prop_interposed_beats_baseline;
    Testutil.qtest "monitoring overhead non-negative"
      QCheck2.Gen.(200 -- 50_000)
      prop_monitoring_overhead_bounded;
  ]
