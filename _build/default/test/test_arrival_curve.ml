module AC = Rthv_analysis.Arrival_curve
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let test_periodic () =
  let curve = AC.periodic ~period_us:100 in
  Alcotest.(check int) "eta(0)" 0 (AC.eta_plus curve 0);
  Alcotest.(check int) "eta(100us)" 1 (AC.eta_plus curve (us 100));
  Alcotest.(check int) "eta(101us)" 2 (AC.eta_plus curve (us 101));
  Alcotest.(check int) "eta(1ms)" 10 (AC.eta_plus curve (us 1000));
  Testutil.check_cycles "delta(1)" 0 (AC.delta_min curve 1);
  Testutil.check_cycles "delta(4)" (us 300) (AC.delta_min curve 4)

let test_sporadic () =
  let curve = AC.sporadic ~d_min_us:50 in
  Alcotest.(check int) "eta(200us)" 4 (AC.eta_plus curve (us 200));
  Testutil.check_cycles "delta(3)" (us 100) (AC.delta_min curve 3)

let test_periodic_jitter () =
  let curve = AC.periodic_jitter ~period_us:100 ~jitter_us:30 ~d_min_us:10 () in
  (* Window of 100us can contain ceil((100+30)/100) = 2 events. *)
  Alcotest.(check int) "jitter packs events" 2 (AC.eta_plus curve (us 100));
  (* Minimum distance floor still applies for tiny windows. *)
  Alcotest.(check int) "d_min caps tiny windows" 1 (AC.eta_plus curve (us 10));
  Testutil.check_cycles "delta(2) = period - jitter" (us 70)
    (AC.delta_min curve 2);
  (* With huge jitter, d_min dominates the distance. *)
  let bursty = AC.periodic_jitter ~period_us:100 ~jitter_us:500 ~d_min_us:5 () in
  Testutil.check_cycles "d_min floor" (us 5) (AC.delta_min bursty 2)

let test_distances_model () =
  let curve = AC.of_distance_fn (DF.of_entries [| us 10; us 100 |]) in
  Alcotest.(check int) "eta via distance fn" 2 (AC.eta_plus curve (us 100));
  Testutil.check_cycles "delta via distance fn" (us 100) (AC.delta_min curve 3)

let test_of_trace () =
  let curve = AC.of_trace ~l:2 (List.map us [ 0; 30; 100 ]) in
  Testutil.check_cycles "learned delta(2)" (us 30) (AC.delta_min curve 2);
  Testutil.check_cycles "learned delta(3)" (us 100) (AC.delta_min curve 3)

let test_rate () =
  Testutil.close "periodic rate" (1. /. float_of_int (us 100))
    (AC.rate (AC.periodic ~period_us:100));
  Testutil.close "sporadic rate" (1. /. float_of_int (us 50))
    (AC.rate (AC.sporadic ~d_min_us:50))

let test_validate () =
  let ok = function Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "periodic ok" true (ok (AC.validate (AC.periodic ~period_us:5)));
  Alcotest.(check bool) "bad periodic" false
    (ok (AC.validate (AC.Periodic { period = 0 })));
  Alcotest.(check bool) "bad jitter model" false
    (ok
       (AC.validate
          (AC.Periodic_jitter { period = us 10; jitter = -1; d_min = 1 })));
  Alcotest.(check bool) "d_min > period rejected" false
    (ok
       (AC.validate
          (AC.Periodic_jitter { period = us 10; jitter = 0; d_min = us 20 })))

let curve_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun p -> AC.periodic ~period_us:p) (1 -- 10_000);
        map (fun d -> AC.sporadic ~d_min_us:d) (1 -- 10_000);
        map2
          (fun p j ->
            AC.periodic_jitter ~period_us:p ~jitter_us:j ~d_min_us:1 ())
          (1 -- 10_000) (0 -- 10_000);
      ])

let prop_eta_monotone curve =
  let ok = ref true in
  let prev = ref 0 in
  for k = 0 to 50 do
    let e = AC.eta_plus curve (k * 1000) in
    if e < !prev then ok := false;
    prev := e
  done;
  !ok

let prop_eta_superadditive_windows curve =
  (* eta(a + b) <= eta(a) + eta(b) for upper arrival curves (subadditivity). *)
  let ok = ref true in
  List.iter
    (fun (a, b) ->
      if AC.eta_plus curve (a + b) > AC.eta_plus curve a + AC.eta_plus curve b
      then ok := false)
    [ (1000, 2000); (500, 500); (12_345, 67); (100_000, 1) ];
  !ok

let prop_delta_eta_consistent curve =
  (* Packing q events needs a window larger than delta(q): eta(delta(q)+1) >= q. *)
  let ok = ref true in
  for q = 1 to 12 do
    if AC.eta_plus curve (AC.delta_min curve q + 1) < q then ok := false
  done;
  !ok

let suite =
  [
    Alcotest.test_case "periodic model" `Quick test_periodic;
    Alcotest.test_case "sporadic model" `Quick test_sporadic;
    Alcotest.test_case "periodic with jitter" `Quick test_periodic_jitter;
    Alcotest.test_case "explicit distance model" `Quick test_distances_model;
    Alcotest.test_case "trace-derived model" `Quick test_of_trace;
    Alcotest.test_case "long-term rate" `Quick test_rate;
    Alcotest.test_case "validation" `Quick test_validate;
    Testutil.qtest "eta monotone in window" curve_gen prop_eta_monotone;
    Testutil.qtest "eta subadditive over windows" curve_gen
      prop_eta_superadditive_windows;
    Testutil.qtest "delta/eta consistency" curve_gen prop_delta_eta_consistent;
  ]
