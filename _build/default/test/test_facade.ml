(* The README's entry point: everything reachable through Rthv_core.Rthv. *)

module R = Rthv_core.Rthv

let test_readme_snippet () =
  let partitions =
    [
      R.Config.partition ~name:"control" ~slot_us:5_000 ();
      R.Config.partition ~name:"io" ~slot_us:5_000 ();
    ]
  in
  let d_min = R.Cycles.of_us 2_000 in
  let source =
    R.Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
      ~interarrivals:
        (Rthv_workload.Gen.exponential ~seed:1 ~mean:d_min ~count:100)
      ~shaping:(R.Config.Fixed_monitor (R.Distance_fn.d_min d_min))
      ()
  in
  let sim =
    R.Hyp_sim.create (R.Config.make ~partitions ~sources:[ source ] ())
  in
  R.Hyp_sim.run sim;
  Alcotest.(check int) "all IRQs complete" 100
    (List.length (R.Hyp_sim.records sim))

let test_analysis_surface () =
  (* Touch each re-exported analysis module through the facade. *)
  let tdma = R.Tdma.of_us [| 6_000; 6_000; 2_000 |] in
  let ti = R.Tdma.interference tdma ~partition:0 in
  let curve = R.Arrival_curve.sporadic ~d_min_us:1_544 in
  Alcotest.(check bool) "eta positive" true
    (R.Arrival_curve.eta_plus curve (R.Cycles.of_us 5_000) > 0);
  let monitor = R.Monitor.d_min (R.Cycles.of_us 100) in
  Alcotest.(check bool) "monitor admits" true (R.Monitor.check monitor 0);
  let throttle = R.Throttle.create ~capacity:2 ~refill:100 in
  Alcotest.(check bool) "throttle admits" true (R.Throttle.check throttle 0);
  let loss =
    R.Independence.utilisation_loss
      ~monitor:(R.Distance_fn.d_min (R.Cycles.of_us 1_544))
      ~c_bh_eff:(R.Cycles.of_us 154)
  in
  Testutil.close_rel ~rel:0.01 "10% loss" 0.0997 loss;
  let task =
    { R.Guest_sched.name = "t"; period = R.Cycles.of_us 10_000;
      wcet = R.Cycles.of_us 500; priority = 0 }
  in
  Alcotest.(check bool) "guest RTA" true
    (R.Guest_sched.schedulable ~tdma:ti [ task ]);
  Alcotest.(check bool) "EDF dbf/sbf" true
    (R.Edf_sched.schedulable ~tdma:ti [ task ]);
  let propagation =
    { R.Propagation.input = curve; r_min = 0; r_max = R.Cycles.of_us 100 }
  in
  Testutil.check_cycles "jitter" (R.Cycles.of_us 100)
    (R.Propagation.output_jitter propagation)

let test_trace_and_vcd_surface () =
  let trace = R.Hyp_trace.create ~capacity:16 () in
  R.Hyp_trace.record trace ~time:5
    (R.Hyp_trace.Top_handler_run { irq = 0; line = 0 });
  Alcotest.(check int) "recorded" 1 (R.Hyp_trace.length trace);
  Alcotest.(check bool) "vcd non-empty" true
    (String.length (R.Vcd_export.to_string trace) > 100)

let suite =
  [
    Alcotest.test_case "README snippet" `Quick test_readme_snippet;
    Alcotest.test_case "analysis surface" `Quick test_analysis_surface;
    Alcotest.test_case "trace and VCD surface" `Quick test_trace_and_vcd_surface;
  ]
