(* Bottom handlers signalling guest tasks: the full guest-level IRQ
   processing chain IRQ -> top handler -> bottom handler -> application
   task. *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Guest = Rthv_rtos.Guest
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen

let us = Testutil.us

let handler_task =
  Task.spec ~name:"rx_handler" ~period_us:5_000 ~wcet_us:200 ~priority:0 ()

let partitions =
  [
    Config.partition ~name:"P1" ~slot_us:6_000 ();
    Config.partition ~name:"P2" ~slot_us:6_000 ();
    Config.partition ~name:"HK" ~slot_us:2_000 ();
  ]

let run ~shaping ~interarrivals =
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:20 ~interarrivals ~shaping ~activates:handler_task ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  sim

let test_every_irq_spawns_a_job () =
  let sim =
    run ~shaping:Config.No_shaping
      ~interarrivals:(Gen.constant ~period:(us 3_000) ~count:40)
  in
  let completions = Guest.take_completions (Hyp_sim.guest sim 1) in
  Alcotest.(check int) "one handler job per IRQ" 40 (List.length completions);
  List.iter
    (fun c ->
      Alcotest.(check string) "task name" "rx_handler" c.Task.job_task)
    completions

let test_single_chain_latency () =
  (* IRQ inside the subscriber's slot: BH runs immediately, then the task.
     End-to-end = C_TH + C_BH + C_task. *)
  let sim = run ~shaping:Config.No_shaping ~interarrivals:[| us 7_000 |] in
  let records = Hyp_sim.records sim in
  (match records with
  | [ r ] ->
      Testutil.check_cycles "bottom handler done" (us 7_025)
        r.Irq_record.completion
  | _ -> Alcotest.fail "one IRQ expected");
  match Guest.take_completions (Hyp_sim.guest sim 1) with
  | [ c ] ->
      Testutil.check_cycles "task released at BH completion" (us 7_025)
        c.Task.released;
      Testutil.check_cycles "task finishes after its wcet" (us 7_225)
        c.Task.finished
  | _ -> Alcotest.fail "one handler job expected"

let test_interposed_chain_still_waits_for_slot () =
  (* Foreign-slot IRQ under monitoring: the bottom handler runs interposed,
     but the application task is ordinary partition work and still waits for
     the subscriber's slot — interposition accelerates exactly the handler
     tier, as the paper designs it. *)
  let sim =
    run
      ~shaping:(Config.Fixed_monitor (DF.d_min (us 100)))
      ~interarrivals:[| us 1_000 |]
  in
  (match Hyp_sim.records sim with
  | [ r ] ->
      Alcotest.(check string) "interposed" "interposed"
        (Irq_record.classification_name r.Irq_record.classification);
      Alcotest.(check bool) "handler done fast" true
        (Irq_record.latency r < us 200)
  | _ -> Alcotest.fail "one IRQ expected");
  match Guest.take_completions (Hyp_sim.guest sim 1) with
  | [ c ] ->
      (* Task released ~1080us, runs when P2's slot opens at 6000us. *)
      Alcotest.(check bool) "task waits for the subscriber's slot" true
        (c.Task.finished >= us 6_000);
      Testutil.check_cycles "task completion" (us 6_250) c.Task.finished
  | _ -> Alcotest.fail "one handler job expected"

let test_quiescence_includes_chain () =
  (* The run must not stop before activated jobs finish, even when the last
     bottom handler completes at the very end. *)
  let sim =
    run ~shaping:Config.No_shaping ~interarrivals:[| us 7_000; us 500 |]
  in
  Alcotest.(check int) "all jobs completed" 2
    (List.length (Guest.take_completions (Hyp_sim.guest sim 1)))

let suite =
  [
    Alcotest.test_case "every IRQ spawns a handler job" `Quick
      test_every_irq_spawns_a_job;
    Alcotest.test_case "direct chain timing" `Quick test_single_chain_latency;
    Alcotest.test_case "interposed chain: handler fast, task in-slot" `Quick
      test_interposed_chain_still_waits_for_slot;
    Alcotest.test_case "quiescence covers activated jobs" `Quick
      test_quiescence_includes_chain;
  ]
