module TI = Rthv_analysis.Tdma_interference

let us = Testutil.us

let paper = TI.make ~cycle:(us 14_000) ~slot:(us 6_000)

let test_equation_8 () =
  (* I_TDMA(dt) = ceil(dt/T_TDMA) * (T_TDMA - T_i). *)
  Testutil.check_cycles "empty window" 0 (TI.interference paper 0);
  Testutil.check_cycles "one cycle" (us 8_000)
    (TI.interference paper (us 14_000));
  Testutil.check_cycles "just past one cycle" (us 16_000)
    (TI.interference paper (us 14_001));
  Testutil.check_cycles "small window still pays one gap" (us 8_000)
    (TI.interference paper 1)

let test_worst_case_gap () =
  Testutil.check_cycles "T - Ti" (us 8_000) (TI.worst_case_gap paper)

let test_service () =
  Testutil.check_cycles "service of a full cycle" (us 6_000)
    (TI.service paper (us 14_000));
  Testutil.check_cycles "service clamps at zero" 0 (TI.service paper (us 100))

let test_full_slot_degenerate () =
  let full = TI.make ~cycle:(us 100) ~slot:(us 100) in
  Testutil.check_cycles "no interference with full slot" 0
    (TI.interference full (us 1_000_000))

let test_validation () =
  Alcotest.check_raises "slot must fit cycle"
    (Invalid_argument "Tdma_interference.make: need 0 < slot <= cycle")
    (fun () -> ignore (TI.make ~cycle:(us 10) ~slot:(us 20) : TI.t));
  Alcotest.check_raises "slot must be positive"
    (Invalid_argument "Tdma_interference.make: need 0 < slot <= cycle")
    (fun () -> ignore (TI.make ~cycle:(us 10) ~slot:0 : TI.t))

let tdma_gen =
  QCheck2.Gen.(
    map2
      (fun slot extra -> TI.make ~cycle:(slot + extra) ~slot)
      (1 -- 100_000) (0 -- 100_000))

let prop_monotone t =
  let ok = ref true in
  let prev = ref 0 in
  for k = 0 to 40 do
    let i = TI.interference t (k * 7_919) in
    if i < !prev then ok := false;
    prev := i
  done;
  !ok

let prop_service_plus_interference t =
  (* service(dt) + interference(dt) >= dt: together they cover the window. *)
  List.for_all
    (fun dt -> TI.service t dt + TI.interference t dt >= dt)
    [ 1; 100; 10_000; 1_000_000 ]

let suite =
  [
    Alcotest.test_case "equation (8)" `Quick test_equation_8;
    Alcotest.test_case "worst-case gap" `Quick test_worst_case_gap;
    Alcotest.test_case "guaranteed service" `Quick test_service;
    Alcotest.test_case "full-slot degenerate case" `Quick
      test_full_slot_degenerate;
    Alcotest.test_case "validation" `Quick test_validation;
    Testutil.qtest "interference monotone" tdma_gen prop_monotone;
    Testutil.qtest "service + interference covers window" tdma_gen
      prop_service_plus_interference;
  ]
