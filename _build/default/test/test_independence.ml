module Independence = Rthv_analysis.Independence
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let test_isolated () =
  Testutil.check_cycles "isolation means zero interference" 0
    (Independence.isolated (us 1_000_000))

let test_equation_14 () =
  (* I(dt) = ceil(dt/d_min) * C'_BH for the l=1 monitor. *)
  let curve = Independence.d_min_bound ~d_min:(us 1000) ~c_bh_eff:(us 154) in
  Testutil.check_cycles "one admission window" (us 154) (curve (us 1000));
  Testutil.check_cycles "two admission windows" (us 308) (curve (us 1001));
  Testutil.check_cycles "six windows in 6ms" (us (6 * 154)) (curve (us 6000));
  Testutil.check_cycles "empty window" 0 (curve 0)

let test_general_monitor_bound () =
  (* l = 2 monitor: consecutive >= 100us, triples >= 1000us. *)
  let monitor = DF.of_entries [| us 100; us 1000 |] in
  let curve = Independence.interposed_bound ~monitor ~c_bh_eff:(us 10) in
  (* In 1000us: delta(3) = 1000 not < 1000 -> at most 2 events. *)
  Testutil.check_cycles "burst pair" (us 20) (curve (us 1000));
  Testutil.check_cycles "third event needs a longer window" (us 30)
    (curve (us 1001))

let test_sum () =
  let a = Independence.d_min_bound ~d_min:(us 100) ~c_bh_eff:(us 5) in
  let b = Independence.d_min_bound ~d_min:(us 200) ~c_bh_eff:(us 7) in
  Testutil.check_cycles "sum of curves" (us 12)
    (Independence.sum [ a; b ] (us 100))

let test_is_sufficient () =
  let interference =
    Independence.d_min_bound ~d_min:(us 1000) ~c_bh_eff:(us 100)
  in
  (* Budget: 20 % of any window. *)
  let generous dt = dt / 5 in
  let stingy dt = dt / 20 in
  let windows = List.map us [ 1000; 5000; 14_000; 100_000 ] in
  Alcotest.(check bool) "within generous budget" true
    (Independence.is_sufficient ~interference ~budget:generous ~windows);
  Alcotest.(check bool) "exceeds stingy budget" false
    (Independence.is_sufficient ~interference ~budget:stingy ~windows)

let test_utilisation_loss () =
  let monitor = DF.d_min (us 1000) in
  Testutil.close "10 % of the processor" 0.1
    (Independence.utilisation_loss ~monitor ~c_bh_eff:(us 100))

let test_max_slot_loss () =
  let monitor = DF.d_min (us 1000) in
  (* 6 admissions in a 6000us slot plus one carry-in. *)
  Testutil.check_cycles "slot loss bound" (us (6 * 154 + 154))
    (Independence.max_slot_loss ~monitor ~c_bh_eff:(us 154) ~slot:(us 6000))

let test_required_d_min () =
  let d = Independence.required_d_min ~c_bh_eff:(us 154) ~max_utilisation:0.1 in
  Testutil.check_cycles "d_min for 10 %" (us 1540) d;
  Alcotest.(check bool) "resulting loss within budget" true
    (Independence.utilisation_loss ~monitor:(DF.d_min d) ~c_bh_eff:(us 154)
     <= 0.1 +. 1e-9);
  Alcotest.check_raises "bad utilisation"
    (Invalid_argument "Independence.required_d_min: max_utilisation <= 0")
    (fun () ->
      ignore
        (Independence.required_d_min ~c_bh_eff:1 ~max_utilisation:0.
          : Rthv_engine.Cycles.t))

let prop_bound_monotone (d_min, c) =
  let curve = Independence.d_min_bound ~d_min ~c_bh_eff:c in
  let ok = ref true in
  let prev = ref 0 in
  for k = 0 to 30 do
    let v = curve (k * 997) in
    if v < !prev then ok := false;
    prev := v
  done;
  !ok

let suite =
  [
    Alcotest.test_case "equation (1): isolation" `Quick test_isolated;
    Alcotest.test_case "equation (14): d_min bound" `Quick test_equation_14;
    Alcotest.test_case "general monitor bound" `Quick test_general_monitor_bound;
    Alcotest.test_case "summing interferers" `Quick test_sum;
    Alcotest.test_case "equation (2): sufficiency check" `Quick test_is_sufficient;
    Alcotest.test_case "utilisation loss" `Quick test_utilisation_loss;
    Alcotest.test_case "per-slot loss bound" `Quick test_max_slot_loss;
    Alcotest.test_case "d_min sizing" `Quick test_required_d_min;
    Testutil.qtest "interference bound monotone"
      QCheck2.Gen.(pair (1 -- 1_000_000) (0 -- 100_000))
      prop_bound_monotone;
  ]
