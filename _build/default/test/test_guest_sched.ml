module GS = Rthv_analysis.Guest_sched
module BW = Rthv_analysis.Busy_window
module TI = Rthv_analysis.Tdma_interference
module Independence = Rthv_analysis.Independence
module DF = Rthv_analysis.Distance_fn
module Task = Rthv_rtos.Task

let us = Testutil.us

let task ~name ~period_us ~wcet_us ?(priority = 0) () =
  { GS.name; period = us period_us; wcet = us wcet_us; priority }

(* A partition owning the whole processor: TDMA degenerates away. *)
let full = TI.make ~cycle:(us 1000) ~slot:(us 1000)

let paper_tdma = TI.make ~cycle:(us 14_000) ~slot:(us 6_000)

let response result =
  match result with
  | Ok r -> r.BW.response_time
  | Error msg -> Alcotest.fail msg

let test_single_task_full_processor () =
  let t = task ~name:"t" ~period_us:10_000 ~wcet_us:300 () in
  let r = response (GS.response_time ~tdma:full ~task:t ~higher_priority:[] ()) in
  Testutil.check_cycles "R = C on a dedicated processor" (us 300) r

let test_classic_rta_example () =
  (* Liu-Layland style: t1 (C=1, T=4), t2 (C=2, T=6), t3 (C=3, T=13), on a
     dedicated processor.  Classic RTA gives R3 = 1+2+3 first pass -> ...
     known result: R1 = 1, R2 = 3, R3 = 10 (in units of 1us here). *)
  let t1 = task ~name:"t1" ~period_us:4 ~wcet_us:1 ~priority:0 () in
  let t2 = task ~name:"t2" ~period_us:6 ~wcet_us:2 ~priority:1 () in
  let t3 = task ~name:"t3" ~period_us:13 ~wcet_us:3 ~priority:2 () in
  let r1 = response (GS.response_time ~tdma:full ~task:t1 ~higher_priority:[] ()) in
  let r2 =
    response (GS.response_time ~tdma:full ~task:t2 ~higher_priority:[ t1 ] ())
  in
  let r3 =
    response
      (GS.response_time ~tdma:full ~task:t3 ~higher_priority:[ t1; t2 ] ())
  in
  Testutil.check_cycles "R1" (us 1) r1;
  Testutil.check_cycles "R2" (us 3) r2;
  Testutil.check_cycles "R3" (us 10) r3

let test_tdma_adds_gaps () =
  (* Paper TDMA: a 500us task in a 6000us slot waits through the 8000us gap
     in the worst case. *)
  let t = task ~name:"ctl" ~period_us:28_000 ~wcet_us:500 () in
  let r =
    response (GS.response_time ~tdma:paper_tdma ~task:t ~higher_priority:[] ())
  in
  Alcotest.(check bool) "R spans at least one TDMA gap" true (r >= us 8_500);
  Alcotest.(check bool) "R converges below the period" true (r <= us 28_000)

let test_interference_curve_inflates_response () =
  let t = task ~name:"ctl" ~period_us:28_000 ~wcet_us:500 () in
  let interference =
    Independence.d_min_bound ~d_min:(us 1_000) ~c_bh_eff:(us 154)
  in
  let isolated =
    response (GS.response_time ~tdma:paper_tdma ~task:t ~higher_priority:[] ())
  in
  let interposed =
    response
      (GS.response_time ~tdma:paper_tdma ~interference ~task:t
         ~higher_priority:[] ())
  in
  Alcotest.(check bool) "interposition inflates the response" true
    (interposed > isolated)

let test_blocking_term () =
  let t = task ~name:"t" ~period_us:10_000 ~wcet_us:100 () in
  let plain = response (GS.response_time ~tdma:full ~task:t ~higher_priority:[] ()) in
  let blocked =
    response
      (GS.response_time ~tdma:full ~blocking:(us 154) ~task:t
         ~higher_priority:[] ())
  in
  Testutil.check_cycles "carry-in adds exactly the blocking term"
    (plain + us 154) blocked

let test_analyse_and_schedulable () =
  let set =
    [
      task ~name:"hi" ~period_us:20_000 ~wcet_us:1_000 ~priority:0 ();
      task ~name:"lo" ~period_us:56_000 ~wcet_us:2_000 ~priority:1 ();
    ]
  in
  let rows = GS.analyse ~tdma:paper_tdma set in
  Alcotest.(check int) "one row per task" 2 (List.length rows);
  Alcotest.(check bool) "set schedulable under paper TDMA" true
    (GS.schedulable ~tdma:paper_tdma set);
  (* Overload the slot: 5000us of demand per 14000us cycle in a 6000us slot
     still fits; 7000us per 20000us does not fit a 6/14 share. *)
  let overloaded = [ task ~name:"big" ~period_us:20_000 ~wcet_us:9_000 () ] in
  Alcotest.(check bool) "overload detected" false
    (GS.schedulable ~tdma:paper_tdma overloaded)

let test_min_tolerated_d_min () =
  let set = [ task ~name:"ctl" ~period_us:28_000 ~wcet_us:2_000 () ] in
  match GS.min_tolerated_d_min ~tdma:paper_tdma ~c_bh_eff:(us 154) set with
  | None -> Alcotest.fail "set is schedulable in isolation"
  | Some d_min ->
      (* The returned grant must keep the set schedulable... *)
      let ok d =
        GS.schedulable ~tdma:paper_tdma
          ~interference:(Independence.d_min_bound ~d_min:d ~c_bh_eff:(us 154))
          set
      in
      Alcotest.(check bool) "granted d_min schedulable" true (ok d_min);
      (* ...and be tight: one cycle less must fail (or be 1). *)
      if d_min > 1 then
        Alcotest.(check bool) "one cycle tighter fails" false (ok (d_min - 1))

let test_min_tolerated_none_when_overloaded () =
  let set = [ task ~name:"big" ~period_us:20_000 ~wcet_us:9_000 () ] in
  Alcotest.(check (option int)) "unschedulable even isolated" None
    (GS.min_tolerated_d_min ~tdma:paper_tdma ~c_bh_eff:(us 154) set)

let test_of_spec_and_utilisation () =
  let spec = Task.spec ~name:"x" ~period_us:100 ~wcet_us:25 ~priority:3 () in
  let t = GS.of_spec spec in
  Alcotest.(check string) "name" "x" t.GS.name;
  Alcotest.(check int) "priority" 3 t.GS.priority;
  Testutil.close "utilisation" 0.25 (GS.utilisation [ t ])

(* Property: simulated guest task response times never exceed the analysis,
   on systems matching the analysis assumptions. *)
let prop_guest_rta_bounds_simulation (period_factor, wcet_us, seed) =
  let wcet_us = 50 + wcet_us in
  let period_us = 14_000 * period_factor in
  let spec = Task.spec ~name:"t" ~period_us ~wcet_us () in
  let partitions =
    [
      Rthv_core.Config.partition ~name:"P1" ~slot_us:6_000
        ~tasks:[ spec ] ();
      Rthv_core.Config.partition ~name:"P2" ~slot_us:6_000 ();
      Rthv_core.Config.partition ~name:"HK" ~slot_us:2_000 ();
    ]
  in
  let d_min = us 2_000 in
  let interarrivals =
    Rthv_workload.Gen.exponential_clamped ~seed ~mean:d_min ~d_min ~count:300
  in
  let config =
    Rthv_core.Config.make ~partitions
      ~sources:
        [
          Rthv_core.Config.source ~name:"irq" ~line:0 ~subscriber:1
            ~c_th_us:5 ~c_bh_us:50 ~interarrivals
            ~shaping:(Rthv_core.Config.Fixed_monitor (DF.d_min d_min))
            ();
        ]
      ()
  in
  let sim = Rthv_core.Hyp_sim.create config in
  Rthv_core.Hyp_sim.run sim;
  let completions = Rthv_rtos.Guest.take_completions (Rthv_core.Hyp_sim.guest sim 0) in
  let costs =
    Rthv_analysis.Irq_latency.costs_of_platform Rthv_hw.Platform.arm926ejs_200mhz
  in
  let c_bh_eff =
    us 50 + costs.Rthv_analysis.Irq_latency.c_sched
    + (2 * costs.Rthv_analysis.Irq_latency.c_ctx)
  in
  let tdma =
    TI.make ~cycle:(us 14_000)
      ~slot:(us 6_000 - costs.Rthv_analysis.Irq_latency.c_ctx)
  in
  let interference = Independence.d_min_bound ~d_min ~c_bh_eff in
  (* Blocking: one interposition carry-in, plus one top handler of the
     source (hypervisor work is invisible to eq. (8)). *)
  let blocking = c_bh_eff + us 5 + costs.Rthv_analysis.Irq_latency.c_mon in
  match
    GS.response_time ~tdma ~interference ~blocking ~task:(GS.of_spec spec)
      ~higher_priority:[] ()
  with
  | Error _ -> true (* analysis refuses: nothing to compare *)
  | Ok r ->
      let bound = r.BW.response_time in
      List.for_all
        (fun c ->
          let observed = Task.response_time c in
          if observed > bound then
            QCheck2.Test.fail_reportf
              "job %s#%d response %a exceeds analytic bound %a"
              c.Task.job_task c.Task.job_index Rthv_engine.Cycles.pp observed
              Rthv_engine.Cycles.pp bound
          else true)
        completions

let suite =
  [
    Alcotest.test_case "single task, dedicated CPU" `Quick
      test_single_task_full_processor;
    Alcotest.test_case "classic RTA example" `Quick test_classic_rta_example;
    Alcotest.test_case "TDMA gap dominates" `Quick test_tdma_adds_gaps;
    Alcotest.test_case "interference inflates response" `Quick
      test_interference_curve_inflates_response;
    Alcotest.test_case "blocking term" `Quick test_blocking_term;
    Alcotest.test_case "analyse / schedulable" `Quick test_analyse_and_schedulable;
    Alcotest.test_case "minimum tolerated d_min" `Quick test_min_tolerated_d_min;
    Alcotest.test_case "no grant when overloaded" `Quick
      test_min_tolerated_none_when_overloaded;
    Alcotest.test_case "spec conversion" `Quick test_of_spec_and_utilisation;
    Testutil.qtest ~count:20 "guest RTA bounds simulated responses"
      QCheck2.Gen.(triple (1 -- 4) (0 -- 2_000) (0 -- 1_000))
      prop_guest_rta_bounds_simulation;
  ]
