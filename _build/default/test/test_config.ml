module Config = Rthv_core.Config
module DF = Rthv_analysis.Distance_fn

let partition name slot = Config.partition ~name ~slot_us:slot ()

let source ?(line = 0) ?(subscriber = 0) ?(shaping = Config.No_shaping) () =
  Config.source ~name:"s" ~line ~subscriber ~c_th_us:5 ~c_bh_us:50
    ~interarrivals:[| 100; 200 |] ~shaping ()

let make ?(partitions = [ partition "a" 100; partition "b" 100 ]) sources =
  Config.make ~partitions ~sources ()

let expect_error config =
  match Config.validate config with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a validation error"

let test_valid_config () =
  match Config.validate (make [ source () ]) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_no_partitions () = expect_error (make ~partitions:[] [])

let test_bad_subscriber () = expect_error (make [ source ~subscriber:7 () ])

let test_duplicate_lines () =
  expect_error (make [ source ~line:1 (); source ~line:1 () ])

let test_line_out_of_range () = expect_error (make [ source ~line:999 () ])

let test_bad_self_learning () =
  let shaping =
    Config.Self_learning
      { l = 2; learn_events = 5; bound = Some (DF.d_min 100) }
  in
  (* bound has l = 1, monitor wants l = 2 *)
  expect_error (make [ source ~shaping () ])

let test_monitoring_enabled () =
  Alcotest.(check bool) "off without shaping" false
    (Config.monitoring_enabled (make [ source () ]));
  Alcotest.(check bool) "on with a monitor" true
    (Config.monitoring_enabled
       (make [ source ~shaping:(Config.Fixed_monitor (DF.d_min 10)) () ]));
  Alcotest.(check bool) "on with self-learning" true
    (Config.monitoring_enabled
       (make
          [
            source
              ~shaping:
                (Config.Self_learning { l = 1; learn_events = 1; bound = None })
              ();
          ]))

let test_tdma_derivation () =
  let config = make [ source () ] in
  let tdma = Config.tdma config in
  Alcotest.(check int) "two partitions" 2 (Rthv_core.Tdma.partitions tdma);
  Testutil.check_cycles "cycle" (Testutil.us 200)
    (Rthv_core.Tdma.cycle_length tdma)

let test_constructor_validation () =
  Alcotest.check_raises "slot must be positive"
    (Invalid_argument "Config.partition: slot must be positive") (fun () ->
      ignore (Config.partition ~name:"x" ~slot_us:0 () : Config.partition));
  Alcotest.check_raises "wcet must be positive"
    (Invalid_argument "Config.source: handler WCETs must be positive")
    (fun () ->
      ignore
        (Config.source ~name:"x" ~line:0 ~subscriber:0 ~c_th_us:0 ~c_bh_us:1
           ~interarrivals:[||] ()
          : Config.source))

let suite =
  [
    Alcotest.test_case "valid config accepted" `Quick test_valid_config;
    Alcotest.test_case "no partitions rejected" `Quick test_no_partitions;
    Alcotest.test_case "bad subscriber rejected" `Quick test_bad_subscriber;
    Alcotest.test_case "duplicate lines rejected" `Quick test_duplicate_lines;
    Alcotest.test_case "line range checked" `Quick test_line_out_of_range;
    Alcotest.test_case "self-learning params checked" `Quick
      test_bad_self_learning;
    Alcotest.test_case "monitoring_enabled" `Quick test_monitoring_enabled;
    Alcotest.test_case "tdma derivation" `Quick test_tdma_derivation;
    Alcotest.test_case "constructor validation" `Quick
      test_constructor_validation;
  ]
