module C = Rthv_analysis.Certificate
module GS = Rthv_analysis.Guest_sched
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let task ~name ~period_us ~wcet_us =
  { GS.name; period = us period_us; wcet = us wcet_us; priority = 0 }

let partitions ~wcet_us =
  [
    {
      C.p_index = 0;
      p_name = "ctl";
      slot = us 6_000;
      tasks = [ task ~name:"loop" ~period_us:28_000 ~wcet_us ];
    };
    { C.p_index = 1; p_name = "io"; slot = us 6_000; tasks = [] };
    { C.p_index = 2; p_name = "hk"; slot = us 2_000; tasks = [] };
  ]

let grant ~d_min_us =
  {
    C.source_name = "nic";
    monitor = DF.d_min (us d_min_us);
    c_bh_eff = us 154;
    subscriber = 1;
  }

let check ?(wcet_us = 1_000) ?(d_min_us = 1_544) () =
  C.check ~cycle:(us 14_000) ~c_ctx:(us 50)
    ~partitions:(partitions ~wcet_us)
    ~grants:[ grant ~d_min_us ]

let test_holds_for_light_task () =
  let cert = check () in
  Alcotest.(check bool) "certificate holds" true cert.C.holds;
  Alcotest.(check int) "one verdict per partition" 3
    (List.length cert.C.verdicts);
  List.iter
    (fun v -> Alcotest.(check bool) "each partition schedulable" true v.C.schedulable)
    cert.C.verdicts

let test_budget_is_eq14_plus_carry_in () =
  let cert = check () in
  let v0 = List.nth cert.C.verdicts 0 in
  (* eta+(6000us @ d_min 1544us) = 4 admissions * 154us + 154us carry-in. *)
  Testutil.check_cycles "b_Ip" (us ((4 * 154) + 154)) v0.C.interference_budget;
  Testutil.close ~eps:1e-3 "10% utilisation loss" 0.0997 v0.C.utilisation_loss

let test_fails_when_task_too_heavy () =
  (* 5800us of work in a 5950us effective slot per 14ms cycle: isolated it
     barely fits nothing once the TDMA gap is paid; must fail. *)
  let cert = check ~wcet_us:12_000 () in
  Alcotest.(check bool) "certificate rejected" false cert.C.holds;
  let v0 = List.nth cert.C.verdicts 0 in
  Alcotest.(check bool) "partition 0 flagged" false v0.C.schedulable

let test_marginal_task_rejected_only_with_grant () =
  (* A task that is schedulable in isolation but broken by the grant's
     interference: find it by tightening wcet until isolation passes and the
     granted system fails. *)
  let isolated_ok wcet_us =
    let cert =
      C.check ~cycle:(us 14_000) ~c_ctx:(us 50)
        ~partitions:(partitions ~wcet_us) ~grants:[]
    in
    cert.C.holds
  in
  let granted_ok wcet_us =
    (check ~wcet_us ~d_min_us:400 ()).C.holds
  in
  (* With d_min = 400us the grant steals ~38% long-term. *)
  let wcet = 10_000 in
  Alcotest.(check bool) "isolated fits" true (isolated_ok wcet);
  Alcotest.(check bool) "grant breaks it" false (granted_ok wcet)

let test_degenerate_slot () =
  let bad =
    C.check ~cycle:(us 14_000) ~c_ctx:(us 50)
      ~partitions:
        [ { C.p_index = 0; p_name = "tiny"; slot = us 10; tasks = [] } ]
      ~grants:[]
  in
  (* A slot that cannot even cover the entry context switch is flagged as a
     configuration error, tasks or not. *)
  Alcotest.(check bool) "degenerate slot flagged" false bad.C.holds;
  let with_task =
    C.check ~cycle:(us 14_000) ~c_ctx:(us 50)
      ~partitions:
        [
          {
            C.p_index = 0;
            p_name = "tiny";
            slot = us 10;
            tasks = [ task ~name:"t" ~period_us:1_000 ~wcet_us:1 ];
          };
        ]
      ~grants:[]
  in
  Alcotest.(check bool) "slot < C_ctx rejected" false with_task.C.holds

let test_pp_renders () =
  let cert = check () in
  let out = Format.asprintf "%a" C.pp cert in
  let contains needle =
    let hl = String.length out and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub out i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions HOLDS" true (contains "certificate HOLDS");
  Alcotest.(check bool) "mentions the grant" true (contains "nic")

let suite =
  [
    Alcotest.test_case "holds for a light task set" `Quick
      test_holds_for_light_task;
    Alcotest.test_case "budget = eq.(14) + carry-in" `Quick
      test_budget_is_eq14_plus_carry_in;
    Alcotest.test_case "rejects an overloaded partition" `Quick
      test_fails_when_task_too_heavy;
    Alcotest.test_case "grant-induced failure detected" `Quick
      test_marginal_task_rejected_only_with_grant;
    Alcotest.test_case "degenerate slot" `Quick test_degenerate_slot;
    Alcotest.test_case "rendering" `Quick test_pp_renders;
  ]
