(* Shared helpers for the test suites. *)

module Cycles = Rthv_engine.Cycles

let cycles : Cycles.t Alcotest.testable =
  Alcotest.testable Cycles.pp Int.equal

let check_cycles = Alcotest.check cycles

(* Approximate float equality with an absolute tolerance. *)
let close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g (eps %g)" msg expected actual eps

(* Relative closeness for statistical checks. *)
let close_rel ~rel msg expected actual =
  let bound = Float.abs expected *. rel in
  if Float.abs (expected -. actual) > bound then
    Alcotest.failf "%s: expected %g +/- %.0f%%, got %g" msg expected
      (100. *. rel) actual

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let us = Cycles.of_us
