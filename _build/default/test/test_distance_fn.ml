module DF = Rthv_analysis.Distance_fn
module Cycles = Rthv_engine.Cycles

let us = Testutil.us

let test_d_min_basics () =
  let fn = DF.d_min (us 100) in
  Alcotest.(check int) "length" 1 (DF.length fn);
  Testutil.check_cycles "delta 0" 0 (DF.delta fn 0);
  Testutil.check_cycles "delta 1" 0 (DF.delta fn 1);
  Testutil.check_cycles "delta 2" (us 100) (DF.delta fn 2);
  Testutil.check_cycles "delta 5 extends linearly" (us 400) (DF.delta fn 5)

let test_normalisation () =
  let fn = DF.of_entries [| us 300; us 100; us 500 |] in
  let entries = DF.entries fn in
  Testutil.check_cycles "entry 0 kept" (us 300) entries.(0);
  Testutil.check_cycles "entry 1 raised to running max" (us 300) entries.(1);
  Testutil.check_cycles "entry 2 kept" (us 500) entries.(2)

let test_superadditive_extension () =
  (* l = 2: delta(2) = 10us, delta(3) = 50us. *)
  let fn = DF.of_entries [| us 10; us 50 |] in
  Testutil.check_cycles "delta 3 stored" (us 50) (DF.delta fn 3);
  (* delta(4): 3 gaps = 2 gaps (50us) + 1 gap (10us). *)
  Testutil.check_cycles "delta 4 composed" (us 60) (DF.delta fn 4);
  Testutil.check_cycles "delta 5 composed" (us 100) (DF.delta fn 5);
  Testutil.check_cycles "delta 7 composed" (us 150) (DF.delta fn 7)

let test_eta_plus_duality_periodic () =
  let fn = DF.d_min (us 100) in
  Alcotest.(check int) "eta(0) = 0" 0 (DF.eta_plus fn 0);
  Alcotest.(check int) "eta(1 cycle) = 1" 1 (DF.eta_plus fn 1);
  Alcotest.(check int) "eta(100us) = 1" 1 (DF.eta_plus fn (us 100));
  Alcotest.(check int) "eta(100us + 1) = 2" 2 (DF.eta_plus fn (us 100 + 1));
  Alcotest.(check int) "eta(250us) = 3" 3 (DF.eta_plus fn (us 250))

let test_eta_plus_degenerate () =
  let fn = DF.unbounded ~l:3 in
  Alcotest.(check int) "eta on empty window" 0 (DF.eta_plus fn 0);
  Alcotest.check_raises "degenerate eta rejected"
    (Failure "Distance_fn.eta_plus: degenerate function admits unbounded load")
    (fun () -> ignore (DF.eta_plus fn 1 : int))

let test_of_trace_learns_min_distances () =
  (* Events at 0, 100, 150, 400us: min consecutive gap 50, min 3-span 150,
     min 4-span 400. *)
  let ts = List.map us [ 0; 100; 150; 400 ] in
  let fn = DF.of_trace ~l:3 ts in
  let entries = DF.entries fn in
  Testutil.check_cycles "delta(2) learned" (us 50) entries.(0);
  Testutil.check_cycles "delta(3) learned" (us 150) entries.(1);
  Testutil.check_cycles "delta(4) learned" (us 400) entries.(2)

let test_of_trace_matches_conforms () =
  let ts = List.map us [ 0; 10; 30; 100; 101; 250 ] in
  let fn = DF.of_trace ~l:4 ts in
  Alcotest.(check bool) "trace conforms to its own learned function" true
    (DF.conforms fn ts)

let test_conforms_detects_violation () =
  let fn = DF.d_min (us 100) in
  Alcotest.(check bool) "ok spacing" true
    (DF.conforms fn (List.map us [ 0; 100; 200 ]));
  Alcotest.(check bool) "violation detected" false
    (DF.conforms fn (List.map us [ 0; 100; 150 ]))

let test_adjust_to_bound () =
  let learned = DF.of_entries [| us 10; us 200 |] in
  let bound = DF.of_entries [| us 50; us 100 |] in
  let adjusted = DF.adjust_to_bound ~learned ~bound in
  let entries = DF.entries adjusted in
  Testutil.check_cycles "raised to bound" (us 50) entries.(0);
  Testutil.check_cycles "kept when above bound" (us 200) entries.(1)

let test_scale_load () =
  let fn = DF.of_entries [| us 100; us 300 |] in
  let quarter = DF.scale_load fn ~factor:0.25 in
  let entries = DF.entries quarter in
  Testutil.check_cycles "quarter load quadruples distances" (us 400) entries.(0);
  Testutil.check_cycles "quarter load entry 1" (us 1200) entries.(1);
  let double = DF.scale_load fn ~factor:2.0 in
  Testutil.check_cycles "double load halves distances" (us 50)
    (DF.entries double).(0)

let test_long_term_rate () =
  let fn = DF.of_entries [| us 100; us 400 |] in
  (* l = 2 events per delta(3) = 400us. *)
  Testutil.close "rate" (2. /. float_of_int (us 400)) (DF.long_term_rate fn);
  Alcotest.(check bool) "degenerate rate infinite" true
    (DF.long_term_rate (DF.unbounded ~l:2) = infinity)

let test_validation_errors () =
  Alcotest.check_raises "empty entries"
    (Invalid_argument "Distance_fn.of_entries: empty array") (fun () ->
      ignore (DF.of_entries [||] : DF.t));
  Alcotest.check_raises "negative q"
    (Invalid_argument "Distance_fn.delta: negative q") (fun () ->
      ignore (DF.delta (DF.d_min 10) (-1) : Cycles.t));
  Alcotest.check_raises "bad scale factor"
    (Invalid_argument "Distance_fn.scale_load: factor <= 0") (fun () ->
      ignore (DF.scale_load (DF.d_min 10) ~factor:0. : DF.t))

(* Properties *)

let entries_gen =
  QCheck2.Gen.(list_size (1 -- 6) (0 -- 100_000))

let prop_delta_monotone entries =
  let fn = DF.of_entries (Array.of_list entries) in
  let ok = ref true in
  for q = 0 to 30 do
    if DF.delta fn q > DF.delta fn (q + 1) then ok := false
  done;
  !ok

let prop_duality entries =
  (* eta(delta(q)) < q and eta(delta(q)+1) >= q for q in support, when the
     function is non-degenerate. *)
  let fn = DF.of_entries (Array.of_list entries) in
  let last = (DF.entries fn).(DF.length fn - 1) in
  if last = 0 then true
  else begin
    let ok = ref true in
    for q = 2 to 15 do
      let d = DF.delta fn q in
      if DF.eta_plus fn d >= q && d > 0 then ok := false;
      if DF.eta_plus fn (d + 1) < q then ok := false
    done;
    !ok
  end

let prop_learned_is_lower_bound timestamps =
  let ts = List.sort_uniq compare (List.map abs timestamps) in
  if List.length ts < 2 then true
  else begin
    let fn = DF.of_trace ~l:4 ts in
    DF.conforms fn ts
  end

let suite =
  [
    Alcotest.test_case "d_min basics" `Quick test_d_min_basics;
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "superadditive extension" `Quick
      test_superadditive_extension;
    Alcotest.test_case "eta duality (d_min)" `Quick test_eta_plus_duality_periodic;
    Alcotest.test_case "eta on degenerate function" `Quick test_eta_plus_degenerate;
    Alcotest.test_case "Algorithm 1 on a known trace" `Quick
      test_of_trace_learns_min_distances;
    Alcotest.test_case "trace conforms to learned" `Quick
      test_of_trace_matches_conforms;
    Alcotest.test_case "conforms detects violations" `Quick
      test_conforms_detects_violation;
    Alcotest.test_case "Algorithm 2 bound adjustment" `Quick test_adjust_to_bound;
    Alcotest.test_case "load scaling" `Quick test_scale_load;
    Alcotest.test_case "long-term rate" `Quick test_long_term_rate;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Testutil.qtest "delta is monotone in q" entries_gen prop_delta_monotone;
    Testutil.qtest "eta/delta duality" entries_gen prop_duality;
    Testutil.qtest "learned function lower-bounds its trace"
      QCheck2.Gen.(list_size (2 -- 60) (0 -- 1_000_000))
      prop_learned_is_lower_bound;
  ]
