module S = Rthv_analysis.Sensitivity
module IL = Rthv_analysis.Irq_latency
module TI = Rthv_analysis.Tdma_interference
module Platform = Rthv_hw.Platform

let us = Testutil.us

let costs = IL.costs_of_platform Platform.arm926ejs_200mhz
let tdma = TI.make ~cycle:(us 14_000) ~slot:(us 6_000)
let query = S.make ~tdma ~costs ~c_th:(us 5) ()

let test_interposed_latency () =
  match S.interposed_latency query ~c_bh:(us 50) ~d_min:(us 1_544) with
  | Some r ->
      (* C'_BH + C'_TH for a single-activation busy period. *)
      Testutil.check_cycles "paper numbers" (us 155 + 877 + 128) r
  | None -> Alcotest.fail "expected convergence"

let test_interposed_overload () =
  Alcotest.(check bool) "overload reported" true
    (Option.is_none (S.interposed_latency query ~c_bh:(us 50) ~d_min:(us 100)))

let test_max_c_bh () =
  let budget = us 500 in
  let d_min = us 5_000 in
  match S.max_c_bh_for_latency query ~d_min ~budget with
  | None -> Alcotest.fail "a 1-cycle handler must fit a 500us budget"
  | Some c_bh ->
      let at latency_c_bh =
        Option.get (S.interposed_latency query ~c_bh:latency_c_bh ~d_min)
      in
      Alcotest.(check bool) "within budget" true (at c_bh <= budget);
      Alcotest.(check bool) "tight" true (at (c_bh + 1) > budget);
      (* Sanity: budget minus overheads ~ 345us of handler. *)
      Alcotest.(check bool) "plausible magnitude" true
        (c_bh > us 300 && c_bh < us 400)

let test_max_c_bh_impossible () =
  (* Budget below the fixed overheads: impossible even for a 1-cycle BH. *)
  Alcotest.(check (option int)) "impossible budget" None
    (S.max_c_bh_for_latency query ~d_min:(us 5_000) ~budget:(us 50))

let test_min_d_min () =
  let budget = us 200 in
  let c_bh = us 50 in
  match S.min_d_min_for_latency query ~c_bh ~budget with
  | None -> Alcotest.fail "large d_min must meet a 200us budget"
  | Some d_min ->
      let at d = S.interposed_latency query ~c_bh ~d_min:d in
      (match at d_min with
      | Some r -> Alcotest.(check bool) "within budget" true (r <= budget)
      | None -> Alcotest.fail "returned d_min diverges");
      if d_min > 1 then
        Alcotest.(check bool) "tight" true
          (match at (d_min - 1) with Some r -> r > budget | None -> true)

let test_baseline_cycle_equivalent () =
  let budget = us 160 in
  match
    S.baseline_cycle_for_latency query ~c_bh:(us 50) ~d_min:(us 1_544)
      ~slot_fraction:(6. /. 14.) ~budget
  with
  | None -> Alcotest.fail "some tiny cycle must work"
  | Some cycle ->
      (* The TDMA gap alone must fit the budget: (1 - 6/14)*cycle < 160us
         ⇒ cycle < 280us — a 50x shorter cycle than the paper's 14ms. *)
      Alcotest.(check bool) "cycle is tiny" true (cycle < us 300);
      Alcotest.(check bool) "switch rate explodes" true
        (S.switch_rate_per_second ~cycle ~partitions:3 > 10_000.)

let test_switch_rate () =
  Testutil.close ~eps:1. "14ms cycle, 3 partitions" 214.3
    (S.switch_rate_per_second ~cycle:(us 14_000) ~partitions:3)

let prop_max_c_bh_monotone_in_budget (d_min_us, b1, b2) =
  let d_min = us (500 + d_min_us) in
  let lo = us (100 + Stdlib.min b1 b2) and hi = us (100 + Stdlib.max b1 b2) in
  match
    ( S.max_c_bh_for_latency query ~d_min ~budget:lo,
      S.max_c_bh_for_latency query ~d_min ~budget:hi )
  with
  | Some a, Some b -> a <= b
  | None, _ -> true
  | Some _, None -> false

let suite =
  [
    Alcotest.test_case "interposed latency query" `Quick test_interposed_latency;
    Alcotest.test_case "interposed overload" `Quick test_interposed_overload;
    Alcotest.test_case "max C_BH for a budget" `Quick test_max_c_bh;
    Alcotest.test_case "impossible budget" `Quick test_max_c_bh_impossible;
    Alcotest.test_case "min d_min for a budget" `Quick test_min_d_min;
    Alcotest.test_case "baseline-TDMA equivalent" `Quick
      test_baseline_cycle_equivalent;
    Alcotest.test_case "switch rate" `Quick test_switch_rate;
    Testutil.qtest ~count:50 "max C_BH monotone in budget"
      QCheck2.Gen.(triple (0 -- 5_000) (0 -- 2_000) (0 -- 2_000))
      prop_max_c_bh_monotone_in_budget;
  ]
