(* Differential validation: for a single unmonitored IRQ probe in an
   otherwise idle system, the completion time has a closed form —

   - direct (arrival in the subscriber's slot, clear of boundaries):
       latency = C_TH + C_BH;
   - delayed (arrival in a foreign slot, clear of boundaries):
       completion = next subscriber slot start + C_ctx + C_BH.

   The predictor is computed here independently from TDMA geometry and must
   match the simulator cycle-for-cycle.  Phases within a guard band of
   C_ctx after a slot start or C_TH before a slot end are excluded: there
   the classification legitimately depends on hypervisor queueing. *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Tdma = Rthv_core.Tdma
module Cycles = Rthv_engine.Cycles

let us = Testutil.us
let c_ctx = us 50

type probe = {
  slots_us : int list;
  subscriber : int;
  c_th_us : int;
  c_bh_us : int;
  cycle_index : int;
  phase_frac : float;  (** Position within the cycle, [0, 1). *)
}

let probe_gen =
  QCheck2.Gen.(
    let* n = 2 -- 4 in
    let* slots_us = list_repeat n (500 -- 9_000) in
    let* subscriber = 0 -- (n - 1) in
    let* c_th_us = 1 -- 10 in
    let* c_bh_us = 10 -- 100 in
    let* cycle_index = 1 -- 5 in
    let* phase_frac = float_bound_exclusive 1.0 in
    return { slots_us; subscriber; c_th_us; c_bh_us; cycle_index; phase_frac })

let predict ~tdma ~probe ~arrival =
  let owner, slot_start, slot_end = Tdma.slot_bounds_at tdma arrival in
  (* Guard bands around hypervisor activity at slot edges. *)
  if arrival < slot_start + c_ctx then None
  else if arrival + us probe.c_th_us >= slot_end then None
  else if owner = probe.subscriber then
    Some (Irq_record.Direct, arrival + us probe.c_th_us + us probe.c_bh_us)
  else begin
    let next_start =
      Tdma.next_slot_start tdma ~partition:probe.subscriber ~after:arrival
    in
    Some (Irq_record.Delayed, next_start + c_ctx + us probe.c_bh_us)
  end

let run_probe probe ~arrival =
  let partitions =
    List.mapi
      (fun i slot_us ->
        Config.partition ~name:(Printf.sprintf "p%d" i) ~slot_us ())
      probe.slots_us
  in
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"probe" ~line:0 ~subscriber:probe.subscriber
            ~c_th_us:probe.c_th_us ~c_bh_us:probe.c_bh_us
            ~interarrivals:[| arrival |] ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  match Hyp_sim.records sim with
  | [ record ] -> record
  | records ->
      failwith (Printf.sprintf "probe produced %d records" (List.length records))

let prop_closed_form probe =
  let tdma = Tdma.of_us (Array.of_list probe.slots_us) in
  let cycle = Tdma.cycle_length tdma in
  let arrival =
    (cycle * probe.cycle_index)
    + int_of_float (probe.phase_frac *. float_of_int cycle)
  in
  match predict ~tdma ~probe ~arrival with
  | None -> true (* guard band: no prediction *)
  | Some (expected_class, expected_completion) ->
      let record = run_probe probe ~arrival in
      if record.Irq_record.classification <> expected_class then
        QCheck2.Test.fail_reportf "classification mismatch at %a: %s vs %s"
          Cycles.pp arrival
          (Irq_record.classification_name record.Irq_record.classification)
          (Irq_record.classification_name expected_class)
      else if record.Irq_record.completion <> expected_completion then
        QCheck2.Test.fail_reportf
          "completion mismatch at %a: simulated %a, closed form %a" Cycles.pp
          arrival Cycles.pp record.Irq_record.completion Cycles.pp
          expected_completion
      else true

(* A handful of pinned cases on the paper's schedule, for readable failures. *)
let paper_probe =
  {
    slots_us = [ 6_000; 6_000; 2_000 ];
    subscriber = 1;
    c_th_us = 5;
    c_bh_us = 50;
    cycle_index = 0;
    phase_frac = 0.;
  }

let pinned ~arrival_us ~expected_class ~expected_completion_us () =
  let record = run_probe paper_probe ~arrival:(us arrival_us) in
  Alcotest.(check string) "class" expected_class
    (Irq_record.classification_name record.Irq_record.classification);
  Testutil.check_cycles "completion" (us expected_completion_us)
    record.Irq_record.completion

let suite =
  [
    Alcotest.test_case "pinned: foreign mid-slot" `Quick
      (pinned ~arrival_us:3_000 ~expected_class:"delayed"
         ~expected_completion_us:6_100);
    Alcotest.test_case "pinned: own slot" `Quick
      (pinned ~arrival_us:8_000 ~expected_class:"direct"
         ~expected_completion_us:8_055);
    Alcotest.test_case "pinned: housekeeping slot" `Quick
      (pinned ~arrival_us:12_500 ~expected_class:"delayed"
         ~expected_completion_us:20_100);
    Alcotest.test_case "pinned: wraps to next cycle" `Quick
      (pinned ~arrival_us:16_000 ~expected_class:"delayed"
         ~expected_completion_us:20_100);
    Testutil.qtest ~count:120 "simulator matches the closed form exactly"
      probe_gen prop_closed_form;
  ]
