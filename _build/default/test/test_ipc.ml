module Ipc = Rthv_rtos.Ipc
module Task = Rthv_rtos.Task
module Guest = Rthv_rtos.Guest
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim

let us = Testutil.us

let test_declare_and_find () =
  let registry = Ipc.create () in
  let port = Ipc.declare registry ~name:"nav_data" ~capacity:4 in
  Alcotest.(check string) "name" "nav_data" (Ipc.port_name port);
  Alcotest.(check bool) "find returns the same port" true
    (Ipc.find registry "nav_data" == port);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Ipc.declare: duplicate port \"nav_data\"") (fun () ->
      ignore (Ipc.declare registry ~name:"nav_data" ~capacity:1 : Ipc.port));
  Alcotest.check_raises "capacity checked"
    (Invalid_argument "Ipc.declare: capacity must be positive") (fun () ->
      ignore (Ipc.declare registry ~name:"x" ~capacity:0 : Ipc.port))

let test_send_receive_latency () =
  let registry = Ipc.create () in
  let port = Ipc.declare registry ~name:"p" ~capacity:8 in
  Alcotest.(check bool) "send ok" true (Ipc.send port ~now:(us 100) ~sender:"a");
  Alcotest.(check bool) "send ok" true (Ipc.send port ~now:(us 250) ~sender:"a");
  Alcotest.(check int) "depth" 2 (Ipc.depth port);
  let received = Ipc.receive_all port ~now:(us 1_000) in
  Alcotest.(check int) "all drained" 2 (List.length received);
  Alcotest.(check int) "empty after drain" 0 (Ipc.depth port);
  (match received with
  | [ first; second ] ->
      Alcotest.(check int) "fifo sequence" 0 first.Ipc.sequence;
      Alcotest.(check int) "fifo sequence" 1 second.Ipc.sequence
  | _ -> Alcotest.fail "two messages expected");
  Alcotest.(check (list (float 0.01))) "end-to-end latencies"
    [ 900.; 750. ]
    (Ipc.latencies_us port)

let test_overflow_drops () =
  let registry = Ipc.create () in
  let port = Ipc.declare registry ~name:"p" ~capacity:2 in
  Alcotest.(check bool) "1" true (Ipc.send port ~now:0 ~sender:"s");
  Alcotest.(check bool) "2" true (Ipc.send port ~now:0 ~sender:"s");
  Alcotest.(check bool) "3 dropped" false (Ipc.send port ~now:0 ~sender:"s");
  Alcotest.(check int) "drop counted" 1 (Ipc.dropped_count port);
  Alcotest.(check int) "accepted counted" 2 (Ipc.sent_count port)

let test_guest_requires_registry () =
  let task = Task.spec ~name:"t" ~period_us:100 ~wcet_us:10 ~produces:"p" () in
  match Guest.create ~tasks:[ task ] ~name:"g" () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_config_validates_ports () =
  let task = Task.spec ~name:"t" ~period_us:100 ~wcet_us:10 ~produces:"nope" () in
  let config =
    Config.make
      ~partitions:[ Config.partition ~name:"P" ~slot_us:100 ~tasks:[ task ] () ]
      ~sources:[] ()
  in
  (match Config.validate config with
  | Error msg ->
      Alcotest.(check string) "undeclared port reported"
        "undeclared port \"nope\"" msg
  | Ok () -> Alcotest.fail "expected validation error");
  let dup =
    Config.make ~ports:[ ("a", 1); ("a", 2) ]
      ~partitions:[ Config.partition ~name:"P" ~slot_us:100 () ]
      ~sources:[] ()
  in
  match Config.validate dup with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate port accepted"

(* End-to-end: a 10ms producer in partition 0 and a 10ms consumer in
   partition 1 under the paper's TDMA.  Message latency is dominated by the
   phase between the producer's completion and the consumer's next
   completion — bounded by consumer period + TDMA effects. *)
let test_cross_partition_pipeline () =
  let producer =
    Task.spec ~name:"sensor" ~period_us:10_000 ~wcet_us:300 ~produces:"meas" ()
  in
  let consumer =
    Task.spec ~name:"fusion" ~period_us:10_000 ~wcet_us:500 ~consumes:"meas" ()
  in
  let config =
    Config.make
      ~ports:[ ("meas", 16) ]
      ~partitions:
        [
          Config.partition ~name:"P1" ~slot_us:6_000 ~tasks:[ producer ] ();
          Config.partition ~name:"P2" ~slot_us:6_000 ~tasks:[ consumer ] ();
          Config.partition ~name:"HK" ~slot_us:2_000 ();
        ]
      ~sources:
        [
          (* A single far-future-free IRQ source to drive the sim clock long
             enough for ~50 task periods. *)
          Config.source ~name:"tick" ~line:0 ~subscriber:2 ~c_th_us:5
            ~c_bh_us:10
            ~interarrivals:(Array.make 50 (Testutil.us 10_000))
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  let port = Hyp_sim.port sim "meas" in
  Alcotest.(check bool) "messages flowed" true (Ipc.received_count port > 30);
  Alcotest.(check int) "nothing dropped" 0 (Ipc.dropped_count port);
  let latencies = Ipc.latencies_us port in
  List.iter
    (fun l ->
      if l < 0. then Alcotest.fail "negative latency";
      (* One consumer period plus a full TDMA cycle bounds the pipeline. *)
      if l > 24_000. then Alcotest.failf "pipeline latency %.0fus too large" l)
    latencies;
  (* The consumer eventually receives everything the producer sent (minus
     what is still in flight at the end). *)
  Alcotest.(check bool) "conservation" true
    (Ipc.sent_count port - Ipc.received_count port <= 2)

let suite =
  [
    Alcotest.test_case "declare and find" `Quick test_declare_and_find;
    Alcotest.test_case "send/receive latency" `Quick test_send_receive_latency;
    Alcotest.test_case "overflow drops" `Quick test_overflow_drops;
    Alcotest.test_case "guest requires a registry" `Quick
      test_guest_requires_registry;
    Alcotest.test_case "config validates ports" `Quick test_config_validates_ports;
    Alcotest.test_case "cross-partition pipeline" `Quick
      test_cross_partition_pipeline;
  ]
