module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Tdma = Rthv_core.Tdma
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Guest = Rthv_rtos.Guest
module Task = Rthv_rtos.Task
module Platform = Rthv_hw.Platform
module Gen = Rthv_workload.Gen

let us = Testutil.us

(* Two application partitions of 6000us plus 2000us housekeeping — the
   paper's setup, subscriber = partition 1. *)
let partitions =
  [
    Config.partition ~name:"P1" ~slot_us:6000 ();
    Config.partition ~name:"P2" ~slot_us:6000 ();
    Config.partition ~name:"HK" ~slot_us:2000 ();
  ]

let config ?(partitions = partitions) ?(subscriber = 1) ?shaping
    ?finish_bh_at_boundary ?platform interarrivals =
  let shaping = Option.value shaping ~default:Config.No_shaping in
  Config.make ?platform ?finish_bh_at_boundary ~partitions
    ~sources:
      [
        Config.source ~name:"irq0" ~line:0 ~subscriber ~c_th_us:5 ~c_bh_us:50
          ~interarrivals ~shaping ();
      ]
    ()

let run ?horizon config =
  let sim = Hyp_sim.create config in
  Hyp_sim.run ?horizon sim;
  sim

let classifications records =
  List.map (fun r -> r.Irq_record.classification) records

let test_direct_in_own_slot () =
  (* Subscriber is partition 0; one IRQ at t = 1000us, inside slot 0. *)
  let sim = run (config ~subscriber:0 [| us 1000 |]) in
  match Hyp_sim.records sim with
  | [ r ] ->
      Alcotest.(check string) "direct" "direct"
        (Irq_record.classification_name r.Irq_record.classification);
      (* Latency: C_TH (top handler) + C_BH (bottom handler runs at once). *)
      Testutil.check_cycles "latency = C_TH + C_BH" (us 55)
        (Irq_record.latency r)
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

let test_delayed_waits_for_slot () =
  (* Subscriber partition 1; IRQ at t = 1000us (slot 0 active), unmonitored:
     bottom handler starts when slot 1 opens at 6000us, after the slot
     context switch (50us). *)
  let sim = run (config ~subscriber:1 [| us 1000 |]) in
  match Hyp_sim.records sim with
  | [ r ] ->
      Alcotest.(check string) "delayed" "delayed"
        (Irq_record.classification_name r.Irq_record.classification);
      Testutil.check_cycles "completion at slot start + ctx + C_BH"
        (us 6100) r.Irq_record.completion;
      Testutil.check_cycles "latency" (us 5100) (Irq_record.latency r)
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

let test_interposed_immediate () =
  (* Monitored: same foreign IRQ is handled immediately in the foreign slot.
     Latency = C_TH + C_Mon + C_sched + C_ctx + C_BH
             = 1000 + 128 + 877 + 10000 + 10000 cycles = 110.025us. *)
  let sim =
    run
      (config ~subscriber:1
         ~shaping:(Config.Fixed_monitor (DF.d_min (us 100)))
         [| us 1000 |])
  in
  match Hyp_sim.records sim with
  | [ r ] ->
      Alcotest.(check string) "interposed" "interposed"
        (Irq_record.classification_name r.Irq_record.classification);
      Testutil.check_cycles "latency breakdown" (22005) (Irq_record.latency r);
      let stats = Hyp_sim.stats sim in
      Alcotest.(check int) "two interposition switches" 2
        stats.Hyp_sim.interposition_switches;
      Alcotest.(check int) "one admission" 1 stats.Hyp_sim.admissions
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

let test_monitor_violation_delays () =
  (* Two foreign IRQs 100us apart under a 1000us d_min: the second is
     delayed. *)
  let sim =
    run
      (config ~subscriber:1
         ~shaping:(Config.Fixed_monitor (DF.d_min (us 1000)))
         [| us 1000; us 100 |])
  in
  match classifications (Hyp_sim.records sim) with
  | [ Irq_record.Interposed; Irq_record.Delayed ] -> ()
  | _ -> Alcotest.fail "expected interposed then delayed"

let test_fifo_completion_order () =
  let interarrivals = Gen.exponential ~seed:5 ~mean:(us 300) ~count:200 in
  let sim = run (config ~subscriber:1 interarrivals) in
  let records = Hyp_sim.records sim in
  Alcotest.(check int) "all completed" 200 (List.length records);
  let completions = List.map (fun r -> r.Irq_record.completion) records in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "FIFO: completion order = arrival order" true
    (sorted completions)

let test_determinism () =
  let interarrivals = Gen.exponential ~seed:11 ~mean:(us 1500) ~count:300 in
  let shaping = Config.Fixed_monitor (DF.d_min (us 1500)) in
  let run_once () =
    let sim = run (config ~subscriber:1 ~shaping interarrivals) in
    List.map
      (fun r -> (r.Irq_record.irq, r.Irq_record.completion, r.Irq_record.classification))
      (Hyp_sim.records sim)
  in
  Alcotest.(check bool) "identical runs" true (run_once () = run_once ())

let test_unmonitored_never_interposes () =
  let interarrivals = Gen.exponential ~seed:3 ~mean:(us 2000) ~count:300 in
  let sim = run (config ~subscriber:1 interarrivals) in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "no interpositions" 0 stats.Hyp_sim.interposed;
  Alcotest.(check int) "no monitor checks" 0 stats.Hyp_sim.monitor_checks;
  Alcotest.(check int) "no interposition switches" 0
    stats.Hyp_sim.interposition_switches

let test_conforming_never_delays () =
  let d_min = us 2000 in
  let interarrivals =
    Gen.exponential_clamped ~seed:7 ~mean:d_min ~d_min ~count:500
  in
  let sim =
    run (config ~subscriber:1 ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
           interarrivals)
  in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "nothing delayed" 0 stats.Hyp_sim.delayed;
  Alcotest.(check int) "everything completed" 500 stats.Hyp_sim.completed_irqs

let test_strict_tdma_cuts_bottom_handlers () =
  (* An IRQ arriving 20us before its own slot's end: with the default
     deferral the handler finishes with a bounded overrun; under strict TDMA
     it is cut and resumes one cycle later. *)
  let arrival = [| us 5975 |] in
  (* subscriber 0, slot 0 ends at 6000us *)
  let lenient = run (config ~subscriber:0 arrival) in
  let strict =
    run (config ~subscriber:0 ~finish_bh_at_boundary:false arrival)
  in
  let latency sim =
    match Hyp_sim.records sim with
    | [ r ] -> Irq_record.latency r
    | _ -> Alcotest.fail "one record expected"
  in
  Alcotest.(check bool) "deferral keeps latency bounded" true
    (latency lenient < us 200);
  Alcotest.(check bool) "strict TDMA pays the cycle" true
    (latency strict > us 8000);
  Alcotest.(check bool) "deferral counted" true
    ((Hyp_sim.stats lenient).Hyp_sim.bh_boundary_deferrals >= 1)

let test_interference_within_bound () =
  (* Equation (14) check on measured stolen time per slot. *)
  let d_min = us 1000 in
  let interarrivals =
    Gen.exponential_clamped ~seed:13 ~mean:d_min ~d_min ~count:1000
  in
  let sim =
    run
      (config ~subscriber:1 ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
         interarrivals)
  in
  let stats = Hyp_sim.stats sim in
  let c_bh_eff = us 50 + 877 + (2 * us 50) in
  Array.iteri
    (fun i slot_us ->
      let bound =
        Independence.max_slot_loss ~monitor:(DF.d_min d_min) ~c_bh_eff
          ~slot:(us slot_us)
      in
      if stats.Hyp_sim.stolen_slot_max.(i) > bound then
        Alcotest.failf "partition %d: stolen %d exceeds bound %d" i
          stats.Hyp_sim.stolen_slot_max.(i) bound)
    [| 6000; 6000; 2000 |]

let test_time_conservation_ideal_platform () =
  (* On the ideal platform (free hypervisor operations) every simulated cycle
     is either guest time or top-handler time. *)
  let interarrivals = Gen.exponential ~seed:17 ~mean:(us 700) ~count:100 in
  let sim = run (config ~platform:Platform.ideal ~subscriber:1 interarrivals) in
  let stats = Hyp_sim.stats sim in
  let guest_time = ref 0 in
  for i = 0 to 2 do
    let g = Hyp_sim.guest sim i in
    guest_time := !guest_time + Guest.cpu_time g + Guest.idle_time g
  done;
  let top_handler_time = 100 * us 5 in
  Testutil.check_cycles "cycles are conserved" stats.Hyp_sim.sim_time
    (!guest_time + top_handler_time)

let test_multi_source_systems () =
  let mk_source ~name ~line ~subscriber ~mean ~seed ~shaping =
    Config.source ~name ~line ~subscriber ~c_th_us:5 ~c_bh_us:30
      ~interarrivals:(Gen.exponential ~seed ~mean ~count:150)
      ~shaping ()
  in
  let cfg =
    Config.make ~partitions
      ~sources:
        [
          mk_source ~name:"can" ~line:0 ~subscriber:0 ~mean:(us 900) ~seed:1
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 900)));
          mk_source ~name:"eth" ~line:1 ~subscriber:1 ~mean:(us 1100) ~seed:2
            ~shaping:Config.No_shaping;
        ]
      ()
  in
  let sim = run cfg in
  let records = Hyp_sim.records sim in
  Alcotest.(check int) "all IRQs of both sources complete" 300
    (List.length records);
  let of_source name =
    List.filter (fun r -> r.Irq_record.source = name) records
  in
  Alcotest.(check int) "can count" 150 (List.length (of_source "can"));
  Alcotest.(check int) "eth count" 150 (List.length (of_source "eth"));
  (* The unmonitored source never interposes. *)
  Alcotest.(check bool) "eth only direct/delayed" true
    (List.for_all
       (fun r -> r.Irq_record.classification <> Irq_record.Interposed)
       (of_source "eth"))

let test_guest_tasks_survive_interposition () =
  (* Partition 0 runs a periodic task while partition 1's monitored source
     interposes aggressively.  The task keeps completing with bounded
     response times (sufficient temporal independence). *)
  let task = Task.spec ~name:"ctl" ~period_us:28_000 ~wcet_us:500 () in
  let partitions =
    [
      Config.partition ~name:"P1" ~slot_us:6000 ~tasks:[ task ] ();
      Config.partition ~name:"P2" ~slot_us:6000 ();
      Config.partition ~name:"HK" ~slot_us:2000 ();
    ]
  in
  let d_min = us 1000 in
  let interarrivals =
    Gen.exponential_clamped ~seed:19 ~mean:d_min ~d_min ~count:2000
  in
  let sim =
    run
      (config ~partitions ~subscriber:1
         ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
         interarrivals)
  in
  let g = Hyp_sim.guest sim 0 in
  let completions = Guest.take_completions g in
  Alcotest.(check bool) "task ran repeatedly" true
    (List.length completions > 50);
  List.iter
    (fun c ->
      let r = Task.response_time c in
      if r > us 28_000 then
        Alcotest.failf "task response %a exceeded its period"
          Rthv_engine.Cycles.pp r)
    completions;
  Alcotest.(check int) "no backlog" 0 (Guest.backlog g)

let test_records_are_complete_and_ordered () =
  let interarrivals = Gen.uniform ~seed:23 ~lo:(us 100) ~hi:(us 3000) ~count:250 in
  let sim = run (config ~subscriber:1 interarrivals) in
  let records = Hyp_sim.records sim in
  let ids = List.map (fun r -> r.Irq_record.irq) records in
  Alcotest.(check (list int)) "ids are 0..n-1 in order"
    (List.init 250 (fun i -> i))
    ids;
  List.iter
    (fun r ->
      if r.Irq_record.top_start < r.Irq_record.arrival then
        Alcotest.fail "top handler before arrival";
      if r.Irq_record.top_end < r.Irq_record.top_start then
        Alcotest.fail "top handler ends before it starts";
      if r.Irq_record.completion < r.Irq_record.top_end then
        Alcotest.fail "completion before top handler")
    records

let test_monitor_accessor () =
  let sim =
    Hyp_sim.create
      (config ~subscriber:1 ~shaping:(Config.Fixed_monitor (DF.d_min 100))
         [| 100 |])
  in
  Alcotest.(check bool) "monitored source found" true
    (Option.is_some (Hyp_sim.monitor sim ~source:"irq0"));
  Alcotest.(check bool) "unknown source" true
    (Option.is_none (Hyp_sim.monitor sim ~source:"nope"))

let test_create_validates () =
  let bad =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:9 ~c_th_us:5 ~c_bh_us:5
            ~interarrivals:[||] ();
        ]
      ()
  in
  Alcotest.check_raises "invalid config rejected"
    (Invalid_argument "Hyp_sim.create: source s: bad subscriber") (fun () ->
      ignore (Hyp_sim.create bad : Hyp_sim.t))

let test_absolute_arrivals_coalesce () =
  (* Trace replay: two raises 10us apart while the top handler of a third
     busy line blocks hypervisor work long enough that the second raise hits
     a still-pending flag and coalesces (non-counting IRQ flags). *)
  let cfg =
    Config.make ~partitions
      ~sources:
        [
          (* A slow top handler occupying the hypervisor at t=1000us. *)
          Config.source ~name:"slow" ~line:1 ~subscriber:0 ~c_th_us:100
            ~c_bh_us:10 ~interarrivals:[| us 1000 |] ();
          (* Two raises at 1005us and 1010us: the first is delivered but its
             top handler queues behind "slow"; the second raise coalesces. *)
          Config.source ~name:"fast" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:10
            ~interarrivals:[| us 1005; us 5 |]
            ~arrival_mode:Config.Absolute ();
        ]
      ()
  in
  let sim = run cfg in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "one raise coalesced" 1 stats.Hyp_sim.coalesced_irqs;
  Alcotest.(check int) "only two IRQs completed" 2 stats.Hyp_sim.completed_irqs

let test_absolute_arrivals_complete () =
  let distances = Gen.uniform ~seed:31 ~lo:(us 500) ~hi:(us 4_000) ~count:100 in
  let cfg =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"trace" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50 ~interarrivals:distances
            ~arrival_mode:Config.Absolute ();
        ]
      ()
  in
  let sim = run cfg in
  Alcotest.(check int) "all trace events complete" 100
    (Hyp_sim.stats sim).Hyp_sim.completed_irqs

let test_two_monitored_sources_share_interposition () =
  (* Both sources monitored; simultaneous admission is impossible, so each
     partition still sees bounded interference from the union. *)
  let d_min = us 1_500 in
  let mk name line subscriber seed =
    Config.source ~name ~line ~subscriber ~c_th_us:5 ~c_bh_us:40
      ~interarrivals:
        (Gen.exponential_clamped ~seed ~mean:d_min ~d_min ~count:400)
      ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
      ()
  in
  let cfg =
    Config.make ~partitions
      ~sources:[ mk "a" 0 0 101; mk "b" 1 1 202 ]
      ()
  in
  let sim = run cfg in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "all complete" 800 stats.Hyp_sim.completed_irqs;
  Alcotest.(check bool) "both sources interpose" true
    (stats.Hyp_sim.interposed > 100);
  (* Union interference bound: sum of the two curves plus one carry-in. *)
  let c_bh_eff = us 40 + 877 + (2 * us 50) in
  let curve =
    Independence.sum
      [
        Independence.d_min_bound ~d_min ~c_bh_eff;
        Independence.d_min_bound ~d_min ~c_bh_eff;
      ]
  in
  Array.iteri
    (fun i slot_us ->
      let bound = curve (us slot_us) + c_bh_eff in
      if stats.Hyp_sim.stolen_slot_max.(i) > bound then
        Alcotest.failf "partition %d interference exceeds the union bound" i)
    [| 6000; 6000; 2000 |]

let test_single_partition_all_direct () =
  let cfg =
    Config.make
      ~partitions:[ Config.partition ~name:"only" ~slot_us:10_000 () ]
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:20
            ~interarrivals:(Gen.exponential ~seed:3 ~mean:(us 400) ~count:200)
            ();
        ]
      ()
  in
  let sim = run cfg in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "everything direct" 200 stats.Hyp_sim.direct;
  Alcotest.(check int) "nothing delayed" 0 stats.Hyp_sim.delayed

let test_zero_distance_arrival () =
  (* A zero interarrival entry: the next IRQ fires the instant the previous
     top handler completes; both must still be processed in order. *)
  let cfg =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:10
            ~interarrivals:[| us 100; 0; 0 |]
            ();
        ]
      ()
  in
  let sim = run cfg in
  let records = Hyp_sim.records sim in
  Alcotest.(check int) "all three complete" 3 (List.length records);
  let ids = List.map (fun r -> r.Irq_record.irq) records in
  Alcotest.(check (list int)) "in order" [ 0; 1; 2 ] ids

let test_housekeeping_subscriber () =
  (* The housekeeping partition can subscribe IRQs too; its short slot makes
     delayed latencies longer (up to cycle - 2000us = 12000us). *)
  let sim =
    run (config ~subscriber:2 [| us 2_500 |])
    (* arrival inside P1's slot *)
  in
  match Hyp_sim.records sim with
  | [ r ] ->
      Alcotest.(check string) "delayed" "delayed"
        (Irq_record.classification_name r.Irq_record.classification);
      (* HK slot opens at 12000us; + ctx 50us + C_BH 50us. *)
      Testutil.check_cycles "completion in the HK slot" (us 12_100)
        r.Irq_record.completion
  | records -> Alcotest.failf "expected one record, got %d" (List.length records)

let test_horizon_stops () =
  (* A far-future arrival with a tiny horizon: the run must stop early. *)
  let sim = Hyp_sim.create (config ~subscriber:0 [| us 1_000_000 |]) in
  Hyp_sim.run ~horizon:(us 10_000) sim;
  Alcotest.(check int) "nothing completed before the horizon" 0
    (Hyp_sim.stats sim).Hyp_sim.completed_irqs

let suite =
  [
    Alcotest.test_case "direct handling" `Quick test_direct_in_own_slot;
    Alcotest.test_case "delayed handling" `Quick test_delayed_waits_for_slot;
    Alcotest.test_case "interposed handling" `Quick test_interposed_immediate;
    Alcotest.test_case "monitor violations delay" `Quick
      test_monitor_violation_delays;
    Alcotest.test_case "FIFO completion order" `Quick test_fifo_completion_order;
    Alcotest.test_case "determinism under fixed seed" `Quick test_determinism;
    Alcotest.test_case "unmonitored never interposes" `Quick
      test_unmonitored_never_interposes;
    Alcotest.test_case "conforming arrivals never delayed" `Quick
      test_conforming_never_delays;
    Alcotest.test_case "strict vs deferred slot boundaries" `Quick
      test_strict_tdma_cuts_bottom_handlers;
    Alcotest.test_case "equation (14) holds for measured interference" `Quick
      test_interference_within_bound;
    Alcotest.test_case "cycle conservation (ideal platform)" `Quick
      test_time_conservation_ideal_platform;
    Alcotest.test_case "multiple sources" `Quick test_multi_source_systems;
    Alcotest.test_case "guest tasks under interposition" `Quick
      test_guest_tasks_survive_interposition;
    Alcotest.test_case "record completeness" `Quick
      test_records_are_complete_and_ordered;
    Alcotest.test_case "monitor accessor" `Quick test_monitor_accessor;
    Alcotest.test_case "config validation on create" `Quick test_create_validates;
    Alcotest.test_case "absolute arrivals coalesce" `Quick
      test_absolute_arrivals_coalesce;
    Alcotest.test_case "absolute arrivals complete" `Quick
      test_absolute_arrivals_complete;
    Alcotest.test_case "two monitored sources" `Quick
      test_two_monitored_sources_share_interposition;
    Alcotest.test_case "single-partition schedule" `Quick
      test_single_partition_all_direct;
    Alcotest.test_case "zero-distance arrivals" `Quick test_zero_distance_arrival;
    Alcotest.test_case "housekeeping subscriber" `Quick
      test_housekeeping_subscriber;
    Alcotest.test_case "horizon stop" `Quick test_horizon_stops;
  ]

let test_no_sources_quiescent () =
  let cfg = Config.make ~partitions ~sources:[] () in
  let sim = run cfg in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "nothing completed" 0 stats.Hyp_sim.completed_irqs;
  Testutil.check_cycles "clock never advanced" 0 stats.Hyp_sim.sim_time

let test_run_idempotent () =
  let sim = run (config ~subscriber:0 [| us 1000 |]) in
  let before = (Hyp_sim.stats sim).Hyp_sim.sim_time in
  Hyp_sim.run sim;
  Alcotest.(check int) "second run is a no-op"
    before (Hyp_sim.stats sim).Hyp_sim.sim_time;
  Alcotest.(check int) "records stable" 1 (List.length (Hyp_sim.records sim))

let test_empty_interarrivals_source () =
  let sim = run (config ~subscriber:0 [||]) in
  Alcotest.(check int) "no IRQs generated" 0
    (Hyp_sim.stats sim).Hyp_sim.completed_irqs

let suite =
  suite
  @ [
      Alcotest.test_case "no sources" `Quick test_no_sources_quiescent;
      Alcotest.test_case "run is idempotent" `Quick test_run_idempotent;
      Alcotest.test_case "empty interarrival array" `Quick
        test_empty_interarrivals_source;
    ]
