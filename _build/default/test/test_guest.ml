module Guest = Rthv_rtos.Guest
module Task = Rthv_rtos.Task
module Irq_queue = Rthv_rtos.Irq_queue

let us = Testutil.us

let test_busy_loop_demand () =
  let g = Guest.create ~name:"p" () in
  (match Guest.demand g with
  | Guest.Filler -> ()
  | _ -> Alcotest.fail "busy loop expected");
  let idle = Guest.create ~busy_loop:false ~name:"p" () in
  match Guest.demand idle with
  | Guest.Idle -> ()
  | _ -> Alcotest.fail "idle expected"

let test_bottom_handler_first () =
  let spec = Task.spec ~name:"t" ~period_us:100 ~wcet_us:10 () in
  let g = Guest.create ~tasks:[ spec ] ~name:"p" () in
  Guest.advance_to g 0;
  let item = Irq_queue.make_item ~irq:1 ~line:0 ~arrival:0 ~work:(us 5) in
  Irq_queue.push (Guest.queue g) item;
  match Guest.demand g with
  | Guest.Bottom_handler i ->
      Alcotest.(check int) "the pushed event" 1 i.Irq_queue.irq
  | _ -> Alcotest.fail "bottom handler must run before tasks"

let test_task_release_and_completion () =
  let spec = Task.spec ~name:"t" ~period_us:100 ~wcet_us:10 () in
  let g = Guest.create ~tasks:[ spec ] ~name:"p" () in
  Guest.advance_to g 0;
  (match Guest.demand g with
  | Guest.Task_job job ->
      Alcotest.(check int) "first job" 0 job.Task.index;
      Guest.consume g ~now:(us 10) ~elapsed:(us 10) (Guest.Task_job job)
  | _ -> Alcotest.fail "job expected at t=0");
  let completions = Guest.take_completions g in
  (match completions with
  | [ c ] ->
      Alcotest.(check string) "task name" "t" c.Task.job_task;
      Testutil.check_cycles "response time" (us 10) (Task.response_time c)
  | _ -> Alcotest.fail "one completion expected");
  Alcotest.(check (list string)) "completions drained" []
    (List.map (fun c -> c.Task.job_task) (Guest.take_completions g))

let test_priority_order () =
  let low = Task.spec ~name:"low" ~period_us:100 ~wcet_us:10 ~priority:5 () in
  let high = Task.spec ~name:"high" ~period_us:100 ~wcet_us:10 ~priority:1 () in
  let g = Guest.create ~tasks:[ low; high ] ~name:"p" () in
  Guest.advance_to g 0;
  match Guest.demand g with
  | Guest.Task_job job ->
      Alcotest.(check string) "higher priority first" "high"
        job.Task.task.Task.name
  | _ -> Alcotest.fail "job expected"

let test_next_release () =
  let spec =
    Task.spec ~name:"t" ~period_us:100 ~wcet_us:10 ~offset_us:50 ()
  in
  let g = Guest.create ~tasks:[ spec ] ~name:"p" () in
  Alcotest.(check (option int)) "first release at offset" (Some (us 50))
    (Guest.next_release g);
  Guest.advance_to g (us 50);
  Alcotest.(check (option int)) "next release one period later"
    (Some (us 150)) (Guest.next_release g);
  Alcotest.(check int) "one job pending" 1 (Guest.backlog g);
  let no_tasks = Guest.create ~name:"q" () in
  Alcotest.(check (option int)) "no tasks, no releases" None
    (Guest.next_release no_tasks)

let test_time_accounting () =
  let g = Guest.create ~busy_loop:false ~name:"p" () in
  Guest.consume g ~now:(us 10) ~elapsed:(us 10) Guest.Idle;
  Guest.consume g ~now:(us 20) ~elapsed:(us 10) Guest.Filler;
  Testutil.check_cycles "idle tracked" (us 10) (Guest.idle_time g);
  Testutil.check_cycles "filler counts as cpu" (us 10) (Guest.cpu_time g)

let test_bottom_handler_partial_then_complete () =
  let g = Guest.create ~name:"p" () in
  let item = Irq_queue.make_item ~irq:3 ~line:0 ~arrival:0 ~work:(us 10) in
  Irq_queue.push (Guest.queue g) item;
  Guest.consume g ~now:(us 4) ~elapsed:(us 4) (Guest.Bottom_handler item);
  Testutil.check_cycles "partial remaining" (us 6) item.Irq_queue.remaining;
  Alcotest.(check int) "still queued" 1 (Irq_queue.length (Guest.queue g));
  Guest.consume g ~now:(us 10) ~elapsed:(us 6) (Guest.Bottom_handler item);
  Alcotest.(check int) "dequeued on completion" 0
    (Irq_queue.length (Guest.queue g));
  match Guest.completed_bottom g with
  | [ done_item ] -> Alcotest.(check int) "archived" 3 done_item.Irq_queue.irq
  | _ -> Alcotest.fail "one archived completion expected"

let test_over_attribution_rejected () =
  let g = Guest.create ~name:"p" () in
  let item = Irq_queue.make_item ~irq:1 ~line:0 ~arrival:0 ~work:(us 5) in
  Irq_queue.push (Guest.queue g) item;
  Alcotest.check_raises "over-attribution"
    (Invalid_argument "Guest.consume: over-attribution to bottom handler")
    (fun () ->
      Guest.consume g ~now:(us 10) ~elapsed:(us 10) (Guest.Bottom_handler item))

let test_advance_monotonicity () =
  let g = Guest.create ~name:"p" () in
  Guest.advance_to g (us 100);
  Alcotest.check_raises "time cannot rewind"
    (Invalid_argument "Guest.advance_to: time must be non-decreasing")
    (fun () -> Guest.advance_to g (us 50))

let test_task_spec_validation () =
  Alcotest.check_raises "period positive"
    (Invalid_argument "Task.spec: period must be positive") (fun () ->
      ignore (Task.spec ~name:"x" ~period_us:0 ~wcet_us:1 () : Task.spec));
  Testutil.close "utilisation" 0.3
    (Task.utilisation
       [
         Task.spec ~name:"a" ~period_us:100 ~wcet_us:10 ();
         Task.spec ~name:"b" ~period_us:50 ~wcet_us:10 ();
       ])

let suite =
  [
    Alcotest.test_case "busy loop vs idle" `Quick test_busy_loop_demand;
    Alcotest.test_case "bottom handlers preempt tasks" `Quick
      test_bottom_handler_first;
    Alcotest.test_case "release and completion" `Quick
      test_task_release_and_completion;
    Alcotest.test_case "fixed-priority pick" `Quick test_priority_order;
    Alcotest.test_case "next release" `Quick test_next_release;
    Alcotest.test_case "time accounting" `Quick test_time_accounting;
    Alcotest.test_case "partial bottom handler" `Quick
      test_bottom_handler_partial_then_complete;
    Alcotest.test_case "over-attribution rejected" `Quick
      test_over_attribution_rejected;
    Alcotest.test_case "monotone time" `Quick test_advance_monotonicity;
    Alcotest.test_case "task spec validation" `Quick test_task_spec_validation;
  ]
