module Irq_queue = Rthv_rtos.Irq_queue

let item ~irq ~work = Irq_queue.make_item ~irq ~line:0 ~arrival:0 ~work

let test_fifo_order () =
  let q = Irq_queue.create () in
  List.iter (fun i -> Irq_queue.push q (item ~irq:i ~work:10)) [ 1; 2; 3 ];
  let order = List.map (fun i -> i.Irq_queue.irq) (Irq_queue.to_list q) in
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] order

let test_peek_head () =
  let q = Irq_queue.create () in
  Alcotest.(check bool) "empty" true (Irq_queue.is_empty q);
  Irq_queue.push q (item ~irq:7 ~work:10);
  (match Irq_queue.peek q with
  | Some i -> Alcotest.(check int) "head" 7 i.Irq_queue.irq
  | None -> Alcotest.fail "expected head");
  Alcotest.(check int) "peek does not pop" 1 (Irq_queue.length q)

let test_drop_requires_completion () =
  let q = Irq_queue.create () in
  let i = item ~irq:1 ~work:10 in
  Irq_queue.push q i;
  Alcotest.check_raises "unfinished head cannot be dropped"
    (Invalid_argument "Irq_queue.drop_head: head still has remaining work")
    (fun () -> ignore (Irq_queue.drop_head q : Irq_queue.item));
  i.Irq_queue.remaining <- 0;
  let dropped = Irq_queue.drop_head q in
  Alcotest.(check int) "dropped the completed head" 1 dropped.Irq_queue.irq;
  Alcotest.check_raises "empty drop rejected"
    (Invalid_argument "Irq_queue.drop_head: empty queue") (fun () ->
      ignore (Irq_queue.drop_head q : Irq_queue.item))

let test_pending_work () =
  let q = Irq_queue.create () in
  Irq_queue.push q (item ~irq:1 ~work:10);
  let second = item ~irq:2 ~work:30 in
  Irq_queue.push q second;
  Testutil.check_cycles "sum of remaining" 40 (Irq_queue.pending_work q);
  second.Irq_queue.remaining <- 5;
  Testutil.check_cycles "partial execution tracked" 15 (Irq_queue.pending_work q)

let test_high_water () =
  let q = Irq_queue.create () in
  for i = 1 to 5 do
    Irq_queue.push q (item ~irq:i ~work:1)
  done;
  let head = Option.get (Irq_queue.peek q) in
  head.Irq_queue.remaining <- 0;
  ignore (Irq_queue.drop_head q : Irq_queue.item);
  Alcotest.(check int) "high-water survives pops" 5
    (Irq_queue.max_observed_length q)

let test_item_validation () =
  Alcotest.check_raises "work must be positive"
    (Invalid_argument "Irq_queue.make_item: work must be positive") (fun () ->
      ignore (item ~irq:1 ~work:0 : Irq_queue.item))

let suite =
  [
    Alcotest.test_case "FIFO order" `Quick test_fifo_order;
    Alcotest.test_case "peek" `Quick test_peek_head;
    Alcotest.test_case "drop requires completion" `Quick
      test_drop_requires_completion;
    Alcotest.test_case "pending work" `Quick test_pending_work;
    Alcotest.test_case "high-water mark" `Quick test_high_water;
    Alcotest.test_case "item validation" `Quick test_item_validation;
  ]
