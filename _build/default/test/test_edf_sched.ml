module Edf = Rthv_analysis.Edf_sched
module GS = Rthv_analysis.Guest_sched
module TI = Rthv_analysis.Tdma_interference
module Independence = Rthv_analysis.Independence
module Guest = Rthv_rtos.Guest
module Task = Rthv_rtos.Task
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim

let us = Testutil.us

let task ~name ~period_us ~wcet_us =
  { GS.name; period = us period_us; wcet = us wcet_us; priority = 0 }

let full = TI.make ~cycle:(us 1_000) ~slot:(us 1_000)
let paper = TI.make ~cycle:(us 14_000) ~slot:(us 6_000)

let test_demand_bound () =
  let set = [ task ~name:"a" ~period_us:10 ~wcet_us:2 ] in
  Testutil.check_cycles "before first deadline" 0 (Edf.demand_bound set (us 9));
  Testutil.check_cycles "one job" (us 2) (Edf.demand_bound set (us 10));
  Testutil.check_cycles "three jobs" (us 6) (Edf.demand_bound set (us 30));
  let pair =
    [ task ~name:"a" ~period_us:10 ~wcet_us:2; task ~name:"b" ~period_us:15 ~wcet_us:3 ]
  in
  Testutil.check_cycles "mixed demand at 30" (us (6 + 6))
    (Edf.demand_bound pair (us 30))

let test_supply_bound () =
  Testutil.check_cycles "dedicated CPU supplies everything" (us 123)
    (Edf.supply_bound ~tdma:full (us 123));
  (* Paper TDMA: a full cycle supplies one slot. *)
  Testutil.check_cycles "one cycle supplies the slot" (us 6_000)
    (Edf.supply_bound ~tdma:paper (us 14_000));
  Testutil.check_cycles "clamped at zero" 0 (Edf.supply_bound ~tdma:paper (us 10));
  Testutil.check_cycles "blocking subtracts" (us 5_900)
    (Edf.supply_bound ~tdma:paper ~blocking:(us 100) (us 14_000))

let test_schedulable_dedicated () =
  (* Utilisation 0.9 under EDF on a dedicated CPU: schedulable. *)
  let set =
    [ task ~name:"a" ~period_us:10 ~wcet_us:5; task ~name:"b" ~period_us:20 ~wcet_us:8 ]
  in
  Alcotest.(check bool) "EDF at 90%" true (Edf.schedulable ~tdma:full set);
  let over =
    [ task ~name:"a" ~period_us:10 ~wcet_us:6; task ~name:"b" ~period_us:20 ~wcet_us:10 ]
  in
  Alcotest.(check bool) "110% rejected" false (Edf.schedulable ~tdma:full over)

let test_schedulable_under_tdma () =
  let set = [ task ~name:"ctl" ~period_us:28_000 ~wcet_us:5_000 ] in
  Alcotest.(check bool) "fits the 6/14 share" true
    (Edf.schedulable ~tdma:paper set);
  (* 12500/28000 = 44.6 % demand against the 6/14 = 42.9 % share. *)
  let too_big = [ task ~name:"ctl" ~period_us:28_000 ~wcet_us:12_500 ] in
  Alcotest.(check bool) "exceeds the share" false
    (Edf.schedulable ~tdma:paper too_big)

let test_interference_tightens () =
  let set = [ task ~name:"ctl" ~period_us:14_000 ~wcet_us:5_800 ] in
  Alcotest.(check bool) "fits isolated" true (Edf.schedulable ~tdma:paper set);
  let interference =
    Independence.d_min_bound ~d_min:(us 1_000) ~c_bh_eff:(us 154)
  in
  Alcotest.(check bool) "interference breaks it" false
    (Edf.schedulable ~tdma:paper ~interference set)

let test_margin () =
  let set = [ task ~name:"a" ~period_us:10_000 ~wcet_us:1_000 ] in
  (match Edf.margin ~tdma:full set with
  | Some slack -> Alcotest.(check bool) "positive slack" true (slack >= us 9_000)
  | None -> Alcotest.fail "schedulable set has a margin");
  let over = [ task ~name:"a" ~period_us:10 ~wcet_us:20 ] in
  Alcotest.(check (option int)) "overload has none" None
    (Edf.margin ~tdma:full over)

(* EDF beats fixed priority on sets RM cannot schedule: the classic
   C1/T1 = 2/5, C2/T2 = 4/7 example (utilisation ~97%). *)
let test_edf_beats_rm_in_simulation () =
  let specs priority1 priority2 =
    [
      Task.spec ~name:"t1" ~period_us:5_000 ~wcet_us:2_000 ~priority:priority1 ();
      Task.spec ~name:"t2" ~period_us:7_000 ~wcet_us:4_000 ~priority:priority2 ();
    ]
  in
  let run policy =
    let config =
      Config.make
        ~partitions:
          [ Config.partition ~name:"only" ~slot_us:10_000 ~policy
              ~tasks:(specs 0 1) () ]
        ~sources:
          [
            (* Drive the clock for 40 periods. *)
            Config.source ~name:"tick" ~line:0 ~subscriber:0 ~c_th_us:1
              ~c_bh_us:1
              ~interarrivals:(Array.make 30 (us 10_000))
              ();
          ]
        ()
    in
    let sim = Hyp_sim.create config in
    Hyp_sim.run sim;
    let guest = Hyp_sim.guest sim 0 in
    let completions = Guest.take_completions guest in
    let misses =
      List.length
        (List.filter
           (fun c ->
             let deadline =
               match c.Task.job_task with
               | "t1" -> us 5_000
               | _ -> us 7_000
             in
             Task.response_time c > deadline)
           completions)
    in
    (misses, Guest.backlog guest)
  in
  let rm_misses, _ = run Guest.Fixed_priority in
  let edf_misses, edf_backlog = run Guest.Edf in
  Alcotest.(check bool) "RM misses deadlines at 97% utilisation" true
    (rm_misses > 0);
  Alcotest.(check int) "EDF misses none" 0 edf_misses;
  Alcotest.(check bool) "EDF keeps up" true (edf_backlog <= 2)

let test_edf_analysis_matches_simulation () =
  (* The same 97% set is EDF-schedulable on a dedicated processor per the
     demand-bound test. *)
  let set =
    [ task ~name:"t1" ~period_us:5_000 ~wcet_us:2_000;
      task ~name:"t2" ~period_us:7_000 ~wcet_us:4_000 ]
  in
  Alcotest.(check bool) "analysis agrees with the simulation" true
    (Edf.schedulable ~tdma:(TI.make ~cycle:(us 10_000) ~slot:(us 10_000)) set)

let suite =
  [
    Alcotest.test_case "demand bound" `Quick test_demand_bound;
    Alcotest.test_case "supply bound" `Quick test_supply_bound;
    Alcotest.test_case "EDF on a dedicated CPU" `Quick test_schedulable_dedicated;
    Alcotest.test_case "EDF under TDMA" `Quick test_schedulable_under_tdma;
    Alcotest.test_case "interference tightens supply" `Quick
      test_interference_tightens;
    Alcotest.test_case "margin" `Quick test_margin;
    Alcotest.test_case "EDF beats RM in simulation" `Quick
      test_edf_beats_rm_in_simulation;
    Alcotest.test_case "analysis matches simulation" `Quick
      test_edf_analysis_matches_simulation;
  ]

(* Property: sets the demand-bound analysis accepts never miss a deadline in
   simulation (single partition plus the slot-switch and tick overheads,
   which the analysis covers via a small utilisation headroom). *)
type random_set = { periods_wcets : (int * int) list; seed : int }

let set_gen =
  QCheck2.Gen.(
    let* n = 1 -- 3 in
    let* periods_wcets =
      list_repeat n
        (let* period_us = 2_000 -- 20_000 in
         let* util_pct = 5 -- 28 in
         return (period_us, Stdlib.max 1 (period_us * util_pct / 100)))
    in
    let* seed = 0 -- 100 in
    return { periods_wcets; seed })

let prop_edf_analysis_sound_in_simulation random_set =
  let specs =
    List.mapi
      (fun i (period_us, wcet_us) ->
        Task.spec ~name:(Printf.sprintf "t%d" i) ~period_us ~wcet_us ())
      random_set.periods_wcets
  in
  let analysis_tasks = List.map Rthv_analysis.Guest_sched.of_spec specs in
  (* Analyse with 3% headroom for the slot-switch tick and the driver IRQ. *)
  let supply = TI.make ~cycle:(us 10_000) ~slot:(us 9_700) in
  if not (Edf.schedulable ~tdma:supply analysis_tasks) then true
  else begin
    let config =
      Config.make
        ~partitions:
          [
            Config.partition ~name:"only" ~slot_us:10_000 ~policy:Guest.Edf
              ~tasks:specs ();
          ]
        ~sources:
          [
            Config.source ~name:"tick" ~line:0 ~subscriber:0 ~c_th_us:1
              ~c_bh_us:1
              ~interarrivals:(Array.make 25 (us 10_000))
              ();
          ]
        ()
    in
    let sim = Hyp_sim.create config in
    Hyp_sim.run sim;
    let completions = Guest.take_completions (Hyp_sim.guest sim 0) in
    List.for_all
      (fun c ->
        let deadline =
          (List.find
             (fun (s : Task.spec) -> s.Task.name = c.Task.job_task)
             specs)
            .Task.period
        in
        if Task.response_time c > deadline then
          QCheck2.Test.fail_reportf
            "EDF-schedulable set missed a deadline: %s#%d R=%a > T=%a"
            c.Task.job_task c.Task.job_index Rthv_engine.Cycles.pp
            (Task.response_time c) Rthv_engine.Cycles.pp deadline
        else true)
      completions
  end

let suite =
  suite
  @ [
      Testutil.qtest ~count:40 "EDF analysis sound against simulation" set_gen
        prop_edf_analysis_sound_in_simulation;
    ]
