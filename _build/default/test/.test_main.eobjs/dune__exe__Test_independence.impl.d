test/test_independence.ml: Alcotest List QCheck2 Rthv_analysis Rthv_engine Testutil
