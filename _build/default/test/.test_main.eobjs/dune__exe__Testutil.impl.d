test/testutil.ml: Alcotest Float Int QCheck2 QCheck_alcotest Rthv_engine
