test/test_config.ml: Alcotest Rthv_analysis Rthv_core Testutil
