test/test_edf_sched.ml: Alcotest Array List Printf QCheck2 Rthv_analysis Rthv_core Rthv_engine Rthv_rtos Stdlib Testutil
