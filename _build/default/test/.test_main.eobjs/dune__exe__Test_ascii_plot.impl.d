test/test_ascii_plot.ml: Alcotest Format List Rthv_stats String
