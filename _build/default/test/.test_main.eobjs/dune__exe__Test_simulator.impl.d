test/test_simulator.ml: Alcotest List Rthv_engine Testutil
