test/test_prng.ml: Alcotest Array Int64 Rthv_engine Testutil
