test/test_facade.ml: Alcotest List Rthv_core Rthv_workload String Testutil
