test/test_event_queue.ml: Alcotest List QCheck2 Rthv_engine Testutil
