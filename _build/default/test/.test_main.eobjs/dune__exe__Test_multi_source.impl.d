test/test_multi_source.ml: Alcotest Lazy List Printf Rthv_experiments Testutil
