test/test_ablation.ml: Alcotest Lazy List Printf Rthv_core Rthv_experiments Testutil
