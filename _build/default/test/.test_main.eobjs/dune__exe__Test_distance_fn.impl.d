test/test_distance_fn.ml: Alcotest Array List QCheck2 Rthv_analysis Rthv_engine Testutil
