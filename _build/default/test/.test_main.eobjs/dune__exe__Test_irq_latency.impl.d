test/test_irq_latency.ml: Alcotest QCheck2 Rthv_analysis Rthv_engine Rthv_hw Testutil
