test/test_vcd_export.ml: Alcotest Filename Fun List Rthv_analysis Rthv_core Rthv_workload String Sys Testutil
