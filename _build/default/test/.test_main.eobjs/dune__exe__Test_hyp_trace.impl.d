test/test_hyp_trace.ml: Alcotest Format List Rthv_analysis Rthv_core String Testutil
