test/test_ipc.ml: Alcotest Array List Rthv_core Rthv_rtos Testutil
