test/test_phase_sweep.ml: Alcotest Lazy List Rthv_core Rthv_engine Rthv_experiments Testutil
