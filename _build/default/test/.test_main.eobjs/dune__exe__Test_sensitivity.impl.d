test/test_sensitivity.ml: Alcotest Option QCheck2 Rthv_analysis Rthv_hw Stdlib Testutil
