test/test_guest_sched.ml: Alcotest List QCheck2 Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_rtos Rthv_workload Testutil
