test/test_guest.ml: Alcotest List Rthv_rtos Testutil
