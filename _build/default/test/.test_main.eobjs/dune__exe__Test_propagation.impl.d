test/test_propagation.ml: Alcotest Array Rthv_analysis Rthv_engine Rthv_hw Testutil
