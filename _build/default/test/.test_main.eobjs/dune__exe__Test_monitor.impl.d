test/test_monitor.ml: Alcotest Array List QCheck2 Rthv_analysis Rthv_core Testutil
