test/test_busy_window.ml: Alcotest List QCheck2 Rthv_analysis Testutil
