test/test_workload.ml: Alcotest Array List Printf QCheck2 Rthv_analysis Rthv_workload Testutil
