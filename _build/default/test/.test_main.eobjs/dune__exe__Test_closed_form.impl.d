test/test_closed_form.ml: Alcotest Array List Printf QCheck2 Rthv_core Rthv_engine Testutil
