test/test_trace_io.ml: Alcotest Filename Fun List Rthv_engine Rthv_workload Sys Testutil
