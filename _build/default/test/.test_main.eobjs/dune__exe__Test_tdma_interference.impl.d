test/test_tdma_interference.ml: Alcotest List QCheck2 Rthv_analysis Testutil
