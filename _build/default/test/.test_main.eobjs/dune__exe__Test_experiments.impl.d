test/test_experiments.ml: Alcotest Float Lazy List Printf Rthv_core Rthv_experiments Rthv_stats String Testutil
