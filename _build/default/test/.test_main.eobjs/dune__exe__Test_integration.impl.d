test/test_integration.ml: Array List Printf QCheck2 Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_workload Testutil
