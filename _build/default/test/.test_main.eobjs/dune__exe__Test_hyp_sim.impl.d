test/test_hyp_sim.ml: Alcotest Array List Option Rthv_analysis Rthv_core Rthv_engine Rthv_hw Rthv_rtos Rthv_workload Testutil
