test/test_activation.ml: Alcotest List Rthv_analysis Rthv_core Rthv_rtos Rthv_workload Testutil
