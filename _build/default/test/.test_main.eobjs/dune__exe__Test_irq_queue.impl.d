test/test_irq_queue.ml: Alcotest List Option Rthv_rtos Testutil
