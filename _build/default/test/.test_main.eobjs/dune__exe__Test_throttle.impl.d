test/test_throttle.ml: Alcotest Array List QCheck2 Rthv_analysis Rthv_core Rthv_workload Testutil
