test/test_certificate.ml: Alcotest Format List Rthv_analysis String Testutil
