test/test_hw.ml: Alcotest List Option Rthv_engine Rthv_hw Testutil
