test/test_stats.ml: Alcotest Array Float Format List QCheck2 Rthv_stats String Testutil
