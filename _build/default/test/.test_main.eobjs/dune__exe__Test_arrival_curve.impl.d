test/test_arrival_curve.ml: Alcotest List QCheck2 Rthv_analysis Testutil
