test/test_cycles.ml: Alcotest Format QCheck2 Rthv_engine Testutil
