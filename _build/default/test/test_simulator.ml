module Simulator = Rthv_engine.Simulator
module Cycles = Rthv_engine.Cycles

let test_ordering () =
  let sim = Simulator.create () in
  let log = ref [] in
  let note tag _sim = log := tag :: !log in
  ignore (Simulator.schedule sim ~at:30 (note "c") : Simulator.handle);
  ignore (Simulator.schedule sim ~at:10 (note "a") : Simulator.handle);
  ignore (Simulator.schedule sim ~at:20 (note "b") : Simulator.handle);
  Simulator.run sim;
  Alcotest.(check (list string)) "fired in time order" [ "a"; "b"; "c" ]
    (List.rev !log);
  Testutil.check_cycles "clock at last event" 30 (Simulator.now sim)

let test_same_time_insertion_order () =
  let sim = Simulator.create () in
  let log = ref [] in
  let note tag _ = log := tag :: !log in
  ignore (Simulator.schedule sim ~at:5 (note "first") : Simulator.handle);
  ignore (Simulator.schedule sim ~at:5 (note "second") : Simulator.handle);
  Simulator.run sim;
  Alcotest.(check (list string)) "insertion order at same instant"
    [ "first"; "second" ] (List.rev !log)

let test_cancel () =
  let sim = Simulator.create () in
  let fired = ref false in
  let handle = Simulator.schedule sim ~at:10 (fun _ -> fired := true) in
  Simulator.cancel sim handle;
  Simulator.cancel sim handle;
  Simulator.run sim;
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check int) "no pending" 0 (Simulator.pending sim)

let test_schedule_in_past_rejected () =
  let sim = Simulator.create () in
  ignore (Simulator.schedule sim ~at:10 (fun _ -> ()) : Simulator.handle);
  Simulator.run sim;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Simulator.schedule: 0.03us is before now (0.05us)")
    (fun () -> ignore (Simulator.schedule sim ~at:6 (fun _ -> ()) : Simulator.handle))

let test_schedule_from_callback () =
  let sim = Simulator.create () in
  let log = ref [] in
  let rec chain n sim' =
    log := n :: !log;
    if n < 3 then
      ignore
        (Simulator.schedule_after sim' ~delay:10 (chain (n + 1))
          : Simulator.handle)
  in
  ignore (Simulator.schedule sim ~at:0 (chain 0) : Simulator.handle);
  Simulator.run sim;
  Alcotest.(check (list int)) "chained events" [ 0; 1; 2; 3 ] (List.rev !log);
  Testutil.check_cycles "clock advanced by chain" 30 (Simulator.now sim)

let test_run_until () =
  let sim = Simulator.create () in
  let fired = ref [] in
  List.iter
    (fun t ->
      ignore (Simulator.schedule sim ~at:t (fun _ -> fired := t :: !fired)
               : Simulator.handle))
    [ 10; 20; 30 ];
  Simulator.run_until sim 20;
  Alcotest.(check (list int)) "only due events" [ 10; 20 ] (List.rev !fired);
  Testutil.check_cycles "clock set to horizon" 20 (Simulator.now sim);
  Alcotest.(check int) "one left" 1 (Simulator.pending sim)

let test_run_until_advances_idle_clock () =
  let sim = Simulator.create () in
  Simulator.run_until sim 500;
  Testutil.check_cycles "idle clock advances" 500 (Simulator.now sim)

let test_step_returns_false_when_empty () =
  let sim = Simulator.create () in
  Alcotest.(check bool) "empty step" false (Simulator.step sim)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "same-time order" `Quick test_same_time_insertion_order;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "past scheduling rejected" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "scheduling from callbacks" `Quick
      test_schedule_from_callback;
    Alcotest.test_case "run_until" `Quick test_run_until;
    Alcotest.test_case "run_until idle" `Quick test_run_until_advances_idle_clock;
    Alcotest.test_case "step on empty" `Quick test_step_returns_false_when_empty;
  ]
