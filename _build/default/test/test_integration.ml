(* Cross-library properties: the formal analysis must bound the simulator on
   randomly generated systems whose assumptions match the analysis model. *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module AC = Rthv_analysis.Arrival_curve
module BW = Rthv_analysis.Busy_window
module DF = Rthv_analysis.Distance_fn
module IL = Rthv_analysis.Irq_latency
module TI = Rthv_analysis.Tdma_interference
module Independence = Rthv_analysis.Independence
module Platform = Rthv_hw.Platform
module Gen = Rthv_workload.Gen

let us = Testutil.us
let costs = IL.costs_of_platform Platform.arm926ejs_200mhz

type random_system = {
  slots_us : int list;  (** 2-3 partitions. *)
  subscriber : int;
  c_th_us : int;
  c_bh_us : int;
  d_min_factor : int;  (** d_min = factor * (c_th + c_bh). *)
  seed : int;
}

let system_gen =
  QCheck2.Gen.(
    let* n_partitions = 2 -- 3 in
    let* slots_us = list_repeat n_partitions (1_000 -- 8_000) in
    let* subscriber = 0 -- (n_partitions - 1) in
    let* c_th_us = 1 -- 10 in
    let* c_bh_us = 10 -- 120 in
    let* d_min_factor = 6 -- 40 in
    let* seed = 0 -- 10_000 in
    return { slots_us; subscriber; c_th_us; c_bh_us; d_min_factor; seed })

(* d_min must exceed the full interposed transaction (C_Mon + C_sched +
   2*C_ctx + C_BH ~ 105us + C_BH) so that, for conforming arrivals, no
   admission is ever refused because the previous interposition is still in
   flight. *)
let d_min_of system =
  us (300 + (system.d_min_factor * (system.c_th_us + system.c_bh_us)))

let build_sim ?shaping system ~count =
  let d_min = d_min_of system in
  let interarrivals =
    Gen.exponential_clamped ~seed:system.seed ~mean:d_min ~d_min ~count
  in
  let partitions =
    List.mapi
      (fun i slot_us ->
        Config.partition ~name:(Printf.sprintf "p%d" i) ~slot_us ())
      system.slots_us
  in
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:system.subscriber
            ~c_th_us:system.c_th_us ~c_bh_us:system.c_bh_us ~interarrivals
            ?shaping ();
        ]
      ()
  in
  (Hyp_sim.create config, d_min)

let analysis_r system ~d_min =
  let cycle = us (List.fold_left ( + ) 0 system.slots_us) in
  let slot_full = us (List.nth system.slots_us system.subscriber) in
  (* The simulator pays the slot-entry context switch inside the slot, so the
     analysable service is the slot minus one context switch; a bottom
     handler finishing over the boundary is covered by the busy-window
     iteration.  Degenerate (tiny) slots make the schedule unanalysable —
     report None and skip. *)
  let slot = slot_full - costs.IL.c_ctx in
  if slot <= 0 then None
  else begin
    let tdma = TI.make ~cycle ~slot in
    let self =
      {
        IL.name = "irq";
        arrival = AC.Sporadic { d_min };
        c_th = us system.c_th_us;
        c_bh = us system.c_bh_us;
      }
    in
    match IL.baseline ~tdma ~self ~interferers:[] () with
    | Ok r -> Some r.BW.response_time
    | Error _ -> None
  end

let prop_baseline_analysis_bounds_simulation system =
  let sim, d_min = build_sim system ~count:60 in
  match analysis_r system ~d_min with
  | None -> true (* overloaded or degenerate configuration: nothing to check *)
  | Some r ->
      Hyp_sim.run sim;
      let records = Hyp_sim.records sim in
      List.for_all
        (fun record ->
          let latency = Irq_record.latency record in
          if latency > r then
            QCheck2.Test.fail_reportf
              "latency %a of irq#%d exceeds analytic bound %a"
              Rthv_engine.Cycles.pp latency record.Irq_record.irq
              Rthv_engine.Cycles.pp r
          else true)
        records

let prop_interference_bound_holds system =
  let shaping = Config.Fixed_monitor (DF.d_min (d_min_of system)) in
  let sim, d_min = build_sim ~shaping system ~count:60 in
  Hyp_sim.run sim;
  let stats = Hyp_sim.stats sim in
  let c_bh_eff =
    us system.c_bh_us + costs.IL.c_sched + (2 * costs.IL.c_ctx)
  in
  List.for_all
    (fun (i, slot_us) ->
      let bound =
        Independence.max_slot_loss ~monitor:(DF.d_min d_min) ~c_bh_eff
          ~slot:(us slot_us)
      in
      if stats.Hyp_sim.stolen_slot_max.(i) > bound then
        QCheck2.Test.fail_reportf
          "partition %d: measured interference %a exceeds eq.-(14) bound %a"
          i Rthv_engine.Cycles.pp
          stats.Hyp_sim.stolen_slot_max.(i)
          Rthv_engine.Cycles.pp bound
      else true)
    (List.mapi (fun i s -> (i, s)) system.slots_us)

let prop_conforming_never_delayed system =
  let shaping = Config.Fixed_monitor (DF.d_min (d_min_of system)) in
  let sim, _ = build_sim ~shaping system ~count:60 in
  Hyp_sim.run sim;
  let stats = Hyp_sim.stats sim in
  stats.Hyp_sim.delayed = 0 && stats.Hyp_sim.completed_irqs = 60

let prop_all_irqs_complete system =
  let sim, _ = build_sim system ~count:40 in
  Hyp_sim.run sim;
  (Hyp_sim.stats sim).Hyp_sim.completed_irqs = 40

let suite =
  [
    Testutil.qtest ~count:25
      "analysis (eq. 11-12) bounds every simulated latency" system_gen
      prop_baseline_analysis_bounds_simulation;
    Testutil.qtest ~count:25 "equation (14) bounds measured interference"
      system_gen prop_interference_bound_holds;
    Testutil.qtest ~count:25 "conforming arrivals are never delayed"
      system_gen prop_conforming_never_delayed;
    Testutil.qtest ~count:25 "every IRQ completes" system_gen
      prop_all_irqs_complete;
  ]
