module Tdma = Rthv_core.Tdma

let us = Testutil.us

let paper = Tdma.of_us [| 6000; 6000; 2000 |]

let test_cycle_length () =
  Testutil.check_cycles "T_TDMA" (us 14_000) (Tdma.cycle_length paper);
  Alcotest.(check int) "partitions" 3 (Tdma.partitions paper);
  Testutil.check_cycles "T_0" (us 6_000) (Tdma.slot_length paper 0);
  Testutil.check_cycles "T_2" (us 2_000) (Tdma.slot_length paper 2)

let test_owner_at () =
  Alcotest.(check int) "t=0" 0 (Tdma.owner_at paper 0);
  Alcotest.(check int) "mid first slot" 0 (Tdma.owner_at paper (us 3_000));
  Alcotest.(check int) "boundary starts next" 1 (Tdma.owner_at paper (us 6_000));
  Alcotest.(check int) "housekeeping slot" 2 (Tdma.owner_at paper (us 12_500));
  Alcotest.(check int) "wraps to next cycle" 0 (Tdma.owner_at paper (us 14_000));
  Alcotest.(check int) "deep into later cycles" 1
    (Tdma.owner_at paper (us ((14_000 * 7) + 8_000)))

let test_slot_bounds () =
  let owner, start, stop = Tdma.slot_bounds_at paper (us 8_000) in
  Alcotest.(check int) "owner" 1 owner;
  Testutil.check_cycles "start" (us 6_000) start;
  Testutil.check_cycles "end" (us 12_000) stop;
  let owner2, start2, stop2 = Tdma.slot_bounds_at paper (us 20_500) in
  Alcotest.(check int) "owner in cycle 2" 1 owner2;
  Testutil.check_cycles "start in cycle 2" (us 20_000) start2;
  Testutil.check_cycles "end in cycle 2" (us 26_000) stop2

let test_next_boundary () =
  Testutil.check_cycles "from t=0" (us 6_000) (Tdma.next_boundary paper 0);
  Testutil.check_cycles "from inside slot 1" (us 12_000)
    (Tdma.next_boundary paper (us 7_000));
  Testutil.check_cycles "boundary is strictly after" (us 12_000)
    (Tdma.next_boundary paper (us 6_000))

let test_next_slot_start () =
  Testutil.check_cycles "own slot from zero" 0
    (Tdma.next_slot_start paper ~partition:0 ~after:0);
  Testutil.check_cycles "p1 from zero" (us 6_000)
    (Tdma.next_slot_start paper ~partition:1 ~after:0);
  Testutil.check_cycles "p0 after its slot started" (us 14_000)
    (Tdma.next_slot_start paper ~partition:0 ~after:(us 1));
  Testutil.check_cycles "p2 later in the cycle" (us 12_000)
    (Tdma.next_slot_start paper ~partition:2 ~after:(us 9_000));
  Testutil.check_cycles "exact start counts" (us 12_000)
    (Tdma.next_slot_start paper ~partition:2 ~after:(us 12_000))

let test_interference_bridge () =
  let ti = Tdma.interference paper ~partition:0 in
  Testutil.check_cycles "gap via analysis view" (us 8_000)
    (Rthv_analysis.Tdma_interference.worst_case_gap ti)

let test_validation () =
  Alcotest.check_raises "empty schedule"
    (Invalid_argument "Tdma.make: no partitions") (fun () ->
      ignore (Tdma.make [||] : Tdma.t));
  Alcotest.check_raises "zero slot"
    (Invalid_argument "Tdma.make: non-positive slot") (fun () ->
      ignore (Tdma.of_us [| 10; 0 |] : Tdma.t))

let schedule_gen =
  QCheck2.Gen.(
    map
      (fun slots -> Tdma.make (Array.of_list slots))
      (list_size (1 -- 6) (1 -- 10_000)))

let prop_owner_consistent_with_bounds (tdma, time) =
  let owner, start, stop = Tdma.slot_bounds_at tdma time in
  owner = Tdma.owner_at tdma time
  && start <= time && time < stop
  && stop - start = Tdma.slot_length tdma owner

let prop_slots_partition_cycle tdma =
  (* Walking boundaries from 0 visits every partition once per cycle and
     advances exactly one cycle. *)
  let n = Tdma.partitions tdma in
  let rec walk t count acc =
    if count = n then (t, acc)
    else begin
      let owner = Tdma.owner_at tdma t in
      walk (Tdma.next_boundary tdma t) (count + 1) (owner :: acc)
    end
  in
  let t_end, owners = walk 0 0 [] in
  t_end = Tdma.cycle_length tdma
  && List.sort compare owners = List.init n (fun i -> i)

let prop_next_slot_start_is_owned (tdma, partition_seed, after) =
  let partition = partition_seed mod Tdma.partitions tdma in
  let start = Tdma.next_slot_start tdma ~partition ~after in
  start >= after
  && Tdma.owner_at tdma start = partition
  && (start = 0 || Tdma.owner_at tdma (start - 1) <> partition
      || Tdma.partitions tdma = 1)

let suite =
  [
    Alcotest.test_case "cycle structure" `Quick test_cycle_length;
    Alcotest.test_case "owner lookup" `Quick test_owner_at;
    Alcotest.test_case "slot bounds" `Quick test_slot_bounds;
    Alcotest.test_case "next boundary" `Quick test_next_boundary;
    Alcotest.test_case "next slot start" `Quick test_next_slot_start;
    Alcotest.test_case "analysis bridge" `Quick test_interference_bridge;
    Alcotest.test_case "validation" `Quick test_validation;
    Testutil.qtest "owner consistent with bounds"
      QCheck2.Gen.(pair schedule_gen (0 -- 10_000_000))
      prop_owner_consistent_with_bounds;
    Testutil.qtest "slots partition the cycle" schedule_gen
      prop_slots_partition_cycle;
    Testutil.qtest "next_slot_start lands on an owned boundary"
      QCheck2.Gen.(triple schedule_gen (0 -- 100) (0 -- 10_000_000))
      prop_next_slot_start_is_owned;
  ]
