(* Compare two rthv-bench/1 JSON files (see bench/main.ml --json) and fail
   on performance regressions.

   Usage:  dune exec bench/diff.exe -- BASELINE.json CURRENT.json
             [--ratio R] [--words-slack W]

   Wall-clock estimates are compared with a *relative* tolerance: a row
   regresses when current > baseline * R (default 5.0 — generous on
   purpose, the baseline and CI machines differ; the gate exists to catch
   order-of-magnitude mistakes like an accidentally quadratic hot path,
   not scheduler noise).  Improvements are never failures.

   Allocation estimates are machine-independent, so they get an *absolute*
   slack in minor words (default 8.0): the allocation-free hot paths must
   stay allocation-free wherever the bench runs.  Rows that allocate by
   design (a full simulator run is hundreds of thousands of words) carry
   run-to-run noise in the OLS estimate that dwarfs any absolute slack, so
   a *relative* component (--words-ratio, default 1.02) is OR-ed in: a row
   regresses only when current exceeds both [base + slack] and
   [base * words-ratio].  An allocation-free baseline row (0 words) is
   unaffected — 0 * ratio is 0, the absolute slack alone governs it.

   Rows present only in the baseline fail the diff (a silently dropped
   bench is a lost regression gate); rows only in the current file are
   reported as informational.

   The optional "profile" section (per-phase totals of the 15000-IRQ
   simulation under the hierarchical profiler, see bench/main.ml) is gated
   with the same rules, keyed by phase path: per-phase wall-clock with the
   relative --ratio and per-phase minor words with the slack/ratio pair
   (the simulation is deterministic, so phase words are reproducible to
   the word).  A baseline without a profile section skips the check.

   The "fastforward" section's rows (15k-IRQ step/ff, 1M-IRQ streaming)
   are gated like micro rows.  Two further hard gates: a sweep row whose
   pool ran >1 effective domains FAILS below 1.0x (parallel slower than
   sequential is a real regression once Par's single-core fallback is
   ruled out), and the step-over-ff speedup FAILS below 0.9x (the
   event-compressed engine must not lose to the step reference). *)

module Json = Rthv_obs.Json

let fail fmt = Format.kasprintf (fun s -> prerr_endline s; exit 2) fmt

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let string_field name doc =
  match member name doc with Some (Json.String s) -> Some s | _ -> None

type row = { ns : float; words : float }

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Json.parse text with
  | Error e -> fail "%s: %s" path e
  | Ok doc ->
      (match string_field "schema" doc with
      | Some "rthv-bench/1" -> ()
      | Some other -> fail "%s: unsupported schema %s" path other
      | None -> fail "%s: missing schema field" path);
      let rows =
        match member "micro" doc with
        | Some (Json.List rows) -> rows
        | _ -> fail "%s: missing micro array" path
      in
      let micro =
        List.filter_map
          (fun r ->
            match
              (string_field "name" r, number (member "ns_per_run" r),
               number (member "minor_words_per_run" r))
            with
            | Some name, Some ns, Some words -> Some (name, { ns; words })
            | _ -> None)
          rows
      in
      (* Older baselines predate the profile section: absent means empty,
         and an empty baseline gates nothing. *)
      let profile_rows =
        match member "profile" doc with
        | Some (Json.List rows) -> rows
        | Some _ -> fail "%s: profile is not an array" path
        | None -> []
      in
      let profile =
        List.filter_map
          (fun r ->
            match
              (string_field "path" r, number (member "total_ns" r),
               number (member "words" r))
            with
            | Some p, Some ns, Some words ->
                Some ("profile:" ^ p, { ns; words })
            | _ -> None)
          profile_rows
      in
      (* Sweep speedups, keyed by sweep name; absent in older files.  Each
         carries the pool's post-clamp domain count (absent in older files:
         assume real parallelism so the gate stays armed). *)
      let sweep =
        match member "sweep" doc with
        | Some (Json.Obj entries) ->
            List.filter_map
              (fun (name, v) ->
                match number (member "speedup" v) with
                | None -> None
                | Some s ->
                    let effective =
                      match number (member "effective_jobs" v) with
                      | Some e -> int_of_float e
                      | None -> 2
                    in
                    Some (name, s, effective))
              entries
        | _ -> []
      in
      (* Fast-forward engine rows (15k step/ff, 1M streaming) are gated
         like micro rows; the step-over-ff speedup is gated separately. *)
      let ff_rows, ff_speedup =
        match member "fastforward" doc with
        | Some (Json.Obj _ as ff) ->
            let rows =
              match member "rows" ff with
              | Some (Json.List rows) ->
                  List.filter_map
                    (fun r ->
                      match
                        ( string_field "name" r,
                          number (member "ns_per_run" r),
                          number (member "minor_words_per_run" r) )
                      with
                      | Some name, Some ns, Some words ->
                          Some ("fastforward:" ^ name, { ns; words })
                      | _ -> None)
                    rows
              | _ -> []
            in
            (rows, number (member "speedup_step_over_ff" ff))
        | _ -> ([], None)
      in
      (micro, profile, sweep, ff_rows, ff_speedup)

let () =
  let ratio = ref 5.0 in
  let words_slack = ref 8.0 in
  let words_ratio = ref 1.02 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--ratio" :: v :: rest ->
        ratio := float_of_string v;
        parse rest
    | "--words-slack" :: v :: rest ->
        words_slack := float_of_string v;
        parse rest
    | "--words-ratio" :: v :: rest ->
        words_ratio := float_of_string v;
        parse rest
    | arg :: rest ->
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
        fail
          "usage: diff BASELINE.json CURRENT.json [--ratio R] [--words-slack \
           W] [--words-ratio WR]"
  in
  let baseline_micro, baseline_profile, _, baseline_ff, _ =
    load baseline_path
  in
  let current_micro, current_profile, current_sweep, current_ff, ff_speedup =
    load current_path
  in
  let failures = ref 0 in
  let compare_rows baseline current =
    List.iter
      (fun (name, b) ->
        match List.assoc_opt name current with
        | None ->
            incr failures;
            Printf.printf "%-48s MISSING from %s\n" name current_path
        | Some c ->
            let r = if b.ns > 0.0 then c.ns /. b.ns else Float.infinity in
            let time_bad = r > !ratio in
            let words_bad =
              c.words > b.words +. !words_slack
              && c.words > b.words *. !words_ratio
            in
            if time_bad || words_bad then incr failures;
            Printf.printf "%-48s %12.1f %12.1f %7.2fx%s%s\n" name b.ns c.ns r
              (if time_bad then "  TIME REGRESSION" else "")
              (if words_bad then
                 Printf.sprintf "  ALLOC REGRESSION (%.1f -> %.1f words)"
                   b.words c.words
               else ""))
      baseline;
    List.iter
      (fun (name, _) ->
        if not (List.mem_assoc name baseline) then
          Printf.printf "%-48s (new, not in baseline)\n" name)
      current
  in
  Printf.printf "%-48s %12s %12s %8s\n" "benchmark" "base ns" "curr ns" "ratio";
  compare_rows baseline_micro current_micro;
  compare_rows baseline_profile current_profile;
  compare_rows baseline_ff current_ff;
  (* A parallel sweep must beat sequential whenever the pool actually ran
     more than one domain — Par skips the fan-out machinery below that, so
     any sub-1.0x speedup with real parallelism is a regression, not
     machine noise.  On a single schedulable core (effective_jobs <= 1)
     both timings run the identical sequential path and the "speedup" is
     pure noise around 1.0x, so the gate disarms. *)
  List.iter
    (fun (name, speedup, effective_jobs) ->
      if speedup < 1.0 then
        if effective_jobs > 1 then begin
          incr failures;
          Printf.printf
            "%-48s SWEEP REGRESSION: parallel slower than sequential \
             (%.2fx at %d domains)\n"
            ("sweep:" ^ name) speedup effective_jobs
        end
        else
          Printf.printf
            "%-48s note: single core, sequential path both sides (%.2fx)\n"
            ("sweep:" ^ name) speedup)
    current_sweep;
  (* The event-compressed engine must never run materially slower than the
     step reference on the same binary; 0.9 absorbs wall-clock noise
     between the two timed loops. *)
  (match ff_speedup with
  | Some s when s < 0.9 ->
      incr failures;
      Printf.printf
        "%-48s FF REGRESSION: fast-forward slower than step (%.2fx)\n"
        "fastforward:speedup" s
  | _ -> ());
  if !failures > 0 then begin
    Printf.printf "\n%d regression(s) against %s (ratio > %.1fx or > %+.1f \
                   minor words and > %.2fx)\n"
      !failures baseline_path !ratio !words_slack !words_ratio;
    exit 1
  end;
  Printf.printf "\nno regressions against %s\n" baseline_path
