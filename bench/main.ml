(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6 and Appendix A), plus ablations over the design
   choices called out in DESIGN.md, Bechamel micro-benchmarks of the hot
   paths, and a wall-clock comparison of the sequential vs sharded sweep
   engine.

   Usage:  dune exec bench/main.exe [-- section ... [options]]
   Sections: fig3 fig6a fig6b fig6c fig7 overhead analysis ablation multi
   robustness micro profile fastforward sweep all (default: all).
   Options:
     --jobs N     worker domains for the sweep engine (default: RTHV_JOBS
                  or the machine's recommended domain count)
     --json FILE  write machine-readable results of the micro and sweep
                  sections (schema rthv-bench/1) for trend tracking *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Monitor = Rthv_core.Monitor
module DF = Rthv_analysis.Distance_fn
module BW = Rthv_analysis.Busy_window
module AC = Rthv_analysis.Arrival_curve
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary
module Fig6 = Rthv_experiments.Fig6
module Fig7 = Rthv_experiments.Fig7
module Overhead = Rthv_experiments.Overhead
module Analysis_tables = Rthv_experiments.Analysis_tables
module Params = Rthv_experiments.Params
module Par = Rthv_par.Par
module Json = Rthv_obs.Json

let ppf = Format.std_formatter

(* Machine-readable results (written by --json): micro rows plus sweep
   timings, accumulated by whichever sections run. *)
let json_micro : Json.t list ref = ref []
let json_sweep : (string * Json.t) list ref = ref []
let json_profile : Json.t list ref = ref []

let banner title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure 6: latency histograms, 15000 IRQs                            *)
(* ------------------------------------------------------------------ *)

let fig6 scenario () =
  banner
    (Printf.sprintf "%s  [paper: Figure 6]" (Fig6.scenario_name scenario));
  let result = Fig6.run scenario in
  Fig6.print ppf result

(* ------------------------------------------------------------------ *)
(* Figure 7: ECU trace with self-learning monitor                      *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  banner "Self-learning monitor on the ECU trace  [paper: Figure 7]";
  let results = Fig7.run_all () in
  List.iter (Fig7.print ppf) results;
  Format.fprintf ppf "@.Average IRQ latency over the event index (Figure 7):@.";
  let glyphs = [ 'a'; 'b'; 'c'; 'd' ] in
  let plots =
    List.map2
      (fun r glyph ->
        Rthv_stats.Ascii_plot.series ~label:r.Fig7.label ~glyph
          (List.map (fun (i, v) -> (float_of_int i, v)) r.Fig7.series))
      results glyphs
  in
  Rthv_stats.Ascii_plot.render ~x_label:"IRQ event index"
    ~y_label:"avg latency (us, 500-event window)" ppf plots;
  Format.fprintf ppf "@.Running-average latency series (us):@.";
  Fig7.print_series ppf results;
  Format.fprintf ppf
    "@.Paper's run-phase averages for comparison: a) ~120us, b) ~300us, c) \
     ~900us, d) ~1600us.@."

(* ------------------------------------------------------------------ *)
(* Section 6.2: overhead table                                         *)
(* ------------------------------------------------------------------ *)

let overhead () =
  banner "Memory and runtime overhead  [paper: Section 6.2]";
  Overhead.print ppf (Overhead.run ());
  Format.fprintf ppf
    "Note: the paper reports ~10%% added context switches for its (unstated) \
     C_BH;@.with C_BH = 50us the interposition rate per slot switch is \
     higher here — the@.increase scales linearly with U_IRQ, as the per-load \
     rows show.@."

(* ------------------------------------------------------------------ *)
(* Analysis tables: equations (11)-(16) vs simulation                  *)
(* ------------------------------------------------------------------ *)

let analysis () =
  banner "Worst-case latency analysis vs simulation  [paper: Sections 4-5]";
  Analysis_tables.print ppf (Analysis_tables.compute_all ())

(* ------------------------------------------------------------------ *)
(* Ablations over design choices (DESIGN.md section 5)                 *)
(* ------------------------------------------------------------------ *)

let ablation () =
  banner "Ablations (conforming arrivals, U_IRQ = 10%)";
  let module Ablation = Rthv_experiments.Ablation in
  let d_min = Params.mean_for_load 0.10 in
  let section title variants =
    Format.fprintf ppf "%s:@." title;
    Ablation.print ppf (Ablation.run ~d_min variants)
  in
  section "interposed handling semantics"
    (Ablation.boundary_variants ~d_min);
  section "context-switch cost sensitivity (monitored)"
    (Ablation.ctx_cost_variants ~d_min [ 0.0; 0.5; 1.0; 2.0 ]);
  section "monitor granularity (same arrivals, l-entry envelope)"
    (Ablation.monitor_depth_variants ~d_min [ 1; 3; 5 ]);
  Format.fprintf ppf
    "shaping mechanism on bursty arrivals (equal long-term rate):@.";
  Ablation.print ppf (Ablation.shaper_comparison ~d_min ());
  (* Sensitivity: what baseline TDMA cycle would match interposition's
     latency, and what switch rate that implies (Section 1's motivation). *)
  let module Sensitivity = Rthv_analysis.Sensitivity in
  let costs = Rthv_analysis.Irq_latency.costs_of_platform Params.platform in
  let query =
    Sensitivity.make
      ~tdma:(Rthv_core.Tdma.interference Params.tdma ~partition:1)
      ~costs ~c_th:(Cycles.of_us Params.c_th_us) ()
  in
  let c_bh = Cycles.of_us Params.c_bh_us in
  (match Sensitivity.interposed_latency query ~c_bh ~d_min with
  | None -> ()
  | Some budget -> (
      Format.fprintf ppf
        "baseline-TDMA equivalent of interposition (latency budget %a):@."
        Cycles.pp budget;
      match
        Sensitivity.baseline_cycle_for_latency query ~c_bh ~d_min
          ~slot_fraction:(6. /. 14.) ~budget
      with
      | None -> Format.fprintf ppf "  no TDMA cycle achieves it@."
      | Some cycle ->
          Format.fprintf ppf
            "  requires T_TDMA <= %a, i.e. %.0f partition switches/second \
             (vs %.0f/s at 14ms)@."
            Cycles.pp cycle
            (Sensitivity.switch_rate_per_second ~cycle ~partitions:3)
            (Sensitivity.switch_rate_per_second ~cycle:(Cycles.of_us 14_000)
               ~partitions:3)))

(* ------------------------------------------------------------------ *)
(* Figure 3 quantified: latency over arrival phase                     *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  banner "Latency profile over the TDMA cycle  [paper: Figure 3/5 illustration]";
  let results =
    [
      Rthv_experiments.Phase_sweep.run ~monitored:false ();
      Rthv_experiments.Phase_sweep.run ~monitored:true ();
    ]
  in
  Rthv_experiments.Phase_sweep.print ppf results

(* ------------------------------------------------------------------ *)
(* Multi-source scalability (beyond the paper)                         *)
(* ------------------------------------------------------------------ *)

let multi () =
  banner "Multi-source scalability (constant 10% total interposed load)";
  let rows = Rthv_experiments.Multi_source.sweep [ 1; 2; 4; 8 ] in
  Rthv_experiments.Multi_source.print ppf rows

let robustness () =
  banner "Seed robustness of the Figure-6 averages";
  Rthv_experiments.Robustness.print ppf
    (Rthv_experiments.Robustness.run_all ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Each micro-benchmark is a raw named closure.  Bechamel times them; the
   allocation column is measured directly (below) because the OLS
   minor-allocated estimate carries run-to-run intercept noise of hundreds
   of words on identical code, which no tight regression gate survives. *)
let micro_bodies () : (string * (unit -> unit)) list =
  let monitor_check =
    ( "monitor.check (l=5)",
      fun () ->
           let m =
             Monitor.fixed (DF.of_entries [| 100; 200; 300; 400; 500 |])
           in
           for i = 0 to 99 do
             if Monitor.check m (i * 600) then Monitor.admit m (i * 600)
           done)
  in
  (* Steady-state monitor benches on a preallocated monitor: these are the
     per-IRQ hot-path costs (the create+100-admits bench above includes
     construction), and their minor_allocated estimate is the
     allocation-free claim checked in CI. *)
  let steady_monitor =
    Monitor.fixed (DF.of_entries [| 100; 200; 300; 400; 500 |])
  in
  let steady_ts = ref 0 in
  let monitor_admit_steady =
    ( "monitor admit+check steady (l=5)",
      fun () ->
           steady_ts := !steady_ts + 600;
           if Monitor.check steady_monitor !steady_ts then
             Monitor.admit steady_monitor !steady_ts)
  in
  let conforms_ts = ref 0 in
  let monitor_conforms =
    ( "monitor.conforms read-only (l=5)",
      fun () ->
           conforms_ts := !conforms_ts + 600;
           ignore (Monitor.conforms steady_monitor !conforms_ts))
  in
  (* The queue is hoisted so the heap array is reused across the batch:
     the bench measures the push/pop cycle itself, not the construction
     and regrowth of a fresh queue every run (which used to dominate the
     allocation column at 848 words/run). *)
  let batch_queue = Rthv_engine.Event_queue.create () in
  let event_queue =
    ( "event_queue push+pop x100",
      fun () ->
           for i = 0 to 99 do
             Rthv_engine.Event_queue.push batch_queue
               ~time:(i * 7919 mod 1000) i
           done;
           while not (Rthv_engine.Event_queue.is_empty batch_queue) do
             ignore (Rthv_engine.Event_queue.pop batch_queue)
           done)
  in
  (* Steady-state queue at the simulator's typical occupancy: one push +
     one pop against a warm 64-entry heap, no construction cost. *)
  let steady_queue = Rthv_engine.Event_queue.create () in
  let () =
    for i = 0 to 63 do
      Rthv_engine.Event_queue.push steady_queue ~time:(i * 97) i
    done
  in
  let queue_ts = ref (64 * 97) in
  let event_queue_steady =
    ( "event_queue push+pop steady (64)",
      fun () ->
           queue_ts := !queue_ts + 97;
           Rthv_engine.Event_queue.push steady_queue ~time:!queue_ts 0;
           ignore (Rthv_engine.Event_queue.pop steady_queue))
  in
  let busy_window =
    let curve = AC.sporadic ~d_min_us:1544 in
    ( "busy-window fixed point (eq. 11)",
      fun () ->
           let tdma =
             Rthv_analysis.Tdma_interference.make ~cycle:(Cycles.of_us 14_000)
               ~slot:(Cycles.of_us 6_000)
           in
           let interference dt =
             Rthv_analysis.Tdma_interference.interference tdma dt
             + (AC.eta_plus curve dt * Cycles.of_us 5)
           in
           ignore
             (BW.response_time ~wcet:(Cycles.of_us 50)
                ~delta:(AC.delta_min curve) ~interference ()))
  in
  let learner =
    ( "delta-learner observe x1000 (Alg. 1)",
      fun () ->
           let l = Rthv_core.Delta_learner.create ~l:5 in
           for i = 0 to 999 do
             Rthv_core.Delta_learner.observe l (i * 321)
           done)
  in
  let interarrivals =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:200
  in
  let shaping = Config.Fixed_monitor (DF.d_min (Cycles.of_us 1544)) in
  let sim_throughput =
    ( "hypervisor sim, 200 IRQs (monitored)",
      fun () ->
           let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
           Hyp_sim.run sim)
  in
  (* One full Figure-6-sized run: the unit of work the sweep engine
     distributes, so its wall-clock anchors the sweep speedup numbers. *)
  let interarrivals_15k =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:15_000
  in
  let sim_15k =
    ( "hypervisor sim, 15000 IRQs (monitored)",
      fun () ->
           let sim =
             Hyp_sim.create
               (Params.config ~interarrivals:interarrivals_15k ~shaping)
           in
           Hyp_sim.run sim)
  in
  (* The zero-cost-when-disabled claim for the lib/obs sink: the guarded
     call sites reduce to one flag read per event when no sink is
     installed, and the same simulation under a recorder sink shows the
     full price of live metrics. *)
  let sim_observed =
    ( "hypervisor sim, 200 IRQs (recorder sink)",
      fun () ->
           let recorder = Rthv_obs.Recorder.create () in
           Rthv_obs.Sink.with_sink (Rthv_obs.Recorder.sink recorder)
             (fun () ->
               let sim =
                 Hyp_sim.create (Params.config ~interarrivals ~shaping)
               in
               Hyp_sim.run sim))
  in
  (* Batched trace capture: the same simulation with a bounded ring whose
     spill hook streams every event into the columnar store writer
     (Trace_store), pricing the array-store + amortized-block-encode path
     against the recorder sink's per-event label/hashtable work.  Ring,
     writer and (unlinked) temp file are hoisted so the row measures the
     steady state, not construction. *)
  let sim_tracestore =
    let path = Filename.temp_file "rthv_bench" ".rts" in
    let writer = Rthv_core.Trace_store.Writer.create path in
    (try Sys.remove path with Sys_error _ -> ());
    let ring = Rthv_core.Hyp_trace.create ~capacity:4096 () in
    Rthv_core.Hyp_trace.set_spill ring (fun ~time event ->
        Rthv_core.Trace_store.Writer.add writer ~time event);
    ( "hypervisor sim, 200 IRQs (tracestore sink)",
      fun () ->
           let sim =
             Hyp_sim.create ~trace:ring (Params.config ~interarrivals ~shaping)
           in
           Hyp_sim.run sim)
  in
  let sink_disabled =
    ( "obs guarded incr x1000 (no sink)",
      fun () ->
           for _ = 1 to 1000 do
             if Rthv_obs.Sink.active () then
               Rthv_obs.Sink.incr "bench_ops_total" Rthv_obs.Labels.empty 1
           done)
  in
  let sink_recorder =
    let recorder = Rthv_obs.Recorder.create () in
    ( "obs guarded incr x1000 (recorder)",
      fun () ->
           Rthv_obs.Sink.with_sink (Rthv_obs.Recorder.sink recorder)
             (fun () ->
               for _ = 1 to 1000 do
                 if Rthv_obs.Sink.active () then
                   Rthv_obs.Sink.incr "bench_ops_total"
                     Rthv_obs.Labels.empty 1
               done))
  in
  [
    monitor_check;
    monitor_admit_steady;
    monitor_conforms;
    event_queue;
    event_queue_steady;
    busy_window;
    learner;
    sim_throughput;
    sim_15k;
    sim_observed;
    sim_tracestore;
    sink_disabled;
    sink_recorder;
  ]

let micro_tests () =
  let open Bechamel in
  List.map
    (fun (name, fn) -> Test.make ~name (Staged.stage fn))
    (micro_bodies ())

(* Exact per-run minor allocation: warm the closure, then average the
   [Gc.minor_words] delta over a fixed number of runs.  The closures are
   deterministic, so this is reproducible to the word across machines —
   unlike the bechamel OLS estimate, whose intercept noise on identical
   code exceeds any slack a regression gate could reasonably grant.
   A fresh set of bodies (fresh warm state) keeps the measurement
   independent of how many iterations the timing pass happened to run. *)
let direct_minor_words () =
  List.map
    (fun (name, fn) ->
      for _ = 1 to 3 do fn () done;
      let runs = 10 in
      let before = Gc.minor_words () in
      for _ = 1 to runs do fn () done;
      let after = Gc.minor_words () in
      ("rthv " ^ name, (after -. before) /. float_of_int runs))
    (micro_bodies ())

let micro () =
  banner "Bechamel micro-benchmarks";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"rthv" ~fmt:"%s %s" (micro_tests ()))
  in
  let times = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let allocs = direct_minor_words () in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | None -> None
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ per_run ] -> Some per_run
        | Some _ | None -> None)
  in
  let rows = Hashtbl.fold (fun name _ acc -> name :: acc) times [] in
  Format.fprintf ppf "  %-48s %12s  %s@." "" "ns/run" "minor words/run";
  List.iter
    (fun name ->
      match (estimate times name, List.assoc_opt name allocs) with
      | Some ns, words ->
          let words = Option.value words ~default:Float.nan in
          Format.fprintf ppf "  %-48s %12.1f  %15.1f@." name ns words;
          json_micro :=
            Json.Obj
              [
                ("name", Json.String name);
                ("ns_per_run", Json.Float ns);
                ("minor_words_per_run", Json.Float words);
              ]
            :: !json_micro
      | None, _ -> Format.fprintf ppf "  %-48s (no estimate)@." name)
    (List.sort compare rows);
  (* Derived sink-overhead ratios: how much a 200-IRQ run slows down under
     each instrumentation path, relative to the uninstrumented monitored
     run.  The ns column is the time ratio, the words column the
     allocation ratio — both dimensionless, both gated by diff.exe like
     any other row. *)
  let lookup name = (estimate times name, List.assoc_opt name allocs) in
  let ratio_row label num den =
    match (lookup num, lookup den) with
    | (Some n_ns, Some n_w), (Some d_ns, Some d_w) when d_ns > 0. && d_w > 0.
      ->
        let ns = n_ns /. d_ns and words = n_w /. d_w in
        Format.fprintf ppf "  %-48s %12.2f  %15.2f@." label ns words;
        json_micro :=
          Json.Obj
            [
              ("name", Json.String label);
              ("ns_per_run", Json.Float ns);
              ("minor_words_per_run", Json.Float words);
            ]
          :: !json_micro
    | _ -> Format.fprintf ppf "  %-48s (no estimate)@." label
  in
  let monitored = "rthv hypervisor sim, 200 IRQs (monitored)" in
  ratio_row "rthv sink_overhead_ratio (recorder/monitored)"
    "rthv hypervisor sim, 200 IRQs (recorder sink)" monitored;
  ratio_row "rthv sink_overhead_ratio (tracestore/monitored)"
    "rthv hypervisor sim, 200 IRQs (tracestore sink)" monitored

(* ------------------------------------------------------------------ *)
(* Phase profile: where the 15000-IRQ simulation spends its time       *)
(* ------------------------------------------------------------------ *)

(* One Figure-6-sized monitored run under the hierarchical profiler: the
   per-phase wall-clock locates the hot loop's cost centres and the
   per-phase minor words are exactly reproducible (the simulation is
   deterministic and the profiler subtracts its own clock boxing), so
   bench/diff.exe can gate them per phase. *)
let profile_section () =
  banner "Phase profile (15000-IRQ monitored simulation)";
  let interarrivals =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:15_000
  in
  let shaping = Config.Fixed_monitor (DF.d_min (Cycles.of_us 1544)) in
  let prof = Rthv_obs.Prof.create () in
  Rthv_obs.Prof.with_profiler prof (fun () ->
      let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
      Hyp_sim.run sim);
  Format.fprintf ppf "%a" Rthv_obs.Prof.pp_table prof;
  json_profile :=
    List.rev_append
      (List.rev_map
         (fun (r : Rthv_obs.Prof.row) ->
           Json.Obj
             [
               ("path", Json.String r.Rthv_obs.Prof.r_path);
               ("calls", Json.Int r.Rthv_obs.Prof.r_calls);
               ("total_ns", Json.Float r.Rthv_obs.Prof.r_total_ns);
               ("self_ns", Json.Float r.Rthv_obs.Prof.r_self_ns);
               ("words", Json.Float r.Rthv_obs.Prof.r_words);
               ("self_words", Json.Float r.Rthv_obs.Prof.r_self_words);
             ])
         (Rthv_obs.Prof.rows prof))
      !json_profile

(* ------------------------------------------------------------------ *)
(* Fast-forward engine: step vs event-compressed wall-clock            *)
(* ------------------------------------------------------------------ *)

(* Wall-clock and exact per-run allocation of the Figure-6-sized run under
   both engine modes, plus a 1M-IRQ streaming run (retain=false: no record
   accumulation) that must complete within a small wall-clock budget.  The
   same workload generator and shaping as the bechamel 15k row, so the
   numbers anchor against the micro section.  RTHV_1M_BUDGET_S (seconds,
   float) turns the 1M row into a hard gate for CI smoke runs. *)
let ff_timed runs f =
  f ();
  (* warm *)
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do f () done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  (dt /. float_of_int runs *. 1e9, dw /. float_of_int runs)

let json_fastforward : (string * Json.t) list ref = ref []

let fastforward () =
  banner "Fast-forward engine: step vs event-compressed";
  let interarrivals_15k =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:15_000
  in
  let shaping = Config.Fixed_monitor (DF.d_min (Cycles.of_us 1544)) in
  let config_15k = Params.config ~interarrivals:interarrivals_15k ~shaping in
  let run_mode mode () =
    let sim = Hyp_sim.create ~mode config_15k in
    Hyp_sim.run sim
  in
  let step_ns, step_w = ff_timed 20 (run_mode Rthv_engine.Fast_forward.Step) in
  let ff_ns, ff_w =
    ff_timed 20 (run_mode Rthv_engine.Fast_forward.Fast_forward)
  in
  let speedup = if ff_ns > 0. then step_ns /. ff_ns else Float.nan in
  Format.fprintf ppf "  %-40s %12s  %s@." "" "ns/run" "minor words/run";
  Format.fprintf ppf "  %-40s %12.0f  %15.0f@." "15k IRQs, step" step_ns step_w;
  Format.fprintf ppf "  %-40s %12.0f  %15.0f@." "15k IRQs, fast-forward" ff_ns
    ff_w;
  Format.fprintf ppf "  step/ff speedup: %.2fx@." speedup;
  (* 1M IRQs, streaming: the scale target.  retain=false drops per-IRQ
     record retention (stats and traces are unaffected), so the run is
     O(live events) in memory however long the workload. *)
  let interarrivals_1m =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:1_000_000
  in
  let config_1m = Params.config ~interarrivals:interarrivals_1m ~shaping in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let sim = Hyp_sim.create ~retain:false config_1m in
  Hyp_sim.run sim;
  let wall_s = Unix.gettimeofday () -. t0 in
  let words_1m = Gc.minor_words () -. w0 in
  let completed = (Hyp_sim.stats sim).Hyp_sim.completed_irqs in
  Format.fprintf ppf "  1M IRQs, fast-forward (retain=false): %.2fs wall \
                      (%.0f ns/IRQ, %d completed)@."
    wall_s
    (wall_s *. 1e9 /. float_of_int completed)
    completed;
  (match Sys.getenv_opt "RTHV_1M_BUDGET_S" with
  | Some budget -> (
      match float_of_string_opt budget with
      | Some b when wall_s > b ->
          Format.fprintf ppf
            "  ERROR: 1M-IRQ run took %.2fs, budget RTHV_1M_BUDGET_S=%.2fs@."
            wall_s b;
          exit 1
      | Some b -> Format.fprintf ppf "  within budget (%.2fs <= %.2fs)@." wall_s b
      | None -> ())
  | None -> ());
  json_fastforward :=
    [
      ( "rows",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "15k step");
                ("ns_per_run", Json.Float step_ns);
                ("minor_words_per_run", Json.Float step_w);
              ];
            Json.Obj
              [
                ("name", Json.String "15k ff");
                ("ns_per_run", Json.Float ff_ns);
                ("minor_words_per_run", Json.Float ff_w);
              ];
            Json.Obj
              [
                ("name", Json.String "1m ff retain=false");
                ("ns_per_run", Json.Float (wall_s *. 1e9));
                ("minor_words_per_run", Json.Float words_1m);
              ];
          ] );
      ("speedup_step_over_ff", Json.Float speedup);
      ("wall_1m_s", Json.Float wall_s);
      ("completed_1m", Json.Int completed);
    ]

(* ------------------------------------------------------------------ *)
(* Sweep engine wall-clock: sequential vs sharded Figure-6 grid        *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let fig6_fingerprint results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Format.asprintf "%a" Fig6.print r ^ Fig6.histogram_csv r))
    results;
  Buffer.contents buf

let sweep () =
  banner "Sweep engine: sequential vs sharded (Figure 6 grid, 9 runs)";
  let jobs = Par.default_jobs () in
  let pool = Par.create ~jobs () in
  let effective = Par.effective_jobs pool in
  let seq, seq_s = time (fun () -> Fig6.run_all ~pool:Par.sequential ()) in
  let par, par_s = time (fun () -> Fig6.run_all ~pool ()) in
  let identical = String.equal (fig6_fingerprint seq) (fig6_fingerprint par) in
  let speedup = if par_s > 0. then seq_s /. par_s else Float.nan in
  Format.fprintf ppf
    "  jobs=1: %.2fs   jobs=%d (effective %d): %.2fs   speedup: %.2fx   \
     byte-identical: %b@."
    seq_s jobs effective par_s speedup identical;
  if not identical then begin
    Format.fprintf ppf
      "  ERROR: parallel results differ from sequential results@.";
    exit 1
  end;
  if effective <= 1 then
    Format.fprintf ppf
      "  note: single schedulable core — pool runs the sequential path, \
       speedup is noise around 1.0x@."
  else if speedup < 1. then
    Format.fprintf ppf
      "  WARNING: parallel sweep slower than sequential (%.2fx)@." speedup;
  json_sweep :=
    ( "fig6",
      Json.Obj
        [
          ("jobs", Json.Int jobs);
          ("effective_jobs", Json.Int effective);
          ("seq_s", Json.Float seq_s);
          ("par_s", Json.Float par_s);
          ("speedup", Json.Float speedup);
          ("identical", Json.Bool identical);
        ] )
    :: !json_sweep

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig3", fig3);
    ("fig6a", fig6 Fig6.Unmonitored);
    ("fig6b", fig6 Fig6.Monitored);
    ("fig6c", fig6 Fig6.Monitored_conforming);
    ("fig7", fig7);
    ("overhead", overhead);
    ("analysis", analysis);
    ("ablation", ablation);
    ("multi", multi);
    ("robustness", robustness);
    ("micro", micro);
    ("profile", profile_section);
    ("fastforward", fastforward);
    ("sweep", sweep);
  ]

let usage () =
  Format.fprintf ppf
    "usage: bench [section ...] [--jobs N] [--json FILE]@.sections: %s all@."
    (String.concat " " (List.map fst sections));
  exit 1

let () =
  let json_file = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            Par.set_default_jobs n;
            parse_args acc rest
        | _ ->
            Format.fprintf ppf "--jobs expects a positive integer, got %s@." n;
            exit 1)
    | [ "--jobs" ] | [ "--json" ] -> usage ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse_args acc rest
    | arg :: rest -> parse_args (arg :: acc) rest
  in
  let args = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with
    | _ :: _ when not (List.mem "all" args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.fprintf ppf "unknown section %s (available: %s)@." name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested;
  match !json_file with
  | None -> ()
  | Some file ->
      let doc =
        Json.Obj
          [
            ("schema", Json.String "rthv-bench/1");
            ("jobs", Json.Int (Par.default_jobs ()));
            ("micro", Json.List (List.rev !json_micro));
            ("profile", Json.List (List.rev !json_profile));
            ("fastforward", Json.Obj !json_fastforward);
            ("sweep", Json.Obj (List.rev !json_sweep));
          ]
      in
      let oc = open_out file in
      output_string oc (Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Format.fprintf ppf "@.wrote %s@." file
