(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6 and Appendix A), plus ablations over the design
   choices called out in DESIGN.md and Bechamel micro-benchmarks of the hot
   paths.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: fig3 fig6a fig6b fig6c fig7 overhead analysis ablation multi
   robustness micro all (default: all). *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Monitor = Rthv_core.Monitor
module DF = Rthv_analysis.Distance_fn
module BW = Rthv_analysis.Busy_window
module AC = Rthv_analysis.Arrival_curve
module Gen = Rthv_workload.Gen
module Summary = Rthv_stats.Summary
module Fig6 = Rthv_experiments.Fig6
module Fig7 = Rthv_experiments.Fig7
module Overhead = Rthv_experiments.Overhead
module Analysis_tables = Rthv_experiments.Analysis_tables
module Params = Rthv_experiments.Params

let ppf = Format.std_formatter

let banner title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure 6: latency histograms, 15000 IRQs                            *)
(* ------------------------------------------------------------------ *)

let fig6 scenario () =
  banner
    (Printf.sprintf "%s  [paper: Figure 6]" (Fig6.scenario_name scenario));
  let result = Fig6.run scenario in
  Fig6.print ppf result

(* ------------------------------------------------------------------ *)
(* Figure 7: ECU trace with self-learning monitor                      *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  banner "Self-learning monitor on the ECU trace  [paper: Figure 7]";
  let results = Fig7.run_all () in
  List.iter (Fig7.print ppf) results;
  Format.fprintf ppf "@.Average IRQ latency over the event index (Figure 7):@.";
  let glyphs = [ 'a'; 'b'; 'c'; 'd' ] in
  let plots =
    List.map2
      (fun r glyph ->
        Rthv_stats.Ascii_plot.series ~label:r.Fig7.label ~glyph
          (List.map (fun (i, v) -> (float_of_int i, v)) r.Fig7.series))
      results glyphs
  in
  Rthv_stats.Ascii_plot.render ~x_label:"IRQ event index"
    ~y_label:"avg latency (us, 500-event window)" ppf plots;
  Format.fprintf ppf "@.Running-average latency series (us):@.";
  Fig7.print_series ppf results;
  Format.fprintf ppf
    "@.Paper's run-phase averages for comparison: a) ~120us, b) ~300us, c) \
     ~900us, d) ~1600us.@."

(* ------------------------------------------------------------------ *)
(* Section 6.2: overhead table                                         *)
(* ------------------------------------------------------------------ *)

let overhead () =
  banner "Memory and runtime overhead  [paper: Section 6.2]";
  Overhead.print ppf (Overhead.run ());
  Format.fprintf ppf
    "Note: the paper reports ~10%% added context switches for its (unstated) \
     C_BH;@.with C_BH = 50us the interposition rate per slot switch is \
     higher here — the@.increase scales linearly with U_IRQ, as the per-load \
     rows show.@."

(* ------------------------------------------------------------------ *)
(* Analysis tables: equations (11)-(16) vs simulation                  *)
(* ------------------------------------------------------------------ *)

let analysis () =
  banner "Worst-case latency analysis vs simulation  [paper: Sections 4-5]";
  Analysis_tables.print ppf (Analysis_tables.compute_all ())

(* ------------------------------------------------------------------ *)
(* Ablations over design choices (DESIGN.md section 5)                 *)
(* ------------------------------------------------------------------ *)

let ablation () =
  banner "Ablations (conforming arrivals, U_IRQ = 10%)";
  let module Ablation = Rthv_experiments.Ablation in
  let d_min = Params.mean_for_load 0.10 in
  let section title variants =
    Format.fprintf ppf "%s:@." title;
    Ablation.print ppf (Ablation.run ~d_min variants)
  in
  section "interposed handling semantics"
    (Ablation.boundary_variants ~d_min);
  section "context-switch cost sensitivity (monitored)"
    (Ablation.ctx_cost_variants ~d_min [ 0.0; 0.5; 1.0; 2.0 ]);
  section "monitor granularity (same arrivals, l-entry envelope)"
    (Ablation.monitor_depth_variants ~d_min [ 1; 3; 5 ]);
  Format.fprintf ppf
    "shaping mechanism on bursty arrivals (equal long-term rate):@.";
  Ablation.print ppf (Ablation.shaper_comparison ~d_min ());
  (* Sensitivity: what baseline TDMA cycle would match interposition's
     latency, and what switch rate that implies (Section 1's motivation). *)
  let module Sensitivity = Rthv_analysis.Sensitivity in
  let costs = Rthv_analysis.Irq_latency.costs_of_platform Params.platform in
  let query =
    Sensitivity.make
      ~tdma:(Rthv_core.Tdma.interference Params.tdma ~partition:1)
      ~costs ~c_th:(Cycles.of_us Params.c_th_us) ()
  in
  let c_bh = Cycles.of_us Params.c_bh_us in
  (match Sensitivity.interposed_latency query ~c_bh ~d_min with
  | None -> ()
  | Some budget -> (
      Format.fprintf ppf
        "baseline-TDMA equivalent of interposition (latency budget %a):@."
        Cycles.pp budget;
      match
        Sensitivity.baseline_cycle_for_latency query ~c_bh ~d_min
          ~slot_fraction:(6. /. 14.) ~budget
      with
      | None -> Format.fprintf ppf "  no TDMA cycle achieves it@."
      | Some cycle ->
          Format.fprintf ppf
            "  requires T_TDMA <= %a, i.e. %.0f partition switches/second \
             (vs %.0f/s at 14ms)@."
            Cycles.pp cycle
            (Sensitivity.switch_rate_per_second ~cycle ~partitions:3)
            (Sensitivity.switch_rate_per_second ~cycle:(Cycles.of_us 14_000)
               ~partitions:3)))

(* ------------------------------------------------------------------ *)
(* Figure 3 quantified: latency over arrival phase                     *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  banner "Latency profile over the TDMA cycle  [paper: Figure 3/5 illustration]";
  let results =
    [
      Rthv_experiments.Phase_sweep.run ~monitored:false ();
      Rthv_experiments.Phase_sweep.run ~monitored:true ();
    ]
  in
  Rthv_experiments.Phase_sweep.print ppf results

(* ------------------------------------------------------------------ *)
(* Multi-source scalability (beyond the paper)                         *)
(* ------------------------------------------------------------------ *)

let multi () =
  banner "Multi-source scalability (constant 10% total interposed load)";
  let rows = Rthv_experiments.Multi_source.sweep [ 1; 2; 4; 8 ] in
  Rthv_experiments.Multi_source.print ppf rows

let robustness () =
  banner "Seed robustness of the Figure-6 averages";
  Rthv_experiments.Robustness.print ppf
    (Rthv_experiments.Robustness.run_all ())

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let monitor_check =
    Test.make ~name:"monitor.check (l=5)"
      (Staged.stage (fun () ->
           let m =
             Monitor.fixed (DF.of_entries [| 100; 200; 300; 400; 500 |])
           in
           for i = 0 to 99 do
             if Monitor.check m (i * 600) then Monitor.admit m (i * 600)
           done))
  in
  let event_queue =
    Test.make ~name:"event_queue push+pop x100"
      (Staged.stage (fun () ->
           let q = Rthv_engine.Event_queue.create () in
           for i = 0 to 99 do
             Rthv_engine.Event_queue.push q ~time:(i * 7919 mod 1000) i
           done;
           while not (Rthv_engine.Event_queue.is_empty q) do
             ignore (Rthv_engine.Event_queue.pop q)
           done))
  in
  let busy_window =
    let curve = AC.sporadic ~d_min_us:1544 in
    Test.make ~name:"busy-window fixed point (eq. 11)"
      (Staged.stage (fun () ->
           let tdma =
             Rthv_analysis.Tdma_interference.make ~cycle:(Cycles.of_us 14_000)
               ~slot:(Cycles.of_us 6_000)
           in
           let interference dt =
             Rthv_analysis.Tdma_interference.interference tdma dt
             + (AC.eta_plus curve dt * Cycles.of_us 5)
           in
           ignore
             (BW.response_time ~wcet:(Cycles.of_us 50)
                ~delta:(AC.delta_min curve) ~interference ())))
  in
  let learner =
    Test.make ~name:"delta-learner observe x1000 (Alg. 1)"
      (Staged.stage (fun () ->
           let l = Rthv_core.Delta_learner.create ~l:5 in
           for i = 0 to 999 do
             Rthv_core.Delta_learner.observe l (i * 321)
           done))
  in
  let interarrivals =
    Gen.exponential ~seed:1 ~mean:(Cycles.of_us 1544) ~count:200
  in
  let shaping = Config.Fixed_monitor (DF.d_min (Cycles.of_us 1544)) in
  let sim_throughput =
    Test.make ~name:"hypervisor sim, 200 IRQs (monitored)"
      (Staged.stage (fun () ->
           let sim = Hyp_sim.create (Params.config ~interarrivals ~shaping) in
           Hyp_sim.run sim))
  in
  (* The zero-cost-when-disabled claim for the lib/obs sink: the guarded
     call sites reduce to one flag read per event when no sink is
     installed, and the same simulation under a recorder sink shows the
     full price of live metrics. *)
  let sim_observed =
    Test.make ~name:"hypervisor sim, 200 IRQs (recorder sink)"
      (Staged.stage (fun () ->
           let recorder = Rthv_obs.Recorder.create () in
           Rthv_obs.Sink.with_sink (Rthv_obs.Recorder.sink recorder)
             (fun () ->
               let sim =
                 Hyp_sim.create (Params.config ~interarrivals ~shaping)
               in
               Hyp_sim.run sim)))
  in
  let sink_disabled =
    Test.make ~name:"obs guarded incr x1000 (no sink)"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             if Rthv_obs.Sink.active () then
               Rthv_obs.Sink.incr "bench_ops_total" Rthv_obs.Labels.empty 1
           done))
  in
  let sink_recorder =
    let recorder = Rthv_obs.Recorder.create () in
    Test.make ~name:"obs guarded incr x1000 (recorder)"
      (Staged.stage (fun () ->
           Rthv_obs.Sink.with_sink (Rthv_obs.Recorder.sink recorder)
             (fun () ->
               for _ = 1 to 1000 do
                 if Rthv_obs.Sink.active () then
                   Rthv_obs.Sink.incr "bench_ops_total"
                     Rthv_obs.Labels.empty 1
               done)))
  in
  [
    monitor_check;
    event_queue;
    busy_window;
    learner;
    sim_throughput;
    sim_observed;
    sink_disabled;
    sink_recorder;
  ]

let micro () =
  banner "Bechamel micro-benchmarks";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"rthv" ~fmt:"%s %s" (micro_tests ()))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ per_run ] ->
          Format.fprintf ppf "  %-48s %12.1f ns/run@." name per_run
      | Some _ | None -> Format.fprintf ppf "  %-48s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig3", fig3);
    ("fig6a", fig6 Fig6.Unmonitored);
    ("fig6b", fig6 Fig6.Monitored);
    ("fig6c", fig6 Fig6.Monitored_conforming);
    ("fig7", fig7);
    ("overhead", overhead);
    ("analysis", analysis);
    ("ablation", ablation);
    ("multi", multi);
    ("robustness", robustness);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) when not (List.mem "all" args) -> args
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.fprintf ppf "unknown section %s (available: %s)@." name
            (String.concat " " (List.map fst sections));
          exit 1)
    requested
