(* Regenerate the golden rows for test/test_golden.ml.

   Runs every canonical scenario through the *step* (reference) engine and
   prints one OCaml record literal per scenario, in the exact format the
   golden table expects.  Use after an intentional behaviour change:

     dune exec bench/gen_golden.exe

   then paste the rows over the [goldens] list.  The fast-forward engine
   must reproduce the same rows byte for byte — the golden suite checks
   both modes against the same digests, so regenerating from step mode
   never masks a mode divergence. *)

module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Irq_record = Rthv_core.Irq_record
module Scenarios = Rthv_check.Scenarios

let serialize_record (r : Irq_record.t) =
  Printf.sprintf "%d|%s|%d|%d|%d|%d|%s|%d" r.Irq_record.irq r.Irq_record.source
    r.Irq_record.line r.Irq_record.arrival r.Irq_record.top_start
    r.Irq_record.top_end
    (Irq_record.classification_name r.Irq_record.classification)
    r.Irq_record.completion

let digest s = Digest.to_hex (Digest.string s)

let array_lit a =
  "[|" ^ String.concat "; " (Array.to_list (Array.map string_of_int a)) ^ "|]"

let () =
  List.iter
    (fun (name, build) ->
      let config = build () in
      let trace = Hyp_trace.create ~capacity:(1 lsl 20) () in
      let sim =
        Hyp_sim.create ~trace ~mode:Rthv_engine.Fast_forward.Step config
      in
      Hyp_sim.run sim;
      let s = Hyp_sim.stats sim in
      let records = Hyp_sim.records sim in
      Printf.printf
        "    (%S, { g_completed = %d; g_direct = %d; g_interposed = %d; \
         g_delayed = %d; g_slot_switches = %d; g_interposition_switches = \
         %d; g_interpositions_started = %d; g_boundary_crossings = %d; \
         g_bh_boundary_deferrals = %d; g_monitor_checks = %d; g_admissions \
         = %d; g_denials = %d; g_coalesced = %d; g_stolen_total = %s; \
         g_stolen_slot_max = %s; g_sim_time = %d; g_records_digest = %S; \
         g_trace_digest = %S; g_trace_len = %d });\n"
        name s.Hyp_sim.completed_irqs s.Hyp_sim.direct s.Hyp_sim.interposed
        s.Hyp_sim.delayed s.Hyp_sim.slot_switches
        s.Hyp_sim.interposition_switches s.Hyp_sim.interpositions_started
        s.Hyp_sim.boundary_crossings s.Hyp_sim.bh_boundary_deferrals
        s.Hyp_sim.monitor_checks s.Hyp_sim.admissions s.Hyp_sim.denials
        s.Hyp_sim.coalesced_irqs
        (array_lit s.Hyp_sim.stolen_total)
        (array_lit s.Hyp_sim.stolen_slot_max)
        s.Hyp_sim.sim_time
        (digest (String.concat "\n" (List.map serialize_record records)))
        (digest (Format.asprintf "%a" Hyp_trace.pp trace))
        (List.length (Hyp_trace.to_list trace)))
    Scenarios.all
