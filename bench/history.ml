(* Append a bench run to the performance-trajectory log and print the
   recent trend.

   Usage:  dune exec bench/history.exe -- BENCH.json HISTORY.jsonl
             [--label L] [--trend NAME]

   Each invocation appends one JSONL line (schema rthv-bench-history/1)
   summarising the rthv-bench/1 document: the label (CI passes the commit
   SHA), job count, and the per-benchmark ns/words pairs of the micro and
   profile sections.  The file is append-only — every CI run adds a point,
   so the trajectory of any benchmark can be recovered with jq.

   After appending, the recent trend of --trend (default: the 15000-IRQ
   simulation bench) is printed as label/ns pairs over the last runs, so
   the CI log itself shows the trajectory without downloading artifacts. *)

module Json = Rthv_obs.Json

let fail fmt = Format.kasprintf (fun s -> prerr_endline s; exit 2) fmt

let member name = function
  | Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let number = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let string_field name doc =
  match member name doc with Some (Json.String s) -> Some s | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* One {name: {ns, words}} object per section row, keyed as diff.exe keys
   them so history entries and diff output use the same names. *)
let section_obj ~key_field ~ns_field ~words_field rows =
  Json.Obj
    (List.filter_map
       (fun r ->
         match
           (string_field key_field r, number (member ns_field r),
            number (member words_field r))
         with
         | Some name, Some ns, Some words ->
             Some
               ( name,
                 Json.Obj
                   [ ("ns", Json.Float ns); ("words", Json.Float words) ] )
         | _ -> None)
       rows)

let entry_of_bench ~label doc =
  (match string_field "schema" doc with
  | Some "rthv-bench/1" -> ()
  | Some other -> fail "unsupported bench schema %s" other
  | None -> fail "missing bench schema field");
  let rows field =
    match member field doc with Some (Json.List rows) -> rows | _ -> []
  in
  Json.Obj
    [
      ("schema", Json.String "rthv-bench-history/1");
      ("label", Json.String label);
      ( "jobs",
        match member "jobs" doc with Some (Json.Int n) -> Json.Int n | _ -> Json.Null );
      ( "micro",
        section_obj ~key_field:"name" ~ns_field:"ns_per_run"
          ~words_field:"minor_words_per_run" (rows "micro") );
      ( "profile",
        section_obj ~key_field:"path" ~ns_field:"total_ns"
          ~words_field:"words" (rows "profile") );
    ]

let history_entries path =
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read_file path)
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Json.parse line with Ok doc -> Some doc | Error _ -> None)

let print_trend entries name =
  let points =
    List.filter_map
      (fun e ->
        match member "micro" e with
        | Some micro -> (
            match number (member "ns" (Option.value ~default:Json.Null (member name micro))) with
            | Some ns ->
                Some (Option.value ~default:"?" (string_field "label" e), ns)
            | None -> None)
        | None -> None)
      entries
  in
  match points with
  | [] -> Printf.printf "no history for %S yet\n" name
  | _ ->
      let recent =
        let n = List.length points in
        if n <= 10 then points
        else List.filteri (fun i _ -> i >= n - 10) points
      in
      Printf.printf "trend of %s (last %d run(s)):\n" name
        (List.length recent);
      List.iter
        (fun (label, ns) -> Printf.printf "  %-12s %14.1f ns\n" label ns)
        recent

let () =
  let label = ref "local" in
  let trend = ref "rthv hypervisor sim, 15000 IRQs (monitored)" in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--label" :: v :: rest ->
        label := v;
        parse rest
    | "--trend" :: v :: rest ->
        trend := v;
        parse rest
    | arg :: rest ->
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let bench_path, history_path =
    match List.rev !files with
    | [ b; h ] -> (b, h)
    | _ ->
        fail
          "usage: history BENCH.json HISTORY.jsonl [--label L] [--trend NAME]"
  in
  let doc =
    match Json.parse (read_file bench_path) with
    | Ok doc -> doc
    | Error e -> fail "%s: %s" bench_path e
  in
  let entry = entry_of_bench ~label:!label doc in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_path in
  output_string oc (Json.to_string entry);
  output_char oc '\n';
  close_out oc;
  let entries = history_entries history_path in
  Printf.printf "appended run %S to %s (%d entr%s)\n" !label history_path
    (List.length entries)
    (if List.length entries = 1 then "y" else "ies");
  print_trend entries !trend
