(* Appendix-A style scenario: a hypervisor partition receives IRQs following
   an automotive-ECU activation trace (CAN traffic).  The monitoring
   condition is not configured up front — the hypervisor *learns* it from
   the first 10 % of the trace (Algorithm 1) and caps it to an allowed load
   fraction (Algorithm 2) before entering the monitored run mode.  The
   configuration and its learning artefacts come from Rthv_check.Scenarios,
   shared with the linter and the tests.

   Run with:  dune exec examples/automotive_ecu.exe *)

module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Monitor = Rthv_core.Monitor
module DF = Rthv_analysis.Distance_fn
module Ecu_trace = Rthv_workload.Ecu_trace
module Scenarios = Rthv_check.Scenarios
module Series = Rthv_stats.Series

let () =
  (* 1. The activation trace (a synthetic stand-in for the paper's measured
     ECU trace; see DESIGN.md for the substitution argument) plus the
     offline learning artefacts: the envelope recorded over the learning
     prefix and the 25 % load cap handed to Algorithm 2. *)
  let trace = Ecu_trace.generate ~seed:42 Ecu_trace.default_profile in
  Format.printf "trace: %a@." Ecu_trace.pp_stats (Ecu_trace.stats trace);
  let parts = Scenarios.automotive_parts () in
  let learn_events = parts.Scenarios.auto_learn_events in
  Format.printf "recorded envelope: %a@." DF.pp parts.Scenarios.auto_recorded;
  Format.printf "load cap (25%%)  : %a@." DF.pp parts.Scenarios.auto_bound;

  (* 2. Run with the self-learning monitor. *)
  let sim = Hyp_sim.create parts.Scenarios.auto_config in
  Hyp_sim.run sim;

  (* 3. The learned-and-bounded condition the monitor settled on. *)
  (match Hyp_sim.monitor sim ~source:"can_rx" with
  | Some m -> (
      match Monitor.condition m with
      | Some fn -> Format.printf "active condition : %a@." DF.pp fn
      | None -> Format.printf "monitor still learning?!@.")
  | None -> ());

  (* 4. Figure-7-style view: running average latency over the event index,
     dropping sharply when the run phase starts at event %d. *)
  let latencies =
    Array.of_list
      (List.map Irq_record.latency_us (Hyp_sim.records sim))
  in
  let running = Series.running_mean ~window:500 latencies in
  Format.printf "@.running average IRQ latency (learn phase ends at %d):@."
    learn_events;
  List.iter
    (fun (i, v) -> Format.printf "  event %5d: %8.1fus@." i v)
    (Series.downsample ~every:1000 running);
  let n = Array.length latencies in
  Format.printf "@.learn-phase avg: %8.1fus@."
    (Series.segment_mean latencies ~lo:0 ~hi:learn_events);
  Format.printf "run-phase avg  : %8.1fus@."
    (Series.segment_mean latencies ~lo:learn_events ~hi:n);
  let stats = Hyp_sim.stats sim in
  Format.printf "classes: %d direct, %d interposed, %d delayed@."
    stats.Hyp_sim.direct stats.Hyp_sim.interposed stats.Hyp_sim.delayed
