(* Quickstart: build a two-partition hypervisor system, fire IRQs at it, and
   compare interrupt latencies with and without monitoring-based interposed
   handling.  The configuration itself lives in Rthv_check.Scenarios so the
   linter, the tests and this example stay in sync.

   Run with:  dune exec examples/quickstart.exe *)

module Cycles = Rthv_engine.Cycles
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Distance_fn = Rthv_analysis.Distance_fn
module Scenarios = Rthv_check.Scenarios
module Summary = Rthv_stats.Summary

let () =
  (* 1. The shared quickstart scenario: two 5 ms partitions; "io" subscribes
     a NIC-like source with exponential interarrivals (mean 2 ms). *)
  let d_min = Scenarios.quickstart_d_min in

  let run config =
    let sim = Hyp_sim.create config in
    Hyp_sim.run sim;
    let latencies =
      List.map Irq_record.latency_us (Hyp_sim.records sim)
    in
    (Summary.of_list latencies, Hyp_sim.stats sim)
  in

  (* 2. Baseline: the original top handler — bottom handlers only run in the
     subscriber's own slot. *)
  let baseline, baseline_stats = run (Scenarios.quickstart ~monitored:false ()) in

  (* 3. Monitored: bottom handlers may run in foreign slots, shaped by a
     d_min monitor so other partitions see bounded interference. *)
  let monitored, monitored_stats = run (Scenarios.quickstart ()) in

  Format.printf "baseline : avg %7.1fus  p95 %7.1fus  worst %7.1fus@."
    baseline.Summary.mean baseline.Summary.p95 baseline.Summary.max;
  Format.printf "monitored: avg %7.1fus  p95 %7.1fus  worst %7.1fus@."
    monitored.Summary.mean monitored.Summary.p95 monitored.Summary.max;
  Format.printf "IRQ handling: baseline %d direct / %d delayed;@."
    baseline_stats.Hyp_sim.direct baseline_stats.Hyp_sim.delayed;
  Format.printf "              monitored %d direct / %d interposed / %d delayed@."
    monitored_stats.Hyp_sim.direct monitored_stats.Hyp_sim.interposed
    monitored_stats.Hyp_sim.delayed;
  Format.printf "average improvement: %.1fx@."
    (baseline.Summary.mean /. monitored.Summary.mean);

  (* 4. The price: bounded interference on the "control" partition.  The
     hypervisor enforces it; equation (14) predicts it. *)
  let c_bh_eff =
    Rthv_check.Lint.c_bh_eff ~platform:Rthv_hw.Platform.arm926ejs_200mhz
      ~c_bh:(Cycles.of_us 40)
  in
  let bound =
    Rthv_analysis.Independence.max_slot_loss ~monitor:(Distance_fn.d_min d_min)
      ~c_bh_eff ~slot:(Cycles.of_us 5_000)
  in
  Format.printf
    "interference on 'control': measured max %.1fus per slot, bound %.1fus@."
    (Cycles.to_us monitored_stats.Hyp_sim.stolen_slot_max.(0))
    (Cycles.to_us bound)
