(* The integrator's design flow, end to end.

   Requirement: a CAN receive interrupt subscribed by partition "comms" must
   complete its bottom handler within 300 us, on a system whose other
   partitions run hard real-time task sets that must keep their deadlines.

   Flow:
     1. check that the CAN traffic's native minimum distance (2 ms between
        frames, from the bus configuration) is enough for the latency
        budget (Sensitivity gives the smallest workable d_min), then grant
        exactly the native distance — the loosest monitoring condition that
        matches the traffic, i.e. the smallest interference on everyone
        else;
     2. check every other partition's schedulability under the granted
        interference (Certificate, equations (2) + (14));
     3. simulate the full system on conforming worst-ish traffic and verify
        both the latency requirement and the certificate's budgets hold in
        execution;
     4. harden the design with the post-paper policy layers — re-express
        the schedule as a weighted slot plan and compose the monitor with a
        burst-capping token bucket — then prove via the Bound dispatcher
        that the eq.-(16) verdict survives, re-lint the new configuration,
        and re-simulate.

   Run with:  dune exec examples/design_flow.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Tdma = Rthv_core.Tdma
module AC = Rthv_analysis.Arrival_curve
module Cert = Rthv_analysis.Certificate
module DF = Rthv_analysis.Distance_fn
module GS = Rthv_analysis.Guest_sched
module IL = Rthv_analysis.Irq_latency
module Sensitivity = Rthv_analysis.Sensitivity
module Task = Rthv_rtos.Task
module Gen = Rthv_workload.Gen
module Platform = Rthv_hw.Platform

let budget_us = 300
let c_th_us = 5
let c_bh_us = 60
let traffic_d_min_us = 2_000  (* CAN bus: at most one relevant frame per 2ms *)

let slot_us = [ ("flight", 5_000); ("comms", 4_000); ("logging", 3_000) ]

let tasks_of = function
  | "flight" ->
      [
        Task.spec ~name:"loop" ~period_us:24_000 ~wcet_us:1_500 ~priority:0 ();
        Task.spec ~name:"guidance" ~period_us:48_000 ~wcet_us:2_500 ~priority:1 ();
      ]
  | "logging" -> [ Task.spec ~name:"flush" ~period_us:48_000 ~wcet_us:3_000 () ]
  | _ -> []

let () =
  let costs = IL.costs_of_platform Platform.arm926ejs_200mhz in
  let cycle_us = List.fold_left (fun a (_, s) -> a + s) 0 slot_us in
  let tdma = Tdma.of_us (Array.of_list (List.map snd slot_us)) in
  Format.printf "requirement: CAN bottom handler done within %dus \
                 (C_TH=%dus, C_BH=%dus, T_TDMA=%dus)@."
    budget_us c_th_us c_bh_us cycle_us;

  (* Step 1: does the traffic's native distance meet the budget?  Grant
     exactly that distance — looser would under-admit the traffic, tighter
     would inflict needless interference on the other partitions. *)
  let query =
    Sensitivity.make ~tdma:(Tdma.interference tdma ~partition:1) ~costs
      ~c_th:(Cycles.of_us c_th_us) ()
  in
  let floor_d_min =
    match
      Sensitivity.min_d_min_for_latency query ~c_bh:(Cycles.of_us c_bh_us)
        ~budget:(Cycles.of_us budget_us)
    with
    | Some d -> d
    | None -> failwith "no d_min meets the budget: reduce C_BH"
  in
  let d_min = Cycles.of_us traffic_d_min_us in
  if d_min < floor_d_min then failwith "CAN traffic too dense for the budget";
  Format.printf
    "step 1: latency needs d_min >= %a; traffic guarantees %a -> grant %a      (eq. 16 worst case %a)@."
    Cycles.pp floor_d_min Cycles.pp d_min Cycles.pp d_min Cycles.pp
    (Option.get
       (Sensitivity.interposed_latency query ~c_bh:(Cycles.of_us c_bh_us)
          ~d_min));

  (* Step 2: the independence certificate for all partitions. *)
  let c_bh_eff =
    IL.effective_bh costs
      {
        IL.name = "can_rx";
        arrival = AC.Sporadic { d_min };
        c_th = Cycles.of_us c_th_us;
        c_bh = Cycles.of_us c_bh_us;
      }
  in
  let cert =
    Cert.check ~cycle:(Cycles.of_us cycle_us) ~c_ctx:costs.IL.c_ctx
      ~partitions:
        (List.mapi
           (fun i (name, slot) ->
             {
               Cert.p_index = i;
               p_name = name;
               slot = Cycles.of_us slot;
               tasks = List.map GS.of_spec (tasks_of name);
             })
           slot_us)
      ~grants:
        [ { Cert.source_name = "can_rx"; monitor = DF.d_min d_min; c_bh_eff;
            subscriber = 1 } ]
  in
  Format.printf "step 2:@.%a" Cert.pp cert;
  if not cert.Cert.holds then exit 2;

  (* Step 3: simulate and verify. *)
  let partitions =
    List.map
      (fun (name, slot) ->
        Config.partition ~name ~slot_us:slot ~tasks:(tasks_of name) ())
      slot_us
  in
  let interarrivals =
    Gen.exponential_clamped ~seed:21 ~mean:d_min ~d_min ~count:4_000
  in
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"can_rx" ~line:0 ~subscriber:1 ~c_th_us
            ~c_bh_us ~interarrivals
            ~shaping:(Config.Fixed_monitor (DF.d_min d_min))
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;
  let worst =
    List.fold_left
      (fun acc r -> Cycles.max acc (Irq_record.latency r))
      0 (Hyp_sim.records sim)
  in
  let stats = Hyp_sim.stats sim in
  Format.printf
    "step 3: simulated %d IRQs — worst latency %a (budget %dus): %s@."
    stats.Hyp_sim.completed_irqs Cycles.pp worst budget_us
    (if worst <= Cycles.of_us budget_us then "REQUIREMENT MET" else "MISSED");
  List.iteri
    (fun i (name, _) ->
      let measured = stats.Hyp_sim.stolen_slot_max.(i) in
      let verdict = List.nth cert.Cert.verdicts i in
      Format.printf
        "        %-8s interference measured %a, certified budget %a %s@."
        name Cycles.pp measured Cycles.pp verdict.Cert.interference_budget
        (if measured <= verdict.Cert.interference_budget then "(ok)"
         else "(VIOLATED)"))
    slot_us;
  if worst > Cycles.of_us budget_us then exit 2;

  (* Step 4: the same requirement under the post-paper policy layers.  The
     schedule becomes a weighted slot plan (5:4:3 over the same 12 ms
     cycle — byte-identical slots, but now a first-class plan), and the
     grant is hardened to a composite monitor-AND-bucket whose bucket
     (capacity 1, refill d_min) is provably vacuous against the condition:
     bursts the condition would never admit are capped twice, yet the
     eq.-(16) per-instance bound is preserved. *)
  let shaping =
    Config.Monitor_and_bucket
      { fn = DF.d_min d_min; capacity = 1; refill = d_min }
  in
  let hardened =
    Config.make ~partitions
      ~plan:
        (Config.Weighted_plan
           { cycle = Cycles.of_us cycle_us; weights = [| 5; 4; 3 |] })
      ~sources:
        [
          Config.source ~name:"can_rx" ~line:0 ~subscriber:1 ~c_th_us
            ~c_bh_us ~interarrivals ~shaping ();
        ]
      ()
  in
  (* The analysis-side descriptor of the composite, through the same Bound
     dispatch the linter and the headroom gate use: the bucket must be
     vacuous, or interposed completions fall back to the baseline bound. *)
  let plan_cycle = Rthv_core.Slot_plan.cycle_length (Config.slot_plan hardened) in
  let policy = Rthv_check.Lint.bound_policy ~cycle:plan_cycle shaping in
  (match Rthv_analysis.Bound.per_instance_condition policy with
  | Some _ ->
      Format.printf
        "step 4: composite policy %a keeps the eq.-(16) per-instance bound@."
        Rthv_analysis.Bound.pp policy
  | None ->
      Format.printf
        "step 4: composite bucket binds — eq. (16) lost, redesign@.";
      exit 2);
  (* Re-lint: the new configuration must stay free of errors (the vacuous
     bucket is reported as an info-level RTHV014). *)
  let diags = Rthv_check.Lint.analyze hardened in
  List.iter
    (fun d -> Format.printf "        %a@." Rthv_check.Diagnostic.pp d)
    diags;
  if Rthv_check.Diagnostic.errors diags <> [] then exit 2;
  (* Re-simulate: same verdict as step 3, now under plan + composite. *)
  let sim4 = Hyp_sim.create hardened in
  Hyp_sim.run sim4;
  let worst4 =
    List.fold_left
      (fun acc r -> Cycles.max acc (Irq_record.latency r))
      0 (Hyp_sim.records sim4)
  in
  let stats4 = Hyp_sim.stats sim4 in
  Format.printf
    "        simulated %d IRQs under the hardened design — worst latency %a \
     (budget %dus): %s@."
    stats4.Hyp_sim.completed_irqs Cycles.pp worst4 budget_us
    (if worst4 <= Cycles.of_us budget_us then "REQUIREMENT MET" else "MISSED");
  Format.printf
    "        %d interposed of %d completed; admission checks %d@."
    stats4.Hyp_sim.interposed stats4.Hyp_sim.completed_irqs
    stats4.Hyp_sim.monitor_checks;
  if worst4 > Cycles.of_us budget_us then exit 2
