(* An ARINC653-style Integrated Modular Avionics scenario: four partitions of
   different criticality share one core under TDMA, each running periodic
   guest tasks.  Two interrupt sources (a sensor bus and a datalink) are
   subscribed by different partitions; the datalink uses monitored interposed
   handling.  The configuration lives in Rthv_check.Scenarios, shared with
   the linter and the tests.

   The example demonstrates the certification argument of the paper: grant a
   latency improvement to the datalink while *auditing* that every other
   partition's interference budget (equation (2)) still holds — both
   analytically (equation (14)) and as measured by the hypervisor.

   Run with:  dune exec examples/avionics_ima.exe *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Irq_record = Rthv_core.Irq_record
module Task = Rthv_rtos.Task
module Guest = Rthv_rtos.Guest
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Scenarios = Rthv_check.Scenarios
module Summary = Rthv_stats.Summary

let () =
  let d_min = Scenarios.avionics_d_min () in
  let c_bh_eff = Scenarios.avionics_c_bh_eff () in
  Format.printf "granted d_min for the datalink: %a (interference <= 3%%)@."
    Cycles.pp d_min;

  let config = Scenarios.avionics_ima () in
  let sim = Hyp_sim.create config in
  Hyp_sim.run sim;

  let records = Hyp_sim.records sim in
  let latency_of source =
    Summary.of_list
      (List.filter_map
         (fun r ->
           if r.Irq_record.source = source then
             Some (Irq_record.latency_us r)
           else None)
         records)
  in
  let sensor = latency_of "sensor_bus" and datalink = latency_of "datalink_rx" in
  Format.printf "sensor_bus  (delayed path) : avg %7.1fus  worst %8.1fus@."
    sensor.Summary.mean sensor.Summary.max;
  Format.printf "datalink_rx (interposed)   : avg %7.1fus  worst %8.1fus@."
    datalink.Summary.mean datalink.Summary.max;

  (* Independence audit: per-partition measured interference vs eq. (14). *)
  let stats = Hyp_sim.stats sim in
  Format.printf "@.independence audit (interference per slot, measured vs bound):@.";
  List.iteri
    (fun i (p : Config.partition) ->
      let bound =
        Independence.max_slot_loss ~monitor:(DF.d_min d_min) ~c_bh_eff
          ~slot:p.Config.slot
      in
      let measured = stats.Hyp_sim.stolen_slot_max.(i) in
      Format.printf "  %-10s measured %8.1fus  bound %8.1fus  %s@."
        p.Config.pname (Cycles.to_us measured) (Cycles.to_us bound)
        (if measured <= bound then "OK" else "VIOLATION"))
    config.Config.partitions;

  (* The integrator-facing artefact: a sufficient-temporal-independence
     certificate (equations (2) + (14) + guest schedulability), the analytic
     counterpart of the measured audit above. *)
  let module Cert = Rthv_analysis.Certificate in
  let module GS = Rthv_analysis.Guest_sched in
  let cert =
    Cert.check
      ~cycle:(Rthv_core.Tdma.cycle_length (Config.tdma config))
      ~c_ctx:Rthv_hw.Platform.(ctx_switch_cost config.Config.platform)
      ~partitions:
        (List.mapi
           (fun i (p : Config.partition) ->
             {
               Cert.p_index = i;
               p_name = p.Config.pname;
               slot = p.Config.slot;
               tasks = List.map GS.of_spec p.Config.tasks;
             })
           config.Config.partitions)
      ~grants:
        [
          {
            Cert.source_name = "datalink_rx";
            monitor = DF.d_min d_min;
            c_bh_eff;
            subscriber = 2;
          };
        ]
  in
  Format.printf "@.%a" Cert.pp cert;

  (* Guest-level check: the flight-control tasks kept their deadlines. *)
  let guest = Hyp_sim.guest sim 0 in
  let completions = Guest.take_completions guest in
  let worst_by task =
    List.fold_left
      (fun acc c ->
        if c.Task.job_task = task then max acc (Task.response_time c) else acc)
      0 completions
  in
  Format.printf "@.flight_ctl guest tasks (%d jobs completed):@."
    (List.length completions);
  List.iter
    (fun task ->
      Format.printf "  %-9s worst response %a@." task Cycles.pp (worst_by task))
    [ "attitude"; "actuator" ]
