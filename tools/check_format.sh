#!/bin/sh
# Source hygiene gate for CI: no tabs, no trailing whitespace, and a final
# newline in every OCaml source file and dune stanza.  Deliberately
# toolchain-free (no ocamlformat dependency) so it runs anywhere a POSIX
# shell does; it checks the invariants that break diffs and blame, not
# style preferences.
#
# Usage: tools/check_format.sh [ROOT]   (default: the repository root)

set -u

root=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
status=0

files=$(find "$root" \
  -name _build -prune -o -name .git -prune -o \
  \( -name '*.ml' -o -name '*.mli' -o -name 'dune' -o -name 'dune-project' \) \
  -type f -print | LC_ALL=C sort)

for f in $files; do
  if grep -n "$(printf '\t')" "$f" >/dev/null; then
    echo "$f: contains tab characters:" >&2
    grep -n "$(printf '\t')" "$f" | head -3 >&2
    status=1
  fi
  if grep -n ' $' "$f" >/dev/null; then
    echo "$f: trailing whitespace:" >&2
    grep -n ' $' "$f" | head -3 >&2
    status=1
  fi
  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | od -An -c | tr -d ' ')" != '\n' ]; then
    echo "$f: missing final newline" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "format check: $(echo "$files" | wc -l | tr -d ' ') files clean"
else
  echo "format check: FAILED" >&2
fi
exit $status
