(* The sweep engine's contract: parallel results are the same values, in
   the same order, as the sequential list functions — for any job count —
   plus deterministic exception propagation and safe nesting. *)

module Par = Rthv_par.Par

let pool4 = Par.create ~jobs:4 ()

let test_create_validation () =
  Alcotest.check_raises "jobs = 0 rejected"
    (Invalid_argument "Par.create: jobs must be >= 1") (fun () ->
      ignore (Par.create ~jobs:0 ()));
  Alcotest.(check int) "jobs recorded" 4 (Par.jobs pool4);
  Alcotest.(check int) "sequential pool" 1 (Par.jobs Par.sequential)

let test_derive_seed () =
  Alcotest.(check int) "seed + index" 45 (Par.derive_seed ~base:42 ~index:3);
  Alcotest.(check int) "index 0 is the base" 42
    (Par.derive_seed ~base:42 ~index:0)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty map" [] (Par.map ~pool:pool4 succ []);
  Alcotest.(check (list int)) "singleton map" [ 8 ]
    (Par.map ~pool:pool4 succ [ 7 ]);
  Alcotest.(check (list int)) "init 0" [] (Par.init ~pool:pool4 0 succ)

exception Task_failed of int

let test_exception_lowest_index () =
  (* Several tasks fail; the caller must see the lowest-index failure
     regardless of which domain hit it first. *)
  let f i _ = if i mod 3 = 2 then raise (Task_failed i) else i in
  match Par.mapi ~pool:pool4 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected Task_failed"
  | exception Task_failed i ->
      Alcotest.(check int) "lowest failing index wins" 2 i

let test_nested_sweep () =
  (* A task that itself sweeps must degrade to the sequential path (no
     domain explosion) and still compute the right thing. *)
  let inner n = Par.init ~pool:pool4 n (fun i -> i * i) in
  let got = Par.map ~pool:pool4 (fun n -> List.fold_left ( + ) 0 (inner n))
      [ 1; 5; 10; 20 ]
  in
  let expected =
    List.map
      (fun n -> List.fold_left ( + ) 0 (List.init n (fun i -> i * i)))
      [ 1; 5; 10; 20 ]
  in
  Alcotest.(check (list int)) "nested sweep correct" expected got

(* Properties: every combinator equals its sequential counterpart.  The
   task functions depend on both index and value so misordered slots or a
   skewed index partition cannot cancel out. *)

let gen_ints = QCheck2.Gen.(list_size (0 -- 64) (-1000 -- 1000))

let prop_mapi xs =
  let f i x = (i * 31) + x in
  Par.mapi ~pool:pool4 f xs = List.mapi f xs

let prop_map xs =
  let f x = (x * 7) - 3 in
  Par.map ~pool:pool4 f xs = List.map f xs

let prop_init n =
  let f i = (i * i) - (7 * i) in
  Par.init ~pool:pool4 n f = List.init n f

let prop_map_array xs =
  let a = Array.of_list xs in
  let f x = x lxor 0x55 in
  Par.map_array ~pool:pool4 f a = Array.map f a

let prop_map_reduce xs =
  (* Deliberately non-associative, non-commutative reduce: only the exact
     sequential fold order produces this value. *)
  let map x = x + 1 in
  let reduce acc y = (acc * 31) + y in
  Par.map_reduce ~pool:pool4 ~map ~reduce ~init:7 xs
  = List.fold_left (fun acc x -> reduce acc (map x)) 7 xs

let suite =
  [
    Alcotest.test_case "pool validation" `Quick test_create_validation;
    Alcotest.test_case "seed derivation" `Quick test_derive_seed;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "nested sweeps run sequentially" `Quick
      test_nested_sweep;
    Testutil.qtest "mapi = List.mapi at jobs=4" gen_ints prop_mapi;
    Testutil.qtest "map = List.map at jobs=4" gen_ints prop_map;
    Testutil.qtest "init = List.init at jobs=4" QCheck2.Gen.(0 -- 128)
      prop_init;
    Testutil.qtest "map_array = Array.map at jobs=4" gen_ints prop_map_array;
    Testutil.qtest "map_reduce = sequential fold at jobs=4" gen_ints
      prop_map_reduce;
  ]
