(* Per-IRQ causal spans: component decomposition, the attribution
   waterfalls fed by a live simulation, and bound headroom against the
   paper's analytic latency bounds. *)

module Obs = Rthv_obs
module Span = Obs.Span
module Sink = Obs.Sink
module Attribution = Obs.Attribution
module Registry = Obs.Registry
module Hyp_sim = Rthv_core.Hyp_sim
module Scenarios = Rthv_check.Scenarios
module Headroom = Rthv_check.Headroom

(* --- span decomposition -------------------------------------------------- *)

let span ?(cls = "interposed") () =
  {
    Span.sp_irq = 3;
    sp_line = 0;
    sp_source = "nic";
    sp_class = cls;
    sp_arrival = 100.0;
    sp_top_start = 102.5;
    sp_top_end = 107.5;
    sp_decision = 108.25;
    sp_bh_start = 120.0;
    sp_completion = 160.0;
  }

let test_components_sum_to_latency () =
  List.iter
    (fun cls ->
      let sp = span ~cls () in
      Alcotest.(check bool) "valid" true (Span.valid sp);
      let total =
        List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (Span.components sp)
      in
      Alcotest.(check (float 1e-9)) "sum = latency" (Span.latency sp) total;
      Alcotest.(check (float 1e-9)) "latency = completion - arrival" 60.0
        (Span.latency sp);
      Alcotest.(check (list string))
        "component order"
        [ "top_wait"; "top_handler"; "decision_wait"; Span.wait_component cls;
          "bottom_handler" ]
        (Span.component_names sp))
    [ "direct"; "interposed"; "delayed" ]

let test_invalid_span_detected () =
  let sp = { (span ()) with Span.sp_bh_start = 99.0 } in
  Alcotest.(check bool) "backwards timestamp invalid" false (Span.valid sp)

(* --- attribution over a live simulation ---------------------------------- *)

let test_attribution_collects_simulation () =
  let attr = Attribution.create () in
  let config = Scenarios.quickstart () in
  let sim = Hyp_sim.create config in
  Sink.with_sink (Attribution.sink attr) (fun () -> Hyp_sim.run sim);
  let stats = Hyp_sim.stats sim in
  Alcotest.(check int) "one span per completion"
    stats.Hyp_sim.completed_irqs (Attribution.total_spans attr);
  let rows = Attribution.rows attr in
  Alcotest.(check bool) "several classes" true (List.length rows >= 2);
  Alcotest.(check int) "row counts add up" stats.Hyp_sim.completed_irqs
    (List.fold_left (fun acc r -> acc + r.Attribution.r_count) 0 rows);
  List.iter
    (fun r ->
      let s = r.Attribution.r_latency in
      Alcotest.(check bool) "p50 <= p99 <= max" true
        (s.Attribution.st_p50 <= s.Attribution.st_p99 +. 1e-9
        && s.Attribution.st_p99 <= s.Attribution.st_max +. 1e-9);
      (* Linearity: component means sum to the end-to-end mean. *)
      let component_mean_sum =
        List.fold_left
          (fun acc (_, c) -> acc +. c.Attribution.st_mean)
          0.0 r.Attribution.r_components
      in
      Alcotest.(check (float 1e-6)) "component means sum to latency mean"
        s.Attribution.st_mean component_mean_sum;
      match r.Attribution.r_worst with
      | None -> Alcotest.fail "worst span missing"
      | Some w ->
          Alcotest.(check bool) "worst span valid" true (Span.valid w);
          Alcotest.(check (float 1e-6)) "worst matches max"
            s.Attribution.st_max (Span.latency w))
    rows

(* --- bound headroom ------------------------------------------------------ *)

let measure config =
  let registry = Registry.create () in
  let recorder = Obs.Recorder.create ~registry () in
  let sim = Hyp_sim.create config in
  Sink.with_sink (Obs.Recorder.sink recorder) (fun () -> Hyp_sim.run sim);
  registry

let test_headroom_non_negative_on_good_scenarios () =
  (* The acceptance property: on every conformant scenario the measured
     worst case stays below the analytic bound for every handling class. *)
  List.iter
    (fun (name, build) ->
      let config = build () in
      let registry = measure config in
      let verdicts = Headroom.verdicts config registry in
      Alcotest.(check bool)
        (name ^ ": some series measured")
        true (verdicts <> []);
      List.iter
        (fun v ->
          match v.Headroom.hv_headroom_us with
          | Some h when h < 0.0 ->
              Alcotest.failf
                "%s: %s/%s measured %.1fus exceeds bound %.1fus" name
                v.Headroom.hv_source v.Headroom.hv_class
                v.Headroom.hv_measured_us
                (Option.get v.Headroom.hv_bound_us)
          | _ -> ())
        verdicts)
    Scenarios.good

let test_headroom_gauges_surface () =
  let config = Scenarios.quickstart () in
  let registry = measure config in
  Headroom.gauges config registry;
  let rows = Registry.snapshot registry in
  let count name =
    List.length (List.filter (fun r -> r.Registry.name = name) rows)
  in
  Alcotest.(check bool) "bound gauges present" true
    (count "rthv_latency_bound_us" > 0);
  Alcotest.(check bool) "headroom gauges present" true
    (count "rthv_bound_headroom_us" > 0)

let test_interposed_bound_tighter_when_conformant () =
  (* On the statically conformant stream, eq. (16) applies and must beat
     the baseline (eq. 11-12) bound used for the delayed class. *)
  let config = Scenarios.conformant () in
  let bounds = Headroom.bounds config in
  match
    ( Headroom.bound_for bounds ~source:"nic" ~cls:"interposed",
      Headroom.bound_for bounds ~source:"nic" ~cls:"delayed" )
  with
  | Some interposed, Some delayed ->
      Alcotest.(check bool)
        (Printf.sprintf "eq.16 (%.1f) < baseline (%.1f)" interposed delayed)
        true
        (interposed < delayed)
  | _ -> Alcotest.fail "expected finite bounds for both classes"

let test_unshaped_source_has_no_interposed_bound () =
  let config = Scenarios.quickstart () in
  let unmonitored =
    {
      config with
      Rthv_core.Config.sources =
        List.map
          (fun s -> { s with Rthv_core.Config.shaping = Rthv_core.Config.No_shaping })
          config.Rthv_core.Config.sources;
    }
  in
  let bounds = Headroom.bounds unmonitored in
  Alcotest.(check (option (float 1e-9)))
    "no eq.16 bound without a monitor" None
    (Headroom.bound_for bounds ~source:"nic" ~cls:"interposed")

let suite =
  [
    Alcotest.test_case "components sum to latency" `Quick
      test_components_sum_to_latency;
    Alcotest.test_case "invalid span detected" `Quick
      test_invalid_span_detected;
    Alcotest.test_case "attribution over a live simulation" `Quick
      test_attribution_collects_simulation;
    Alcotest.test_case "headroom non-negative on good scenarios" `Slow
      test_headroom_non_negative_on_good_scenarios;
    Alcotest.test_case "headroom gauges surface" `Quick
      test_headroom_gauges_surface;
    Alcotest.test_case "eq.16 tighter than baseline when conformant" `Quick
      test_interposed_bound_tighter_when_conformant;
    Alcotest.test_case "no interposed bound when unshaped" `Quick
      test_unshaped_source_has_no_interposed_bound;
  ]
