module Ablation = Rthv_experiments.Ablation
module Params = Rthv_experiments.Params
module Hyp_sim = Rthv_core.Hyp_sim

let d_min = Params.mean_for_load 0.10

let boundary = lazy (Ablation.run ~count:1500 ~d_min (Ablation.boundary_variants ~d_min))

let find label measurements =
  match List.find_opt (fun m -> m.Ablation.m_label = label) measurements with
  | Some m -> m
  | None -> Alcotest.failf "variant %S missing" label

let test_boundary_semantics () =
  let ms = Lazy.force boundary in
  Alcotest.(check int) "three variants" 3 (List.length ms);
  let paper = find "monitored (paper config)" ms in
  let strict = find "monitored, strict TDMA cut" ms in
  let baseline = find "unmonitored baseline" ms in
  Alcotest.(check bool) "paper worst case is TDMA-independent" true
    (paper.Ablation.worst_us < 300.);
  Alcotest.(check bool) "strict cutting re-introduces a tail" true
    (strict.Ablation.worst_us > 3. *. paper.Ablation.worst_us);
  Alcotest.(check bool) "baseline is an order of magnitude slower" true
    (baseline.Ablation.avg_us > 10. *. paper.Ablation.avg_us);
  Alcotest.(check bool) "monitoring pays in context switches" true
    (paper.Ablation.ctx_per_irq > baseline.Ablation.ctx_per_irq)

let test_ctx_cost_sweep () =
  let ms =
    Ablation.run ~count:1000 ~d_min
      (Ablation.ctx_cost_variants ~d_min [ 0.0; 1.0; 2.0 ])
  in
  match List.map (fun m -> m.Ablation.avg_us) ms with
  | [ free; arm; double ] ->
      Alcotest.(check bool)
        (Printf.sprintf "avg grows with ctx cost: %.0f < %.0f < %.0f" free arm
           double)
        true
        (free < arm && arm < double)
  | _ -> Alcotest.fail "three measurements expected"

let test_monitor_depth_equivalence () =
  (* Linear envelopes of any depth admit the same conforming stream. *)
  let ms =
    Ablation.run ~count:1000 ~d_min
      (Ablation.monitor_depth_variants ~d_min [ 1; 5 ])
  in
  match ms with
  | [ l1; l5 ] ->
      Testutil.close ~eps:0.5 "same average" l1.Ablation.avg_us
        l5.Ablation.avg_us;
      Alcotest.(check int) "same admissions"
        l1.Ablation.m_stats.Hyp_sim.admissions
        l5.Ablation.m_stats.Hyp_sim.admissions
  | _ -> Alcotest.fail "two measurements expected"

let test_same_arrivals_across_variants () =
  (* All variants must see the same IRQ count: the ablation is paired. *)
  let ms = Lazy.force boundary in
  List.iter
    (fun m ->
      Alcotest.(check int) "same IRQ count" 1500
        m.Ablation.m_stats.Hyp_sim.completed_irqs)
    ms

let test_admission_axis () =
  let cycle = Testutil.us 14_000 in
  let ms =
    Ablation.run ~count:1200 ~d_min (Ablation.admission_variants ~d_min ~cycle)
  in
  Alcotest.(check int) "four variants" 4 (List.length ms);
  let baseline = find "unmonitored baseline" ms in
  let monitor = find "d_min monitor" ms in
  let composite = find "monitor + bucket" ms in
  Alcotest.(check int) "baseline never interposes" 0
    baseline.Ablation.m_stats.Hyp_sim.interposed;
  Alcotest.(check bool) "every shaped variant interposes" true
    (List.for_all
       (fun m ->
         m.Ablation.m_label = "unmonitored baseline"
         || m.Ablation.m_stats.Hyp_sim.interposed > 0)
       ms);
  (* On conforming arrivals a capacity-1 bucket refilled at d_min is vacuous
     against the d_min condition: the composite admits exactly what the
     monitor admits. *)
  Alcotest.(check int) "vacuous bucket changes nothing"
    monitor.Ablation.m_stats.Hyp_sim.admissions
    composite.Ablation.m_stats.Hyp_sim.admissions;
  List.iter
    (fun m ->
      Alcotest.(check int) "paired arrivals" 1200
        m.Ablation.m_stats.Hyp_sim.completed_irqs)
    ms

let test_shaper_comparison () =
  let ms = Ablation.shaper_comparison ~count:1200 ~d_min () in
  Alcotest.(check int) "four variants" 4 (List.length ms);
  let find label =
    match List.find_opt (fun m -> m.Ablation.m_label = label) ms with
    | Some m -> m
    | None -> Alcotest.failf "variant %S missing" label
  in
  let unmonitored = find "unmonitored" in
  let monitor = find "d_min monitor" in
  let bucket3 = find "token bucket, capacity 3" in
  (* The bucket's burst allowance interposes whole bursts, so it admits
     more than the distance monitor... *)
  Alcotest.(check bool) "bucket admits more than the monitor" true
    (bucket3.Ablation.m_stats.Rthv_core.Hyp_sim.interposed
    > monitor.Ablation.m_stats.Rthv_core.Hyp_sim.interposed);
  (* ...and both beat the unmonitored baseline on average latency. *)
  Alcotest.(check bool) "monitor beats baseline" true
    (monitor.Ablation.avg_us < unmonitored.Ablation.avg_us);
  Alcotest.(check bool) "bucket beats the monitor on bursty traffic" true
    (bucket3.Ablation.avg_us < monitor.Ablation.avg_us)

let suite =
  [
    Alcotest.test_case "shaper comparison" `Slow test_shaper_comparison;
    Alcotest.test_case "admission-policy axis" `Slow test_admission_axis;
    Alcotest.test_case "boundary semantics" `Slow test_boundary_semantics;
    Alcotest.test_case "context-switch cost sweep" `Slow test_ctx_cost_sweep;
    Alcotest.test_case "monitor depth equivalence" `Slow
      test_monitor_depth_equivalence;
    Alcotest.test_case "paired arrivals" `Slow test_same_arrivals_across_variants;
  ]
