(* Chrome Trace Event and JSONL exporters: structural validity of the
   Chrome document, lossless JSONL round-trips, and the Irq_coalesced
   event surfacing in both. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Export = Rthv_core.Trace_export
module Json = Rthv_obs.Json
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let simulated_trace () =
  let trace = Hyp_trace.create () in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"ctl" ~slot_us:6_000 ();
          Config.partition ~name:"io" ~slot_us:6_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50
            ~interarrivals:
              (Rthv_workload.Gen.exponential ~seed:7 ~mean:(us 1_000)
                 ~count:80)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 500)))
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  (trace, Hyp_sim.stats sim)

let events_of doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List events) -> events
  | _ -> Alcotest.fail "no traceEvents array"

let str_field name e =
  match Json.member name e with Some (Json.String s) -> Some s | _ -> None

let test_chrome_is_valid_json () =
  let trace, _ = simulated_trace () in
  let text = Export.chrome_string ~partition_names:[| "ctl"; "io" |] trace in
  match Json.parse text with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok doc ->
      let events = events_of doc in
      Alcotest.(check bool) "non-empty" true (List.length events > 10);
      (* Thread names declared for the hypervisor and both partitions. *)
      let thread_names =
        List.filter_map
          (fun e ->
            if str_field "name" e = Some "thread_name" then
              match Json.member "args" e with
              | Some args -> (
                  match Json.member "name" args with
                  | Some (Json.String s) -> Some s
                  | _ -> None)
              | None -> None
            else None)
          events
      in
      List.iter
        (fun expected ->
          if not (List.mem expected thread_names) then
            Alcotest.failf "missing thread %S" expected)
        [ "hypervisor"; "partition 0 (ctl)"; "partition 1 (io)" ]

let test_chrome_timestamps_monotone_and_balanced () =
  let trace, stats = simulated_trace () in
  let doc =
    match Json.parse (Export.chrome_string trace) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let events = events_of doc in
  (* ts values never go backwards over the event list. *)
  let last = ref neg_infinity in
  List.iter
    (fun e ->
      match (str_field "ph" e, Json.member "ts" e) with
      | Some "M", _ -> ()
      | _, Some ts ->
          let t = match Json.to_float ts with Some f -> f | None -> 0.0 in
          if t < !last -. 1e-9 then
            Alcotest.failf "ts went backwards: %.3f after %.3f" t !last;
          last := t
      | _ -> ())
    events;
  (* Begin/end slices balance, and interposition slices match the count
     the simulator reports. *)
  let count ph name_prefix =
    List.length
      (List.filter
         (fun e ->
           str_field "ph" e = Some ph
           &&
           match str_field "name" e with
           | Some n ->
               String.length n >= String.length name_prefix
               && String.sub n 0 (String.length name_prefix) = name_prefix
           | None -> false)
         events)
  in
  Alcotest.(check int)
    "B/E balance"
    (count "B" "")
    (count "E" "");
  Alcotest.(check int)
    "one slice per interposition" stats.Hyp_sim.interpositions_started
    (count "B" "interposition")

let test_jsonl_roundtrip () =
  let trace, _ = simulated_trace () in
  let text = Export.jsonl_string trace in
  match Export.entries_of_jsonl_string text with
  | Error e -> Alcotest.failf "re-read failed: %s" e
  | Ok entries ->
      let original = Hyp_trace.to_list trace in
      Alcotest.(check int) "entry count" (List.length original)
        (List.length entries);
      List.iter2
        (fun (a : Hyp_trace.entry) (b : Hyp_trace.entry) ->
          if a <> b then
            Alcotest.failf "entry mismatch at t=%d: %s vs %s" a.Hyp_trace.time
              (Export.jsonl_line a) (Export.jsonl_line b))
        original entries;
      (* And the rebuilt trace re-exports to the identical byte stream. *)
      Alcotest.(check string) "stable re-export" text
        (Export.jsonl_string (Export.trace_of_entries entries))

let test_jsonl_rejects_malformed () =
  (match Export.entry_of_jsonl "{\"t\":1,\"ev\":\"nosuch\"}" with
  | Ok _ -> Alcotest.fail "accepted unknown event kind"
  | Error _ -> ());
  (match Export.entry_of_jsonl "{\"ev\":\"slot_switch\",\"from\":0,\"to\":1}" with
  | Ok _ -> Alcotest.fail "accepted entry without timestamp"
  | Error _ -> ());
  match Export.entries_of_jsonl_string "{\"t\":1,\"ev\":\"irq_coalesced\",\"line\":0}\nnot json\n" with
  | Ok _ -> Alcotest.fail "accepted malformed line"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg > 0
        &&
        let has_line2 = ref false in
        String.iteri
          (fun i c ->
            if
              c = '2' && i > 0
              && (msg.[i - 1] = ' ' || msg.[i - 1] = ':')
            then has_line2 := true)
          msg;
        !has_line2)

let coalesced_trace () =
  (* A slow top handler occupies the hypervisor while a second raise lands
     on the fast line's still-pending flag and coalesces (the
     test_hyp_sim.ml trace-replay recipe). *)
  let trace = Hyp_trace.create () in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"a" ~slot_us:5_000 ();
          Config.partition ~name:"b" ~slot_us:5_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"slow" ~line:1 ~subscriber:0 ~c_th_us:100
            ~c_bh_us:10 ~interarrivals:[| us 1_000 |] ();
          Config.source ~name:"fast" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:10
            ~interarrivals:[| us 1_005; us 5 |]
            ~arrival_mode:Config.Absolute ();
        ]
      ()
  in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  (trace, Hyp_sim.stats sim)

let test_coalesced_in_exports () =
  let trace, stats = coalesced_trace () in
  Alcotest.(check bool) "scenario coalesces" true
    (stats.Hyp_sim.coalesced_irqs > 0);
  let in_trace =
    List.length
      (List.filter
         (fun (e : Hyp_trace.entry) ->
           match e.Hyp_trace.event with
           | Hyp_trace.Irq_coalesced _ -> true
           | _ -> false)
         (Hyp_trace.to_list trace))
  in
  Alcotest.(check int) "one trace event per coalesced raise"
    stats.Hyp_sim.coalesced_irqs in_trace;
  (* JSONL carries them through a round-trip... *)
  (match Export.entries_of_jsonl_string (Export.jsonl_string trace) with
  | Error e -> Alcotest.failf "jsonl: %s" e
  | Ok entries ->
      let n =
        List.length
          (List.filter
             (fun (e : Hyp_trace.entry) ->
               match e.Hyp_trace.event with
               | Hyp_trace.Irq_coalesced _ -> true
               | _ -> false)
             entries)
      in
      Alcotest.(check int) "jsonl preserves coalesced" in_trace n);
  (* ...and the Chrome track shows the instant events. *)
  match Json.parse (Export.chrome_string trace) with
  | Error e -> Alcotest.failf "chrome: %s" e
  | Ok doc ->
      let instants =
        List.length
          (List.filter
             (fun e -> str_field "name" e = Some "irq coalesced")
             (events_of doc))
      in
      Alcotest.(check int) "chrome instants" in_trace instants

let test_save_load_files () =
  let trace, _ = simulated_trace () in
  let path = Filename.temp_file "rthv" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.save_jsonl ~path trace;
      match Export.load_jsonl ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok entries ->
          Alcotest.(check int) "all entries back"
            (Hyp_trace.length trace) (List.length entries))

let suite =
  [
    Alcotest.test_case "chrome export is valid JSON" `Quick
      test_chrome_is_valid_json;
    Alcotest.test_case "chrome ts monotone, slices balanced" `Quick
      test_chrome_timestamps_monotone_and_balanced;
    Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl rejects malformed input" `Quick
      test_jsonl_rejects_malformed;
    Alcotest.test_case "coalesced raises reach both exporters" `Quick
      test_coalesced_in_exports;
    Alcotest.test_case "save/load files" `Quick test_save_load_files;
  ]
