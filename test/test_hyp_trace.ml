module Hyp_trace = Rthv_core.Hyp_trace
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let test_ring_buffer_basics () =
  let t = Hyp_trace.create ~capacity:3 () in
  Alcotest.(check int) "empty" 0 (Hyp_trace.length t);
  Hyp_trace.record t ~time:1 (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
  Hyp_trace.record t ~time:2 (Hyp_trace.Top_handler_run { irq = 1; line = 0 });
  Alcotest.(check int) "two entries" 2 (Hyp_trace.length t);
  Alcotest.(check int) "nothing dropped" 0 (Hyp_trace.dropped t)

let test_ring_buffer_wraps () =
  let t = Hyp_trace.create ~capacity:2 () in
  for i = 0 to 4 do
    Hyp_trace.record t ~time:i (Hyp_trace.Top_handler_run { irq = i; line = 0 })
  done;
  Alcotest.(check int) "capacity retained" 2 (Hyp_trace.length t);
  Alcotest.(check int) "drops counted" 3 (Hyp_trace.dropped t);
  Alcotest.(check int) "total counted" 5 (Hyp_trace.recorded t);
  match Hyp_trace.to_list t with
  | [ a; b ] ->
      Testutil.check_cycles "oldest retained" 3 a.Hyp_trace.time;
      Testutil.check_cycles "newest retained" 4 b.Hyp_trace.time
  | entries -> Alcotest.failf "expected 2 entries, got %d" (List.length entries)

let test_capacity_validated () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Hyp_trace.create: capacity must be positive") (fun () ->
      ignore (Hyp_trace.create ~capacity:0 () : Hyp_trace.t))

let run_traced ~shaping =
  let trace = Hyp_trace.create () in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"P1" ~slot_us:6_000 ();
          Config.partition ~name:"P2" ~slot_us:6_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50
            ~interarrivals:[| us 1_000; us 2_000; us 2_000 |]
            ~shaping ();
        ]
      ()
  in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  (trace, Hyp_sim.stats sim)

let test_sim_records_events () =
  let trace, stats =
    run_traced ~shaping:(Config.Fixed_monitor (DF.d_min (us 100)))
  in
  let count predicate = List.length (Hyp_trace.find_all trace predicate) in
  Alcotest.(check int) "one top handler per IRQ" 3
    (count (function Hyp_trace.Top_handler_run _ -> true | _ -> false));
  Alcotest.(check int) "one completion per IRQ" 3
    (count (function Hyp_trace.Bottom_handler_done _ -> true | _ -> false));
  let starts =
    count (function Hyp_trace.Interposition_start _ -> true | _ -> false)
  in
  let ends =
    count (function Hyp_trace.Interposition_end _ -> true | _ -> false)
  in
  Alcotest.(check int) "starts recorded" stats.Hyp_sim.interpositions_started
    starts;
  Alcotest.(check int) "every interposition ends" starts ends;
  Alcotest.(check int) "slot switches recorded" stats.Hyp_sim.slot_switches
    (count (function Hyp_trace.Slot_switch _ -> true | _ -> false))

let test_trace_times_monotone () =
  let trace, _ = run_traced ~shaping:Config.No_shaping in
  let entries = Hyp_trace.to_list trace in
  Alcotest.(check bool) "non-empty" true (List.length entries > 0);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Hyp_trace.time <= b.Hyp_trace.time && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone entries)

let test_monitor_decisions_traced () =
  (* Second IRQ violates a huge d_min -> one admitted, one denied visible. *)
  let trace, _ =
    run_traced ~shaping:(Config.Fixed_monitor (DF.d_min (us 10_000)))
  in
  let decisions =
    Hyp_trace.find_all trace (function
      | Hyp_trace.Monitor_decision _ -> true
      | _ -> false)
  in
  let admitted =
    List.filter
      (fun e ->
        match e.Hyp_trace.event with
        | Hyp_trace.Monitor_decision { verdict = `Admitted; _ } -> true
        | _ -> false)
      decisions
  in
  Alcotest.(check bool) "some decisions" true (List.length decisions > 0);
  Alcotest.(check bool) "denials present under a huge d_min" true
    (List.length admitted < List.length decisions)

(* Minimal substring check without extra dependencies. *)
let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_pp_renders () =
  let trace, _ = run_traced ~shaping:(Config.Fixed_monitor (DF.d_min (us 100))) in
  let out = Format.asprintf "%a" Hyp_trace.pp trace in
  Alcotest.(check bool) "render mentions top handlers" true
    (contains out "top handler");
  Alcotest.(check bool) "render mentions interpositions" true
    (contains out "interposition")

let suite =
  [
    Alcotest.test_case "ring buffer basics" `Quick test_ring_buffer_basics;
    Alcotest.test_case "ring buffer wraps" `Quick test_ring_buffer_wraps;
    Alcotest.test_case "capacity validated" `Quick test_capacity_validated;
    Alcotest.test_case "simulation records events" `Quick test_sim_records_events;
    Alcotest.test_case "timestamps monotone" `Quick test_trace_times_monotone;
    Alcotest.test_case "monitor decisions traced" `Quick
      test_monitor_decisions_traced;
    Alcotest.test_case "pretty printing" `Quick test_pp_renders;
  ]
