(* Proof-carrying certificates: every artifact the builder emits must pass
   the independent recheck, and any single-byte tamper must be detected.
   SARIF export is checked for structural validity against the same
   diagnostics. *)

module J = Rthv_obs.Json
module Certify = Rthv_check.Certify
module Sarif = Rthv_check.Sarif
module Fleet = Rthv_check.Fleet
module Lint = Rthv_check.Lint
module Scenarios = Rthv_check.Scenarios

let build name config =
  match Certify.build_string ~scenario:name config with
  | Ok s -> s
  | Error e -> Alcotest.failf "%s: build failed: %s" name e

(* Flip one content digit (not punctuation, not the digest's own hex) so
   the mutation changes a serialized number the digest covers. *)
let tamper s =
  let cut =
    match String.index_opt s '{' with Some i -> i + 1 | None -> 0
  in
  let rec find i =
    if i >= String.length s then Alcotest.fail "nothing to tamper with"
    else
      match s.[i] with
      | '0' .. '9' -> i
      | _ -> find (i + 1)
  in
  let i = find cut in
  let b = Bytes.of_string s in
  Bytes.set b i (if s.[i] = '5' then '6' else '5');
  Bytes.to_string b

let test_scenarios_recheck () =
  List.iter
    (fun (name, builder) ->
      let s = build name (builder ()) in
      (match Certify.recheck_string s with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s: recheck rejected: %s" name
            (String.concat " | " msgs));
      match Certify.recheck_string (tamper s) with
      | Ok () -> Alcotest.failf "%s: tampered artifact accepted" name
      | Error _ -> ())
    Scenarios.all

let test_fleet_recheck () =
  List.iter
    (fun (name, config) ->
      let s = build name config in
      match Certify.recheck_string s with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s: recheck rejected: %s" name
            (String.concat " | " msgs))
    (Fleet.gen_batch ~seed:42 ~count:4)

let test_recheck_rejects_garbage () =
  List.iter
    (fun s ->
      match Certify.recheck_string s with
      | Ok () -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{}"; "{\"schema\":\"rthv-cert/9\"}"; "[1]"; "not json" ]

let test_certify_batch_job_invariant () =
  let batch = Fleet.gen_batch ~seed:42 ~count:4 in
  let run jobs =
    Fleet.certify_batch ~pool:(Rthv_par.Par.create ~jobs ()) batch
    |> List.map (fun (n, r) -> (n, Result.get_ok r))
  in
  let r1 = run 1 and r4 = run 4 in
  List.iter2
    (fun (n, a) (_, b) ->
      Alcotest.(check string) (n ^ " byte-identical across job counts") a b)
    r1 r4

let test_sarif_valid () =
  let groups =
    List.map
      (fun (name, builder) -> (Some name, Lint.analyze (builder ())))
      Scenarios.all
  in
  match J.parse (Sarif.to_string groups) with
  | Error e -> Alcotest.failf "SARIF does not parse: %s" e
  | Ok log -> (
      Alcotest.(check (option string)) "version" (Some "2.1.0")
        (Option.bind (J.member "version" log) J.to_str);
      match Option.bind (J.member "runs" log) J.to_list with
      | Some [ run ] ->
          let rules =
            Option.bind (J.member "tool" run) (J.member "driver")
            |> Fun.flip Option.bind (J.member "rules")
            |> Fun.flip Option.bind J.to_list
            |> Option.value ~default:[]
          in
          let rule_ids =
            List.filter_map
              (fun r -> Option.bind (J.member "id" r) J.to_str)
              rules
          in
          Alcotest.(check int) "rule table size"
            (List.length Sarif.rules) (List.length rule_ids);
          let results =
            Option.bind (J.member "results" run) J.to_list
            |> Option.value ~default:[]
          in
          if results = [] then Alcotest.fail "no SARIF results";
          List.iter
            (fun res ->
              let rule_id =
                Option.bind (J.member "ruleId" res) J.to_str
                |> Option.value ~default:"?"
              in
              if not (List.mem rule_id rule_ids) then
                Alcotest.failf "result rule %s not in the driver table" rule_id;
              match Option.bind (J.member "ruleIndex" res) J.to_int with
              | Some idx when idx >= 0 && idx < List.length rule_ids ->
                  Alcotest.(check string) "ruleIndex resolves" rule_id
                    (List.nth rule_ids idx)
              | _ -> Alcotest.failf "bad ruleIndex for %s" rule_id)
            results
      | _ -> Alcotest.fail "expected exactly one SARIF run")

let suite =
  [
    Alcotest.test_case "scenario artifacts recheck, tamper detected" `Slow
      test_scenarios_recheck;
    Alcotest.test_case "fleet artifacts recheck" `Slow test_fleet_recheck;
    Alcotest.test_case "recheck rejects garbage" `Quick
      test_recheck_rejects_garbage;
    Alcotest.test_case "certify_batch job-invariant" `Slow
      test_certify_batch_job_invariant;
    Alcotest.test_case "SARIF export valid" `Quick test_sarif_valid;
  ]
