(* Static configuration analyzer: every rule must fire on a crafted bad
   configuration and stay silent on a good one. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module D = Rthv_check.Diagnostic
module Lint = Rthv_check.Lint
module Scenarios = Rthv_check.Scenarios

let us = Testutil.us

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)
let fires code diags = List.exists (fun d -> d.D.code = code) diags

let check_fires msg code diags =
  if not (fires code diags) then
    Alcotest.failf "%s: expected %s among %s" msg code
      (String.concat "," (codes diags))

let check_silent msg code diags =
  if fires code diags then Alcotest.failf "%s: %s fired unexpectedly" msg code

(* A small monitored system that every rule is happy with. *)
let baseline ?(shaping = Config.Fixed_monitor (DF.d_min (us 2_000)))
    ?(interarrivals = Rthv_workload.Gen.constant ~period:(us 4_000) ~count:50)
    ?(c_bh_us = 40) ?(partitions = None) () =
  let partitions =
    match partitions with
    | Some ps -> ps
    | None ->
        [
          Config.partition ~name:"a" ~slot_us:5_000 ();
          Config.partition ~name:"b" ~slot_us:5_000 ();
        ]
  in
  Config.make ~partitions
    ~sources:
      [
        Config.source ~name:"s" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us
          ~interarrivals ~shaping ();
      ]
    ()

let test_baseline_clean () =
  Alcotest.(check (list string)) "no findings" [] (codes (Lint.analyze (baseline ())))

let test_rthv001_short_circuits () =
  let bad =
    Config.make
      ~partitions:[ Config.partition ~name:"a" ~slot_us:5_000 () ]
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:7 ~c_th_us:5 ~c_bh_us:40
            ~interarrivals:[||] ();
        ]
      ()
  in
  let diags = Lint.analyze bad in
  Alcotest.(check (list string)) "only RTHV001" [ "RTHV001" ] (codes diags);
  Alcotest.(check bool) "is error" true (List.for_all D.is_error diags)

let test_rthv002_tiny_slot () =
  let config =
    baseline
      ~partitions:
        (Some
           [
             Config.partition ~name:"tiny" ~slot_us:40 ();
             Config.partition ~name:"b" ~slot_us:5_000 ();
           ])
      ()
  in
  check_fires "tiny slot" "RTHV002" (Lint.analyze config);
  check_silent "normal slots" "RTHV002" (Lint.analyze (baseline ()))

let test_rthv003_unbounded_condition () =
  let config = baseline ~shaping:(Config.Fixed_monitor (DF.unbounded ~l:2)) () in
  check_fires "unbounded" "RTHV003" (Lint.analyze config);
  check_silent "bounded" "RTHV003" (Lint.analyze (baseline ()))

let test_rthv004_overload () =
  (* d_min 100us against C'_BH ~ 254us: >100% long-term utilisation. *)
  let config =
    baseline ~c_bh_us:150 ~shaping:(Config.Fixed_monitor (DF.d_min (us 100))) ()
  in
  check_fires "overload" "RTHV004" (Lint.analyze config);
  check_silent "7% load" "RTHV004" (Lint.analyze (baseline ()))

let test_rthv005_certificate () =
  (* Task utilisation (10%) is well under the TDMA share (47.5%), yet the
     grant's interference (c_bh_eff ~ 204us every 300us, ~68%) starves the
     task: only the full certificate catches it. *)
  let partitions =
    [
      Config.partition ~name:"victim" ~slot_us:1_000
        ~tasks:[ Task.spec ~name:"t" ~period_us:4_000 ~wcet_us:400 () ]
        ();
      Config.partition ~name:"host" ~slot_us:1_000 ();
    ]
  in
  let config =
    baseline ~partitions:(Some partitions) ~c_bh_us:100
      ~shaping:(Config.Fixed_monitor (DF.d_min (us 300)))
      ()
  in
  let diags = Lint.analyze config in
  check_fires "starved task" "RTHV005" diags;
  check_silent "utilisation rule stays quiet" "RTHV006" diags;
  let ok =
    baseline ~partitions:(Some partitions) ~c_bh_us:10
      ~shaping:(Config.Fixed_monitor (DF.d_min (us 2_000)))
      ()
  in
  check_silent "light grant schedulable" "RTHV005" (Lint.analyze ok)

let test_rthv006_partition_overload () =
  let partitions =
    [
      Config.partition ~name:"fat" ~slot_us:1_000
        ~tasks:[ Task.spec ~name:"t" ~period_us:4_000 ~wcet_us:2_000 () ]
        ();
      Config.partition ~name:"b" ~slot_us:3_000 ();
    ]
  in
  check_fires "50% tasks in 25% slot" "RTHV006"
    (Lint.analyze (baseline ~partitions:(Some partitions) ()));
  check_silent "fits" "RTHV006" (Lint.analyze (baseline ()))

let test_rthv007_learning () =
  let zero =
    baseline
      ~shaping:(Config.Self_learning { l = 1; learn_events = 0; bound = None })
      ()
  in
  check_fires "learn_events = 0" "RTHV007" (Lint.analyze zero);
  let never_runs =
    baseline
      ~shaping:(Config.Self_learning { l = 1; learn_events = 999; bound = None })
      ()
  in
  check_fires "never leaves learning" "RTHV007" (Lint.analyze never_runs);
  let ok =
    baseline
      ~shaping:(Config.Self_learning { l = 1; learn_events = 5; bound = None })
      ()
  in
  check_silent "sane learning" "RTHV007" (Lint.analyze ok)

let test_rthv008_vacuous_grant () =
  let config = baseline ~interarrivals:[||] () in
  check_fires "never fires" "RTHV008" (Lint.analyze config);
  check_silent "fires" "RTHV008" (Lint.analyze (baseline ()))

let test_rthv009_workload_exceeds_condition () =
  let config =
    baseline
      ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 500) ~count:50)
      ()
  in
  check_fires "2000us condition, 500us workload" "RTHV009"
    (Lint.analyze config);
  check_silent "4000us workload" "RTHV009" (Lint.analyze (baseline ()))

let test_rthv010_token_bucket_burst () =
  let burst cap =
    baseline
      ~shaping:(Config.Token_bucket { capacity = cap; refill = us 2_000 })
      ()
  in
  check_fires "capacity 4" "RTHV010" (Lint.analyze (burst 4));
  check_silent "capacity 1" "RTHV010" (Lint.analyze (burst 1))

let test_rthv011_duplicate_names () =
  let partitions =
    [
      Config.partition ~name:"same" ~slot_us:5_000 ();
      Config.partition ~name:"same" ~slot_us:5_000 ();
    ]
  in
  check_fires "duplicates" "RTHV011"
    (Lint.analyze (baseline ~partitions:(Some partitions) ()));
  check_silent "unique" "RTHV011" (Lint.analyze (baseline ()))

let test_rthv012_handler_slot_fit () =
  (* Warning: a plain bottom handler that cannot finish in one effective
     slot.  Error: a grant whose C'_BH exceeds the whole subscriber slot. *)
  let warning = baseline ~shaping:Config.No_shaping ~c_bh_us:4_980 () in
  (match List.filter (fun d -> d.D.code = "RTHV012") (Lint.analyze warning) with
  | [ d ] ->
      Alcotest.(check string) "warning severity" "warning" (D.severity_name d.D.severity)
  | ds -> Alcotest.failf "expected one RTHV012, got %d" (List.length ds));
  let partitions =
    [
      Config.partition ~name:"a" ~slot_us:9_800 ();
      Config.partition ~name:"narrow" ~slot_us:200 ();
    ]
  in
  let error =
    baseline ~partitions:(Some partitions) ~c_bh_us:150
      ~shaping:(Config.Fixed_monitor (DF.d_min (us 5_000)))
      ()
  in
  (match List.filter (fun d -> d.D.code = "RTHV012") (Lint.analyze error) with
  | [ d ] ->
      Alcotest.(check string) "error severity" "error" (D.severity_name d.D.severity)
  | ds -> Alcotest.failf "expected one RTHV012, got %d" (List.length ds));
  check_silent "fits" "RTHV012" (Lint.analyze (baseline ()))

let test_rthv013_budget_starves_slot () =
  (* C'_BH ~ 28877 cycles; a foreign 5000us slot (1M cycles at 200MHz) is
     consumed once the aligned-window bound 2 * per_cycle * C'_BH reaches
     it — per_cycle 20 does, per_cycle 2 stays far below. *)
  let budget per_cycle = baseline ~shaping:(Config.Budgeted { per_cycle }) () in
  let diags = Lint.analyze (budget 20) in
  check_fires "greedy budget" "RTHV013" diags;
  (match List.filter (fun d -> d.D.code = "RTHV013") diags with
  | d :: _ ->
      Alcotest.(check string) "error severity" "error"
        (D.severity_name d.D.severity)
  | [] -> Alcotest.fail "RTHV013 missing");
  check_silent "modest budget" "RTHV013" (Lint.analyze (budget 2));
  check_silent "not a budget" "RTHV013" (Lint.analyze (baseline ()))

let test_rthv014_composite_bucket () =
  let composite refill_us =
    baseline
      ~shaping:
        (Config.Monitor_and_bucket
           { fn = DF.d_min (us 2_000); capacity = 1; refill = us refill_us })
      ()
  in
  let severity config =
    match
      List.filter (fun d -> d.D.code = "RTHV014") (Lint.analyze config)
    with
    | [ d ] -> D.severity_name d.D.severity
    | ds -> Alcotest.failf "expected one RTHV014, got %d" (List.length ds)
  in
  (* refill <= delta^-(2): a token is always back in time — vacuous. *)
  Alcotest.(check string) "vacuous bucket is info" "info"
    (severity (composite 2_000));
  (* refill > delta^-(2): the bucket can deny conforming activations. *)
  Alcotest.(check string) "binding bucket is warning" "warning"
    (severity (composite 5_000));
  check_silent "plain monitor" "RTHV014" (Lint.analyze (baseline ()))

let test_rthv015_budget_never_binds () =
  (* The 4000us-period workload puts at most 3 arrivals in any aligned
     10000us cycle window: a budget of 5 is dead configuration. *)
  let budget per_cycle = baseline ~shaping:(Config.Budgeted { per_cycle }) () in
  check_fires "oversized budget" "RTHV015" (Lint.analyze (budget 5));
  check_silent "budget that can bind" "RTHV015" (Lint.analyze (budget 2));
  check_silent "not a budget" "RTHV015" (Lint.analyze (baseline ()))

let test_rthv016_sole_interposer () =
  (* A second active shaped source voids eq. (16)'s sole-interposer
     assumption for the monitored one. *)
  let two_sources =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"a" ~slot_us:5_000 ();
          Config.partition ~name:"b" ~slot_us:5_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
            ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 4_000) ~count:50)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 2_000)))
            ();
          Config.source ~name:"rival" ~line:1 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:40
            ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 4_000) ~count:50)
            ~shaping:(Config.Token_bucket { capacity = 1; refill = us 4_000 })
            ();
        ]
      ()
  in
  let diags = Lint.analyze two_sources in
  check_fires "two interposers" "RTHV016" diags;
  (match List.filter (fun d -> d.D.code = "RTHV016") diags with
  | d :: _ ->
      Alcotest.(check string) "warning severity" "warning"
        (D.severity_name d.D.severity)
  | [] -> Alcotest.fail "RTHV016 missing");
  check_silent "sole interposer" "RTHV016" (Lint.analyze (baseline ()))

let test_rthv017_weighted_starves_subscriber () =
  (* The bottom handler fits the declared 6000us slot but not the 3000us
     the weighted plan actually apportions. *)
  let config =
    Config.make
      ~plan:(Config.Weighted_plan { cycle = us 12_000; weights = [| 1; 3 |] })
      ~partitions:
        [
          Config.partition ~name:"starved" ~slot_us:6_000 ();
          Config.partition ~name:"fat" ~slot_us:6_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:4_000
            ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 20_000) ~count:50)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 20_000)))
            ();
        ]
      ()
  in
  check_fires "weighted starvation" "RTHV017" (Lint.analyze config);
  check_silent "declared slots in force" "RTHV017" (Lint.analyze (baseline ()))

let test_rthv018_interval_refutes_closed () =
  check_fires "policy-curve refutation" "RTHV018"
    (Lint.analyze (Scenarios.demo_policy_bad ()));
  check_silent "grant-only system" "RTHV018" (Lint.analyze (baseline ()))

let test_rthv019_serialization_ceiling () =
  (* d_min 100us admits ~100 interpositions per 10000us cycle, but one
     serialized C'_BH of ~194us fits at most ~51: provably conservative. *)
  let config =
    baseline ~c_bh_us:150 ~shaping:(Config.Fixed_monitor (DF.d_min (us 100))) ()
  in
  check_fires "over-admitting condition" "RTHV019" (Lint.analyze config);
  check_silent "condition under the ceiling" "RTHV019"
    (Lint.analyze (baseline ()))

let test_rthv020_sustained_demand () =
  (* 300us of bottom half every 1000us lands ~40% demand (after eq. 13)
     on a 10% TDMA share. *)
  let partitions =
    [
      Config.partition ~name:"starved" ~slot_us:1_000 ();
      Config.partition ~name:"rest" ~slot_us:9_000 ();
    ]
  in
  let config =
    Config.make ~partitions
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:0 ~c_th_us:5
            ~c_bh_us:300
            ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 1_000) ~count:200)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 1_000)))
            ();
        ]
      ()
  in
  check_fires "sustained overload" "RTHV020" (Lint.analyze config);
  check_silent "sustainable demand" "RTHV020" (Lint.analyze (baseline ()))

let test_weighted_plan_linted_on_effective_slots () =
  (* The partition record says 5000us each, but the weighted plan squeezes
     partition "tiny" to ~25us — too small to cover the 50us slot-entry
     context switch.  The linter must see the plan's slots, not the
     partition records. *)
  let partitions =
    [
      Config.partition ~name:"tiny" ~slot_us:5_000 ();
      Config.partition ~name:"big" ~slot_us:5_000 ();
    ]
  in
  let config =
    Config.make ~partitions
      ~plan:(Config.Weighted_plan { cycle = us 10_000; weights = [| 1; 400 |] })
      ~sources:
        [
          Config.source ~name:"s" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
            ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 4_000) ~count:50)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 2_000)))
            ();
        ]
      ()
  in
  check_fires "squeezed slot" "RTHV002" (Lint.analyze config)

let test_c_bh_eff_eq13 () =
  (* C'_BH = C_BH + C_sched + 2*C_ctx = 8000 + 877 + 2*10000 cycles. *)
  Testutil.check_cycles "eq. (13)" 28_877
    (Lint.c_bh_eff ~platform:Rthv_hw.Platform.arm926ejs_200mhz ~c_bh:(us 40))

let test_example_scenarios_error_free () =
  List.iter
    (fun (name, build) ->
      let errors = D.errors (Lint.analyze (build ())) in
      if errors <> [] then
        Alcotest.failf "%s has lint errors: %s" name
          (String.concat "," (codes errors)))
    Scenarios.good

let test_demo_bad_fires_every_rule () =
  let diags = Lint.analyze (Scenarios.demo_bad ()) in
  List.iter
    (fun i -> check_fires "demo_bad" (Printf.sprintf "RTHV%03d" i) diags)
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 16; 19; 20 ]

(* The per-scenario expected-rule lists are derived from the linter itself
   (see the Scenarios mli), not maintained by hand: the pinned property is
   that the derivation is deterministic and that the scenario set as a
   whole exercises every catalogued rule except RTHV001 (which no valid
   configuration can fire — a crafted invalid one covers it above). *)
let test_scenario_rules_derived_from_linter () =
  let derive () =
    List.map
      (fun (name, build) -> (name, codes (Lint.analyze (build ()))))
    Scenarios.all
  in
  let derived = derive () in
  Alcotest.(check (list (pair string (list string))))
    "derivation is deterministic" derived (derive ());
  List.iter
    (fun (name, _) ->
      Alcotest.(check (list string))
        (name ^ " error-free") []
        (codes (D.errors (Lint.analyze ((Option.get (Scenarios.find name)) ())))))
    Scenarios.good;
  List.iter
    (fun (name, _) ->
      let fired = List.assoc name derived in
      if fired = [] then Alcotest.failf "%s fires no rules" name)
    Scenarios.bad;
  let union = List.sort_uniq compare (List.concat_map snd derived) in
  List.iter
    (fun (code, _) ->
      if code <> "RTHV001" && not (List.mem code union) then
        Alcotest.failf "rule %s fires on no scenario" code)
    Lint.rules

let test_rules_catalogue () =
  Alcotest.(check int) "20 static rules" 20 (List.length Lint.rules);
  let rule_codes = List.map fst Lint.rules in
  Alcotest.(check (list string)) "distinct codes"
    (List.sort_uniq compare rule_codes)
    (List.sort compare rule_codes)

let test_diagnostic_dedupe () =
  let d1 = D.error ~code:"RTHV005" ~loc:"partition a" "m" in
  let d2 = D.warning ~code:"RTHV010" ~loc:"source s" "w" in
  let deduped = D.dedupe [ d2; d1; d2; d1; d2 ] in
  Alcotest.(check int) "two groups" 2 (List.length deduped);
  (match deduped with
  | [ (a, na); (b, nb) ] ->
      Alcotest.(check string) "errors first" "RTHV005" a.D.code;
      Alcotest.(check int) "error count" 2 na;
      Alcotest.(check string) "then warnings" "RTHV010" b.D.code;
      Alcotest.(check int) "warning count" 3 nb
  | _ -> Alcotest.fail "unexpected dedupe shape");
  Alcotest.(check string) "counted rendering"
    "warning[RTHV010] source s: w  (x3)"
    (Format.asprintf "%a" D.pp_counted (d2, 3))

let test_diagnostic_json () =
  let d = D.error ~code:"RTHV001" ~loc:"config" ~hint:"h\"int" "a\nb" in
  Alcotest.(check string) "escaped"
    "{\"scenario\":\"x\",\"code\":\"RTHV001\",\"severity\":\"error\",\"loc\":\"config\",\"message\":\"a\\nb\",\"hint\":\"h\\\"int\"}"
    (D.to_json ~extra:[ ("scenario", "x") ] d)

let suite =
  [
    Alcotest.test_case "baseline clean" `Quick test_baseline_clean;
    Alcotest.test_case "RTHV001 short-circuits" `Quick test_rthv001_short_circuits;
    Alcotest.test_case "RTHV002 tiny slot" `Quick test_rthv002_tiny_slot;
    Alcotest.test_case "RTHV003 unbounded condition" `Quick
      test_rthv003_unbounded_condition;
    Alcotest.test_case "RTHV004 overload" `Quick test_rthv004_overload;
    Alcotest.test_case "RTHV005 certificate" `Quick test_rthv005_certificate;
    Alcotest.test_case "RTHV006 partition overload" `Quick
      test_rthv006_partition_overload;
    Alcotest.test_case "RTHV007 learning" `Quick test_rthv007_learning;
    Alcotest.test_case "RTHV008 vacuous grant" `Quick test_rthv008_vacuous_grant;
    Alcotest.test_case "RTHV009 workload vs condition" `Quick
      test_rthv009_workload_exceeds_condition;
    Alcotest.test_case "RTHV010 token-bucket burst" `Quick
      test_rthv010_token_bucket_burst;
    Alcotest.test_case "RTHV011 duplicate names" `Quick
      test_rthv011_duplicate_names;
    Alcotest.test_case "RTHV012 handler fit" `Quick test_rthv012_handler_slot_fit;
    Alcotest.test_case "RTHV013 budget vs foreign slots" `Quick
      test_rthv013_budget_starves_slot;
    Alcotest.test_case "RTHV014 composite bucket" `Quick
      test_rthv014_composite_bucket;
    Alcotest.test_case "RTHV015 budget never binds" `Quick
      test_rthv015_budget_never_binds;
    Alcotest.test_case "RTHV016 sole interposer" `Quick
      test_rthv016_sole_interposer;
    Alcotest.test_case "RTHV017 weighted starves subscriber" `Quick
      test_rthv017_weighted_starves_subscriber;
    Alcotest.test_case "RTHV018 interval refutes closed form" `Quick
      test_rthv018_interval_refutes_closed;
    Alcotest.test_case "RTHV019 serialization ceiling" `Quick
      test_rthv019_serialization_ceiling;
    Alcotest.test_case "RTHV020 sustained demand" `Quick
      test_rthv020_sustained_demand;
    Alcotest.test_case "weighted plans linted on effective slots" `Quick
      test_weighted_plan_linted_on_effective_slots;
    Alcotest.test_case "eq. (13) helper" `Quick test_c_bh_eff_eq13;
    Alcotest.test_case "example scenarios error-free" `Quick
      test_example_scenarios_error_free;
    Alcotest.test_case "demo_bad fires every rule" `Quick
      test_demo_bad_fires_every_rule;
    Alcotest.test_case "scenario rule lists derived from linter" `Quick
      test_scenario_rules_derived_from_linter;
    Alcotest.test_case "rules catalogue" `Quick test_rules_catalogue;
    Alcotest.test_case "diagnostic dedupe" `Quick test_diagnostic_dedupe;
    Alcotest.test_case "diagnostic JSON" `Quick test_diagnostic_json;
  ]
