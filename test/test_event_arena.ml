(* The packed event arena (lib/engine/event_arena.ml) against its reference
   semantics: min-heap by (time, insertion sequence), int payloads, and —
   the property the hot path is built on — zero minor-heap allocation for
   push/head/drop once the arena has reached its working size.  The
   Fast_forward mode helpers ride along: string round-trips, the env
   override, and the jump-end clipping rule. *)

module Cycles = Rthv_engine.Cycles
module Event_arena = Rthv_engine.Event_arena
module Fast_forward = Rthv_engine.Fast_forward

let test_empty () =
  let q = Event_arena.create () in
  Alcotest.(check bool) "empty" true (Event_arena.is_empty q);
  Alcotest.(check int) "length" 0 (Event_arena.length q);
  Alcotest.(check int) "head_time sentinel" Event_arena.no_event
    (Event_arena.head_time q);
  Alcotest.(check int) "no_event = max_int" max_int Event_arena.no_event;
  Event_arena.drop q;
  Alcotest.(check bool) "drop on empty is a no-op" true
    (Event_arena.is_empty q)

let test_ordering () =
  let q = Event_arena.create ~capacity:2 () in
  Event_arena.push q ~time:30 2;
  Event_arena.push q ~time:10 0;
  Event_arena.push q ~time:20 1;
  Event_arena.push q ~time:10 3;
  (* crosses the initial capacity: growth preserves order *)
  Event_arena.push q ~time:5 4;
  let order = ref [] in
  while not (Event_arena.is_empty q) do
    order := (Event_arena.head_time q, Event_arena.head_payload q) :: !order;
    Event_arena.drop q
  done;
  Alcotest.(check (list (pair int int)))
    "time order, ties by insertion"
    [ (5, 4); (10, 0); (10, 3); (20, 1); (30, 2) ]
    (List.rev !order)

let test_same_instant_fifo () =
  (* All events at one instant: delivery must be exactly insertion order
     (the boundary-vs-arrival coincidence case). *)
  let q = Event_arena.create () in
  for i = 0 to 63 do
    Event_arena.push q ~time:100 i
  done;
  let out = ref [] in
  while not (Event_arena.is_empty q) do
    out := Event_arena.head_payload q :: !out;
    Event_arena.drop q
  done;
  Alcotest.(check (list int)) "FIFO at equal times" (List.init 64 Fun.id)
    (List.rev !out)

let test_sorted_snapshot () =
  let q = Event_arena.create () in
  Event_arena.push q ~time:7 70;
  Event_arena.push q ~time:3 30;
  Event_arena.push q ~time:7 71;
  let snap = Event_arena.to_sorted_list q in
  Alcotest.(check int) "snapshot length" 3 (List.length snap);
  Alcotest.(check (list int)) "snapshot payload order" [ 30; 70; 71 ]
    (List.map (fun (_, _, p) -> p) snap);
  Alcotest.(check int) "snapshot is non-destructive" 3 (Event_arena.length q);
  Event_arena.clear q;
  Alcotest.(check bool) "clear empties" true (Event_arena.is_empty q)

let test_allocation_free () =
  let q = Event_arena.create ~capacity:256 () in
  (* Warm to working size, then drain: steady-state churn must not touch
     the minor heap. *)
  for i = 0 to 127 do
    Event_arena.push q ~time:i i
  done;
  let before = Gc.minor_words () in
  for round = 0 to 99 do
    Event_arena.push q ~time:(1000 + round) round;
    ignore (Event_arena.head_time q : int);
    ignore (Event_arena.head_payload q : int);
    Event_arena.drop q
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state push/head/drop allocate nothing (%.0f)"
       (after -. before))
    true
    (after -. before = 0.0)

(* Differential check against the boxed Event_queue on random streams. *)
let arena_matches_queue ops =
  let q = Event_arena.create ~capacity:1 () in
  let reference = ref [] in
  (* (time, seq, payload) list, sorted on demand *)
  let seq = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      if op >= 0 then begin
        Event_arena.push q ~time:(op mod 997) op;
        reference := (op mod 997, !seq, op) :: !reference;
        incr seq
      end
      else begin
        let sorted =
          List.sort
            (fun (t1, s1, _) (t2, s2, _) ->
              if t1 <> t2 then compare t1 t2 else compare s1 s2)
            !reference
        in
        match sorted with
        | [] -> if Event_arena.head_time q <> Event_arena.no_event then ok := false
        | (t, _, p) :: rest ->
            if Event_arena.head_time q <> t then ok := false;
            if Event_arena.head_payload q <> p then ok := false;
            Event_arena.drop q;
            reference := rest
      end)
    ops;
  !ok && Event_arena.length q = List.length !reference

let ops_gen = QCheck2.Gen.(list_size (1 -- 200) (-1 -- 500))

(* --- fast-forward mode helpers ------------------------------------------- *)

let test_mode_strings () =
  let check_rt mode =
    match Fast_forward.of_string (Fast_forward.to_string mode) with
    | Ok m -> Alcotest.(check bool) "round trip" true (m = mode)
    | Error e -> Alcotest.failf "round trip failed: %s" e
  in
  check_rt Fast_forward.Step;
  check_rt Fast_forward.Fast_forward;
  List.iter
    (fun (s, expect) ->
      match Fast_forward.of_string s with
      | Ok m -> Alcotest.(check bool) s true (m = expect)
      | Error e -> Alcotest.failf "%s rejected: %s" s e)
    [
      ("step", Fast_forward.Step);
      ("ff", Fast_forward.Fast_forward);
      ("fast-forward", Fast_forward.Fast_forward);
      ("fast_forward", Fast_forward.Fast_forward);
    ];
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Fast_forward.of_string "warp9"))

let test_mode_default () =
  (* Cannot mutate the environment portably from here; just pin the
     documented fallback when the variable is absent or already set to a
     valid value — default () must never raise in a configured test env. *)
  let m = Fast_forward.default () in
  Alcotest.(check bool) "default is a mode" true
    (m = Fast_forward.Step || m = Fast_forward.Fast_forward);
  Alcotest.(check string) "env var name" "RTHV_SIM_MODE" Fast_forward.env_var

let test_jump_end () =
  Alcotest.(check int) "completion first" 150
    (Fast_forward.jump_end ~now:100 ~remaining:50 ~next_event:200);
  Alcotest.(check int) "event clips" 120
    (Fast_forward.jump_end ~now:100 ~remaining:50 ~next_event:120);
  Alcotest.(check int) "tie" 150
    (Fast_forward.jump_end ~now:100 ~remaining:50 ~next_event:150);
  Alcotest.(check int) "empty arena sentinel never clips" 150
    (Fast_forward.jump_end ~now:100 ~remaining:50
       ~next_event:Event_arena.no_event)

let suite =
  [
    Alcotest.test_case "empty arena" `Quick test_empty;
    Alcotest.test_case "heap ordering with growth" `Quick test_ordering;
    Alcotest.test_case "FIFO at equal instants" `Quick test_same_instant_fifo;
    Alcotest.test_case "sorted snapshot and clear" `Quick test_sorted_snapshot;
    Alcotest.test_case "steady state allocates nothing" `Quick
      test_allocation_free;
    Testutil.qtest "arena == sorted reference on random ops" ops_gen
      arena_matches_queue;
    Alcotest.test_case "mode string round trips" `Quick test_mode_strings;
    Alcotest.test_case "mode default and env var" `Quick test_mode_default;
    Alcotest.test_case "jump_end clipping" `Quick test_jump_end;
  ]
