module Monitor = Rthv_core.Monitor
module Delta_learner = Rthv_core.Delta_learner
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let test_d_min_admission () =
  let m = Monitor.d_min (us 100) in
  Alcotest.(check bool) "first always admitted" true (Monitor.check m (us 0));
  Monitor.admit m (us 0);
  Alcotest.(check bool) "too close refused" false (Monitor.check m (us 99));
  Alcotest.(check bool) "exact distance admitted" true
    (Monitor.check m (us 100));
  Monitor.admit m (us 100);
  Alcotest.(check int) "admitted count" 2 (Monitor.admitted_count m)

let test_denied_does_not_consume_history () =
  (* A refused activation must not shift the history: the shaper only
     records admitted events, so later conforming events still pass. *)
  let m = Monitor.d_min (us 100) in
  Monitor.admit m (us 0);
  Alcotest.(check bool) "violation refused" false (Monitor.check m (us 50));
  Alcotest.(check bool) "conforming event unaffected by the refusal" true
    (Monitor.check m (us 100))

let test_admit_guards () =
  let m = Monitor.d_min (us 100) in
  Monitor.admit m (us 0);
  Alcotest.check_raises "admitting a violation is a programming error"
    (Invalid_argument "Monitor.admit: activation violates the monitoring condition")
    (fun () -> Monitor.admit m (us 10))

let test_l2_monitor () =
  (* Pairs may be 10us apart but triples need 1000us. *)
  let m = Monitor.fixed (DF.of_entries [| us 10; us 1000 |]) in
  Monitor.admit m (us 0);
  Alcotest.(check bool) "second of pair ok" true (Monitor.check m (us 10));
  Monitor.admit m (us 10);
  Alcotest.(check bool) "third too early (delta(3))" false
    (Monitor.check m (us 20));
  Alcotest.(check bool) "third after the long gap" true
    (Monitor.check m (us 1000));
  Monitor.admit m (us 1000)

let test_checked_counter () =
  let m = Monitor.d_min (us 100) in
  ignore (Monitor.check m 0 : bool);
  ignore (Monitor.check m 1 : bool);
  Alcotest.(check int) "checks counted" 2 (Monitor.checked_count m);
  Monitor.admit m (us 200);
  Alcotest.(check int) "admit does not inflate the check counter" 2
    (Monitor.checked_count m)

let test_self_learning_phases () =
  let m = Monitor.self_learning ~l:2 ~learn_events:3 () in
  (match Monitor.phase m with
  | Monitor.Learning 3 -> ()
  | _ -> Alcotest.fail "expected learning phase");
  Alcotest.(check bool) "no admission while learning" false
    (Monitor.check m (us 999_999));
  Monitor.note_arrival m (us 0);
  Monitor.note_arrival m (us 100);
  Alcotest.(check bool) "still learning" false (Monitor.check m (us 1_000_000));
  Monitor.note_arrival m (us 250);
  (match Monitor.phase m with
  | Monitor.Running -> ()
  | _ -> Alcotest.fail "expected running phase");
  (* Learned: delta(2) = 100us, delta(3) = 250us. *)
  (match Monitor.condition m with
  | Some fn ->
      Testutil.check_cycles "learned delta(2)" (us 100) (DF.entries fn).(0);
      Testutil.check_cycles "learned delta(3)" (us 250) (DF.entries fn).(1)
  | None -> Alcotest.fail "condition must exist after learning");
  Alcotest.(check bool) "run phase admits conforming" true
    (Monitor.check m (us 10_000))

let test_self_learning_bound () =
  (* Algorithm 2: the bound caps the admitted load. *)
  let bound = DF.of_entries [| us 500; us 1000 |] in
  let m = Monitor.self_learning ~l:2 ~learn_events:3 ~bound () in
  Monitor.note_arrival m (us 0);
  Monitor.note_arrival m (us 100);
  Monitor.note_arrival m (us 200);
  match Monitor.condition m with
  | Some fn ->
      (* Learned 100/200 but bound lifts to 500/1000. *)
      Testutil.check_cycles "bounded delta(2)" (us 500) (DF.entries fn).(0);
      Testutil.check_cycles "bounded delta(3)" (us 1000) (DF.entries fn).(1)
  | None -> Alcotest.fail "condition must exist"

let test_note_arrival_noop_when_running () =
  let m = Monitor.d_min (us 100) in
  Monitor.note_arrival m (us 0);
  Monitor.note_arrival m (us 1);
  match Monitor.phase m with
  | Monitor.Running -> ()
  | _ -> Alcotest.fail "fixed monitors always run"

let test_learner_matches_of_trace () =
  let timestamps = List.map us [ 0; 13; 57; 200; 201; 480; 481; 482 ] in
  let learner = Delta_learner.create ~l:4 in
  List.iter (Delta_learner.observe learner) timestamps;
  Alcotest.(check bool) "incremental learner agrees with batch of_trace" true
    (DF.equal (Delta_learner.learned learner) (DF.of_trace ~l:4 timestamps))

let test_learner_observed_count () =
  let learner = Delta_learner.create ~l:2 in
  Alcotest.(check int) "fresh" 0 (Delta_learner.observed learner);
  Delta_learner.observe learner 5;
  Delta_learner.observe learner 10;
  Alcotest.(check int) "counts" 2 (Delta_learner.observed learner);
  Alcotest.(check int) "l" 2 (Delta_learner.l learner)

(* Property: the stream of admitted activations always conforms to the
   monitoring condition — the safety property behind equation (14). *)
let prop_admitted_stream_conforms (d_min, offsets) =
  let m = Monitor.d_min d_min in
  let admitted = ref [] in
  let t = ref 0 in
  List.iter
    (fun gap ->
      t := !t + gap;
      if Monitor.check m !t then begin
        Monitor.admit m !t;
        admitted := !t :: !admitted
      end)
    offsets;
  DF.conforms (DF.d_min d_min) (List.rev !admitted)

let prop_admitted_stream_conforms_l entries_and_gaps =
  let entries, gaps = entries_and_gaps in
  let fn = DF.of_entries (Array.of_list entries) in
  let m = Monitor.fixed fn in
  let admitted = ref [] in
  let t = ref 0 in
  List.iter
    (fun gap ->
      t := !t + gap;
      if Monitor.check m !t then begin
        Monitor.admit m !t;
        admitted := !t :: !admitted
      end)
    gaps;
  DF.conforms fn (List.rev !admitted)

let suite =
  [
    Alcotest.test_case "d_min admission" `Quick test_d_min_admission;
    Alcotest.test_case "refusals keep history intact" `Quick
      test_denied_does_not_consume_history;
    Alcotest.test_case "admit guards" `Quick test_admit_guards;
    Alcotest.test_case "l=2 monitor" `Quick test_l2_monitor;
    Alcotest.test_case "check counter" `Quick test_checked_counter;
    Alcotest.test_case "self-learning phases (Algorithm 1)" `Quick
      test_self_learning_phases;
    Alcotest.test_case "learning bound (Algorithm 2)" `Quick
      test_self_learning_bound;
    Alcotest.test_case "fixed monitor runs immediately" `Quick
      test_note_arrival_noop_when_running;
    Alcotest.test_case "incremental = batch learning" `Quick
      test_learner_matches_of_trace;
    Alcotest.test_case "learner counters" `Quick test_learner_observed_count;
    Testutil.qtest "admitted stream conforms (l=1)"
      QCheck2.Gen.(pair (1 -- 10_000) (list_size (0 -- 200) (0 -- 20_000)))
      prop_admitted_stream_conforms;
    Testutil.qtest "admitted stream conforms (l<=4)"
      QCheck2.Gen.(
        pair (list_size (1 -- 4) (0 -- 10_000)) (list_size (0 -- 200) (0 -- 20_000)))
      prop_admitted_stream_conforms_l;
  ]

(* Appendix-A safety: with a bound delta^-_bIp, the run-phase admitted
   stream conforms to the BOUND, whatever the learning phase saw. *)
let prop_bounded_learning_admissions_conform (bound_entries, trace_gaps, run_gaps) =
  let l = List.length bound_entries in
  if l = 0 then true
  else begin
    let bound = DF.of_entries (Array.of_list bound_entries) in
    let learn_events = List.length trace_gaps in
    let m = Monitor.self_learning ~l ~learn_events ~bound () in
    let t = ref 0 in
    List.iter
      (fun gap ->
        t := !t + gap;
        Monitor.note_arrival m !t)
      trace_gaps;
    let admitted = ref [] in
    List.iter
      (fun gap ->
        t := !t + gap;
        if Monitor.check m !t then begin
          Monitor.admit m !t;
          admitted := !t :: !admitted
        end)
      run_gaps;
    (match Monitor.phase m with
    | Monitor.Running -> ()
    | Monitor.Learning _ when learn_events > 0 ->
        QCheck2.Test.fail_report "monitor failed to finish learning"
    | Monitor.Learning _ -> ());
    DF.conforms bound (List.rev !admitted)
  end

let suite =
  suite
  @ [
      Testutil.qtest "bounded self-learning admissions conform to the bound"
        QCheck2.Gen.(
          triple
            (list_size (1 -- 4) (0 -- 5_000))
            (list_size (1 -- 50) (0 -- 2_000))
            (list_size (0 -- 150) (0 -- 8_000)))
        prop_bounded_learning_admissions_conform;
    ]

(* The monitor's history is an unboxed ring buffer (O(1) admit); the
   original implementation was a [Cycles.t option array] shifted on every
   admission (O(l)).  This reference reimplements the original shifting
   semantics verbatim, and the property drives both through the same
   check/admit stream: every decision must agree at every step. *)
module Shift_reference = struct
  type t = { entries : int array; history : int option array }

  let create fn =
    let entries = DF.entries fn in
    { entries; history = Array.make (Array.length entries) None }

  let check t timestamp =
    (* delta(i+2) between [timestamp] and the (i+1)-th last admission. *)
    let ok = ref true in
    Array.iteri
      (fun i previous ->
        match previous with
        | Some p when timestamp - p < t.entries.(i) -> ok := false
        | Some _ | None -> ())
      t.history;
    !ok

  let admit t timestamp =
    let l = Array.length t.history in
    for i = l - 1 downto 1 do
      t.history.(i) <- t.history.(i - 1)
    done;
    if l > 0 then t.history.(0) <- Some timestamp
end

let prop_ring_equals_shift (entries, gaps) =
  let fn = DF.of_entries (Array.of_list entries) in
  let ring = Monitor.fixed fn in
  let shift = Shift_reference.create fn in
  let t = ref 0 in
  List.for_all
    (fun gap ->
      t := !t + gap;
      let ring_ok = Monitor.check ring !t in
      let shift_ok = Shift_reference.check shift !t in
      if ring_ok <> shift_ok then
        QCheck2.Test.fail_reportf
          "decision diverged at t=%d: ring=%b shift=%b" !t ring_ok shift_ok;
      if ring_ok then begin
        Monitor.admit ring !t;
        Shift_reference.admit shift !t
      end;
      true)
    gaps

let suite =
  suite
  @ [
      Testutil.qtest "ring-buffer history = array-shift reference (l<=4)"
        QCheck2.Gen.(
          pair
            (list_size (1 -- 4) (0 -- 10_000))
            (list_size (0 -- 300) (0 -- 20_000)))
        prop_ring_equals_shift;
    ]
