module Admission = Rthv_core.Admission
module Monitor = Rthv_core.Monitor
module Throttle = Rthv_core.Throttle
module Config = Rthv_core.Config
module DF = Rthv_analysis.Distance_fn

let test_never () =
  let a = Admission.never () in
  Alcotest.(check bool) "inactive" false (Admission.active a);
  Alcotest.(check bool) "denies" false (Admission.decide a 100);
  (* An inactive policy is never charged: no modified top handler, no
     C_Mon, so nothing to count. *)
  Alcotest.(check int) "checks never charged" 0 (Admission.checks a);
  Admission.observe a 200;
  Alcotest.(check_raises) "commit rejected"
    (Invalid_argument "Admission.never: nothing is ever admitted") (fun () ->
      Admission.commit a 300)

let test_of_monitor () =
  let a = Admission.of_monitor (Monitor.d_min 1_000) in
  Alcotest.(check bool) "active" true (Admission.active a);
  (* First activation is always admissible (empty history). *)
  Alcotest.(check bool) "first admitted" true (Admission.decide a 0);
  Admission.commit a 0;
  Alcotest.(check bool) "too close denied" false (Admission.decide a 500);
  Alcotest.(check bool) "far enough admitted" true (Admission.decide a 1_000);
  Admission.commit a 1_000;
  Alcotest.(check int) "three paid checks" 3 (Admission.checks a);
  Alcotest.(check bool) "exposes its monitor" true
    (Option.is_some (Admission.monitor a))

let test_of_throttle () =
  let a = Admission.of_throttle (Throttle.create ~capacity:1 ~refill:1_000) in
  Alcotest.(check bool) "token available" true (Admission.decide a 0);
  Admission.commit a 0;
  Alcotest.(check bool) "bucket empty" false (Admission.decide a 100);
  Alcotest.(check bool) "refilled" true (Admission.decide a 1_100);
  Alcotest.(check bool) "no monitor" true
    (Option.is_none (Admission.monitor a))

let test_budgeted () =
  let a = Admission.budgeted ~per_cycle:2 ~cycle:1_000 in
  Alcotest.(check bool) "1st in window" true (Admission.decide a 0);
  Admission.commit a 0;
  Alcotest.(check bool) "2nd in window" true (Admission.decide a 400);
  Admission.commit a 400;
  Alcotest.(check bool) "3rd denied" false (Admission.decide a 800);
  (* Aligned windows: ts=1000 starts window 1 and the budget is fresh. *)
  Alcotest.(check bool) "next window fresh" true (Admission.decide a 1_000);
  Admission.commit a 1_000;
  Alcotest.(check int) "four paid checks" 4 (Admission.checks a);
  Alcotest.(check_raises) "exhausted commit rejected"
    (Invalid_argument "Admission.budgeted: budget exhausted") (fun () ->
      Admission.commit a 1_100;
      Admission.commit a 1_200;
      Admission.commit a 1_300)

let test_budgeted_validation () =
  Alcotest.(check_raises) "per_cycle >= 1"
    (Invalid_argument "Admission.budgeted: per_cycle must be >= 1") (fun () ->
      ignore (Admission.budgeted ~per_cycle:0 ~cycle:1_000));
  Alcotest.(check_raises) "cycle >= 1"
    (Invalid_argument "Admission.budgeted: cycle must be >= 1") (fun () ->
      ignore (Admission.budgeted ~per_cycle:1 ~cycle:0))

let test_all_of_conjunction () =
  (* Monitor alone would admit at t=1000; a 1-deep bucket with a slow refill
     still has no token, so the conjunction denies. *)
  let a =
    Admission.all_of
      [
        Admission.of_monitor (Monitor.d_min 1_000);
        Admission.of_throttle (Throttle.create ~capacity:1 ~refill:5_000);
      ]
  in
  Alcotest.(check bool) "both admit" true (Admission.decide a 0);
  Admission.commit a 0;
  Alcotest.(check bool) "bucket vetoes" false (Admission.decide a 1_000);
  Alcotest.(check bool) "both again" true (Admission.decide a 5_000);
  (* Every component's check runs on every decide (the real top handler
     evaluates its whole predicate): 3 decides x 2 components. *)
  Alcotest.(check int) "checks are summed" 6 (Admission.checks a);
  Alcotest.(check string) "name joined" "monitor+bucket" (Admission.name a)

let test_all_of_empty () =
  Alcotest.(check_raises) "empty conjunction rejected"
    (Invalid_argument "Admission.all_of: no components") (fun () ->
      ignore (Admission.all_of []))

let test_all_of_active () =
  let a = Admission.all_of [ Admission.never (); Admission.budgeted ~per_cycle:1 ~cycle:10 ] in
  Alcotest.(check bool) "never component deactivates" false
    (Admission.active a)

let test_of_shaping () =
  let cycle = 10_000 in
  let case shaping expect_active expect_monitor =
    let a = Admission.of_shaping ~cycle shaping in
    Alcotest.(check bool) "active" expect_active (Admission.active a);
    Alcotest.(check bool) "monitor" expect_monitor
      (Option.is_some (Admission.monitor a))
  in
  case Config.No_shaping false false;
  case (Config.Fixed_monitor (DF.d_min 1_000)) true true;
  case (Config.Self_learning { l = 2; learn_events = 4; bound = None }) true
    true;
  case (Config.Token_bucket { capacity = 2; refill = 1_000 }) true false;
  case (Config.Budgeted { per_cycle = 3 }) true false;
  case
    (Config.Monitor_and_bucket
       { fn = DF.d_min 1_000; capacity = 2; refill = 1_000 })
    true true

let test_budgeted_of_shaping_uses_cycle () =
  (* Budgeted shaping is parameterized by the TDMA cycle length. *)
  let a = Admission.of_shaping ~cycle:100 (Config.Budgeted { per_cycle = 1 }) in
  Alcotest.(check bool) "admit in window 0" true (Admission.decide a 10);
  Admission.commit a 10;
  Alcotest.(check bool) "window 0 exhausted" false (Admission.decide a 90);
  Alcotest.(check bool) "window 1 fresh" true (Admission.decide a 110)

(* The README's running example: an every-other-activation policy the
   Config grammar cannot express, built from closures and counted by the
   wrapper, then injected into a full simulation via ?policies. *)
let test_custom () =
  let parity = ref 0 in
  let a =
    Admission.custom ~name:"every-other"
      ~decide:(fun _ -> !parity mod 2 = 0)
      ~commit:(fun _ -> incr parity)
      ()
  in
  Alcotest.(check bool) "active" true (Admission.active a);
  Alcotest.(check bool) "first admitted" true (Admission.decide a 0);
  Admission.commit a 0;
  Alcotest.(check bool) "second denied" false (Admission.decide a 100);
  Alcotest.(check bool) "still denied" false (Admission.decide a 200);
  parity := 2;
  Alcotest.(check bool) "third admitted" true (Admission.decide a 300);
  Alcotest.(check int) "checks counted by wrapper" 4 (Admission.checks a);
  Alcotest.(check bool) "no monitor" true
    (Option.is_none (Admission.monitor a))

let test_policies_injection () =
  let module Hyp_sim = Rthv_core.Hyp_sim in
  let module Gen = Rthv_workload.Gen in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"a" ~slot_us:5_000 ();
          Config.partition ~name:"b" ~slot_us:5_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:40
            ~interarrivals:
              (Gen.constant ~period:(Rthv_engine.Cycles.of_us 3_000)
                 ~count:200)
            ~shaping:Config.No_shaping ()
        ]
      ()
  in
  (* Unknown source names are rejected up front. *)
  Alcotest.(check_raises) "unknown source rejected"
    (Invalid_argument "Hyp_sim.create: policy for unknown source ghost")
    (fun () ->
      ignore
        (Hyp_sim.create
           ~policies:[ ("ghost", Admission.never ()) ]
           config));
  (* An admit-everything custom policy turns the unshaped baseline (all
     foreign-slot IRQs delayed) into interposed handling, end to end. *)
  let all =
    Admission.custom ~name:"admit-all"
      ~decide:(fun _ -> true)
      ~commit:(fun _ -> ())
      ()
  in
  (* The trace oracle derives its invariants from the configuration's
     shaping, which an injected policy deliberately overrides — audit the
     override against config-derived bounds and RTHV104 fires (correctly:
     an unshaped config promises zero interposition load).  Suspend the
     suite-wide hook for exactly this run. *)
  let was_installed = Rthv_check.Audit_hook.installed () in
  Rthv_check.Audit_hook.uninstall ();
  let stats =
    Fun.protect
      ~finally:(fun () ->
        if was_installed then Rthv_check.Audit_hook.install ())
      (fun () ->
        let sim = Hyp_sim.create ~policies:[ ("nic", all) ] config in
        Hyp_sim.run sim;
        Hyp_sim.stats sim)
  in
  Alcotest.(check bool) "interposes under the custom policy" true
    (stats.Hyp_sim.interposed > 0);
  Alcotest.(check int) "simulator checks = policy checks"
    stats.Hyp_sim.monitor_checks (Admission.checks all);
  (* Without the override the same configuration never interposes. *)
  let base = Hyp_sim.create config in
  Hyp_sim.run base;
  Alcotest.(check int) "baseline stays Figure-4a" 0
    (Hyp_sim.stats base).Hyp_sim.interposed

let suite =
  [
    Alcotest.test_case "never: inactive Figure-4a policy" `Quick test_never;
    Alcotest.test_case "of_monitor drives the monitor" `Quick test_of_monitor;
    Alcotest.test_case "of_throttle drives the bucket" `Quick test_of_throttle;
    Alcotest.test_case "budgeted: aligned windows" `Quick test_budgeted;
    Alcotest.test_case "budgeted: argument validation" `Quick
      test_budgeted_validation;
    Alcotest.test_case "all_of: conjunction + summed checks" `Quick
      test_all_of_conjunction;
    Alcotest.test_case "all_of: empty rejected" `Quick test_all_of_empty;
    Alcotest.test_case "all_of: active iff all active" `Quick
      test_all_of_active;
    Alcotest.test_case "of_shaping covers every variant" `Quick
      test_of_shaping;
    Alcotest.test_case "of_shaping Budgeted uses the cycle" `Quick
      test_budgeted_of_shaping_uses_cycle;
    Alcotest.test_case "custom: closures + counted checks" `Quick test_custom;
    Alcotest.test_case "Hyp_sim ?policies injection" `Quick
      test_policies_injection;
  ]
