(* Golden-equivalence suite for the policy-core refactor.

   The goldens below were captured from the pre-refactor simulator (the
   monolithic Hyp_sim with its closed shaper dispatch) for every canonical
   scenario: full statistics, an MD5 over the serialized Irq_record stream,
   and an MD5 over the pretty-printed hypervisor trace.  The refactored
   policy layers (Admission / Slot_plan / Boundary_policy and the
   Sim_route / Sim_boundary split) must reproduce them byte for byte —
   any drift in routing order, admission counting or trace emission shows
   up as a digest mismatch here.

   The property tests at the bottom pin the seams themselves: a static
   Slot_plan is observationally equal to the Tdma table it compiles to,
   Admission.of_monitor is equal to driving the Monitor directly, and a
   composite with a provably vacuous bucket decides exactly like the plain
   monitor. *)

module Cycles = Rthv_engine.Cycles
module Fast_forward = Rthv_engine.Fast_forward
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Irq_record = Rthv_core.Irq_record
module Tdma = Rthv_core.Tdma
module Slot_plan = Rthv_core.Slot_plan
module Admission = Rthv_core.Admission
module Monitor = Rthv_core.Monitor
module DF = Rthv_analysis.Distance_fn
module Scenarios = Rthv_check.Scenarios
module Headroom = Rthv_check.Headroom
module Registry = Rthv_obs.Registry
module Recorder = Rthv_obs.Recorder
module Sink = Rthv_obs.Sink

type golden = {
  g_completed : int;
  g_direct : int;
  g_interposed : int;
  g_delayed : int;
  g_slot_switches : int;
  g_interposition_switches : int;
  g_interpositions_started : int;
  g_boundary_crossings : int;
  g_bh_boundary_deferrals : int;
  g_monitor_checks : int;
  g_admissions : int;
  g_denials : int;
  g_coalesced : int;
  g_stolen_total : Cycles.t array;
  g_stolen_slot_max : Cycles.t array;
  g_sim_time : Cycles.t;
  g_records_digest : string;
  g_trace_digest : string;
  g_trace_len : int;
}

let goldens =
  [
    ("quickstart", { g_completed = 2000; g_direct = 981; g_interposed = 549; g_delayed = 470; g_slot_switches = 807; g_interposition_switches = 1098; g_interpositions_started = 549; g_boundary_crossings = 5; g_bh_boundary_deferrals = 5; g_monitor_checks = 1020; g_admissions = 549; g_denials = 470; g_coalesced = 0; g_stolen_total = [|15614067; 239406|]; g_stolen_slot_max = [|86631; 28373|]; g_sim_time = 807856193; g_records_digest = "41b30f10757e2b08ac6ec0e9cfe064ab"; g_trace_digest = "3be74b3a6c40d5da5baf830c62b8193f"; g_trace_len = 10935 });
    ("conformant", { g_completed = 2000; g_direct = 1016; g_interposed = 984; g_delayed = 0; g_slot_switches = 1099; g_interposition_switches = 1968; g_interpositions_started = 984; g_boundary_crossings = 9; g_bh_boundary_deferrals = 8; g_monitor_checks = 984; g_admissions = 984; g_denials = 0; g_coalesced = 0; g_stolen_total = [|27961047; 453921|]; g_stolen_slot_max = [|86631; 27918|]; g_sim_time = 1099134738; g_records_digest = "a0dfadd8f531159b40eb125b52a93cf8"; g_trace_digest = "44baa4188c612ad78923f2fa0dec9822"; g_trace_len = 12068 });
    ("avionics_ima", { g_completed = 5000; g_direct = 1479; g_interposed = 2286; g_delayed = 1235; g_slot_switches = 12403; g_interposition_switches = 4572; g_interpositions_started = 2286; g_boundary_crossings = 60; g_bh_boundary_deferrals = 11; g_monitor_checks = 2287; g_admissions = 2286; g_denials = 0; g_coalesced = 0; g_stolen_total = [|32850715; 33554708; 638617; 8112782|]; g_stolen_slot_max = [|32877; 32877; 32814; 32877|]; g_sim_time = 7442328812; g_records_digest = "bc9117829effe2e232ee32f41ac4170e"; g_trace_digest = "5519acd2a8e28d6f126ecf6905536704"; g_trace_len = 39333 });
    ("automotive_ecu", { g_completed = 10550; g_direct = 4509; g_interposed = 5115; g_delayed = 926; g_slot_switches = 6012; g_interposition_switches = 10230; g_interpositions_started = 5115; g_boundary_crossings = 42; g_bh_boundary_deferrals = 33; g_monitor_checks = 6043; g_admissions = 5115; g_denials = 926; g_coalesced = 0; g_stolen_total = [|117010795; 1167206; 39757854|]; g_stolen_slot_max = [|123508; 30574; 92631|]; g_sim_time = 5611417914; g_records_digest = "0964cad08bff5b73fefde2cd0784a54a"; g_trace_digest = "1f3da6dc10e7db3da9b91a2d01fc4881"; g_trace_len = 64560 });
    ("mixed_policies", { g_completed = 3000; g_direct = 1281; g_interposed = 1405; g_delayed = 314; g_slot_switches = 948; g_interposition_switches = 2810; g_interpositions_started = 1405; g_boundary_crossings = 19; g_bh_boundary_deferrals = 7; g_monitor_checks = 2585; g_admissions = 1405; g_denials = 314; g_coalesced = 0; g_stolen_total = [|18745565; 15271615; 7637005|]; g_stolen_slot_max = [|106676; 89977; 90631|]; g_sim_time = 884860000; g_records_digest = "d3413dba10a4f9a7518f60aee4b56a04"; g_trace_digest = "f3d559b4c723fc08c34457dd0626e095"; g_trace_len = 17503 });
    ("demo_bad", { g_completed = 112; g_direct = 69; g_interposed = 29; g_delayed = 14; g_slot_switches = 105; g_interposition_switches = 58; g_interpositions_started = 29; g_boundary_crossings = 7; g_bh_boundary_deferrals = 0; g_monitor_checks = 43; g_admissions = 29; g_denials = 14; g_coalesced = 0; g_stolen_total = [|18153; 572031; 240139; 281110|]; g_stolen_slot_max = [|7138; 62877; 50877; 50877|]; g_sim_time = 16067005; g_records_digest = "df572018ba7787b43a91bbb5c1d05227"; g_trace_digest = "926475a22b8a0c9c877b053225b6859d"; g_trace_len = 661 });
    ("demo_policy_bad", { g_completed = 1088; g_direct = 396; g_interposed = 618; g_delayed = 74; g_slot_switches = 485; g_interposition_switches = 1236; g_interpositions_started = 618; g_boundary_crossings = 4; g_bh_boundary_deferrals = 102; g_monitor_checks = 647; g_admissions = 618; g_denials = 29; g_coalesced = 0; g_stolen_total = [|9132276; 6808807; 466903|]; g_stolen_slot_max = [|239416; 230216; 39812|]; g_sim_time = 512891177; g_records_digest = "eb060affaa592ba5345c3a95ac3df476"; g_trace_digest = "49636ff2fc49afa38a76e8805cc64424"; g_trace_len = 6826 });
  ]

let serialize_record (r : Irq_record.t) =
  Printf.sprintf "%d|%s|%d|%d|%d|%d|%s|%d" r.Irq_record.irq r.Irq_record.source
    r.Irq_record.line r.Irq_record.arrival r.Irq_record.top_start
    r.Irq_record.top_end
    (Irq_record.classification_name r.Irq_record.classification)
    r.Irq_record.completion

let digest s = Digest.to_hex (Digest.string s)

let run_scenario ~mode name =
  let config =
    match Scenarios.find name with
    | Some f -> f ()
    | None -> Alcotest.failf "unknown scenario %s" name
  in
  let trace = Hyp_trace.create ~capacity:(1 lsl 20) () in
  let sim = Hyp_sim.create ~trace ~mode config in
  Hyp_sim.run sim;
  (Hyp_sim.stats sim, Hyp_sim.records sim, trace)

(* Every scenario is checked against the SAME golden in BOTH engine modes:
   the goldens were captured from the step (reference) engine, so a pass in
   [Fast_forward] proves the compressed engine's observable behaviour —
   stats, record stream, trace emission — is byte-identical to stepping. *)
let check_golden ~mode name (g : golden) () =
  let stats, records, trace = run_scenario ~mode name in
  let ci = Alcotest.(check int) in
  ci "completed" g.g_completed stats.Hyp_sim.completed_irqs;
  ci "direct" g.g_direct stats.Hyp_sim.direct;
  ci "interposed" g.g_interposed stats.Hyp_sim.interposed;
  ci "delayed" g.g_delayed stats.Hyp_sim.delayed;
  ci "slot switches" g.g_slot_switches stats.Hyp_sim.slot_switches;
  ci "interposition switches" g.g_interposition_switches
    stats.Hyp_sim.interposition_switches;
  ci "interpositions started" g.g_interpositions_started
    stats.Hyp_sim.interpositions_started;
  ci "boundary crossings" g.g_boundary_crossings
    stats.Hyp_sim.boundary_crossings;
  ci "bh boundary deferrals" g.g_bh_boundary_deferrals
    stats.Hyp_sim.bh_boundary_deferrals;
  ci "monitor checks" g.g_monitor_checks stats.Hyp_sim.monitor_checks;
  ci "admissions" g.g_admissions stats.Hyp_sim.admissions;
  ci "denials" g.g_denials stats.Hyp_sim.denials;
  ci "coalesced" g.g_coalesced stats.Hyp_sim.coalesced_irqs;
  Alcotest.(check (array int))
    "stolen_total" g.g_stolen_total stats.Hyp_sim.stolen_total;
  Alcotest.(check (array int))
    "stolen_slot_max" g.g_stolen_slot_max stats.Hyp_sim.stolen_slot_max;
  ci "sim time" g.g_sim_time stats.Hyp_sim.sim_time;
  Alcotest.(check string)
    "records digest" g.g_records_digest
    (digest (String.concat "\n" (List.map serialize_record records)));
  ci "trace length" g.g_trace_len (List.length (Hyp_trace.to_list trace));
  Alcotest.(check string)
    "trace digest" g.g_trace_digest
    (digest (Format.asprintf "%a" Hyp_trace.pp trace))

(* --- step / fast-forward differential ------------------------------------ *)

(* Randomized configurations and workloads pushed through BOTH engine modes
   must agree on every observable: the statistics record, the serialized
   Irq_record stream, the pretty-printed hypervisor trace, and the bound
   headroom report computed from the emitted latency summaries.  This is the
   property the golden rows pin for the canonical scenarios, generalized to
   arbitrary configurations. *)

type diff_case = {
  dc_slots_us : int list;  (* per-partition slot lengths *)
  dc_sources : (int * int * int * int * int list * bool * int) list;
      (* subscriber, c_th_us, c_bh_us, shaping selector, interarrivals_us,
         absolute arrivals?, d_min_us *)
  dc_defer : bool;
}

let diff_case_gen =
  let open QCheck2.Gen in
  let* n_parts = 2 -- 3 in
  let* slots = list_repeat n_parts (200 -- 1_500) in
  let* n_sources = 1 -- 3 in
  let* sources =
    list_repeat n_sources
      (let* subscriber = 0 -- (n_parts - 1) in
       let* c_th = 2 -- 10 in
       let* c_bh = 20 -- 80 in
       let* shaping = 0 -- 3 in
       let* arrivals = list_size (10 -- 60) (150 -- 4_000) in
       let* absolute = bool in
       let* d_min = 300 -- 2_000 in
       return (subscriber, c_th, c_bh, shaping, arrivals, absolute, d_min))
  in
  let* defer = bool in
  return { dc_slots_us = slots; dc_sources = sources; dc_defer = defer }

let diff_config (c : diff_case) =
  let partitions =
    List.mapi
      (fun i slot_us ->
        Config.partition ~name:(Printf.sprintf "p%d" i) ~slot_us ())
      c.dc_slots_us
  in
  let sources =
    List.mapi
      (fun i (subscriber, c_th_us, c_bh_us, shaping, arrivals, absolute, d_min)
         ->
        let shaping =
          match shaping with
          | 0 -> Config.No_shaping
          | 1 -> Config.Fixed_monitor (DF.d_min (Cycles.of_us d_min))
          | 2 ->
              Config.Token_bucket
                { capacity = 2; refill = Cycles.of_us d_min }
          | _ -> Config.Budgeted { per_cycle = 2 }
        in
        Config.source
          ~name:(Printf.sprintf "s%d" i)
          ~line:i ~subscriber ~c_th_us ~c_bh_us
          ~interarrivals:
            (Array.of_list (List.map Cycles.of_us arrivals))
          ~arrival_mode:(if absolute then Config.Absolute else Config.Reprogram)
          ~shaping ())
      c.dc_sources
  in
  Config.make
    ~finish_bh_at_boundary:c.dc_defer
    ~partitions ~sources ()

(* One run of a config under the given mode, with the full observability
   stack attached, reduced to a comparable fingerprint. *)
let diff_run mode config =
  let registry = Registry.create () in
  let recorder = Recorder.create ~registry () in
  let trace = Hyp_trace.create ~capacity:(1 lsl 20) () in
  let sim = Hyp_sim.create ~trace ~mode config in
  Sink.with_sink (Recorder.sink recorder) (fun () -> Hyp_sim.run sim);
  let stats = Hyp_sim.stats sim in
  let records =
    digest
      (String.concat "\n" (List.map serialize_record (Hyp_sim.records sim)))
  in
  let trace_digest = digest (Format.asprintf "%a" Hyp_trace.pp trace) in
  let headroom = Headroom.verdicts config registry in
  (stats, records, trace_digest, headroom)

let prop_modes_agree case =
  let config = diff_config case in
  match Config.validate config with
  | Error _ -> QCheck2.assume_fail ()
  | Ok () ->
      let s1, r1, t1, h1 = diff_run Fast_forward.Step config in
      let s2, r2, t2, h2 = diff_run Fast_forward.Fast_forward config in
      s1 = s2 && String.equal r1 r2 && String.equal t1 t2 && h1 = h2

(* --- seam properties ----------------------------------------------------- *)

let slots_gen =
  QCheck2.Gen.(list_size (1 -- 6) (1 -- 50_000))

(* A static Slot_plan is observationally the Tdma table it compiles to. *)
let prop_static_plan_is_tdma slots =
  let slots = Array.of_list slots in
  let plan = Slot_plan.static slots in
  let tdma = Tdma.make slots in
  let compiled = Slot_plan.tdma plan in
  let cycle = Tdma.cycle_length tdma in
  Slot_plan.cycle_length plan = cycle
  && Slot_plan.partitions plan = Array.length slots
  && List.for_all
       (fun q ->
         let ts = q * cycle / 7 in
         Tdma.slot_bounds_at compiled ts = Tdma.slot_bounds_at tdma ts
         && Tdma.next_boundary compiled ts = Tdma.next_boundary tdma ts)
       [ 0; 1; 2; 3; 4; 5; 6; 7; 13 ]

(* Equal weights over a divisible cycle apportion to equal slots. *)
let prop_equal_weights_uniform params =
  let n, unit_len = params in
  let weights = Array.make n 1 in
  let cycle = n * unit_len in
  let plan = Slot_plan.weighted ~cycle ~weights in
  let slots = Slot_plan.slots plan in
  Array.for_all (fun s -> s = unit_len) slots
  && Array.fold_left ( + ) 0 slots = cycle

(* Weighted plans always conserve the cycle and keep every slot positive. *)
let prop_weighted_conserves params =
  let cycle_extra, weights = params in
  let weights = Array.of_list weights in
  let n = Array.length weights in
  let cycle = n + cycle_extra in
  let plan = Slot_plan.weighted ~cycle ~weights in
  let slots = Slot_plan.slots plan in
  Array.fold_left ( + ) 0 slots = cycle && Array.for_all (fun s -> s > 0) slots

(* Admission.of_monitor is the Monitor, driven through the policy seam. *)
let prop_of_monitor_equals_monitor distances =
  let d_min = 1_000 in
  let a = Admission.of_monitor (Monitor.d_min d_min) in
  let m = Monitor.d_min d_min in
  let now = ref 0 in
  let ok = ref true in
  List.iter
    (fun d ->
      now := !now + d;
      let via_policy = Admission.decide a !now in
      let direct = Monitor.check m !now in
      if via_policy <> direct then ok := false;
      if via_policy then begin
        Admission.commit a !now;
        Monitor.admit m !now
      end)
    distances;
  !ok && Admission.checks a = Monitor.checked_count m

(* A composite whose bucket is vacuous against the monitoring condition
   (refill <= delta^-(2), capacity >= 1) decides exactly like the plain
   monitor on every stream. *)
let prop_vacuous_bucket_is_monitor distances =
  let d_min = 1_000 in
  let fn = DF.d_min d_min in
  let composite =
    Admission.monitor_and_bucket ~fn ~capacity:1 ~refill:d_min
  in
  let plain = Admission.of_monitor (Monitor.fixed fn) in
  let now = ref 0 in
  let ok = ref true in
  List.iter
    (fun d ->
      now := !now + d;
      let c = Admission.decide composite !now in
      let p = Admission.decide plain !now in
      if c <> p then ok := false;
      if c then begin
        Admission.commit composite !now;
        Admission.commit plain !now
      end)
    distances;
  !ok

let distances_gen = QCheck2.Gen.(list_size (1 -- 40) (1 -- 5_000))

let weighted_params_gen =
  QCheck2.Gen.(pair (0 -- 100_000) (list_size (1 -- 6) (1 -- 20)))

let equal_weights_gen = QCheck2.Gen.(pair (1 -- 6) (1 -- 10_000))

let suite =
  List.concat_map
    (fun (name, g) ->
      [
        Alcotest.test_case
          (Printf.sprintf "golden: %s [step]" name)
          `Slow
          (check_golden ~mode:Fast_forward.Step name g);
        Alcotest.test_case
          (Printf.sprintf "golden: %s [ff]" name)
          `Slow
          (check_golden ~mode:Fast_forward.Fast_forward name g);
      ])
    goldens
  @ [
      Testutil.qtest ~count:60 "step == fast-forward (randomized configs)"
        diff_case_gen prop_modes_agree;
      Testutil.qtest "static plan == Tdma" slots_gen prop_static_plan_is_tdma;
      Testutil.qtest "equal weights apportion uniformly" equal_weights_gen
        prop_equal_weights_uniform;
      Testutil.qtest "weighted plan conserves the cycle" weighted_params_gen
        prop_weighted_conserves;
      Testutil.qtest "of_monitor == Monitor" distances_gen
        prop_of_monitor_equals_monitor;
      Testutil.qtest "vacuous bucket == plain monitor" distances_gen
        prop_vacuous_bucket_is_monitor;
    ]
