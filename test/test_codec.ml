(* Config JSON codec and fleet generation: the interchange layer under
   rthv_lint --batch / --gen-batch. *)

module Config = Rthv_core.Config
module Codec = Rthv_check.Config_codec
module Fleet = Rthv_check.Fleet
module Lint = Rthv_check.Lint
module D = Rthv_check.Diagnostic
module Scenarios = Rthv_check.Scenarios

let codes diags = List.map (fun d -> d.D.code) diags

let roundtrip name config =
  match Codec.to_string config with
  | Error e -> Alcotest.failf "%s: encode failed: %s" name e
  | Ok s -> (
      match Codec.of_string s with
      | Error e -> Alcotest.failf "%s: decode failed: %s" name e
      | Ok config' ->
          (* The decoded config must be analysis-equivalent (same lint
             verdicts) and re-encode byte-identically (canonical form). *)
          Alcotest.(check (list string))
            (name ^ " lint-equivalent")
            (codes (Lint.analyze config))
            (codes (Lint.analyze config'));
          (match Codec.to_string config' with
          | Error e -> Alcotest.failf "%s: re-encode failed: %s" name e
          | Ok s' -> Alcotest.(check string) (name ^ " canonical") s s'))

let test_scenarios_roundtrip () =
  List.iter (fun (name, build) -> roundtrip name (build ())) Scenarios.all

let test_fleet_roundtrip () =
  List.iter
    (fun (name, config) -> roundtrip name config)
    (Fleet.gen_batch ~seed:7 ~count:20)

let test_decode_rejects_garbage () =
  List.iter
    (fun s ->
      match Codec.of_string s with
      | Ok _ -> Alcotest.failf "decoded %S" s
      | Error _ -> ())
    [ ""; "42"; "{}"; "{\"partitions\":3}"; "[1,2]"; "{\"partitions" ]

let test_fleet_deterministic () =
  let names b = List.map fst b in
  let b1 = Fleet.gen_batch ~seed:42 ~count:30
  and b2 = Fleet.gen_batch ~seed:42 ~count:30 in
  Alcotest.(check (list string)) "names" (names b1) (names b2);
  List.iter2
    (fun (n, c1) (_, c2) ->
      Alcotest.(check string) (n ^ " identical")
        (Result.get_ok (Codec.to_string c1))
        (Result.get_ok (Codec.to_string c2)))
    b1 b2;
  (* A different seed must actually change the fleet. *)
  let b3 = Fleet.gen_batch ~seed:43 ~count:30 in
  if
    List.for_all2
      (fun (_, c1) (_, c3) ->
        Result.get_ok (Codec.to_string c1)
        = Result.get_ok (Codec.to_string c3))
      b1 b3
  then Alcotest.fail "seed 42 and 43 generated identical fleets"

let test_write_load_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rthv-fleet-test" in
  (try
     Sys.readdir dir |> Array.iter (fun f -> Sys.remove (Filename.concat dir f))
   with Sys_error _ -> ());
  let batch = Fleet.gen_batch ~seed:11 ~count:10 in
  (match Fleet.write_batch ~dir batch with
  | Error e -> Alcotest.failf "write_batch: %s" e
  | Ok n -> Alcotest.(check int) "written" 10 n);
  match Fleet.load_dir dir with
  | Error e -> Alcotest.failf "load_dir: %s" e
  | Ok loaded ->
      Alcotest.(check (list string)) "names back in order" (List.map fst batch)
        (List.map fst loaded);
      List.iter2
        (fun (n, c) (_, c') ->
          Alcotest.(check string) (n ^ " survives disk")
            (Result.get_ok (Codec.to_string c))
            (Result.get_ok (Codec.to_string c')))
        batch loaded

let test_batch_report_job_invariant () =
  let batch = Fleet.gen_batch ~seed:42 ~count:16 in
  let report jobs =
    Fleet.report
      (Fleet.lint_batch ~pool:(Rthv_par.Par.create ~jobs ()) batch)
  in
  Alcotest.(check string) "jobs 1 = jobs 4" (report 1) (report 4)

let suite =
  [
    Alcotest.test_case "scenarios round-trip" `Quick test_scenarios_roundtrip;
    Alcotest.test_case "fleet round-trip" `Quick test_fleet_roundtrip;
    Alcotest.test_case "decode rejects garbage" `Quick
      test_decode_rejects_garbage;
    Alcotest.test_case "fleet generation deterministic" `Quick
      test_fleet_deterministic;
    Alcotest.test_case "write/load round-trip" `Quick test_write_load_roundtrip;
    Alcotest.test_case "batch report job-invariant" `Quick
      test_batch_report_job_invariant;
  ]
