(* Counterexample synthesis: the soundness contract is that certified
   Error-severity refutations always ship a confirmed adversarial witness
   — the replayed trace is Error-clean against the true spec and triggers
   the predicted oracle rule against the claim spec. *)

module Config = Rthv_core.Config
module D = Rthv_check.Diagnostic
module W = Rthv_check.Witness
module Fleet = Rthv_check.Fleet
module Scenarios = Rthv_check.Scenarios

let errors diags = List.filter (fun d -> d.D.severity = D.Error) diags

(* Soundness over one config: every certified Error whose rule has a
   witness channel carries a confirmed witness; every witness is confirmed,
   matches its channel's predicted oracle rule, and fired it on replay. *)
let check_certified name config =
  let graded, witnesses = W.certified config in
  List.iter
    (fun (d : D.t) ->
      match List.assoc_opt d.D.code W.channels with
      | None -> ()
      | Some predicted -> (
          match
            List.find_opt
              (fun ((d' : D.t), _) -> d'.D.code = d.D.code && d'.D.loc = d.D.loc)
              witnesses
          with
          | None ->
              Alcotest.failf "%s: certified error %s@%s has no witness" name
                d.D.code d.D.loc
          | Some (_, w) ->
              if not w.W.w_confirmed then
                Alcotest.failf "%s: witness for %s@%s unconfirmed" name
                  d.D.code d.D.loc;
              Alcotest.(check string)
                (Printf.sprintf "%s %s predicted rule" name d.D.code)
                predicted w.W.w_predicted;
              if
                not
                  (List.exists
                     (fun (o : D.t) -> o.D.code = predicted)
                     w.W.w_oracle)
              then
                Alcotest.failf "%s: %s@%s replay did not fire %s" name d.D.code
                  d.D.loc predicted;
              if List.exists D.is_error w.W.w_baseline then
                Alcotest.failf "%s: %s@%s baseline replay not error-clean"
                  name d.D.code d.D.loc))
    (errors graded);
  (graded, witnesses)

let test_demo_bad_witnesses () =
  let graded, witnesses = check_certified "demo_bad" (Scenarios.demo_bad ()) in
  (* The curated refutations are all realizable: none demote. *)
  Alcotest.(check (list string)) "errors survive certification"
    [ "RTHV002"; "RTHV003"; "RTHV004"; "RTHV005"; "RTHV006"; "RTHV012";
      "RTHV020" ]
    (List.sort_uniq compare (List.map (fun d -> d.D.code) (errors graded)));
  Alcotest.(check int) "one witness per error" 7 (List.length witnesses)

let test_demo_policy_bad_witnesses () =
  let graded, witnesses =
    check_certified "demo_policy_bad" (Scenarios.demo_policy_bad ())
  in
  Alcotest.(check (list string)) "errors survive certification"
    [ "RTHV013"; "RTHV017"; "RTHV018" ]
    (List.sort_uniq compare (List.map (fun d -> d.D.code) (errors graded)));
  Alcotest.(check int) "one witness per error" 3 (List.length witnesses)

let test_good_scenarios_witness_free () =
  List.iter
    (fun (name, build) ->
      let graded, witnesses = check_certified name (build ()) in
      Alcotest.(check int) (name ^ " no witnesses") 0 (List.length witnesses);
      Alcotest.(check int) (name ^ " no errors") 0 (List.length (errors graded)))
    Scenarios.good

let test_demotion_annotates () =
  (* Anything the replay cannot realize must leave as a Warning carrying
     the demotion marker, never as an unbacked Error.  Fleet seed 42 is
     known to contain proved-only refutations (transient busy-window
     violations invisible to aggregate supply), so at least one demotion
     must occur across it. *)
  let demoted = ref 0 in
  List.iter
    (fun (name, config) ->
      let static_errors = errors (Rthv_check.Lint.analyze config) in
      let graded, _ = check_certified name config in
      List.iter
        (fun (d : D.t) ->
          let survives =
            List.exists
              (fun (g : D.t) ->
                g.D.severity = D.Error && g.D.code = d.D.code
                && g.D.loc = d.D.loc)
              graded
          in
          if not survives then begin
            incr demoted;
            match
              List.find_opt
                (fun (g : D.t) -> g.D.code = d.D.code && g.D.loc = d.D.loc)
                graded
            with
            | Some g ->
                Alcotest.(check string)
                  (name ^ " demoted severity") "warning"
                  (D.severity_name g.D.severity);
                let marker = "demoted" in
                let has_marker =
                  let m = g.D.message and n = String.length marker in
                  let rec scan i =
                    i + n <= String.length m
                    && (String.sub m i n = marker || scan (i + 1))
                  in
                  scan 0
                in
                if not has_marker then
                  Alcotest.failf "%s: demoted %s lacks the marker" name
                    d.D.code
            | None ->
                Alcotest.failf "%s: error %s@%s vanished in certification"
                  name d.D.code d.D.loc
          end)
        static_errors)
    [
      ("cfg-0001", Fleet.gen_config ~seed:42 1);
      ("cfg-0033", Fleet.gen_config ~seed:42 33);
      ("cfg-0099", Fleet.gen_config ~seed:42 99);
    ];
  if !demoted = 0 then
    Alcotest.fail "expected at least one demotion in the sampled fleet"

(* Satellite soundness property: over randomized configurations, certified
   Errors always carry confirmed witnesses that fire the predicted rule. *)
let test_randomized_soundness =
  Testutil.qtest ~count:6 "certified errors witnessed (randomized configs)"
    QCheck2.Gen.(int_range 0 200)
    (fun i ->
      ignore (check_certified (Printf.sprintf "rand-%d" i)
                (Fleet.gen_config ~seed:1337 i));
      true)

let test_witness_digest_stable () =
  let _, witnesses = W.certified (Scenarios.demo_policy_bad ()) in
  List.iter
    (fun (_, w) ->
      Alcotest.(check string) "digest matches arrivals"
        (W.digest_of_arrivals w.W.w_arrivals)
        w.W.w_digest)
    witnesses

let suite =
  [
    Alcotest.test_case "demo_bad errors all witnessed" `Slow
      test_demo_bad_witnesses;
    Alcotest.test_case "demo_policy_bad errors all witnessed" `Slow
      test_demo_policy_bad_witnesses;
    Alcotest.test_case "good scenarios witness-free" `Slow
      test_good_scenarios_witness_free;
    Alcotest.test_case "unrealizable refutations demote" `Slow
      test_demotion_annotates;
    test_randomized_soundness;
    Alcotest.test_case "witness digests stable" `Slow
      test_witness_digest_stable;
  ]
