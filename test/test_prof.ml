(* Hierarchical phase profiler: zero-cost disabled path, context-tree
   accounting against a fake clock, exception safety, deterministic
   absorb/merge (byte-identical at any job count), and the JSON codec. *)

module Prof = Rthv_obs.Prof
module Json = Rthv_obs.Json
module Par = Rthv_par.Par

(* Test-only phases; interning is process-wide and idempotent. *)
let ph_a = Prof.phase "t_alpha"
let ph_b = Prof.phase "t_beta"
let ph_c = Prof.phase "t_gamma"

let test_phase_interning () =
  Alcotest.(check string) "name round-trip" "t_alpha" (Prof.phase_name ph_a);
  Alcotest.(check bool) "idempotent" true (Prof.phase "t_alpha" = ph_a)

let test_disabled_inert () =
  let p = Prof.disabled in
  Alcotest.(check bool) "disabled" false (Prof.enabled p);
  (* Warm up, then the steady-state guard must not allocate at all. *)
  for _ = 1 to 10 do
    Prof.enter p ph_a;
    Prof.leave p
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    Prof.enter p ph_a;
    Prof.leave p
  done;
  let after = Gc.minor_words () in
  Testutil.close "no allocation on the disabled path" 0. (after -. before);
  Alcotest.(check int) "no rows" 0 (List.length (Prof.rows p));
  Alcotest.(check int) "depth 0" 0 (Prof.depth p)

let test_nesting_accounting () =
  let now = ref 0. in
  let p = Prof.create ~clock:(fun () -> !now) () in
  Prof.enter p ph_a;
  now := !now +. 10.;
  Prof.enter p ph_b;
  now := !now +. 5.;
  Prof.leave p;
  now := !now +. 1.;
  Prof.enter p ph_b;
  now := !now +. 2.;
  Prof.leave p;
  Prof.leave p;
  (* Second top-level scope of a different phase. *)
  Prof.span p ph_c (fun () -> now := !now +. 4.);
  Alcotest.(check int) "depth back to 0" 0 (Prof.depth p);
  let rows = Prof.rows p in
  let find path =
    match List.find_opt (fun r -> r.Prof.r_path = path) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing row %s" path
  in
  let a = find "t_alpha" in
  Alcotest.(check int) "a calls" 1 a.Prof.r_calls;
  Alcotest.(check int) "a depth" 1 a.Prof.r_depth;
  Testutil.close "a total" 18. a.Prof.r_total_ns;
  Testutil.close "a self = total - children" 11. a.Prof.r_self_ns;
  let b = find "t_alpha/t_beta" in
  Alcotest.(check int) "b calls" 2 b.Prof.r_calls;
  Alcotest.(check int) "b depth" 2 b.Prof.r_depth;
  Alcotest.(check string) "b leaf name" "t_beta" b.Prof.r_name;
  Testutil.close "b total" 7. b.Prof.r_total_ns;
  Testutil.close "b self = total (no children)" 7. b.Prof.r_self_ns;
  let c = find "t_gamma" in
  Testutil.close "c total" 4. c.Prof.r_total_ns;
  (* Preorder with sorted children: t_alpha subtree before t_gamma. *)
  Alcotest.(check (list string)) "row order"
    [ "t_alpha"; "t_alpha/t_beta"; "t_gamma" ]
    (List.map (fun r -> r.Prof.r_path) rows)

let test_span_exception_safety () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  (try
     Prof.span p ph_a (fun () ->
         Prof.span p ph_b (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "depth unwound" 0 (Prof.depth p);
  let paths = List.map (fun r -> r.Prof.r_path) (Prof.rows p) in
  Alcotest.(check (list string)) "both scopes recorded"
    [ "t_alpha"; "t_alpha/t_beta" ] paths

let test_leave_on_empty_stack () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Prof.leave p;
  Alcotest.(check int) "still at depth 0" 0 (Prof.depth p);
  Prof.span p ph_a Fun.id;
  Alcotest.(check int) "usable afterwards" 1
    (List.length (Prof.rows p))

let test_absorb () =
  let now = ref 0. in
  let into = Prof.create ~clock:(fun () -> !now) () in
  Prof.enter into ph_a;
  now := !now +. 3.;
  Prof.leave into;
  let w = Prof.spawn into in
  Prof.enter w ph_a;
  now := !now +. 7.;
  Prof.enter w ph_b;
  now := !now +. 2.;
  Prof.leave w;
  Prof.leave w;
  Prof.absorb ~into w;
  let find path =
    List.find (fun r -> r.Prof.r_path = path) (Prof.rows into)
  in
  let a = find "t_alpha" in
  Alcotest.(check int) "calls summed" 2 a.Prof.r_calls;
  Testutil.close "total summed" 12. a.Prof.r_total_ns;
  let b = find "t_alpha/t_beta" in
  Alcotest.(check int) "new path adopted" 1 b.Prof.r_calls

(* The Par ?profile plumbing: per-task spawned instances absorbed in
   task-index order.  With a constant clock the ns are all zero and the
   words are the tasks' own deterministic allocations, so the aggregate
   document must be byte-identical at any job count. *)
let merged_profile_json jobs =
  let into = Prof.create ~clock:(fun () -> 0.) () in
  let pool = Par.create ~jobs () in
  ignore
    (Par.init ~pool ~profile:into 8 (fun i ->
         let p = Prof.installed () in
         Prof.span p ph_a (fun () ->
             for _ = 0 to i do
               Prof.span p ph_b (fun () -> Sys.opaque_identity (ignore [ i ]))
             done);
         i)
      : int list);
  Json.to_string (Prof.to_json into)

let test_merge_byte_identical () =
  let j1 = merged_profile_json 1 in
  let j4 = merged_profile_json 4 in
  Alcotest.(check string) "jobs=1 and jobs=4 merge identically" j1 j4;
  Alcotest.(check bool) "profile is non-trivial" true
    (String.length j1 > String.length {|{"schema":"rthv-profile/1"}|})

let test_json_roundtrip () =
  let now = ref 0. in
  let p = Prof.create ~clock:(fun () -> !now) () in
  Prof.span p ph_a (fun () ->
      now := !now +. 5.;
      Prof.span p ph_b (fun () -> now := !now +. 2.));
  let rows = Prof.rows p in
  match Prof.of_json (Prof.to_json p) with
  | Error msg -> Alcotest.failf "of_json: %s" msg
  | Ok parsed ->
      Alcotest.(check int) "row count" (List.length rows)
        (List.length parsed);
      List.iter2
        (fun (r : Prof.row) (q : Prof.row) ->
          Alcotest.(check string) "path" r.Prof.r_path q.Prof.r_path;
          Alcotest.(check int) "calls" r.Prof.r_calls q.Prof.r_calls;
          Testutil.close "total_ns" r.Prof.r_total_ns q.Prof.r_total_ns;
          Testutil.close "self_ns" r.Prof.r_self_ns q.Prof.r_self_ns;
          Testutil.close "words" r.Prof.r_words q.Prof.r_words)
        rows parsed

let test_reset () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Prof.span p ph_a Fun.id;
  Prof.reset p;
  Alcotest.(check int) "rows dropped" 0 (List.length (Prof.rows p));
  Prof.span p ph_b Fun.id;
  Alcotest.(check int) "usable after reset" 1 (List.length (Prof.rows p))

let test_install_domain_local () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Alcotest.(check bool) "nothing installed" true
    (Prof.installed () == Prof.disabled);
  Prof.with_profiler p (fun () ->
      Alcotest.(check bool) "installed inside" true (Prof.installed () == p));
  Alcotest.(check bool) "restored" true (Prof.installed () == Prof.disabled)

(* Property: for any well-nested scope script, depth returns to zero and
   every row's self time is non-negative and bounded by its total. *)
let prop_rows_consistent script =
  let now = ref 0. in
  let p = Prof.create ~clock:(fun () -> !now) () in
  let phases = [| ph_a; ph_b; ph_c |] in
  List.iter
    (fun (pick, dt) ->
      now := !now +. float_of_int dt;
      if pick < 3 then Prof.enter p phases.(pick) else Prof.leave p)
    script;
  for _ = 1 to Prof.depth p do
    Prof.leave p
  done;
  List.for_all
    (fun r ->
      r.Prof.r_self_ns >= -1e-9
      && r.Prof.r_self_ns <= r.Prof.r_total_ns +. 1e-9
      && r.Prof.r_calls > 0)
    (Prof.rows p)

let suite =
  [
    Alcotest.test_case "phase interning" `Quick test_phase_interning;
    Alcotest.test_case "disabled path is inert and allocation-free" `Quick
      test_disabled_inert;
    Alcotest.test_case "nested accounting against a fake clock" `Quick
      test_nesting_accounting;
    Alcotest.test_case "span exception safety" `Quick
      test_span_exception_safety;
    Alcotest.test_case "leave on empty stack is a no-op" `Quick
      test_leave_on_empty_stack;
    Alcotest.test_case "absorb merges by phase path" `Quick test_absorb;
    Alcotest.test_case "Par merge byte-identical at jobs 1 vs 4" `Quick
      test_merge_byte_identical;
    Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "domain-local install" `Quick
      test_install_domain_local;
    Testutil.qtest "random scope scripts keep rows consistent"
      QCheck2.Gen.(small_list (pair (0 -- 3) (0 -- 10)))
      prop_rows_consistent;
  ]
