(* Streaming query engine: counts agree with the entry list, rates with the
   span, the latency classifier reproduces the simulator's attribution, and
   a hand-built store pins the rthv-query/1 golden output. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Store = Rthv_core.Trace_store
module Query = Rthv_core.Trace_query
module Json = Rthv_obs.Json
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let with_temp f =
  let path = Filename.temp_file "rthv_test" ".rts" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let scenario_config () =
  Config.make
    ~partitions:
      [
        Config.partition ~name:"ctl" ~slot_us:6_000 ();
        Config.partition ~name:"io" ~slot_us:6_000 ();
      ]
    ~sources:
      [
        Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:50
          ~interarrivals:
            (Rthv_workload.Gen.exponential ~seed:7 ~mean:(us 1_000) ~count:150)
          ~shaping:(Config.Fixed_monitor (DF.d_min (us 500)))
          ();
      ]
    ()

let recorded = lazy (
  let trace = Hyp_trace.create () in
  let config = scenario_config () in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  (Hyp_trace.to_list trace, Hyp_sim.stats sim))

let with_store f =
  let entries, stats = Lazy.force recorded in
  with_temp (fun path ->
      ignore (Store.write_entries ~block_events:256 path entries : int);
      f path entries stats)

let test_count_matches_entries () =
  with_store (fun path entries _ ->
      let q = Query.run ~agg:Query.Count ~group_by:Query.By_kind path in
      Alcotest.(check int) "matched = entries" (List.length entries)
        q.Query.q_matched;
      let count_of key =
        match
          List.find_opt (fun g -> g.Query.g_key = key) q.Query.q_groups
        with
        | Some g -> g.Query.g_count
        | None -> 0
      in
      let expected kindname =
        List.length
          (List.filter
             (fun e ->
               Store.kind_name (Store.kind_of_event e.Hyp_trace.event)
               = kindname)
             entries)
      in
      List.iter
        (fun kindname ->
          Alcotest.(check int) ("count of " ^ kindname) (expected kindname)
            (count_of kindname))
        Store.kind_names)

let test_time_filter_count () =
  with_store (fun path entries _ ->
      let from_time = us 10_000 and to_time = us 60_000 in
      let filter =
        {
          Store.no_filter with
          from_time = Some from_time;
          to_time = Some to_time;
        }
      in
      let q = Query.run ~filter ~agg:Query.Count ~group_by:Query.By_none path in
      let expected =
        List.length
          (List.filter
             (fun e ->
               e.Hyp_trace.time >= from_time && e.Hyp_trace.time <= to_time)
             entries)
      in
      Alcotest.(check int) "windowed count" expected q.Query.q_matched)

let test_rate_span_matches_entries () =
  with_store (fun path entries _ ->
      let q = Query.run ~agg:Query.Rate ~group_by:Query.By_none path in
      let times = List.map (fun e -> e.Hyp_trace.time) entries in
      let lo = List.fold_left min max_int times
      and hi = List.fold_left max min_int times in
      Testutil.close ~eps:1e-9 "span = extent of entries"
        (Cycles.to_us (hi - lo))
        q.Query.q_span_us;
      Alcotest.(check int) "rate counts everything" (List.length entries)
        q.Query.q_matched)

(* The streaming classifier must agree with the simulator's own records:
   the class histogram of the store query equals Hyp_sim.stats. *)
let test_classifier_matches_simulator () =
  with_store (fun path _ stats ->
      let q = Query.run ~agg:Query.Latency ~group_by:Query.By_class path in
      let count key =
        match
          List.find_opt (fun g -> g.Query.g_key = key) q.Query.q_groups
        with
        | Some g -> g.Query.g_count
        | None -> 0
      in
      Alcotest.(check int) "completed" stats.Hyp_sim.completed_irqs
        q.Query.q_matched;
      Alcotest.(check int) "direct" stats.Hyp_sim.direct (count "direct");
      Alcotest.(check int) "interposed" stats.Hyp_sim.interposed
        (count "interposed");
      Alcotest.(check int) "delayed" stats.Hyp_sim.delayed (count "delayed");
      Alcotest.(check int) "no unknown" 0 (count "unknown"))

let test_latency_by_source_named () =
  with_store (fun path _ stats ->
      let line_source line = if line = 0 then Some "nic" else None in
      let q =
        Query.run ~line_source ~agg:Query.Latency ~group_by:Query.By_source
          path
      in
      match q.Query.q_groups with
      | [ g ] ->
          Alcotest.(check string) "source name" "nic" g.Query.g_key;
          Alcotest.(check int) "all samples" stats.Hyp_sim.completed_irqs
            g.Query.g_count
      | gs -> Alcotest.failf "expected one source group, got %d" (List.length gs))

let test_on_sample_streams_everything () =
  with_store (fun path _ stats ->
      let n = ref 0 in
      let worst = ref 0. in
      let on_sample ~source:_ ~cls:_ ~partition ~latency_us =
        incr n;
        if latency_us > !worst then worst := latency_us;
        Alcotest.(check int) "subscriber partition" 1 partition
      in
      let q =
        Query.run ~on_sample ~agg:Query.Latency ~group_by:Query.By_none path
      in
      Alcotest.(check int) "every sample streamed" q.Query.q_matched !n;
      Alcotest.(check int) "matches simulator" stats.Hyp_sim.completed_irqs !n;
      Alcotest.(check bool) "latencies positive" true (!worst > 0.))

let test_group_by_mismatch_rejected () =
  with_store (fun path _ _ ->
      (match
         Query.run ~agg:Query.Count ~group_by:Query.By_class path
       with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "count by class accepted");
      match Query.run ~agg:Query.Latency ~group_by:Query.By_kind path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "latency by kind accepted")

(* Golden: a hand-built four-event-per-instance store with one sample per
   class pins the rthv-query/1 document byte-for-byte. *)
let golden_entries =
  let e time event = { Hyp_trace.time; event } in
  [
    e 0 (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 1 });
    e 200 (Hyp_trace.Irq_raised { irq = 0; line = 0 });
    e 400 (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
    e 600 (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
    e 1_000 (Hyp_trace.Irq_raised { irq = 1; line = 0 });
    e 1_200 (Hyp_trace.Top_handler_run { irq = 1; line = 0 });
    e 1_400
      (Hyp_trace.Monitor_decision
         { irq = 1; line = 0; arrival = 1_000; verdict = `Admitted });
    e 2_000 (Hyp_trace.Bottom_handler_done { irq = 1; partition = 1 });
    e 2_200 (Hyp_trace.Slot_switch { from_partition = 1; to_partition = 0 });
    e 2_400 (Hyp_trace.Irq_raised { irq = 2; line = 0 });
    e 2_600 (Hyp_trace.Top_handler_run { irq = 2; line = 0 });
    e 3_000
      (Hyp_trace.Monitor_decision
         { irq = 2; line = 0; arrival = 2_400; verdict = `Denied });
    e 4_000 (Hyp_trace.Bottom_handler_done { irq = 2; partition = 1 });
  ]

let test_golden_query_json () =
  with_temp (fun path ->
      ignore (Store.write_entries path golden_entries : int);
      let q = Query.run ~agg:Query.Latency ~group_by:Query.By_class path in
      let json = Json.to_string (Query.to_json ~store:"golden.rts" q) in
      let expected =
        "{\"schema\":\"rthv-query/1\",\"store\":\"golden.rts\",\
         \"aggregation\":\"latency\",\"group_by\":\"class\",\"blocks\":1,\
         \"blocks_scanned\":1,\"rows_scanned\":13,\"matched\":3,\
         \"span_us\":19.0,\"groups\":[{\"key\":\"delayed\",\"count\":1,\
         \"mean_us\":8.0,\"p50_us\":8.0,\"p95_us\":8.0,\"p99_us\":8.0,\
         \"p999_us\":8.0,\"max_us\":8.0},{\"key\":\"direct\",\"count\":1,\
         \"mean_us\":2.0,\"p50_us\":2.0,\"p95_us\":2.0,\"p99_us\":2.0,\
         \"p999_us\":2.0,\"max_us\":2.0},{\"key\":\"interposed\",\
         \"count\":1,\"mean_us\":5.0,\"p50_us\":5.0,\"p95_us\":5.0,\
         \"p99_us\":5.0,\"p999_us\":5.0,\"max_us\":5.0}]}"
      in
      Alcotest.(check string) "golden rthv-query/1 document" expected json)

let suite =
  [
    Alcotest.test_case "count matches entry list" `Quick
      test_count_matches_entries;
    Alcotest.test_case "time-windowed count" `Quick test_time_filter_count;
    Alcotest.test_case "rate span matches entries" `Quick
      test_rate_span_matches_entries;
    Alcotest.test_case "classifier matches simulator" `Quick
      test_classifier_matches_simulator;
    Alcotest.test_case "latency by source uses names" `Quick
      test_latency_by_source_named;
    Alcotest.test_case "on_sample streams every sample" `Quick
      test_on_sample_streams_everything;
    Alcotest.test_case "group-by mismatch rejected" `Quick
      test_group_by_mismatch_rejected;
    Alcotest.test_case "golden query JSON" `Quick test_golden_query_json;
  ]
