module BW = Rthv_analysis.Busy_window
module AC = Rthv_analysis.Arrival_curve

let us = Testutil.us

let no_interference _dt = 0

let test_fixed_point_no_interference () =
  match BW.fixed_point ~q:3 ~wcet:(us 10) ~interference:no_interference () with
  | BW.Converged w -> Testutil.check_cycles "W = q*C" (us 30) w
  | BW.Diverged -> Alcotest.fail "unexpected divergence"

let test_fixed_point_with_interferer () =
  (* Classic response-time example: task C=2, interferer C=1 period 4 (units
     of 1us).  W(1) = 2 + ceil(W/4)*1 -> W = 3. *)
  let interferer_eta dt = AC.eta_plus (AC.periodic ~period_us:4) dt in
  let interference dt = interferer_eta dt * us 1 in
  match BW.fixed_point ~q:1 ~wcet:(us 2) ~interference () with
  | BW.Converged w -> Testutil.check_cycles "textbook busy window" (us 3) w
  | BW.Diverged -> Alcotest.fail "unexpected divergence"

let test_divergence_on_overload () =
  (* Interference grows faster than time: guaranteed overload. *)
  let interference dt = dt + 1 in
  match BW.fixed_point ~q:1 ~wcet:1 ~interference () with
  | BW.Diverged -> ()
  | BW.Converged w -> Alcotest.failf "expected divergence, got %d" w

let test_response_time_single_task () =
  (* Isolated periodic task: R = C. *)
  let curve = AC.periodic ~period_us:100 in
  match
    BW.response_time ~wcet:(us 10) ~delta:(AC.delta_min curve)
      ~interference:no_interference ()
  with
  | Ok r ->
      Testutil.check_cycles "R = C in isolation" (us 10)
        r.BW.response_time;
      Alcotest.(check int) "busy period closes after one job" 1 r.BW.q_max
  | Error msg -> Alcotest.fail msg

let test_response_time_queueing () =
  (* Task slower than its period cannot exist; instead: activation faster
     than service for a while.  delta(q) = (q-1)*10us, C = 15us, no external
     interference: job q waits for q-1 predecessors.
     W(q) = 15q, busy period while delta(q+1) = 10q <= W(q) -> never closes
     -> overload error expected. *)
  let curve = AC.periodic ~period_us:10 in
  (match
     BW.response_time ~wcet:(us 15) ~delta:(AC.delta_min curve)
       ~interference:no_interference ~max_q:64 ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected overload report");
  (* Slightly loaded but schedulable: C = 6us, period 10us.
     W(q) = 6q; delta(q+1) = 10q > 6q always -> q_max = 1, R = 6us. *)
  match
    BW.response_time ~wcet:(us 6) ~delta:(AC.delta_min curve)
      ~interference:no_interference ()
  with
  | Ok r -> Testutil.check_cycles "R" (us 6) r.BW.response_time
  | Error msg -> Alcotest.fail msg

let test_multi_activation_busy_period () =
  (* A blocking term delays the first job so the second lands in the same
     busy period: C = 4us, period 10us, constant 8us blocking.
     W(1) = 12, delta(2) = 10 <= 12 -> q = 2: W(2) = 16, delta(3) = 20 > 16.
     R = max(12 - 0, 16 - 10) = 12us. *)
  let curve = AC.periodic ~period_us:10 in
  let interference _dt = us 8 in
  match
    BW.response_time ~wcet:(us 4) ~delta:(AC.delta_min curve) ~interference ()
  with
  | Ok r ->
      Alcotest.(check int) "two jobs in busy period" 2 r.BW.q_max;
      Testutil.check_cycles "R over both jobs" (us 12) r.BW.response_time;
      Alcotest.(check int) "critical q" 1 r.BW.critical_q
  | Error msg -> Alcotest.fail msg

let test_invalid_args () =
  Alcotest.check_raises "q < 1"
    (Invalid_argument "Busy_window.fixed_point: q < 1") (fun () ->
      ignore (BW.fixed_point ~q:0 ~wcet:1 ~interference:no_interference ()));
  Alcotest.check_raises "negative wcet"
    (Invalid_argument "Busy_window.fixed_point: negative wcet") (fun () ->
      ignore (BW.fixed_point ~q:1 ~wcet:(-1) ~interference:no_interference ()))

let test_utilisation () =
  Testutil.close "utilisation sums rate*wcet" 0.75
    (BW.utilisation ~contributions:[ (0.25, 1.); (0.125, 4.) ])

(* Property: the fixed point is indeed a fixed point, and minimal among the
   iterates. *)
let prop_fixed_point_is_fixed (q, wcet, period, c_i) =
  let curve = AC.periodic ~period_us:period in
  let interference dt = AC.eta_plus curve dt * c_i in
  match BW.fixed_point ~q ~wcet ~interference () with
  | BW.Diverged -> true
  | BW.Converged w -> w = (q * wcet) + interference w

let prop_response_time_bounds_all_windows (wcet, period) =
  (* R >= W(q) - delta(q) for every q in the busy period (definition of max). *)
  let curve = AC.periodic ~period_us:period in
  match
    BW.response_time ~wcet ~delta:(AC.delta_min curve)
      ~interference:no_interference ~max_q:256 ()
  with
  | Error _ -> true
  | Ok r ->
      List.for_all
        (fun (q, w) -> r.BW.response_time >= w - AC.delta_min curve q)
        r.BW.busy_windows

let suite =
  [
    Alcotest.test_case "fixed point, no interference" `Quick
      test_fixed_point_no_interference;
    Alcotest.test_case "fixed point with interferer" `Quick
      test_fixed_point_with_interferer;
    Alcotest.test_case "divergence detection" `Quick test_divergence_on_overload;
    Alcotest.test_case "isolated task R = C" `Quick test_response_time_single_task;
    Alcotest.test_case "overload and light load" `Quick test_response_time_queueing;
    Alcotest.test_case "multi-activation busy period" `Quick
      test_multi_activation_busy_period;
    Alcotest.test_case "argument validation" `Quick test_invalid_args;
    Alcotest.test_case "utilisation" `Quick test_utilisation;
    Testutil.qtest "converged value is a fixed point"
      QCheck2.Gen.(
        quad (1 -- 4) (map Testutil.us (1 -- 50)) (10 -- 1000)
          (map Testutil.us (0 -- 5)))
      prop_fixed_point_is_fixed;
    Testutil.qtest "R dominates all busy windows"
      QCheck2.Gen.(pair (map Testutil.us (1 -- 100)) (50 -- 2000))
      prop_response_time_bounds_all_windows;
  ]
