module Vcd = Rthv_core.Vcd_export
module Hyp_trace = Rthv_core.Hyp_trace
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let small_trace () =
  let t = Hyp_trace.create () in
  Hyp_trace.record t ~time:100 (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
  Hyp_trace.record t ~time:200
    (Hyp_trace.Monitor_decision
       { irq = 0; line = 0; arrival = 100; verdict = `Admitted });
  Hyp_trace.record t ~time:300
    (Hyp_trace.Interposition_start { irq = 0; target = 1 });
  Hyp_trace.record t ~time:500
    (Hyp_trace.Interposition_end { target = 1; reason = `Budget_exhausted });
  Hyp_trace.record t ~time:500
    (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
  Hyp_trace.record t ~time:900
    (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 1 });
  t

let test_structure () =
  let vcd = Vcd.to_string (small_trace ()) in
  List.iter
    (fun needle ->
      if not (contains vcd needle) then
        Alcotest.failf "missing %S in VCD output" needle)
    [
      "$timescale 5 ns $end";
      "$enddefinitions $end";
      "$var wire 8 ! active_partition $end";
      "$var wire 1 # irq_top $end";
      "$dumpvars";
      "#100";
      "1#";
      (* top handler pulse *)
      "b00000001 \"";
      (* interposition target = 1 *)
      "b11111111 \"";
      (* interposition cleared *)
    ]

let timestamps_of vcd =
  String.split_on_char '\n' vcd
  |> List.filter_map (fun line ->
         if String.length line > 1 && line.[0] = '#' then
           int_of_string_opt (String.sub line 1 (String.length line - 1))
         else None)

let test_timestamps_monotone () =
  let vcd = Vcd.to_string (small_trace ()) in
  let times = timestamps_of vcd in
  Alcotest.(check bool) "has timestamps" true (List.length times > 3);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone VCD time" true (monotone times)

let test_full_simulation_export () =
  let trace = Hyp_trace.create () in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"P1" ~slot_us:6_000 ();
          Config.partition ~name:"P2" ~slot_us:6_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"irq" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50
            ~interarrivals:
              (Rthv_workload.Gen.exponential ~seed:1 ~mean:(us 1_000)
                 ~count:50)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 500)))
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  let vcd = Vcd.to_string trace in
  let times = timestamps_of vcd in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone over a real run" true (monotone times);
  (* Every top handler produced a pulse line "1#". *)
  let pulses =
    List.length
      (List.filter (fun l -> l = "1#") (String.split_on_char '\n' vcd))
  in
  Alcotest.(check int) "one pulse per IRQ" 50 pulses

let test_boundary_and_coalesced_wires () =
  let t = Hyp_trace.create () in
  Hyp_trace.record t ~time:100
    (Hyp_trace.Interposition_start { irq = 0; target = 1 });
  Hyp_trace.record t ~time:200
    (Hyp_trace.Interposition_crossed_boundary { target = 1 });
  Hyp_trace.record t ~time:300
    (Hyp_trace.Interposition_end { target = 1; reason = `Budget_exhausted });
  Hyp_trace.record t ~time:400 (Hyp_trace.Irq_coalesced { line = 0 });
  let vcd = Vcd.to_string t in
  List.iter
    (fun needle ->
      if not (contains vcd needle) then
        Alcotest.failf "missing %S in VCD output" needle)
    [
      "$var wire 1 ' boundary_cross $end";
      "$var wire 1 ( irq_coalesced $end";
      "1'";
      (* crossed-boundary pulse *)
      "1(";
      (* coalesced pulse *)
    ];
  (* Both pulses fall back to 0 before the file ends (the dumpvars zeros
     come earlier, so look only past the rising edge). *)
  let find_from start sub =
    let hl = String.length vcd and nl = String.length sub in
    let rec scan i =
      if i + nl > hl then -1
      else if String.sub vcd i nl = sub then i
      else scan (i + 1)
    in
    scan start
  in
  List.iter
    (fun (rise, fall) ->
      let up = find_from 0 rise in
      if up < 0 then Alcotest.failf "no %S pulse" rise;
      if find_from up fall < 0 then
        Alcotest.failf "%S never cleared after %S" fall rise)
    [ ("1'", "0'"); ("1(", "0(") ]

let test_save_roundtrip () =
  let path = Filename.temp_file "rthv" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = small_trace () in
      Vcd.save ~path trace;
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      Alcotest.(check string) "file matches to_string" (Vcd.to_string trace)
        contents)

let suite =
  [
    Alcotest.test_case "VCD structure" `Quick test_structure;
    Alcotest.test_case "monotone timestamps" `Quick test_timestamps_monotone;
    Alcotest.test_case "full simulation export" `Quick
      test_full_simulation_export;
    Alcotest.test_case "boundary-cross and coalesced wires" `Quick
      test_boundary_and_coalesced_wires;
    Alcotest.test_case "save" `Quick test_save_roundtrip;
  ]
