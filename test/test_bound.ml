module Bound = Rthv_analysis.Bound
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence

let fn = DF.d_min 1_000
let zero_fn = DF.unbounded ~l:1

let bucket = Bound.Bucketed { capacity = 1; refill = 1_000 }
let slow_bucket = Bound.Bucketed { capacity = 1; refill = 5_000 }
let budget = Bound.Budgeted { per_cycle = 2; cycle = 10_000 }

let test_shaped () =
  Alcotest.(check bool) "unshaped" false (Bound.shaped Bound.Unshaped);
  Alcotest.(check bool) "monitored" true (Bound.shaped (Bound.Monitored fn));
  Alcotest.(check bool) "bucketed" true (Bound.shaped bucket);
  Alcotest.(check bool) "budgeted" true (Bound.shaped budget);
  Alcotest.(check bool) "opaque" true (Bound.shaped Bound.Shaped_opaque);
  Alcotest.(check bool) "composite" true
    (Bound.shaped (Bound.Composite [ Bound.Monitored fn; bucket ]))

let test_condition () =
  Alcotest.(check bool) "monitored has condition" true
    (Option.is_some (Bound.condition (Bound.Monitored fn)));
  Alcotest.(check bool) "bucketed has none" true
    (Option.is_none (Bound.condition bucket));
  Alcotest.(check bool) "composite inherits monitor's" true
    (Option.is_some
       (Bound.condition (Bound.Composite [ slow_bucket; Bound.Monitored fn ])))

let test_vacuous_against () =
  (* refill 1000 <= delta(2) = 1000: a token is always back in time. *)
  Alcotest.(check bool) "fast bucket vacuous" true
    (Bound.vacuous_against fn bucket);
  Alcotest.(check bool) "slow bucket binds" false
    (Bound.vacuous_against fn slow_bucket);
  (* eta^+ over a 10000-cycle window of a d_min-1000 stream is 10 events:
     per_cycle 2 can deny conforming activations. *)
  Alcotest.(check bool) "tight budget binds" false
    (Bound.vacuous_against fn budget);
  Alcotest.(check bool) "loose budget vacuous" true
    (Bound.vacuous_against fn
       (Bound.Budgeted { per_cycle = 11; cycle = 10_000 }))

let test_per_instance_condition () =
  Alcotest.(check bool) "plain monitor qualifies" true
    (Option.is_some (Bound.per_instance_condition (Bound.Monitored fn)));
  Alcotest.(check bool) "monitor + vacuous bucket qualifies" true
    (Option.is_some
       (Bound.per_instance_condition
          (Bound.Composite [ Bound.Monitored fn; bucket ])));
  Alcotest.(check bool) "monitor + binding bucket does not" true
    (Option.is_none
       (Bound.per_instance_condition
          (Bound.Composite [ Bound.Monitored fn; slow_bucket ])));
  Alcotest.(check bool) "bucket alone has no condition" true
    (Option.is_none (Bound.per_instance_condition bucket))

let test_interference () =
  let c_bh_eff = 100 in
  let curve p = Bound.interference p ~c_bh_eff in
  Alcotest.(check bool) "unshaped unbounded" true
    (Option.is_none (curve Bound.Unshaped));
  Alcotest.(check bool) "degenerate monitor unbounded" true
    (Option.is_none (curve (Bound.Monitored zero_fn)));
  (match curve (Bound.Monitored fn) with
  | None -> Alcotest.fail "monitored bound missing"
  | Some c ->
      Alcotest.(check int) "matches eq. 14"
        (Independence.interposed_bound ~monitor:fn ~c_bh_eff 5_000)
        (c 5_000));
  (match curve (Bound.Composite [ Bound.Monitored fn; slow_bucket ]) with
  | None -> Alcotest.fail "composite bound missing"
  | Some c ->
      let m = Independence.interposed_bound ~monitor:fn ~c_bh_eff in
      let b =
        Independence.token_bucket_bound ~capacity:1 ~refill:5_000 ~c_bh_eff
      in
      List.iter
        (fun dt ->
          Alcotest.(check int)
            (Printf.sprintf "pointwise min at %d" dt)
            (min (m dt) (b dt)) (c dt))
        [ 0; 1; 1_000; 50_000 ])

let test_budget_curve () =
  let c_bh_eff = 100 in
  match Bound.interference budget ~c_bh_eff with
  | None -> Alcotest.fail "budget bound missing"
  | Some c ->
      Alcotest.(check int) "zero window" 0 (c 0);
      (* A window of one cycle overlaps at most 2 aligned windows. *)
      Alcotest.(check int) "one cycle" (100 * 2 * 2) (c 10_000);
      Alcotest.(check int) "three cycles" (100 * 2 * 4) (c 30_000)

let conforms_always (_ : DF.t) = true
let conforms_never (_ : DF.t) = false

let test_for_class () =
  let fc policy conforms cls =
    Bound.for_class policy ~stream_conforms:conforms cls
  in
  let check msg exp got =
    Alcotest.(check bool) msg true (exp = got)
  in
  check "unshaped direct is plain baseline" Bound.Baseline
    (fc Bound.Unshaped conforms_always `Direct);
  check "unshaped never interposes" Bound.No_bound
    (fc Bound.Unshaped conforms_always `Interposed);
  check "monitored direct pays C_Mon" Bound.Baseline_monitored
    (fc (Bound.Monitored fn) conforms_always `Direct);
  check "monitored delayed pays C_Mon" Bound.Baseline_monitored
    (fc (Bound.Monitored fn) conforms_always `Delayed);
  check "conforming stream gets eq. 16" Bound.Interposed
    (fc (Bound.Monitored fn) conforms_always `Interposed);
  check "non-conforming stream falls back" Bound.Baseline_monitored
    (fc (Bound.Monitored fn) conforms_never `Interposed);
  check "binding bucket composite falls back" Bound.Baseline_monitored
    (fc
       (Bound.Composite [ Bound.Monitored fn; slow_bucket ])
       conforms_always `Interposed);
  check "vacuous bucket composite gets eq. 16" Bound.Interposed
    (fc
       (Bound.Composite [ Bound.Monitored fn; bucket ])
       conforms_always `Interposed);
  check "budget alone never gets eq. 16" Bound.Baseline_monitored
    (fc budget conforms_always `Interposed)

let test_budget_bound_props () =
  let b = Independence.budget_bound ~per_cycle:3 ~cycle:100 ~c_bh_eff:7 in
  Alcotest.(check int) "dt=0" 0 (b 0);
  Alcotest.(check int) "within one window" (7 * 3 * 2) (b 1);
  Alcotest.(check int) "exactly one cycle" (7 * 3 * 2) (b 100);
  Alcotest.(check int) "one past a cycle" (7 * 3 * 3) (b 101);
  Alcotest.(check bool) "invalid per_cycle" true
    (try
       ignore (Independence.budget_bound ~per_cycle:0 ~cycle:100 ~c_bh_eff:7 1);
       false
     with Invalid_argument _ -> true)

let test_finite () =
  Alcotest.(check bool) "d_min finite" true (DF.finite fn);
  Alcotest.(check bool) "all-zero is finite" true (DF.finite zero_fn);
  (* of_trace leaves never-observed positions at the sentinel: two events
     can never populate the 3-event distance entry. *)
  Alcotest.(check bool) "sentinel entries are not" false
    (DF.finite (DF.of_trace ~l:2 [ 0; 100 ]))

let suite =
  [
    Alcotest.test_case "shaped" `Quick test_shaped;
    Alcotest.test_case "condition" `Quick test_condition;
    Alcotest.test_case "vacuous_against" `Quick test_vacuous_against;
    Alcotest.test_case "per_instance_condition (eq. 16 gate)" `Quick
      test_per_instance_condition;
    Alcotest.test_case "interference curves" `Quick test_interference;
    Alcotest.test_case "budget interference curve" `Quick test_budget_curve;
    Alcotest.test_case "for_class dispatch" `Quick test_for_class;
    Alcotest.test_case "Independence.budget_bound" `Quick
      test_budget_bound_props;
    Alcotest.test_case "Distance_fn.finite" `Quick test_finite;
  ]
