module Slot_plan = Rthv_core.Slot_plan
module Tdma = Rthv_core.Tdma

let check_slots msg expected plan =
  Alcotest.(check (array int)) msg expected (Slot_plan.slots plan)

let test_static () =
  let plan = Slot_plan.static [| 100; 200; 50 |] in
  check_slots "slots preserved" [| 100; 200; 50 |] plan;
  Alcotest.(check int) "partitions" 3 (Slot_plan.partitions plan);
  Alcotest.(check int) "cycle" 350 (Slot_plan.cycle_length plan);
  Alcotest.(check int) "compiled tdma cycle" 350
    (Tdma.cycle_length (Slot_plan.tdma plan))

let test_static_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Slot_plan.static [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive slot rejected" true
    (try
       ignore (Slot_plan.static [| 100; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_weighted_exact () =
  (* 1000 over 2:3 splits exactly. *)
  let plan = Slot_plan.weighted ~cycle:1_000 ~weights:[| 2; 3 |] in
  check_slots "exact apportionment" [| 400; 600 |] plan;
  Alcotest.(check int) "cycle conserved" 1_000 (Slot_plan.cycle_length plan)

let test_weighted_remainders () =
  (* 100 over 1:1:1 -> floors 33/33/33, one leftover cycle; the
     largest-remainder order ties to the lowest index. *)
  let plan = Slot_plan.weighted ~cycle:100 ~weights:[| 1; 1; 1 |] in
  check_slots "remainder to lowest index" [| 34; 33; 33 |] plan

let test_weighted_min_slot () =
  (* A tiny weight must still get one cycle, lifted from the largest slot. *)
  let plan = Slot_plan.weighted ~cycle:1_000 ~weights:[| 1; 10_000 |] in
  let slots = Slot_plan.slots plan in
  Alcotest.(check bool) "every slot positive" true
    (Array.for_all (fun s -> s > 0) slots);
  Alcotest.(check int) "cycle conserved" 1_000
    (Array.fold_left ( + ) 0 slots)

let test_weighted_validation () =
  let rejected f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty weights" true
    (rejected (fun () -> ignore (Slot_plan.weighted ~cycle:10 ~weights:[||])));
  Alcotest.(check bool) "non-positive weight" true
    (rejected (fun () ->
         ignore (Slot_plan.weighted ~cycle:10 ~weights:[| 1; 0 |])));
  Alcotest.(check bool) "cycle shorter than partitions" true
    (rejected (fun () ->
         ignore (Slot_plan.weighted ~cycle:2 ~weights:[| 1; 1; 1 |])))

let test_deterministic () =
  let mk () = Slot_plan.slots (Slot_plan.weighted ~cycle:977 ~weights:[| 3; 1; 5; 2 |]) in
  Alcotest.(check (array int)) "same plan twice" (mk ()) (mk ())

let suite =
  [
    Alcotest.test_case "static plan" `Quick test_static;
    Alcotest.test_case "static validation" `Quick test_static_validation;
    Alcotest.test_case "weighted: exact split" `Quick test_weighted_exact;
    Alcotest.test_case "weighted: largest remainder" `Quick
      test_weighted_remainders;
    Alcotest.test_case "weighted: minimum one cycle per slot" `Quick
      test_weighted_min_slot;
    Alcotest.test_case "weighted validation" `Quick test_weighted_validation;
    Alcotest.test_case "weighted apportionment is deterministic" `Quick
      test_deterministic;
  ]
