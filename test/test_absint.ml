(* Interval-domain abstract interpreter: consistency of every emitted
   interval (achievable lower end never exceeds the proved upper end) and
   agreement of the rate-policy models with the simulator's admission
   machinery. *)

module Config = Rthv_core.Config
module A = Rthv_check.Absint
module Fleet = Rthv_check.Fleet
module Scenarios = Rthv_check.Scenarios

let check_itv msg (itv : A.Itv.t) =
  if not (A.Itv.consistent itv) then
    Alcotest.failf "%s: inconsistent interval [%d, %s]" msg itv.A.Itv.lo
      (match itv.A.Itv.hi with Some h -> string_of_int h | None -> "inf")

let check_analysis name config =
  match Config.validate config with
  | Error _ -> ()
  | Ok () ->
      let ai = A.analyze config in
      if ai.A.cycle <= 0 then Alcotest.failf "%s: cycle %d" name ai.A.cycle;
      let sorted = List.sort_uniq compare ai.A.windows in
      Alcotest.(check (list int)) (name ^ " windows ascending") sorted
        ai.A.windows;
      List.iter
        (fun (sf : A.source_fact) ->
          List.iter
            (fun (w, itv) ->
              check_itv (Printf.sprintf "%s %s adm@%d" name sf.A.sf_name w) itv)
            sf.A.sf_admissions;
          List.iter
            (fun (w, itv) ->
              check_itv (Printf.sprintf "%s %s intf@%d" name sf.A.sf_name w) itv)
            sf.A.sf_interference)
        ai.A.sources;
      List.iter
        (fun (pf : A.partition_fact) ->
          check_itv
            (Printf.sprintf "%s %s interference" name pf.A.pf_name)
            pf.A.pf_interference)
        ai.A.partitions;
      let lo, hi = ai.A.util in
      if lo < 0. then Alcotest.failf "%s: negative util lo" name;
      match hi with
      | Some hi when hi < lo -> Alcotest.failf "%s: util lo > hi" name
      | _ -> ()

let test_scenario_intervals () =
  List.iter (fun (name, build) -> check_analysis name (build ())) Scenarios.all

(* The randomized-fleet version is the regression net that caught a
   token-bucket model divergence (the abstract model refilled at the
   long-term rate, the simulator refills one token per period): random
   configs mix every policy family, and an achievable count above the
   proved curve is exactly how such a divergence surfaces. *)
let test_fleet_intervals =
  Testutil.qtest ~count:40 "fleet intervals consistent"
    QCheck2.Gen.(int_range 0 500)
    (fun i ->
      check_analysis (Printf.sprintf "fleet-%d" i)
        (Fleet.gen_config ~seed:97 i);
      true)

let test_adversarial_schedule_conforms () =
  (* The greedy schedule must itself satisfy the policy it attacks: replay
     each prefix through the same earliest-admission logic. *)
  List.iter
    (fun (name, config) ->
      match Config.validate config with
      | Error _ -> ()
      | Ok () ->
          let ai = A.analyze config in
          List.iter
            (fun (sf : A.source_fact) ->
              let horizon = 2 * ai.A.cycle in
              let schedule =
                A.adversarial_schedule ~policy:sf.A.sf_policy
                  ~footprint:sf.A.sf_footprint ~horizon
              in
              let sorted = List.sort_uniq compare schedule in
              if sorted <> schedule then
                Alcotest.failf "%s/%s: schedule not strictly increasing" name
                  sf.A.sf_name;
              List.iter
                (fun t ->
                  if t < 1 || t > horizon then
                    Alcotest.failf "%s/%s: admission %d outside (0, %d]" name
                      sf.A.sf_name t horizon)
                schedule;
              let rec gaps = function
                | a :: (b :: _ as rest) ->
                    if b - a < sf.A.sf_footprint then
                      Alcotest.failf "%s/%s: gap %d under footprint %d" name
                        sf.A.sf_name (b - a) sf.A.sf_footprint;
                    gaps rest
                | _ -> ()
              in
              gaps schedule)
            ai.A.sources)
    (Fleet.gen_batch ~seed:5 ~count:10)

let suite =
  [
    Alcotest.test_case "scenario intervals consistent" `Quick
      test_scenario_intervals;
    test_fleet_intervals;
    Alcotest.test_case "adversarial schedules well-formed" `Quick
      test_adversarial_schedule_conforms;
  ]
