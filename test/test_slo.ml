(* Streaming SLO gauges: a conformant run burns under 1.0 end-to-end
   (store -> query -> Slo), artificial violations are counted per sample,
   the sink intercepts only labelled latency observations, and a stored
   simulator trace replays clean through the oracle's store entry point. *)

module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Store = Rthv_core.Trace_store
module Query = Rthv_core.Trace_query
module D = Rthv_check.Diagnostic
module Oracle = Rthv_check.Trace_oracle
module Scenarios = Rthv_check.Scenarios
module Slo = Rthv_check.Slo
module Registry = Rthv_obs.Registry
module Labels = Rthv_obs.Labels
module Sink = Rthv_obs.Sink
module Json = Rthv_obs.Json

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let with_temp f =
  let path = Filename.temp_file "rthv_test" ".rts" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let verdict t ~source ~cls =
  List.find_opt
    (fun v -> v.Slo.sv_source = source && v.Slo.sv_class = cls)
    (Slo.verdicts t)

(* End-to-end: simulate the conformant scenario into a store, replay the
   store through the query engine's on_sample hook into the gauges.  Every
   bounded series must burn strictly under 1.0 — that is the paper's
   guarantee the scenario was built to exhibit. *)
let test_conformant_burns_under_one () =
  let config = Scenarios.conformant () in
  let trace = Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity () in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  with_temp (fun path ->
      ignore (Store.write_entries path (Hyp_trace.to_list trace) : int);
      let slo = Slo.create config in
      let on_sample ~source ~cls ~partition:_ ~latency_us =
        Slo.observe slo ~source ~cls ~latency_us
      in
      let line_source line =
        List.find_map
          (fun s -> if s.Config.line = line then Some s.Config.name else None)
          config.Config.sources
      in
      let q =
        Query.run ~line_source ~on_sample ~agg:Query.Latency
          ~group_by:Query.By_class path
      in
      Alcotest.(check bool) "samples flowed" true (q.Query.q_matched > 0);
      Alcotest.(check bool) "slo ok" true (Slo.ok slo);
      let total = ref 0 in
      List.iter
        (fun v ->
          total := !total + v.Slo.sv_count;
          Alcotest.(check int) ("no violations: " ^ v.Slo.sv_class) 0
            v.Slo.sv_violations;
          match v.Slo.sv_burn with
          | Some burn ->
              (* The eq.-(16) bound is tight: the conformant workload can
                 attain it with equality, which is not a violation. *)
              Alcotest.(check bool) ("burn <= 1: " ^ v.Slo.sv_class) true
                (burn <= 1.0)
          | None -> ())
        (Slo.verdicts slo);
      Alcotest.(check int) "every sample in a series" q.Query.q_matched !total)

let test_violation_counted () =
  let config = Scenarios.quickstart () in
  let slo = Slo.create config in
  (* The series (and its precomputed bound) appears on first observation. *)
  Slo.observe slo ~source:"nic" ~cls:"direct" ~latency_us:1.0;
  let bound =
    match verdict slo ~source:"nic" ~cls:"direct" with
    | Some { Slo.sv_bound_us = Some b; _ } -> b
    | _ -> Alcotest.fail "direct series has no finite bound"
  in
  Alcotest.(check bool) "clean so far" true (Slo.ok slo);
  Slo.observe slo ~source:"nic" ~cls:"direct" ~latency_us:(bound *. 2.);
  Slo.observe slo ~source:"nic" ~cls:"direct" ~latency_us:(bound *. 3.);
  Slo.observe slo ~source:"nic" ~cls:"direct" ~latency_us:1.0;
  Alcotest.(check bool) "violated" false (Slo.ok slo);
  match verdict slo ~source:"nic" ~cls:"direct" with
  | Some v ->
      Alcotest.(check int) "samples" 4 v.Slo.sv_count;
      Alcotest.(check int) "per-sample violations" 2 v.Slo.sv_violations;
      Testutil.close ~eps:1e-9 "worst" (bound *. 3.) v.Slo.sv_worst_us;
      (match v.Slo.sv_burn with
      | Some burn -> Testutil.close ~eps:1e-9 "burn = worst/bound" 3.0 burn
      | None -> Alcotest.fail "bounded series must report burn");
      (* The rthv-slo/1 document agrees with the verdict. *)
      (match Slo.to_json slo with
      | Json.Obj fields -> (
          match List.assoc_opt "ok" fields with
          | Some (Json.Bool b) -> Alcotest.(check bool) "json ok" false b
          | _ -> Alcotest.fail "rthv-slo/1 missing ok")
      | _ -> Alcotest.fail "rthv-slo/1 not an object")
  | None -> Alcotest.fail "series missing"

(* An unanticipated (source, class) pair — e.g. the query engine's
   "unknown" — is counted but can never violate. *)
let test_unknown_series_unbounded () =
  let slo = Slo.create (Scenarios.quickstart ()) in
  Slo.observe slo ~source:"nic" ~cls:"unknown" ~latency_us:1e12;
  Alcotest.(check bool) "still ok" true (Slo.ok slo);
  match verdict slo ~source:"nic" ~cls:"unknown" with
  | Some v ->
      Alcotest.(check int) "counted" 1 v.Slo.sv_count;
      Alcotest.(check bool) "no bound" true (v.Slo.sv_bound_us = None);
      Alcotest.(check int) "no violations" 0 v.Slo.sv_violations
  | None -> Alcotest.fail "unknown series missing"

(* The sink folds in rthv_irq_latency_us observations carrying source and
   class labels, updates the registry gauges, and ignores everything else. *)
let test_sink_intercepts_latency () =
  let registry = Registry.create () in
  let slo = Slo.create ~registry (Scenarios.quickstart ()) in
  let sink = Slo.sink slo in
  let labels = Labels.v [ ("source", "nic"); ("class", "direct") ] in
  sink.Sink.observe "rthv_irq_latency_us" labels 42.0;
  sink.Sink.observe "rthv_irq_latency_us" labels 17.0;
  (* Wrong metric name, or no labels: ignored, not misattributed. *)
  sink.Sink.observe "rthv_slot_stolen_us" labels 1e9;
  sink.Sink.observe "rthv_irq_latency_us" Labels.empty 1e9;
  (match verdict slo ~source:"nic" ~cls:"direct" with
  | Some v ->
      Alcotest.(check int) "two samples" 2 v.Slo.sv_count;
      Testutil.close ~eps:1e-9 "worst" 42.0 v.Slo.sv_worst_us
  | None -> Alcotest.fail "sink did not feed the series");
  let text = Registry.to_prometheus registry in
  Alcotest.(check bool) "worst gauge exposed" true
    (contains text "rthv_slo_worst_latency_us");
  Alcotest.(check bool) "samples counter exposed" true
    (contains text "rthv_slo_samples_total")

(* Archived certification evidence: a simulator trace written to a store
   replays clean through the oracle without a JSONL detour. *)
let test_audit_store_clean () =
  let config = Scenarios.conformant () in
  let trace = Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity () in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  with_temp (fun path ->
      ignore (Store.write_entries path (Hyp_trace.to_list trace) : int);
      match Oracle.audit_store (Oracle.of_config config) path with
      | Ok diags ->
          Alcotest.(check (list string)) "no errors" []
            (List.sort_uniq compare
               (List.map (fun d -> d.D.code) (D.errors diags)))
      | Error msg -> Alcotest.failf "audit_store failed: %s" msg)

let test_audit_store_missing_file () =
  match Oracle.audit_store (Oracle.of_config (Scenarios.quickstart ())) "/nonexistent/no.rts" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing store must be an Error"

let suite =
  [
    Alcotest.test_case "conformant burns under one" `Quick
      test_conformant_burns_under_one;
    Alcotest.test_case "violation counted per sample" `Quick
      test_violation_counted;
    Alcotest.test_case "unknown series unbounded" `Quick
      test_unknown_series_unbounded;
    Alcotest.test_case "sink intercepts latency" `Quick
      test_sink_intercepts_latency;
    Alcotest.test_case "audit store clean" `Quick test_audit_store_clean;
    Alcotest.test_case "audit store missing file" `Quick
      test_audit_store_missing_file;
  ]
