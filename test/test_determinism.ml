(* End-to-end determinism of the parallel sweep engine: every experiment
   driver must render byte-identical output at jobs = 1 and jobs = 4.  The
   fingerprints go through the full pretty-printers and CSV exporters, so a
   single reordered record, shared PRNG draw or drifted histogram bin fails
   the comparison. *)

module Par = Rthv_par.Par
module Fig6 = Rthv_experiments.Fig6
module Fig7 = Rthv_experiments.Fig7
module Phase_sweep = Rthv_experiments.Phase_sweep
module Ecu_trace = Rthv_workload.Ecu_trace

let seq = Par.sequential
let par = Par.create ~jobs:4 ()

let check_identical name render =
  let a = render seq in
  let b = render par in
  if not (String.equal a b) then
    Alcotest.failf "%s: jobs=1 and jobs=4 outputs differ (%d vs %d bytes)"
      name (String.length a) (String.length b)

let fig6_render result =
  Format.asprintf "%a" Fig6.print result ^ Fig6.histogram_csv result

let test_fig6_run () =
  check_identical "fig6 monitored" (fun pool ->
      fig6_render (Fig6.run ~seed:42 ~count_per_load:300 ~pool Fig6.Monitored))

let test_fig6_run_all () =
  check_identical "fig6 run_all" (fun pool ->
      String.concat "\n"
        (List.map fig6_render (Fig6.run_all ~count_per_load:200 ~pool ())))

(* A short ECU profile keeps the four self-learning runs fast while still
   exercising learning, bounding and the series downsampling. *)
let light_profile =
  { Ecu_trace.default_profile with duration_us = 2_000_000; burst_count = 8 }

let test_fig7_run_all () =
  check_identical "fig7 run_all" (fun pool ->
      let results = Fig7.run_all ~profile:light_profile ~pool () in
      String.concat "\n" (List.map (Format.asprintf "%a" Fig7.print) results)
      ^ Fig7.series_csv results)

let test_phase_sweep () =
  check_identical "phase sweep" (fun pool ->
      Format.asprintf "%a" Phase_sweep.print
        [
          Phase_sweep.run ~samples:60 ~pool ~monitored:false ();
          Phase_sweep.run ~samples:60 ~pool ~monitored:true ();
        ])

let suite =
  [
    Alcotest.test_case "fig6 run: jobs=1 = jobs=4" `Quick test_fig6_run;
    Alcotest.test_case "fig6 run_all: jobs=1 = jobs=4" `Quick
      test_fig6_run_all;
    Alcotest.test_case "fig7 run_all: jobs=1 = jobs=4" `Quick
      test_fig7_run_all;
    Alcotest.test_case "phase sweep: jobs=1 = jobs=4" `Quick test_phase_sweep;
  ]
