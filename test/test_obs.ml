(* lib/obs: labels, JSON, the P² quantile estimator, the registry and the
   sink switch. *)

module Obs = Rthv_obs
module Labels = Obs.Labels
module Json = Obs.Json
module Quantile = Obs.Quantile
module Registry = Obs.Registry
module Sink = Obs.Sink
module Summary = Rthv_stats.Summary

(* --- labels ------------------------------------------------------------- *)

let test_labels_sorted () =
  let l = Labels.v [ ("z", "1"); ("a", "2") ] in
  Alcotest.(check (list (pair string string)))
    "sorted by key"
    [ ("a", "2"); ("z", "1") ]
    (Labels.to_list l);
  Alcotest.(check int) "equal after reorder" 0
    (Labels.compare l (Labels.v [ ("a", "2"); ("z", "1") ]))

let test_labels_reject () =
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Labels.v: duplicate label key \"a\"") (fun () ->
      ignore (Labels.v [ ("a", "1"); ("a", "2") ]))

(* --- json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok parsed ->
      Alcotest.(check string)
        "roundtrip" (Json.to_string doc) (Json.to_string parsed)

let test_json_rejects_garbage () =
  (match Json.parse "{\"a\": 1,}" with
  | Ok _ -> Alcotest.fail "accepted trailing comma"
  | Error _ -> ());
  match Json.parse "[1] trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

(* --- P² quantiles ------------------------------------------------------- *)

let test_p2_small_n_exact () =
  (* Under five observations the estimator must agree with nearest-rank. *)
  let e = Quantile.estimator 0.5 in
  List.iter (Quantile.add e) [ 9.0; 1.0; 5.0 ];
  Alcotest.(check (option (float 1e-9))) "median of 3" (Some 5.0)
    (Quantile.estimate e)

let test_p2_vs_exact () =
  (* A deterministic LCG stream; P² should land close to the sorted-sample
     percentile for a few thousand observations. *)
  let n = 5_000 in
  let state = ref 123456789 in
  let next () =
    state := (1103515245 * !state) + 12345;
    float_of_int (abs !state mod 100_000) /. 100.0
  in
  let samples = Array.init n (fun _ -> next ()) in
  let digest = Quantile.create () in
  Array.iter (Quantile.observe digest) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun p ->
      let exact = Summary.percentile sorted (100.0 *. p) in
      match Quantile.quantile digest p with
      | None -> Alcotest.failf "p%.1f missing" (100.0 *. p)
      | Some est ->
          (* Uniform on [0, 1000): allow 2 % of the range. *)
          if abs_float (est -. exact) > 20.0 then
            Alcotest.failf "p%.1f: P2 %.2f vs exact %.2f" (100.0 *. p) est
              exact)
    [ 0.5; 0.95; 0.99 ];
  Alcotest.(check int) "count" n (Quantile.count digest);
  Alcotest.(check (option (float 1e-9))) "min" (Some sorted.(0))
    (Quantile.min_value digest);
  Alcotest.(check (option (float 1e-9))) "max"
    (Some sorted.(n - 1))
    (Quantile.max_value digest)

let test_p2_monotone_across_quantiles () =
  let digest = Quantile.create () in
  for i = 1 to 1_000 do
    Quantile.observe digest (float_of_int ((i * 7919) mod 1000))
  done;
  let qs = Quantile.quantiles digest in
  Alcotest.(check int) "four tracked" 4 (List.length qs);
  let rec ascending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "estimates ascend with p" true (ascending qs)

(* --- registry ----------------------------------------------------------- *)

let test_registry_basics () =
  let r = Registry.create () in
  Registry.incr r "ops" 2;
  Registry.incr r "ops" 3;
  Registry.set_gauge r "depth" 7.5;
  Registry.observe r "lat" 42.0;
  Registry.observe_summary r "sum" 1.0;
  Alcotest.(check int) "four series" 4 (Registry.cardinality r);
  (match Registry.find r "ops" with
  | Some (Obs.Metric.Counter c) -> Alcotest.(check int) "counter" 5 !c
  | _ -> Alcotest.fail "ops not a counter");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Registry: ops is a counter, not the requested kind")
    (fun () -> Registry.set_gauge r "ops" 1.0)

let test_registry_labels_are_distinct_series () =
  let r = Registry.create () in
  let a = Labels.v [ ("p", "0") ] and b = Labels.v [ ("p", "1") ] in
  Registry.incr r ~labels:a "n" 1;
  Registry.incr r ~labels:b "n" 10;
  Registry.incr r ~labels:a "n" 1;
  let values =
    List.map
      (fun (row : Registry.row) ->
        match row.Registry.value with
        | Obs.Metric.Counter c -> (Labels.to_list row.Registry.labels, !c)
        | _ -> Alcotest.fail "expected counters")
      (Registry.snapshot r)
  in
  Alcotest.(check (list (pair (list (pair string string)) int)))
    "two series"
    [ ([ ("p", "0") ], 2); ([ ("p", "1") ], 10) ]
    values

let test_prometheus_exposition () =
  let r = Registry.create () in
  Registry.incr r ~labels:(Labels.v [ ("q", "a\"b") ]) "total" 1;
  Registry.observe r ~bounds:[| 1.0; 10.0 |] "h" 5.0;
  let text = Registry.to_prometheus r in
  List.iter
    (fun needle ->
      if
        not
          (let hl = String.length text and nl = String.length needle in
           let rec scan i =
             i + nl <= hl
             && (String.sub text i nl = needle || scan (i + 1))
           in
           scan 0)
      then Alcotest.failf "missing %S in:\n%s" needle text)
    [
      "# TYPE total counter";
      "total{q=\"a\\\"b\"} 1";
      "# TYPE h histogram";
      "h_bucket{le=\"1\"} 0";
      "h_bucket{le=\"10\"} 1";
      "h_bucket{le=\"+Inf\"} 1";
      "h_sum 5";
      "h_count 1";
    ]

(* HELP lines: emitted once per documented family, before its TYPE line,
   with exposition-format escaping; merge adopts missing help texts; and
   the recorder stamps its default documentation. *)
let test_prometheus_help_lines () =
  let index hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec scan i =
      if i + nl > hl then None
      else if String.sub hay i nl = needle then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let r = Registry.create () in
  Registry.set_help r "total" "Counted things, with a \\ and\na newline.";
  Registry.incr r "total" 1;
  Registry.set_gauge r "undocumented" 2.;
  let text = Registry.to_prometheus r in
  let help_at =
    match
      index text "# HELP total Counted things, with a \\\\ and\\na newline.\n"
    with
    | Some i -> i
    | None -> Alcotest.failf "missing escaped HELP line in:\n%s" text
  in
  (match index text "# TYPE total counter" with
  | Some type_at ->
      Alcotest.(check bool) "HELP precedes TYPE" true (help_at < type_at)
  | None -> Alcotest.fail "missing TYPE line");
  Alcotest.(check bool) "undocumented family has no HELP" true
    (index text "# HELP undocumented" = None);
  (* Merge adopts help texts missing from the destination. *)
  let into = Registry.create () in
  Registry.merge ~into r;
  Alcotest.(check (option string))
    "merge carries help"
    (Registry.help r "total")
    (Registry.help into "total");
  (* The recorder self-documents the simulator's families. *)
  let rec_reg = Obs.Recorder.registry (Obs.Recorder.create ()) in
  Alcotest.(check bool) "recorder stamps default help" true
    (Registry.help rec_reg "rthv_irq_latency_us" <> None)

let test_registry_json_parses () =
  let r = Registry.create () in
  Registry.incr r "c" 1;
  Registry.observe_summary r "s" 2.0;
  match Json.parse (Json.to_string (Registry.to_json r)) with
  | Ok (Json.List rows) -> Alcotest.(check int) "two rows" 2 (List.length rows)
  | Ok _ -> Alcotest.fail "expected a JSON array"
  | Error e -> Alcotest.failf "registry JSON does not parse: %s" e

(* --- sink --------------------------------------------------------------- *)

let test_sink_switch () =
  Alcotest.(check bool) "inactive by default" false (Sink.active ());
  let hits = ref 0 in
  let sink =
    {
      Sink.incr = (fun _ _ n -> hits := !hits + n);
      gauge = (fun _ _ _ -> incr hits);
      observe = (fun _ _ _ -> incr hits);
      span = (fun _ -> incr hits);
    }
  in
  Sink.with_sink sink (fun () ->
      Alcotest.(check bool) "active inside" true (Sink.active ());
      Sink.incr "x" Labels.empty 2;
      Sink.observe "y" Labels.empty 1.0);
  Alcotest.(check int) "both dispatched" 3 !hits;
  Alcotest.(check bool) "restored" false (Sink.active ());
  Sink.incr "x" Labels.empty 5;
  Alcotest.(check int) "no dispatch when inactive" 3 !hits

let test_recorder_collects_sim_metrics () =
  (* End to end: run a monitored simulation under a recorder sink and check
     the instrumentation series appear with consistent counts. *)
  let recorder = Obs.Recorder.create () in
  let config = Rthv_check.Scenarios.quickstart () in
  let sim = Rthv_core.Hyp_sim.create config in
  Sink.with_sink (Obs.Recorder.sink recorder) (fun () ->
      Rthv_core.Hyp_sim.run sim);
  let r = Obs.Recorder.registry recorder in
  let stats = Rthv_core.Hyp_sim.stats sim in
  let counter ?labels name =
    match Registry.find r ?labels name with
    | Some (Obs.Metric.Counter c) -> !c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  Alcotest.(check int)
    "interpositions" stats.Rthv_core.Hyp_sim.interpositions_started
    (counter
       ~labels:(Labels.v [ ("partition", "1") ])
       "rthv_interpositions_total");
  Alcotest.(check int)
    "slot switches" stats.Rthv_core.Hyp_sim.slot_switches
    (counter "rthv_slot_switches_total");
  match Registry.find r ~labels:(Labels.v [ ("class", "direct"); ("source", "nic") ])
          "rthv_irq_latency_us"
  with
  | Some (Obs.Metric.Summary q) ->
      Alcotest.(check bool) "direct latencies observed" true
        (Quantile.count q > 0)
  | _ -> Alcotest.fail "missing rthv_irq_latency_us summary"

let suite =
  [
    Alcotest.test_case "labels sort and compare" `Quick test_labels_sorted;
    Alcotest.test_case "labels reject duplicates" `Quick test_labels_reject;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "P2 exact under five samples" `Quick
      test_p2_small_n_exact;
    Alcotest.test_case "P2 tracks exact percentiles" `Quick test_p2_vs_exact;
    Alcotest.test_case "P2 quantiles ascend" `Quick
      test_p2_monotone_across_quantiles;
    Alcotest.test_case "registry kinds and clash" `Quick test_registry_basics;
    Alcotest.test_case "labelled series are distinct" `Quick
      test_registry_labels_are_distinct_series;
    Alcotest.test_case "prometheus exposition" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "prometheus HELP lines" `Quick
      test_prometheus_help_lines;
    Alcotest.test_case "registry JSON parses" `Quick test_registry_json_parses;
    Alcotest.test_case "sink install/uninstall" `Quick test_sink_switch;
    Alcotest.test_case "recorder collects simulator metrics" `Quick
      test_recorder_collects_sim_metrics;
  ]
