(* Every simulator run in the whole suite is audited: the hook attaches a
   trace to each Hyp_sim and replays it through the invariant oracle when
   the run finishes, raising Audit_failure on any violation. *)
let () = Rthv_check.Audit_hook.install ()

let () =
  Alcotest.run "rthv"
    [
      ("engine.cycles", Test_cycles.suite);
      ("engine.prng", Test_prng.suite);
      ("engine.event_queue", Test_event_queue.suite);
      ("engine.event_arena", Test_event_arena.suite);
      ("engine.simulator", Test_simulator.suite);
      ("hw", Test_hw.suite);
      ("analysis.distance_fn", Test_distance_fn.suite);
      ("analysis.arrival_curve", Test_arrival_curve.suite);
      ("analysis.busy_window", Test_busy_window.suite);
      ("analysis.tdma_interference", Test_tdma_interference.suite);
      ("analysis.independence", Test_independence.suite);
      ("analysis.irq_latency", Test_irq_latency.suite);
      ("analysis.guest_sched", Test_guest_sched.suite);
      ("analysis.edf_sched", Test_edf_sched.suite);
      ("analysis.propagation", Test_propagation.suite);
      ("analysis.sensitivity", Test_sensitivity.suite);
      ("analysis.certificate", Test_certificate.suite);
      ("rtos.irq_queue", Test_irq_queue.suite);
      ("rtos.guest", Test_guest.suite);
      ("rtos.ipc", Test_ipc.suite);
      ("core.tdma", Test_tdma.suite);
      ("core.monitor", Test_monitor.suite);
      ("core.throttle", Test_throttle.suite);
      ("core.config", Test_config.suite);
      ("core.facade", Test_facade.suite);
      ("core.hyp_sim", Test_hyp_sim.suite);
      ("core.activation", Test_activation.suite);
      ("core.hyp_trace", Test_hyp_trace.suite);
      ("core.vcd_export", Test_vcd_export.suite);
      ("core.trace_export", Test_trace_export.suite);
      ("core.tracestore", Test_tracestore.suite);
      ("core.trace_query", Test_trace_query.suite);
      ("obs", Test_obs.suite);
      ("obs.merge", Test_obs_merge.suite);
      ("obs.span", Test_span.suite);
      ("obs.prof", Test_prof.suite);
      ("core.flight", Test_flight.suite);
      ("check.lint", Test_lint.suite);
      ("check.trace_oracle", Test_trace_oracle.suite);
      ("check.slo", Test_slo.suite);
      ("check.absint", Test_absint.suite);
      ("check.codec", Test_codec.suite);
      ("check.witness", Test_witness.suite);
      ("check.certify", Test_certify.suite);
      ("core.admission", Test_admission.suite);
      ("core.slot_plan", Test_slot_plan.suite);
      ("analysis.bound", Test_bound.suite);
      ("golden", Test_golden.suite);
      ("workload", Test_workload.suite);
      ("workload.trace_io", Test_trace_io.suite);
      ("stats", Test_stats.suite);
      ("stats.ascii_plot", Test_ascii_plot.suite);
      ("par", Test_par.suite);
      ("experiments", Test_experiments.suite);
      ("experiments.determinism", Test_determinism.suite);
      ("experiments.ablation", Test_ablation.suite);
      ("experiments.multi_source", Test_multi_source.suite);
      ("experiments.phase_sweep", Test_phase_sweep.suite);
      ("integration", Test_integration.suite);
      ("integration.closed_form", Test_closed_form.suite);
    ]
