module Cpu = Rthv_hw.Cpu
module Ctx_cost = Rthv_hw.Ctx_cost
module Intc = Rthv_hw.Intc
module Timer = Rthv_hw.Timer
module Platform = Rthv_hw.Platform
module Simulator = Rthv_engine.Simulator

let test_cpu_costs () =
  Testutil.check_cycles "1 instr = 1 cycle on ARM9" 128
    (Cpu.instr_cost Cpu.arm926ejs 128);
  Testutil.close "us conversion" 0.64
    (Cpu.us_of_cycles Cpu.arm926ejs 128)

let test_ctx_cost () =
  Testutil.check_cycles "paper context switch = 10000 cycles" 10_000
    (Ctx_cost.cost ~cpu:Cpu.arm926ejs Ctx_cost.arm926ejs_default);
  Testutil.check_cycles "zero model" 0
    (Ctx_cost.cost ~cpu:Cpu.arm926ejs Ctx_cost.zero);
  let half = Ctx_cost.scaled Ctx_cost.arm926ejs_default 0.5 in
  Testutil.check_cycles "scaling" 5_000 (Ctx_cost.cost ~cpu:Cpu.arm926ejs half)

let test_platform_costs () =
  let p = Platform.arm926ejs_200mhz in
  Testutil.check_cycles "C_Mon = 128 instr" 128 (Platform.monitor_cost p);
  Testutil.check_cycles "C_sched = 877 instr" 877 (Platform.sched_manip_cost p);
  Testutil.check_cycles "C_ctx = 50us" (Testutil.us 50) (Platform.ctx_switch_cost p);
  Testutil.check_cycles "ideal platform is free" 0
    (Platform.ctx_switch_cost Platform.ideal)

let test_intc_delivery () =
  let intc = Intc.create ~lines:4 in
  let delivered = ref [] in
  Intc.set_handler intc (fun line -> delivered := line :: !delivered);
  Intc.raise_line intc 2;
  Alcotest.(check (list int)) "delivered" [ 2 ] !delivered;
  Alcotest.(check bool) "pending until ack" true (Intc.is_pending intc 2);
  Intc.ack intc 2;
  Alcotest.(check bool) "acked" false (Intc.is_pending intc 2)

let test_intc_non_counting () =
  let intc = Intc.create ~lines:2 in
  let count = ref 0 in
  Intc.set_handler intc (fun _ -> incr count);
  Intc.raise_line intc 0;
  Intc.raise_line intc 0;
  Intc.raise_line intc 0;
  Alcotest.(check int) "coalesced to one delivery" 1 !count;
  let stats = Intc.stats intc in
  Alcotest.(check int) "raised counted" 3 stats.Intc.raised;
  Alcotest.(check int) "coalesced counted" 2 stats.Intc.coalesced;
  Intc.ack intc 0;
  Intc.raise_line intc 0;
  Alcotest.(check int) "delivers again after ack" 2 !count

let test_intc_masking () =
  let intc = Intc.create ~lines:2 in
  let count = ref 0 in
  Intc.set_handler intc (fun _ -> incr count);
  Intc.mask intc 1;
  Intc.raise_line intc 1;
  Alcotest.(check int) "masked line not delivered" 0 !count;
  Alcotest.(check bool) "pending while masked" true (Intc.is_pending intc 1);
  Intc.unmask intc 1;
  Alcotest.(check int) "delivered on unmask" 1 !count

let test_intc_bad_line () =
  let intc = Intc.create ~lines:2 in
  Alcotest.check_raises "line range checked"
    (Invalid_argument "Intc: line 2 out of range") (fun () ->
      Intc.raise_line intc 2)

let test_intc_any_pending () =
  let intc = Intc.create ~lines:3 in
  Intc.set_handler intc (fun _ -> ());
  Alcotest.(check bool) "initially none" false (Intc.any_pending intc);
  Intc.raise_line intc 1;
  Alcotest.(check bool) "pending after raise" true (Intc.any_pending intc);
  Intc.ack intc 1;
  Alcotest.(check bool) "clear after ack" false (Intc.any_pending intc);
  (* A masked raise still sets the flag — a jump over it would lose the
     delivery a later unmask performs. *)
  Intc.mask intc 2;
  Intc.raise_line intc 2;
  Alcotest.(check bool) "masked raise is pending" true (Intc.any_pending intc)

let test_timer_fire_and_reprogram () =
  let sim = Simulator.create () in
  let intc = Intc.create ~lines:1 in
  let fired = ref [] in
  Intc.set_handler intc (fun _ -> fired := Simulator.now sim :: !fired);
  let timer = Timer.create ~sim ~intc ~line:0 in
  Timer.program timer ~delay:100;
  Alcotest.(check bool) "armed" true (Timer.is_armed timer);
  Alcotest.(check (option int)) "deadline" (Some 100) (Timer.deadline timer);
  Alcotest.(check (option int))
    "next_fire_at = deadline" (Timer.deadline timer)
    (Timer.next_fire_at timer);
  (* Reprogram before expiry: one-shot semantics replace the deadline. *)
  Timer.program timer ~delay:200;
  Simulator.run sim;
  Alcotest.(check (list int)) "fired once at new deadline" [ 200 ] !fired;
  Alcotest.(check bool) "disarmed after fire" false (Timer.is_armed timer)

let test_timer_cancel () =
  let sim = Simulator.create () in
  let intc = Intc.create ~lines:1 in
  let fired = ref 0 in
  Intc.set_handler intc (fun _ -> incr fired);
  let timer = Timer.create ~sim ~intc ~line:0 in
  Timer.program timer ~delay:50;
  Timer.cancel timer;
  Simulator.run sim;
  Alcotest.(check int) "cancelled timer does not fire" 0 !fired

let test_timer_chain () =
  (* Reprogramming from inside the handler, as the paper's experiment does. *)
  let sim = Simulator.create () in
  let intc = Intc.create ~lines:1 in
  let timer = ref None in
  let fired = ref [] in
  Intc.set_handler intc (fun line ->
      Intc.ack intc line;
      fired := Simulator.now sim :: !fired;
      if List.length !fired < 3 then
        Timer.program (Option.get !timer) ~delay:100);
  timer := Some (Timer.create ~sim ~intc ~line:0);
  Timer.program (Option.get !timer) ~delay:100;
  Simulator.run sim;
  Alcotest.(check (list int)) "chained periodic firing" [ 100; 200; 300 ]
    (List.rev !fired)

let suite =
  [
    Alcotest.test_case "cpu cost model" `Quick test_cpu_costs;
    Alcotest.test_case "context-switch cost model" `Quick test_ctx_cost;
    Alcotest.test_case "platform presets" `Quick test_platform_costs;
    Alcotest.test_case "intc delivery and ack" `Quick test_intc_delivery;
    Alcotest.test_case "intc non-counting flags" `Quick test_intc_non_counting;
    Alcotest.test_case "intc masking" `Quick test_intc_masking;
    Alcotest.test_case "intc line validation" `Quick test_intc_bad_line;
    Alcotest.test_case "intc any_pending" `Quick test_intc_any_pending;
    Alcotest.test_case "timer one-shot and reprogram" `Quick
      test_timer_fire_and_reprogram;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
    Alcotest.test_case "timer handler chain" `Quick test_timer_chain;
  ]
