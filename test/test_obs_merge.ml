(* Merge semantics for the observability layer: quantile digests, registry
   folds, the per-task sweep composition, and the JSON escaping the
   exporters rely on. *)

module Obs = Rthv_obs
module Labels = Obs.Labels
module Json = Obs.Json
module Quantile = Obs.Quantile
module Metric = Obs.Metric
module Registry = Obs.Registry
module Sink = Obs.Sink
module Par = Rthv_par.Par

let digest_of xs =
  let q = Quantile.create () in
  List.iter (Quantile.observe q) xs;
  q

(* --- quantile merge ------------------------------------------------------ *)

let test_merge_small_sample_exact () =
  (* Combined count <= 5: the merge must agree with observing the union. *)
  let m = Quantile.merge (digest_of [ 9.0; 1.0 ]) (digest_of [ 5.0 ]) in
  Alcotest.(check int) "count" 3 (Quantile.count m);
  Alcotest.(check (option (float 1e-9))) "min" (Some 1.0)
    (Quantile.min_value m);
  Alcotest.(check (option (float 1e-9))) "max" (Some 9.0)
    (Quantile.max_value m);
  Alcotest.(check (option (float 1e-9))) "median of union" (Some 5.0)
    (Quantile.quantile m 0.5)

let test_merge_identity () =
  (* Merging with an empty digest changes nothing. *)
  let a = digest_of (List.init 500 (fun i -> float_of_int ((i * 37) mod 100))) in
  let left = Quantile.merge (Quantile.create ()) a in
  let right = Quantile.merge a (Quantile.create ()) in
  List.iter
    (fun m ->
      Alcotest.(check int) "count" (Quantile.count a) (Quantile.count m);
      Alcotest.(check (option (float 1e-9))) "mean" (Quantile.mean a)
        (Quantile.mean m);
      List.iter2
        (fun (p, ea) (p', em) ->
          Alcotest.(check (float 1e-9)) "quantile p" p p';
          Alcotest.(check (float 1e-9)) "quantile est" ea em)
        (Quantile.quantiles a) (Quantile.quantiles m))
    [ left; right ]

let test_merge_deterministic () =
  (* Same inputs, same order: bit-identical output — the property the
     parallel sweeps rely on. *)
  let mk seed =
    digest_of (List.init 2_000 (fun i -> float_of_int ((i * seed) mod 997)))
  in
  let once = Quantile.merge (mk 37) (mk 101) in
  let again = Quantile.merge (mk 37) (mk 101) in
  List.iter2
    (fun (_, a) (_, b) ->
      Alcotest.(check bool) "bit-identical estimate" true (Float.equal a b))
    (Quantile.quantiles once) (Quantile.quantiles again)

let test_merge_moments_exact_and_estimates_close () =
  (* Count / sum / min / max combine exactly for any split; the quantile
     estimates stay close to the sequential digest. *)
  let xs = List.init 4_000 (fun i -> float_of_int ((i * 7919) mod 1_000)) in
  let n = List.length xs in
  let rec split i = function
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split (i + 1) rest in
        if i < n / 3 then (x :: a, b) else (a, x :: b)
  in
  let left, right = split 0 xs in
  let merged = Quantile.merge (digest_of left) (digest_of right) in
  let sequential = digest_of xs in
  Alcotest.(check int) "count" (Quantile.count sequential)
    (Quantile.count merged);
  Alcotest.(check (option (float 1e-6))) "mean" (Quantile.mean sequential)
    (Quantile.mean merged);
  Alcotest.(check (option (float 1e-9))) "min"
    (Quantile.min_value sequential) (Quantile.min_value merged);
  Alcotest.(check (option (float 1e-9))) "max"
    (Quantile.max_value sequential) (Quantile.max_value merged);
  List.iter
    (fun p ->
      match (Quantile.quantile merged p, Quantile.quantile sequential p) with
      | Some m, Some s ->
          (* Values are uniform on [0, 1000); the pseudo-sample replay adds
             error on top of P²'s own, so allow 10 % of the range. *)
          if abs_float (m -. s) > 100.0 then
            Alcotest.failf "p%g: merged %.2f vs sequential %.2f" p m s
      | _ -> Alcotest.failf "p%g missing" p)
    [ 0.5; 0.95; 0.99 ]

let test_merge_rejects_mismatched_quantiles () =
  let a = Quantile.create ~quantiles:[ 0.5 ] () in
  let b = Quantile.create ~quantiles:[ 0.9 ] () in
  Alcotest.check_raises "quantile set mismatch"
    (Invalid_argument "Quantile.merge: tracked quantile sets differ")
    (fun () -> ignore (Quantile.merge a b))

(* --- registry merge ------------------------------------------------------ *)

let test_registry_merge_kinds () =
  let into = Registry.create () and src = Registry.create () in
  Registry.incr into "c" 2;
  Registry.incr src "c" 3;
  Registry.set_gauge into "g" 1.0;
  Registry.set_gauge src "g" 9.0;
  Registry.observe into ~bounds:[| 10.0 |] "h" 5.0;
  Registry.observe src ~bounds:[| 10.0 |] "h" 50.0;
  Registry.incr src "only_src" 7;
  Registry.merge ~into src;
  (match Registry.find into "c" with
  | Some (Metric.Counter c) -> Alcotest.(check int) "counters add" 5 !c
  | _ -> Alcotest.fail "c");
  (match Registry.find into "g" with
  | Some (Metric.Gauge g) ->
      Alcotest.(check (float 1e-9)) "gauge takes source" 9.0 !g
  | _ -> Alcotest.fail "g");
  (match Registry.find into "h" with
  | Some (Metric.Histogram h) ->
      let counts = Metric.bucket_counts h in
      Alcotest.(check int) "bins add" 1 counts.(0);
      Alcotest.(check int) "overflow adds" 1 counts.(Array.length counts - 1);
      Alcotest.(check (float 1e-9)) "sum adds" 55.0 (Metric.sum h)
  | _ -> Alcotest.fail "h");
  (match Registry.find into "only_src" with
  | Some (Metric.Counter c) ->
      Alcotest.(check int) "missing series copied in" 7 !c
  | _ -> Alcotest.fail "only_src");
  (* The copy is deep: mutating the source afterwards must not leak. *)
  Registry.incr src "only_src" 100;
  match Registry.find into "only_src" with
  | Some (Metric.Counter c) -> Alcotest.(check int) "deep copy" 7 !c
  | _ -> Alcotest.fail "only_src after"

let test_registry_merge_of_splits_matches_sequential () =
  (* Counters and histograms are exact under any split, so folding shards
     must reproduce the sequential exposition bytes. *)
  let record reg i =
    let labels = Labels.v [ ("shard", string_of_int (i mod 2)) ] in
    Registry.incr reg ~labels "events_total" 1;
    Registry.observe reg ~labels ~bounds:[| 10.0; 100.0 |] "size"
      (float_of_int ((i * 13) mod 150))
  in
  let sequential = Registry.create () in
  List.iter (record sequential) (List.init 200 Fun.id);
  let shards = Array.init 4 (fun _ -> Registry.create ()) in
  List.iter (fun i -> record shards.(i mod 4) i) (List.init 200 Fun.id);
  let folded = Registry.create () in
  Array.iter (Registry.merge ~into:folded) shards;
  Alcotest.(check string) "exposition bytes"
    (Registry.to_prometheus sequential)
    (Registry.to_prometheus folded)

let test_registry_merge_associativity () =
  (* Counters and histogram bins add, so their fold is associative:
     (a+b)+c = a+(b+c) byte for byte.  (Summary merges are deterministic
     in fold order but not associative — that is why the sweep engine
     pins the fold to task-index order.) *)
  let mk seed =
    let reg = Registry.create () in
    for i = 1 to 300 do
      Registry.incr reg "n" i;
      Registry.observe reg ~bounds:[| 50.0; 250.0 |] "lat"
        (float_of_int ((i * seed) mod 500))
    done;
    reg
  in
  let left = Registry.create () in
  Registry.merge ~into:left (mk 7);
  Registry.merge ~into:left (mk 11);
  Registry.merge ~into:left (mk 13);
  let bc = Registry.create () in
  Registry.merge ~into:bc (mk 11);
  Registry.merge ~into:bc (mk 13);
  let right = Registry.create () in
  Registry.merge ~into:right (mk 7);
  Registry.merge ~into:right bc;
  Alcotest.(check string) "associative fold bytes"
    (Registry.to_prometheus left)
    (Registry.to_prometheus right)

let test_registry_merge_bound_mismatch () =
  let into = Registry.create () and src = Registry.create () in
  Registry.observe into ~bounds:[| 1.0 |] "h" 0.5;
  Registry.observe src ~bounds:[| 2.0 |] "h" 0.5;
  Alcotest.check_raises "bound mismatch"
    (Invalid_argument "Metric.merge: histogram bucket bounds differ")
    (fun () -> Registry.merge ~into src)

(* --- parallel sweep composition ------------------------------------------ *)

let test_par_metrics_byte_identical () =
  (* The acceptance property end to end: a sweep recording through the
     domain-local sink produces byte-identical metrics at any job count. *)
  let sweep pool =
    let reg = Registry.create () in
    let _ : int list =
      Par.mapi ~pool ~metrics:reg
        (fun i x ->
          Sink.incr "rthv_tasks_total" Labels.empty 1;
          Sink.observe "rthv_task_val_us"
            (Labels.v [ ("bucket", string_of_int (i mod 3)) ])
            (float_of_int ((i * 97) + x));
          x)
        (List.init 60 Fun.id)
    in
    Registry.to_prometheus reg
  in
  let seq = sweep Par.sequential in
  Alcotest.(check string) "jobs=4 = sequential" seq
    (sweep (Par.create ~jobs:4 ()));
  Alcotest.(check string) "jobs=3 = sequential" seq
    (sweep (Par.create ~jobs:3 ()))

(* --- json escaping -------------------------------------------------------- *)

let test_json_control_character_escaping () =
  (* Metric labels and span sources can carry arbitrary bytes; the exporter
     must emit valid JSON for all control characters. *)
  let s = "a\"b\\c\nd\re\tf\x01g\x1f" in
  let rendered = Json.to_string (Json.String s) in
  let contains needle =
    let hl = String.length rendered and nl = String.length needle in
    let rec scan i =
      i + nl <= hl && (String.sub rendered i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then
        Alcotest.failf "missing %S in %s" needle rendered)
    [ {|\"|}; {|\\|}; {|\n|}; {|\r|}; {|\t|}; {|\u0001|}; {|\u001f|} ];
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        Alcotest.failf "raw control byte %#x leaked into %s" (Char.code c)
          rendered)
    rendered;
  match Json.parse rendered with
  | Ok (Json.String round) ->
      Alcotest.(check string) "roundtrips through parse" s round
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.failf "escaped output does not parse: %s" e

let suite =
  [
    Alcotest.test_case "quantile merge exact under five samples" `Quick
      test_merge_small_sample_exact;
    Alcotest.test_case "quantile merge identity" `Quick test_merge_identity;
    Alcotest.test_case "quantile merge deterministic" `Quick
      test_merge_deterministic;
    Alcotest.test_case "quantile merge moments exact" `Quick
      test_merge_moments_exact_and_estimates_close;
    Alcotest.test_case "quantile merge rejects mismatch" `Quick
      test_merge_rejects_mismatched_quantiles;
    Alcotest.test_case "registry merge per kind" `Quick
      test_registry_merge_kinds;
    Alcotest.test_case "merge of splits = sequential bytes" `Quick
      test_registry_merge_of_splits_matches_sequential;
    Alcotest.test_case "registry fold associativity" `Quick
      test_registry_merge_associativity;
    Alcotest.test_case "histogram bound mismatch rejected" `Quick
      test_registry_merge_bound_mismatch;
    Alcotest.test_case "sweep metrics byte-identical across jobs" `Quick
      test_par_metrics_byte_identical;
    Alcotest.test_case "json control-character escaping" `Quick
      test_json_control_character_escaping;
  ]
