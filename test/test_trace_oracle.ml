(* Trace-invariant oracle: hand-built violating traces must be caught with
   the right code; conforming traces (hand-built and simulator-recorded)
   must audit clean. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module DF = Rthv_analysis.Distance_fn
module D = Rthv_check.Diagnostic
module Oracle = Rthv_check.Trace_oracle
module Audit_hook = Rthv_check.Audit_hook
module Scenarios = Rthv_check.Scenarios

let us = Testutil.us

let codes diags = List.sort_uniq compare (List.map (fun d -> d.D.code) diags)
let error_codes diags = codes (D.errors diags)

(* Two 5 ms partitions; line 0 -> partition 1, C_BH = 40us, d_min = 2 ms. *)
let monitored_config ?(shaping = Config.Fixed_monitor (DF.d_min (us 2_000))) ()
    =
  Config.make
    ~partitions:
      [
        Config.partition ~name:"a" ~slot_us:5_000 ();
        Config.partition ~name:"b" ~slot_us:5_000 ();
      ]
    ~sources:
      [
        Config.source ~name:"s" ~line:0 ~subscriber:1 ~c_th_us:5 ~c_bh_us:40
          ~interarrivals:(Rthv_workload.Gen.constant ~period:(us 4_000) ~count:20)
          ~shaping ();
      ]
    ()

let spec () = Oracle.of_config (monitored_config ())

let e time event = { Hyp_trace.time; event }

(* One well-formed admitted interposition: decision, start, completion, end.
   [finish] controls the window length (execution time, no preemption). *)
let interposition ~irq ~arrival ~start ~finish =
  [
    e arrival (Hyp_trace.Top_handler_run { irq; line = 0 });
    e arrival
      (Hyp_trace.Monitor_decision { irq; line = 0; arrival; verdict = `Admitted });
    e start (Hyp_trace.Interposition_start { irq; target = 1 });
    e finish (Hyp_trace.Bottom_handler_done { irq; partition = 1 });
    e finish (Hyp_trace.Interposition_end { target = 1; reason = `Queue_empty });
  ]

let test_clean_trace () =
  let entries =
    interposition ~irq:0 ~arrival:(us 100) ~start:(us 160) ~finish:(us 180)
    @ interposition ~irq:1 ~arrival:(us 2_200) ~start:(us 2_260)
        ~finish:(us 2_290)
  in
  Alcotest.(check (list string)) "no findings" []
    (codes (Oracle.audit_entries (spec ()) entries))

let test_delta_violation_caught () =
  (* Second admission only 1 ms after the first: d_min is 2 ms. *)
  let entries =
    interposition ~irq:0 ~arrival:(us 100) ~start:(us 160) ~finish:(us 180)
    @ interposition ~irq:1 ~arrival:(us 1_100) ~start:(us 1_160)
        ~finish:(us 1_180)
  in
  Alcotest.(check (list string)) "delta violation" [ "RTHV102" ]
    (error_codes (Oracle.audit_entries (spec ()) entries))

let test_budget_overrun_caught () =
  (* 100us of uninterrupted execution against a 40us budget. *)
  let entries =
    interposition ~irq:0 ~arrival:(us 100) ~start:(us 160) ~finish:(us 260)
  in
  Alcotest.(check (list string)) "budget overrun" [ "RTHV103" ]
    (error_codes (Oracle.audit_entries (spec ()) entries))

let test_budget_allows_preempting_hyp_work () =
  (* Window of 45us + C_Mon, but 5us top handler and one monitor run
     preempted it: execution is exactly the 40us budget — no finding. *)
  let c_mon = (spec ()).Oracle.c_mon in
  let finish = Cycles.( + ) (us 205) c_mon in
  let entries =
    [
      e (us 100) (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
      e (us 100)
        (Hyp_trace.Monitor_decision
           { irq = 0; line = 0; arrival = us 100; verdict = `Admitted });
      e (us 160) (Hyp_trace.Interposition_start { irq = 0; target = 1 });
      e (us 180) (Hyp_trace.Top_handler_run { irq = 1; line = 0 });
      e (us 190)
        (Hyp_trace.Monitor_decision
           { irq = 1; line = 0; arrival = us 175; verdict = `Denied });
      e finish (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
      e finish (Hyp_trace.Interposition_end { target = 1; reason = `Budget_exhausted });
    ]
  in
  Alcotest.(check (list string)) "allowance granted" []
    (error_codes (Oracle.audit_entries (spec ()) entries))

let test_out_of_slot_bottom_handler_caught () =
  let entries =
    [ e (us 100) (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 }) ]
  in
  Alcotest.(check (list string)) "out of slot" [ "RTHV105" ]
    (error_codes (Oracle.audit_entries (spec ()) entries));
  (* The same completion in the subscriber's own slot is fine. *)
  let in_slot =
    [
      e (us 5_000)
        (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 1 });
      e (us 5_100) (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
    ]
  in
  Alcotest.(check (list string)) "own slot" []
    (error_codes (Oracle.audit_entries (spec ()) in_slot))

let test_non_monotone_timestamps_caught () =
  let entries =
    [
      e (us 200) (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
      e (us 100) (Hyp_trace.Top_handler_run { irq = 1; line = 0 });
    ]
  in
  Alcotest.(check (list string)) "backwards" [ "RTHV101" ]
    (error_codes (Oracle.audit_entries (spec ()) entries))

let test_structural_violations_caught () =
  let end_without_start =
    [ e (us 100) (Hyp_trace.Interposition_end { target = 1; reason = `Queue_empty }) ]
  in
  Alcotest.(check (list string)) "end without start" [ "RTHV106" ]
    (error_codes (Oracle.audit_entries (spec ()) end_without_start));
  let start_without_admission =
    [
      e (us 100) (Hyp_trace.Top_handler_run { irq = 0; line = 0 });
      e (us 160) (Hyp_trace.Interposition_start { irq = 0; target = 1 });
    ]
  in
  Alcotest.(check (list string)) "start without admission" [ "RTHV106" ]
    (error_codes (Oracle.audit_entries (spec ()) start_without_admission))

let test_window_bound_violation_caught () =
  (* A capacity-1 token bucket refilling every 2 ms: five interpositions
     packed into 800us overrun the eq.-(14) window bound even though each
     respects its own budget (and no delta^- condition applies). *)
  let bucket =
    monitored_config
      ~shaping:(Config.Token_bucket { capacity = 1; refill = us 2_000 })
      ()
  in
  let spec = Oracle.of_config bucket in
  let entries =
    List.concat
      (List.init 5 (fun i ->
           let t = us (100 + (i * 200)) in
           interposition ~irq:i ~arrival:t ~start:(Cycles.( + ) t (us 10))
             ~finish:(Cycles.( + ) t (us 50))))
  in
  let diags = Oracle.audit_entries spec entries in
  Alcotest.(check bool) "RTHV104 fires" true
    (List.mem "RTHV104" (error_codes diags));
  (* The same five interpositions at the admitted 2 ms spacing are fine. *)
  let spaced =
    List.concat
      (List.init 5 (fun i ->
           let t = us (100 + (i * 2_000)) in
           interposition ~irq:i ~arrival:t ~start:(Cycles.( + ) t (us 10))
             ~finish:(Cycles.( + ) t (us 50))))
  in
  Alcotest.(check (list string)) "spaced ok" []
    (error_codes (Oracle.audit_entries spec spaced))

let test_raise_completion_matching () =
  let raised irq t = e t (Hyp_trace.Irq_raised { irq; line = 0 }) in
  (* Raised + matching completion pairs: clean. *)
  let clean =
    [ raised 0 (us 90) ]
    @ interposition ~irq:0 ~arrival:(us 100) ~start:(us 160) ~finish:(us 180)
    @ [ raised 1 (us 2_190) ]
    @ interposition ~irq:1 ~arrival:(us 2_200) ~start:(us 2_260)
        ~finish:(us 2_290)
  in
  Alcotest.(check (list string)) "matched pairs clean" []
    (error_codes (Oracle.audit_entries (spec ()) clean));
  (* A completion for an instance that was never raised, in a trace that
     does carry raise events: orphan. *)
  let orphan =
    [ raised 0 (us 90) ]
    @ interposition ~irq:0 ~arrival:(us 100) ~start:(us 160) ~finish:(us 180)
    @ interposition ~irq:1 ~arrival:(us 2_200) ~start:(us 2_260)
        ~finish:(us 2_290)
  in
  Alcotest.(check (list string)) "orphan completion" [ "RTHV108" ]
    (error_codes (Oracle.audit_entries (spec ()) orphan));
  (* The same instance id raised twice: not exactly-one. *)
  let dup_raise = [ raised 0 (us 90); raised 0 (us 95) ] in
  Alcotest.(check (list string)) "duplicate raise" [ "RTHV108" ]
    (error_codes (Oracle.audit_entries (spec ()) dup_raise));
  (* The same instance completed twice (in-slot, so no RTHV105 noise). *)
  let dup_done =
    [
      raised 0 (us 4_900);
      e (us 5_000)
        (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 1 });
      e (us 5_100) (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
      e (us 5_150) (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 });
    ]
  in
  Alcotest.(check (list string)) "duplicate completion" [ "RTHV108" ]
    (error_codes (Oracle.audit_entries (spec ()) dup_done));
  (* A raise on an unconfigured line is structural, not a matching issue. *)
  let bad_line = [ e (us 100) (Hyp_trace.Irq_raised { irq = 0; line = 9 }) ] in
  Alcotest.(check (list string)) "unconfigured line" [ "RTHV106" ]
    (error_codes (Oracle.audit_entries (spec ()) bad_line))

let test_dropped_entries_skip_audit () =
  let trace = Hyp_trace.create ~capacity:2 () in
  for i = 0 to 5 do
    Hyp_trace.record trace ~time:(us (100 * i))
      (Hyp_trace.Top_handler_run { irq = i; line = 0 })
  done;
  match Oracle.audit (spec ()) trace with
  | [ d ] ->
      Alcotest.(check string) "RTHV107" "RTHV107" d.D.code;
      Alcotest.(check string) "warning" "warning" (D.severity_name d.D.severity)
  | ds -> Alcotest.failf "expected exactly RTHV107, got %d findings" (List.length ds)

(* --- end-to-end: simulator-recorded traces audit clean ------------------ *)

let audit_simulated config =
  let trace = Hyp_trace.create ~capacity:Hyp_sim.audit_trace_capacity () in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  (sim, trace, Oracle.audit (Oracle.of_config config) trace)

let test_simulated_quickstart_clean () =
  let sim, trace, diags = audit_simulated (monitored_config ()) in
  let stats = Hyp_sim.stats sim in
  Alcotest.(check bool) "interpositions happened" true
    (stats.Hyp_sim.interposed > 0);
  Alcotest.(check bool) "trace non-empty" true (Hyp_trace.length trace > 0);
  Alcotest.(check (list string)) "audit clean" [] (error_codes diags)

let test_simulated_scenarios_clean () =
  List.iter
    (fun (name, build) ->
      let _, _, diags = audit_simulated (build ()) in
      match error_codes diags with
      | [] -> ()
      | cs -> Alcotest.failf "%s: audit errors %s" name (String.concat "," cs))
    Scenarios.good

let test_audit_hook_roundtrip () =
  Alcotest.(check bool) "hook installed by test main" true
    (Audit_hook.installed ());
  (* The hook auto-attaches a trace and audits on run; a conforming config
     must pass... *)
  let sim = Hyp_sim.create (monitored_config ()) in
  Hyp_sim.run sim;
  (* ... and a collected failure must raise Audit_failure with the list. *)
  let spec = spec () in
  let bad =
    [ e (us 100) (Hyp_trace.Bottom_handler_done { irq = 0; partition = 1 }) ]
  in
  let diags = Oracle.audit_entries spec bad in
  (try
     if List.exists D.is_error diags then
       raise (Audit_hook.Audit_failure diags);
     Alcotest.fail "expected errors"
   with Audit_hook.Audit_failure ds ->
     Alcotest.(check (list string)) "carried" [ "RTHV105" ] (error_codes ds));
  let contains ~substring s =
    let n = String.length substring and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = substring || go (i + 1)) in
    n = 0 || go 0
  in
  let rendered = Printexc.to_string (Audit_hook.Audit_failure diags) in
  Alcotest.(check bool) "printer registered" true
    (contains ~substring:"RTHV105" rendered)

let suite =
  [
    Alcotest.test_case "clean trace" `Quick test_clean_trace;
    Alcotest.test_case "RTHV102 delta violation" `Quick
      test_delta_violation_caught;
    Alcotest.test_case "RTHV103 budget overrun" `Quick
      test_budget_overrun_caught;
    Alcotest.test_case "RTHV103 preemption allowance" `Quick
      test_budget_allows_preempting_hyp_work;
    Alcotest.test_case "RTHV105 out-of-slot bottom handler" `Quick
      test_out_of_slot_bottom_handler_caught;
    Alcotest.test_case "RTHV101 monotonicity" `Quick
      test_non_monotone_timestamps_caught;
    Alcotest.test_case "RTHV106 structural" `Quick
      test_structural_violations_caught;
    Alcotest.test_case "RTHV104 window bound" `Quick
      test_window_bound_violation_caught;
    Alcotest.test_case "RTHV108 raise/completion matching" `Quick
      test_raise_completion_matching;
    Alcotest.test_case "RTHV107 dropped entries" `Quick
      test_dropped_entries_skip_audit;
    Alcotest.test_case "simulated quickstart clean" `Quick
      test_simulated_quickstart_clean;
    Alcotest.test_case "simulated scenarios clean" `Slow
      test_simulated_scenarios_clean;
    Alcotest.test_case "audit hook roundtrip" `Quick test_audit_hook_roundtrip;
  ]
