(* Binary trace store: lossless round-trips (explicit all-kinds list plus a
   qcheck property over random event streams), block-index pushdown, the
   ring spill hook streaming an over-capacity run, and corrupt input. *)

module Cycles = Rthv_engine.Cycles
module Hyp_trace = Rthv_core.Hyp_trace
module Store = Rthv_core.Trace_store
module Tracestore = Rthv_obs.Tracestore
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module DF = Rthv_analysis.Distance_fn

let us = Testutil.us

let with_temp f =
  let path = Filename.temp_file "rthv_test" ".rts" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let entry time event = { Hyp_trace.time; event }

(* One of every kind, every enum variant, argument values spread over the
   partition/line/irq ranges the codec packs. *)
let all_kinds_entries =
  [
    entry 0 (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 2 });
    entry 10 (Hyp_trace.Irq_raised { irq = 0; line = 3 });
    entry 20 (Hyp_trace.Top_handler_run { irq = 0; line = 3 });
    entry 30
      (Hyp_trace.Monitor_decision
         { irq = 0; line = 3; arrival = 10; verdict = `Admitted });
    entry 40 (Hyp_trace.Interposition_start { irq = 0; target = 2 });
    entry 50 (Hyp_trace.Bottom_handler_start { irq = 0; partition = 2 });
    entry 60 (Hyp_trace.Bottom_handler_done { irq = 0; partition = 2 });
    entry 70
      (Hyp_trace.Interposition_end { target = 2; reason = `Queue_empty });
    entry 80 (Hyp_trace.Boundary_deferred { owner = 1; until = 120 });
    entry 90 (Hyp_trace.Interposition_crossed_boundary { target = 2 });
    entry 95 (Hyp_trace.Irq_coalesced { line = 3 });
    entry 100
      (Hyp_trace.Monitor_decision
         { irq = 1; line = 3; arrival = 95; verdict = `Denied });
    entry 110
      (Hyp_trace.Monitor_decision
         { irq = 2; line = 3; arrival = 100; verdict = `Fallback_direct });
    entry 120
      (Hyp_trace.Interposition_end { target = 2; reason = `Budget_exhausted });
  ]

let check_roundtrip ?block_events entries =
  with_temp (fun path ->
      let n = Store.write_entries ?block_events path entries in
      Alcotest.(check int) "events written" (List.length entries) n;
      match Store.read_entries path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          Alcotest.(check bool) "entries round-trip" true (entries = back))

let test_all_kinds_roundtrip () = check_roundtrip all_kinds_entries

let test_multi_block_roundtrip () =
  (* Force many blocks so the per-block min/max reset and delta encoding
     restart are exercised. *)
  check_roundtrip ~block_events:4 all_kinds_entries

let test_empty_roundtrip () = check_roundtrip []

(* A simulated trace survives store + JSONL re-export byte-identically:
   the same equality the CI round-trip gate checks with cmp. *)
let simulated_entries () =
  let trace = Hyp_trace.create () in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"ctl" ~slot_us:6_000 ();
          Config.partition ~name:"io" ~slot_us:6_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:50
            ~interarrivals:
              (Rthv_workload.Gen.exponential ~seed:7 ~mean:(us 1_000)
                 ~count:120)
            ~shaping:(Config.Fixed_monitor (DF.d_min (us 500)))
            ();
        ]
      ()
  in
  let sim = Hyp_sim.create ~trace config in
  Hyp_sim.run sim;
  Hyp_trace.to_list trace

let test_simulated_roundtrip () =
  let entries = simulated_entries () in
  Alcotest.(check bool) "trace non-trivial" true (List.length entries > 200);
  check_roundtrip entries;
  with_temp (fun path ->
      ignore (Store.write_entries path entries : int);
      match Store.read_entries path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          let jsonl e =
            Rthv_core.Trace_export.jsonl_string
              (Rthv_core.Trace_export.trace_of_entries e)
          in
          Alcotest.(check string)
            "JSONL of store equals JSONL of original" (jsonl entries)
            (jsonl back))

(* The spill hook makes the store complete even when the bounded ring
   wraps: record far more events than the ring holds and compare against
   what was recorded, not what was retained. *)
let test_spill_outlives_ring () =
  with_temp (fun path ->
      let ring = Hyp_trace.create ~capacity:8 () in
      let w = Store.Writer.create path in
      Hyp_trace.set_spill ring (fun ~time event ->
          Store.Writer.add w ~time event);
      let total = 1000 in
      for i = 0 to total - 1 do
        Hyp_trace.record ring ~time:(i * 10)
          (Hyp_trace.Irq_raised { irq = i; line = 0 })
      done;
      Store.Writer.close w;
      Alcotest.(check bool) "ring dropped" true (Hyp_trace.dropped ring > 0);
      match Store.read_entries path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          Alcotest.(check int) "store kept every event" total
            (List.length back);
          List.iteri
            (fun i e ->
              Alcotest.(check bool)
                "event identity" true
                (e = entry (i * 10) (Hyp_trace.Irq_raised { irq = i; line = 0 })))
            back)

(* Pushdown: a time-range filter over many small blocks must skip block
   bodies outside the range and still return exactly the filtered set. *)
let test_time_pushdown () =
  let entries =
    List.init 256 (fun i ->
        entry (i * 100) (Hyp_trace.Irq_raised { irq = i; line = 0 }))
  in
  with_temp (fun path ->
      ignore (Store.write_entries ~block_events:16 path entries : int);
      let filter =
        { Store.no_filter with from_time = Some 10_000; to_time = Some 12_000 }
      in
      let seen = ref [] in
      let stats =
        Store.scan ~filter path ~f:(fun ~time ~kind:_ ~a:_ ~b:_ ~c:_ ~d:_ ->
            seen := time :: !seen)
      in
      let expected =
        List.filter_map
          (fun e ->
            if e.Hyp_trace.time >= 10_000 && e.Hyp_trace.time <= 12_000 then
              Some e.Hyp_trace.time
            else None)
          entries
      in
      Alcotest.(check (list int)) "filtered times" expected (List.rev !seen);
      Alcotest.(check int) "16 blocks" 16 stats.Tracestore.s_blocks;
      Alcotest.(check bool) "blocks skipped" true
        (stats.Tracestore.s_blocks_scanned < stats.Tracestore.s_blocks))

let test_kind_pushdown () =
  let entries = all_kinds_entries in
  with_temp (fun path ->
      ignore (Store.write_entries path entries : int);
      let kind = Option.get (Store.kind_of_name "monitor_decision") in
      let filter = { Store.no_filter with kinds = Some [ kind ] } in
      match Store.read_entries ~filter path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          Alcotest.(check int) "three decisions" 3 (List.length back);
          List.iter
            (fun e ->
              match e.Hyp_trace.event with
              | Hyp_trace.Monitor_decision _ -> ()
              | _ -> Alcotest.fail "kind filter leaked a non-decision")
            back)

(* Partition filter mirrors the CLI: keeps events attributable to the
   partition plus unattributable ones (line-keyed events with no map). *)
let test_partition_filter () =
  let entries =
    [
      entry 0 (Hyp_trace.Slot_switch { from_partition = 0; to_partition = 1 });
      entry 10 (Hyp_trace.Bottom_handler_start { irq = 0; partition = 1 });
      entry 20 (Hyp_trace.Bottom_handler_start { irq = 1; partition = 2 });
      entry 30 (Hyp_trace.Irq_raised { irq = 2; line = 5 });
    ]
  in
  with_temp (fun path ->
      ignore (Store.write_entries path entries : int);
      let filter = { Store.no_filter with partition = Some 1 } in
      (match Store.read_entries ~filter path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          (* Partition 2's bottom handler drops; the slot switch touches 1,
             and the line-keyed raise is unattributable without a map. *)
          Alcotest.(check int) "kept" 3 (List.length back));
      let line_partition line = if line = 5 then Some 2 else None in
      match Store.read_entries ~filter ~line_partition path with
      | Error msg -> Alcotest.failf "read_entries: %s" msg
      | Ok back ->
          (* With the map the raise resolves to partition 2 and drops too. *)
          Alcotest.(check int) "kept with line map" 2 (List.length back))

let test_corrupt_input () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a tracestore at all";
      close_out oc;
      match Store.read_entries path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "garbage parsed as a store")

(* qcheck: any generated event stream round-trips identically, across
   random block sizes — Irq_coalesced, span events and every verdict/reason
   included via the constructor list below. *)
let gen_event =
  QCheck2.Gen.(
    let part = 0 -- 6 in
    let line = 0 -- 12 in
    let irq = 0 -- 5_000 in
    oneof
      [
        map2
          (fun a b ->
            Hyp_trace.Slot_switch { from_partition = a; to_partition = b })
          part part;
        map2
          (fun o u -> Hyp_trace.Boundary_deferred { owner = o; until = u })
          part (0 -- 2_000_000);
        map2 (fun irq line -> Hyp_trace.Irq_raised { irq; line }) irq line;
        map2 (fun irq line -> Hyp_trace.Top_handler_run { irq; line }) irq line;
        map
          (fun (((irq, line), arrival), verdict) ->
            Hyp_trace.Monitor_decision { irq; line; arrival; verdict })
          (pair
             (pair (pair irq line) (0 -- 2_000_000))
             (oneofl [ `Admitted; `Denied; `Fallback_direct ]));
        map2
          (fun irq target -> Hyp_trace.Interposition_start { irq; target })
          irq part;
        map2
          (fun target reason -> Hyp_trace.Interposition_end { target; reason })
          part
          (oneofl [ `Budget_exhausted; `Queue_empty ]);
        map
          (fun target -> Hyp_trace.Interposition_crossed_boundary { target })
          part;
        map2
          (fun irq partition ->
            Hyp_trace.Bottom_handler_start { irq; partition })
          irq part;
        map2
          (fun irq partition -> Hyp_trace.Bottom_handler_done { irq; partition })
          irq part;
        map (fun line -> Hyp_trace.Irq_coalesced { line }) line;
      ])

let gen_entries =
  QCheck2.Gen.(
    let* gaps = list_size (0 -- 300) (pair (0 -- 10_000) gen_event) in
    let _, rev =
      List.fold_left
        (fun (t, acc) (gap, ev) ->
          let t = t + gap in
          (t, entry t ev :: acc))
        (0, []) gaps
    in
    let* block_events = 1 -- 64 in
    return (block_events, List.rev rev))

let qcheck_roundtrip =
  Testutil.qtest ~count:100 "store round-trip = identity" gen_entries
    (fun (block_events, entries) ->
      with_temp (fun path ->
          ignore (Store.write_entries ~block_events path entries : int);
          match Store.read_entries path with
          | Error msg -> QCheck2.Test.fail_reportf "read_entries: %s" msg
          | Ok back -> entries = back))

let suite =
  [
    Alcotest.test_case "all kinds round-trip" `Quick test_all_kinds_roundtrip;
    Alcotest.test_case "multi-block round-trip" `Quick
      test_multi_block_roundtrip;
    Alcotest.test_case "empty round-trip" `Quick test_empty_roundtrip;
    Alcotest.test_case "simulated trace round-trip" `Quick
      test_simulated_roundtrip;
    Alcotest.test_case "spill outlives the ring" `Quick
      test_spill_outlives_ring;
    Alcotest.test_case "time-range pushdown" `Quick test_time_pushdown;
    Alcotest.test_case "kind pushdown" `Quick test_kind_pushdown;
    Alcotest.test_case "partition filter" `Quick test_partition_filter;
    Alcotest.test_case "corrupt input is an error" `Quick test_corrupt_input;
    qcheck_roundtrip;
  ]
