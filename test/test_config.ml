module Config = Rthv_core.Config
module DF = Rthv_analysis.Distance_fn

let partition name slot = Config.partition ~name ~slot_us:slot ()

let source ?(line = 0) ?(subscriber = 0) ?(shaping = Config.No_shaping) () =
  Config.source ~name:"s" ~line ~subscriber ~c_th_us:5 ~c_bh_us:50
    ~interarrivals:[| 100; 200 |] ~shaping ()

let make ?(partitions = [ partition "a" 100; partition "b" 100 ]) sources =
  Config.make ~partitions ~sources ()

let expect_error config =
  match Config.validate config with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a validation error"

let test_valid_config () =
  match Config.validate (make [ source () ]) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_no_partitions () = expect_error (make ~partitions:[] [])

let test_bad_subscriber () = expect_error (make [ source ~subscriber:7 () ])

let test_duplicate_lines () =
  expect_error (make [ source ~line:1 (); source ~line:1 () ])

let test_line_out_of_range () = expect_error (make [ source ~line:999 () ])

let test_bad_self_learning () =
  let shaping =
    Config.Self_learning
      { l = 2; learn_events = 5; bound = Some (DF.d_min 100) }
  in
  (* bound has l = 1, monitor wants l = 2 *)
  expect_error (make [ source ~shaping () ])

(* A distance function learned from too short a trace keeps the "no bound
   learned" sentinel in unobserved positions; such a function must be
   rejected as a monitoring condition (its superadditive extension would
   overflow the eq.-(14) arithmetic), while an all-zero (degenerate but
   finite) condition stays structurally valid — the linter flags it as
   RTHV003 instead. *)
let test_sentinel_condition_rejected () =
  let sentinel_fn = DF.of_trace ~l:2 [ 0; 100 ] in
  expect_error
    (make [ source ~shaping:(Config.Fixed_monitor sentinel_fn) () ]);
  expect_error
    (make
       [
         source
           ~shaping:
             (Config.Monitor_and_bucket
                { fn = sentinel_fn; capacity = 1; refill = 100 })
           ();
       ]);
  expect_error
    (make
       [
         source
           ~shaping:
             (Config.Self_learning
                { l = 2; learn_events = 5; bound = Some sentinel_fn })
           ();
       ]);
  match
    Config.validate
      (make [ source ~shaping:(Config.Fixed_monitor (DF.unbounded ~l:1)) () ])
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "degenerate-but-finite rejected: %s" msg

let test_bad_bucket_and_budget () =
  expect_error
    (make
       [
         source ~shaping:(Config.Token_bucket { capacity = 0; refill = 100 }) ();
       ]);
  expect_error
    (make
       [
         source
           ~shaping:
             (Config.Monitor_and_bucket
                { fn = DF.d_min 100; capacity = 1; refill = 0 })
           ();
       ]);
  expect_error (make [ source ~shaping:(Config.Budgeted { per_cycle = 0 }) () ])

let test_plan_validation () =
  let sources = [ source () ] in
  let partitions = [ partition "a" 100; partition "b" 100 ] in
  expect_error
    (Config.make ~partitions ~sources
       ~plan:(Config.Weighted_plan { cycle = Testutil.us 300; weights = [| 1 |] })
       ());
  expect_error
    (Config.make ~partitions ~sources
       ~plan:
         (Config.Weighted_plan { cycle = Testutil.us 300; weights = [| 1; 0 |] })
       ());
  expect_error
    (Config.make ~partitions ~sources
       ~plan:(Config.Weighted_plan { cycle = 1; weights = [| 1; 1 |] })
       ());
  match
    Config.validate
      (Config.make ~partitions ~sources
         ~plan:
           (Config.Weighted_plan
              { cycle = Testutil.us 300; weights = [| 2; 1 |] })
         ())
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid weighted plan rejected: %s" msg

let test_effective_slots () =
  let partitions = [ partition "a" 100; partition "b" 100 ] in
  let config =
    Config.make ~partitions ~sources:[ source () ]
      ~plan:
        (Config.Weighted_plan { cycle = Testutil.us 300; weights = [| 2; 1 |] })
      ()
  in
  Alcotest.(check (array int))
    "weighted plan overrides partition slots"
    [| Testutil.us 200; Testutil.us 100 |]
    (Config.effective_slots config);
  Testutil.check_cycles "tdma follows the plan" (Testutil.us 300)
    (Rthv_core.Tdma.cycle_length (Config.tdma config))

let test_boundary_policy () =
  let open Rthv_core in
  let default = make [ source () ] in
  Alcotest.(check bool) "default defers" true
    (Config.finish_bh_at_boundary default);
  let strict =
    Config.make
      ~partitions:[ partition "a" 100; partition "b" 100 ]
      ~sources:[ source () ] ~boundary:Boundary_policy.Strict_cut ()
  in
  Alcotest.(check bool) "strict cut does not defer" false
    (Config.finish_bh_at_boundary strict);
  (* The legacy flag still works and the explicit policy wins over it. *)
  let legacy =
    Config.make
      ~partitions:[ partition "a" 100; partition "b" 100 ]
      ~sources:[ source () ] ~finish_bh_at_boundary:false ()
  in
  Alcotest.(check bool) "legacy flag mapped" false
    (Config.finish_bh_at_boundary legacy);
  let explicit_wins =
    Config.make
      ~partitions:[ partition "a" 100; partition "b" 100 ]
      ~sources:[ source () ] ~finish_bh_at_boundary:false
      ~boundary:Boundary_policy.Finish_bottom_handler ()
  in
  Alcotest.(check bool) "explicit policy wins" true
    (Config.finish_bh_at_boundary explicit_wins)

let test_monitoring_enabled () =
  Alcotest.(check bool) "off without shaping" false
    (Config.monitoring_enabled (make [ source () ]));
  Alcotest.(check bool) "on with a monitor" true
    (Config.monitoring_enabled
       (make [ source ~shaping:(Config.Fixed_monitor (DF.d_min 10)) () ]));
  Alcotest.(check bool) "on with self-learning" true
    (Config.monitoring_enabled
       (make
          [
            source
              ~shaping:
                (Config.Self_learning { l = 1; learn_events = 1; bound = None })
              ();
          ]))

let test_tdma_derivation () =
  let config = make [ source () ] in
  let tdma = Config.tdma config in
  Alcotest.(check int) "two partitions" 2 (Rthv_core.Tdma.partitions tdma);
  Testutil.check_cycles "cycle" (Testutil.us 200)
    (Rthv_core.Tdma.cycle_length tdma)

let test_constructor_validation () =
  Alcotest.check_raises "slot must be positive"
    (Invalid_argument "Config.partition: slot must be positive") (fun () ->
      ignore (Config.partition ~name:"x" ~slot_us:0 () : Config.partition));
  Alcotest.check_raises "wcet must be positive"
    (Invalid_argument "Config.source: handler WCETs must be positive")
    (fun () ->
      ignore
        (Config.source ~name:"x" ~line:0 ~subscriber:0 ~c_th_us:0 ~c_bh_us:1
           ~interarrivals:[||] ()
          : Config.source))

let suite =
  [
    Alcotest.test_case "valid config accepted" `Quick test_valid_config;
    Alcotest.test_case "no partitions rejected" `Quick test_no_partitions;
    Alcotest.test_case "bad subscriber rejected" `Quick test_bad_subscriber;
    Alcotest.test_case "duplicate lines rejected" `Quick test_duplicate_lines;
    Alcotest.test_case "line range checked" `Quick test_line_out_of_range;
    Alcotest.test_case "self-learning params checked" `Quick
      test_bad_self_learning;
    Alcotest.test_case "sentinel monitoring conditions rejected" `Quick
      test_sentinel_condition_rejected;
    Alcotest.test_case "bucket/budget params checked" `Quick
      test_bad_bucket_and_budget;
    Alcotest.test_case "weighted plan validation" `Quick test_plan_validation;
    Alcotest.test_case "effective_slots follows the plan" `Quick
      test_effective_slots;
    Alcotest.test_case "boundary policy promotion" `Quick test_boundary_policy;
    Alcotest.test_case "monitoring_enabled" `Quick test_monitoring_enabled;
    Alcotest.test_case "tdma derivation" `Quick test_tdma_derivation;
    Alcotest.test_case "constructor validation" `Quick
      test_constructor_validation;
  ]
