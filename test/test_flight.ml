(* Crash flight recorder: ring wraparound, allocation-free recording, and
   the post-mortem dump paths (oracle violation, uncaught exception) with
   re-import through the standard JSONL loader. *)

module Cycles = Rthv_engine.Cycles
module Config = Rthv_core.Config
module Hyp_sim = Rthv_core.Hyp_sim
module Hyp_trace = Rthv_core.Hyp_trace
module Admission = Rthv_core.Admission
module FR = Rthv_core.Flight_recorder
module Trace_export = Rthv_core.Trace_export
module DF = Rthv_analysis.Distance_fn
module Gen = Rthv_workload.Gen

(* Ring wraparound: record k events into a capacity-c ring; the last
   min(c, k) survive in order, and the totals account for every event. *)
let prop_ring_wraparound (cap, k) =
  let t = Hyp_trace.create ~capacity:cap () in
  for i = 0 to k - 1 do
    Hyp_trace.record t ~time:i (Hyp_trace.Irq_coalesced { line = i })
  done;
  let kept = Stdlib.min cap k in
  Hyp_trace.capacity t = cap
  && Hyp_trace.length t = kept
  && Hyp_trace.recorded t = k
  && Hyp_trace.dropped t = k - kept
  &&
  let entries = Hyp_trace.to_list t in
  List.length entries = kept
  && List.for_all2
       (fun e i ->
         e.Hyp_trace.time = i
         &&
         match e.Hyp_trace.event with
         | Hyp_trace.Irq_coalesced { line } -> line = i
         | _ -> false)
       entries
       (List.init kept (fun j -> k - kept + j))

let test_record_allocation_free () =
  let t = Hyp_trace.create ~capacity:64 () in
  let ev = Hyp_trace.Irq_coalesced { line = 7 } in
  (* Warm past the high-water mark, then steady-state records are two
     array stores. *)
  for i = 0 to 127 do
    Hyp_trace.record t ~time:i ev
  done;
  let before = Gc.minor_words () in
  for i = 0 to 999 do
    Hyp_trace.record t ~time:i ev
  done;
  let after = Gc.minor_words () in
  Testutil.close "steady-state record allocates nothing" 0. (after -. before)

(* A directory path that does not exist yet: the recorder creates it on
   first dump. *)
let fresh_dir () =
  let path = Filename.temp_file "rthv-flight" ".d" in
  Sys.remove path;
  path

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* A monitored source whose arrivals violate d_min, driven by an admit-all
   override: the trace oracle derives RTHV102 from the declared shaping,
   the audit hook dumps the flight ring, then raises Audit_failure. *)
let violating_run () =
  let d_min = Cycles.of_us 3_000 in
  let config =
    Config.make
      ~partitions:
        [
          Config.partition ~name:"a" ~slot_us:5_000 ();
          Config.partition ~name:"b" ~slot_us:5_000 ();
        ]
      ~sources:
        [
          Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
            ~c_bh_us:40
            ~interarrivals:
              (Gen.constant ~period:(Cycles.of_us 500) ~count:50)
            ~shaping:(Config.Fixed_monitor (DF.d_min d_min)) ()
        ]
      ()
  in
  let admit_all =
    Admission.custom ~name:"admit-all"
      ~decide:(fun _ -> true)
      ~commit:(fun _ -> ())
      ()
  in
  let sim = Hyp_sim.create ~policies:[ ("nic", admit_all) ] config in
  Hyp_sim.run sim

let test_dump_on_oracle_violation () =
  let dir = fresh_dir () in
  FR.enable ~capacity:256 ~dir ();
  Fun.protect ~finally:FR.disable (fun () ->
      Alcotest.(check bool) "suite audit hook installed" true
        (Rthv_check.Audit_hook.installed ());
      (match violating_run () with
      | () -> Alcotest.fail "expected Audit_failure"
      | exception Rthv_check.Audit_hook.Audit_failure diags ->
          Alcotest.(check bool) "diagnostics reported" true (diags <> []));
      match FR.last_dump () with
      | None -> Alcotest.fail "no flight dump written"
      | Some path ->
          Alcotest.(check bool) "dump file exists" true
            (Sys.file_exists path);
          Alcotest.(check bool) "reason in filename" true
            (contains ~needle:"oracle_violation" path);
          let ic = open_in path in
          let meta = input_line ic in
          close_in ic;
          Alcotest.(check bool) "meta line carries schema" true
            (contains ~needle:"rthv-flight/1" meta);
          Alcotest.(check bool) "meta line carries an RTHV code" true
            (contains ~needle:"RTHV1" meta);
          (* The dump must re-import through the standard loader (the meta
             line is skipped), so rthv_trace --from-jsonl can replay it. *)
          (match Trace_export.load_jsonl ~path with
          | Ok entries ->
              Alcotest.(check bool) "re-imports with events" true
                (List.length entries > 0)
          | Error msg -> Alcotest.failf "re-import failed: %s" msg))

let test_dump_on_uncaught_exception () =
  let dir = fresh_dir () in
  FR.enable ~dir ();
  Fun.protect ~finally:FR.disable (fun () ->
      let calls = ref 0 in
      let exploding =
        Admission.custom ~name:"exploding"
          ~decide:(fun _ ->
            incr calls;
            if !calls > 3 then failwith "injected fault";
            true)
          ~commit:(fun _ -> ())
          ()
      in
      let config =
        Config.make
          ~partitions:
            [
              Config.partition ~name:"a" ~slot_us:5_000 ();
              Config.partition ~name:"b" ~slot_us:5_000 ();
            ]
          ~sources:
            [
              Config.source ~name:"nic" ~line:0 ~subscriber:1 ~c_th_us:5
                ~c_bh_us:40
                ~interarrivals:
                  (Gen.constant ~period:(Cycles.of_us 2_000) ~count:50)
                ~shaping:Config.No_shaping ()
            ]
          ()
      in
      (match
         Hyp_sim.run (Hyp_sim.create ~policies:[ ("nic", exploding) ] config)
       with
      | () -> Alcotest.fail "expected the injected fault to escape"
      | exception Failure msg ->
          Alcotest.(check string) "fault propagated" "injected fault" msg);
      match FR.last_dump () with
      | None -> Alcotest.fail "no flight dump written"
      | Some path ->
          Alcotest.(check bool) "reason in filename" true
            (contains ~needle:"uncaught_exception" path);
          let ic = open_in path in
          let meta = input_line ic in
          close_in ic;
          Alcotest.(check bool) "detail carries the exception" true
            (contains ~needle:"injected fault" meta))

let test_disabled_recorder_dumps_nothing () =
  FR.disable ();
  let before = FR.last_dump () in
  Alcotest.(check bool) "dump returns None when disabled" true
    (FR.dump ~reason:"test" () = None);
  Alcotest.(check bool) "last_dump unchanged" true (FR.last_dump () = before)

let suite =
  [
    Testutil.qtest "ring wraparound keeps the last capacity entries"
      QCheck2.Gen.(pair (1 -- 32) (0 -- 100))
      prop_ring_wraparound;
    Alcotest.test_case "steady-state record is allocation-free" `Quick
      test_record_allocation_free;
    Alcotest.test_case "oracle violation dumps a replayable ring" `Quick
      test_dump_on_oracle_violation;
    Alcotest.test_case "uncaught exception dumps the ring" `Quick
      test_dump_on_uncaught_exception;
    Alcotest.test_case "disabled recorder never dumps" `Quick
      test_disabled_recorder_dumps_nothing;
  ]
