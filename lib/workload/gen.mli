(** Interarrival-time generators for the Section-6.1 experiments.

    The paper triggers IRQs from a timer reprogrammed in the top handler so
    that "the temporal distances between successive IRQs follow an
    exponential distribution with mean interarrival time lambda"; for the
    conforming scenario "the pseudo-random interarrival time is set at least
    to d_min".  All arrays are pre-generated (as in the paper) from a seeded
    PRNG. *)

val exponential :
  seed:int -> mean:Rthv_engine.Cycles.t -> count:int -> Rthv_engine.Cycles.t array
(** [count] exponential interarrival distances with the given mean, rounded
    to whole cycles (minimum 1 cycle — events cannot be simultaneous).
    @raise Invalid_argument on non-positive mean or negative count. *)

val exponential_clamped :
  seed:int ->
  mean:Rthv_engine.Cycles.t ->
  d_min:Rthv_engine.Cycles.t ->
  count:int ->
  Rthv_engine.Cycles.t array
(** Scenario 2 of Section 6.1: exponential distances clamped from below to
    [d_min], so the monitoring condition is always satisfied. *)

val uniform :
  seed:int ->
  lo:Rthv_engine.Cycles.t ->
  hi:Rthv_engine.Cycles.t ->
  count:int ->
  Rthv_engine.Cycles.t array
(** Uniform distances in [lo, hi]; for stress tests. *)

val constant : period:Rthv_engine.Cycles.t -> count:int -> Rthv_engine.Cycles.t array
(** Strictly periodic distances. *)

val bursty :
  seed:int ->
  burst_len:int ->
  inner:Rthv_engine.Cycles.t ->
  gap_mean:Rthv_engine.Cycles.t ->
  count:int ->
  Rthv_engine.Cycles.t array
(** Bursts of [burst_len] events [inner] apart, separated by exponential
    gaps of the given mean.  Exercises monitors with l > 1. *)

val adversarial :
  ?fn:Rthv_analysis.Distance_fn.t ->
  min_gap:Rthv_engine.Cycles.t ->
  count:int ->
  unit ->
  Rthv_engine.Cycles.t array
(** Back-to-back conforming burst: the greedy earliest arrival schedule that
    keeps [min_gap] between consecutive events and, when [fn] is given,
    conforms to every stored delta^- distance — so a monitor enforcing [fn]
    admits the whole stream while every window is as dense as the condition
    permits.  [min_gap] is typically the serialization footprint
    [C_TH + C_Mon + C'_BH] (only one interposition can be in flight, so a
    tighter spacing only produces denials).  The first distance is the first
    arrival's offset from the stream start (1 cycle).  This is the witness
    synthesizer's arrival generator: it realises the eq.-(14) worst case the
    static analysis predicts.  @raise Invalid_argument on non-positive
    [min_gap] or negative [count]. *)

val mean_for_load :
  c_bh_eff:Rthv_engine.Cycles.t -> load:float -> Rthv_engine.Cycles.t
(** Equation (17): lambda = C'_BH / U_IRQ.
    @raise Invalid_argument if [load] is not in (0, 1]. *)

val mean : Rthv_engine.Cycles.t array -> float
(** Empirical mean of a distance array, in cycles. *)

val to_timestamps :
  ?start:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t array -> Rthv_engine.Cycles.t list
(** Cumulative sums: absolute activation times of a distance array (the
    first distance is relative to [start], default 0). *)
