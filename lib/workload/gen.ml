module Cycles = Rthv_engine.Cycles
module Prng = Rthv_engine.Prng

let check_count count =
  if count < 0 then invalid_arg "Gen: negative count"

let exponential ~seed ~mean ~count =
  check_count count;
  if mean <= 0 then invalid_arg "Gen.exponential: mean must be positive";
  let rng = Prng.create ~seed in
  Array.init count (fun _ ->
      let d = Prng.exponential rng ~mean:(float_of_int mean) in
      Stdlib.max 1 (int_of_float (Float.round d)))

let exponential_clamped ~seed ~mean ~d_min ~count =
  if d_min <= 0 then invalid_arg "Gen.exponential_clamped: d_min must be positive";
  let distances = exponential ~seed ~mean ~count in
  Array.map (fun d -> Stdlib.max d d_min) distances

let uniform ~seed ~lo ~hi ~count =
  check_count count;
  if lo <= 0 || hi < lo then invalid_arg "Gen.uniform: need 0 < lo <= hi";
  let rng = Prng.create ~seed in
  Array.init count (fun _ -> lo + Prng.int rng (hi - lo + 1))

let constant ~period ~count =
  check_count count;
  if period <= 0 then invalid_arg "Gen.constant: period must be positive";
  Array.make count period

let bursty ~seed ~burst_len ~inner ~gap_mean ~count =
  check_count count;
  if burst_len <= 0 then invalid_arg "Gen.bursty: burst_len must be positive";
  if inner <= 0 || gap_mean <= 0 then
    invalid_arg "Gen.bursty: distances must be positive";
  let rng = Prng.create ~seed in
  Array.init count (fun i ->
      if i mod burst_len = 0 then
        let gap = Prng.exponential rng ~mean:(float_of_int gap_mean) in
        Stdlib.max inner (int_of_float (Float.round gap))
      else inner)

let adversarial ?fn ~min_gap ~count () =
  check_count count;
  if min_gap <= 0 then invalid_arg "Gen.adversarial: min_gap must be positive";
  if count = 0 then [||]
  else begin
    (* Greedy earliest-conforming schedule: arrival i is placed at the
       smallest time keeping min_gap to its predecessor and, when a
       monitoring condition is given, delta^-(j+1) to each of the previous
       j arrivals within the condition's horizon.  The resulting stream is
       admitted in full by a delta^- monitor, yet every window is as dense
       as the condition permits — the eq.-(14) worst case realised. *)
    let times = Array.make count 0 in
    times.(0) <- 1;
    for i = 1 to count - 1 do
      let t = ref (Cycles.( + ) times.(i - 1) min_gap) in
      (match fn with
      | None -> ()
      | Some fn ->
          let l = Rthv_analysis.Distance_fn.length fn in
          for j = 1 to Stdlib.min l i do
            let need = Rthv_analysis.Distance_fn.delta fn (j + 1) in
            let earliest = Cycles.( + ) times.(i - j) need in
            if earliest > !t then t := earliest
          done);
      times.(i) <- !t
    done;
    Array.mapi
      (fun i t ->
        if i = 0 then t else Cycles.( - ) t times.(i - 1))
      times
  end

let mean_for_load ~c_bh_eff ~load =
  if load <= 0. || load > 1. then
    invalid_arg "Gen.mean_for_load: load must be in (0, 1]";
  int_of_float (Float.round (float_of_int c_bh_eff /. load))

let mean distances =
  if Array.length distances = 0 then 0.
  else
    float_of_int (Array.fold_left Cycles.( + ) 0 distances)
    /. float_of_int (Array.length distances)

let to_timestamps ?(start = 0) distances =
  let acc = ref start in
  Array.to_list
    (Array.map
       (fun d ->
         acc := Cycles.( + ) !acc d;
         !acc)
       distances)
