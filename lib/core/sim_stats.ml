(* End-of-run statistics assembly: a pure read of the runtime state. *)

module Cycles = Rthv_engine.Cycles
module Intc = Rthv_hw.Intc

type t = {
  completed_irqs : int;
  direct : int;
  interposed : int;
  delayed : int;
  slot_switches : int;
  interposition_switches : int;
  interpositions_started : int;
  boundary_crossings : int;
  bh_boundary_deferrals : int;
  monitor_checks : int;
  admissions : int;
  denials : int;
  coalesced_irqs : int;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  sim_time : Cycles.t;
}

let assemble (s : Sim_state.t) =
  let monitor_checks =
    Array.fold_left
      (fun acc (src : Sim_state.runtime_source) ->
        acc + Admission.checks src.Sim_state.admission)
      0 s.Sim_state.sources
  in
  {
    completed_irqs = s.Sim_state.n_completed;
    direct = s.Sim_state.n_direct;
    interposed = s.Sim_state.n_interposed;
    delayed = s.Sim_state.n_delayed;
    slot_switches = s.Sim_state.slot_switches;
    interposition_switches = s.Sim_state.interposition_switches;
    interpositions_started = s.Sim_state.interpositions_started;
    boundary_crossings = s.Sim_state.boundary_crossings;
    bh_boundary_deferrals = s.Sim_state.bh_boundary_deferrals;
    monitor_checks;
    admissions = s.Sim_state.admissions;
    denials = s.Sim_state.denials;
    coalesced_irqs = (Intc.stats s.Sim_state.intc).Intc.coalesced;
    stolen_total = Array.copy s.Sim_state.stolen_total;
    stolen_slot_max = Array.copy s.Sim_state.stolen_slot_max;
    sim_time = s.Sim_state.now;
  }
