(** Crash flight recorder.

    When enabled, every {!Hyp_sim} run keeps its bounded {!Hyp_trace} ring
    (the last N scheduling events, allocation-free at steady state) and the
    recorder dumps it to a JSONL file when something goes wrong:

    - an oracle violation raised by the audit hook (RTHV1xx errors),
    - an uncaught exception escaping [Hyp_sim.run],
    - a negative-headroom report ([rthv_trace report] exit path).

    A dump is the standard {!Trace_export} JSONL stream prefixed with one
    [{"ev":"meta", ...}] line carrying the reason, schema, and ring
    statistics; {!Trace_export.load_jsonl} skips meta lines, so every dump
    re-imports through [rthv_trace --from-jsonl] unchanged.

    Enablement (capacity, output directory) is process-wide and normally
    set once at startup — via {!enable}, the [--flight-dir] CLI options, or
    the [RTHV_FLIGHT_DIR] environment variable.  The trace of the most
    recent run is tracked per domain, so parallel sweep workers never race
    on it; dump filenames carry the domain id and a per-domain sequence
    number. *)

val enable : ?capacity:int -> dir:string -> unit -> unit
(** Turn the recorder on: subsequent [Hyp_sim.create] calls attach a ring
    of [capacity] entries (default 4096) and dumps are written under [dir]
    (created on first dump if missing). *)

val disable : unit -> unit

val enabled : unit -> bool

val capacity : unit -> int
(** Ring capacity attached to new simulations while enabled. *)

val note_run : Hyp_trace.t -> unit
(** Called by [Hyp_sim.run]: marks [trace] as the flight ring of the
    current run on this domain. *)

val dump : reason:string -> ?detail:string -> unit -> string option
(** Write the current domain's flight ring to
    [dir/flight-d<domain>-<seq>-<reason>.jsonl].  Returns the path, or
    [None] when the recorder is disabled or no run has been noted.  Never
    raises: file-system errors are reported on stderr (the recorder must
    not mask the failure that triggered it). *)

val last_dump : unit -> string option
(** Path of the most recent dump written by this domain, if any. *)
