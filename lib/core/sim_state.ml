(* Runtime state of the hypervisor simulation plus the accounting helpers
   shared by the routing ({!Sim_route}), boundary ({!Sim_boundary}) and
   stepping ({!Hyp_sim}) layers.  This module owns the mutable world; the
   layers above it own the decisions. *)

module Cycles = Rthv_engine.Cycles
module Event_queue = Rthv_engine.Event_queue
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Irq_queue = Rthv_rtos.Irq_queue
module Platform = Rthv_hw.Platform
module Intc = Rthv_hw.Intc

(* Hypervisor-context work item: highest priority, FIFO, non-preemptible. *)
type hyp_item = {
  label : string;
  steals : bool;  (* counts towards eq.-(14) interference on the slot owner *)
  mutable remaining : Cycles.t;
  mutable started : bool;
  on_start : Cycles.t -> unit;
  on_done : unit -> unit;
}

type interposition = { target : int; mutable budget_left : Cycles.t }

type runtime_source = {
  cfg : Config.source;
  s_idx : int;
  admission : Admission.t;
  mutable next_arrival : int;
}

type pending_irq = {
  p_irq : int;
  p_source : runtime_source;
  p_arrival : Cycles.t;
  mutable p_top_start : Cycles.t;
  mutable p_top_end : Cycles.t;
  mutable p_decision : Cycles.t;  (* classification fixed; -1 until then *)
  mutable p_bh_start : Cycles.t;  (* first bottom-half cycle; -1 until then *)
  mutable p_class : Irq_record.classification;
}

type event = Arrival of int | Boundary

type t = {
  platform : Platform.t;
  config : Config.t;
  boundary : Boundary_policy.t;
  trace : Hyp_trace.t option;
  mutable prof : Rthv_obs.Prof.t;
      (* The phase profiler for the current run, hoisted out of the step
         loop: [Hyp_sim.run] refreshes it from [Prof.installed] once per
         run, so every instrumentation site below is one field load plus a
         predictable branch when profiling is off. *)
  tdma : Tdma.t;
  ipc : Ipc.t;
  guests : Guest.t array;
  sources : runtime_source array;
  source_by_line : runtime_source option array;
  intc : Intc.t;
  events : event Event_queue.t;
  hyp : hyp_item Queue.t;
  pending : (int, pending_irq) Hashtbl.t;
  c_mon : Cycles.t;
  c_sched : Cycles.t;
  c_ctx : Cycles.t;
  mutable now : Cycles.t;
  mutable interposition : interposition option;
  mutable interposition_pending : bool;
  mutable records : Irq_record.t list;  (* newest first *)
  mutable next_irq_id : int;
  mutable slot_owner : int;
  mutable slot_end : Cycles.t;
  mutable stolen_in_slot : Cycles.t;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  activation_specs : Rthv_rtos.Task.spec list;
  mutable scheduled_arrivals : int;
  mutable live_irqs : int;
  mutable live_aperiodic : int;
  mutable slot_switches : int;
  mutable interposition_switches : int;
  mutable interpositions_started : int;
  mutable boundary_crossings : int;
  mutable bh_boundary_deferrals : int;
  mutable admissions : int;
  mutable denials : int;
  mutable n_direct : int;
  mutable n_interposed : int;
  mutable n_delayed : int;
  mutable finished : bool;
}

let enqueue_hyp t ~label ~steals ~cost ~on_done =
  if cost < 0 then invalid_arg "Hyp_sim: negative hypervisor work";
  Queue.push
    {
      label;
      steals;
      remaining = cost;
      started = false;
      on_start = (fun _ -> ());
      on_done;
    }
    t.hyp

let enqueue_hyp_with_start t ~label ~steals ~cost ~on_start ~on_done =
  Queue.push
    { label; steals; remaining = cost; started = false; on_start; on_done }
    t.hyp

let trace_event_at t time event =
  match t.trace with
  | Some trace -> Hyp_trace.record trace ~time event
  | None -> ()

let trace_event t event = trace_event_at t t.now event

(* --- telemetry ----------------------------------------------------------
   Every site is guarded by [Sink.active] so the default no-op sink costs a
   single flag read — no labels are built, no calls dispatched.  Metric
   names map onto the paper's quantities: [rthv_irq_latency_us] is the
   simulated counterpart of the eq. (11)/(16) latency bounds,
   [rthv_stolen_slot_us] the per-slot interference eq. (14) budgets. *)
module Sink = Rthv_obs.Sink
module Labels = Rthv_obs.Labels
module Span = Rthv_obs.Span
module Prof = Rthv_obs.Prof

let obs_active = Sink.active

(* Profiled phases of the stepping loop (see DESIGN "Profiling"): the drain
   loop's event dispatch, the admission decision, boundary handling, and
   the sink-emission work on IRQ completion. *)
let ph_run = Prof.phase "run"
let ph_dispatch = Prof.phase "dispatch"
let ph_admission = Prof.phase "admission"
let ph_boundary = Prof.phase "boundary"
let ph_sink_emit = Prof.phase "sink_emit"

let obs_count name = Sink.incr name Labels.empty 1

let obs_irq_completed t p =
  let source = p.p_source.cfg.Config.name in
  let cls = Irq_record.classification_name p.p_class in
  Sink.incr "rthv_irq_completed_total"
    (Labels.v
       [
         ("source", source);
         ("class", cls);
         ("partition", string_of_int p.p_source.cfg.Config.subscriber);
       ])
    1;
  Sink.observe "rthv_irq_latency_us"
    (Labels.v [ ("source", source); ("class", cls) ])
    (Cycles.to_us (Cycles.( - ) t.now p.p_arrival))

(* One causal span per completed IRQ instance, timestamps in us.  The
   decision point and bottom-half start are clamped for robustness, but
   with the capture sites in [Hyp_sim] both are always set before
   completion. *)
let obs_span t p =
  let us = Cycles.to_us in
  let decision = if p.p_decision < 0 then p.p_top_end else p.p_decision in
  let bh_start = if p.p_bh_start < 0 then t.now else p.p_bh_start in
  Sink.span
    {
      Span.sp_irq = p.p_irq;
      sp_line = p.p_source.cfg.Config.line;
      sp_source = p.p_source.cfg.Config.name;
      sp_class = Irq_record.classification_name p.p_class;
      sp_arrival = us p.p_arrival;
      sp_top_start = us p.p_top_start;
      sp_top_end = us p.p_top_end;
      sp_decision = us decision;
      sp_bh_start = us bh_start;
      sp_completion = us t.now;
    }

let obs_monitor_decision src verdict =
  Sink.incr "rthv_monitor_decisions_total"
    (Labels.v
       [
         ("source", src.cfg.Config.name);
         ( "verdict",
           match verdict with
           | `Admitted -> "admitted"
           | `Denied -> "denied"
           | `Fallback_direct -> "fallback_direct" );
       ])
    1

let steal t elapsed =
  t.stolen_in_slot <- Cycles.( + ) t.stolen_in_slot elapsed

let close_slot_accounting t =
  let owner = t.slot_owner in
  t.stolen_total.(owner) <- Cycles.( + ) t.stolen_total.(owner) t.stolen_in_slot;
  if t.stolen_in_slot > t.stolen_slot_max.(owner) then
    t.stolen_slot_max.(owner) <- t.stolen_in_slot;
  if obs_active () then
    Sink.observe "rthv_stolen_slot_us"
      (Labels.of_int "partition" owner)
      (Cycles.to_us t.stolen_in_slot);
  t.stolen_in_slot <- 0

let finalize_completion t (item : Irq_queue.item) =
  match Hashtbl.find_opt t.pending item.Irq_queue.irq with
  | None ->
      (* Completion must be unique: items are dropped from the queue the
         moment their work reaches zero. *)
      assert false
  | Some p ->
      let record =
        {
          Irq_record.irq = p.p_irq;
          source = p.p_source.cfg.Config.name;
          line = p.p_source.cfg.Config.line;
          arrival = p.p_arrival;
          top_start = p.p_top_start;
          top_end = p.p_top_end;
          classification = p.p_class;
          completion = t.now;
        }
      in
      t.records <- record :: t.records;
      Hashtbl.remove t.pending p.p_irq;
      t.live_irqs <- t.live_irqs - 1;
      trace_event t
        (Hyp_trace.Bottom_handler_done
           { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber });
      if obs_active () then begin
        Prof.enter t.prof ph_sink_emit;
        obs_irq_completed t p;
        obs_span t p;
        Prof.leave t.prof
      end;
      (* uC/OS pattern: the bottom handler posts to an application task. *)
      match p.p_source.cfg.Config.activates with
      | Some spec ->
          t.live_aperiodic <- t.live_aperiodic + 1;
          Guest.release_aperiodic
            t.guests.(p.p_source.cfg.Config.subscriber)
            ~spec ~now:t.now
      | None -> ()

let end_interposition t ~reason =
  (match t.interposition with
  | Some ip ->
      trace_event t (Hyp_trace.Interposition_end { target = ip.target; reason })
  | None -> ());
  t.interposition <- None;
  enqueue_hyp t ~label:"ctx_back" ~steals:true ~cost:t.c_ctx ~on_done:(fun () ->
      t.interposition_switches <- t.interposition_switches + 1;
      t.interposition_pending <- false)

let schedule_next_arrival t src =
  let distances = src.cfg.Config.interarrivals in
  if src.cfg.Config.arrival_mode = Config.Reprogram
     && src.next_arrival < Array.length distances
  then begin
    let d = distances.(src.next_arrival) in
    src.next_arrival <- src.next_arrival + 1;
    Event_queue.push t.events ~time:(Cycles.( + ) t.now d) (Arrival src.s_idx);
    t.scheduled_arrivals <- t.scheduled_arrivals + 1
  end
