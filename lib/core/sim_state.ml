(* Runtime state of the hypervisor simulation plus the accounting helpers
   shared by the routing ({!Sim_route}), boundary ({!Sim_boundary}) and
   stepping ({!Hyp_sim}) layers.  This module owns the mutable world; the
   layers above it own the decisions.

   The hot-path containers are allocation-free by construction: external
   events live in a packed {!Rthv_engine.Event_arena} (int payloads, no
   boxed entries), hypervisor work items live in a pooled ring of parallel
   arrays tagged by {!hyp_kind} (no records, no closures), and in-flight
   IRQ state is found by indexing the IRQ id into a growing array instead
   of hashing. *)

module Cycles = Rthv_engine.Cycles
module Event_arena = Rthv_engine.Event_arena
module Fast_forward = Rthv_engine.Fast_forward
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Irq_queue = Rthv_rtos.Irq_queue
module Platform = Rthv_hw.Platform
module Intc = Rthv_hw.Intc

(* External-event payload encoding for the packed arena: a slot boundary is
   [-1], an arrival is the (non-negative) source index. *)
let ev_boundary = -1

type runtime_source = {
  cfg : Config.source;
  s_idx : int;
  admission : Admission.t;
  mutable next_arrival : int;
}

type pending_irq = {
  p_irq : int;
  p_source : runtime_source;
  p_arrival : Cycles.t;
  mutable p_top_start : Cycles.t;
  mutable p_top_end : Cycles.t;
  mutable p_decision : Cycles.t;  (* classification fixed; -1 until then *)
  mutable p_bh_start : Cycles.t;  (* first bottom-half cycle; -1 until then *)
  mutable p_class : Irq_record.classification;
}

(* Hypervisor-context work items: highest priority, FIFO, non-preemptible.
   Each kind identifies the continuation that used to be an [on_done]
   closure; the IRQ kinds carry their in-flight IRQ (whose [p_source] is
   the source), the others need no context. *)
type hyp_kind =
  | K_top_handler  (* modified top handler; completion routes the IRQ *)
  | K_monitor  (* paid admission check (C_MON) *)
  | K_sched_manip  (* scheduler manipulation before an interposition *)
  | K_ctx_to  (* context switch into the interposed partition *)
  | K_ctx_back  (* context switch back to the slot owner *)
  | K_slot_switch  (* TDMA partition switch at a slot boundary *)

(* Which items count towards the eq.-(14) interference on the slot owner. *)
let k_steals = function
  | K_sched_manip | K_ctx_to | K_ctx_back -> true
  | K_top_handler | K_monitor | K_slot_switch -> false

(* Shared placeholder for ring slots whose kind carries no IRQ
   (K_ctx_back, K_slot_switch) and for completed [pending_by_irq] slots.
   Never dispatched on, never mutated. *)
let dummy_source_cfg : Config.source =
  {
    Config.name = "";
    line = 0;
    subscriber = 0;
    c_th = 1;
    c_bh = 1;
    interarrivals = [||];
    arrival_mode = Config.Reprogram;
    shaping = Config.No_shaping;
    activates = None;
  }

let dummy_source =
  {
    cfg = dummy_source_cfg;
    s_idx = -1;
    admission = Admission.of_shaping ~cycle:1 Config.No_shaping;
    next_arrival = 0;
  }

let dummy_pending =
  {
    p_irq = -1;
    p_source = dummy_source;
    p_arrival = 0;
    p_top_start = 0;
    p_top_end = 0;
    p_decision = 0;
    p_bh_start = 0;
    p_class = Irq_record.Delayed;
  }

type t = {
  platform : Platform.t;
  config : Config.t;
  mode : Fast_forward.mode;
  boundary : Boundary_policy.t;
  trace : Hyp_trace.t option;
  mutable prof : Rthv_obs.Prof.t;
      (* The phase profiler for the current run, hoisted out of the step
         loop: [Hyp_sim.run] refreshes it from [Prof.installed] once per
         run, so every instrumentation site below is one field load plus a
         predictable branch when profiling is off. *)
  tdma : Tdma.t;
  ipc : Ipc.t;
  guests : Guest.t array;
  sources : runtime_source array;
  source_by_line : runtime_source option array;
  intc : Intc.t;
  events : Event_arena.t;
  (* Hypervisor work-item ring: parallel arrays, power-of-two capacity,
     FIFO between [hq_head] and [hq_head + hq_len) modulo capacity.  The
     IRQ context is stored as its id ([-1] for the kinds carrying none) and
     resolved through [pending_by_irq] on dispatch — an all-int ring incurs
     no write barriers and nothing for the GC to scan.  Every item
     referencing an IRQ runs before that IRQ finalizes (its bottom handler
     cannot execute while hypervisor work is queued), so the id is always
     resolvable when the item is dispatched. *)
  mutable hq_kind : hyp_kind array;
  mutable hq_remaining : Cycles.t array;
  mutable hq_started : bool array;
  mutable hq_irq : int array;
  mutable hq_head : int;
  mutable hq_len : int;
  (* In-flight IRQs indexed by IRQ id ([dummy_pending] once completed). *)
  mutable pending_by_irq : pending_irq array;
  c_mon : Cycles.t;
  c_sched : Cycles.t;
  c_ctx : Cycles.t;
  mutable now : Cycles.t;
  (* Live interposition, unboxed: [ip_target] is the partition running the
     interposed bottom handler, or [-1] when none is in flight.  At most one
     exists at a time, so two int fields replace an option record on the
     per-segment hot path. *)
  mutable ip_target : int;
  mutable ip_budget : Cycles.t;
  mutable interposition_pending : bool;
  retain_records : bool;
  mutable records : Irq_record.t list;  (* newest first *)
  mutable n_completed : int;
  mutable next_irq_id : int;
  mutable slot_owner : int;
  mutable slot_end : Cycles.t;
  mutable stolen_in_slot : Cycles.t;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  activation_specs : Rthv_rtos.Task.spec list;
  mutable scheduled_arrivals : int;
  mutable live_irqs : int;
  mutable live_aperiodic : int;
  mutable slot_switches : int;
  mutable interposition_switches : int;
  mutable interpositions_started : int;
  mutable boundary_crossings : int;
  mutable bh_boundary_deferrals : int;
  mutable admissions : int;
  mutable denials : int;
  mutable n_direct : int;
  mutable n_interposed : int;
  mutable n_delayed : int;
  mutable finished : bool;
}

(* --- hypervisor work ring ---------------------------------------------- *)

let hyp_is_empty t = t.hq_len = 0

let hyp_grow t =
  let cap = Array.length t.hq_kind in
  let cap' = cap * 2 in
  let kind' = Array.make cap' K_slot_switch in
  let remaining' = Array.make cap' 0 in
  let started' = Array.make cap' false in
  let irq' = Array.make cap' (-1) in
  for i = 0 to t.hq_len - 1 do
    let j = (t.hq_head + i) land (cap - 1) in
    kind'.(i) <- t.hq_kind.(j);
    remaining'.(i) <- t.hq_remaining.(j);
    started'.(i) <- t.hq_started.(j);
    irq'.(i) <- t.hq_irq.(j)
  done;
  t.hq_kind <- kind';
  t.hq_remaining <- remaining';
  t.hq_started <- started';
  t.hq_irq <- irq';
  t.hq_head <- 0

let enqueue_hyp t kind ~cost (p : pending_irq) =
  if cost < 0 then invalid_arg "Hyp_sim: negative hypervisor work";
  if t.hq_len = Array.length t.hq_kind then hyp_grow t;
  let i = (t.hq_head + t.hq_len) land (Array.length t.hq_kind - 1) in
  t.hq_kind.(i) <- kind;
  t.hq_remaining.(i) <- cost;
  t.hq_started.(i) <- false;
  t.hq_irq.(i) <- p.p_irq;
  t.hq_len <- t.hq_len + 1

let hyp_pop t =
  t.hq_head <- (t.hq_head + 1) land (Array.length t.hq_kind - 1);
  t.hq_len <- t.hq_len - 1

(* --- in-flight IRQ table ------------------------------------------------ *)

let pending_add t irq p =
  let cap = Array.length t.pending_by_irq in
  if irq >= cap then begin
    let cap' = Stdlib.max (cap * 2) (irq + 1) in
    let grown = Array.make cap' dummy_pending in
    Array.blit t.pending_by_irq 0 grown 0 cap;
    t.pending_by_irq <- grown
  end;
  t.pending_by_irq.(irq) <- p

(* The in-flight record of [irq], or [dummy_pending] (p_irq = -1) if the
   IRQ already completed. *)
let pending_get t irq = t.pending_by_irq.(irq)

let trace_event_at t time event =
  match t.trace with
  | Some trace -> Hyp_trace.record trace ~time event
  | None -> ()

let trace_event t event = trace_event_at t t.now event

(* Guard for hot call sites: constructing the event value itself allocates,
   so untraced runs skip even that. *)
let tracing t = match t.trace with Some _ -> true | None -> false

(* --- telemetry ----------------------------------------------------------
   Every site is guarded by [Sink.active] so the default no-op sink costs a
   single flag read — no labels are built, no calls dispatched.  Metric
   names map onto the paper's quantities: [rthv_irq_latency_us] is the
   simulated counterpart of the eq. (11)/(16) latency bounds,
   [rthv_stolen_slot_us] the per-slot interference eq. (14) budgets. *)
module Sink = Rthv_obs.Sink
module Labels = Rthv_obs.Labels
module Span = Rthv_obs.Span
module Prof = Rthv_obs.Prof

let obs_active = Sink.active

(* Profiled phases of the stepping loop (see DESIGN "Profiling"): the drain
   loop's event dispatch, the admission decision, boundary handling, and
   the sink-emission work on IRQ completion. *)
let ph_run = Prof.phase "run"
let ph_dispatch = Prof.phase "dispatch"
let ph_admission = Prof.phase "admission"
let ph_boundary = Prof.phase "boundary"
let ph_sink_emit = Prof.phase "sink_emit"

let obs_count name = Sink.incr name Labels.empty 1

let obs_irq_completed t p =
  let source = p.p_source.cfg.Config.name in
  let cls = Irq_record.classification_name p.p_class in
  Sink.incr "rthv_irq_completed_total"
    (Labels.v
       [
         ("source", source);
         ("class", cls);
         ("partition", string_of_int p.p_source.cfg.Config.subscriber);
       ])
    1;
  Sink.observe "rthv_irq_latency_us"
    (Labels.v [ ("source", source); ("class", cls) ])
    (Cycles.to_us (Cycles.( - ) t.now p.p_arrival))

(* One causal span per completed IRQ instance, timestamps in us.  The
   decision point and bottom-half start are clamped for robustness, but
   with the capture sites in [Hyp_sim] both are always set before
   completion. *)
let obs_span t p =
  let us = Cycles.to_us in
  let decision = if p.p_decision < 0 then p.p_top_end else p.p_decision in
  let bh_start = if p.p_bh_start < 0 then t.now else p.p_bh_start in
  Sink.span
    {
      Span.sp_irq = p.p_irq;
      sp_line = p.p_source.cfg.Config.line;
      sp_source = p.p_source.cfg.Config.name;
      sp_class = Irq_record.classification_name p.p_class;
      sp_arrival = us p.p_arrival;
      sp_top_start = us p.p_top_start;
      sp_top_end = us p.p_top_end;
      sp_decision = us decision;
      sp_bh_start = us bh_start;
      sp_completion = us t.now;
    }

let obs_monitor_decision src verdict =
  Sink.incr "rthv_monitor_decisions_total"
    (Labels.v
       [
         ("source", src.cfg.Config.name);
         ( "verdict",
           match verdict with
           | `Admitted -> "admitted"
           | `Denied -> "denied"
           | `Fallback_direct -> "fallback_direct" );
       ])
    1

let steal t elapsed =
  t.stolen_in_slot <- Cycles.( + ) t.stolen_in_slot elapsed

let close_slot_accounting t =
  let owner = t.slot_owner in
  t.stolen_total.(owner) <- Cycles.( + ) t.stolen_total.(owner) t.stolen_in_slot;
  if t.stolen_in_slot > t.stolen_slot_max.(owner) then
    t.stolen_slot_max.(owner) <- t.stolen_in_slot;
  if obs_active () then
    Sink.observe "rthv_stolen_slot_us"
      (Labels.of_int "partition" owner)
      (Cycles.to_us t.stolen_in_slot);
  t.stolen_in_slot <- 0

let finalize_completion t (item : Irq_queue.item) =
  let p = pending_get t item.Irq_queue.irq in
  (* Completion must be unique: items are dropped from the queue the
     moment their work reaches zero. *)
  assert (p.p_irq = item.Irq_queue.irq);
  if t.retain_records then begin
    let record =
      {
        Irq_record.irq = p.p_irq;
        source = p.p_source.cfg.Config.name;
        line = p.p_source.cfg.Config.line;
        arrival = p.p_arrival;
        top_start = p.p_top_start;
        top_end = p.p_top_end;
        classification = p.p_class;
        completion = t.now;
      }
    in
    t.records <- record :: t.records
  end;
  t.n_completed <- t.n_completed + 1;
  t.pending_by_irq.(p.p_irq) <- dummy_pending;
  t.live_irqs <- t.live_irqs - 1;
  if tracing t then
    trace_event t
      (Hyp_trace.Bottom_handler_done
         { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber });
  if obs_active () then begin
    Prof.enter t.prof ph_sink_emit;
    obs_irq_completed t p;
    obs_span t p;
    Prof.leave t.prof
  end;
  (* uC/OS pattern: the bottom handler posts to an application task. *)
  match p.p_source.cfg.Config.activates with
  | Some spec ->
      t.live_aperiodic <- t.live_aperiodic + 1;
      Guest.release_aperiodic
        t.guests.(p.p_source.cfg.Config.subscriber)
        ~spec ~now:t.now
  | None -> ()

let end_interposition t ~reason =
  if t.ip_target >= 0 && tracing t then
    trace_event t
      (Hyp_trace.Interposition_end { target = t.ip_target; reason });
  t.ip_target <- -1;
  t.ip_budget <- 0;
  enqueue_hyp t K_ctx_back ~cost:t.c_ctx dummy_pending

let schedule_next_arrival t src =
  let distances = src.cfg.Config.interarrivals in
  if src.cfg.Config.arrival_mode = Config.Reprogram
     && src.next_arrival < Array.length distances
  then begin
    let d = distances.(src.next_arrival) in
    src.next_arrival <- src.next_arrival + 1;
    Event_arena.push t.events ~time:(Cycles.( + ) t.now d) src.s_idx;
    t.scheduled_arrivals <- t.scheduled_arrivals + 1
  end
