module Cycles = Rthv_engine.Cycles

type event =
  | Slot_switch of { from_partition : int; to_partition : int }
  | Boundary_deferred of { owner : int; until : Cycles.t }
  | Irq_raised of { irq : int; line : int }
  | Top_handler_run of { irq : int; line : int }
  | Monitor_decision of {
      irq : int;
      line : int;
      arrival : Cycles.t;
      verdict : [ `Admitted | `Denied | `Fallback_direct ];
    }
  | Interposition_start of { irq : int; target : int }
  | Interposition_end of {
      target : int;
      reason : [ `Budget_exhausted | `Queue_empty ];
    }
  | Interposition_crossed_boundary of { target : int }
  | Bottom_handler_start of { irq : int; partition : int }
  | Bottom_handler_done of { irq : int; partition : int }
  | Irq_coalesced of { line : int }

type entry = { time : Cycles.t; event : event }

(* Parallel arrays instead of an [entry option array]: [record] writes a
   plain int and an (already-allocated, caller-owned) event pointer, so the
   ring itself allocates nothing at steady state — this is what lets the
   flight recorder ride along on every run (see Flight_recorder) without
   perturbing the allocation benchmarks.  Unwritten [events] slots hold a
   shared dummy and are never read ([total] bounds every traversal). *)
type t = {
  times : int array;
  events : event array;
  mutable next : int;  (* next write position *)
  mutable total : int;  (* events ever recorded *)
  mutable spill : (time:Cycles.t -> event -> unit) option;
}

let dummy_event = Irq_coalesced { line = -1 }

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Hyp_trace.create: capacity must be positive";
  {
    times = Array.make capacity 0;
    events = Array.make capacity dummy_event;
    next = 0;
    total = 0;
    spill = None;
  }

let capacity t = Array.length t.times
let set_spill t f = t.spill <- Some f
let clear_spill t = t.spill <- None

let record t ~time event =
  let i = t.next in
  t.times.(i) <- time;
  t.events.(i) <- event;
  let i = i + 1 in
  t.next <- (if i = Array.length t.times then 0 else i);
  t.total <- t.total + 1;
  match t.spill with None -> () | Some f -> f ~time event

let length t = Stdlib.min t.total (Array.length t.times)
let recorded t = t.total
let dropped t = Stdlib.max 0 (t.total - Array.length t.times)

let to_list t =
  let capacity = Array.length t.times in
  let n = length t in
  let start = if t.total <= capacity then 0 else t.next in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let j = (start + i) mod capacity in
      collect (i + 1) ({ time = t.times.(j); event = t.events.(j) } :: acc)
  in
  collect 0 []

let iter t f = List.iter f (to_list t)

let find_all t predicate =
  List.filter (fun entry -> predicate entry.event) (to_list t)

let pp_event ppf = function
  | Slot_switch { from_partition; to_partition } ->
      Format.fprintf ppf "slot switch p%d -> p%d" from_partition to_partition
  | Boundary_deferred { owner; until } ->
      Format.fprintf ppf "boundary deferred for p%d until %a" owner Cycles.pp
        until
  | Irq_raised { irq; line } ->
      Format.fprintf ppf "irq#%d raised (line %d)" irq line
  | Top_handler_run { irq; line } ->
      Format.fprintf ppf "top handler irq#%d (line %d)" irq line
  | Monitor_decision { irq; line; arrival; verdict } ->
      Format.fprintf ppf "monitor %s irq#%d (line %d, arrived %a)"
        (match verdict with
        | `Admitted -> "admitted"
        | `Denied -> "denied"
        | `Fallback_direct -> "fell back to direct for")
        irq line Cycles.pp arrival
  | Interposition_start { irq; target } ->
      Format.fprintf ppf "interposition into p%d for irq#%d" target irq
  | Interposition_end { target; reason } ->
      Format.fprintf ppf "interposition in p%d ended (%s)" target
        (match reason with
        | `Budget_exhausted -> "budget exhausted"
        | `Queue_empty -> "queue empty")
  | Interposition_crossed_boundary { target } ->
      Format.fprintf ppf "interposition in p%d crossed a slot boundary" target
  | Bottom_handler_start { irq; partition } ->
      Format.fprintf ppf "bottom handler start irq#%d (p%d)" irq partition
  | Bottom_handler_done { irq; partition } ->
      Format.fprintf ppf "bottom handler done irq#%d (p%d)" irq partition
  | Irq_coalesced { line } ->
      Format.fprintf ppf "irq coalesced on already-pending line %d" line

let pp_entry ppf { time; event } =
  Format.fprintf ppf "[%a] %a" Cycles.pp time pp_event event

let pp ppf t =
  (if dropped t > 0 then
     Format.fprintf ppf "(%d older entries dropped)@." (dropped t));
  iter t (fun entry -> Format.fprintf ppf "%a@." pp_entry entry)
