type t = Finish_bottom_handler | Strict_cut

let default = Finish_bottom_handler
let defers = function Finish_bottom_handler -> true | Strict_cut -> false
let of_bool b = if b then Finish_bottom_handler else Strict_cut
let equal (a : t) b = a = b

let pp ppf = function
  | Finish_bottom_handler -> Format.fprintf ppf "finish-bottom-handler"
  | Strict_cut -> Format.fprintf ppf "strict-cut"
