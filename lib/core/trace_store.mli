(** Binary trace store of hypervisor events.

    The {!Hyp_trace.event} codec over the generic columnar container
    {!Rthv_obs.Tracestore} ([rthv-tracestore/1]): each event maps to a
    fixed kind id plus up to four integer argument columns, so a store
    round-trips losslessly with the JSONL exporter ({!Trace_export}) while
    costing array stores instead of a JSON object per event.  Kind ids and
    names match the JSONL ["ev"] vocabulary, so CLI filters work unchanged
    across both formats.

    The per-block partition bitmap uses bits [0..60] for directly-named
    partitions, bit 61 for any partition >= 61, and bit 62 for events that
    name no partition (line-keyed or global events).  A partition filter
    keeps unattributable events, mirroring [rthv_trace --partition]. *)

val schema : string
(** ["rthv-tracestore/1"]. *)

val n_kinds : int
val arities : int array

val kind_of_event : Hyp_trace.event -> int

val kind_name : int -> string
(** The JSONL ["ev"] name of a kind id ("slot_switch", "irq_raised", ...). *)

val kind_of_name : string -> int option
val kind_names : string list
(** All kind names in kind-id order. *)

val encode_event : Hyp_trace.event -> int * int * int * int
(** The argument columns (a, b, c, d) of an event; unused columns are 0. *)

val decode_event : kind:int -> a:int -> b:int -> c:int -> d:int -> Hyp_trace.event
(** @raise Rthv_obs.Tracestore.Corrupt on an out-of-range kind or enum. *)

val overflow_partition_bit : int
val unattributed_bit : int
val partition_mask : int -> int
(** The index-bitmap bit for one partition id. *)

val pmask_of_event : Hyp_trace.event -> int

(** {2 Writing} *)

module Writer : sig
  type t

  val create : ?block_events:int -> string -> t
  (** Open [path] and stream events into it; blocks flush automatically.
      Suitable as a {!Hyp_trace.set_spill} hook target for live runs. *)

  val add : t -> time:Rthv_engine.Cycles.t -> Hyp_trace.event -> unit
  val add_entry : t -> Hyp_trace.entry -> unit
  val events_written : t -> int

  val close : t -> unit
  (** Flush the final partial block and close the file.  Idempotent. *)
end

val write_entries :
  ?block_events:int -> string -> Hyp_trace.entry list -> int
(** Write a store file from an entry list; returns the event count. *)

(** {2 Reading} *)

type filter = {
  from_time : Rthv_engine.Cycles.t option;
  to_time : Rthv_engine.Cycles.t option;
  kinds : int list option;  (** Keep only these kind ids. *)
  partition : int option;
      (** Keep events attributable to this partition — plus unattributable
          events, like the [rthv_trace] partition filter.  Events whose
          only partition handle is an IRQ line are resolved through
          [line_partition] when given, and count as unattributable
          otherwise. *)
}

val no_filter : filter

val scan :
  ?filter:filter ->
  ?line_partition:(int -> int option) ->
  string ->
  f:(time:Rthv_engine.Cycles.t -> kind:int -> a:int -> b:int -> c:int -> d:int -> unit) ->
  Rthv_obs.Tracestore.stats
(** Stream matching events through [f] without materializing the store;
    blocks excluded by the index (time range, kind set, partition bitmap)
    are skipped unread.
    @raise Rthv_obs.Tracestore.Corrupt on malformed input. *)

val read_entries :
  ?filter:filter ->
  ?line_partition:(int -> int option) ->
  string ->
  (Hyp_trace.entry list, string) result
(** Materialize the (filtered) store as entries, oldest first — the bridge
    back into {!Trace_export} and the oracle.  IO and corruption errors
    come back as [Error msg]. *)
