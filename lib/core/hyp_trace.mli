(** Hypervisor event trace.

    A bounded ring buffer of timestamped scheduling events, the moral
    equivalent of the trace buffer a real hypervisor exposes for
    certification evidence and debugging.  Recording is O(1); when the
    buffer is full the oldest entries are dropped (and counted). *)

type event =
  | Slot_switch of { from_partition : int; to_partition : int }
  | Boundary_deferred of { owner : int; until : Rthv_engine.Cycles.t }
  | Irq_raised of { irq : int; line : int }
      (** A hardware raise entered the simulator as a fresh IRQ instance —
          the root of that instance's causal span.  Coalesced raises (see
          {!Irq_coalesced}) do not create a new instance and therefore do
          not produce this event. *)
  | Top_handler_run of { irq : int; line : int }
  | Monitor_decision of {
      irq : int;
      line : int;
      arrival : Rthv_engine.Cycles.t;
          (** The activation timestamp the monitor judged — the time the
              interrupt line fired, not the decision time.  delta^-
              conformance of the admitted stream is defined on these. *)
      verdict : [ `Admitted | `Denied | `Fallback_direct ];
          (** [`Fallback_direct]: the subscriber's own slot opened between
              the arrival and the monitoring decision, so the event is
              handled directly and the admission machinery is skipped. *)
    }
  | Interposition_start of { irq : int; target : int }
  | Interposition_end of {
      target : int;
      reason : [ `Budget_exhausted | `Queue_empty ];
    }
  | Interposition_crossed_boundary of { target : int }
  | Bottom_handler_start of { irq : int; partition : int }
      (** First cycle of the instance's bottom-half execution (inside the
          subscriber's slot or an interposition window).  Together with
          {!Bottom_handler_done} this brackets the bottom-handler slice of
          the span. *)
  | Bottom_handler_done of { irq : int; partition : int }
  | Irq_coalesced of { line : int }
      (** A raise hit a line whose non-counting pending flag was already
          set: the activation is lost to the earlier one (only possible in
          {!Config.Absolute} arrival mode).  Previously just a counter in
          {!Hyp_sim.stats}; as an event the loss is visible on the timeline
          and in the exporters. *)

type entry = { time : Rthv_engine.Cycles.t; event : event }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 entries.  @raise Invalid_argument if
    non-positive. *)

val capacity : t -> int

val record : t -> time:Rthv_engine.Cycles.t -> event -> unit
(** O(1) and allocation-free: the ring stores the timestamp and the
    caller-allocated event value in parallel arrays, so steady-state
    recording costs two stores (this is the flight-recorder property —
    tracing can stay on for every run).  When a {!set_spill} hook is
    installed it is invoked after the store, adding one field load and a
    branch to the unhooked path. *)

val set_spill : t -> (time:Rthv_engine.Cycles.t -> event -> unit) -> unit
(** Install a per-record spill hook: every {!record} also hands the entry
    to [f] before the ring can overwrite it.  This is how a bounded ring
    streams an unbounded run into {!Trace_store.Writer} — the ring keeps
    its flight-recorder tail, the hook keeps the full history.  The hook
    must not record into the same trace. *)

val clear_spill : t -> unit

val length : t -> int
(** Entries currently retained. *)

val recorded : t -> int
(** Total events ever recorded (retained + dropped). *)

val dropped : t -> int

val to_list : t -> entry list
(** Oldest retained entry first. *)

val iter : t -> (entry -> unit) -> unit

val find_all : t -> (event -> bool) -> entry list
(** Retained entries whose event satisfies the predicate, oldest first. *)

val pp_event : Format.formatter -> event -> unit

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit
(** Render the retained timeline, one entry per line. *)
