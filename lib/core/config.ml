module Cycles = Rthv_engine.Cycles
module Distance_fn = Rthv_analysis.Distance_fn

type shaping =
  | No_shaping
  | Fixed_monitor of Distance_fn.t
  | Self_learning of {
      l : int;
      learn_events : int;
      bound : Distance_fn.t option;
    }
  | Token_bucket of { capacity : int; refill : Cycles.t }
  | Budgeted of { per_cycle : int }
  | Monitor_and_bucket of {
      fn : Distance_fn.t;
      capacity : int;
      refill : Cycles.t;
    }

type arrival_mode = Reprogram | Absolute

type source = {
  name : string;
  line : int;
  subscriber : int;
  c_th : Cycles.t;
  c_bh : Cycles.t;
  interarrivals : Cycles.t array;
  arrival_mode : arrival_mode;
  shaping : shaping;
  activates : Rthv_rtos.Task.spec option;
}

type partition = {
  pname : string;
  slot : Cycles.t;
  tasks : Rthv_rtos.Task.spec list;
  busy_loop : bool;
  policy : Rthv_rtos.Guest.policy;
}

type plan_spec =
  | Partition_slots
  | Weighted_plan of { cycle : Cycles.t; weights : int array }

type t = {
  platform : Rthv_hw.Platform.t;
  partitions : partition list;
  sources : source list;
  ports : (string * int) list;
  boundary : Boundary_policy.t;
  plan : plan_spec;
}

let partition ~name ~slot_us ?(tasks = []) ?(busy_loop = true)
    ?(policy = Rthv_rtos.Guest.Fixed_priority) () =
  if slot_us <= 0 then invalid_arg "Config.partition: slot must be positive";
  { pname = name; slot = Cycles.of_us slot_us; tasks; busy_loop; policy }

let source ~name ~line ~subscriber ~c_th_us ~c_bh_us ~interarrivals
    ?(arrival_mode = Reprogram) ?(shaping = No_shaping) ?activates () =
  if c_th_us <= 0 || c_bh_us <= 0 then
    invalid_arg "Config.source: handler WCETs must be positive";
  {
    name;
    line;
    subscriber;
    c_th = Cycles.of_us c_th_us;
    c_bh = Cycles.of_us c_bh_us;
    interarrivals;
    arrival_mode;
    shaping;
    activates;
  }

let make ?(platform = Rthv_hw.Platform.arm926ejs_200mhz)
    ?finish_bh_at_boundary ?boundary ?(plan = Partition_slots) ?(ports = [])
    ~partitions ~sources () =
  let boundary =
    match (boundary, finish_bh_at_boundary) with
    | Some b, _ -> b
    | None, Some flag -> Boundary_policy.of_bool flag
    | None, None -> Boundary_policy.default
  in
  { platform; partitions; sources; ports; boundary; plan }

let finish_bh_at_boundary t = Boundary_policy.defers t.boundary

let slot_plan t =
  match t.plan with
  | Partition_slots ->
      Slot_plan.static (Array.of_list (List.map (fun p -> p.slot) t.partitions))
  | Weighted_plan { cycle; weights } -> Slot_plan.weighted ~cycle ~weights

let effective_slots t = Slot_plan.slots (slot_plan t)

let tdma t = Slot_plan.tdma (slot_plan t)

(* A monitoring condition is usable only if its entries are below the
   "no bound learned" sentinel Distance_fn.of_trace leaves in never-observed
   positions: the superadditive extension sums entries, so sentinel-sized
   values overflow the eq.-(14) arithmetic downstream. *)
let check_condition what fn =
  if Distance_fn.finite fn then Ok ()
  else
    Error
      (Printf.sprintf
         "%s contains unlearned (sentinel) entries: not a usable monitoring \
          condition"
         what)

let check_bucket ~capacity ~refill =
  if capacity < 1 then Error "bucket capacity must be >= 1"
  else if refill < 1 then Error "bucket refill must be >= 1"
  else Ok ()

let validate t =
  let n_partitions = List.length t.partitions in
  let check_source acc source =
    match acc with
    | Error _ as e -> e
    | Ok lines ->
        if source.subscriber < 0 || source.subscriber >= n_partitions then
          Error (Printf.sprintf "source %s: bad subscriber" source.name)
        else if source.line < 0 || source.line >= t.platform.Rthv_hw.Platform.intc_lines
        then Error (Printf.sprintf "source %s: line out of range" source.name)
        else if List.mem source.line lines then
          Error (Printf.sprintf "source %s: duplicate line %d" source.name source.line)
        else if source.c_th <= 0 || source.c_bh <= 0 then
          Error (Printf.sprintf "source %s: non-positive WCET" source.name)
        else if Array.exists (fun d -> d < 0) source.interarrivals then
          Error (Printf.sprintf "source %s: negative interarrival" source.name)
        else
          let shaping_ok =
            match source.shaping with
            | No_shaping -> Ok ()
            | Fixed_monitor fn -> check_condition "monitoring condition" fn
            | Token_bucket { capacity; refill } ->
                check_bucket ~capacity ~refill
            | Budgeted { per_cycle } ->
                if per_cycle < 1 then Error "budget must admit >= 1 per cycle"
                else Ok ()
            | Monitor_and_bucket { fn; capacity; refill } -> (
                match check_condition "monitoring condition" fn with
                | Error _ as e -> e
                | Ok () -> check_bucket ~capacity ~refill)
            | Self_learning { l; learn_events; bound } ->
                if l <= 0 then Error "l must be positive"
                else if learn_events < 0 then Error "negative learn_events"
                else (
                  match bound with
                  | Some b when Distance_fn.length b <> l ->
                      Error "bound length mismatch"
                  | Some b -> check_condition "load bound" b
                  | None -> Ok ())
          in
          (match shaping_ok with
          | Error msg ->
              Error (Printf.sprintf "source %s: %s" source.name msg)
          | Ok () -> Ok (source.line :: lines))
  in
  let check_ports () =
    let rec unique = function
      | [] -> Ok ()
      | (name, capacity) :: rest ->
          if capacity <= 0 then
            Error (Printf.sprintf "port %S: capacity must be positive" name)
          else if List.mem_assoc name rest then
            Error (Printf.sprintf "duplicate port %S" name)
          else unique rest
    in
    match unique t.ports with
    | Error _ as e -> e
    | Ok () ->
        let declared = List.map fst t.ports in
        let missing =
          List.concat_map
            (fun p ->
              List.concat_map
                (fun (task : Rthv_rtos.Task.spec) ->
                  List.filter
                    (fun port -> not (List.mem port declared))
                    (List.filter_map Fun.id
                       [ task.Rthv_rtos.Task.produces; task.Rthv_rtos.Task.consumes ]))
                p.tasks)
            t.partitions
        in
        (match missing with
        | [] -> Ok ()
        | port :: _ -> Error (Printf.sprintf "undeclared port %S" port))
  in
  let check_plan () =
    match t.plan with
    | Partition_slots -> Ok ()
    | Weighted_plan { cycle; weights } ->
        if Array.length weights <> n_partitions then
          Error
            (Printf.sprintf
               "weighted plan has %d weights for %d partitions"
               (Array.length weights) n_partitions)
        else if Array.exists (fun w -> w <= 0) weights then
          Error "weighted plan: non-positive weight"
        else if cycle < n_partitions then
          Error "weighted plan: cycle shorter than one cycle per partition"
        else Ok ()
  in
  if n_partitions = 0 then Error "no partitions"
  else
    match check_plan () with
    | Error _ as e -> e
    | Ok () -> (
        match List.fold_left check_source (Ok []) t.sources with
        | Error _ as e -> e
        | Ok _ -> check_ports ())

let monitoring_enabled t =
  List.exists
    (fun source ->
      match source.shaping with
      | No_shaping -> false
      | Fixed_monitor _ | Self_learning _ | Token_bucket _ | Budgeted _
      | Monitor_and_bucket _ ->
          true)
    t.sources
