(* Slot-boundary handling: deferral of the switch for a mid-flight bottom
   handler (per the configured {!Boundary_policy}) and the switch itself,
   including the bounded spill of an interposition crossing the boundary. *)

module Cycles = Rthv_engine.Cycles
module Event_arena = Rthv_engine.Event_arena
module Irq_queue = Rthv_rtos.Irq_queue
module Guest = Rthv_rtos.Guest
open Sim_state

(* Defer the partition switch while the slot owner is in the middle of a
   bottom handler: let it finish, bounded by the handler's remaining budget.
   Returns the new deferred boundary time, or None to switch now. *)
let boundary_deferral t =
  if not (Boundary_policy.defers t.boundary) then None
  else if t.ip_target >= 0 then None
  else
    let queue = Guest.queue t.guests.(t.slot_owner) in
    if Irq_queue.is_empty queue then None
    else
      let item = Irq_queue.head queue in
      if
        item.Irq_queue.remaining > 0
        && item.Irq_queue.remaining < item.Irq_queue.total
      then Some (Cycles.( + ) t.now item.Irq_queue.remaining)
      else None

let handle_boundary t =
  Prof.enter t.prof ph_boundary;
  (match boundary_deferral t with
  | Some deferred ->
      t.bh_boundary_deferrals <- t.bh_boundary_deferrals + 1;
      if tracing t then
        trace_event t
          (Hyp_trace.Boundary_deferred
             { owner = t.slot_owner; until = deferred });
      if obs_active () then obs_count "rthv_bh_boundary_deferrals_total";
      (* Keep the old owner in place; extend its slot to the deferred check
         so execution can proceed, and re-examine then. *)
      t.slot_end <- deferred;
      Event_arena.push t.events ~time:deferred ev_boundary
  | None ->
      (* A running interposition is NOT cut at the boundary: its budget
         bounds the overrun by C_BH, so worst-case latency of conforming
         interrupts stays independent of the TDMA cycle (Section 5's
         claim).  The spill is charged to the incoming slot's owner as
         stolen time. *)
      if t.ip_target >= 0 then begin
        t.boundary_crossings <- t.boundary_crossings + 1;
        if tracing t then
          trace_event t
            (Hyp_trace.Interposition_crossed_boundary { target = t.ip_target });
        if obs_active () then obs_count "rthv_boundary_crossings_total"
      end;
      close_slot_accounting t;
      let previous_owner = t.slot_owner in
      let owner, _slot_start, slot_end = Tdma.slot_bounds_at t.tdma t.now in
      if tracing t then
        trace_event t
          (Hyp_trace.Slot_switch
             { from_partition = previous_owner; to_partition = owner });
      if obs_active () then obs_count "rthv_slot_switches_total";
      t.slot_owner <- owner;
      t.slot_end <- slot_end;
      enqueue_hyp t K_slot_switch ~cost:t.c_ctx dummy_pending;
      Event_arena.push t.events
        ~time:(Tdma.next_boundary t.tdma t.now)
        ev_boundary);
  Prof.leave t.prof
