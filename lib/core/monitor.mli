(** The delta^- monitoring / shaping mechanism of Section 5.

    The modified top handler (Figure 4b) consults this monitor whenever an
    IRQ arrives during a foreign TDMA slot.  The monitor admits the
    activation for {e interposed} handling only if its distance to the last
    [l] {e admitted} activations satisfies the monitoring condition
    delta^-_Ip[l]; otherwise the IRQ falls back to delayed handling.
    Because only admitted activations enter the history, the admitted stream
    conforms to the condition by construction, which is exactly what makes
    the interference bound of equation (14) hold.

    Two flavours exist:
    - a {b fixed} monitor configured with a distance function up front
      (Section 5 uses l = 1 with a single d_min);
    - a {b self-learning} monitor (Appendix A): the first [learn_events]
      activations only train Algorithm 1 (no interposition is admitted),
      then the learned function — adjusted to an optional upper load bound
      via Algorithm 2 — becomes the condition for the run phase. *)

type t

type phase =
  | Learning of int  (** Activations still needed before the run phase. *)
  | Running

val fixed : Rthv_analysis.Distance_fn.t -> t
(** Monitor with a predefined condition; starts in the run phase. *)

val d_min : Rthv_engine.Cycles.t -> t
(** The paper's l = 1 monitor. *)

val self_learning :
  l:int -> learn_events:int -> ?bound:Rthv_analysis.Distance_fn.t -> unit -> t
(** Appendix-A monitor.  [bound], when given, caps the admitted load
    (Algorithm 2); it must have length [l].
    @raise Invalid_argument on [l <= 0], [learn_events < 0] or a length
    mismatch. *)

val phase : t -> phase

val note_arrival : t -> Rthv_engine.Cycles.t -> unit
(** Record an activation of the monitored source (called for {e every} IRQ of
    the source, from the top handler).  Drives the learning phase; a no-op
    for fixed monitors and in the run phase. *)

val conforms : t -> Rthv_engine.Cycles.t -> bool
(** [conforms t ts]: would an interposition for an activation at [ts] be
    admitted now?  [false] during the learning phase.  Read-only and
    allocation-free — the per-IRQ hot path: the admitted history is an
    unboxed ring buffer, so the l distance comparisons touch no heap. *)

val check : t -> Rthv_engine.Cycles.t -> bool
(** {!conforms}, counted: increments {!checked_count}, modelling one paid
    execution of the monitoring function (C_Mon on the real system).  The
    hypervisor's top handler calls this; code that merely inspects the
    monitor should call {!conforms}. *)

val admit : t -> Rthv_engine.Cycles.t -> unit
(** Commit an admission: push [ts] into the admitted ring buffer (O(1),
    overwriting the oldest of the l remembered admissions).
    @raise Invalid_argument if {!conforms} is false (callers must check
    first — the hypervisor's top handler does). *)

val condition : t -> Rthv_analysis.Distance_fn.t option
(** The active monitoring condition: [None] while still learning. *)

val admitted_count : t -> int

val checked_count : t -> int
(** Number of [check] calls — the number of monitor-function executions,
    each costing C_Mon on the real system. *)
