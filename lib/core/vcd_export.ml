module Cycles = Rthv_engine.Cycles

(* Identifier codes (printable ASCII, VCD short ids). *)
let id_active = "!"
let id_interp = "\""
let id_top = "#"
let id_bh = "$"
let id_admit = "%"
let id_deny = "&"
let id_cross = "'"
let id_coalesced = "("
let id_raised = ")"
let id_bh_start = "*"

let header buf =
  Buffer.add_string buf "$date rthv hypervisor trace $end\n";
  Buffer.add_string buf "$version rthv vcd_export $end\n";
  Buffer.add_string buf "$timescale 5 ns $end\n";
  Buffer.add_string buf "$scope module hypervisor $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$var wire 8 %s active_partition $end\n" id_active);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 8 %s interposition $end\n" id_interp);
  Buffer.add_string buf (Printf.sprintf "$var wire 1 %s irq_top $end\n" id_top);
  Buffer.add_string buf (Printf.sprintf "$var wire 1 %s bh_done $end\n" id_bh);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s monitor_admit $end\n" id_admit);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s monitor_deny $end\n" id_deny);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s boundary_cross $end\n" id_cross);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s irq_coalesced $end\n" id_coalesced);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s irq_raised $end\n" id_raised);
  Buffer.add_string buf
    (Printf.sprintf "$var wire 1 %s bh_start $end\n" id_bh_start);
  Buffer.add_string buf "$upscope $end\n";
  Buffer.add_string buf "$enddefinitions $end\n"

let binary8 v =
  let bits = Bytes.make 8 '0' in
  for i = 0 to 7 do
    if (v lsr (7 - i)) land 1 = 1 then Bytes.set bits i '1'
  done;
  Bytes.to_string bits

let vector buf id v = Buffer.add_string buf (Printf.sprintf "b%s %s\n" (binary8 v) id)
let scalar buf id v = Buffer.add_string buf (Printf.sprintf "%d%s\n" v id)

(* A pulse is a 1 at the event time and a 0 one timestep later; pending
   clears are flushed before the next later timestamp is emitted. *)
type state = {
  buf : Buffer.t;
  mutable current_time : Cycles.t;
  mutable time_emitted : bool;
  mutable pending_clears : (Cycles.t * string) list;
}

let write_time st time =
  if (not st.time_emitted) || time > st.current_time then begin
    Buffer.add_string st.buf (Printf.sprintf "#%d\n" time);
    st.current_time <- time;
    st.time_emitted <- true
  end

let emit_time st time =
  (* Flush clears due at or before [time]; a clear landing exactly on [time]
     is emitted first within the same timestep. *)
  let due, keep = List.partition (fun (t, _) -> t <= time) st.pending_clears in
  List.iter
    (fun (t, id) ->
      write_time st t;
      scalar st.buf id 0)
    (List.sort compare due);
  st.pending_clears <- keep;
  write_time st time

let pulse st time id =
  emit_time st time;
  scalar st.buf id 1;
  st.pending_clears <- (Cycles.( + ) time 1, id) :: st.pending_clears

let to_buffer trace =
  let buf = Buffer.create 4096 in
  header buf;
  Buffer.add_string buf "$dumpvars\n";
  vector buf id_active 0;
  vector buf id_interp 0xff;
  scalar buf id_top 0;
  scalar buf id_bh 0;
  scalar buf id_admit 0;
  scalar buf id_deny 0;
  scalar buf id_cross 0;
  scalar buf id_coalesced 0;
  scalar buf id_raised 0;
  scalar buf id_bh_start 0;
  Buffer.add_string buf "$end\n";
  let st = { buf; current_time = 0; time_emitted = false; pending_clears = [] } in
  Hyp_trace.iter trace (fun entry ->
      let time = entry.Hyp_trace.time in
      match entry.Hyp_trace.event with
      | Hyp_trace.Slot_switch { to_partition; _ } ->
          emit_time st time;
          vector buf id_active to_partition
      | Hyp_trace.Boundary_deferred _ -> ()
      | Hyp_trace.Top_handler_run _ -> pulse st time id_top
      | Hyp_trace.Monitor_decision { verdict = `Admitted; _ } ->
          pulse st time id_admit
      | Hyp_trace.Monitor_decision { verdict = `Denied; _ } ->
          pulse st time id_deny
      | Hyp_trace.Monitor_decision { verdict = `Fallback_direct; _ } ->
          (* Handled directly in the subscriber's own slot: neither an
             admission nor a denial. *)
          ()
      | Hyp_trace.Interposition_start { target; _ } ->
          emit_time st time;
          vector buf id_interp target
      | Hyp_trace.Interposition_end _ ->
          emit_time st time;
          vector buf id_interp 0xff
      | Hyp_trace.Interposition_crossed_boundary _ ->
          (* The interposition keeps running in the new slot; the pulse
             marks the bounded spill charged to the incoming owner. *)
          pulse st time id_cross
      | Hyp_trace.Irq_raised _ -> pulse st time id_raised
      | Hyp_trace.Bottom_handler_start _ -> pulse st time id_bh_start
      | Hyp_trace.Bottom_handler_done _ -> pulse st time id_bh
      | Hyp_trace.Irq_coalesced _ -> pulse st time id_coalesced);
  (* Flush trailing pulse clears. *)
  List.iter
    (fun (t, id) ->
      write_time st t;
      scalar buf id 0)
    (List.sort compare st.pending_clears);
  buf

let to_channel oc trace = Buffer.output_buffer oc (to_buffer trace)
let to_string trace = Buffer.contents (to_buffer trace)

let save ~path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc trace)
