(* Façade over the policy-core layers: construction ({!Admission},
   {!Slot_plan}, {!Boundary_policy} instances from a {!Config}), the
   cycle-accurate stepping engine, and the public read API.  Routing
   decisions live in {!Sim_route}, boundary handling in {!Sim_boundary},
   state and accounting in {!Sim_state}, statistics in {!Sim_stats}. *)

module Cycles = Rthv_engine.Cycles
module Event_queue = Rthv_engine.Event_queue
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Irq_queue = Rthv_rtos.Irq_queue
module Platform = Rthv_hw.Platform
module Intc = Rthv_hw.Intc
open Sim_state

type t = Sim_state.t

type stats = Sim_stats.t = {
  completed_irqs : int;
  direct : int;
  interposed : int;
  delayed : int;
  slot_switches : int;
  interposition_switches : int;
  interpositions_started : int;
  boundary_crossings : int;
  bh_boundary_deferrals : int;
  monitor_checks : int;
  admissions : int;
  denials : int;
  coalesced_irqs : int;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  sim_time : Cycles.t;
}

(* Opt-in post-run audit: when a hook is installed, every simulation created
   without an explicit trace buffer gets one attached, and [run] hands the
   configuration plus the recorded trace to the hook once the run finishes.
   The trace-invariant oracle of [Rthv_check] installs itself here so whole
   test suites run audited without touching each call site. *)
let audit_hook : (Config.t -> Hyp_trace.t -> unit) option ref = ref None
let audit_trace_capacity = 1 lsl 20

let set_audit_hook hook = audit_hook := hook
let audit_hook_installed () = Option.is_some !audit_hook

let create ?trace ?(policies = []) config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hyp_sim.create: " ^ msg));
  List.iter
    (fun (name, _) ->
      if
        not
          (List.exists
             (fun (s : Config.source) -> s.Config.name = name)
             config.Config.sources)
      then invalid_arg ("Hyp_sim.create: policy for unknown source " ^ name))
    policies;
  let platform = config.Config.platform in
  let plan = Config.slot_plan config in
  let tdma = Slot_plan.tdma plan in
  let cycle = Slot_plan.cycle_length plan in
  let ipc = Ipc.create () in
  List.iter
    (fun (name, capacity) -> ignore (Ipc.declare ipc ~name ~capacity : Ipc.port))
    config.Config.ports;
  let guests =
    Array.of_list
      (List.map
         (fun (p : Config.partition) ->
           Guest.create ~tasks:p.Config.tasks ~busy_loop:p.Config.busy_loop
             ~ipc ~policy:p.Config.policy ~name:p.Config.pname ())
         config.Config.partitions)
  in
  let sources =
    Array.of_list
      (List.mapi
         (fun s_idx (cfg : Config.source) ->
           {
             cfg;
             s_idx;
             admission =
               (match List.assoc_opt cfg.Config.name policies with
               | Some p -> p
               | None -> Admission.of_shaping ~cycle cfg.Config.shaping);
             next_arrival = 0;
           })
         config.Config.sources)
  in
  let intc = Intc.create ~lines:platform.Platform.intc_lines in
  let source_by_line = Array.make platform.Platform.intc_lines None in
  Array.iter
    (fun src -> source_by_line.(src.cfg.Config.line) <- Some src)
    sources;
  let activation_specs =
    Array.to_list sources
    |> List.filter_map (fun src -> src.cfg.Config.activates)
  in
  let n = Array.length guests in
  let _, _, slot_end = Tdma.slot_bounds_at tdma 0 in
  let trace =
    match (trace, !audit_hook) with
    | (Some _ as some), _ -> some
    | None, Some _ -> Some (Hyp_trace.create ~capacity:audit_trace_capacity ())
    | None, None ->
        (* No audit, but the flight recorder wants the last N events of
           every run available for a post-mortem dump. *)
        if Flight_recorder.enabled () then
          Some (Hyp_trace.create ~capacity:(Flight_recorder.capacity ()) ())
        else None
  in
  let t =
    {
      platform;
      config;
      boundary = config.Config.boundary;
      trace;
      prof = Rthv_obs.Prof.disabled;
      tdma;
      ipc;
      guests;
      sources;
      source_by_line;
      intc;
      events = Event_queue.create ();
      hyp = Queue.create ();
      pending = Hashtbl.create 64;
      c_mon = Platform.monitor_cost platform;
      c_sched = Platform.sched_manip_cost platform;
      c_ctx = Platform.ctx_switch_cost platform;
      now = 0;
      interposition = None;
      interposition_pending = false;
      records = [];
      next_irq_id = 0;
      slot_owner = 0;
      slot_end;
      stolen_in_slot = 0;
      stolen_total = Array.make n 0;
      stolen_slot_max = Array.make n 0;
      activation_specs;
      scheduled_arrivals = 0;
      live_irqs = 0;
      live_aperiodic = 0;
      slot_switches = 0;
      interposition_switches = 0;
      interpositions_started = 0;
      boundary_crossings = 0;
      bh_boundary_deferrals = 0;
      admissions = 0;
      denials = 0;
      n_direct = 0;
      n_interposed = 0;
      n_delayed = 0;
      finished = false;
    }
  in
  Intc.set_handler intc (Sim_route.deliver t);
  Event_queue.push t.events ~time:(Tdma.next_boundary tdma 0) Boundary;
  Array.iter
    (fun src ->
      let distances = src.cfg.Config.interarrivals in
      if Array.length distances > 0 then begin
        match src.cfg.Config.arrival_mode with
        | Config.Reprogram ->
            src.next_arrival <- 1;
            Event_queue.push t.events ~time:distances.(0) (Arrival src.s_idx);
            t.scheduled_arrivals <- t.scheduled_arrivals + 1
        | Config.Absolute ->
            (* Trace replay: schedule every raise up front at its absolute
               time; coalescing on a pending line is then possible. *)
            let time = ref 0 in
            Array.iter
              (fun d ->
                time := Cycles.( + ) !time d;
                Event_queue.push t.events ~time:!time (Arrival src.s_idx);
                t.scheduled_arrivals <- t.scheduled_arrivals + 1)
              distances;
            src.next_arrival <- Array.length distances
      end)
    sources;
  t

type runner =
  | Hyp_work of hyp_item
  | Interp_work of interposition * Irq_queue.item
  | Part_work of int * Guest.demand

let rec current_runner t =
  if not (Queue.is_empty t.hyp) then Hyp_work (Queue.peek t.hyp)
  else
    match t.interposition with
    | Some ip -> (
        let guest = t.guests.(ip.target) in
        match Irq_queue.peek (Guest.queue guest) with
        | Some item when ip.budget_left > 0 -> Interp_work (ip, item)
        | Some _ | None ->
            (* Queue drained (or budget already zero): return to the slot
               owner. *)
            let reason =
              if ip.budget_left > 0 then `Queue_empty else `Budget_exhausted
            in
            end_interposition t ~reason;
            current_runner t)
    | None ->
        let owner = t.slot_owner in
        let guest = t.guests.(owner) in
        Guest.advance_to guest t.now;
        Part_work (owner, Guest.demand guest)

let segment_end t runner =
  let next_event =
    match Event_queue.peek_time t.events with
    | Some time -> time
    | None -> assert false (* a Boundary event is always scheduled *)
  in
  let candidate =
    match runner with
    | Hyp_work item -> Cycles.( + ) t.now item.remaining
    | Interp_work (ip, item) ->
        Cycles.( + ) t.now (Cycles.min item.Irq_queue.remaining ip.budget_left)
    | Part_work (owner, demand) ->
        let guest = t.guests.(owner) in
        let release_bound =
          match Guest.next_release guest with
          | Some r -> Cycles.min r t.slot_end
          | None -> t.slot_end
        in
        (match demand with
        | Guest.Bottom_handler item ->
            Cycles.min
              (Cycles.( + ) t.now item.Irq_queue.remaining)
              release_bound
        | Guest.Task_job job ->
            Cycles.min (Cycles.( + ) t.now job.Rthv_rtos.Task.remaining) release_bound
        | Guest.Filler | Guest.Idle -> release_bound)
  in
  Cycles.min candidate next_event

(* First cycle ever attributed to this instance's bottom handler: record
   the span timestamp and trace event at the segment start.  [attribute]
   is the first action after [t.now] advances, so the retro-dated start
   time is still >= every previously recorded trace timestamp. *)
let note_bh_start t (item : Irq_queue.item) elapsed =
  if item.Irq_queue.remaining = item.Irq_queue.total then
    match Hashtbl.find_opt t.pending item.Irq_queue.irq with
    | Some p when p.p_bh_start < 0 ->
        let start = Cycles.( - ) t.now elapsed in
        p.p_bh_start <- start;
        trace_event_at t start
          (Hyp_trace.Bottom_handler_start
             { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber })
    | Some _ | None -> ()

let attribute t runner elapsed =
  match runner with
  | Hyp_work item ->
      if not item.started then begin
        item.started <- true;
        item.on_start (Cycles.( - ) t.now elapsed)
      end;
      item.remaining <- Cycles.( - ) item.remaining elapsed;
      if item.steals then steal t elapsed
  | Interp_work (ip, item) ->
      note_bh_start t item elapsed;
      ip.budget_left <- Cycles.( - ) ip.budget_left elapsed;
      steal t elapsed;
      Guest.consume t.guests.(ip.target) ~now:t.now ~elapsed
        (Guest.Bottom_handler item)
  | Part_work (owner, demand) ->
      (match demand with
      | Guest.Bottom_handler item -> note_bh_start t item elapsed
      | Guest.Task_job _ | Guest.Filler | Guest.Idle -> ());
      Guest.consume t.guests.(owner) ~now:t.now ~elapsed demand

let post_attribution t runner =
  (match runner with
  | Hyp_work item ->
      if item.remaining = 0 then begin
        ignore (Queue.pop t.hyp : hyp_item);
        item.on_done ()
      end
  | Interp_work (ip, item) ->
      if item.Irq_queue.remaining = 0 then finalize_completion t item;
      if ip.budget_left = 0 then begin
        match t.interposition with
        | Some active when active == ip ->
            end_interposition t ~reason:`Budget_exhausted
        | Some _ | None -> ()
      end
  | Part_work (_, Guest.Bottom_handler item) ->
      if item.Irq_queue.remaining = 0 then finalize_completion t item
  | Part_work (_, Guest.Task_job job) ->
      if
        job.Rthv_rtos.Task.remaining = 0
        && List.memq job.Rthv_rtos.Task.task t.activation_specs
      then t.live_aperiodic <- t.live_aperiodic - 1
  | Part_work (_, (Guest.Filler | Guest.Idle)) -> ());
  (* Deliver all external events due now, in schedule order.  [drop]
     (not [pop]) keeps the loop allocation-free. *)
  let rec drain () =
    match Event_queue.peek t.events with
    | Some entry when entry.Event_queue.time <= t.now ->
        assert (entry.Event_queue.time = t.now);
        Event_queue.drop t.events;
        Prof.enter t.prof ph_dispatch;
        (match entry.Event_queue.payload with
        | Arrival s_idx -> Sim_route.handle_arrival t s_idx
        | Boundary -> Sim_boundary.handle_boundary t);
        Prof.leave t.prof;
        drain ()
    | Some _ | None -> ()
  in
  drain ()

let step t =
  let runner = current_runner t in
  let seg_end = segment_end t runner in
  assert (seg_end >= t.now);
  let elapsed = Cycles.( - ) seg_end t.now in
  t.now <- seg_end;
  attribute t runner elapsed;
  post_attribution t runner

let quiescent t =
  t.scheduled_arrivals = 0 && t.live_irqs = 0 && t.live_aperiodic = 0
  && Queue.is_empty t.hyp
  && t.interposition = None
  && not t.interposition_pending

let default_horizon = Cycles.of_ms 3_600_000 (* one simulated hour *)

let run ?(horizon = default_horizon) t =
  if not t.finished then begin
    (* Hoist the profiler lookup out of the step loop: every phase site
       below reads [t.prof] (one load, predictable branch when off). *)
    t.prof <- Prof.installed ();
    (match t.trace with
    | Some trace -> Flight_recorder.note_run trace
    | None -> ());
    (try
       Prof.span t.prof ph_run (fun () ->
           while (not (quiescent t)) && t.now < horizon do
             step t
           done)
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore
         (Flight_recorder.dump ~reason:"uncaught_exception"
            ~detail:(Printexc.to_string e) ()
           : string option);
       Printexc.raise_with_backtrace e bt);
    close_slot_accounting t;
    if obs_active () then
      Sink.gauge "rthv_sim_time_us" Labels.empty (Cycles.to_us t.now);
    t.finished <- true;
    match (!audit_hook, t.trace) with
    | Some hook, Some trace -> hook t.config trace
    | _ -> ()
  end

let records t =
  List.sort
    (fun a b -> Stdlib.compare a.Irq_record.irq b.Irq_record.irq)
    t.records

let stats t = Sim_stats.assemble t

let guest t i = t.guests.(i)
let ipc t = t.ipc
let port t name = Ipc.find t.ipc name

let admission t ~source =
  Array.fold_left
    (fun acc src ->
      if src.cfg.Config.name = source then Some src.admission else acc)
    None t.sources

let monitor t ~source =
  match admission t ~source with
  | Some a -> Admission.monitor a
  | None -> None

let now t = t.now
