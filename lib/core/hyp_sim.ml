(* Façade over the policy-core layers: construction ({!Admission},
   {!Slot_plan}, {!Boundary_policy} instances from a {!Config}), the
   event-compressed stepping engines, and the public read API.  Routing
   decisions live in {!Sim_route}, boundary handling in {!Sim_boundary},
   state and accounting in {!Sim_state}, statistics in {!Sim_stats}.

   Two engines share every decision helper and therefore every observable
   (trace records, statistics, telemetry): the reference [Step] engine
   re-resolves the execution context (hypervisor ring / interposition /
   slot owner) on every segment, while the default [Fast_forward] engine
   drains hypervisor bursts inline and keeps the per-segment machinery out
   of the loop.  Both jump segment-to-segment over the packed
   {!Rthv_engine.Event_arena}; neither allocates on the per-IRQ path. *)

module Cycles = Rthv_engine.Cycles
module Event_arena = Rthv_engine.Event_arena
module Fast_forward = Rthv_engine.Fast_forward
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Irq_queue = Rthv_rtos.Irq_queue
module Task = Rthv_rtos.Task
module Platform = Rthv_hw.Platform
module Intc = Rthv_hw.Intc
open Sim_state

type t = Sim_state.t

type stats = Sim_stats.t = {
  completed_irqs : int;
  direct : int;
  interposed : int;
  delayed : int;
  slot_switches : int;
  interposition_switches : int;
  interpositions_started : int;
  boundary_crossings : int;
  bh_boundary_deferrals : int;
  monitor_checks : int;
  admissions : int;
  denials : int;
  coalesced_irqs : int;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  sim_time : Cycles.t;
}

(* Opt-in post-run audit: when a hook is installed, every simulation created
   without an explicit trace buffer gets one attached, and [run] hands the
   configuration plus the recorded trace to the hook once the run finishes.
   The trace-invariant oracle of [Rthv_check] installs itself here so whole
   test suites run audited without touching each call site. *)
let audit_hook : (Config.t -> Hyp_trace.t -> unit) option ref = ref None
let audit_trace_capacity = 1 lsl 20

let set_audit_hook hook = audit_hook := hook
let audit_hook_installed () = Option.is_some !audit_hook

let create ?trace ?(policies = []) ?mode ?(retain = true) config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hyp_sim.create: " ^ msg));
  List.iter
    (fun (name, _) ->
      if
        not
          (List.exists
             (fun (s : Config.source) -> s.Config.name = name)
             config.Config.sources)
      then invalid_arg ("Hyp_sim.create: policy for unknown source " ^ name))
    policies;
  let mode = match mode with Some m -> m | None -> Fast_forward.default () in
  let platform = config.Config.platform in
  let plan = Config.slot_plan config in
  let tdma = Slot_plan.tdma plan in
  let cycle = Slot_plan.cycle_length plan in
  let ipc = Ipc.create () in
  List.iter
    (fun (name, capacity) -> ignore (Ipc.declare ipc ~name ~capacity : Ipc.port))
    config.Config.ports;
  let guests =
    Array.of_list
      (List.map
         (fun (p : Config.partition) ->
           Guest.create ~tasks:p.Config.tasks ~busy_loop:p.Config.busy_loop
             ~ipc ~policy:p.Config.policy ~name:p.Config.pname ())
         config.Config.partitions)
  in
  if not retain then Array.iter (fun g -> Guest.set_retain g false) guests;
  let sources =
    Array.of_list
      (List.mapi
         (fun s_idx (cfg : Config.source) ->
           {
             cfg;
             s_idx;
             admission =
               (match List.assoc_opt cfg.Config.name policies with
               | Some p -> p
               | None -> Admission.of_shaping ~cycle cfg.Config.shaping);
             next_arrival = 0;
           })
         config.Config.sources)
  in
  let intc = Intc.create ~lines:platform.Platform.intc_lines in
  let source_by_line = Array.make platform.Platform.intc_lines None in
  Array.iter
    (fun src -> source_by_line.(src.cfg.Config.line) <- Some src)
    sources;
  let activation_specs =
    Array.to_list sources
    |> List.filter_map (fun src -> src.cfg.Config.activates)
  in
  let n = Array.length guests in
  let _, _, slot_end = Tdma.slot_bounds_at tdma 0 in
  let trace =
    match (trace, !audit_hook) with
    | (Some _ as some), _ -> some
    | None, Some _ -> Some (Hyp_trace.create ~capacity:audit_trace_capacity ())
    | None, None ->
        (* No audit, but the flight recorder wants the last N events of
           every run available for a post-mortem dump. *)
        if Flight_recorder.enabled () then
          Some (Hyp_trace.create ~capacity:(Flight_recorder.capacity ()) ())
        else None
  in
  let hq_cap = 16 in
  let t =
    {
      platform;
      config;
      mode;
      boundary = config.Config.boundary;
      trace;
      prof = Rthv_obs.Prof.disabled;
      tdma;
      ipc;
      guests;
      sources;
      source_by_line;
      intc;
      events = Event_arena.create ();
      hq_kind = Array.make hq_cap K_slot_switch;
      hq_remaining = Array.make hq_cap 0;
      hq_started = Array.make hq_cap false;
      hq_irq = Array.make hq_cap (-1);
      hq_head = 0;
      hq_len = 0;
      pending_by_irq = Array.make 64 dummy_pending;
      c_mon = Platform.monitor_cost platform;
      c_sched = Platform.sched_manip_cost platform;
      c_ctx = Platform.ctx_switch_cost platform;
      now = 0;
      ip_target = -1;
      ip_budget = 0;
      interposition_pending = false;
      retain_records = retain;
      records = [];
      n_completed = 0;
      next_irq_id = 0;
      slot_owner = 0;
      slot_end;
      stolen_in_slot = 0;
      stolen_total = Array.make n 0;
      stolen_slot_max = Array.make n 0;
      activation_specs;
      scheduled_arrivals = 0;
      live_irqs = 0;
      live_aperiodic = 0;
      slot_switches = 0;
      interposition_switches = 0;
      interpositions_started = 0;
      boundary_crossings = 0;
      bh_boundary_deferrals = 0;
      admissions = 0;
      denials = 0;
      n_direct = 0;
      n_interposed = 0;
      n_delayed = 0;
      finished = false;
    }
  in
  Intc.set_handler intc (Sim_route.deliver t);
  Event_arena.push t.events ~time:(Tdma.next_boundary tdma 0) ev_boundary;
  Array.iter
    (fun src ->
      let distances = src.cfg.Config.interarrivals in
      if Array.length distances > 0 then begin
        match src.cfg.Config.arrival_mode with
        | Config.Reprogram ->
            src.next_arrival <- 1;
            Event_arena.push t.events ~time:distances.(0) src.s_idx;
            t.scheduled_arrivals <- t.scheduled_arrivals + 1
        | Config.Absolute ->
            (* Trace replay: schedule every raise up front at its absolute
               time; coalescing on a pending line is then possible. *)
            let time = ref 0 in
            Array.iter
              (fun d ->
                time := Cycles.( + ) !time d;
                Event_arena.push t.events ~time:!time src.s_idx;
                t.scheduled_arrivals <- t.scheduled_arrivals + 1)
              distances;
            src.next_arrival <- Array.length distances
      end)
    sources;
  t

(* First cycle ever attributed to this instance's bottom handler: record
   the span timestamp and trace event at the segment start.  This runs as
   the first action after [t.now] advances, so the retro-dated start time
   is still >= every previously recorded trace timestamp. *)
let note_bh_start t (item : Irq_queue.item) elapsed =
  if item.Irq_queue.remaining = item.Irq_queue.total then begin
    let p = pending_get t item.Irq_queue.irq in
    if p.p_irq = item.Irq_queue.irq && p.p_bh_start < 0 then begin
      let start = Cycles.( - ) t.now elapsed in
      p.p_bh_start <- start;
      if tracing t then
        trace_event_at t start
          (Hyp_trace.Bottom_handler_start
             { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber })
    end
  end

(* Deliver all external events due now, in schedule order. *)
let drain t =
  while Event_arena.head_time t.events <= t.now do
    assert (Event_arena.head_time t.events = t.now);
    let payload = Event_arena.head_payload t.events in
    Event_arena.drop t.events;
    Prof.enter t.prof ph_dispatch;
    if payload = ev_boundary then Sim_boundary.handle_boundary t
    else Sim_route.handle_arrival t payload;
    Prof.leave t.prof
  done

(* One segment of the hypervisor work item at the ring head: run it until
   it finishes or the next external event, whichever comes first. *)
let hyp_item_step t =
  let i = t.hq_head in
  let kind = t.hq_kind.(i) in
  let irq = t.hq_irq.(i) in
  let p = if irq >= 0 then pending_get t irq else dummy_pending in
  let remaining = t.hq_remaining.(i) in
  let seg_end =
    let fin = Cycles.( + ) t.now remaining in
    let ne = Event_arena.head_time t.events in
    if fin < ne then fin else ne
  in
  assert (seg_end >= t.now);
  let elapsed = Cycles.( - ) seg_end t.now in
  t.now <- seg_end;
  if not t.hq_started.(i) then begin
    t.hq_started.(i) <- true;
    Sim_route.hyp_start t kind p (Cycles.( - ) t.now elapsed)
  end;
  let remaining' = Cycles.( - ) remaining elapsed in
  t.hq_remaining.(i) <- remaining';
  if k_steals kind then steal t elapsed;
  if remaining' = 0 then begin
    hyp_pop t;
    Sim_route.hyp_done t kind p
  end;
  drain t

(* The three-way context resolution the reference engine performs per
   segment: hypervisor ring first, then a live interposition, then the
   slot owner. *)
let rec step t =
  if t.hq_len > 0 then hyp_item_step t
  else if t.ip_target >= 0 then interp_step t
  else partition_step t

and interp_step t =
  let guest = t.guests.(t.ip_target) in
  let queue = Guest.queue guest in
  if Irq_queue.is_empty queue || t.ip_budget <= 0 then begin
    (* Queue drained (or budget already zero): return to the slot owner. *)
    let reason =
      if t.ip_budget > 0 then `Queue_empty else `Budget_exhausted
    in
    end_interposition t ~reason;
    step t
  end
  else begin
    let item = Irq_queue.head queue in
    let seg_end =
      let work = Cycles.min item.Irq_queue.remaining t.ip_budget in
      let fin = Cycles.( + ) t.now work in
      let ne = Event_arena.head_time t.events in
      if fin < ne then fin else ne
    in
    assert (seg_end >= t.now);
    let elapsed = Cycles.( - ) seg_end t.now in
    t.now <- seg_end;
    note_bh_start t item elapsed;
    t.ip_budget <- Cycles.( - ) t.ip_budget elapsed;
    steal t elapsed;
    Guest.consume_bottom guest ~elapsed item;
    if item.Irq_queue.remaining = 0 then finalize_completion t item;
    if t.ip_budget = 0 && t.ip_target >= 0 then
      end_interposition t ~reason:`Budget_exhausted;
    drain t
  end

and partition_step t =
  let owner = t.slot_owner in
  let guest = t.guests.(owner) in
  let release_bound =
    if not (Guest.has_tasks guest) then t.slot_end
    else begin
      Guest.advance_to guest t.now;
      match Guest.next_release guest with
      | Some r -> Cycles.min r t.slot_end
      | None -> t.slot_end
    end
  in
  let ne = Event_arena.head_time t.events in
  let queue = Guest.queue guest in
  if not (Irq_queue.is_empty queue) then begin
    let item = Irq_queue.head queue in
    let seg_end =
      let fin = Cycles.( + ) t.now item.Irq_queue.remaining in
      Cycles.min (Cycles.min fin release_bound) ne
    in
    assert (seg_end >= t.now);
    let elapsed = Cycles.( - ) seg_end t.now in
    t.now <- seg_end;
    note_bh_start t item elapsed;
    Guest.consume_bottom guest ~elapsed item;
    if item.Irq_queue.remaining = 0 then finalize_completion t item;
    drain t
  end
  else
    match Guest.pick_ready guest with
    | Some job ->
        let seg_end =
          let fin = Cycles.( + ) t.now job.Task.remaining in
          Cycles.min (Cycles.min fin release_bound) ne
        in
        assert (seg_end >= t.now);
        let elapsed = Cycles.( - ) seg_end t.now in
        t.now <- seg_end;
        Guest.consume_task guest ~now:t.now ~elapsed job;
        if
          job.Task.remaining = 0
          && List.memq job.Task.task t.activation_specs
        then t.live_aperiodic <- t.live_aperiodic - 1;
        drain t
    | None ->
        let seg_end = Cycles.min release_bound ne in
        assert (seg_end >= t.now);
        let elapsed = Cycles.( - ) seg_end t.now in
        t.now <- seg_end;
        if Guest.busy_loop guest then Guest.consume_filler guest ~elapsed
        else Guest.consume_idle guest ~elapsed;
        drain t

let quiescent t =
  t.scheduled_arrivals = 0 && t.live_irqs = 0 && t.live_aperiodic = 0
  && hyp_is_empty t && t.ip_target < 0
  && not t.interposition_pending

let default_horizon = Cycles.of_ms 3_600_000 (* one simulated hour *)

(* Reference engine: one full context resolution per segment. *)
let run_step t horizon =
  while (not (quiescent t)) && t.now < horizon do
    step t
  done

(* Fast-forward engine: identical observable behaviour (same helpers, same
   event order), but hypervisor bursts drain inline — nothing can preempt
   hypervisor-context work, so while the ring is non-empty the next runner
   is already known and the outer quiescence/context checks are skipped. *)
let run_fast t horizon =
  while (not (quiescent t)) && t.now < horizon do
    if t.hq_len > 0 then
      while t.hq_len > 0 && t.now < horizon do
        hyp_item_step t
      done
    else if t.ip_target >= 0 then interp_step t
    else partition_step t
  done

let run ?(horizon = default_horizon) t =
  if not t.finished then begin
    (* Hoist the profiler lookup out of the step loop: every phase site
       below reads [t.prof] (one load, predictable branch when off). *)
    t.prof <- Prof.installed ();
    (match t.trace with
    | Some trace -> Flight_recorder.note_run trace
    | None -> ());
    (try
       Prof.span t.prof ph_run (fun () ->
           match t.mode with
           | Fast_forward.Step -> run_step t horizon
           | Fast_forward.Fast_forward -> run_fast t horizon)
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore
         (Flight_recorder.dump ~reason:"uncaught_exception"
            ~detail:(Printexc.to_string e) ()
           : string option);
       Printexc.raise_with_backtrace e bt);
    close_slot_accounting t;
    if obs_active () then
      Sink.gauge "rthv_sim_time_us" Labels.empty (Cycles.to_us t.now);
    t.finished <- true;
    match (!audit_hook, t.trace) with
    | Some hook, Some trace -> hook t.config trace
    | _ -> ()
  end

let records t =
  List.sort
    (fun a b -> Stdlib.compare a.Irq_record.irq b.Irq_record.irq)
    t.records

let stats t = Sim_stats.assemble t

let mode t = t.mode
let guest t i = t.guests.(i)
let ipc t = t.ipc
let port t name = Ipc.find t.ipc name

let admission t ~source =
  Array.fold_left
    (fun acc src ->
      if src.cfg.Config.name = source then Some src.admission else acc)
    None t.sources

let monitor t ~source =
  match admission t ~source with
  | Some a -> Admission.monitor a
  | None -> None

let now t = t.now
