module Cycles = Rthv_engine.Cycles
module Event_queue = Rthv_engine.Event_queue
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Irq_queue = Rthv_rtos.Irq_queue
module Platform = Rthv_hw.Platform
module Intc = Rthv_hw.Intc

type stats = {
  completed_irqs : int;
  direct : int;
  interposed : int;
  delayed : int;
  slot_switches : int;
  interposition_switches : int;
  interpositions_started : int;
  boundary_crossings : int;
  bh_boundary_deferrals : int;
  monitor_checks : int;
  admissions : int;
  denials : int;
  coalesced_irqs : int;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  sim_time : Cycles.t;
}

(* Hypervisor-context work item: highest priority, FIFO, non-preemptible. *)
type hyp_item = {
  label : string;
  steals : bool;  (* counts towards eq.-(14) interference on the slot owner *)
  mutable remaining : Cycles.t;
  mutable started : bool;
  on_start : Cycles.t -> unit;
  on_done : unit -> unit;
}

type interposition = { target : int; mutable budget_left : Cycles.t }

type shaper =
  | No_shaper
  | Delta_monitor of Monitor.t
  | Bucket of Throttle.t

type runtime_source = {
  cfg : Config.source;
  s_idx : int;
  shaper : shaper;
  mutable next_arrival : int;
}

type pending_irq = {
  p_irq : int;
  p_source : runtime_source;
  p_arrival : Cycles.t;
  mutable p_top_start : Cycles.t;
  mutable p_top_end : Cycles.t;
  mutable p_decision : Cycles.t;  (* classification fixed; -1 until then *)
  mutable p_bh_start : Cycles.t;  (* first bottom-half cycle; -1 until then *)
  mutable p_class : Irq_record.classification;
}

type event = Arrival of int | Boundary

type t = {
  platform : Platform.t;
  config : Config.t;
  finish_bh : bool;
  trace : Hyp_trace.t option;
  tdma : Tdma.t;
  ipc : Ipc.t;
  guests : Guest.t array;
  sources : runtime_source array;
  source_by_line : runtime_source option array;
  intc : Intc.t;
  events : event Event_queue.t;
  hyp : hyp_item Queue.t;
  pending : (int, pending_irq) Hashtbl.t;
  c_mon : Cycles.t;
  c_sched : Cycles.t;
  c_ctx : Cycles.t;
  mutable now : Cycles.t;
  mutable interposition : interposition option;
  mutable interposition_pending : bool;
  mutable records : Irq_record.t list;  (* newest first *)
  mutable next_irq_id : int;
  mutable slot_owner : int;
  mutable slot_end : Cycles.t;
  mutable stolen_in_slot : Cycles.t;
  stolen_total : Cycles.t array;
  stolen_slot_max : Cycles.t array;
  activation_specs : Rthv_rtos.Task.spec list;
  mutable scheduled_arrivals : int;
  mutable live_irqs : int;
  mutable live_aperiodic : int;
  mutable slot_switches : int;
  mutable interposition_switches : int;
  mutable interpositions_started : int;
  mutable boundary_crossings : int;
  mutable bh_boundary_deferrals : int;
  mutable admissions : int;
  mutable denials : int;
  mutable n_direct : int;
  mutable n_interposed : int;
  mutable n_delayed : int;
  mutable finished : bool;
}

(* Opt-in post-run audit: when a hook is installed, every simulation created
   without an explicit trace buffer gets one attached, and [run] hands the
   configuration plus the recorded trace to the hook once the run finishes.
   The trace-invariant oracle of [Rthv_check] installs itself here so whole
   test suites run audited without touching each call site. *)
let audit_hook : (Config.t -> Hyp_trace.t -> unit) option ref = ref None
let audit_trace_capacity = 1 lsl 20

let set_audit_hook hook = audit_hook := hook
let audit_hook_installed () = Option.is_some !audit_hook

let shaper_of_shaping = function
  | Config.No_shaping -> No_shaper
  | Config.Fixed_monitor fn -> Delta_monitor (Monitor.fixed fn)
  | Config.Self_learning { l; learn_events; bound } ->
      Delta_monitor (Monitor.self_learning ~l ~learn_events ?bound ())
  | Config.Token_bucket { capacity; refill } ->
      Bucket (Throttle.create ~capacity ~refill)

let shaper_check shaper ts =
  match shaper with
  | No_shaper -> false
  | Delta_monitor m -> Monitor.check m ts
  | Bucket b -> Throttle.check b ts

let shaper_admit shaper ts =
  match shaper with
  | No_shaper -> ()
  | Delta_monitor m -> Monitor.admit m ts
  | Bucket b -> Throttle.admit b ts

let enqueue_hyp t ~label ~steals ~cost ~on_done =
  if cost < 0 then invalid_arg "Hyp_sim: negative hypervisor work";
  Queue.push
    {
      label;
      steals;
      remaining = cost;
      started = false;
      on_start = (fun _ -> ());
      on_done;
    }
    t.hyp

let enqueue_hyp_with_start t ~label ~steals ~cost ~on_start ~on_done =
  Queue.push
    { label; steals; remaining = cost; started = false; on_start; on_done }
    t.hyp

let trace_event_at t time event =
  match t.trace with
  | Some trace -> Hyp_trace.record trace ~time event
  | None -> ()

let trace_event t event = trace_event_at t t.now event

(* --- telemetry ----------------------------------------------------------
   Every site is guarded by [Sink.active] so the default no-op sink costs a
   single flag read — no labels are built, no calls dispatched.  Metric
   names map onto the paper's quantities: [rthv_irq_latency_us] is the
   simulated counterpart of the eq. (11)/(16) latency bounds,
   [rthv_stolen_slot_us] the per-slot interference eq. (14) budgets. *)
module Sink = Rthv_obs.Sink
module Labels = Rthv_obs.Labels
module Span = Rthv_obs.Span

let obs_active = Sink.active

let obs_count name = Sink.incr name Labels.empty 1

let obs_irq_completed t p =
  let source = p.p_source.cfg.Config.name in
  let cls = Irq_record.classification_name p.p_class in
  Sink.incr "rthv_irq_completed_total"
    (Labels.v
       [
         ("source", source);
         ("class", cls);
         ("partition", string_of_int p.p_source.cfg.Config.subscriber);
       ])
    1;
  Sink.observe "rthv_irq_latency_us"
    (Labels.v [ ("source", source); ("class", cls) ])
    (Cycles.to_us (Cycles.( - ) t.now p.p_arrival))

(* One causal span per completed IRQ instance, timestamps in us.  The
   decision point and bottom-half start are clamped for robustness, but
   with the capture sites below both are always set before completion. *)
let obs_span t p =
  let us = Cycles.to_us in
  let decision = if p.p_decision < 0 then p.p_top_end else p.p_decision in
  let bh_start = if p.p_bh_start < 0 then t.now else p.p_bh_start in
  Sink.span
    {
      Span.sp_irq = p.p_irq;
      sp_line = p.p_source.cfg.Config.line;
      sp_source = p.p_source.cfg.Config.name;
      sp_class = Irq_record.classification_name p.p_class;
      sp_arrival = us p.p_arrival;
      sp_top_start = us p.p_top_start;
      sp_top_end = us p.p_top_end;
      sp_decision = us decision;
      sp_bh_start = us bh_start;
      sp_completion = us t.now;
    }

let obs_monitor_decision src verdict =
  Sink.incr "rthv_monitor_decisions_total"
    (Labels.v
       [
         ("source", src.cfg.Config.name);
         ( "verdict",
           match verdict with
           | `Admitted -> "admitted"
           | `Denied -> "denied"
           | `Fallback_direct -> "fallback_direct" );
       ])
    1

let steal t elapsed =
  t.stolen_in_slot <- Cycles.( + ) t.stolen_in_slot elapsed

let close_slot_accounting t =
  let owner = t.slot_owner in
  t.stolen_total.(owner) <- Cycles.( + ) t.stolen_total.(owner) t.stolen_in_slot;
  if t.stolen_in_slot > t.stolen_slot_max.(owner) then
    t.stolen_slot_max.(owner) <- t.stolen_in_slot;
  if obs_active () then
    Sink.observe "rthv_stolen_slot_us"
      (Labels.of_int "partition" owner)
      (Cycles.to_us t.stolen_in_slot);
  t.stolen_in_slot <- 0

let finalize_completion t (item : Irq_queue.item) =
  match Hashtbl.find_opt t.pending item.Irq_queue.irq with
  | None ->
      (* Completion must be unique: items are dropped from the queue the
         moment their work reaches zero. *)
      assert false
  | Some p ->
      let record =
        {
          Irq_record.irq = p.p_irq;
          source = p.p_source.cfg.Config.name;
          line = p.p_source.cfg.Config.line;
          arrival = p.p_arrival;
          top_start = p.p_top_start;
          top_end = p.p_top_end;
          classification = p.p_class;
          completion = t.now;
        }
      in
      t.records <- record :: t.records;
      Hashtbl.remove t.pending p.p_irq;
      t.live_irqs <- t.live_irqs - 1;
      trace_event t
        (Hyp_trace.Bottom_handler_done
           { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber });
      if obs_active () then begin
        obs_irq_completed t p;
        obs_span t p
      end;
      (* uC/OS pattern: the bottom handler posts to an application task. *)
      match p.p_source.cfg.Config.activates with
      | Some spec ->
          t.live_aperiodic <- t.live_aperiodic + 1;
          Guest.release_aperiodic
            t.guests.(p.p_source.cfg.Config.subscriber)
            ~spec ~now:t.now
      | None -> ()

let end_interposition t ~reason =
  (match t.interposition with
  | Some ip ->
      trace_event t (Hyp_trace.Interposition_end { target = ip.target; reason })
  | None -> ());
  t.interposition <- None;
  enqueue_hyp t ~label:"ctx_back" ~steals:true ~cost:t.c_ctx ~on_done:(fun () ->
      t.interposition_switches <- t.interposition_switches + 1;
      t.interposition_pending <- false)

let schedule_next_arrival t src =
  let distances = src.cfg.Config.interarrivals in
  if src.cfg.Config.arrival_mode = Config.Reprogram
     && src.next_arrival < Array.length distances
  then begin
    let d = distances.(src.next_arrival) in
    src.next_arrival <- src.next_arrival + 1;
    Event_queue.push t.events ~time:(Cycles.( + ) t.now d) (Arrival src.s_idx);
    t.scheduled_arrivals <- t.scheduled_arrivals + 1
  end

(* Decision point of the modified top handler (Figure 4b), reached after the
   monitoring function ran: admit the interposition or fall back to delayed
   handling. *)
let monitor_done t src p shaper =
  p.p_decision <- t.now;
  let conforms = shaper_check shaper p.p_arrival in
  let subscriber = src.cfg.Config.subscriber in
  let decision verdict =
    trace_event t
      (Hyp_trace.Monitor_decision
         {
           irq = p.p_irq;
           line = src.cfg.Config.line;
           arrival = p.p_arrival;
           verdict;
         });
    if obs_active () then obs_monitor_decision src verdict
  in
  if t.slot_owner = subscriber then begin
    (* The subscriber's slot opened between the arrival and the monitoring
       decision: the queued event is processed right away in its own slot —
       direct handling, no interposition machinery needed. *)
    decision `Fallback_direct;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else if conforms && not t.interposition_pending then begin
    shaper_admit shaper p.p_arrival;
    t.admissions <- t.admissions + 1;
    p.p_class <- Irq_record.Interposed;
    t.n_interposed <- t.n_interposed + 1;
    t.interposition_pending <- true;
    decision `Admitted;
    enqueue_hyp t ~label:"sched_manip" ~steals:true ~cost:t.c_sched
      ~on_done:(fun () ->
        enqueue_hyp t ~label:"ctx_to" ~steals:true ~cost:t.c_ctx
          ~on_done:(fun () ->
            t.interposition_switches <- t.interposition_switches + 1;
            t.interpositions_started <- t.interpositions_started + 1;
            trace_event t
              (Hyp_trace.Interposition_start
                 { irq = p.p_irq; target = subscriber });
            if obs_active () then
              Sink.incr "rthv_interpositions_total"
                (Labels.of_int "partition" subscriber)
                1;
            t.interposition <-
              Some { target = subscriber; budget_left = src.cfg.Config.c_bh }))
  end
  else begin
    t.denials <- t.denials + 1;
    p.p_class <- Irq_record.Delayed;
    t.n_delayed <- t.n_delayed + 1;
    decision `Denied
  end

let top_handler_done t src p =
  p.p_top_end <- t.now;
  trace_event t
    (Hyp_trace.Top_handler_run { irq = p.p_irq; line = src.cfg.Config.line });
  Intc.ack t.intc src.cfg.Config.line;
  (* The paper's experiment setup: the trigger timer is reprogrammed with the
     next pre-generated interarrival from within the top handler. *)
  schedule_next_arrival t src;
  (match src.shaper with
  | Delta_monitor m -> Monitor.note_arrival m p.p_arrival
  | Bucket _ | No_shaper -> ());
  let subscriber = src.cfg.Config.subscriber in
  let item =
    Irq_queue.make_item ~irq:p.p_irq ~line:src.cfg.Config.line
      ~arrival:p.p_arrival ~work:src.cfg.Config.c_bh
  in
  Irq_queue.push (Guest.queue t.guests.(subscriber)) item;
  if t.slot_owner = subscriber then begin
    p.p_decision <- t.now;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else
    match src.shaper with
    | No_shaper ->
        p.p_decision <- t.now;
        p.p_class <- Irq_record.Delayed;
        t.n_delayed <- t.n_delayed + 1
    | (Delta_monitor _ | Bucket _) as shaper ->
        enqueue_hyp t ~label:"monitor" ~steals:false ~cost:t.c_mon
          ~on_done:(fun () -> monitor_done t src p shaper)

(* Interrupt-controller delivery: the hardware IRQ preempts partition code
   and enters the hypervisor's top handler. *)
let deliver t line =
  match t.source_by_line.(line) with
  | None -> ()
  | Some src ->
      let irq = t.next_irq_id in
      t.next_irq_id <- t.next_irq_id + 1;
      t.live_irqs <- t.live_irqs + 1;
      let p =
        {
          p_irq = irq;
          p_source = src;
          p_arrival = t.now;
          p_top_start = t.now;
          p_top_end = t.now;
          p_class = Irq_record.Delayed;
          p_decision = -1;
          p_bh_start = -1;
        }
      in
      Hashtbl.add t.pending irq p;
      trace_event t (Hyp_trace.Irq_raised { irq; line = src.cfg.Config.line });
      enqueue_hyp_with_start t ~label:"top_handler" ~steals:false
        ~cost:src.cfg.Config.c_th
        ~on_start:(fun time -> p.p_top_start <- time)
        ~on_done:(fun () -> top_handler_done t src p)

let handle_arrival t s_idx =
  t.scheduled_arrivals <- t.scheduled_arrivals - 1;
  let src = t.sources.(s_idx) in
  let line = src.cfg.Config.line in
  if Intc.is_pending t.intc line then begin
    (* The non-counting pending flag is already set: this raise coalesces
       into the earlier one and is lost.  Intc counts it; the trace makes
       it visible on the timeline. *)
    trace_event t (Hyp_trace.Irq_coalesced { line });
    if obs_active () then
      Sink.incr "rthv_irq_coalesced_total" (Labels.of_int "line" line) 1
  end;
  Intc.raise_line t.intc line

(* Defer the partition switch while the slot owner is in the middle of a
   bottom handler: let it finish, bounded by the handler's remaining budget.
   Returns the new deferred boundary time, or None to switch now. *)
let boundary_deferral t =
  if not t.finish_bh then None
  else if Option.is_some t.interposition then None
  else
    match Irq_queue.peek (Guest.queue t.guests.(t.slot_owner)) with
    | Some item
      when item.Irq_queue.remaining > 0
           && item.Irq_queue.remaining < item.Irq_queue.total ->
        Some (Cycles.( + ) t.now item.Irq_queue.remaining)
    | Some _ | None -> None

let handle_boundary t =
  match boundary_deferral t with
  | Some deferred ->
      t.bh_boundary_deferrals <- t.bh_boundary_deferrals + 1;
      trace_event t
        (Hyp_trace.Boundary_deferred { owner = t.slot_owner; until = deferred });
      if obs_active () then obs_count "rthv_bh_boundary_deferrals_total";
      (* Keep the old owner in place; extend its slot to the deferred check
         so execution can proceed, and re-examine then. *)
      t.slot_end <- deferred;
      Event_queue.push t.events ~time:deferred Boundary
  | None ->
      (* A running interposition is NOT cut at the boundary: its budget
         bounds the overrun by C_BH, so worst-case latency of conforming
         interrupts stays independent of the TDMA cycle (Section 5's
         claim).  The spill is charged to the incoming slot's owner as
         stolen time. *)
      (match t.interposition with
      | Some ip ->
          t.boundary_crossings <- t.boundary_crossings + 1;
          trace_event t
            (Hyp_trace.Interposition_crossed_boundary { target = ip.target });
          if obs_active () then obs_count "rthv_boundary_crossings_total"
      | None -> ());
      close_slot_accounting t;
      let previous_owner = t.slot_owner in
      let owner, _slot_start, slot_end = Tdma.slot_bounds_at t.tdma t.now in
      trace_event t
        (Hyp_trace.Slot_switch
           { from_partition = previous_owner; to_partition = owner });
      if obs_active () then obs_count "rthv_slot_switches_total";
      t.slot_owner <- owner;
      t.slot_end <- slot_end;
      enqueue_hyp t ~label:"slot_switch" ~steals:false ~cost:t.c_ctx
        ~on_done:(fun () -> t.slot_switches <- t.slot_switches + 1);
      Event_queue.push t.events ~time:(Tdma.next_boundary t.tdma t.now)
        Boundary

let create ?trace config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hyp_sim.create: " ^ msg));
  let platform = config.Config.platform in
  let tdma = Config.tdma config in
  let ipc = Ipc.create () in
  List.iter
    (fun (name, capacity) -> ignore (Ipc.declare ipc ~name ~capacity : Ipc.port))
    config.Config.ports;
  let guests =
    Array.of_list
      (List.map
         (fun (p : Config.partition) ->
           Guest.create ~tasks:p.Config.tasks ~busy_loop:p.Config.busy_loop
             ~ipc ~policy:p.Config.policy ~name:p.Config.pname ())
         config.Config.partitions)
  in
  let sources =
    Array.of_list
      (List.mapi
         (fun s_idx (cfg : Config.source) ->
           {
             cfg;
             s_idx;
             shaper = shaper_of_shaping cfg.Config.shaping;
             next_arrival = 0;
           })
         config.Config.sources)
  in
  let intc = Intc.create ~lines:platform.Platform.intc_lines in
  let source_by_line = Array.make platform.Platform.intc_lines None in
  Array.iter
    (fun src -> source_by_line.(src.cfg.Config.line) <- Some src)
    sources;
  let activation_specs =
    Array.to_list sources
    |> List.filter_map (fun src -> src.cfg.Config.activates)
  in
  let n = Array.length guests in
  let _, _, slot_end = Tdma.slot_bounds_at tdma 0 in
  let trace =
    match (trace, !audit_hook) with
    | (Some _ as some), _ -> some
    | None, Some _ -> Some (Hyp_trace.create ~capacity:audit_trace_capacity ())
    | None, None -> None
  in
  let t =
    {
      platform;
      config;
      finish_bh = config.Config.finish_bh_at_boundary;
      trace;
      tdma;
      ipc;
      guests;
      sources;
      source_by_line;
      intc;
      events = Event_queue.create ();
      hyp = Queue.create ();
      pending = Hashtbl.create 64;
      c_mon = Platform.monitor_cost platform;
      c_sched = Platform.sched_manip_cost platform;
      c_ctx = Platform.ctx_switch_cost platform;
      now = 0;
      interposition = None;
      interposition_pending = false;
      records = [];
      next_irq_id = 0;
      slot_owner = 0;
      slot_end;
      stolen_in_slot = 0;
      stolen_total = Array.make n 0;
      stolen_slot_max = Array.make n 0;
      activation_specs;
      scheduled_arrivals = 0;
      live_irqs = 0;
      live_aperiodic = 0;
      slot_switches = 0;
      interposition_switches = 0;
      interpositions_started = 0;
      boundary_crossings = 0;
      bh_boundary_deferrals = 0;
      admissions = 0;
      denials = 0;
      n_direct = 0;
      n_interposed = 0;
      n_delayed = 0;
      finished = false;
    }
  in
  Intc.set_handler intc (deliver t);
  Event_queue.push t.events ~time:(Tdma.next_boundary tdma 0) Boundary;
  Array.iter
    (fun src ->
      let distances = src.cfg.Config.interarrivals in
      if Array.length distances > 0 then begin
        match src.cfg.Config.arrival_mode with
        | Config.Reprogram ->
            src.next_arrival <- 1;
            Event_queue.push t.events ~time:distances.(0) (Arrival src.s_idx);
            t.scheduled_arrivals <- t.scheduled_arrivals + 1
        | Config.Absolute ->
            (* Trace replay: schedule every raise up front at its absolute
               time; coalescing on a pending line is then possible. *)
            let time = ref 0 in
            Array.iter
              (fun d ->
                time := Cycles.( + ) !time d;
                Event_queue.push t.events ~time:!time (Arrival src.s_idx);
                t.scheduled_arrivals <- t.scheduled_arrivals + 1)
              distances;
            src.next_arrival <- Array.length distances
      end)
    sources;
  t

type runner =
  | Hyp_work of hyp_item
  | Interp_work of interposition * Irq_queue.item
  | Part_work of int * Guest.demand

let rec current_runner t =
  if not (Queue.is_empty t.hyp) then Hyp_work (Queue.peek t.hyp)
  else
    match t.interposition with
    | Some ip -> (
        let guest = t.guests.(ip.target) in
        match Irq_queue.peek (Guest.queue guest) with
        | Some item when ip.budget_left > 0 -> Interp_work (ip, item)
        | Some _ | None ->
            (* Queue drained (or budget already zero): return to the slot
               owner. *)
            let reason =
              if ip.budget_left > 0 then `Queue_empty else `Budget_exhausted
            in
            end_interposition t ~reason;
            current_runner t)
    | None ->
        let owner = t.slot_owner in
        let guest = t.guests.(owner) in
        Guest.advance_to guest t.now;
        Part_work (owner, Guest.demand guest)

let segment_end t runner =
  let next_event =
    match Event_queue.peek_time t.events with
    | Some time -> time
    | None -> assert false (* a Boundary event is always scheduled *)
  in
  let candidate =
    match runner with
    | Hyp_work item -> Cycles.( + ) t.now item.remaining
    | Interp_work (ip, item) ->
        Cycles.( + ) t.now (Cycles.min item.Irq_queue.remaining ip.budget_left)
    | Part_work (owner, demand) ->
        let guest = t.guests.(owner) in
        let release_bound =
          match Guest.next_release guest with
          | Some r -> Cycles.min r t.slot_end
          | None -> t.slot_end
        in
        (match demand with
        | Guest.Bottom_handler item ->
            Cycles.min
              (Cycles.( + ) t.now item.Irq_queue.remaining)
              release_bound
        | Guest.Task_job job ->
            Cycles.min (Cycles.( + ) t.now job.Rthv_rtos.Task.remaining) release_bound
        | Guest.Filler | Guest.Idle -> release_bound)
  in
  Cycles.min candidate next_event

(* First cycle ever attributed to this instance's bottom handler: record
   the span timestamp and trace event at the segment start.  [attribute]
   is the first action after [t.now] advances, so the retro-dated start
   time is still >= every previously recorded trace timestamp. *)
let note_bh_start t (item : Irq_queue.item) elapsed =
  if item.Irq_queue.remaining = item.Irq_queue.total then
    match Hashtbl.find_opt t.pending item.Irq_queue.irq with
    | Some p when p.p_bh_start < 0 ->
        let start = Cycles.( - ) t.now elapsed in
        p.p_bh_start <- start;
        trace_event_at t start
          (Hyp_trace.Bottom_handler_start
             { irq = p.p_irq; partition = p.p_source.cfg.Config.subscriber })
    | Some _ | None -> ()

let attribute t runner elapsed =
  match runner with
  | Hyp_work item ->
      if not item.started then begin
        item.started <- true;
        item.on_start (Cycles.( - ) t.now elapsed)
      end;
      item.remaining <- Cycles.( - ) item.remaining elapsed;
      if item.steals then steal t elapsed
  | Interp_work (ip, item) ->
      note_bh_start t item elapsed;
      ip.budget_left <- Cycles.( - ) ip.budget_left elapsed;
      steal t elapsed;
      Guest.consume t.guests.(ip.target) ~now:t.now ~elapsed
        (Guest.Bottom_handler item)
  | Part_work (owner, demand) ->
      (match demand with
      | Guest.Bottom_handler item -> note_bh_start t item elapsed
      | Guest.Task_job _ | Guest.Filler | Guest.Idle -> ());
      Guest.consume t.guests.(owner) ~now:t.now ~elapsed demand

let post_attribution t runner =
  (match runner with
  | Hyp_work item ->
      if item.remaining = 0 then begin
        ignore (Queue.pop t.hyp : hyp_item);
        item.on_done ()
      end
  | Interp_work (ip, item) ->
      if item.Irq_queue.remaining = 0 then finalize_completion t item;
      if ip.budget_left = 0 then begin
        match t.interposition with
        | Some active when active == ip ->
            end_interposition t ~reason:`Budget_exhausted
        | Some _ | None -> ()
      end
  | Part_work (_, Guest.Bottom_handler item) ->
      if item.Irq_queue.remaining = 0 then finalize_completion t item
  | Part_work (_, Guest.Task_job job) ->
      if
        job.Rthv_rtos.Task.remaining = 0
        && List.memq job.Rthv_rtos.Task.task t.activation_specs
      then t.live_aperiodic <- t.live_aperiodic - 1
  | Part_work (_, (Guest.Filler | Guest.Idle)) -> ());
  (* Deliver all external events due now, in schedule order. *)
  let rec drain () =
    match Event_queue.peek t.events with
    | Some entry when entry.Event_queue.time <= t.now ->
        assert (entry.Event_queue.time = t.now);
        ignore (Event_queue.pop t.events : event Event_queue.entry option);
        (match entry.Event_queue.payload with
        | Arrival s_idx -> handle_arrival t s_idx
        | Boundary -> handle_boundary t);
        drain ()
    | Some _ | None -> ()
  in
  drain ()

let step t =
  let runner = current_runner t in
  let seg_end = segment_end t runner in
  assert (seg_end >= t.now);
  let elapsed = Cycles.( - ) seg_end t.now in
  t.now <- seg_end;
  attribute t runner elapsed;
  post_attribution t runner

let quiescent t =
  t.scheduled_arrivals = 0 && t.live_irqs = 0 && t.live_aperiodic = 0
  && Queue.is_empty t.hyp
  && t.interposition = None
  && not t.interposition_pending

let default_horizon = Cycles.of_ms 3_600_000 (* one simulated hour *)

let run ?(horizon = default_horizon) t =
  if not t.finished then begin
    while (not (quiescent t)) && t.now < horizon do
      step t
    done;
    close_slot_accounting t;
    if obs_active () then
      Sink.gauge "rthv_sim_time_us" Labels.empty (Cycles.to_us t.now);
    t.finished <- true;
    match (!audit_hook, t.trace) with
    | Some hook, Some trace -> hook t.config trace
    | _ -> ()
  end

let records t =
  List.sort
    (fun a b -> Stdlib.compare a.Irq_record.irq b.Irq_record.irq)
    t.records

let stats t =
  let monitor_checks =
    Array.fold_left
      (fun acc src ->
        match src.shaper with
        | Delta_monitor m -> acc + Monitor.checked_count m
        | Bucket b -> acc + Throttle.checked_count b
        | No_shaper -> acc)
      0 t.sources
  in
  {
    completed_irqs = List.length t.records;
    direct = t.n_direct;
    interposed = t.n_interposed;
    delayed = t.n_delayed;
    slot_switches = t.slot_switches;
    interposition_switches = t.interposition_switches;
    interpositions_started = t.interpositions_started;
    boundary_crossings = t.boundary_crossings;
    bh_boundary_deferrals = t.bh_boundary_deferrals;
    monitor_checks;
    admissions = t.admissions;
    denials = t.denials;
    coalesced_irqs = (Intc.stats t.intc).Intc.coalesced;
    stolen_total = Array.copy t.stolen_total;
    stolen_slot_max = Array.copy t.stolen_slot_max;
    sim_time = t.now;
  }

let guest t i = t.guests.(i)
let ipc t = t.ipc
let port t name = Ipc.find t.ipc name

let monitor t ~source =
  Array.fold_left
    (fun acc src ->
      if src.cfg.Config.name = source then
        match src.shaper with
        | Delta_monitor m -> Some m
        | Bucket _ | No_shaper -> None
      else acc)
    None t.sources

let now t = t.now
