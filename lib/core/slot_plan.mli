(** Slot-schedule plans: how per-partition slot lengths are produced.

    Generalizes the static round-robin {!Tdma} schedule: a plan describes
    the slot lengths, and {!tdma} compiles it to the static table the
    simulator's hot path runs on — so every plan pays exactly the same
    per-cycle cost as the paper's static schedule.  Two implementations:

    - {b static}: the paper's schedule, slot lengths given directly;
    - {b weighted}: a fixed TDMA cycle length apportioned over integer
      weights by the largest-remainder method (deterministic, remainder
      ties to the lowest index), with every partition guaranteed at least
      one cycle. *)

type t

val static : Rthv_engine.Cycles.t array -> t
(** Slot lengths in cycle order.  @raise Invalid_argument if empty or any
    slot is non-positive. *)

val weighted : cycle:Rthv_engine.Cycles.t -> weights:int array -> t
(** Apportion [cycle] over [weights].  @raise Invalid_argument if the
    weights are empty or non-positive, or [cycle] is shorter than one cycle
    per partition. *)

val slots : t -> Rthv_engine.Cycles.t array
(** The compiled per-partition slot lengths.  For a weighted plan these sum
    to exactly the requested cycle and every entry is positive. *)

val partitions : t -> int

val cycle_length : t -> Rthv_engine.Cycles.t

val tdma : t -> Tdma.t
(** Compile to the static schedule the simulator executes. *)

val pp : Format.formatter -> t -> unit
