(** Facade for the real-time hypervisor reproduction.

    [Rthv_core.Rthv] re-exports the public surface so applications can write
    [module R = Rthv_core.Rthv] and reach every piece through one name:

    - {!Tdma} and {!Slot_plan}: the partition schedule and its plans;
    - {!Monitor} and {!Delta_learner}: the delta^- shaping mechanism;
    - {!Admission} and {!Boundary_policy}: the pluggable policy layers;
    - {!Config}, {!Hyp_sim}, {!Irq_record}: building and running systems;
    - the substrate libraries are re-exported under their short names. *)

module Cycles = Rthv_engine.Cycles
module Prng = Rthv_engine.Prng
module Platform = Rthv_hw.Platform
module Guest = Rthv_rtos.Guest
module Ipc = Rthv_rtos.Ipc
module Task = Rthv_rtos.Task
module Arrival_curve = Rthv_analysis.Arrival_curve
module Distance_fn = Rthv_analysis.Distance_fn
module Busy_window = Rthv_analysis.Busy_window
module Irq_latency = Rthv_analysis.Irq_latency
module Independence = Rthv_analysis.Independence
module Guest_sched = Rthv_analysis.Guest_sched
module Edf_sched = Rthv_analysis.Edf_sched
module Propagation = Rthv_analysis.Propagation
module Sensitivity = Rthv_analysis.Sensitivity
module Certificate = Rthv_analysis.Certificate
module Tdma = Tdma
module Slot_plan = Slot_plan
module Monitor = Monitor
module Throttle = Throttle
module Admission = Admission
module Boundary_policy = Boundary_policy
module Delta_learner = Delta_learner
module Config = Config
module Hyp_sim = Hyp_sim
module Hyp_trace = Hyp_trace
module Vcd_export = Vcd_export
module Trace_export = Trace_export
module Trace_store = Trace_store
module Trace_query = Trace_query
module Irq_record = Irq_record
module Obs = Rthv_obs
