module Cycles = Rthv_engine.Cycles
module Tracestore = Rthv_obs.Tracestore

let schema = Tracestore.format_name

(* Kind ids are the on-disk representation: append-only.  Names and order
   match the JSONL "ev" vocabulary of Trace_export so filters and docs
   speak one language. *)
let kind_table =
  [|
    ("slot_switch", 2);
    ("boundary_deferred", 2);
    ("irq_raised", 2);
    ("top_handler", 2);
    ("monitor_decision", 4);
    ("interposition_start", 2);
    ("interposition_end", 2);
    ("interposition_crossed_boundary", 1);
    ("bottom_handler_start", 2);
    ("bottom_handler_done", 2);
    ("irq_coalesced", 1);
  |]

let n_kinds = Array.length kind_table
let arities = Array.map snd kind_table
let kind_name k = fst kind_table.(k)
let kind_names = Array.to_list (Array.map fst kind_table)

let kind_of_name name =
  let rec find i =
    if i = n_kinds then None
    else if fst kind_table.(i) = name then Some i
    else find (i + 1)
  in
  find 0

let kind_of_event = function
  | Hyp_trace.Slot_switch _ -> 0
  | Hyp_trace.Boundary_deferred _ -> 1
  | Hyp_trace.Irq_raised _ -> 2
  | Hyp_trace.Top_handler_run _ -> 3
  | Hyp_trace.Monitor_decision _ -> 4
  | Hyp_trace.Interposition_start _ -> 5
  | Hyp_trace.Interposition_end _ -> 6
  | Hyp_trace.Interposition_crossed_boundary _ -> 7
  | Hyp_trace.Bottom_handler_start _ -> 8
  | Hyp_trace.Bottom_handler_done _ -> 9
  | Hyp_trace.Irq_coalesced _ -> 10

let verdict_code = function `Admitted -> 0 | `Denied -> 1 | `Fallback_direct -> 2
let reason_code = function `Budget_exhausted -> 0 | `Queue_empty -> 1

let encode_event = function
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      (from_partition, to_partition, 0, 0)
  | Hyp_trace.Boundary_deferred { owner; until } -> (owner, until, 0, 0)
  | Hyp_trace.Irq_raised { irq; line } -> (irq, line, 0, 0)
  | Hyp_trace.Top_handler_run { irq; line } -> (irq, line, 0, 0)
  | Hyp_trace.Monitor_decision { irq; line; arrival; verdict } ->
      (irq, line, arrival, verdict_code verdict)
  | Hyp_trace.Interposition_start { irq; target } -> (irq, target, 0, 0)
  | Hyp_trace.Interposition_end { target; reason } ->
      (target, reason_code reason, 0, 0)
  | Hyp_trace.Interposition_crossed_boundary { target } -> (target, 0, 0, 0)
  | Hyp_trace.Bottom_handler_start { irq; partition } -> (irq, partition, 0, 0)
  | Hyp_trace.Bottom_handler_done { irq; partition } -> (irq, partition, 0, 0)
  | Hyp_trace.Irq_coalesced { line } -> (line, 0, 0, 0)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Tracestore.Corrupt s)) fmt

let decode_event ~kind ~a ~b ~c ~d =
  match kind with
  | 0 -> Hyp_trace.Slot_switch { from_partition = a; to_partition = b }
  | 1 -> Hyp_trace.Boundary_deferred { owner = a; until = b }
  | 2 -> Hyp_trace.Irq_raised { irq = a; line = b }
  | 3 -> Hyp_trace.Top_handler_run { irq = a; line = b }
  | 4 ->
      let verdict =
        match d with
        | 0 -> `Admitted
        | 1 -> `Denied
        | 2 -> `Fallback_direct
        | v -> corrupt "monitor_decision verdict code %d" v
      in
      Hyp_trace.Monitor_decision { irq = a; line = b; arrival = c; verdict }
  | 5 -> Hyp_trace.Interposition_start { irq = a; target = b }
  | 6 ->
      let reason =
        match b with
        | 0 -> `Budget_exhausted
        | 1 -> `Queue_empty
        | r -> corrupt "interposition_end reason code %d" r
      in
      Hyp_trace.Interposition_end { target = a; reason }
  | 7 -> Hyp_trace.Interposition_crossed_boundary { target = a }
  | 8 -> Hyp_trace.Bottom_handler_start { irq = a; partition = b }
  | 9 -> Hyp_trace.Bottom_handler_done { irq = a; partition = b }
  | 10 -> Hyp_trace.Irq_coalesced { line = a }
  | k -> corrupt "event kind %d out of range" k

(* --- partition bitmap ---------------------------------------------------- *)

let overflow_partition_bit = 61
let unattributed_bit = 62

let partition_mask p =
  if p < 0 then 1 lsl unattributed_bit
  else if p >= overflow_partition_bit then 1 lsl overflow_partition_bit
  else 1 lsl p

let pmask_of_event = function
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      partition_mask from_partition lor partition_mask to_partition
  | Hyp_trace.Boundary_deferred { owner; _ } -> partition_mask owner
  | Hyp_trace.Interposition_start { target; _ }
  | Hyp_trace.Interposition_end { target; _ }
  | Hyp_trace.Interposition_crossed_boundary { target } ->
      partition_mask target
  | Hyp_trace.Bottom_handler_start { partition; _ }
  | Hyp_trace.Bottom_handler_done { partition; _ } ->
      partition_mask partition
  | Hyp_trace.Irq_raised _ | Hyp_trace.Top_handler_run _
  | Hyp_trace.Monitor_decision _ | Hyp_trace.Irq_coalesced _ ->
      1 lsl unattributed_bit

(* The partitions an event row names directly, by kind id — the columnar
   mirror of [rthv_trace]'s event_partitions.  Line-keyed kinds resolve
   through the optional line->subscriber map and are otherwise
   unattributable (empty). *)
let row_partition_matches ~line_partition ~p ~kind ~a ~b =
  match kind with
  | 0 -> a = p || b = p  (* slot_switch from/to *)
  | 1 | 7 -> a = p  (* boundary_deferred owner, crossed_boundary target *)
  | 5 | 8 | 9 -> b = p  (* interposition_start target, bh start/done *)
  | 6 -> a = p  (* interposition_end target *)
  | 2 | 3 | 4 | 10 -> (
      (* line-keyed: irq_raised/top_handler/monitor_decision line is column
         b, irq_coalesced line is column a *)
      let line = if kind = 10 then a else b in
      match line_partition with
      | None -> true  (* unattributable: keep *)
      | Some f -> ( match f line with None -> true | Some q -> q = p))
  | _ -> false

(* --- writer -------------------------------------------------------------- *)

module Writer = struct
  type t = {
    oc : out_channel;
    w : Tracestore.Writer.t;
    mutable closed : bool;
  }

  let create ?block_events path =
    let oc = open_out_bin path in
    let w =
      try Tracestore.Writer.create ?block_events ~arities oc
      with e ->
        close_out_noerr oc;
        raise e
    in
    { oc; w; closed = false }

  let add t ~time event =
    let a, b, c, d = encode_event event in
    Tracestore.Writer.append t.w ~time
      ~kind:(kind_of_event event)
      ~pmask:(pmask_of_event event) ~a ~b ~c ~d

  let add_entry t (e : Hyp_trace.entry) = add t ~time:e.Hyp_trace.time e.Hyp_trace.event
  let events_written t = Tracestore.Writer.events_written t.w

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Fun.protect
        ~finally:(fun () -> close_out t.oc)
        (fun () -> Tracestore.Writer.flush_block t.w)
    end
end

let write_entries ?block_events path entries =
  Tracestore.with_file_writer ?block_events ~arities path (fun w ->
      List.iter
        (fun (e : Hyp_trace.entry) ->
          let a, b, c, d = encode_event e.Hyp_trace.event in
          Tracestore.Writer.append w ~time:e.Hyp_trace.time
            ~kind:(kind_of_event e.Hyp_trace.event)
            ~pmask:(pmask_of_event e.Hyp_trace.event)
            ~a ~b ~c ~d)
        entries;
      List.length entries)

(* --- reading ------------------------------------------------------------- *)

type filter = {
  from_time : Cycles.t option;
  to_time : Cycles.t option;
  kinds : int list option;
  partition : int option;
}

let no_filter =
  { from_time = None; to_time = None; kinds = None; partition = None }

let store_filter filter =
  {
    Tracestore.t_min = filter.from_time;
    t_max = filter.to_time;
    kind_mask =
      Option.map
        (List.fold_left (fun m k -> m lor (1 lsl k)) 0)
        filter.kinds;
    (* A block can satisfy the partition filter through the partition
       itself or through unattributable events (which the filter keeps). *)
    pmask =
      Option.map
        (fun p -> partition_mask p lor (1 lsl unattributed_bit))
        filter.partition;
  }

let scan ?(filter = no_filter) ?line_partition path ~f =
  match filter.partition with
  | None -> Tracestore.scan ~filter:(store_filter filter) path ~f
  | Some p ->
      Tracestore.scan ~filter:(store_filter filter) path
        ~f:(fun ~time ~kind ~a ~b ~c ~d ->
          if row_partition_matches ~line_partition ~p ~kind ~a ~b then
            f ~time ~kind ~a ~b ~c ~d)

let read_entries ?filter ?line_partition path =
  match
    let acc = ref [] in
    let _stats =
      scan ?filter ?line_partition path ~f:(fun ~time ~kind ~a ~b ~c ~d ->
          acc :=
            { Hyp_trace.time; event = decode_event ~kind ~a ~b ~c ~d } :: !acc)
    in
    List.rev !acc
  with
  | entries -> Ok entries
  | exception Tracestore.Corrupt msg -> Error msg
  | exception Sys_error msg -> Error msg
