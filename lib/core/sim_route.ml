(* Top-handler routing: delivery of a raised line, the paid admission check
   and the direct / interposed / delayed classification.  All policy
   questions are delegated to the source's {!Admission} policy — this layer
   never looks inside it.

   Hypervisor work items carry a {!Sim_state.hyp_kind} instead of [on_done]
   closures; {!hyp_done} is the single dispatcher that runs each kind's
   continuation when its cost has been fully attributed.  This keeps the
   per-IRQ chain (top handler -> monitor -> sched manip -> ctx switches)
   allocation-free. *)

module Cycles = Rthv_engine.Cycles
module Irq_queue = Rthv_rtos.Irq_queue
module Guest = Rthv_rtos.Guest
module Intc = Rthv_hw.Intc
open Sim_state

(* Decision point of the modified top handler (Figure 4b), reached after the
   admission predicate ran: admit the interposition or fall back to delayed
   handling. *)
(* Record one monitor verdict (trace + telemetry); top-level so the hot
   path allocates no closure, and guarded so untraced runs do not build the
   event value. *)
let record_decision t src p verdict =
  if tracing t then
    trace_event t
      (Hyp_trace.Monitor_decision
         {
           irq = p.p_irq;
           line = src.cfg.Config.line;
           arrival = p.p_arrival;
           verdict;
         });
  if obs_active () then obs_monitor_decision src verdict

let monitor_done t src p =
  Prof.enter t.prof ph_admission;
  p.p_decision <- t.now;
  let conforms = Admission.decide src.admission p.p_arrival in
  let subscriber = src.cfg.Config.subscriber in
  if t.slot_owner = subscriber then begin
    (* The subscriber's slot opened between the arrival and the monitoring
       decision: the queued event is processed right away in its own slot —
       direct handling, no interposition machinery needed. *)
    record_decision t src p `Fallback_direct;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else if conforms && not t.interposition_pending then begin
    Admission.commit src.admission p.p_arrival;
    t.admissions <- t.admissions + 1;
    p.p_class <- Irq_record.Interposed;
    t.n_interposed <- t.n_interposed + 1;
    t.interposition_pending <- true;
    record_decision t src p `Admitted;
    enqueue_hyp t K_sched_manip ~cost:t.c_sched p
  end
  else begin
    t.denials <- t.denials + 1;
    p.p_class <- Irq_record.Delayed;
    t.n_delayed <- t.n_delayed + 1;
    record_decision t src p `Denied
  end;
  Prof.leave t.prof

let top_handler_done t src p =
  p.p_top_end <- t.now;
  if tracing t then
    trace_event t
      (Hyp_trace.Top_handler_run { irq = p.p_irq; line = src.cfg.Config.line });
  Intc.ack t.intc src.cfg.Config.line;
  (* The paper's experiment setup: the trigger timer is reprogrammed with the
     next pre-generated interarrival from within the top handler. *)
  schedule_next_arrival t src;
  Admission.observe src.admission p.p_arrival;
  let subscriber = src.cfg.Config.subscriber in
  let item =
    Irq_queue.make_item ~irq:p.p_irq ~line:src.cfg.Config.line
      ~arrival:p.p_arrival ~work:src.cfg.Config.c_bh
  in
  Irq_queue.push (Guest.queue t.guests.(subscriber)) item;
  if t.slot_owner = subscriber then begin
    p.p_decision <- t.now;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else if not (Admission.active src.admission) then begin
    (* Original Figure-4a top handler: no admission machinery, every
       foreign-slot IRQ is delayed to the subscriber's slot. *)
    p.p_decision <- t.now;
    p.p_class <- Irq_record.Delayed;
    t.n_delayed <- t.n_delayed + 1
  end
  else enqueue_hyp t K_monitor ~cost:t.c_mon p

(* Continuation of a finished hypervisor work item — what used to be its
   [on_done] closure.  [p] is [dummy_pending] for the kinds that carry no
   IRQ (K_ctx_back, K_slot_switch). *)
let hyp_done t kind (p : pending_irq) =
  match kind with
  | K_top_handler -> top_handler_done t p.p_source p
  | K_monitor -> monitor_done t p.p_source p
  | K_sched_manip -> enqueue_hyp t K_ctx_to ~cost:t.c_ctx p
  | K_ctx_to ->
      let subscriber = p.p_source.cfg.Config.subscriber in
      t.interposition_switches <- t.interposition_switches + 1;
      t.interpositions_started <- t.interpositions_started + 1;
      if tracing t then
        trace_event t
          (Hyp_trace.Interposition_start { irq = p.p_irq; target = subscriber });
      if obs_active () then
        Sink.incr "rthv_interpositions_total"
          (Labels.of_int "partition" subscriber)
          1;
      t.ip_target <- subscriber;
      t.ip_budget <- p.p_source.cfg.Config.c_bh
  | K_ctx_back ->
      t.interposition_switches <- t.interposition_switches + 1;
      t.interposition_pending <- false
  | K_slot_switch -> t.slot_switches <- t.slot_switches + 1

(* First-cycle hook of a hypervisor work item — what used to be its
   [on_start] closure.  Only the top handler observes its start time. *)
let hyp_start _t kind (p : pending_irq) time =
  match kind with K_top_handler -> p.p_top_start <- time | _ -> ()

(* Interrupt-controller delivery: the hardware IRQ preempts partition code
   and enters the hypervisor's top handler. *)
let deliver t line =
  match t.source_by_line.(line) with
  | None -> ()
  | Some src ->
      let irq = t.next_irq_id in
      t.next_irq_id <- t.next_irq_id + 1;
      t.live_irqs <- t.live_irqs + 1;
      let p =
        {
          p_irq = irq;
          p_source = src;
          p_arrival = t.now;
          p_top_start = t.now;
          p_top_end = t.now;
          p_class = Irq_record.Delayed;
          p_decision = -1;
          p_bh_start = -1;
        }
      in
      pending_add t irq p;
      if tracing t then
        trace_event t
          (Hyp_trace.Irq_raised { irq; line = src.cfg.Config.line });
      enqueue_hyp t K_top_handler ~cost:src.cfg.Config.c_th p

let handle_arrival t s_idx =
  t.scheduled_arrivals <- t.scheduled_arrivals - 1;
  let src = t.sources.(s_idx) in
  let line = src.cfg.Config.line in
  if Intc.is_pending t.intc line then begin
    (* The non-counting pending flag is already set: this raise coalesces
       into the earlier one and is lost.  Intc counts it; the trace makes
       it visible on the timeline. *)
    if tracing t then trace_event t (Hyp_trace.Irq_coalesced { line });
    if obs_active () then
      Sink.incr "rthv_irq_coalesced_total" (Labels.of_int "line" line) 1
  end;
  Intc.raise_line t.intc line
