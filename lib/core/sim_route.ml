(* Top-handler routing: delivery of a raised line, the paid admission check
   and the direct / interposed / delayed classification.  All policy
   questions are delegated to the source's {!Admission} policy — this layer
   never looks inside it. *)

module Cycles = Rthv_engine.Cycles
module Irq_queue = Rthv_rtos.Irq_queue
module Guest = Rthv_rtos.Guest
module Intc = Rthv_hw.Intc
open Sim_state

(* Decision point of the modified top handler (Figure 4b), reached after the
   admission predicate ran: admit the interposition or fall back to delayed
   handling. *)
let monitor_done t src p =
  Prof.enter t.prof ph_admission;
  p.p_decision <- t.now;
  let conforms = Admission.decide src.admission p.p_arrival in
  let subscriber = src.cfg.Config.subscriber in
  let decision verdict =
    trace_event t
      (Hyp_trace.Monitor_decision
         {
           irq = p.p_irq;
           line = src.cfg.Config.line;
           arrival = p.p_arrival;
           verdict;
         });
    if obs_active () then obs_monitor_decision src verdict
  in
  if t.slot_owner = subscriber then begin
    (* The subscriber's slot opened between the arrival and the monitoring
       decision: the queued event is processed right away in its own slot —
       direct handling, no interposition machinery needed. *)
    decision `Fallback_direct;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else if conforms && not t.interposition_pending then begin
    Admission.commit src.admission p.p_arrival;
    t.admissions <- t.admissions + 1;
    p.p_class <- Irq_record.Interposed;
    t.n_interposed <- t.n_interposed + 1;
    t.interposition_pending <- true;
    decision `Admitted;
    enqueue_hyp t ~label:"sched_manip" ~steals:true ~cost:t.c_sched
      ~on_done:(fun () ->
        enqueue_hyp t ~label:"ctx_to" ~steals:true ~cost:t.c_ctx
          ~on_done:(fun () ->
            t.interposition_switches <- t.interposition_switches + 1;
            t.interpositions_started <- t.interpositions_started + 1;
            trace_event t
              (Hyp_trace.Interposition_start
                 { irq = p.p_irq; target = subscriber });
            if obs_active () then
              Sink.incr "rthv_interpositions_total"
                (Labels.of_int "partition" subscriber)
                1;
            t.interposition <-
              Some { target = subscriber; budget_left = src.cfg.Config.c_bh }))
  end
  else begin
    t.denials <- t.denials + 1;
    p.p_class <- Irq_record.Delayed;
    t.n_delayed <- t.n_delayed + 1;
    decision `Denied
  end;
  Prof.leave t.prof

let top_handler_done t src p =
  p.p_top_end <- t.now;
  trace_event t
    (Hyp_trace.Top_handler_run { irq = p.p_irq; line = src.cfg.Config.line });
  Intc.ack t.intc src.cfg.Config.line;
  (* The paper's experiment setup: the trigger timer is reprogrammed with the
     next pre-generated interarrival from within the top handler. *)
  schedule_next_arrival t src;
  Admission.observe src.admission p.p_arrival;
  let subscriber = src.cfg.Config.subscriber in
  let item =
    Irq_queue.make_item ~irq:p.p_irq ~line:src.cfg.Config.line
      ~arrival:p.p_arrival ~work:src.cfg.Config.c_bh
  in
  Irq_queue.push (Guest.queue t.guests.(subscriber)) item;
  if t.slot_owner = subscriber then begin
    p.p_decision <- t.now;
    p.p_class <- Irq_record.Direct;
    t.n_direct <- t.n_direct + 1
  end
  else if not (Admission.active src.admission) then begin
    (* Original Figure-4a top handler: no admission machinery, every
       foreign-slot IRQ is delayed to the subscriber's slot. *)
    p.p_decision <- t.now;
    p.p_class <- Irq_record.Delayed;
    t.n_delayed <- t.n_delayed + 1
  end
  else
    enqueue_hyp t ~label:"monitor" ~steals:false ~cost:t.c_mon
      ~on_done:(fun () -> monitor_done t src p)

(* Interrupt-controller delivery: the hardware IRQ preempts partition code
   and enters the hypervisor's top handler. *)
let deliver t line =
  match t.source_by_line.(line) with
  | None -> ()
  | Some src ->
      let irq = t.next_irq_id in
      t.next_irq_id <- t.next_irq_id + 1;
      t.live_irqs <- t.live_irqs + 1;
      let p =
        {
          p_irq = irq;
          p_source = src;
          p_arrival = t.now;
          p_top_start = t.now;
          p_top_end = t.now;
          p_class = Irq_record.Delayed;
          p_decision = -1;
          p_bh_start = -1;
        }
      in
      Hashtbl.add t.pending irq p;
      trace_event t (Hyp_trace.Irq_raised { irq; line = src.cfg.Config.line });
      enqueue_hyp_with_start t ~label:"top_handler" ~steals:false
        ~cost:src.cfg.Config.c_th
        ~on_start:(fun time -> p.p_top_start <- time)
        ~on_done:(fun () -> top_handler_done t src p)

let handle_arrival t s_idx =
  t.scheduled_arrivals <- t.scheduled_arrivals - 1;
  let src = t.sources.(s_idx) in
  let line = src.cfg.Config.line in
  if Intc.is_pending t.intc line then begin
    (* The non-counting pending flag is already set: this raise coalesces
       into the earlier one and is lost.  Intc counts it; the trace makes
       it visible on the timeline. *)
    trace_event t (Hyp_trace.Irq_coalesced { line });
    if obs_active () then
      Sink.incr "rthv_irq_coalesced_total" (Labels.of_int "line" line) 1
  end;
  Intc.raise_line t.intc line
