module Cycles = Rthv_engine.Cycles
module Json = Rthv_obs.Json

(* --- Chrome Trace Event JSON -------------------------------------------- *)

(* Thread ids: 0 is the hypervisor track, partition p maps to tid p + 1. *)
let hyp_tid = 0
let tid_of_partition p = p + 1

let max_partition entries =
  List.fold_left
    (fun acc e ->
      let p =
        match e.Hyp_trace.event with
        | Hyp_trace.Slot_switch { from_partition; to_partition } ->
            Stdlib.max from_partition to_partition
        | Hyp_trace.Boundary_deferred { owner; _ } -> owner
        | Hyp_trace.Interposition_start { target; _ }
        | Hyp_trace.Interposition_end { target; _ }
        | Hyp_trace.Interposition_crossed_boundary { target } ->
            target
        | Hyp_trace.Bottom_handler_start { partition; _ }
        | Hyp_trace.Bottom_handler_done { partition; _ } ->
            partition
        | Hyp_trace.Irq_raised _ | Hyp_trace.Top_handler_run _
        | Hyp_trace.Monitor_decision _ | Hyp_trace.Irq_coalesced _ ->
            -1
      in
      Stdlib.max acc p)
    0 entries

let event ~ph ~ts ~tid ~name ?cat ?id ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Float (Cycles.to_us ts));
       ("pid", Json.Int 1);
       ("tid", Json.Int tid);
     ]
    @ (match cat with Some c -> [ ("cat", Json.String c) ] | None -> [])
    @ (match id with
      | Some i -> [ ("id", Json.String (string_of_int i)) ]
      | None -> [])
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let meta_event ~name ~tid args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let verdict_name = function
  | `Admitted -> "admitted"
  | `Denied -> "denied"
  | `Fallback_direct -> "fallback-direct"

let reason_name = function
  | `Budget_exhausted -> "budget-exhausted"
  | `Queue_empty -> "queue-empty"

let chrome_json ?(metadata = []) ?partition_names trace =
  let entries = Hyp_trace.to_list trace in
  let events = ref [] in
  let emit e = events := e :: !events in
  let partitions = max_partition entries + 1 in
  emit (meta_event ~name:"process_name" ~tid:0 [ ("name", Json.String "rthv hypervisor") ]);
  emit (meta_event ~name:"thread_name" ~tid:hyp_tid [ ("name", Json.String "hypervisor") ]);
  for p = 0 to partitions - 1 do
    let label =
      match partition_names with
      | Some names when p < Array.length names ->
          Printf.sprintf "partition %d (%s)" p names.(p)
      | _ -> Printf.sprintf "partition %d" p
    in
    emit
      (meta_event ~name:"thread_name" ~tid:(tid_of_partition p)
         [ ("name", Json.String label) ]);
    (* Render partitions in index order in the Perfetto track list. *)
    emit
      (meta_event ~name:"thread_sort_index" ~tid:(tid_of_partition p)
         [ ("sort_index", Json.Int (tid_of_partition p)) ])
  done;
  (* The simulation starts with partition 0 owning the first slot at t=0;
     unless the ring buffer dropped the prefix, the slot slices tile the
     timeline exactly. *)
  let open_slot = ref (if Hyp_trace.dropped trace = 0 then Some (0, 0) else None)
  and open_interp = ref None
  and last_time = ref 0 in
  (* Async spans (lowercase b/e, keyed by cat + id): one "irq" span per
     instance from raise to completion, one "bh" span bracketing its
     bottom-half execution.  An end is only emitted when its begin was seen
     — a truncated ring buffer must not produce orphan "e" phases. *)
  let irq_open = Hashtbl.create 64 and bh_open = Hashtbl.create 64 in
  let close_slot ts =
    match !open_slot with
    | Some (owner, _) ->
        emit
          (event ~ph:"E" ~ts ~tid:(tid_of_partition owner) ~name:"slot"
             ~cat:"tdma" ());
        open_slot := None
    | None -> ()
  in
  let close_interp ~reason ts =
    match !open_interp with
    | Some target ->
        emit
          (event ~ph:"E" ~ts ~tid:(tid_of_partition target)
             ~name:"interposition" ~cat:"interposition"
             ~args:[ ("reason", Json.String reason) ]
             ());
        open_interp := None
    | None -> ()
  in
  (match !open_slot with
  | Some (owner, ts) ->
      emit
        (event ~ph:"B" ~ts ~tid:(tid_of_partition owner) ~name:"slot"
           ~cat:"tdma"
           ~args:[ ("partition", Json.Int owner) ]
           ())
  | None -> ());
  List.iter
    (fun e ->
      let ts = e.Hyp_trace.time in
      last_time := ts;
      match e.Hyp_trace.event with
      | Hyp_trace.Slot_switch { from_partition = _; to_partition } ->
          close_slot ts;
          emit
            (event ~ph:"B" ~ts ~tid:(tid_of_partition to_partition)
               ~name:"slot" ~cat:"tdma"
               ~args:[ ("partition", Json.Int to_partition) ]
               ());
          open_slot := Some (to_partition, ts)
      | Hyp_trace.Boundary_deferred { owner; until } ->
          emit
            (event ~ph:"i" ~ts ~tid:(tid_of_partition owner)
               ~name:"boundary deferred" ~cat:"tdma"
               ~args:[ ("until_us", Json.Float (Cycles.to_us until)) ]
               ())
      | Hyp_trace.Irq_raised { irq; line } ->
          Hashtbl.replace irq_open irq ();
          emit
            (event ~ph:"b" ~ts ~tid:hyp_tid ~name:"irq" ~cat:"irq" ~id:irq
               ~args:[ ("line", Json.Int line) ]
               ())
      | Hyp_trace.Top_handler_run { irq; line } ->
          emit
            (event ~ph:"i" ~ts ~tid:hyp_tid ~name:"top handler" ~cat:"irq"
               ~args:[ ("irq", Json.Int irq); ("line", Json.Int line) ]
               ())
      | Hyp_trace.Monitor_decision { irq; line; arrival; verdict } ->
          emit
            (event ~ph:"i" ~ts ~tid:hyp_tid
               ~name:(Printf.sprintf "monitor: %s" (verdict_name verdict))
               ~cat:"monitor"
               ~args:
                 [
                   ("irq", Json.Int irq);
                   ("line", Json.Int line);
                   ("arrival_us", Json.Float (Cycles.to_us arrival));
                 ]
               ())
      | Hyp_trace.Interposition_start { irq; target } ->
          (* At most one interposition is in flight; a dangling start on a
             truncated trace is closed where the next one begins. *)
          close_interp ~reason:"superseded" ts;
          emit
            (event ~ph:"B" ~ts ~tid:(tid_of_partition target)
               ~name:"interposition" ~cat:"interposition"
               ~args:[ ("irq", Json.Int irq) ]
               ());
          open_interp := Some target
      | Hyp_trace.Interposition_end { target = _; reason } ->
          close_interp ~reason:(reason_name reason) ts
      | Hyp_trace.Interposition_crossed_boundary { target } ->
          emit
            (event ~ph:"i" ~ts ~tid:(tid_of_partition target)
               ~name:"crossed boundary" ~cat:"interposition" ())
      | Hyp_trace.Bottom_handler_start { irq; partition } ->
          Hashtbl.replace bh_open irq ();
          emit
            (event ~ph:"b" ~ts ~tid:(tid_of_partition partition)
               ~name:"bottom handler" ~cat:"bh" ~id:irq
               ~args:[ ("irq", Json.Int irq) ]
               ())
      | Hyp_trace.Bottom_handler_done { irq; partition } ->
          if Hashtbl.mem bh_open irq then begin
            Hashtbl.remove bh_open irq;
            emit
              (event ~ph:"e" ~ts ~tid:(tid_of_partition partition)
                 ~name:"bottom handler" ~cat:"bh" ~id:irq ())
          end;
          if Hashtbl.mem irq_open irq then begin
            Hashtbl.remove irq_open irq;
            emit
              (event ~ph:"e" ~ts ~tid:hyp_tid ~name:"irq" ~cat:"irq" ~id:irq
                 ())
          end;
          emit
            (event ~ph:"i" ~ts ~tid:(tid_of_partition partition)
               ~name:"bottom handler done" ~cat:"irq"
               ~args:[ ("irq", Json.Int irq) ]
               ())
      | Hyp_trace.Irq_coalesced { line } ->
          emit
            (event ~ph:"i" ~ts ~tid:hyp_tid ~name:"irq coalesced" ~cat:"irq"
               ~args:[ ("line", Json.Int line) ]
               ()))
    entries;
  close_interp ~reason:"trace-end" !last_time;
  close_slot !last_time;
  Json.Obj
    ([
       ("traceEvents", Json.List (List.rev !events));
       ("displayTimeUnit", Json.String "ns");
     ]
    @
    match metadata with [] -> [] | m -> [ ("metadata", Json.Obj m) ])

let chrome_string ?metadata ?partition_names trace =
  Json.to_string (chrome_json ?metadata ?partition_names trace)

let save_chrome ?metadata ?partition_names ~path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (chrome_string ?metadata ?partition_names trace);
      output_char oc '\n')

(* --- JSONL --------------------------------------------------------------- *)

let json_of_event = function
  | Hyp_trace.Slot_switch { from_partition; to_partition } ->
      [
        ("ev", Json.String "slot_switch");
        ("from", Json.Int from_partition);
        ("to", Json.Int to_partition);
      ]
  | Hyp_trace.Boundary_deferred { owner; until } ->
      [
        ("ev", Json.String "boundary_deferred");
        ("owner", Json.Int owner);
        ("until", Json.Int until);
      ]
  | Hyp_trace.Irq_raised { irq; line } ->
      [
        ("ev", Json.String "irq_raised");
        ("irq", Json.Int irq);
        ("line", Json.Int line);
      ]
  | Hyp_trace.Top_handler_run { irq; line } ->
      [
        ("ev", Json.String "top_handler");
        ("irq", Json.Int irq);
        ("line", Json.Int line);
      ]
  | Hyp_trace.Monitor_decision { irq; line; arrival; verdict } ->
      [
        ("ev", Json.String "monitor_decision");
        ("irq", Json.Int irq);
        ("line", Json.Int line);
        ("arrival", Json.Int arrival);
        ("verdict", Json.String (verdict_name verdict));
      ]
  | Hyp_trace.Interposition_start { irq; target } ->
      [
        ("ev", Json.String "interposition_start");
        ("irq", Json.Int irq);
        ("target", Json.Int target);
      ]
  | Hyp_trace.Interposition_end { target; reason } ->
      [
        ("ev", Json.String "interposition_end");
        ("target", Json.Int target);
        ("reason", Json.String (reason_name reason));
      ]
  | Hyp_trace.Interposition_crossed_boundary { target } ->
      [
        ("ev", Json.String "interposition_crossed_boundary");
        ("target", Json.Int target);
      ]
  | Hyp_trace.Bottom_handler_start { irq; partition } ->
      [
        ("ev", Json.String "bottom_handler_start");
        ("irq", Json.Int irq);
        ("partition", Json.Int partition);
      ]
  | Hyp_trace.Bottom_handler_done { irq; partition } ->
      [
        ("ev", Json.String "bottom_handler_done");
        ("irq", Json.Int irq);
        ("partition", Json.Int partition);
      ]
  | Hyp_trace.Irq_coalesced { line } ->
      [ ("ev", Json.String "irq_coalesced"); ("line", Json.Int line) ]

let jsonl_line entry =
  Json.to_string
    (Json.Obj
       (("t", Json.Int entry.Hyp_trace.time) :: json_of_event entry.Hyp_trace.event))

let jsonl_string trace =
  let buf = Buffer.create 4096 in
  Hyp_trace.iter trace (fun entry ->
      Buffer.add_string buf (jsonl_line entry);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let save_jsonl ~path trace =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (jsonl_string trace))

let field name extract json =
  match extract (Option.value ~default:Json.Null (Json.member name json)) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let ( let* ) = Result.bind

let event_of_json json =
  let int name = field name Json.to_int json in
  let str name = field name Json.to_str json in
  let* ev = str "ev" in
  match ev with
  | "slot_switch" ->
      let* from_partition = int "from" in
      let* to_partition = int "to" in
      Ok (Hyp_trace.Slot_switch { from_partition; to_partition })
  | "boundary_deferred" ->
      let* owner = int "owner" in
      let* until = int "until" in
      Ok (Hyp_trace.Boundary_deferred { owner; until })
  | "irq_raised" ->
      let* irq = int "irq" in
      let* line = int "line" in
      Ok (Hyp_trace.Irq_raised { irq; line })
  | "top_handler" ->
      let* irq = int "irq" in
      let* line = int "line" in
      Ok (Hyp_trace.Top_handler_run { irq; line })
  | "monitor_decision" ->
      let* irq = int "irq" in
      let* line = int "line" in
      let* arrival = int "arrival" in
      let* verdict =
        let* v = str "verdict" in
        match v with
        | "admitted" -> Ok `Admitted
        | "denied" -> Ok `Denied
        | "fallback-direct" -> Ok `Fallback_direct
        | other -> Error (Printf.sprintf "unknown verdict %S" other)
      in
      Ok (Hyp_trace.Monitor_decision { irq; line; arrival; verdict })
  | "interposition_start" ->
      let* irq = int "irq" in
      let* target = int "target" in
      Ok (Hyp_trace.Interposition_start { irq; target })
  | "interposition_end" ->
      let* target = int "target" in
      let* reason =
        let* r = str "reason" in
        match r with
        | "budget-exhausted" -> Ok `Budget_exhausted
        | "queue-empty" -> Ok `Queue_empty
        | other -> Error (Printf.sprintf "unknown end reason %S" other)
      in
      Ok (Hyp_trace.Interposition_end { target; reason })
  | "interposition_crossed_boundary" ->
      let* target = int "target" in
      Ok (Hyp_trace.Interposition_crossed_boundary { target })
  | "bottom_handler_start" ->
      let* irq = int "irq" in
      let* partition = int "partition" in
      Ok (Hyp_trace.Bottom_handler_start { irq; partition })
  | "bottom_handler_done" ->
      let* irq = int "irq" in
      let* partition = int "partition" in
      Ok (Hyp_trace.Bottom_handler_done { irq; partition })
  | "irq_coalesced" ->
      let* line = int "line" in
      Ok (Hyp_trace.Irq_coalesced { line })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let entry_of_jsonl line =
  let* json = Json.parse line in
  let* time = field "t" Json.to_int json in
  let* event = event_of_json json in
  Ok { Hyp_trace.time; event }

(* Flight-recorder dumps (see Flight_recorder) prefix the event stream with
   an {"ev":"meta", ...} header; it carries no trace entry, so re-import
   skips it rather than failing on the unknown kind. *)
let is_meta_line json =
  match Json.member "ev" json with
  | Some (Json.String "meta") -> true
  | _ -> false

let entries_of_jsonl_string contents =
  let lines = String.split_on_char '\n' contents in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then loop (lineno + 1) acc rest
        else (
          match Json.parse line with
          | Ok json when is_meta_line json -> loop (lineno + 1) acc rest
          | Ok _ | Error _ -> (
              match entry_of_jsonl line with
              | Ok entry -> loop (lineno + 1) (entry :: acc) rest
              | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)))
  in
  loop 1 [] lines

let load_jsonl ~path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  entries_of_jsonl_string contents

let trace_of_entries entries =
  let trace =
    Hyp_trace.create ~capacity:(Stdlib.max 1 (List.length entries)) ()
  in
  List.iter
    (fun e -> Hyp_trace.record trace ~time:e.Hyp_trace.time e.Hyp_trace.event)
    entries;
  trace
