module Cycles = Rthv_engine.Cycles
module Quantile = Rthv_obs.Quantile
module Json = Rthv_obs.Json
module Tracestore = Rthv_obs.Tracestore

type agg = Count | Rate | Latency
type group_by = By_none | By_partition | By_kind | By_class | By_source

type group = {
  g_key : string;
  g_count : int;
  g_digest : Quantile.t option;
}

type t = {
  q_agg : agg;
  q_group_by : group_by;
  q_stats : Tracestore.stats;
  q_matched : int;
  q_span_us : float;
  q_groups : group list;
}

let agg_name = function Count -> "count" | Rate -> "rate" | Latency -> "latency"

let agg_of_name = function
  | "count" -> Some Count
  | "rate" -> Some Rate
  | "latency" -> Some Latency
  | _ -> None

let group_by_name = function
  | By_none -> "none"
  | By_partition -> "partition"
  | By_kind -> "kind"
  | By_class -> "class"
  | By_source -> "source"

let group_by_of_name = function
  | "none" -> Some By_none
  | "partition" -> Some By_partition
  | "kind" -> Some By_kind
  | "class" -> Some By_class
  | "source" -> Some By_source
  | _ -> None

let class_names = [ "direct"; "interposed"; "delayed"; "unknown" ]

let class_name = function
  | 0 -> "direct"
  | 1 -> "interposed"
  | 2 -> "delayed"
  | _ -> "unknown"

(* --- group accumulation --------------------------------------------------- *)

(* Group keys sort numerically when they parse as ints (partitions), and
   lexically otherwise, so "10" lands after "2" in partition tables. *)
let compare_keys a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> compare a b

type bucket = { mutable count : int; digest : Quantile.t option }

let groups_of_table table =
  Hashtbl.fold (fun key b acc -> (key, b) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare_keys a b)
  |> List.map (fun (g_key, b) ->
         { g_key; g_count = b.count; g_digest = b.digest })

let bucket table ~digests key =
  match Hashtbl.find_opt table key with
  | Some b -> b
  | None ->
      let b =
        {
          count = 0;
          digest = (if digests then Some (Quantile.create ()) else None);
        }
      in
      Hashtbl.add table key b;
      b

(* --- count / rate -------------------------------------------------------- *)

(* Partitions named directly by a row; an event touching two partitions
   counts in both groups, and line-keyed events group under their line's
   subscriber when a map is given and under "unattributed" otherwise. *)
let count_keys ~line_partition ~kind ~a ~b emit =
  match kind with
  | 0 ->
      emit (string_of_int a);
      if b <> a then emit (string_of_int b)
  | 1 | 7 -> emit (string_of_int a)
  | 5 | 8 | 9 -> emit (string_of_int b)
  | 6 -> emit (string_of_int a)
  | _ -> (
      let line = if kind = 10 then a else b in
      match line_partition with
      | None -> emit "unattributed"
      | Some f -> (
          match f line with
          | Some p -> emit (string_of_int p)
          | None -> emit "unattributed"))

let run_count ?filter ?line_partition ~group_by path =
  (match group_by with
  | By_none | By_partition | By_kind -> ()
  | By_class | By_source ->
      invalid_arg "Trace_query: group-by class/source needs --agg latency");
  let table = Hashtbl.create 16 in
  let matched = ref 0 in
  let t_lo = ref max_int and t_hi = ref min_int in
  let stats =
    Trace_store.scan ?filter ?line_partition path
      ~f:(fun ~time ~kind ~a ~b ~c:_ ~d:_ ->
        incr matched;
        if time < !t_lo then t_lo := time;
        if time > !t_hi then t_hi := time;
        match group_by with
        | By_none -> ()
        | By_kind ->
            let bk = bucket table ~digests:false (Trace_store.kind_name kind) in
            bk.count <- bk.count + 1
        | By_partition ->
            count_keys ~line_partition ~kind ~a ~b (fun key ->
                let bk = bucket table ~digests:false key in
                bk.count <- bk.count + 1)
        | By_class | By_source -> assert false)
  in
  let span_us =
    if !matched >= 2 then Cycles.to_us (!t_hi - !t_lo) else 0.
  in
  let groups =
    match group_by with
    | By_none ->
        [ { g_key = "all"; g_count = !matched; g_digest = None } ]
    | _ -> groups_of_table table
  in
  (stats, !matched, span_us, groups)

(* --- latency ------------------------------------------------------------- *)

(* Per-instance state while streaming: allocated once per live IRQ, freed
   at completion, so memory tracks in-flight instances, not store size. *)
type pending = {
  raise_time : int;
  p_line : int;
  mutable owner_at_top : int;  (* -1 until the top handler ran *)
  mutable cls : int;  (* -1 until classified *)
}

(* The kinds the classifier needs: slot_switch, irq_raised, top_handler,
   monitor_decision, bottom_handler_done. *)
let latency_kinds = [ 0; 2; 3; 4; 9 ]

let run_latency ?(filter = Trace_store.no_filter) ?line_source ?on_sample
    ~group_by path =
  (match group_by with
  | By_none | By_partition | By_class | By_source -> ()
  | By_kind ->
      invalid_arg "Trace_query: group-by kind needs --agg count or rate");
  let scan_filter =
    {
      Trace_store.from_time = filter.Trace_store.from_time;
      to_time = filter.Trace_store.to_time;
      kinds = Some latency_kinds;
      (* The classifier needs the global slot_switch stream, so the
         partition filter applies to completed samples, not scanned
         events. *)
      partition = None;
    }
  in
  let source_of_line line =
    match line_source with
    | Some f -> (
        match f line with Some s -> s | None -> Printf.sprintf "line%d" line)
    | None -> Printf.sprintf "line%d" line
  in
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 64 in
  let table = Hashtbl.create 16 in
  (* Partition 0 owns the first slot at t=0 (simulator invariant); a
     truncated store starts with unknown ownership until the first
     slot_switch, which at worst turns early direct samples into
     "unknown"-class ones. *)
  let owner = ref 0 in
  let samples = ref 0 in
  let t_lo = ref max_int and t_hi = ref min_int in
  let stats =
    Trace_store.scan ~filter:scan_filter path
      ~f:(fun ~time ~kind ~a ~b ~c:_ ~d ->
        match kind with
        | 0 -> owner := b
        | 2 ->
            Hashtbl.replace pending a
              { raise_time = time; p_line = b; owner_at_top = -1; cls = -1 }
        | 3 -> (
            match Hashtbl.find_opt pending a with
            | Some p -> p.owner_at_top <- !owner
            | None -> ())
        | 4 -> (
            match Hashtbl.find_opt pending a with
            | Some p ->
                p.cls <- (match d with 0 -> 1 | 1 -> 2 | _ -> 0)
                (* Admitted -> interposed, Denied -> delayed,
                   Fallback_direct -> direct *)
            | None -> ())
        | 9 -> (
            match Hashtbl.find_opt pending a with
            | None -> ()
            | Some p ->
                Hashtbl.remove pending a;
                let cls =
                  if p.cls >= 0 then p.cls
                  else if p.owner_at_top < 0 then -1
                  else if p.owner_at_top = b then 0
                  else 2
                in
                let keep =
                  match filter.Trace_store.partition with
                  | None -> true
                  | Some q -> q = b
                in
                if keep then begin
                  incr samples;
                  if p.raise_time < !t_lo then t_lo := p.raise_time;
                  if time > !t_hi then t_hi := time;
                  let latency_us = Cycles.to_us (time - p.raise_time) in
                  let source = source_of_line p.p_line in
                  let cls_name = class_name cls in
                  (match on_sample with
                  | Some f ->
                      f ~source ~cls:cls_name ~partition:b ~latency_us
                  | None -> ());
                  let key =
                    match group_by with
                    | By_none -> "all"
                    | By_partition -> string_of_int b
                    | By_class -> cls_name
                    | By_source -> source
                    | By_kind -> assert false
                  in
                  let bk = bucket table ~digests:true key in
                  bk.count <- bk.count + 1;
                  match bk.digest with
                  | Some dg -> Quantile.observe dg latency_us
                  | None -> ()
                end)
        | _ -> ())
  in
  let span_us = if !samples >= 2 then Cycles.to_us (!t_hi - !t_lo) else 0. in
  (stats, !samples, span_us, groups_of_table table)

let run ?filter ?line_partition ?line_source ?on_sample ~agg ~group_by path =
  let stats, matched, span_us, groups =
    match agg with
    | Count | Rate -> run_count ?filter ?line_partition ~group_by path
    | Latency -> run_latency ?filter ?line_source ?on_sample ~group_by path
  in
  {
    q_agg = agg;
    q_group_by = group_by;
    q_stats = stats;
    q_matched = matched;
    q_span_us = span_us;
    q_groups = groups;
  }

(* --- rendering ----------------------------------------------------------- *)

let rate_per_s t count =
  if t.q_span_us > 0. then float_of_int count /. (t.q_span_us /. 1e6)
  else 0.

let digest_fields dg =
  let q p = Option.value ~default:Float.nan (Quantile.quantile dg p) in
  [
    ("mean_us", Json.Float (Option.value ~default:Float.nan (Quantile.mean dg)));
    ("p50_us", Json.Float (q 0.5));
    ("p95_us", Json.Float (q 0.95));
    ("p99_us", Json.Float (q 0.99));
    ("p999_us", Json.Float (q 0.999));
    ( "max_us",
      Json.Float (Option.value ~default:Float.nan (Quantile.max_value dg)) );
  ]

let to_json ?store t =
  let group g =
    Json.Obj
      (("key", Json.String g.g_key)
      :: ("count", Json.Int g.g_count)
      :: (match t.q_agg with
         | Rate -> [ ("rate_per_s", Json.Float (rate_per_s t g.g_count)) ]
         | Count -> []
         | Latency -> (
             match g.g_digest with Some dg -> digest_fields dg | None -> [])))
  in
  Json.Obj
    ([
       ("schema", Json.String "rthv-query/1");
     ]
    @ (match store with
      | Some s -> [ ("store", Json.String s) ]
      | None -> [])
    @ [
        ("aggregation", Json.String (agg_name t.q_agg));
        ("group_by", Json.String (group_by_name t.q_group_by));
        ("blocks", Json.Int t.q_stats.Tracestore.s_blocks);
        ("blocks_scanned", Json.Int t.q_stats.Tracestore.s_blocks_scanned);
        ("rows_scanned", Json.Int t.q_stats.Tracestore.s_rows);
        ("matched", Json.Int t.q_matched);
        ("span_us", Json.Float t.q_span_us);
        ("groups", Json.List (List.map group t.q_groups));
      ])

let pp ppf t =
  Format.fprintf ppf "-- %s by %s: %d matched over %.1f us (%d/%d blocks) --@."
    (agg_name t.q_agg)
    (group_by_name t.q_group_by)
    t.q_matched t.q_span_us t.q_stats.Tracestore.s_blocks_scanned
    t.q_stats.Tracestore.s_blocks;
  match t.q_agg with
  | Count ->
      List.iter
        (fun g -> Format.fprintf ppf "%-24s %10d@." g.g_key g.g_count)
        t.q_groups
  | Rate ->
      Format.fprintf ppf "%-24s %10s %12s@." "group" "count" "events/s";
      List.iter
        (fun g ->
          Format.fprintf ppf "%-24s %10d %12.1f@." g.g_key g.g_count
            (rate_per_s t g.g_count))
        t.q_groups
  | Latency ->
      Format.fprintf ppf "%-24s %8s %10s %10s %10s %10s %10s@." "group" "count"
        "mean_us" "p50_us" "p99_us" "p99.9_us" "max_us";
      List.iter
        (fun g ->
          match g.g_digest with
          | None -> Format.fprintf ppf "%-24s %8d@." g.g_key g.g_count
          | Some dg ->
              let q p =
                Option.value ~default:Float.nan (Quantile.quantile dg p)
              in
              Format.fprintf ppf
                "%-24s %8d %10.1f %10.1f %10.1f %10.1f %10.1f@." g.g_key
                g.g_count
                (Option.value ~default:Float.nan (Quantile.mean dg))
                (q 0.5) (q 0.99) (q 0.999)
                (Option.value ~default:Float.nan (Quantile.max_value dg)))
        t.q_groups
