(** System configuration for the hypervisor simulation. *)

type shaping =
  | No_shaping
      (** Original top handler (Figure 4a): foreign IRQs are always
          delayed. *)
  | Fixed_monitor of Rthv_analysis.Distance_fn.t
      (** Modified top handler with a predefined monitoring condition. *)
  | Self_learning of {
      l : int;
      learn_events : int;
      bound : Rthv_analysis.Distance_fn.t option;
    }  (** Appendix-A self-learning monitor. *)
  | Token_bucket of { capacity : int; refill : Rthv_engine.Cycles.t }
      (** Related-work baseline (Regehr & Duongsaa): rate-based throttling
          with a burst allowance instead of a distance condition. *)
  | Budgeted of { per_cycle : int }
      (** Per-source interposition budget: at most [per_cycle] admissions in
          any aligned TDMA-cycle window; further conforming arrivals are
          delayed to the subscriber slot.  No distance condition is
          maintained, so the eq.-(16) per-instance bound never applies —
          only the interference cap of [per_cycle] interpositions per
          cycle window. *)
  | Monitor_and_bucket of {
      fn : Rthv_analysis.Distance_fn.t;
      capacity : int;
      refill : Rthv_engine.Cycles.t;
    }
      (** Composite: a δ⁻ monitor AND a token bucket must both admit.  The
          monitor gives the interference bound of eq. (14); the bucket caps
          bursts the condition happens to permit.  The eq.-(16) per-instance
          bound applies only when the bucket is provably vacuous against
          [fn] (see {!Rthv_analysis.Bound.per_instance_condition}). *)

type arrival_mode =
  | Reprogram
      (** Entry 0 of [interarrivals] is relative to time 0; entry i+1 is
          programmed from within IRQ i's top handler, as the paper's trigger
          timer is.  Arrivals never coalesce in this mode. *)
  | Absolute
      (** The distances are accumulated into absolute raise times scheduled
          up front (trace replay).  Raises hitting a still-pending line
          coalesce, as on real hardware with non-counting IRQ flags. *)

type source = {
  name : string;
  line : int;  (** Interrupt-controller line; unique per source. *)
  subscriber : int;  (** Index of the partition owning the bottom handler. *)
  c_th : Rthv_engine.Cycles.t;  (** Top handler WCET. *)
  c_bh : Rthv_engine.Cycles.t;  (** Bottom handler WCET = interposition budget. *)
  interarrivals : Rthv_engine.Cycles.t array;
      (** Pre-generated distances; interpreted per [arrival_mode]. *)
  arrival_mode : arrival_mode;
  shaping : shaping;
  activates : Rthv_rtos.Task.spec option;
      (** Guest task signalled by the bottom handler: on each bottom-handler
          completion one aperiodic job of this task is released in the
          subscriber partition (the uC/OS pattern of a handler posting to a
          task).  Its completions appear in the subscriber guest's
          record. *)
}

type partition = {
  pname : string;
  slot : Rthv_engine.Cycles.t;
  tasks : Rthv_rtos.Task.spec list;
  busy_loop : bool;
  policy : Rthv_rtos.Guest.policy;
}

type plan_spec =
  | Partition_slots
      (** The paper's schedule: each partition's [slot] field is its slot
          length, in declaration order. *)
  | Weighted_plan of { cycle : Rthv_engine.Cycles.t; weights : int array }
      (** A fixed TDMA cycle apportioned over integer weights (one per
          partition, in declaration order) by {!Slot_plan.weighted}; the
          partitions' [slot] fields are ignored. *)

type t = {
  platform : Rthv_hw.Platform.t;
  partitions : partition list;  (** In TDMA cycle order. *)
  sources : source list;
  ports : (string * int) list;
      (** Hypervisor-owned IPC queuing ports: (name, capacity).  Tasks refer
          to them through {!Rthv_rtos.Task.spec}'s [produces]/[consumes]. *)
  boundary : Boundary_policy.t;
      (** What happens to a bottom handler still executing at its own slot's
          end; see {!Boundary_policy}. *)
  plan : plan_spec;  (** How per-partition slot lengths are produced. *)
}

val partition :
  name:string ->
  slot_us:int ->
  ?tasks:Rthv_rtos.Task.spec list ->
  ?busy_loop:bool ->
  ?policy:Rthv_rtos.Guest.policy ->
  unit ->
  partition
(** [policy] defaults to fixed-priority scheduling. *)

val source :
  name:string ->
  line:int ->
  subscriber:int ->
  c_th_us:int ->
  c_bh_us:int ->
  interarrivals:Rthv_engine.Cycles.t array ->
  ?arrival_mode:arrival_mode ->
  ?shaping:shaping ->
  ?activates:Rthv_rtos.Task.spec ->
  unit ->
  source
(** [arrival_mode] defaults to [Reprogram]; [shaping] to [No_shaping];
    no task activation by default. *)

val make :
  ?platform:Rthv_hw.Platform.t ->
  ?finish_bh_at_boundary:bool ->
  ?boundary:Boundary_policy.t ->
  ?plan:plan_spec ->
  ?ports:(string * int) list ->
  partitions:partition list ->
  sources:source list ->
  unit ->
  t
(** Defaults to the paper's ARM926ej-s platform,
    {!Boundary_policy.default}, [Partition_slots], and no IPC ports.
    [finish_bh_at_boundary] is the legacy boolean encoding of [boundary];
    if both are given, [boundary] wins. *)

val finish_bh_at_boundary : t -> bool
(** [Boundary_policy.defers t.boundary] — the legacy boolean view. *)

val validate : t -> (unit, string) result
(** Checks subscriber indices, line uniqueness and ranges, positive WCETs,
    non-negative interarrivals, shaping parameter sanity — including that
    every monitoring condition ({!Fixed_monitor}, {!Monitor_and_bucket},
    and a {!Self_learning} seed bound) is {!Rthv_analysis.Distance_fn.finite},
    i.e. free of the unlearned-position sentinel whose superadditive sums
    overflow the analysis — plan/weight consistency, and that every port
    referenced by a task is declared (with positive capacity and a unique
    name). *)

val slot_plan : t -> Slot_plan.t
(** The slot schedule described by [t.plan]. *)

val effective_slots : t -> Rthv_engine.Cycles.t array
(** Compiled per-partition slot lengths — [Slot_plan.slots (slot_plan t)].
    Analyses must use this rather than the partitions' [slot] fields so
    that weighted plans are bounded against the schedule actually run. *)

val tdma : t -> Tdma.t

val monitoring_enabled : t -> bool
(** True iff any source uses the modified top handler. *)
