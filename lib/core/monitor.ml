module Cycles = Rthv_engine.Cycles
module Distance_fn = Rthv_analysis.Distance_fn

type phase = Learning of int | Running

type mode =
  | Fixed
  | Self_learning of {
      learner : Delta_learner.t;
      learn_events : int;
      bound : Distance_fn.t option;
    }

(* Sentinel marking a ring cell that holds no admitted event yet.
   Timestamps are non-negative cycle counts, so [min_int] is unambiguous,
   and an unboxed [int array] needs no per-cell [option]. *)
let no_event = Stdlib.min_int

(* The admitted history is a ring buffer: [history.(head)] is the most
   recent admitted timestamp and the (i+1)-th last sits at
   [(head - i + l) mod l].  Admission is O(1) (advance [head], overwrite the
   oldest cell) instead of the former O(l) shift of an option array, and
   [entries] caches the condition's entry array so the per-IRQ check never
   calls [Distance_fn.entries] (which copies). *)
type t = {
  mode : mode;
  mutable fn : Distance_fn.t option;  (* None while learning *)
  mutable entries : Cycles.t array;  (* entries of [fn]; [||] while learning *)
  history : Cycles.t array;
  mutable head : int;
  mutable admitted : int;
  mutable checked : int;
}

let fixed fn =
  {
    mode = Fixed;
    fn = Some fn;
    entries = Distance_fn.entries fn;
    history = Array.make (Distance_fn.length fn) no_event;
    head = 0;
    admitted = 0;
    checked = 0;
  }

let d_min d = fixed (Distance_fn.d_min d)

let self_learning ~l ~learn_events ?bound () =
  if l <= 0 then invalid_arg "Monitor.self_learning: l must be positive";
  if learn_events < 0 then
    invalid_arg "Monitor.self_learning: negative learn_events";
  (match bound with
  | Some b when Distance_fn.length b <> l ->
      invalid_arg "Monitor.self_learning: bound length mismatch"
  | Some _ | None -> ());
  {
    mode = Self_learning { learner = Delta_learner.create ~l; learn_events; bound };
    fn = None;
    entries = [||];
    history = Array.make l no_event;
    head = 0;
    admitted = 0;
    checked = 0;
  }

let phase t =
  match (t.mode, t.fn) with
  | _, Some _ -> Running
  | Self_learning { learner; learn_events; _ }, None ->
      Learning (Stdlib.max 0 (learn_events - Delta_learner.observed learner))
  | Fixed, None -> assert false

let finish_learning t =
  match t.mode with
  | Fixed -> ()
  | Self_learning { learner; bound; _ } ->
      let fn =
        match bound with
        | None -> Delta_learner.learned learner
        | Some bound -> Delta_learner.learned_bounded learner ~bound
      in
      t.fn <- Some fn;
      t.entries <- Distance_fn.entries fn

let note_arrival t timestamp =
  match (t.mode, t.fn) with
  | Fixed, _ | Self_learning _, Some _ -> ()
  | Self_learning { learner; learn_events; _ }, None ->
      Delta_learner.observe learner timestamp;
      if Delta_learner.observed learner >= learn_events then finish_learning t

(* Top-level recursion (not an inner closure) keeps [conforms] allocation
   free on the per-IRQ path. *)
let rec conforms_from history head entries l timestamp i =
  i >= l
  ||
  let previous = history.((head - i + l) mod l) in
  (previous = no_event
  || Cycles.( - ) timestamp previous >= Array.unsafe_get entries i)
  && conforms_from history head entries l timestamp (i + 1)

let conforms t timestamp =
  let l = Array.length t.entries in
  (* [l = 0] iff the condition does not exist yet (learning phase): no
     interposition is admitted. *)
  l > 0 && conforms_from t.history t.head t.entries l timestamp 0

let check t timestamp =
  t.checked <- t.checked + 1;
  conforms t timestamp

let admit t timestamp =
  if not (conforms t timestamp) then
    invalid_arg "Monitor.admit: activation violates the monitoring condition";
  let l = Array.length t.history in
  let head = t.head + 1 in
  let head = if head = l then 0 else head in
  t.head <- head;
  t.history.(head) <- timestamp;
  t.admitted <- t.admitted + 1

let condition t = t.fn
let admitted_count t = t.admitted
let checked_count t = t.checked
