(** Structured exporters for {!Hyp_trace} timelines.

    Two machine-readable complements to the {!Vcd_export} waveform:

    - {b Chrome Trace Event JSON} — loads in Perfetto or
      [chrome://tracing].  One track (thread) per partition carrying the
      TDMA slot ownership as begin/end slices and each admitted
      interposition as a nested slice; a separate hypervisor track carries
      top handlers, monitor verdicts, coalesced raises and deferral marks
      as instant events.

    - {b JSONL} — one compact JSON object per trace entry, timestamps in
      cycles (lossless).  The format round-trips: {!entries_of_jsonl_string}
      re-reads what {!jsonl_string} wrote, so recorded timelines can be
      re-exported or audited offline. *)

(** {2 Chrome Trace Event JSON} *)

val chrome_json :
  ?metadata:(string * Rthv_obs.Json.t) list ->
  ?partition_names:string array ->
  Hyp_trace.t ->
  Rthv_obs.Json.t
(** The full document: [{"traceEvents": [...], "displayTimeUnit": "ns"}].
    [partition_names] decorates the per-partition thread names.
    [metadata] lands verbatim in the Chrome trace format's top-level
    ["metadata"] object (omitted when empty) — the recorders stamp the
    engine mode ([step] or [fast_forward]) here so an exported timeline
    says how it was produced. *)

val chrome_string :
  ?metadata:(string * Rthv_obs.Json.t) list ->
  ?partition_names:string array ->
  Hyp_trace.t ->
  string

val save_chrome :
  ?metadata:(string * Rthv_obs.Json.t) list ->
  ?partition_names:string array ->
  path:string ->
  Hyp_trace.t ->
  unit

(** {2 JSONL} *)

val jsonl_line : Hyp_trace.entry -> string
(** One entry as a single-line JSON object (no trailing newline). *)

val jsonl_string : Hyp_trace.t -> string
(** All retained entries, one per line, trailing newline included. *)

val save_jsonl : path:string -> Hyp_trace.t -> unit

val entry_of_jsonl : string -> (Hyp_trace.entry, string) result

val entries_of_jsonl_string : string -> (Hyp_trace.entry list, string) result
(** Blank lines are skipped; the first malformed line aborts with its line
    number. *)

val load_jsonl : path:string -> (Hyp_trace.entry list, string) result

(** {2 Rebuilding a trace} *)

val trace_of_entries : Hyp_trace.entry list -> Hyp_trace.t
(** A fresh trace buffer (capacity fitted to the list) holding exactly
    these entries — the bridge from a re-read JSONL file back into the
    exporters and the {!Rthv_check} oracle. *)
