(** Streaming aggregation over a binary trace store.

    One pass over a {!Trace_store} file — block-index pushdown included —
    computing event counts, event rates, or end-to-end IRQ latency
    percentiles without materializing the store.  Latency aggregation
    reconstructs each IRQ instance's completion latency and handling class
    (direct / interposed / delayed) from the event stream alone, using the
    same rules the simulator applies when it classifies
    ({!Hyp_trace.Monitor_decision} verdicts, slot ownership at top-handler
    time otherwise), so a query over a recorded store reproduces the
    simulator's attribution.  Percentiles come from the shared P² digests
    ({!Rthv_obs.Quantile}), which keeps the memory footprint independent of
    the store size. *)

type agg = Count | Rate | Latency

type group_by = By_none | By_partition | By_kind | By_class | By_source
(** [By_kind] groups by event kind (count/rate).  [By_class] and
    [By_source] apply to latency aggregation, which attributes samples to
    a handling class and (via the line map) a source. *)

type group = {
  g_key : string;
  g_count : int;  (** Events (count/rate) or latency samples. *)
  g_digest : Rthv_obs.Quantile.t option;  (** Latency aggregation only. *)
}

type t = {
  q_agg : agg;
  q_group_by : group_by;
  q_stats : Rthv_obs.Tracestore.stats;  (** Pushdown evidence. *)
  q_matched : int;  (** Total events counted / latency samples. *)
  q_span_us : float;
      (** Time extent of the matched events in microseconds (0 when fewer
          than two); the denominator of the rate aggregation. *)
  q_groups : group list;  (** Sorted by key (numeric when possible). *)
}

val agg_name : agg -> string
val agg_of_name : string -> agg option
val group_by_name : group_by -> string
val group_by_of_name : string -> group_by option

val class_names : string list
(** ["direct"; "interposed"; "delayed"] plus ["unknown"] for instances
    whose classification events fell outside the scanned window. *)

val run :
  ?filter:Trace_store.filter ->
  ?line_partition:(int -> int option) ->
  ?line_source:(int -> string option) ->
  ?on_sample:
    (source:string -> cls:string -> partition:int -> latency_us:float -> unit) ->
  agg:agg ->
  group_by:group_by ->
  string ->
  t
(** Aggregate the store at [path].  For latency aggregation the kind
    filter is fixed to the classification event set (a [filter.kinds] is
    ignored) and [filter.partition] selects the completing partition;
    [on_sample] additionally streams every latency sample — the SLO hook.
    Sources are named through [line_source], falling back to ["line<N>"].
    @raise Invalid_argument on a group_by that does not fit the
    aggregation.
    @raise Rthv_obs.Tracestore.Corrupt on malformed input. *)

val to_json : ?store:string -> t -> Rthv_obs.Json.t
(** The [rthv-query/1] document. *)

val pp : Format.formatter -> t -> unit
(** Text table of the groups plus the scan statistics. *)
