(** Pluggable admission policies for interposed handling.

    The modified top handler (Figure 4b) asks one question per foreign-slot
    IRQ: may this activation be handled {e interposed} now, or must it fall
    back to delayed handling?  This module makes the answer a first-class
    value, absorbing what used to be a closed shaper dispatch inside the
    simulator (none / δ⁻ monitor / token bucket) and adding per-source
    interposition budgets and composite AND-policies.

    A policy is a record of closures over its own mutable state — one
    instance per source, never shared.  The simulator drives it through a
    three-call protocol, all timestamps non-decreasing:

    - {!observe} on {e every} arrival of the source (training hook — the
      self-learning monitor uses it; most policies ignore it);
    - {!decide} when an interposition is possible: one {e paid} execution of
      the admission predicate (C_Mon on the real system), counted in
      {!checks};
    - {!commit} after a positive decision that the simulator acts on,
      updating admission history (monitor ring buffer, bucket token,
      budget counter).

    An {!active}-[false] policy reproduces the original Figure-4a top
    handler: the simulator skips the monitoring work entirely — no
    {!decide} call, no C_Mon cost, every foreign-slot IRQ delayed. *)

type t

val name : t -> string

val active : t -> bool
(** [false] means the source runs the unmodified top handler; the simulator
    pays no admission-check cost and never calls {!decide}. *)

val decide : t -> Rthv_engine.Cycles.t -> bool
(** One paid admission check at the given timestamp.  Counted. *)

val commit : t -> Rthv_engine.Cycles.t -> unit
(** Record that the activation decided at this timestamp was admitted.
    @raise Invalid_argument if the policy would not admit it ({!decide}
    must have returned [true] for this timestamp). *)

val observe : t -> Rthv_engine.Cycles.t -> unit
(** Note an arrival of the source (admitted or not). *)

val checks : t -> int
(** Number of paid {!decide} executions so far — each costs C_Mon on the
    real system; feeds the simulator's [monitor_checks] statistic. *)

val monitor : t -> Monitor.t option
(** The underlying δ⁻ monitor, when the policy has one (introspection for
    learned-condition export; a composite exposes its first monitor). *)

(** {1 Constructors} *)

val never : unit -> t
(** The unmodified top handler: inactive, admits nothing. *)

val of_monitor : Monitor.t -> t
(** The paper's policy: admit iff the δ⁻ monitoring condition holds against
    the last l admitted activations. *)

val of_throttle : Throttle.t -> t
(** Related-work baseline: admit iff a token is available. *)

val custom :
  ?observe:(Rthv_engine.Cycles.t -> unit) ->
  ?monitor:Monitor.t ->
  name:string ->
  decide:(Rthv_engine.Cycles.t -> bool) ->
  commit:(Rthv_engine.Cycles.t -> unit) ->
  unit ->
  t
(** A user-defined policy from its two decisions: [decide ts] is the
    admission predicate (the paid check — counting is handled here, do not
    count in user code), [commit ts] records an admission the simulator
    acted on.  [observe] defaults to ignoring arrivals; [monitor] (when the
    policy wraps one) enables learned-condition introspection.  The policy
    is active; closures own their state — build one instance per source.
    Inject into a simulation via {!Hyp_sim.create}'s [?policies].

    The soundness obligations of the protocol are the caller's: [commit]
    must accept exactly the timestamps [decide] approved, and the admitted
    stream's interference must be bounded by {e some} analysis-side curve
    if latency guarantees are to be claimed (a policy the {!Config.shaping}
    grammar cannot express gets the unmonitored baseline bound from the
    {!Rthv_analysis.Bound} dispatch). *)

val budgeted : per_cycle:int -> cycle:Rthv_engine.Cycles.t -> t
(** Per-source interposition budget: admit at most [per_cycle] activations
    within each {e aligned} window [\[k·cycle, (k+1)·cycle)] — alignment is
    what {!Rthv_analysis.Independence.budget_bound}'s affine interference
    curve is proved against.  [cycle] is normally the TDMA cycle length.
    @raise Invalid_argument unless both arguments are >= 1. *)

val all_of : t list -> t
(** Conjunction: admit iff {e every} component admits.  Each component's
    {!decide} runs (and is counted) on every check, as the real top handler
    evaluates its whole predicate; {!commit} and {!observe} fan out to all;
    {!checks} is the sum; active iff all components are.
    @raise Invalid_argument on an empty list. *)

val monitor_and_bucket :
  fn:Rthv_analysis.Distance_fn.t ->
  capacity:int ->
  refill:Rthv_engine.Cycles.t ->
  t
(** [all_of] of a fixed δ⁻ monitor and a token bucket: the monitor provides
    the eq.-(14) interference bound, the bucket additionally caps bursts the
    condition permits. *)

val of_shaping : cycle:Rthv_engine.Cycles.t -> Config.shaping -> t
(** The policy a {!Config.shaping} describes; [cycle] (the TDMA cycle
    length) parameterizes budgeted policies.  A fresh instance per call. *)
