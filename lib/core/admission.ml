module Cycles = Rthv_engine.Cycles

type t = {
  name : string;
  active : bool;
  decide : Cycles.t -> bool;
  commit : Cycles.t -> unit;
  observe : Cycles.t -> unit;
  checks : unit -> int;
  monitor : Monitor.t option;
}

let name t = t.name
let active t = t.active
let decide t ts = t.decide ts
let commit t ts = t.commit ts
let observe t ts = t.observe ts
let checks t = t.checks ()
let monitor t = t.monitor

let ignore_ts (_ : Cycles.t) = ()

let never () =
  {
    name = "never";
    active = false;
    decide = (fun _ -> false);
    commit =
      (fun _ -> invalid_arg "Admission.never: nothing is ever admitted");
    observe = ignore_ts;
    checks = (fun () -> 0);
    monitor = None;
  }

let of_monitor m =
  (* Eta-expanded: a partial application of a 2-ary function would route
     every per-IRQ call through the runtime's currying trampoline. *)
  {
    name = "monitor";
    active = true;
    decide = (fun ts -> Monitor.check m ts);
    commit = (fun ts -> Monitor.admit m ts);
    observe = (fun ts -> Monitor.note_arrival m ts);
    checks = (fun () -> Monitor.checked_count m);
    monitor = Some m;
  }

let custom ?(observe = ignore_ts) ?monitor ~name ~decide ~commit () =
  (* The paid-check counter lives here, not in user code: every decide is
     one C_Mon-priced predicate execution whichever policy runs it. *)
  let checked = ref 0 in
  {
    name;
    active = true;
    decide =
      (fun ts ->
        incr checked;
        decide ts);
    commit;
    observe;
    checks = (fun () -> !checked);
    monitor;
  }

let of_throttle th =
  {
    name = "bucket";
    active = true;
    decide = (fun ts -> Throttle.check th ts);
    commit = (fun ts -> Throttle.admit th ts);
    observe = ignore_ts;
    checks = (fun () -> Throttle.checked_count th);
    monitor = None;
  }

let budgeted ~per_cycle ~cycle =
  if per_cycle < 1 then invalid_arg "Admission.budgeted: per_cycle must be >= 1";
  if cycle < 1 then invalid_arg "Admission.budgeted: cycle must be >= 1";
  (* Aligned windows [k*cycle, (k+1)*cycle): the analysis-side affine bound
     (Independence.budget_bound) counts overlapped windows, so alignment —
     not a sliding window — is what the bound is proved against. *)
  let window = ref (-1) in
  let used = ref 0 in
  let checked = ref 0 in
  let sync ts =
    let w = ts / cycle in
    if w <> !window then begin
      window := w;
      used := 0
    end
  in
  {
    name = Printf.sprintf "budget(%d/cycle)" per_cycle;
    active = true;
    decide =
      (fun ts ->
        incr checked;
        sync ts;
        !used < per_cycle);
    commit =
      (fun ts ->
        sync ts;
        if !used >= per_cycle then
          invalid_arg "Admission.budgeted: budget exhausted";
        incr used);
    observe = ignore_ts;
    checks = (fun () -> !checked);
    monitor = None;
  }

let all_of components =
  match components with
  | [] -> invalid_arg "Admission.all_of: no components"
  | [ c ] -> c
  | _ ->
      let monitor = List.find_map (fun c -> c.monitor) components in
      {
        name =
          String.concat "+" (List.map (fun c -> c.name) components);
        active = List.for_all (fun c -> c.active) components;
        decide =
          (fun ts ->
            (* Every component's check runs (and is counted) even once one
               has said no: each models a paid execution on the real top
               handler, which evaluates its whole predicate. *)
            List.fold_left (fun acc c -> c.decide ts && acc) true components);
        commit = (fun ts -> List.iter (fun c -> c.commit ts) components);
        observe = (fun ts -> List.iter (fun c -> c.observe ts) components);
        checks =
          (fun () -> List.fold_left (fun acc c -> acc + c.checks ()) 0 components);
        monitor;
      }

let monitor_and_bucket ~fn ~capacity ~refill =
  all_of
    [
      of_monitor (Monitor.fixed fn);
      of_throttle (Throttle.create ~capacity ~refill);
    ]

let of_shaping ~cycle = function
  | Config.No_shaping -> never ()
  | Config.Fixed_monitor fn -> of_monitor (Monitor.fixed fn)
  | Config.Self_learning { l; learn_events; bound } ->
      of_monitor (Monitor.self_learning ~l ~learn_events ?bound ())
  | Config.Token_bucket { capacity; refill } ->
      of_throttle (Throttle.create ~capacity ~refill)
  | Config.Budgeted { per_cycle } -> budgeted ~per_cycle ~cycle
  | Config.Monitor_and_bucket { fn; capacity; refill } ->
      monitor_and_bucket ~fn ~capacity ~refill
