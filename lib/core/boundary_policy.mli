(** What happens to a bottom handler that is still executing when its own
    partition's slot ends.

    Promoted from the former [finish_bh_at_boundary] boolean so that boundary
    semantics are a first-class policy alongside {!Admission} and
    {!Slot_plan}. *)

type t =
  | Finish_bottom_handler
      (** The paper's semantics (and the default): the running handler is
          allowed to finish before the partition switch — an overrun bounded
          by the handler's remaining budget, symmetric to the bounded spill
          of an interposed handler crossing a boundary. *)
  | Strict_cut
      (** Strict TDMA: the handler is cut at the boundary, keeps its
          remaining work at the queue head and resumes in the partition's
          next slot. *)

val default : t
(** {!Finish_bottom_handler}. *)

val defers : t -> bool
(** Whether a slot switch may be deferred for a mid-flight bottom handler. *)

val of_bool : bool -> t
(** [true] is {!Finish_bottom_handler} — the former
    [finish_bh_at_boundary] encoding. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
