module Cycles = Rthv_engine.Cycles

type t =
  | Static of Cycles.t array
  | Weighted of { cycle : Cycles.t; weights : int array }

let static slots =
  if Array.length slots = 0 then invalid_arg "Slot_plan.static: no slots";
  Array.iter
    (fun s -> if s <= 0 then invalid_arg "Slot_plan.static: non-positive slot")
    slots;
  Static (Array.copy slots)

let weighted ~cycle ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Slot_plan.weighted: no weights";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Slot_plan.weighted: non-positive weight")
    weights;
  if cycle < n then
    invalid_arg "Slot_plan.weighted: cycle shorter than one cycle per slot";
  Weighted { cycle; weights = Array.copy weights }

(* Largest-remainder apportionment of [cycle] cycles over the weights, then
   a sweep that lifts zero-length slots to one cycle at the expense of the
   largest.  Deterministic: remainder ties go to the lowest index. *)
let apportion ~cycle ~weights =
  let n = Array.length weights in
  let total = Array.fold_left ( + ) 0 weights in
  let slots = Array.make n 0 in
  let remainders = Array.make n (0, 0) in
  let allotted = ref 0 in
  for i = 0 to n - 1 do
    let exact_num = cycle * weights.(i) in
    slots.(i) <- exact_num / total;
    remainders.(i) <- (exact_num mod total, i);
    allotted := !allotted + slots.(i)
  done;
  let order = Array.copy remainders in
  Array.sort
    (fun (ra, ia) (rb, ib) -> if rb <> ra then compare rb ra else compare ia ib)
    order;
  let leftover = cycle - !allotted in
  for k = 0 to leftover - 1 do
    let _, i = order.(k mod n) in
    slots.(i) <- slots.(i) + 1
  done;
  let largest () =
    let best = ref 0 in
    Array.iteri (fun i s -> if s > slots.(!best) then best := i) slots;
    !best
  in
  for i = 0 to n - 1 do
    if slots.(i) = 0 then begin
      let j = largest () in
      slots.(j) <- slots.(j) - 1;
      slots.(i) <- slots.(i) + 1
    end
  done;
  slots

let slots = function
  | Static slots -> Array.copy slots
  | Weighted { cycle; weights } -> apportion ~cycle ~weights

let partitions = function
  | Static s -> Array.length s
  | Weighted { weights; _ } -> Array.length weights

let cycle_length = function
  | Static s -> Array.fold_left Cycles.( + ) 0 s
  | Weighted { cycle; _ } -> cycle

let tdma plan = Tdma.make (slots plan)

let pp ppf plan =
  match plan with
  | Static s ->
      Format.fprintf ppf "static [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Cycles.pp)
        (Array.to_list s)
  | Weighted { cycle; weights } ->
      Format.fprintf ppf "weighted (cycle %a, weights [%a])" Cycles.pp cycle
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Format.pp_print_int)
        (Array.to_list weights)
