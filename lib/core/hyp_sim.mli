(** The hypervisor simulation.

    A cycle-accurate single-core model of the uC/OS-MMU-style hypervisor of
    Section 3, with the original (Figure 4a) or modified (Figure 4b) top
    handler depending on the configuration:

    - partitions run under static TDMA; every slot begins with a context
      switch of C_ctx paid from inside the slot;
    - hypervisor work (top handlers, monitor checks, scheduler manipulation,
      context switches) executes at the highest priority, FIFO,
      non-preemptible by partition work;
    - each IRQ raises an interrupt-controller line (non-counting pending
      flag); the top handler costs C_TH, acks the line, pushes an event into
      the subscriber's FIFO interrupt queue, reprograms the source's trigger
      timer with the next pre-generated interarrival, and routes the event:
      direct (subscriber owns the current slot), interposed (foreign slot,
      monitor admits) or delayed;
    - an interposed bottom handler executes in the subscriber's context for
      at most C_BH of {e execution time} (budget paused while preempted by
      top handlers), bracketed by C_sched + 2 * C_ctx (equation (13));
    - admission additionally requires that no other interposition is in
      flight (at most one at a time); an interposition still running at a
      slot boundary completes its bounded budget, charged to the incoming
      slot;
    - a bottom handler executing when its own slot ends is allowed to finish
      (switch deferred by at most its remaining budget) under the default
      {!Boundary_policy.Finish_bottom_handler}; under
      {!Boundary_policy.Strict_cut} it is cut, keeps its remaining work at
      the queue head and resumes in its partition's next slot.

    Internally this module is only the stepping engine and a façade: routing
    decisions live in {!Sim_route}, boundary handling in {!Sim_boundary},
    runtime state in {!Sim_state}, statistics assembly in {!Sim_stats}.  The
    policy questions — admit this interposition?  what are the slot lengths?
    cut the handler at the boundary? — are answered by the {!Admission},
    {!Slot_plan} and {!Boundary_policy} values built from the configuration,
    so new policies plug in without touching any code here. *)

type t = Sim_state.t

type stats = Sim_stats.t = {
  completed_irqs : int;
  direct : int;
  interposed : int;
  delayed : int;
  slot_switches : int;  (** Context switches at TDMA slot boundaries. *)
  interposition_switches : int;
      (** Context switches caused by interposed handling (2 per complete
          interposition). *)
  interpositions_started : int;
  boundary_crossings : int;
      (** Interpositions still running when a slot boundary fired; the
          bounded spill is charged to the incoming slot. *)
  bh_boundary_deferrals : int;
      (** Slot switches deferred (by at most the handler's remaining budget)
          because the owner was mid-bottom-handler. *)
  monitor_checks : int;
  admissions : int;
  denials : int;
  coalesced_irqs : int;  (** IRQs lost to an already-pending line. *)
  stolen_total : Rthv_engine.Cycles.t array;
      (** Per partition: total foreign interposition time consumed during
          its slots (the interference I_p of equation (2)). *)
  stolen_slot_max : Rthv_engine.Cycles.t array;
      (** Per partition: maximum stolen time in any single slot instance —
          to compare against equation (14) over a window of T_i. *)
  sim_time : Rthv_engine.Cycles.t;  (** Final simulated clock. *)
}

val create :
  ?trace:Hyp_trace.t ->
  ?policies:(string * Admission.t) list ->
  ?mode:Rthv_engine.Fast_forward.mode ->
  ?retain:bool ->
  Config.t ->
  t
(** [?trace] attaches a hypervisor event trace buffer; every scheduling
    decision (slot switches, deferrals, top handlers, monitor decisions,
    interpositions, completions) is recorded into it.  When an audit hook is
    installed (see {!set_audit_hook}) and no trace is passed, a buffer of
    {!audit_trace_capacity} entries is attached automatically so the hook has
    something to audit.

    [?policies] overrides the admission policy of the named sources,
    bypassing the {!Config.shaping} dispatch — the injection point for
    policies the configuration grammar cannot express ({!Admission.custom}).
    Sources not named keep the policy their shaping describes.  Note that
    the static linter and the trace-invariant oracle derive their bounds
    from the configuration: a run whose real policy is an override should
    not be audited against shaping-derived rules unless the override is at
    least as strict as the declared shaping.

    [?mode] selects the stepping engine (see {!Rthv_engine.Fast_forward}):
    the reference [Step] engine or the default [Fast_forward] engine.  Both
    produce byte-identical traces, records, statistics and telemetry — the
    golden and differential test suites enforce it; the default is
    {!Rthv_engine.Fast_forward.default}, which honours the [RTHV_SIM_MODE]
    environment variable.

    [?retain] (default [true]): when [false], per-IRQ completion records
    (and the guests' completion lists) are not accumulated — streaming runs
    over millions of IRQs keep O(1) memory.  {!records} then returns [[]];
    {!stats} is unaffected (completion counts are maintained separately).
    @raise Invalid_argument if [Config.validate] fails or a policy names an
    unknown source. *)

val mode : t -> Rthv_engine.Fast_forward.mode
(** The stepping engine this simulation was created with. *)

val set_audit_hook : (Config.t -> Hyp_trace.t -> unit) option -> unit
(** Install (or clear) the global post-run audit hook.  While installed,
    {!run} invokes it exactly once per simulation — after the run finishes —
    with the simulation's configuration and its event trace.  Simulations
    created before the hook was installed are audited too if they carry a
    trace buffer.  [Rthv_check.Audit_hook] uses this to run the
    trace-invariant oracle across entire test suites. *)

val audit_hook_installed : unit -> bool

val audit_trace_capacity : int
(** Ring-buffer capacity of auto-attached audit traces (2^20 entries). *)

val run : ?horizon:Rthv_engine.Cycles.t -> t -> unit
(** Run until every generated IRQ has completed its bottom handler (and all
    interarrival arrays are exhausted), or until [horizon] (default: one
    simulated hour).  Idempotent once finished. *)

val records : t -> Irq_record.t list
(** Completed IRQ records, in arrival order. *)

val stats : t -> stats

val guest : t -> int -> Rthv_rtos.Guest.t
(** Partition [i]'s guest, for task-level inspection. *)

val ipc : t -> Rthv_rtos.Ipc.t
(** The hypervisor's IPC port registry. *)

val port : t -> string -> Rthv_rtos.Ipc.port
(** Look up a declared port.  @raise Not_found if undeclared. *)

val admission : t -> source:string -> Admission.t option
(** The named source's admission policy instance (introspection — checks,
    underlying monitor). *)

val monitor : t -> source:string -> Monitor.t option
(** The underlying delta^- monitor of the named source's admission policy,
    if it has one. *)

val now : t -> Rthv_engine.Cycles.t
