module Json = Rthv_obs.Json

(* Process-wide switch, normally configured once at startup (before worker
   domains spawn).  The per-run state lives in DLS below, so concurrent
   sweep workers each track their own flight ring. *)
type cfg = { mutable on : bool; mutable cap : int; mutable out_dir : string }

let cfg = { on = false; cap = 4096; out_dir = "." }

let () =
  match Sys.getenv_opt "RTHV_FLIGHT_DIR" with
  | Some dir when dir <> "" ->
      cfg.on <- true;
      cfg.out_dir <- dir
  | Some _ | None -> ()

let enable ?(capacity = 4096) ~dir () =
  if capacity <= 0 then
    invalid_arg "Flight_recorder.enable: capacity must be positive";
  cfg.on <- true;
  cfg.cap <- capacity;
  cfg.out_dir <- dir

let disable () = cfg.on <- false
let enabled () = cfg.on
let capacity () = cfg.cap

type local = {
  mutable trace : Hyp_trace.t option;
  mutable seq : int;
  mutable last : string option;
}

let local_key =
  Domain.DLS.new_key (fun () -> { trace = None; seq = 0; last = None })

let note_run trace =
  if cfg.on then (Domain.DLS.get local_key).trace <- Some trace

let last_dump () = (Domain.DLS.get local_key).last

let sanitize reason =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    reason

let meta_line ~reason ~detail trace =
  Json.to_string
    (Json.Obj
       ([
          ("ev", Json.String "meta");
          ("schema", Json.String "rthv-flight/1");
          ("reason", Json.String reason);
        ]
       @ (match detail with
         | Some d -> [ ("detail", Json.String d) ]
         | None -> [])
       @ [
           ("recorded", Json.Int (Hyp_trace.recorded trace));
           ("dropped", Json.Int (Hyp_trace.dropped trace));
           ("capacity", Json.Int (Hyp_trace.capacity trace));
         ]))

let ensure_dir dir =
  if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let dump ~reason ?detail () =
  if not cfg.on then None
  else
    let local = Domain.DLS.get local_key in
    match local.trace with
    | None -> None
    | Some trace -> (
        let seq = local.seq in
        local.seq <- seq + 1;
        let path =
          Filename.concat cfg.out_dir
            (Printf.sprintf "flight-d%d-%d-%s.jsonl"
               (Domain.self () :> int)
               seq (sanitize reason))
        in
        (* The recorder must never mask the failure that triggered it, so
           file-system trouble degrades to a warning on stderr. *)
        try
          ensure_dir cfg.out_dir;
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (meta_line ~reason ~detail trace);
              output_char oc '\n';
              output_string oc (Trace_export.jsonl_string trace));
          local.last <- Some path;
          Some path
        with Sys_error msg ->
          Printf.eprintf "flight recorder: cannot write %s: %s\n%!" path msg;
          None)
