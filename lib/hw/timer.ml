module Simulator = Rthv_engine.Simulator

type t = {
  sim : Simulator.t;
  intc : Intc.t;
  line : Intc.line;
  mutable armed : (Simulator.handle * Rthv_engine.Cycles.t) option;
}

let create ~sim ~intc ~line =
  ignore (Intc.lines intc > line || invalid_arg "Timer.create: bad line" : bool);
  { sim; intc; line; armed = None }

let cancel t =
  match t.armed with
  | None -> ()
  | Some (handle, _) ->
      Simulator.cancel t.sim handle;
      t.armed <- None

let program t ~delay =
  cancel t;
  let at = Rthv_engine.Cycles.( + ) (Simulator.now t.sim) delay in
  let fire sim =
    ignore (sim : Simulator.t);
    t.armed <- None;
    Intc.raise_line t.intc t.line
  in
  let handle = Simulator.schedule t.sim ~at fire in
  t.armed <- Some (handle, at)

let is_armed t = Option.is_some t.armed
let deadline t = Option.map snd t.armed

(* The timer's next-event query: when will this device next do anything?
   Identical to [deadline] today (a one-shot timer's only event is its
   expiry), but named for the engine-facing contract — fast-forward jumps
   are bounded by the earliest [next_fire_at] over all devices. *)
let next_fire_at = deadline

let timestamp ~sim = Simulator.now sim
