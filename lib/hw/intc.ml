type line = int

type stats = {
  raised : int;
  delivered : int;
  coalesced : int;
  masked_raises : int;
}

type t = {
  pending : bool array;
  masked : bool array;
  mutable handler : (line -> unit) option;
  mutable raised : int;
  mutable delivered : int;
  mutable coalesced : int;
  mutable masked_raises : int;
}

let create ~lines =
  if lines <= 0 then invalid_arg "Intc.create: lines must be positive";
  {
    pending = Array.make lines false;
    masked = Array.make lines false;
    handler = None;
    raised = 0;
    delivered = 0;
    coalesced = 0;
    masked_raises = 0;
  }

let lines t = Array.length t.pending

let check_line t line =
  if line < 0 || line >= Array.length t.pending then
    invalid_arg (Printf.sprintf "Intc: line %d out of range" line)

let set_handler t handler = t.handler <- Some handler

let deliver t line =
  match t.handler with
  | None -> ()
  | Some handler ->
      t.delivered <- t.delivered + 1;
      handler line

let raise_line t line =
  check_line t line;
  t.raised <- t.raised + 1;
  if t.pending.(line) then t.coalesced <- t.coalesced + 1
  else begin
    t.pending.(line) <- true;
    if t.masked.(line) then t.masked_raises <- t.masked_raises + 1
    else deliver t line
  end

let ack t line =
  check_line t line;
  t.pending.(line) <- false

let mask t line =
  check_line t line;
  t.masked.(line) <- true

let unmask t line =
  check_line t line;
  if t.masked.(line) then begin
    t.masked.(line) <- false;
    if t.pending.(line) then deliver t line
  end

let is_pending t line =
  check_line t line;
  t.pending.(line)

let any_pending t =
  let n = Array.length t.pending in
  let rec scan i = i < n && (t.pending.(i) || scan (i + 1)) in
  scan 0

let is_masked t line =
  check_line t line;
  t.masked.(line)

let stats t =
  {
    raised = t.raised;
    delivered = t.delivered;
    coalesced = t.coalesced;
    masked_raises = t.masked_raises;
  }
