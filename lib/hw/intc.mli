(** Interrupt controller model.

    Models the relevant behaviour of the VIC-style controller on the paper's
    platform:

    - one pending flag per line, and the flags are {e not counting}: raising a
      line that is already pending coalesces into a single delivery (this is
      the paper's argument for why top handlers of foreign partitions must be
      allowed to run — masking a source risks losing IRQs);
    - per-line masking;
    - delivery calls a registered handler (the hypervisor's top-handler entry
      point), which must acknowledge the line.

    Only the hypervisor has direct access to the controller; partitions see
    "emulated" IRQs through their queues (Figure 2 of the paper). *)

type line = int
(** Interrupt line number, [0 .. lines-1]. *)

type t

type stats = {
  raised : int;  (** Total [raise_line] calls. *)
  delivered : int;  (** Handler invocations. *)
  coalesced : int;  (** Raises absorbed by an already-pending flag. *)
  masked_raises : int;  (** Raises that set the flag while masked. *)
}

val create : lines:int -> t
(** A controller with [lines] lines, all unmasked, none pending, no handler. *)

val lines : t -> int

val set_handler : t -> (line -> unit) -> unit
(** Register the delivery target.  Delivery happens synchronously inside
    [raise_line] / [unmask] when the line is unmasked and becomes pending. *)

val raise_line : t -> line -> unit
(** Hardware raises the line.  If the line is already pending the raise is
    coalesced (non-counting flag).  If unmasked, the handler is invoked. *)

val ack : t -> line -> unit
(** Top handler clears the pending flag ("resetting IRQ flags"). *)

val mask : t -> line -> unit

val unmask : t -> line -> unit
(** Unmasking a pending line delivers it immediately. *)

val is_pending : t -> line -> bool

val any_pending : t -> bool
(** Whether any line is pending (masked or not) — the controller-level
    next-event query: a fast-forwarding engine may only jump over an
    interval when no pending flag could deliver within it. *)

val is_masked : t -> line -> bool

val stats : t -> stats
