(** Programmable timer model.

    The paper triggers experiment IRQs from one of the processor's timers,
    reprogramming it inside the IRQ top handler with the next (pre-generated)
    interarrival time, and reads timestamps from a second free-running timer.
    This module provides both: a one-shot programmable timer bound to an
    interrupt-controller line, and a timestamp counter which is just the
    simulation clock. *)

type t

val create :
  sim:Rthv_engine.Simulator.t -> intc:Intc.t -> line:Intc.line -> t
(** A one-shot timer that raises [line] on [intc] when it expires. *)

val program : t -> delay:Rthv_engine.Cycles.t -> unit
(** Arm the timer to fire [delay] cycles from now.  Reprogramming an armed
    timer replaces the previous deadline (one-shot semantics).
    A [delay] of zero fires at the current instant, on the next simulator
    step. *)

val cancel : t -> unit

val is_armed : t -> bool

val deadline : t -> Rthv_engine.Cycles.t option
(** Absolute expiry time of the armed timer, if armed. *)

val next_fire_at : t -> Rthv_engine.Cycles.t option
(** The device's next-event query: the earliest instant at which it can
    affect the system — for a one-shot timer, exactly {!deadline}.  An
    event-compressing engine may jump the clock to the minimum
    [next_fire_at] over all devices without changing any observable. *)

val timestamp : sim:Rthv_engine.Simulator.t -> Rthv_engine.Cycles.t
(** Free-running timestamp counter: the current simulated time.  Matches the
    paper's second timer used by top and bottom handlers to measure IRQ
    latency. *)
