(** Interval-domain abstract interpreter over the policy-parameterized
    configuration graph.

    The linter's closed-form rules each evaluate one paper equation in
    isolation; this module runs the whole configuration through a generic
    worklist fixed-point and produces, for every source and partition, an
    {e interval} of interference rather than a single bound:

    - the {b upper} end is the proved eq.-(14)-style bound of the source's
      admission policy ({!Rthv_analysis.Bound.interference}), [None] when no
      bound exists (unshaped-opaque or degenerate conditions);
    - the {b lower} end is the {e achievable} interference realised by the
      greedy earliest-conforming adversarial schedule
      ({!adversarial_schedule}, ROADMAP item 4's back-to-back δ⁻-conforming
      burst) under the hypervisor's serialization rule (at most one
      interposition in flight, so consecutive admissions are at least one
      {!footprint} apart).

    A refutation derived from the lower end is {e witnessable} — the
    schedule that produced it replays through {!Rthv_core.Hyp_sim}
    ({!Witness}); a certification derived from the upper end is
    {e proof-carrying} — the certificate artifact re-derives it without
    re-running the analysis ({!Certify}).

    The fixed-point is genuinely a dataflow problem, not a map: a source's
    eq.-(16) per-instance gate depends on which {e other} sources can
    interpose at all, partition facts fold every source's interval, and the
    system utilisation folds both — {!Fix.solve} propagates until stable.

    The shared policy primitives ([c_bh_eff], [bound_policy], …) live here
    and are re-exported by {!Lint} for compatibility. *)

module Itv : sig
  (** Closed integer intervals [\[lo, hi\]] with [hi = None] meaning
      unbounded above.  [lo] is an achievability claim (a witness can
      realise at least this much), [hi] a soundness claim (no run exceeds
      it); [lo <= hi] is the analyzer's internal consistency invariant that
      [Certify.recheck] re-validates. *)

  type t = { lo : int; hi : int option }

  val exact : int -> t
  val between : int -> int -> t
  val unbounded : lo:int -> t
  val zero : t
  val add : t -> t -> t
  val scale : t -> int -> t
  val join : t -> t -> t
  (** Smallest interval containing both. *)

  val consistent : t -> bool
  (** [lo >= 0] and [lo <= hi] when bounded. *)

  val pp : Format.formatter -> t -> unit
end

module Fix : sig
  (** A tiny generic worklist fixed-point solver over string-named nodes.
      Deterministic: nodes are seeded in declaration order and re-queued
      FIFO, so iteration counts and results are reproducible. *)

  type 'a system = {
    nodes : string list;  (** In evaluation-seed order. *)
    deps : string -> string list;
        (** Nodes whose value this node's transfer reads. *)
    init : string -> 'a;
    transfer : (string -> 'a) -> string -> 'a;
        (** Recompute a node from current neighbour values. *)
    equal : 'a -> 'a -> bool;
  }

  val solve : 'a system -> (string -> 'a) * int
  (** Least fixed-point by worklist iteration; returns the solution and the
      number of transfer applications.  @raise Failure on divergence (a
      non-monotone system). *)
end

type verdict = Proved | Refuted | Unknown

val verdict_name : verdict -> string

type source_fact = {
  sf_name : string;
  sf_line : int;
  sf_subscriber : int;
  sf_policy : Rthv_analysis.Bound.policy;
  sf_c_bh_eff : Rthv_engine.Cycles.t;  (** Equation (13). *)
  sf_footprint : Rthv_engine.Cycles.t;
      (** Serialized cost of one admitted interposition,
          [C_TH + C_Mon + C'_BH]. *)
  sf_degenerate : bool;
      (** The static condition exists but admits unbounded load. *)
  sf_active : bool;
      (** The source can interpose at all: shaped, and its workload fires. *)
  sf_per_instance : bool;
      (** The eq.-(16) per-instance gate holds: the policy has a
          per-instance condition {e and} no other active source interposes
          (the sole-interposer assumption, RTHV016). *)
  sf_admissions : (Rthv_engine.Cycles.t * Itv.t) list;
      (** Per analysis window: interval of admitted interpositions. *)
  sf_interference : (Rthv_engine.Cycles.t * Itv.t) list;
      (** Per analysis window: interval of stolen time (eq. 14). *)
  sf_ceiling : (Rthv_engine.Cycles.t * int) list;
      (** Per analysis window: the serialization ceiling — more completions
          than this cannot physically fit (RTHV019's slack detector). *)
  sf_util_loss : float option;
      (** Long-term utilisation loss claimed by the closed-form rules
          (RTHV004's per-source term); [None] when unbounded/degenerate. *)
  sf_workload_max_per_cycle : int option;
      (** Densest aligned-cycle arrival count of the pre-generated workload
          (RTHV015's envelope); [None] when the source never fires. *)
}

type partition_fact = {
  pf_index : int;
  pf_name : string;
  pf_declared : Rthv_engine.Cycles.t;  (** The partition record's slot. *)
  pf_slot : Rthv_engine.Cycles.t;  (** Effective slot actually scheduled. *)
  pf_share : float;
      (** TDMA supply share [(slot - C_ctx) / T_TDMA], 0 when the slot
          cannot cover the entry switch. *)
  pf_task_util : float;
  pf_demand : float;
      (** Task utilisation plus the sustained bottom-half demand of the
          sources subscribed to this partition (RTHV020). *)
  pf_interference : Itv.t;
      (** Foreign-source interference interval in one slot window. *)
  pf_verdict : verdict;
      (** [Proved] iff the all-curves certificate holds and every
          interferer is bounded; [Refuted] on a demand or certificate
          refutation; [Unknown] when an unbounded interferer blocks both. *)
}

type t = {
  cycle : Rthv_engine.Cycles.t;
  c_ctx : Rthv_engine.Cycles.t;
  windows : Rthv_engine.Cycles.t list;
      (** The analysis windows: every distinct effective slot plus the
          cycle, ascending — the same set the trace oracle's RTHV104
          audits. *)
  sources : source_fact list;  (** In configuration order. *)
  partitions : partition_fact list;  (** In TDMA order. *)
  util_loss_closed : float;
      (** The closed-form total of RTHV004 — byte-compatible with the
          pre-Absint rule. *)
  util : float * float option;
      (** Achievable/proved interval of total interference utilisation. *)
  closed : Rthv_analysis.Certificate.t;
      (** The grant-only certificate (RTHV005's proof obligation). *)
  full_verdicts : Rthv_analysis.Certificate.verdict list option;
      (** The interval certificate: every active source's policy curve
          summed ({!Rthv_analysis.Certificate.analyse_curves}); [None] when
          an active source has no curve (nothing can be proved). *)
  iterations : int;  (** Transfer applications until the fixed-point. *)
}

val analyze : Rthv_core.Config.t -> t
(** Run the abstract interpretation.  The configuration must pass
    [Config.validate] (the linter's RTHV001 short-circuits before calling
    this). *)

(** {2 Shared policy primitives} *)

val c_bh_eff :
  platform:Rthv_hw.Platform.t -> c_bh:Rthv_engine.Cycles.t -> Rthv_engine.Cycles.t
(** Equation (13): [C'_BH = C_BH + C_sched + 2*C_ctx]. *)

val footprint :
  platform:Rthv_hw.Platform.t ->
  c_th:Rthv_engine.Cycles.t ->
  c_bh_eff:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t
(** [C_TH + C_Mon + C'_BH]: the serialized wall-clock cost of one admitted
    interposition, i.e. the minimum spacing at which back-to-back
    activations are all admitted despite the
    at-most-one-interposition-in-flight rule.  Used as the adversarial
    schedule's [min_gap] and as RTHV019's physical ceiling. *)

val static_condition :
  Rthv_core.Config.shaping -> Rthv_analysis.Distance_fn.t option
(** See {!Lint.static_condition}. *)

val degenerate : Rthv_analysis.Distance_fn.t -> bool

val shaped : Rthv_core.Config.source -> bool

val bound_policy :
  cycle:Rthv_engine.Cycles.t ->
  Rthv_core.Config.shaping ->
  Rthv_analysis.Bound.policy

val adversarial_schedule :
  policy:Rthv_analysis.Bound.policy ->
  footprint:Rthv_engine.Cycles.t ->
  horizon:Rthv_engine.Cycles.t ->
  Rthv_engine.Cycles.t list
(** Greedy earliest arrival times (ascending, starting at 1) admitted by the
    policy when spaced at least [footprint] apart, up to [horizon].  Returns
    [[]] for policies that never interpose ([Unshaped]) or whose admission
    cannot be predicted ([Shaped_opaque]).  This is the witness
    synthesizer's arrival source and the lower-interval generator: every
    returned time is an admission the simulator will actually grant. *)

val max_in_window :
  Rthv_engine.Cycles.t list -> window:Rthv_engine.Cycles.t -> int
(** Densest count of the (sorted) timestamps in any half-open window. *)
