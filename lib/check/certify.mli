(** Proof-carrying certification artifacts — schema ["rthv-cert/1"].

    [rthv_lint --certify] runs the full pipeline (validation → {!Lint} →
    {!Absint} → {!Witness}) once and serializes everything a reviewer
    needs into one self-contained JSON artifact: the configuration (via
    {!Config_codec}), the interval analysis (every per-window admission
    and interference interval, per-partition verdicts), the sorted
    deduplicated diagnostics, and — for every Error with a witness
    channel — the synthesized adversarial arrival streams together with
    the oracle's confirmation.

    {!recheck} then re-validates an artifact {e without re-running the
    analysis}: it re-derives the tamper digest, re-decodes and re-encodes
    the embedded configuration, checks every serialized interval for
    {!Absint.Itv.consistent}, checks verdict/diagnostic cross-consistency
    and checks that every channelled Error carries a confirmed witness
    whose arrival digest matches its streams.  A single flipped byte in
    any load-bearing field breaks either the JSON, the digest, or a
    consistency check. *)

val schema : string
(** ["rthv-cert/1"]. *)

val build : ?scenario:string -> Rthv_core.Config.t -> (Rthv_obs.Json.t, string) result
(** Produce the artifact.  Invalid configurations (RTHV001) certify with a
    [null] analysis section and no witnesses; [Error _] only when the
    configuration cannot serialize at all ({!Config_codec.to_json}). *)

val build_string : ?scenario:string -> Rthv_core.Config.t -> (string, string) result

val recheck : Rthv_obs.Json.t -> (unit, string list) result
(** Structural re-validation; [Error vs] lists every violated obligation. *)

val recheck_string : string -> (unit, string list) result
(** Parse then {!recheck}; a parse failure is a one-element violation
    list. *)
