type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  loc : string;
  message : string;
  hint : string option;
}

let make severity ~code ~loc ?hint message =
  { code; severity; loc; message; hint }

let error = make Error
let warning = make Warning
let info = make Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let is_error d = d.severity = Error
let errors = List.filter is_error
let count severity diagnostics =
  List.length (List.filter (fun d -> d.severity = severity) diagnostics)

let sort diagnostics =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.loc b.loc
          | c -> c)
      | c -> c)
    diagnostics

let dedupe diagnostics =
  List.fold_left
    (fun acc d ->
      match acc with
      | (d', n) :: rest when d' = d -> (d', n + 1) :: rest
      | _ -> (d, 1) :: acc)
    [] (sort diagnostics)
  |> List.rev

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name d.severity) d.code d.loc
    d.message;
  match d.hint with
  | Some hint -> Format.fprintf ppf "@.  hint: %s" hint
  | None -> ()

let pp_counted ppf (d, n) =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_name d.severity) d.code d.loc
    d.message;
  if n > 1 then Format.fprintf ppf "  (x%d)" n;
  match d.hint with
  | Some hint -> Format.fprintf ppf "@.  hint: %s" hint
  | None -> ()

let pp_report ppf diagnostics =
  List.iter
    (fun entry -> Format.fprintf ppf "%a@." pp_counted entry)
    (dedupe diagnostics);
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@."
    (count Error diagnostics)
    (count Warning diagnostics)
    (count Info diagnostics)

(* Minimal RFC 8259 string escaping; diagnostics are ASCII in practice. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(extra = []) d =
  let field (k, v) = Printf.sprintf "%S:\"%s\"" k (json_escape v) in
  let fields =
    List.map field extra
    @ [
        field ("code", d.code);
        field ("severity", severity_name d.severity);
        field ("loc", d.loc);
        field ("message", d.message);
      ]
    @ (match d.hint with Some h -> [ field ("hint", h) ] | None -> [])
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json ?extra diagnostics =
  "[" ^ String.concat "," (List.map (to_json ?extra) diagnostics) ^ "]"
