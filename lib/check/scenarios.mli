(** Canonical example configurations.

    One source of truth for the configurations the examples, the
    [rthv_lint] CLI and the tests share: the quickstart two-partition
    system, the ARINC653-style avionics scenario, the Appendix-A automotive
    self-learning scenario, and a deliberately broken configuration that
    demonstrates the static rules. *)

val quickstart_d_min : Rthv_engine.Cycles.t
(** The quickstart's granted d_min (2 ms), also the workload mean. *)

val quickstart : ?monitored:bool -> unit -> Rthv_core.Config.t
(** Two 5 ms partitions; partition "io" subscribes a NIC source with
    exponential arrivals.  [monitored] (default true) selects the d_min
    monitor over the unshaped baseline. *)

val avionics_datalink_bh_us : int
(** The datalink bottom handler's WCET in microseconds (60 µs). *)

val avionics_c_bh_eff : unit -> Rthv_engine.Cycles.t
(** Eq. (13) effective cost of one admitted datalink interposition on the
    ARM926ej-s platform ({!Lint.c_bh_eff}). *)

val avionics_d_min : unit -> Rthv_engine.Cycles.t
(** The datalink's granted d_min, sized by
    {!Rthv_analysis.Independence.required_d_min} for a 3 % ceiling. *)

val avionics_ima : unit -> Rthv_core.Config.t
(** Four partitions of mixed criticality with guest task sets; a delayed
    sensor bus and a monitored datalink. *)

type automotive = {
  auto_config : Rthv_core.Config.t;
  auto_learn_events : int;
  auto_recorded : Rthv_analysis.Distance_fn.t;
      (** Envelope recorded offline from the learning prefix. *)
  auto_bound : Rthv_analysis.Distance_fn.t;
      (** The 25 % load cap handed to Algorithm 2. *)
}

val automotive_parts : unit -> automotive
(** The Appendix-A scenario with its learning artefacts exposed (the
    example prints them). *)

val automotive_ecu : unit -> Rthv_core.Config.t
(** [(automotive_parts ()).auto_config]. *)

val conformant : unit -> Rthv_core.Config.t
(** The paper's conforming workload (Section 6.1, scenario 2): the
    quickstart topology with exponential interarrivals clamped from below
    to the granted d_min, so every activation satisfies the monitoring
    condition and the eq.-(16) bound applies per interposed instance. *)

val mixed_policies_d_min : Rthv_engine.Cycles.t
(** The camera source's granted d_min in {!mixed_policies} (2 ms). *)

val mixed_policies : unit -> Rthv_core.Config.t
(** The policy-core extensions in one configuration: a weighted slot plan
    (3:3:1 over a 14 ms cycle), a composite monitor-AND-bucket source with
    a provably vacuous bucket, and a per-cycle interposition-budget
    source. *)

val demo_bad : unit -> Rthv_core.Config.t
(** A structurally valid configuration built to trip the closed-form
    static rules — the linter's demonstration input.  The authoritative
    list of rules it fires is derived by running {!Lint.analyze}, not
    maintained here; the tests pin it that way. *)

val demo_policy_bad : unit -> Rthv_core.Config.t
(** A configuration that is clean under the grant-only closed forms but
    refuted by the interval analysis over the full policy set: a weighted
    plan starving a subscriber (RTHV017), a per-cycle budget swallowing
    foreign slots (RTHV013), and a task set that passes the grant-only
    certificate yet fails the policy-curve budget (RTHV018). *)

val good : (string * (unit -> Rthv_core.Config.t)) list
(** [("quickstart", _); ("conformant", _); ("avionics_ima", _);
    ("automotive_ecu", _); ("mixed_policies", _)] — the scenarios expected
    to lint clean of errors. *)

val bad : (string * (unit -> Rthv_core.Config.t)) list
(** [("demo_bad", _); ("demo_policy_bad", _)] — the scenarios expected to
    lint with at least one error. *)

val all : (string * (unit -> Rthv_core.Config.t)) list
(** {!good} plus {!bad}. *)

val find : string -> (unit -> Rthv_core.Config.t) option
(** Look up a scenario in {!all} by name. *)
