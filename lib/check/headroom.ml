module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Arrival_curve = Rthv_analysis.Arrival_curve
module Busy_window = Rthv_analysis.Busy_window
module Irq_latency = Rthv_analysis.Irq_latency
module Tdma_interference = Rthv_analysis.Tdma_interference
module Bound = Rthv_analysis.Bound
module Registry = Rthv_obs.Registry
module Labels = Rthv_obs.Labels
module Metric = Rthv_obs.Metric
module Quantile = Rthv_obs.Quantile

type bound = {
  hb_source : string;
  hb_class : string;
  hb_bound_us : float option;
}

let classes = [ "direct"; "interposed"; "delayed" ]

(* The analysis needs an upper arrival model per source.  The configuration
   carries the exact pre-generated distances, so learn an l-entry
   minimum-distance function (Algorithm 1) from the cumulative raise times.
   This is sound in both arrival modes: Reprogram only stretches gaps (the
   next raise is programmed from within the top handler), and Absolute
   coalescing only drops events — either way the real stream is a
   subsequence of the modelled one. *)
let raise_times (s : Config.source) =
  let _, rev_times =
    Array.fold_left
      (fun (now, acc) d ->
        let now = Cycles.( + ) now d in
        (now, now :: acc))
      (Cycles.zero, []) s.Config.interarrivals
  in
  List.rev rev_times

let arrival_model s = Arrival_curve.of_trace ~l:64 (raise_times s)

(* Equation (16) bounds an activation handled by its own interposition
   (case 1).  That is guaranteed per-instance only when the whole stream
   satisfies the monitoring condition AND the policy provably admits every
   conforming activation (Bound.per_instance_condition) — otherwise an
   admitted activation can queue behind earlier delayed ones and complete in
   the subscriber's slot, where only the baseline bound applies.
   Conformance of the programmed distances implies conformance of the actual
   raises in both arrival modes (gaps only stretch, coalescing only drops
   events).

   One more denial source exists beyond the policy itself: the hypervisor
   runs at most one interposition at a time, so with a second shaped source
   in the system a conforming activation can be denied because the OTHER
   source's interposition is pending — and a later admitted activation of
   this source then queues behind the denied one and completes in the
   subscriber's slot.  The paper's setup has a single monitored source, so
   eq. (16) applies per-instance only when this source is the sole shaped
   source; otherwise we fall back to the monitored baseline. *)
let sole_interposer (config : Config.t) (s : Config.source) =
  not
    (List.exists
       (fun (o : Config.source) ->
         o.Config.line <> s.Config.line && Lint.shaped o)
       config.Config.sources)

let stream_conforms (s : Config.source) fn =
  Rthv_analysis.Distance_fn.conforms fn (raise_times s)

let bounds (config : Config.t) =
  let costs = Irq_latency.costs_of_platform config.Config.platform in
  let tdma = Config.tdma config in
  let cycle = Rthv_core.Tdma.cycle_length tdma in
  (* Interferer top handlers of monitored sources run the modified top
     handler: inflate their C_TH by C_Mon (eq. 15) in the caller, as the
     analysis expects. *)
  let interferer_model (s : Config.source) =
    let c_th =
      if Lint.shaped s then Cycles.( + ) s.Config.c_th costs.Irq_latency.c_mon
      else s.Config.c_th
    in
    {
      Irq_latency.name = s.Config.name;
      arrival = arrival_model s;
      c_th;
      c_bh = s.Config.c_bh;
    }
  in
  let self_model (s : Config.source) =
    {
      Irq_latency.name = s.Config.name;
      arrival = arrival_model s;
      c_th = s.Config.c_th;
      c_bh = s.Config.c_bh;
    }
  in
  List.concat_map
    (fun (s : Config.source) ->
      let self = self_model s in
      let interferers =
        List.filter_map
          (fun (o : Config.source) ->
            if o.Config.line = s.Config.line then None
            else Some (interferer_model o))
          config.Config.sources
      in
      let slot =
        Cycles.( - )
          (Rthv_core.Tdma.slot_length tdma s.Config.subscriber)
          costs.Irq_latency.c_ctx
      in
      let analysis_tdma = Tdma_interference.make ~cycle ~slot in
      let policy = Lint.bound_policy ~cycle s.Config.shaping in
      let per_instance fn = sole_interposer config s && stream_conforms s fn in
      let eval cls =
        match
          Bound.compute
            (Bound.for_class policy ~stream_conforms:per_instance cls)
            ~tdma:analysis_tdma ~costs ~self ~interferers
        with
        | Ok r -> Some (Cycles.to_us r.Busy_window.response_time)
        | Error _ -> None
      in
      let mk cls b =
        { hb_source = s.Config.name; hb_class = cls; hb_bound_us = b }
      in
      (* Direct handling runs in the subscriber's own open slot: its latency
         is dominated by the delayed case, so the eq.-(11)/(12) baseline is a
         sound (conservative) bound for it too. *)
      [
        mk "direct" (eval `Direct);
        mk "delayed" (eval `Delayed);
        mk "interposed" (eval `Interposed);
      ])
    config.Config.sources

let bound_for bounds ~source ~cls =
  match
    List.find_opt
      (fun b -> b.hb_source = source && b.hb_class = cls)
      bounds
  with
  | Some b -> b.hb_bound_us
  | None -> None

type verdict = {
  hv_source : string;
  hv_class : string;
  hv_count : int;
  hv_measured_us : float;
  hv_bound_us : float option;
  hv_headroom_us : float option;
}

(* Measured worst cases live in the rthv_irq_latency_us summary the recorder
   collects (one series per source x class). *)
let measured registry =
  List.filter_map
    (fun (row : Registry.row) ->
      if row.Registry.name <> "rthv_irq_latency_us" then None
      else
        match row.Registry.value with
        | Metric.Summary q -> (
            let labels = Labels.to_list row.Registry.labels in
            match
              (List.assoc_opt "source" labels, List.assoc_opt "class" labels)
            with
            | Some source, Some cls ->
                Option.map
                  (fun m -> (source, cls, Quantile.count q, m))
                  (Quantile.max_value q)
            | _ -> None)
        | _ -> None)
    (Registry.snapshot registry)

let verdicts config registry =
  let bounds = bounds config in
  List.map
    (fun (source, cls, count, worst) ->
      let bound = bound_for bounds ~source ~cls in
      {
        hv_source = source;
        hv_class = cls;
        hv_count = count;
        hv_measured_us = worst;
        hv_bound_us = bound;
        hv_headroom_us = Option.map (fun b -> b -. worst) bound;
      })
    (measured registry)

let gauges config registry =
  List.iter
    (fun v ->
      let labels =
        Labels.v [ ("source", v.hv_source); ("class", v.hv_class) ]
      in
      match (v.hv_bound_us, v.hv_headroom_us) with
      | Some bound, Some headroom ->
          Registry.set_gauge registry ~labels "rthv_latency_bound_us" bound;
          Registry.set_gauge registry ~labels "rthv_bound_headroom_us" headroom
      | _ -> ())
    (verdicts config registry)
