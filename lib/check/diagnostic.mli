(** Structured diagnostics shared by the static configuration analyzer
    ({!Lint}) and the trace-invariant oracle ({!Trace_oracle}).

    Every finding carries a stable rule code (["RTHV0xx"] for static rules,
    ["RTHV1xx"] for trace invariants), a severity, a human-oriented location
    string (partition, source or trace position), a message, and an optional
    remediation hint.  Diagnostics render either as compiler-style text or as
    JSON objects for CI consumption. *)

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  loc : string;
  message : string;
  hint : string option;
}

val error : code:string -> loc:string -> ?hint:string -> string -> t
val warning : code:string -> loc:string -> ?hint:string -> string -> t
val info : code:string -> loc:string -> ?hint:string -> string -> t

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val is_error : t -> bool

val errors : t list -> t list

val count : severity -> t list -> int

val sort : t list -> t list
(** Stable sort, most severe first, then by code and location. *)

val dedupe : t list -> (t * int) list
(** {!sort}, then collapse runs of identical findings (all fields equal)
    into one entry with its multiplicity — the deterministic, deduplicated
    view the CLI renders and the certificate serializes. *)

val pp : Format.formatter -> t -> unit
(** One finding: ["error[RTHV005] partition ctl: message" + hint line]. *)

val pp_counted : Format.formatter -> t * int -> unit
(** {!pp} with an ["  (xN)"] multiplicity suffix when [N > 1]. *)

val pp_report : Format.formatter -> t list -> unit
(** All findings, {!dedupe}d (sorted, repeats collapsed with a
    multiplicity suffix), followed by a one-line severity tally over the
    {e full} list — so the totals still count every occurrence. *)

val to_json : ?extra:(string * string) list -> t -> string
(** One JSON object; [extra] prepends additional string fields (e.g. the
    scenario name).  Strings are escaped per RFC 8259. *)

val list_to_json : ?extra:(string * string) list -> t list -> string
(** A JSON array of {!to_json} objects. *)
