(** Bound headroom: measured worst-case latencies vs the analytic bounds.

    For every configured source and handling class this module computes the
    paper's latency bound — equations (11)/(12) for delayed (and, a
    fortiori, direct) handling, equation (16) for interposed handling — and
    compares it against the measured worst case collected by the
    observability layer ([rthv_irq_latency_us] summaries, or
    {!Rthv_obs.Attribution} rows).  Headroom = bound - measured; a negative
    headroom on a conformant scenario means either the analysis or the
    simulator is wrong, which is exactly what the check is for. *)

type bound = {
  hb_source : string;
  hb_class : string;  (** ["direct" | "interposed" | "delayed"]. *)
  hb_bound_us : float option;
      (** [None] when the analysis yields no finite bound (busy window
          diverged, or the class cannot occur — interposed on an unshaped
          source). *)
}

val classes : string list
(** The three handling classes, in report order. *)

val bounds : Rthv_core.Config.t -> bound list
(** One entry per source x class, in configuration order. *)

val bound_for :
  bound list -> source:string -> cls:string -> float option

type verdict = {
  hv_source : string;
  hv_class : string;
  hv_count : int;  (** Completions observed for this series. *)
  hv_measured_us : float;  (** Measured worst-case latency. *)
  hv_bound_us : float option;
  hv_headroom_us : float option;  (** [bound - measured] when bounded. *)
}

val verdicts : Rthv_core.Config.t -> Rthv_obs.Registry.t -> verdict list
(** Reads the [rthv_irq_latency_us] summaries out of the registry and pairs
    each (source, class) series with its analytic bound. *)

val gauges : Rthv_core.Config.t -> Rthv_obs.Registry.t -> unit
(** Surfaces [rthv_latency_bound_us] and [rthv_bound_headroom_us] gauges in
    the registry for every bounded series. *)
