module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module J = Rthv_obs.Json

let cycles arr = J.List (Array.to_list (Array.map (fun c -> J.Int c) arr))

let platform_name (p : Platform.t) =
  if p = Platform.arm926ejs_200mhz then Ok "arm926ejs_200mhz"
  else if p = Platform.ideal then Ok "ideal"
  else Error "unnamed platform: only the named platforms serialize"

let platform_of_name = function
  | "arm926ejs_200mhz" -> Ok Platform.arm926ejs_200mhz
  | "ideal" -> Ok Platform.ideal
  | name -> Error (Printf.sprintf "unknown platform %S" name)

let shaping_to_json (s : Config.shaping) =
  let kind k rest = J.Obj (("kind", J.String k) :: rest) in
  match s with
  | Config.No_shaping -> kind "none" []
  | Config.Fixed_monitor fn -> kind "fixed_monitor" [ ("delta", cycles (DF.entries fn)) ]
  | Config.Self_learning { l; learn_events; bound } ->
      kind "self_learning"
        [
          ("l", J.Int l);
          ("learn_events", J.Int learn_events);
          ( "bound",
            match bound with
            | Some fn -> cycles (DF.entries fn)
            | None -> J.Null );
        ]
  | Config.Token_bucket { capacity; refill } ->
      kind "token_bucket" [ ("capacity", J.Int capacity); ("refill", J.Int refill) ]
  | Config.Budgeted { per_cycle } -> kind "budgeted" [ ("per_cycle", J.Int per_cycle) ]
  | Config.Monitor_and_bucket { fn; capacity; refill } ->
      kind "monitor_and_bucket"
        [
          ("delta", cycles (DF.entries fn));
          ("capacity", J.Int capacity);
          ("refill", J.Int refill);
        ]

let task_to_json (t : Task.spec) =
  J.Obj
    [
      ("name", J.String t.Task.name);
      ("period", J.Int t.Task.period);
      ("wcet", J.Int t.Task.wcet);
      ("priority", J.Int t.Task.priority);
      ("offset", J.Int t.Task.offset);
    ]

let partition_to_json (p : Config.partition) =
  J.Obj
    [
      ("name", J.String p.Config.pname);
      ("slot", J.Int p.Config.slot);
      ("busy_loop", J.Bool p.Config.busy_loop);
      ( "policy",
        J.String
          (match p.Config.policy with
          | Rthv_rtos.Guest.Fixed_priority -> "fixed_priority"
          | Rthv_rtos.Guest.Edf -> "edf") );
      ("tasks", J.List (List.map task_to_json p.Config.tasks));
    ]

let source_to_json (s : Config.source) =
  J.Obj
    [
      ("name", J.String s.Config.name);
      ("line", J.Int s.Config.line);
      ("subscriber", J.Int s.Config.subscriber);
      ("c_th", J.Int s.Config.c_th);
      ("c_bh", J.Int s.Config.c_bh);
      ( "arrival_mode",
        J.String
          (match s.Config.arrival_mode with
          | Config.Reprogram -> "reprogram"
          | Config.Absolute -> "absolute") );
      ("interarrivals", cycles s.Config.interarrivals);
      ("shaping", shaping_to_json s.Config.shaping);
    ]

let plan_to_json (p : Config.plan_spec) =
  match p with
  | Config.Partition_slots -> J.Obj [ ("kind", J.String "partition_slots") ]
  | Config.Weighted_plan { cycle; weights } ->
      J.Obj
        [
          ("kind", J.String "weighted");
          ("cycle", J.Int cycle);
          ("weights", J.List (Array.to_list (Array.map (fun w -> J.Int w) weights)));
        ]

let unsupported (config : Config.t) =
  if config.Config.ports <> [] then Some "ports do not serialize"
  else if
    List.exists (fun (s : Config.source) -> s.Config.activates <> None)
      config.Config.sources
  then Some "task-activating sources do not serialize"
  else if
    List.exists
      (fun (p : Config.partition) ->
        List.exists
          (fun (t : Task.spec) ->
            t.Task.produces <> None || t.Task.consumes <> None)
          p.Config.tasks)
      config.Config.partitions
  then Some "IPC-connected tasks do not serialize"
  else None

let to_json (config : Config.t) =
  match (platform_name config.Config.platform, unsupported config) with
  | Error e, _ | _, Some e -> Error e
  | Ok platform, None ->
      Ok
        (J.Obj
           [
             ("platform", J.String platform);
             ( "boundary",
               J.String
                 (match config.Config.boundary with
                 | Rthv_core.Boundary_policy.Finish_bottom_handler ->
                     "finish_bottom_handler"
                 | Rthv_core.Boundary_policy.Strict_cut -> "strict_cut") );
             ("plan", plan_to_json config.Config.plan);
             ( "partitions",
               J.List (List.map partition_to_json config.Config.partitions) );
             ("sources", J.List (List.map source_to_json config.Config.sources));
           ])

let to_string config = Result.map J.to_string (to_json config)

(* --- decoding ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name json =
  match J.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name json = J.member name json

let as_int ~what v =
  match J.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: expected an integer" what)

let as_str ~what v =
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: expected a string" what)

let as_list ~what v =
  match J.to_list v with
  | Some l -> Ok l
  | None -> Error (Printf.sprintf "%s: expected a list" what)

let as_bool ~what = function
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s: expected a boolean" what)

let int_field ~what name json =
  let* v = field name json in
  as_int ~what:(what ^ "." ^ name) v

let str_field ~what name json =
  let* v = field name json in
  as_str ~what:(what ^ "." ^ name) v

let cycles_of ~what v =
  let* l = as_list ~what v in
  let* ints =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* i = as_int ~what v in
        Ok (i :: acc))
      (Ok []) l
  in
  Ok (Array.of_list (List.rev ints))

let map_all ~what f l =
  List.fold_left
    (fun acc v ->
      let* acc = acc in
      let* x = f v in
      Ok (x :: acc))
    (Ok []) l
  |> Result.map List.rev
  |> Result.map_error (fun e -> what ^ ": " ^ e)

let shaping_of_json json =
  let* kind = str_field ~what:"shaping" "kind" json in
  match kind with
  | "none" -> Ok Config.No_shaping
  | "fixed_monitor" ->
      let* delta = field "delta" json in
      let* entries = cycles_of ~what:"shaping.delta" delta in
      Ok (Config.Fixed_monitor (DF.of_entries entries))
  | "self_learning" ->
      let* l = int_field ~what:"shaping" "l" json in
      let* learn_events = int_field ~what:"shaping" "learn_events" json in
      let* bound =
        match opt_field "bound" json with
        | None | Some J.Null -> Ok None
        | Some v ->
            let* entries = cycles_of ~what:"shaping.bound" v in
            Ok (Some (DF.of_entries entries))
      in
      Ok (Config.Self_learning { l; learn_events; bound })
  | "token_bucket" ->
      let* capacity = int_field ~what:"shaping" "capacity" json in
      let* refill = int_field ~what:"shaping" "refill" json in
      Ok (Config.Token_bucket { capacity; refill })
  | "budgeted" ->
      let* per_cycle = int_field ~what:"shaping" "per_cycle" json in
      Ok (Config.Budgeted { per_cycle })
  | "monitor_and_bucket" ->
      let* delta = field "delta" json in
      let* entries = cycles_of ~what:"shaping.delta" delta in
      let* capacity = int_field ~what:"shaping" "capacity" json in
      let* refill = int_field ~what:"shaping" "refill" json in
      Ok (Config.Monitor_and_bucket { fn = DF.of_entries entries; capacity; refill })
  | kind -> Error (Printf.sprintf "unknown shaping kind %S" kind)

let task_of_json json =
  let* name = str_field ~what:"task" "name" json in
  let* period = int_field ~what:"task" "period" json in
  let* wcet = int_field ~what:"task" "wcet" json in
  let* priority = int_field ~what:"task" "priority" json in
  let* offset = int_field ~what:"task" "offset" json in
  Ok
    {
      Task.name;
      period;
      wcet;
      priority;
      offset;
      produces = None;
      consumes = None;
    }

let partition_of_json json =
  let* pname = str_field ~what:"partition" "name" json in
  let* slot = int_field ~what:"partition" "slot" json in
  let* busy_loop =
    match opt_field "busy_loop" json with
    | None -> Ok false
    | Some v -> as_bool ~what:"partition.busy_loop" v
  in
  let* policy =
    match opt_field "policy" json with
    | None -> Ok Rthv_rtos.Guest.Fixed_priority
    | Some v -> (
        let* s = as_str ~what:"partition.policy" v in
        match s with
        | "fixed_priority" -> Ok Rthv_rtos.Guest.Fixed_priority
        | "edf" -> Ok Rthv_rtos.Guest.Edf
        | s -> Error (Printf.sprintf "unknown guest policy %S" s))
  in
  let* tasks =
    match opt_field "tasks" json with
    | None -> Ok []
    | Some v ->
        let* l = as_list ~what:"partition.tasks" v in
        map_all ~what:"partition.tasks" task_of_json l
  in
  Ok { Config.pname; slot; tasks; busy_loop; policy }

let source_of_json json =
  let* name = str_field ~what:"source" "name" json in
  let* line = int_field ~what:"source" "line" json in
  let* subscriber = int_field ~what:"source" "subscriber" json in
  let* c_th = int_field ~what:"source" "c_th" json in
  let* c_bh = int_field ~what:"source" "c_bh" json in
  let* arrival_mode =
    match opt_field "arrival_mode" json with
    | None -> Ok Config.Reprogram
    | Some v -> (
        let* s = as_str ~what:"source.arrival_mode" v in
        match s with
        | "reprogram" -> Ok Config.Reprogram
        | "absolute" -> Ok Config.Absolute
        | s -> Error (Printf.sprintf "unknown arrival mode %S" s))
  in
  let* interarrivals =
    let* v = field "interarrivals" json in
    cycles_of ~what:"source.interarrivals" v
  in
  let* shaping =
    match opt_field "shaping" json with
    | None -> Ok Config.No_shaping
    | Some v -> shaping_of_json v
  in
  Ok
    {
      Config.name;
      line;
      subscriber;
      c_th;
      c_bh;
      interarrivals;
      arrival_mode;
      shaping;
      activates = None;
    }

let plan_of_json json =
  let* kind = str_field ~what:"plan" "kind" json in
  match kind with
  | "partition_slots" -> Ok Config.Partition_slots
  | "weighted" ->
      let* cycle = int_field ~what:"plan" "cycle" json in
      let* weights = field "weights" json in
      let* arr = cycles_of ~what:"plan.weights" weights in
      Ok (Config.Weighted_plan { cycle; weights = arr })
  | kind -> Error (Printf.sprintf "unknown plan kind %S" kind)

let of_json json =
  let* platform =
    let* name = str_field ~what:"config" "platform" json in
    platform_of_name name
  in
  let* boundary =
    match opt_field "boundary" json with
    | None -> Ok Rthv_core.Boundary_policy.default
    | Some v -> (
        let* s = as_str ~what:"config.boundary" v in
        match s with
        | "finish_bottom_handler" ->
            Ok Rthv_core.Boundary_policy.Finish_bottom_handler
        | "strict_cut" -> Ok Rthv_core.Boundary_policy.Strict_cut
        | s -> Error (Printf.sprintf "unknown boundary policy %S" s))
  in
  let* plan =
    match opt_field "plan" json with
    | None -> Ok Config.Partition_slots
    | Some v -> plan_of_json v
  in
  let* partitions =
    let* v = field "partitions" json in
    let* l = as_list ~what:"config.partitions" v in
    map_all ~what:"config.partitions" partition_of_json l
  in
  let* sources =
    match opt_field "sources" json with
    | None -> Ok []
    | Some v ->
        let* l = as_list ~what:"config.sources" v in
        map_all ~what:"config.sources" source_of_json l
  in
  Ok { Config.platform; partitions; sources; ports = []; boundary; plan }

let of_string s =
  let* json = J.parse s in
  of_json json
