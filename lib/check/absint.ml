module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Certificate = Rthv_analysis.Certificate
module Bound = Rthv_analysis.Bound

(* --- shared policy primitives (re-exported by Lint) --------------------- *)

let c_bh_eff ~platform ~c_bh =
  Cycles.( + ) c_bh
    (Cycles.( + )
       (Platform.sched_manip_cost platform)
       (Cycles.( * ) (Platform.ctx_switch_cost platform) 2))

let footprint ~platform ~c_th ~c_bh_eff =
  Cycles.( + ) c_th (Cycles.( + ) (Platform.monitor_cost platform) c_bh_eff)

(* The statically known envelope of the admitted stream.  A self-learning
   monitor without a load bound has no static envelope; a bounded one admits
   at most what the bound allows (Algorithm 2 raises every learned entry to
   the bound, so conformance to the adjusted condition implies conformance
   to the bound).  A composite inherits its monitored component's envelope;
   a budget maintains no distance condition. *)
let static_condition = function
  | Config.Fixed_monitor fn -> Some fn
  | Config.Self_learning { bound = Some b; _ } -> Some b
  | Config.Monitor_and_bucket { fn; _ } -> Some fn
  | Config.Self_learning { bound = None; _ }
  | Config.No_shaping | Config.Token_bucket _ | Config.Budgeted _ ->
      None

let shaped source =
  match source.Config.shaping with
  | Config.No_shaping -> false
  | Config.Fixed_monitor _ | Config.Self_learning _ | Config.Token_bucket _
  | Config.Budgeted _ | Config.Monitor_and_bucket _ ->
      true

(* The analysis-side descriptor of a shaping policy: the single point where
   configuration variants map onto [Bound.policy], shared by the linter,
   the trace oracle and the headroom gate. *)
let bound_policy ~cycle = function
  | Config.No_shaping -> Bound.Unshaped
  | Config.Fixed_monitor fn -> Bound.Monitored fn
  | Config.Self_learning { bound = Some b; _ } -> Bound.Monitored b
  | Config.Self_learning { bound = None; _ } -> Bound.Shaped_opaque
  | Config.Token_bucket { capacity; refill } ->
      Bound.Bucketed { capacity; refill }
  | Config.Budgeted { per_cycle } -> Bound.Budgeted { per_cycle; cycle }
  | Config.Monitor_and_bucket { fn; capacity; refill } ->
      Bound.Composite
        [ Bound.Monitored fn; Bound.Bucketed { capacity; refill } ]

(* A condition whose superadditive extension never grows admits an unbounded
   number of events in some finite window: eq. (14) yields no bound. *)
let degenerate fn = DF.delta fn (DF.length fn + 1) = 0

(* --- interval domain ---------------------------------------------------- *)

module Itv = struct
  type t = { lo : int; hi : int option }

  let exact v = { lo = v; hi = Some v }
  let between lo hi = { lo; hi = Some hi }
  let unbounded ~lo = { lo; hi = None }
  let zero = exact 0

  let add a b =
    {
      lo = a.lo + b.lo;
      hi = (match (a.hi, b.hi) with Some x, Some y -> Some (x + y) | _ -> None);
    }

  let scale a k =
    { lo = a.lo * k; hi = Option.map (fun h -> h * k) a.hi }

  let join a b =
    {
      lo = Stdlib.min a.lo b.lo;
      hi =
        (match (a.hi, b.hi) with
        | Some x, Some y -> Some (Stdlib.max x y)
        | _ -> None);
    }

  let consistent t =
    t.lo >= 0 && match t.hi with Some h -> t.lo <= h | None -> true

  let pp ppf t =
    match t.hi with
    | Some h when h = t.lo -> Format.fprintf ppf "[%d]" t.lo
    | Some h -> Format.fprintf ppf "[%d, %d]" t.lo h
    | None -> Format.fprintf ppf "[%d, inf)" t.lo
end

(* --- generic worklist fixed-point --------------------------------------- *)

module Fix = struct
  type 'a system = {
    nodes : string list;
    deps : string -> string list;
    init : string -> 'a;
    transfer : (string -> 'a) -> string -> 'a;
    equal : 'a -> 'a -> bool;
  }

  let ph_solve = Rthv_obs.Prof.phase "absint_fix"

  let solve sys =
    Rthv_obs.Prof.span (Rthv_obs.Prof.installed ()) ph_solve @@ fun () ->
    let values = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace values n (sys.init n)) sys.nodes;
    let get n =
      match Hashtbl.find_opt values n with
      | Some v -> v
      | None -> failwith ("Absint.Fix: unknown node " ^ n)
    in
    (* Reverse dependency edges: who must re-run when a node changes. *)
    let rdeps = Hashtbl.create 64 in
    List.iter
      (fun n ->
        List.iter
          (fun d ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt rdeps d) in
            Hashtbl.replace rdeps d (prev @ [ n ]))
          (sys.deps n))
      sys.nodes;
    let queue = Queue.create () in
    let queued = Hashtbl.create 64 in
    let enqueue n =
      if not (Hashtbl.mem queued n) then begin
        Hashtbl.replace queued n ();
        Queue.add n queue
      end
    in
    List.iter enqueue sys.nodes;
    let budget = 1000 * (List.length sys.nodes + 1) in
    let steps = ref 0 in
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      Hashtbl.remove queued n;
      incr steps;
      if !steps > budget then
        failwith "Absint.Fix: fixed-point iteration diverged";
      let v' = sys.transfer get n in
      if not (sys.equal (get n) v') then begin
        Hashtbl.replace values n v';
        List.iter enqueue
          (Option.value ~default:[] (Hashtbl.find_opt rdeps n))
      end
    done;
    (* Convergence telemetry, mirroring the rthv_busy_window_* gauges. *)
    if Rthv_obs.Sink.active () then begin
      Rthv_obs.Sink.gauge "rthv_absint_steps" Rthv_obs.Labels.empty
        (float_of_int !steps);
      Rthv_obs.Sink.gauge "rthv_absint_nodes" Rthv_obs.Labels.empty
        (float_of_int (List.length sys.nodes))
    end;
    (get, !steps)
end

(* --- adversarial admission schedule ------------------------------------- *)

let max_events = 4096

(* Earliest time >= t at which the policy admits, given the admitted history
   (newest first).  [None] when admission cannot be predicted statically. *)
let rec earliest_admissible policy t hist =
  match policy with
  | Bound.Unshaped | Bound.Shaped_opaque -> None
  | Bound.Monitored fn ->
      let l = DF.length fn in
      let t' = ref t in
      List.iteri
        (fun i prev ->
          if i < l then begin
            let earliest = Cycles.( + ) prev (DF.delta fn (i + 2)) in
            if earliest > !t' then t' := earliest
          end)
        hist;
      Some !t'
  | Bound.Bucketed { capacity; refill } ->
      (* Replay the history through {!Rthv_core.Throttle}'s arithmetic: the
         bucket starts full and earns one token per elapsed [refill]
         (capped at [capacity]) — the meter runs from [last], not from the
         consumptions, so the long-term rate is 1/refill regardless of
         capacity.  Keeping this in lockstep with the simulator is what
         makes the interval's lower end genuinely achievable. *)
      let tokens = ref capacity and last = ref 0 in
      let update ts =
        if !tokens < capacity then begin
          let earned = Cycles.( - ) ts !last / refill in
          let granted = Stdlib.min earned (capacity - !tokens) in
          tokens := !tokens + granted;
          if !tokens = capacity then last := ts
          else last := Cycles.( + ) !last (Cycles.( * ) refill earned)
        end
        else last := ts
      in
      List.iter
        (fun a ->
          update a;
          decr tokens)
        (List.rev hist);
      update t;
      if !tokens >= 1 then Some t else Some (Cycles.( + ) !last refill)
  | Bound.Budgeted { per_cycle; cycle } ->
      let window = t / cycle in
      let in_window =
        List.fold_left
          (fun acc a -> if a / cycle = window then acc + 1 else acc)
          0 hist
      in
      if in_window < per_cycle then Some t
      else Some (Cycles.( * ) cycle (window + 1))
  | Bound.Composite components ->
      (* Iterate until every component agrees on the same admission time. *)
      let rec settle t guard =
        if guard > 64 then None
        else
          let settled =
            List.fold_left
              (fun acc p ->
                match (acc, earliest_admissible p t hist) with
                | Some acc, Some t' -> Some (Cycles.max acc t')
                | _ -> None)
              (Some t) components
          in
          match settled with
          | None -> None
          | Some t' when t' = t -> Some t
          | Some t' -> settle t' (guard + 1)
      in
      settle t 0

let adversarial_schedule ~policy ~footprint ~horizon =
  if footprint <= 0 then
    invalid_arg "Absint.adversarial_schedule: footprint must be positive";
  let rec next acc count t =
    if count >= max_events || t > horizon then List.rev acc
    else
      match earliest_admissible policy t acc with
      | None -> List.rev acc
      | Some t' when t' > horizon -> List.rev acc
      | Some t' -> next (t' :: acc) (count + 1) (Cycles.( + ) t' footprint)
  in
  next [] 0 1

let max_in_window timestamps ~window =
  if window <= 0 then 0
  else begin
    let arr = Array.of_list timestamps in
    let n = Array.length arr in
    let best = ref 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if !j < i + 1 then j := i + 1;
      while !j < n && Cycles.( - ) arr.(!j) arr.(i) < window do
        incr j
      done;
      if !j - i > !best then best := !j - i
    done;
    !best
  end

(* --- facts --------------------------------------------------------------- *)

type verdict = Proved | Refuted | Unknown

let verdict_name = function
  | Proved -> "proved"
  | Refuted -> "refuted"
  | Unknown -> "unknown"

type source_fact = {
  sf_name : string;
  sf_line : int;
  sf_subscriber : int;
  sf_policy : Bound.policy;
  sf_c_bh_eff : Cycles.t;
  sf_footprint : Cycles.t;
  sf_degenerate : bool;
  sf_active : bool;
  sf_per_instance : bool;
  sf_admissions : (Cycles.t * Itv.t) list;
  sf_interference : (Cycles.t * Itv.t) list;
  sf_ceiling : (Cycles.t * int) list;
  sf_util_loss : float option;
  sf_workload_max_per_cycle : int option;
}

type partition_fact = {
  pf_index : int;
  pf_name : string;
  pf_declared : Cycles.t;
  pf_slot : Cycles.t;
  pf_share : float;
  pf_task_util : float;
  pf_demand : float;
  pf_interference : Itv.t;
  pf_verdict : verdict;
}

type t = {
  cycle : Cycles.t;
  c_ctx : Cycles.t;
  windows : Cycles.t list;
  sources : source_fact list;
  partitions : partition_fact list;
  util_loss_closed : float;
  util : float * float option;
  closed : Certificate.t;
  full_verdicts : Certificate.verdict list option;
  iterations : int;
}

(* Comparable projections: facts strip every closure before entering the
   fixed-point, so structural equality is safe. *)
type value =
  | V_bot
  | V_source of source_fact
  | V_gate of bool
  | V_partition of partition_fact
  | V_util of (float * float option)

let value_equal a b = Stdlib.compare a b = 0

(* The closed-form long-term utilisation fold of RTHV004, verbatim — the
   linter's message must not change by a single byte across the Absint
   refactor. *)
let util_loss_closed_of config ~cycle ~eff =
  let source_loss (s : Config.source) =
    let monitor_loss fn =
      if degenerate fn then None
      else
        Some (Independence.utilisation_loss ~monitor:fn ~c_bh_eff:(eff s))
    in
    match s.Config.shaping with
    | Config.Token_bucket { refill; _ } ->
        Some (float_of_int (eff s) /. float_of_int refill)
    | Config.Budgeted { per_cycle } ->
        Some (float_of_int (per_cycle * eff s) /. float_of_int cycle)
    | Config.Monitor_and_bucket { fn; refill; _ } ->
        (* The admitted stream satisfies both components: the smaller
           long-term loss governs. *)
        let bucket = float_of_int (eff s) /. float_of_int refill in
        Some
          (match monitor_loss fn with
          | Some m -> Float.min m bucket
          | None -> bucket)
    | shaping -> (
        match static_condition shaping with
        | Some fn -> monitor_loss fn
        | None -> None)
  in
  ( List.fold_left
      (fun acc s -> acc +. Option.value ~default:0. (source_loss s))
      0. config.Config.sources,
    source_loss )

(* The densest aligned-cycle window of the pre-generated workload — the
   RTHV015 envelope, computed for every firing source. *)
let workload_max_per_cycle (s : Config.source) ~cycle =
  let n = Array.length s.Config.interarrivals in
  if n = 0 then None
  else begin
    let times = Array.make n 0 in
    let acc = ref 0 in
    Array.iteri
      (fun i d ->
        acc := Cycles.( + ) !acc d;
        times.(i) <- !acc)
      s.Config.interarrivals;
    let max_per_window = ref 0 in
    let count = ref 0 in
    let window = ref (-1) in
    Array.iter
      (fun ts ->
        let w = ts / cycle in
        if w <> !window then begin
          window := w;
          count := 0
        end;
        incr count;
        if !count > !max_per_window then max_per_window := !count)
      times;
    Some !max_per_window
  end

let source_fact config ~cycle ~windows (s : Config.source) =
  let platform = config.Config.platform in
  let policy = bound_policy ~cycle s.Config.shaping in
  let eff = c_bh_eff ~platform ~c_bh:s.Config.c_bh in
  let fp = footprint ~platform ~c_th:s.Config.c_th ~c_bh_eff:eff in
  let is_degenerate =
    match static_condition s.Config.shaping with
    | Some fn -> degenerate fn
    | None -> false
  in
  let active = shaped s && Array.length s.Config.interarrivals > 0 in
  let curve = Bound.interference policy ~c_bh_eff:eff in
  let max_window = List.fold_left Cycles.max 0 windows in
  let horizon = Cycles.( + ) (Cycles.( * ) max_window 3) fp in
  let schedule =
    if active then adversarial_schedule ~policy ~footprint:fp ~horizon
    else []
  in
  let admissions =
    List.map
      (fun w ->
        let lo = max_in_window schedule ~window:w in
        let hi =
          match curve with
          | Some c -> Some (c w / Stdlib.max 1 eff)
          | None -> if active then None else Some 0
        in
        (w, { Itv.lo; hi }))
      windows
  in
  let interference =
    List.map
      (fun w ->
        let lo = max_in_window schedule ~window:w * eff in
        let hi =
          match curve with
          | Some c -> Some (c w)
          | None -> if active then None else Some 0
        in
        (w, { Itv.lo; hi }))
      windows
  in
  let ceiling = List.map (fun w -> (w, (w / Stdlib.max 1 eff) + 1)) windows in
  {
    sf_name = s.Config.name;
    sf_line = s.Config.line;
    sf_subscriber = s.Config.subscriber;
    sf_policy = policy;
    sf_c_bh_eff = eff;
    sf_footprint = fp;
    sf_degenerate = is_degenerate;
    sf_active = active;
    sf_per_instance = false (* the gate node decides *);
    sf_admissions = admissions;
    sf_interference = interference;
    sf_ceiling = ceiling;
    sf_util_loss = None (* filled from the closed fold below *);
    sf_workload_max_per_cycle = workload_max_per_cycle s ~cycle;
  }

let analyze config =
  let plan = Config.slot_plan config in
  let cycle = Rthv_core.Slot_plan.cycle_length plan in
  let c_ctx = Platform.ctx_switch_cost config.Config.platform in
  let slots = Rthv_core.Slot_plan.slots plan in
  let windows =
    List.sort_uniq Cycles.compare
      (cycle :: List.filter (fun s -> s > 0) (Array.to_list slots))
  in
  let eff (s : Config.source) =
    c_bh_eff ~platform:config.Config.platform ~c_bh:s.Config.c_bh
  in
  let util_loss_closed, source_loss = util_loss_closed_of config ~cycle ~eff in
  let sources = config.Config.sources in
  let partitions = config.Config.partitions in
  let src_node (s : Config.source) = "src:" ^ s.Config.name in
  let gate_node (s : Config.source) = "gate:" ^ s.Config.name in
  let part_node i = Printf.sprintf "part:%d" i in
  let src_nodes = List.map src_node sources in
  let nodes =
    src_nodes
    @ List.map gate_node sources
    @ List.mapi (fun i _ -> part_node i) partitions
    @ [ "sys:util" ]
  in
  let find_source name =
    List.find (fun (s : Config.source) -> "src:" ^ s.Config.name = name) sources
  in
  let deps n =
    if String.length n >= 4 && String.sub n 0 4 = "src:" then []
    else src_nodes
  in
  let source_facts get =
    List.map
      (fun s ->
        match get (src_node s) with
        | V_source f -> f
        | _ -> failwith "Absint: source node not ready")
      sources
  in
  let transfer get n =
    if String.length n >= 4 && String.sub n 0 4 = "src:" then
      V_source (source_fact config ~cycle ~windows (find_source n))
    else if String.length n >= 5 && String.sub n 0 5 = "gate:" then begin
      let name = String.sub n 5 (String.length n - 5) in
      let facts = source_facts get in
      let self = List.find (fun f -> f.sf_name = name) facts in
      let has_condition =
        match Bound.per_instance_condition self.sf_policy with
        | Some fn -> not (degenerate fn)
        | None -> false
      in
      let others_interpose =
        List.exists (fun f -> f.sf_name <> name && f.sf_active) facts
      in
      V_gate (has_condition && self.sf_active && not others_interpose)
    end
    else if String.length n >= 5 && String.sub n 0 5 = "part:" then begin
      let i = int_of_string (String.sub n 5 (String.length n - 5)) in
      let p = List.nth partitions i in
      let facts = source_facts get in
      let slot = slots.(i) in
      let share =
        if slot <= c_ctx then 0.
        else float_of_int (Cycles.( - ) slot c_ctx) /. float_of_int cycle
      in
      let task_util = Task.utilisation p.Config.tasks in
      let irq_demand =
        List.fold_left
          (fun acc (s : Config.source) ->
            let n_arr = Array.length s.Config.interarrivals in
            if s.Config.subscriber <> i || n_arr = 0 then acc
            else
              let total =
                Array.fold_left
                  (fun acc d -> acc +. float_of_int d)
                  0. s.Config.interarrivals
              in
              if total <= 0. then acc
              else acc +. (float_of_int n_arr /. total *. float_of_int s.Config.c_bh))
          0. sources
      in
      let interference =
        List.fold_left
          (fun acc f ->
            if f.sf_subscriber = i || not f.sf_active then acc
            else
              match List.assoc_opt slot f.sf_interference with
              | Some itv -> Itv.add acc itv
              | None -> acc)
          Itv.zero facts
      in
      V_partition
        {
          pf_index = i;
          pf_name = p.Config.pname;
          pf_declared = p.Config.slot;
          pf_slot = slot;
          pf_share = share;
          pf_task_util = task_util;
          pf_demand = task_util +. irq_demand;
          pf_interference = interference;
          pf_verdict = Unknown (* certificates refine this after the solve *);
        }
    end
    else begin
      (* sys:util — interference utilisation interval over one cycle. *)
      let facts = source_facts get in
      let lo =
        List.fold_left
          (fun acc f ->
            match List.assoc_opt cycle f.sf_interference with
            | Some itv -> acc +. (float_of_int itv.Itv.lo /. float_of_int cycle)
            | None -> acc)
          0. facts
      in
      let hi =
        List.fold_left
          (fun acc f ->
            match acc with
            | None -> None
            | Some acc -> (
                if not f.sf_active then Some acc
                else
                  match List.assoc_opt cycle f.sf_interference with
                  | Some { Itv.hi = Some h; _ } ->
                      Some (acc +. (float_of_int h /. float_of_int cycle))
                  | Some { Itv.hi = None; _ } | None -> None))
          (Some 0.) facts
      in
      V_util (lo, hi)
    end
  in
  let get, iterations =
    Fix.solve
      { Fix.nodes; deps; init = (fun _ -> V_bot); transfer; equal = value_equal }
  in
  let facts =
    List.map
      (fun s ->
        let f =
          match get (src_node s) with
          | V_source f -> f
          | _ -> failwith "Absint: unsolved source"
        in
        let gate =
          match get (gate_node s) with V_gate g -> g | _ -> false
        in
        { f with sf_per_instance = gate; sf_util_loss = source_loss s })
      sources
  in
  (* The grant-only certificate: exactly the RTHV005 proof obligation. *)
  let grants =
    List.filter_map
      (fun (s : Config.source) ->
        match static_condition s.Config.shaping with
        | Some fn when not (degenerate fn) ->
            Some
              {
                Certificate.source_name = s.Config.name;
                monitor = fn;
                c_bh_eff = eff s;
                subscriber = s.Config.subscriber;
              }
        | Some _ | None -> None)
      sources
  in
  let cert_partitions =
    List.mapi
      (fun i (p : Config.partition) ->
        {
          Certificate.p_index = i;
          p_name = p.Config.pname;
          slot = slots.(i);
          tasks = List.map Rthv_analysis.Guest_sched.of_spec p.Config.tasks;
        })
      partitions
  in
  let closed =
    Certificate.check ~cycle ~c_ctx ~partitions:cert_partitions ~grants
  in
  (* The interval certificate: every active source contributes its policy
     curve — buckets and budgets included, the closed form's blind spot. *)
  let active = List.filter (fun f -> f.sf_active) facts in
  let full_verdicts =
    let curves =
      List.map
        (fun f -> Bound.interference f.sf_policy ~c_bh_eff:f.sf_c_bh_eff)
        active
    in
    if List.exists (fun c -> c = None) curves then None
    else
      let interference =
        Independence.sum (List.filter_map (fun c -> c) curves)
      in
      let carry_in =
        List.fold_left (fun acc f -> Cycles.max acc f.sf_c_bh_eff) 0 active
      in
      Some
        (Certificate.analyse_curves ~cycle ~c_ctx ~partitions:cert_partitions
           ~interference ~carry_in ~utilisation_loss:util_loss_closed)
  in
  let partition_facts =
    List.mapi
      (fun i _ ->
        let pf =
          match get (part_node i) with
          | V_partition pf -> pf
          | _ -> failwith "Absint: unsolved partition"
        in
        let full_ok =
          Option.map
            (fun vs ->
              List.exists
                (fun (v : Certificate.verdict) ->
                  v.Certificate.v_index = i && v.Certificate.schedulable)
                vs)
            full_verdicts
        in
        let closed_ok =
          List.exists
            (fun (v : Certificate.verdict) ->
              v.Certificate.v_index = i && v.Certificate.schedulable)
            closed.Certificate.verdicts
        in
        let verdict =
          if pf.pf_share = 0. then Refuted
          else if pf.pf_demand > pf.pf_share +. 1e-9 then Refuted
          else
            match full_ok with
            | Some true -> Proved
            | Some false -> Refuted
            | None -> if closed_ok then Unknown else Refuted
        in
        { pf with pf_verdict = verdict })
      partitions
  in
  let util =
    match get "sys:util" with V_util u -> u | _ -> (0., None)
  in
  {
    cycle;
    c_ctx;
    windows;
    sources = facts;
    partitions = partition_facts;
    util_loss_closed;
    util;
    closed;
    full_verdicts;
    iterations;
  }
