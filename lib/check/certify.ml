module Config = Rthv_core.Config
module Cert = Rthv_analysis.Certificate
module A = Absint
module D = Diagnostic
module J = Rthv_obs.Json

let schema = "rthv-cert/1"
let digest_field = "digest"

(* --- building ------------------------------------------------------------ *)

let itv_to_json (i : A.Itv.t) =
  J.Obj
    [
      ("lo", J.Int i.A.Itv.lo);
      ("hi", match i.A.Itv.hi with Some h -> J.Int h | None -> J.Null);
    ]

let windowed_itv (w, i) =
  J.Obj [ ("window", J.Int w); ("interval", itv_to_json i) ]

let opt_float = function Some f -> J.Float f | None -> J.Null
let opt_int = function Some i -> J.Int i | None -> J.Null

let source_fact_to_json (sf : A.source_fact) =
  J.Obj
    [
      ("name", J.String sf.A.sf_name);
      ("line", J.Int sf.A.sf_line);
      ("subscriber", J.Int sf.A.sf_subscriber);
      ("c_bh_eff", J.Int sf.A.sf_c_bh_eff);
      ("footprint", J.Int sf.A.sf_footprint);
      ("degenerate", J.Bool sf.A.sf_degenerate);
      ("active", J.Bool sf.A.sf_active);
      ("per_instance", J.Bool sf.A.sf_per_instance);
      ("admissions", J.List (List.map windowed_itv sf.A.sf_admissions));
      ("interference", J.List (List.map windowed_itv sf.A.sf_interference));
      ( "ceiling",
        J.List
          (List.map
             (fun (w, c) -> J.Obj [ ("window", J.Int w); ("max", J.Int c) ])
             sf.A.sf_ceiling) );
      ("util_loss", opt_float sf.A.sf_util_loss);
      ("workload_max_per_cycle", opt_int sf.A.sf_workload_max_per_cycle);
    ]

let partition_fact_to_json (pf : A.partition_fact) =
  J.Obj
    [
      ("index", J.Int pf.A.pf_index);
      ("name", J.String pf.A.pf_name);
      ("declared", J.Int pf.A.pf_declared);
      ("slot", J.Int pf.A.pf_slot);
      ("share", J.Float pf.A.pf_share);
      ("task_util", J.Float pf.A.pf_task_util);
      ("demand", J.Float pf.A.pf_demand);
      ("interference", itv_to_json pf.A.pf_interference);
      ("verdict", J.String (A.verdict_name pf.A.pf_verdict));
    ]

let cert_verdict_to_json (v : Cert.verdict) =
  J.Obj
    [
      ("index", J.Int v.Cert.v_index);
      ("name", J.String v.Cert.v_name);
      ("interference_budget", J.Int v.Cert.interference_budget);
      ("utilisation_loss", J.Float v.Cert.utilisation_loss);
      ("schedulable", J.Bool v.Cert.schedulable);
    ]

let analysis_to_json (ai : A.t) =
  let util_lo, util_hi = ai.A.util in
  J.Obj
    [
      ("cycle", J.Int ai.A.cycle);
      ("c_ctx", J.Int ai.A.c_ctx);
      ("windows", J.List (List.map (fun w -> J.Int w) ai.A.windows));
      ("iterations", J.Int ai.A.iterations);
      ("util_loss_closed", J.Float ai.A.util_loss_closed);
      ( "util",
        J.Obj [ ("lo", J.Float util_lo); ("hi", opt_float util_hi) ] );
      ("sources", J.List (List.map source_fact_to_json ai.A.sources));
      ("partitions", J.List (List.map partition_fact_to_json ai.A.partitions));
      ( "closed_certificate",
        J.Obj
          [
            ("holds", J.Bool ai.A.closed.Cert.holds);
            ( "grants",
              J.List
                (List.map
                   (fun (g : Cert.grant) ->
                     J.Obj
                       [
                         ("source", J.String g.Cert.source_name);
                         ("c_bh_eff", J.Int g.Cert.c_bh_eff);
                         ("subscriber", J.Int g.Cert.subscriber);
                       ])
                   ai.A.closed.Cert.grants) );
            ( "verdicts",
              J.List (List.map cert_verdict_to_json ai.A.closed.Cert.verdicts)
            );
          ] );
      ( "full_verdicts",
        match ai.A.full_verdicts with
        | None -> J.Null
        | Some vs -> J.List (List.map cert_verdict_to_json vs) );
    ]

let diag_to_json ((d : D.t), n) =
  J.Obj
    ([
       ("code", J.String d.D.code);
       ("severity", J.String (D.severity_name d.D.severity));
       ("loc", J.String d.D.loc);
       ("message", J.String d.D.message);
       ("count", J.Int n);
     ]
    @ match d.D.hint with Some h -> [ ("hint", J.String h) ] | None -> [])

let claim_to_json = function
  | Witness.Interference_claim { ic_carrier; ic_windows } ->
      J.Obj
        [
          ("kind", J.String "interference");
          ("carrier", J.Int ic_carrier);
          ( "windows",
            J.List
              (List.map
                 (fun (w, b) ->
                   J.Obj [ ("window", J.Int w); ("bound", J.Int b) ])
                 ic_windows) );
        ]
  | Witness.Service_claim { sv_partition; sv_min_total } ->
      J.Obj
        [
          ("kind", J.String "service");
          ("partition", J.Int sv_partition);
          ("min_total", J.Int sv_min_total);
        ]

let witness_to_json (w : Witness.t) =
  let m = w.Witness.w_measured in
  J.Obj
    [
      ("code", J.String w.Witness.w_code);
      ("loc", J.String w.Witness.w_loc);
      ("predicted", J.String w.Witness.w_predicted);
      ("claim", claim_to_json w.Witness.w_claim);
      ( "arrivals",
        J.List
          (List.map
             (fun (line, arr) ->
               J.Obj
                 [
                   ("line", J.Int line);
                   ( "distances",
                     J.List
                       (Array.to_list (Array.map (fun d -> J.Int d) arr)) );
                 ])
             w.Witness.w_arrivals) );
      ( "baseline_errors",
        J.Int (List.length (D.errors w.Witness.w_baseline)) );
      ( "oracle",
        J.List
          (List.map
             (fun (d : D.t) -> J.String d.D.code)
             (D.errors w.Witness.w_oracle)) );
      ("horizon", J.Int m.Trace_oracle.m_horizon);
      ( "service",
        J.List
          (Array.to_list
             (Array.map (fun s -> J.Int s) m.Trace_oracle.m_service)) );
      ("charges", J.Int (List.length m.Trace_oracle.m_charges));
      ("confirmed", J.Bool w.Witness.w_confirmed);
      ("digest", J.String w.Witness.w_digest);
    ]

(* The tamper digest covers the whole artifact with its own field blanked,
   so it must be the last field and recomputable from the parsed value. *)
let with_digest fields digest =
  J.Obj (fields @ [ (digest_field, J.String digest) ])

let digest_of fields =
  Digest.to_hex (Digest.string (J.to_string (with_digest fields "")))

let build ?(scenario = "config") config =
  match Config_codec.to_json config with
  | Error e -> Error e
  | Ok config_json ->
      let valid = Result.is_ok (Config.validate config) in
      let graded, confirmed =
        if valid then Witness.certified config else (Lint.analyze config, [])
      in
      let diags = D.dedupe graded in
      let analysis =
        if valid then analysis_to_json (A.analyze config) else J.Null
      in
      let witnesses = List.map (fun (_, w) -> witness_to_json w) confirmed in
      let fields =
        [
          ("schema", J.String schema);
          ("scenario", J.String scenario);
          ("config", config_json);
          ("diagnostics", J.List (List.map diag_to_json diags));
          ("analysis", analysis);
          ("witnesses", J.List witnesses);
        ]
      in
      Ok (with_digest fields (digest_of fields))

let build_string ?scenario config =
  Result.map J.to_string (build ?scenario config)

(* --- rechecking ---------------------------------------------------------- *)

type ctx = { mutable violations : string list }

let fail ctx fmt = Printf.ksprintf (fun s -> ctx.violations <- s :: ctx.violations) fmt

let get name json = J.member name json

let str name json = Option.bind (get name json) J.to_str
let num name json = Option.bind (get name json) J.to_int
let arr name json = Option.bind (get name json) J.to_list

let itv_of_json json =
  match (num "lo" json, get "hi" json) with
  | Some lo, Some J.Null -> Some { A.Itv.lo; hi = None }
  | Some lo, Some v -> (
      match J.to_int v with
      | Some hi -> Some { A.Itv.lo; hi = Some hi }
      | None -> None)
  | _ -> None

let check_interval ctx ~what json =
  match itv_of_json json with
  | None -> fail ctx "%s: malformed interval" what
  | Some i ->
      if not (A.Itv.consistent i) then
        fail ctx "%s: inconsistent interval [%d, %s]" what i.A.Itv.lo
          (match i.A.Itv.hi with Some h -> string_of_int h | None -> "inf")

let check_windowed ctx ~what json =
  match J.to_list json with
  | None -> fail ctx "%s: expected a list" what
  | Some entries ->
      List.iteri
        (fun k entry ->
          match get "interval" entry with
          | None -> fail ctx "%s[%d]: missing interval" what k
          | Some i ->
              check_interval ctx ~what:(Printf.sprintf "%s[%d]" what k) i)
        entries

let check_analysis ctx json =
  (match arr "windows" json with
  | None -> fail ctx "analysis: missing windows"
  | Some ws ->
      let ws = List.filter_map J.to_int ws in
      if List.sort compare ws <> ws || List.exists (fun w -> w <= 0) ws then
        fail ctx "analysis: windows not ascending positive");
  (match get "util" json with
  | None -> fail ctx "analysis: missing util"
  | Some u -> (
      match (Option.bind (get "lo" u) J.to_float, get "hi" u) with
      | Some lo, Some J.Null ->
          if lo < 0. then fail ctx "analysis.util: negative lower end"
      | Some lo, Some hi_v -> (
          match J.to_float hi_v with
          | Some hi ->
              if lo < 0. || lo > hi then
                fail ctx "analysis.util: inconsistent interval [%g, %g]" lo hi
          | None -> fail ctx "analysis.util: malformed upper end")
      | _ -> fail ctx "analysis.util: malformed"));
  (match arr "sources" json with
  | None -> fail ctx "analysis: missing sources"
  | Some sources ->
      List.iteri
        (fun k s ->
          let what field = Printf.sprintf "analysis.sources[%d].%s" k field in
          (match get "admissions" s with
          | Some l -> check_windowed ctx ~what:(what "admissions") l
          | None -> fail ctx "%s: missing" (what "admissions"));
          match get "interference" s with
          | Some l -> check_windowed ctx ~what:(what "interference") l
          | None -> fail ctx "%s: missing" (what "interference"))
        sources);
  match arr "partitions" json with
  | None -> fail ctx "analysis: missing partitions"
  | Some partitions ->
      List.iteri
        (fun k p ->
          let what field = Printf.sprintf "analysis.partitions[%d].%s" k field in
          (match get "interference" p with
          | Some i -> check_interval ctx ~what:(what "interference") i
          | None -> fail ctx "%s: missing" (what "interference"));
          match str "verdict" p with
          | Some ("proved" | "refuted" | "unknown") -> ()
          | Some v -> fail ctx "%s: unknown verdict %S" (what "verdict") v
          | None -> fail ctx "%s: missing" (what "verdict"))
        partitions

let arrivals_of_json json =
  Option.bind (J.to_list json) (fun entries ->
      List.fold_left
        (fun acc e ->
          Option.bind acc (fun acc ->
              match (num "line" e, arr "distances" e) with
              | Some line, Some ds ->
                  let ds = List.filter_map J.to_int ds in
                  Some ((line, Array.of_list ds) :: acc)
              | _ -> None))
        (Some []) entries
      |> Option.map List.rev)

let check_witness ctx k json =
  let what field = Printf.sprintf "witnesses[%d].%s" k field in
  (match (str "predicted" json, arr "oracle" json) with
  | Some predicted, Some oracle ->
      let fired = List.filter_map J.to_str oracle in
      if not (List.mem predicted fired) then
        fail ctx "%s: predicted rule %s absent from the oracle codes"
          (what "oracle") predicted
  | _ -> fail ctx "%s: missing predicted/oracle" (what "oracle"));
  (match num "baseline_errors" json with
  | Some 0 -> ()
  | Some n -> fail ctx "%s: true-spec audit has %d error(s)" (what "baseline_errors") n
  | None -> fail ctx "%s: missing" (what "baseline_errors"));
  (match get "confirmed" json with
  | Some (J.Bool true) -> ()
  | Some _ -> fail ctx "%s: witness not confirmed" (what "confirmed")
  | None -> fail ctx "%s: missing" (what "confirmed"));
  match (get "arrivals" json, str "digest" json) with
  | Some a, Some digest -> (
      match arrivals_of_json a with
      | None -> fail ctx "%s: malformed" (what "arrivals")
      | Some arrivals ->
          if Witness.digest_of_arrivals arrivals <> digest then
            fail ctx "%s: digest does not match the arrival streams"
              (what "digest"))
  | _ -> fail ctx "%s: missing arrivals/digest" (what "arrivals")

let recheck json =
  let ctx = { violations = [] } in
  (match str "schema" json with
  | Some s when s = schema -> ()
  | Some s -> fail ctx "unsupported schema %S (expected %S)" s schema
  | None -> fail ctx "missing schema field");
  (* The tamper digest: re-serialize with the digest blanked and compare. *)
  (match json with
  | J.Obj fields -> (
      match List.assoc_opt digest_field fields with
      | Some (J.String stored) ->
          let blanked =
            List.filter (fun (k, _) -> k <> digest_field) fields
          in
          if digest_of blanked <> stored then
            fail ctx "digest mismatch: artifact was modified"
      | _ -> fail ctx "missing digest field")
  | _ -> fail ctx "artifact is not a JSON object");
  (* The embedded configuration must decode and re-encode identically. *)
  (match get "config" json with
  | None -> fail ctx "missing config"
  | Some c -> (
      match Config_codec.of_json c with
      | Error e -> fail ctx "config does not decode: %s" e
      | Ok config -> (
          match Config_codec.to_json config with
          | Ok c' when c' = c -> ()
          | Ok _ -> fail ctx "config does not round-trip"
          | Error e -> fail ctx "config does not re-encode: %s" e)));
  (* Diagnostics: valid severities, deterministic order, positive counts. *)
  let diags =
    match arr "diagnostics" json with
    | None ->
        fail ctx "missing diagnostics";
        []
    | Some ds ->
        List.iteri
          (fun k d ->
            (match str "severity" d with
            | Some ("error" | "warning" | "info") -> ()
            | _ -> fail ctx "diagnostics[%d]: invalid severity" k);
            (match str "code" d with
            | Some c
              when String.length c = 7 && String.sub c 0 4 = "RTHV" ->
                ()
            | _ -> fail ctx "diagnostics[%d]: invalid rule code" k);
            match num "count" d with
            | Some n when n >= 1 -> ()
            | _ -> fail ctx "diagnostics[%d]: invalid count" k)
          ds;
        ds
  in
  (* Interval and verdict consistency, without re-running the analysis. *)
  (match get "analysis" json with
  | None -> fail ctx "missing analysis"
  | Some J.Null ->
      (* Only an invalid configuration certifies without analysis. *)
      if
        not
          (List.exists
             (fun d -> str "code" d = Some "RTHV001")
             diags)
      then fail ctx "analysis is null but RTHV001 was not reported"
  | Some a -> check_analysis ctx a);
  (* Every channelled Error must carry a confirmed witness, and vice versa. *)
  let witnesses =
    match arr "witnesses" json with
    | None ->
        fail ctx "missing witnesses";
        []
    | Some ws -> ws
  in
  List.iteri (fun k w -> check_witness ctx k w) witnesses;
  List.iteri
    (fun k d ->
      match (str "severity" d, str "code" d, str "loc" d) with
      | Some "error", Some code, Some loc
        when List.mem_assoc code Witness.channels ->
          if
            not
              (List.exists
                 (fun w -> str "code" w = Some code && str "loc" w = Some loc)
                 witnesses)
          then
            fail ctx
              "diagnostics[%d]: error %s at %s has a witness channel but no \
               witness"
              k code loc
      | _ -> ())
    diags;
  match ctx.violations with
  | [] -> Ok ()
  | vs -> Error (List.rev vs)

let recheck_string s =
  match J.parse s with
  | Error e -> Error [ Printf.sprintf "artifact does not parse: %s" e ]
  | Ok json -> recheck json
