(** Config-fleet batch linting and certification ([rthv_lint --batch]).

    A fleet is a directory of {!Config_codec} JSON files.  Batch runs fan
    the per-config pipeline (lint, or lint + certify) over
    {!Rthv_par.Par.map}'s domain pool — each configuration is
    self-contained, so the sweep parallelises without sharing state, and
    because the pool is order-preserving the rendered report and every
    written artifact are {e byte-identical at any job count} ([--jobs 1]
    and [--jobs 8] diff clean).

    {!gen_batch} derives a deterministic synthetic fleet from a seed (the
    CI corpus): partition counts, slot plans, task sets, shaping policies
    and workloads are all drawn from a splitmix-style hash of
    [(seed, index)], so the same seed always yields the same configs. *)

val gen_config : seed:int -> int -> Rthv_core.Config.t
(** The deterministic config for fleet index [i] under [seed]; mixes
    partition counts (2–4), both slot plans, guest task sets and all
    shaping families so a batch exercises every analysis path. *)

val gen_batch : seed:int -> count:int -> (string * Rthv_core.Config.t) list
(** [("cfg-0000", _); ...] — {!gen_config} over [0 .. count-1]. *)

val write_batch :
  dir:string -> (string * Rthv_core.Config.t) list -> (int, string) result
(** Serialize each config to [dir/<name>.json] (creating [dir]); returns
    the number written. *)

val load_dir : string -> ((string * Rthv_core.Config.t) list, string) result
(** Read every [*.json] in the directory (sorted by name) through
    {!Config_codec.of_string}.  A file that fails to parse or decode fails
    the whole load with its filename in the message. *)

val lint_batch :
  ?pool:Rthv_par.Par.pool ->
  (string * Rthv_core.Config.t) list ->
  (string * Diagnostic.t list) list
(** {!Lint.analyze} per config on the pool, input order preserved. *)

val certify_batch :
  ?pool:Rthv_par.Par.pool ->
  (string * Rthv_core.Config.t) list ->
  (string * (string, string) result) list
(** {!Certify.build_string} per config on the pool — the expensive fan-out
    (each certificate replays its witnesses). *)

val report : (string * Diagnostic.t list) list -> string
(** Deterministic plain-text batch report: per config a one-line tally,
    then each deduplicated finding, then a fleet-wide summary line. *)
