(** SARIF 2.1.0 export of diagnostics — the CI/code-scanning interchange
    format ([rthv_lint --format sarif]).

    One run, one driver ([rthv_lint]) whose rule table concatenates the
    static rules ({!Lint.rules}) with the trace invariants
    ({!Trace_oracle.invariants}) so results from both the linter and the
    trace-audit mode resolve a [ruleIndex].  Diagnostics are deduplicated
    ({!Diagnostic.dedupe}); collapsed repeats carry an [occurrenceCount]
    property.  Severities map error→[error], warning→[warning],
    info→[note]; locations are logical (partition/source/trace position),
    qualified by scenario name when one is given. *)

val version : string
(** ["2.1.0"]. *)

val rules : (string * string) list
(** The driver's rule table: {!Lint.rules} then
    {!Trace_oracle.invariants}. *)

val to_json : (string option * Diagnostic.t list) list -> Rthv_obs.Json.t
(** One SARIF log covering every [(scenario, diagnostics)] group. *)

val to_string : (string option * Diagnostic.t list) list -> string
