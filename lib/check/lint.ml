module Cycles = Rthv_engine.Cycles
module Platform = Rthv_hw.Platform
module Config = Rthv_core.Config
module Task = Rthv_rtos.Task
module DF = Rthv_analysis.Distance_fn
module Independence = Rthv_analysis.Independence
module Certificate = Rthv_analysis.Certificate
module Bound = Rthv_analysis.Bound
module GS = Rthv_analysis.Guest_sched
module D = Diagnostic

(* The policy primitives live in Absint (the abstract interpreter needs them
   below this module in the dependency order); re-exported here because the
   trace oracle, the headroom gate and the scenarios all import them from
   Lint. *)
let c_bh_eff = Absint.c_bh_eff
let static_condition = Absint.static_condition
let shaped = Absint.shaped
let bound_policy = Absint.bound_policy
let degenerate = Absint.degenerate

type ctx = {
  config : Config.t;
  cycle : Cycles.t;
  c_ctx : Cycles.t;
  slots : Cycles.t array;
      (* effective per-partition slot lengths — [Config.effective_slots], so
         weighted plans are linted against the schedule actually run *)
  ai : Absint.t;
      (* the interval analysis: closed-form rules read its facts, the
         whole-config rules (RTHV016..020) exist because of it *)
}

let source_loc (s : Config.source) = Printf.sprintf "source %s" s.Config.name
let partition_loc (p : Config.partition) =
  Printf.sprintf "partition %s" p.Config.pname

let eff ctx (s : Config.source) =
  c_bh_eff ~platform:ctx.config.Config.platform ~c_bh:s.Config.c_bh

(* Facts are produced in configuration order; pair them back with the
   declarations they describe. *)
let source_facts ctx = List.combine ctx.config.Config.sources ctx.ai.Absint.sources
let partition_facts ctx =
  List.combine ctx.config.Config.partitions ctx.ai.Absint.partitions

(* RTHV002: a slot that cannot even cover the slot-entry context switch
   provides zero service; the TDMA supply bound (eq. 8) is vacuous. *)
let rule_slot_covers_ctx ctx =
  List.concat
    (List.mapi
       (fun i (p : Config.partition) ->
         if ctx.slots.(i) <= ctx.c_ctx then
           [
             D.error ~code:"RTHV002" ~loc:(partition_loc p)
               ~hint:"grow the slot beyond C_ctx or drop the partition"
               (Format.asprintf
                  "slot %a cannot cover the slot-entry context switch C_ctx = \
                   %a: the partition never executes"
                  Cycles.pp ctx.slots.(i) Cycles.pp ctx.c_ctx);
           ]
         else [])
       ctx.config.Config.partitions)

(* RTHV003: eq. (14) reads I(dt) = eta+_monitor(dt) * C'_BH; a degenerate
   condition has eta+ = infinity for any positive window.  The abstract
   interpretation records exactly this as an unbounded interference
   interval. *)
let rule_monitor_bounded ctx =
  List.filter_map
    (fun ((s : Config.source), (f : Absint.source_fact)) ->
      if f.Absint.sf_degenerate then
        Some
          (D.error ~code:"RTHV003" ~loc:(source_loc s)
             ~hint:"use a positive d_min (or load bound) so eq. (14) bounds \
                    the interference"
             "monitoring condition admits unbounded load: every delta^- \
              entry is 0, so the eq.-(14) interference bound does not exist")
      else None)
    (source_facts ctx)

(* RTHV004: long-term processor share stolen by all grants together.  At
   >= 1.0 the interposed handlers alone overload the core; eq. (2) cannot
   hold for any partition.  The total is the abstract interpreter's
   closed-form utilisation fold. *)
let rule_interference_utilisation ctx =
  let loss = ctx.ai.Absint.util_loss_closed in
  if loss >= 1. -. 1e-9 then
    [
      D.error ~code:"RTHV004" ~loc:"system"
        ~hint:"enlarge the monitors' distances (Independence.required_d_min \
               sizes a d_min for a target utilisation)"
        (Printf.sprintf
           "granted monitors admit %.0f%% long-term interposition \
            utilisation (eq. 14): the interposed handlers alone overload \
            the processor"
           (100. *. loss));
    ]
  else []

let failing_tasks (v : Certificate.verdict) =
  List.filter_map
    (fun ((task : GS.task), result) ->
      match result with
      | Ok r when r.Rthv_analysis.Busy_window.response_time <= task.GS.period
        -> None
      | Ok _ | Error _ -> Some task.GS.name)
    v.Certificate.task_results

(* RTHV005: the full certification argument — eq. (2) with eq.-(14)
   interference, checked through the busy-window analysis of Guest_sched.
   This is a proof obligation, not a heuristic: the rule fails exactly when
   the abstract interpreter's grant-only certificate does. *)
let rule_certificate ctx =
  let cert = ctx.ai.Absint.closed in
  List.filter_map
    (fun (v : Certificate.verdict) ->
      let slot = ctx.slots.(v.Certificate.v_index) in
      if v.Certificate.schedulable || slot <= ctx.c_ctx (* RTHV002's case *)
      then None
      else
        Some
          (D.error ~code:"RTHV005"
             ~loc:(Printf.sprintf "partition %s" v.Certificate.v_name)
             ~hint:"shrink the grants' interference (larger d_min) or \
                    lighten the task set; see Certificate.pp for the numbers"
             (Printf.sprintf
                "task set not schedulable under TDMA service plus the \
                 grants' eq.-(14) interference budget %s (eq. 2 violated): \
                 failing task(s) %s"
                (Format.asprintf "%a" Cycles.pp v.Certificate.interference_budget)
                (String.concat ", " (failing_tasks v)))))
    cert.Certificate.verdicts

(* RTHV006: a necessary condition cheaper than the certificate — demand
   above the partition's TDMA share can never converge.  Share and task
   utilisation come straight from the partition facts. *)
let rule_partition_utilisation ctx =
  List.concat_map
    (fun ((p : Config.partition), (pf : Absint.partition_fact)) ->
      if pf.Absint.pf_slot <= ctx.c_ctx then []
      else
        let share = pf.Absint.pf_share in
        let u = pf.Absint.pf_task_util in
        if u > share +. 1e-9 then
          [
            D.error ~code:"RTHV006" ~loc:(partition_loc p)
              ~hint:"the slot share is (T_i - C_ctx) / T_TDMA; lengthen \
                     the slot or lighten the tasks"
              (Printf.sprintf
                 "task utilisation %.1f%% exceeds the partition's TDMA \
                  share %.1f%%: unschedulable regardless of interference"
                 (100. *. u) (100. *. share));
          ]
        else [])
    (partition_facts ctx)

(* RTHV007: self-learning monitors that can never do useful work. *)
let rule_learning_useful ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Self_learning { learn_events = 0; _ } ->
          Some
            (D.warning ~code:"RTHV007" ~loc:(source_loc s)
               ~hint:"train on a prefix of the trace (the paper uses 10%)"
               "self-learning monitor with learn_events = 0: Algorithm 1 \
                learns nothing, the condition stays degenerate and no \
                activation is ever admitted")
      | Config.Self_learning { learn_events; _ }
        when Array.length s.Config.interarrivals > 0
             && learn_events >= Array.length s.Config.interarrivals ->
          Some
            (D.warning ~code:"RTHV007" ~loc:(source_loc s)
               ~hint:"use learn_events < the number of activations"
               (Printf.sprintf
                  "self-learning monitor never leaves the learning phase: \
                   learn_events = %d but the source only fires %d times"
                  learn_events
                  (Array.length s.Config.interarrivals)))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV008: a grant for a source that never fires is certification noise. *)
let rule_vacuous_grant ctx =
  List.filter_map
    (fun (s : Config.source) ->
      if shaped s && Array.length s.Config.interarrivals = 0 then
        Some
          (D.warning ~code:"RTHV008" ~loc:(source_loc s)
             ~hint:"drop the grant or give the source a workload"
             "shaped source never fires (empty interarrival array): the \
              interposition grant is vacuous")
      else None)
    ctx.config.Config.sources

(* RTHV009: the monitor will do its job, but the integrator should know the
   workload requests more than the condition admits. *)
let rule_workload_within_condition ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Fixed_monitor fn
        when (not (degenerate fn)) && Array.length s.Config.interarrivals > 0
        ->
          let n = Array.length s.Config.interarrivals in
          let total =
            Array.fold_left (fun acc d -> acc +. float_of_int d) 0.
              s.Config.interarrivals
          in
          let request_rate = float_of_int n /. total in
          let admitted_rate = DF.long_term_rate fn in
          if request_rate > admitted_rate *. (1. +. 1e-9) then
            Some
              (D.info ~code:"RTHV009" ~loc:(source_loc s)
                 ~hint:"expected: a fraction of events is denied and handled \
                        delayed; Fig. 6b shows the resulting latency mix"
                 (Printf.sprintf
                    "average request rate (%.1f events/s) exceeds the \
                     monitoring condition's admitted rate (%.1f events/s): \
                     sustained denials expected"
                    (request_rate *. 1e6 *. float_of_int Cycles.cycles_per_us)
                    (admitted_rate *. 1e6 *. float_of_int Cycles.cycles_per_us)))
          else None
      | _ -> None)
    ctx.config.Config.sources

(* RTHV010: Regehr & Duongsaa throttling admits bursts; at equal long-term
   rate its interference bound strictly dominates the d_min bound. *)
let rule_bucket_burst ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Token_bucket { capacity; refill } when capacity > 1 ->
          Some
            (D.warning ~code:"RTHV010" ~loc:(source_loc s)
               ~hint:"a delta^- monitor at the same rate (d_min = refill) \
                      gives the tighter eq.-(14) bound"
               (Printf.sprintf
                  "token bucket with burst capacity %d: any window admits up \
                   to %d + dt/%s interpositions, so partitions must absorb \
                   %d back-to-back C'_BH hits — worse than the equivalent \
                   d_min bound"
                  capacity capacity
                  (Format.asprintf "%a" Cycles.pp refill)
                  capacity))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV011: duplicate names break log and certificate attribution. *)
let rule_unique_partition_names ctx =
  let rec dups seen = function
    | [] -> []
    | (p : Config.partition) :: rest ->
        if List.mem p.Config.pname seen then
          D.warning ~code:"RTHV011" ~loc:(partition_loc p)
            ~hint:"rename so certificates and traces attribute uniquely"
            "duplicate partition name"
          :: dups seen rest
        else dups (p.Config.pname :: seen) rest
  in
  dups [] ctx.config.Config.partitions

(* RTHV012: handler-vs-slot sizing.  A grant whose C'_BH (eq. 13) exceeds
   the subscriber's whole slot makes a single interposition as heavy as a
   slot; a plain bottom handler that cannot finish within one effective slot
   monopolises the boundary-deferral mechanism every time. *)
let rule_handler_fits_slot ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match List.nth_opt ctx.config.Config.partitions s.Config.subscriber with
      | None -> None (* RTHV001 territory *)
      | Some p ->
          let slot = ctx.slots.(s.Config.subscriber) in
          if shaped s && eff ctx s > slot then
            Some
              (D.error ~code:"RTHV012" ~loc:(source_loc s)
                 ~hint:"shrink C_BH or grow the subscriber's slot; eq. (13) \
                        adds C_sched + 2*C_ctx to every interposition"
                 (Format.asprintf
                    "grant's effective cost C'_BH = %a exceeds subscriber \
                     %s's entire slot (%a): one admitted interposition \
                     outweighs a full slot of service"
                    Cycles.pp (eff ctx s) p.Config.pname Cycles.pp slot))
          else if s.Config.c_bh > Cycles.( - ) slot ctx.c_ctx then
            Some
              (D.warning ~code:"RTHV012" ~loc:(source_loc s)
                 ~hint:"the handler spans TDMA cycles (strict mode) or \
                        defers every boundary (finish_bh_at_boundary)"
                 (Format.asprintf
                    "bottom handler (%a) cannot complete within one \
                     effective slot of subscriber %s (%a after C_ctx)"
                    Cycles.pp s.Config.c_bh p.Config.pname Cycles.pp
                    (Cycles.( - ) slot ctx.c_ctx)))
          else None)
    ctx.config.Config.sources

(* RTHV013: a budgeted grant large enough to consume a whole foreign slot.
   The source fact's proved interference interval over a window of one slot
   length caps the stolen time; if that cap meets or exceeds the slot, a
   single slot instance can be starved entirely — the per-slot analogue of
   RTHV004's long-term overload. *)
let rule_budget_fits_slots ctx =
  List.filter_map
    (fun ((s : Config.source), (f : Absint.source_fact)) ->
      match s.Config.shaping with
      | Config.Budgeted { per_cycle } ->
          let stolen_in slot =
            match List.assoc_opt slot f.Absint.sf_interference with
            | Some { Absint.Itv.hi = Some hi; _ } -> hi
            | Some { Absint.Itv.hi = None; _ } | None -> 0
          in
          let starved =
            List.concat
              (List.mapi
                 (fun i (p : Config.partition) ->
                   if i = s.Config.subscriber then []
                     (* interpositions steal only from foreign slots *)
                   else
                     let slot = ctx.slots.(i) in
                     if slot > 0 && stolen_in slot >= slot then
                       [ p.Config.pname ]
                     else [])
                 ctx.config.Config.partitions)
          in
          if starved = [] then None
          else
            Some
              (D.error ~code:"RTHV013" ~loc:(source_loc s)
                 ~hint:"shrink per_cycle (or C_BH) until the aligned-window \
                        bound stays below every foreign slot"
                 (Printf.sprintf
                    "interposition budget (%d per cycle, C'_BH = %s) can \
                     consume the entire slot of partition(s) %s in the worst \
                     case"
                    per_cycle
                    (Format.asprintf "%a" Cycles.pp f.Absint.sf_c_bh_eff)
                    (String.concat ", " starved)))
      | _ -> None)
    (source_facts ctx)

(* RTHV014: how the composite's bucket relates to its monitor — either the
   bucket is provably vacuous (policy degenerates to the monitor alone, the
   eq.-(16) per-instance bound applies) or it can deny conforming
   activations (eq. (16) does not apply; only the interference bound
   tightens). *)
let rule_composite_bucket ctx =
  List.filter_map
    (fun (s : Config.source) ->
      match s.Config.shaping with
      | Config.Monitor_and_bucket { fn; capacity; refill }
        when not (degenerate fn) ->
          let bucket = Bound.Bucketed { capacity; refill } in
          if Bound.vacuous_against fn bucket then
            Some
              (D.info ~code:"RTHV014" ~loc:(source_loc s)
                 ~hint:"drop the bucket, or tighten it below delta^-(2) if \
                        burst capping is the intent"
                 (Format.asprintf
                    "composite's bucket (capacity %d, refill %a) is vacuous \
                     against the monitoring condition: a token is always \
                     back before the condition admits again, so the policy \
                     equals the monitor alone and eq. (16) applies"
                    capacity Cycles.pp refill))
          else
            Some
              (D.warning ~code:"RTHV014" ~loc:(source_loc s)
                 ~hint:"conforming activations can be denied by the bucket; \
                        latency verdicts for interposed completions fall \
                        back to the monitored baseline bound"
                 (Format.asprintf
                    "composite's bucket (capacity %d, refill %a) binds \
                     before the monitoring condition: the eq.-(16) \
                     per-instance bound does not apply to this source"
                    capacity Cycles.pp refill))
      | _ -> None)
    ctx.config.Config.sources

(* RTHV015: a budget the workload can never exhaust is dead configuration —
   admission degenerates to always-admit while still paying C_Mon per
   check.  The workload's densest aligned-cycle window is a source fact. *)
let rule_budget_binds ctx =
  List.filter_map
    (fun ((s : Config.source), (f : Absint.source_fact)) ->
      match (s.Config.shaping, f.Absint.sf_workload_max_per_cycle) with
      | Config.Budgeted { per_cycle }, Some max_per_window
        when max_per_window <= per_cycle ->
          Some
            (D.info ~code:"RTHV015" ~loc:(source_loc s)
               ~hint:"shrink per_cycle until it can bind, or drop the \
                      budget and save the C_Mon checks"
               (Printf.sprintf
                  "interposition budget never binds: the workload requests \
                   at most %d admissions in any aligned TDMA-cycle window \
                   but the budget allows %d"
                  max_per_window per_cycle))
      | _ -> None)
    (source_facts ctx)

(* RTHV016: eq. (16) is a sole-interposer argument — it bounds the latency
   of an admitted activation assuming no other source's interposition can
   queue ahead of it.  The moment a second shaped source is active, an
   admitted activation can wait behind a foreign bottom handler (hypervisor
   work is serialized) and exceed the per-instance bound. *)
let rule_sole_interposer ctx =
  let facts = List.map snd (source_facts ctx) in
  List.filter_map
    (fun ((s : Config.source), (f : Absint.source_fact)) ->
      let has_condition =
        match Bound.per_instance_condition f.Absint.sf_policy with
        | Some fn -> not (degenerate fn)
        | None -> false
      in
      let others =
        List.filter_map
          (fun (o : Absint.source_fact) ->
            if o.Absint.sf_name <> f.Absint.sf_name && o.Absint.sf_active then
              Some o.Absint.sf_name
            else None)
          facts
      in
      if has_condition && f.Absint.sf_active && others <> [] then
        Some
          (D.warning ~code:"RTHV016" ~loc:(source_loc s)
             ~hint:"latency verdicts for interposed completions fall back \
                    to the monitored baseline; drop the other grants to \
                    restore eq. (16)"
             (Printf.sprintf
                "eq.-(16) per-instance bound assumes this source is the \
                 sole interposer, but %d other shaped source(s) (%s) can \
                 interpose: cross-source queueing can delay an admitted \
                 activation past the per-instance bound"
                (List.length others)
                (String.concat ", " others)))
      else None)
    (source_facts ctx)

(* RTHV017: a weighted plan ignores the partitions' declared slot fields.
   When the apportioned slot can no longer complete one bottom handler that
   the declared slot could, the plan — not the handler — starves the
   subscriber: every execution in its own slot now spans slot boundaries. *)
let rule_weighted_starves_subscriber ctx =
  match ctx.config.Config.plan with
  | Config.Partition_slots -> []
  | Config.Weighted_plan _ ->
      List.filter_map
        (fun (s : Config.source) ->
          match
            List.nth_opt ctx.config.Config.partitions s.Config.subscriber
          with
          | None -> None (* RTHV001 territory *)
          | Some p ->
              let declared = p.Config.slot in
              let effective = ctx.slots.(s.Config.subscriber) in
              let fits slot = s.Config.c_bh <= Cycles.( - ) slot ctx.c_ctx in
              if fits declared && not (fits effective) then
                Some
                  (D.error ~code:"RTHV017" ~loc:(source_loc s)
                     ~hint:"raise the subscriber's weight or shrink C_BH; \
                            declared slot fields are ignored under a \
                            weighted plan"
                     (Format.asprintf
                        "weighted plan starves subscriber %s: the bottom \
                         handler (%a) fits the declared slot (%a, %a after \
                         C_ctx) but not the effective weighted slot (%a, %a \
                         after C_ctx)"
                        p.Config.pname Cycles.pp s.Config.c_bh Cycles.pp
                        declared Cycles.pp
                        (Cycles.( - ) declared ctx.c_ctx)
                        Cycles.pp effective Cycles.pp
                        (Cycles.( - ) effective ctx.c_ctx)))
              else None)
        ctx.config.Config.sources

(* RTHV018: the grant-only certificate (RTHV005) counts only delta^-
   monitored sources; buckets and budgets interfere just as physically.  The
   interval certificate sums every active policy's curve — when it refutes a
   partition the closed form passed, the configuration is certified by a
   blind spot, not by an argument. *)
let rule_interval_certificate ctx =
  match ctx.ai.Absint.full_verdicts with
  | None -> []
  | Some full ->
      List.filter_map
        (fun (v : Certificate.verdict) ->
          let slot = ctx.slots.(v.Certificate.v_index) in
          let closed_ok =
            List.exists
              (fun (c : Certificate.verdict) ->
                c.Certificate.v_index = v.Certificate.v_index
                && c.Certificate.schedulable)
              ctx.ai.Absint.closed.Certificate.verdicts
          in
          if v.Certificate.schedulable || (not closed_ok) || slot <= ctx.c_ctx
          then None
          else
            Some
              (D.error ~code:"RTHV018"
                 ~loc:(Printf.sprintf "partition %s" v.Certificate.v_name)
                 ~hint:"tighten the bucket/budget policies or lighten the \
                        task set; the grant-only certificate (RTHV005) does \
                        not see rate-based admissions"
                 (Printf.sprintf
                    "task set passes the grant-only eq.-(14) certificate but \
                     fails under the full policy-curve interference budget \
                     %s (bucket/budget admissions included): failing \
                     task(s) %s"
                    (Format.asprintf "%a" Cycles.pp
                       v.Certificate.interference_budget)
                    (String.concat ", " (failing_tasks v)))))
        full

(* RTHV019: admissions are serialized — at most one interposition is in
   flight, each occupying C'_BH of hypervisor-serialized time — so no window
   can physically complete more than the serialization ceiling.  A condition
   admitting more than that makes the eq.-(14) budget provably conservative:
   the certificate charges partitions for interference that cannot occur. *)
let rule_serialization_ceiling ctx =
  List.filter_map
    (fun ((s : Config.source), (f : Absint.source_fact)) ->
      if not f.Absint.sf_active then None
      else
        let admitted =
          match List.assoc_opt ctx.cycle f.Absint.sf_admissions with
          | Some { Absint.Itv.hi = Some hi; _ } -> Some hi
          | Some { Absint.Itv.hi = None; _ } | None -> None
        in
        let ceiling = List.assoc_opt ctx.cycle f.Absint.sf_ceiling in
        match (admitted, ceiling) with
        | Some eta, Some cap when eta > cap ->
            Some
              (D.info ~code:"RTHV019" ~loc:(source_loc s)
                 ~hint:"the certificate over-budgets this source; a \
                        condition near the serialization rate (one \
                        admission per C'_BH) frees budget for other grants"
                 (Printf.sprintf
                    "admission policy allows %d interpositions per TDMA \
                     cycle but serialization (one in flight, C'_BH = %s \
                     each) fits at most %d: the eq.-(14) budget is provably \
                     conservative"
                    eta
                    (Format.asprintf "%a" Cycles.pp f.Absint.sf_c_bh_eff)
                    cap))
        | _ -> None)
    (source_facts ctx)

(* RTHV020: sustained overload of a partition's service capacity.  Task
   utilisation plus the workload-derived bottom-half demand of the
   subscribed sources above the TDMA share means the backlog grows without
   bound — IRQ completion latency diverges even if every individual rule
   above is silent. *)
let rule_sustained_demand ctx =
  List.concat_map
    (fun ((p : Config.partition), (pf : Absint.partition_fact)) ->
      if pf.Absint.pf_slot <= ctx.c_ctx then []
      else
        let irq_demand = pf.Absint.pf_demand -. pf.Absint.pf_task_util in
        if irq_demand > 1e-12 && pf.Absint.pf_demand > pf.Absint.pf_share +. 1e-9
        then
          [
            D.error ~code:"RTHV020" ~loc:(partition_loc p)
              ~hint:"lengthen the slot, shed sources, or shrink C_BH; \
                     sustainable demand must stay within (T_i - C_ctx) / \
                     T_TDMA"
              (Printf.sprintf
                 "sustained demand (task utilisation %.1f%% plus bottom-half \
                  demand %.1f%% of the subscribed sources) exceeds the \
                  partition's TDMA share %.1f%%: the IRQ backlog grows \
                  without bound"
                 (100. *. pf.Absint.pf_task_util)
                 (100. *. irq_demand)
                 (100. *. pf.Absint.pf_share));
          ]
        else [])
    (partition_facts ctx)

let rules =
  [
    ("RTHV001", "configuration fails Config.validate");
    ("RTHV002", "partition slot cannot cover the slot-entry context switch");
    ("RTHV003", "monitoring condition admits unbounded load (no eq.-14 bound)");
    ("RTHV004", "granted monitors reach 1.0 long-term interference utilisation");
    ("RTHV005", "task set fails the independence certificate (eq. 2 + eq. 14)");
    ("RTHV006", "task utilisation exceeds the partition's TDMA share");
    ("RTHV007", "self-learning monitor never reaches a useful run phase");
    ("RTHV008", "shaped source never fires (vacuous grant)");
    ("RTHV009", "workload rate exceeds the monitoring condition (denials expected)");
    ("RTHV010", "token-bucket burst allowance dominates the d_min bound");
    ("RTHV011", "duplicate partition names");
    ("RTHV012", "bottom handler / grant does not fit the subscriber's slot");
    ("RTHV013", "interposition budget can starve a whole foreign slot");
    ("RTHV014", "composite bucket vacuous or binding against its monitor");
    ("RTHV015", "interposition budget never binds for the workload");
    ("RTHV016", "cross-source queueing voids the eq.-(16) sole-interposer gate");
    ("RTHV017", "weighted plan starves a subscriber below its declared slot");
    ("RTHV018", "full policy-curve certificate refutes a grant-only pass");
    ("RTHV019", "admission policy exceeds the serialization ceiling");
    ("RTHV020", "sustained partition demand exceeds the TDMA share");
  ]

let analyze_ctx config =
  match Config.validate config with
  | Error msg -> Error msg
  | Ok () ->
      let ai = Absint.analyze config in
      Ok
        {
          config;
          cycle = ai.Absint.cycle;
          c_ctx = ai.Absint.c_ctx;
          slots = Rthv_core.Slot_plan.slots (Config.slot_plan config);
          ai;
        }

let all_rules =
  [
    rule_slot_covers_ctx;
    rule_monitor_bounded;
    rule_interference_utilisation;
    rule_certificate;
    rule_partition_utilisation;
    rule_learning_useful;
    rule_vacuous_grant;
    rule_workload_within_condition;
    rule_bucket_burst;
    rule_unique_partition_names;
    rule_handler_fits_slot;
    rule_budget_fits_slots;
    rule_composite_bucket;
    rule_budget_binds;
    rule_sole_interposer;
    rule_weighted_starves_subscriber;
    rule_interval_certificate;
    rule_serialization_ceiling;
    rule_sustained_demand;
  ]

let analyze config =
  match analyze_ctx config with
  | Error msg ->
      [
        D.error ~code:"RTHV001" ~loc:"config"
          ~hint:"remaining rules assume a structurally valid configuration"
          msg;
      ]
  | Ok ctx ->
      Diagnostic.sort (List.concat_map (fun rule -> rule ctx) all_rules)
